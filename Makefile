GO ?= go

.PHONY: build test bench lint sweep figures

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

lint:
	$(GO) vet ./...
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:" $$files; exit 1; \
	fi

sweep:
	$(GO) run ./cmd/sweep -figures all

figures:
	$(GO) run ./cmd/intrasim -exp all
