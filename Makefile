GO ?= go

.PHONY: build test test-alloc bench bench-json lint sweep figures campaign campaign-ccr explore check-docs validate-scenarios

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Allocation budgets skip under -race (the detector itself allocates), so
# they get a dedicated non-race invocation.
test-alloc:
	$(GO) test -run Alloc ./internal/sim ./internal/simnet ./internal/mpi ./internal/replication ./internal/store ./internal/jobstream ./internal/experiments

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-json runs the substrate micro benchmarks at a real benchtime plus
# the campaign-scale macro benchmarks, and writes BENCH_sim.json at the
# repo root (the tracked perf trajectory; CI uploads it as an artifact).
bench-json:
	$(GO) run ./cmd/bench -out BENCH_sim.json $(BENCHFLAGS)

lint:
	$(GO) vet ./...
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:" $$files; exit 1; \
	fi

sweep:
	$(GO) run ./cmd/sweep -figures all

figures:
	$(GO) run ./cmd/intrasim -exp all

campaign:
	$(GO) run ./cmd/sweep -mode campaign -app gtc -procs 32 -mtbf 0.01,0.1,1

campaign-ccr:
	$(GO) run ./cmd/sweep -spec scenarios/campaign-ccr-vs-replication.json -mode campaign

# Adaptive exploration: CI-driven trial refinement plus crossover bisection
# and optimal-tau search over the checked-in coarse grid.
explore:
	$(GO) run ./cmd/sweep -spec scenarios/explore-crossover.json -mode explore

validate-scenarios:
	@for f in scenarios/*.json; do \
		$(GO) run ./cmd/sweep -spec $$f -validate || exit 1; \
	done

check-docs:
	@missing=0; for f in $$(grep -ohE '[A-Z]+\.md' doc.go README.md | sort -u); do \
		if [ ! -f "$$f" ]; then echo "missing $$f (referenced from doc.go/README.md)"; missing=1; fi; \
	done; exit $$missing
