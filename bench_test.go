package repro

import (
	"strconv"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Figure-level benchmarks: each regenerates one figure of the paper's
// evaluation on a reduced cluster (so a bench iteration stays fast) and
// reports the measured efficiencies as benchmark metrics. Run the full
// paper-scale tables with: go run ./cmd/intrasim -exp all

func cell(b *testing.B, t *experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q", row, col, t.Rows[row][col])
	}
	return v
}

// BenchmarkFig5aKernels regenerates Figure 5a (per-kernel efficiency of
// waxpby / ddot / sparsemv).
func BenchmarkFig5aKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5a(32, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 0, 5), "waxpby-eff")
		b.ReportMetric(cell(b, t, 1, 5), "ddot-eff")
		b.ReportMetric(cell(b, t, 2, 5), "sparsemv-eff")
	}
}

// BenchmarkFig5bHPCCG regenerates Figure 5b (HPCCG weak scaling).
func BenchmarkFig5bHPCCG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5b([]int{32}, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 0, 3), "sdr-eff")
		b.ReportMetric(cell(b, t, 0, 5), "intra-eff")
	}
}

func benchFig6(b *testing.B, fn func(int) (*experiments.Table, error), procs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := fn(procs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 1, 5), "sdr-eff")
		b.ReportMetric(cell(b, t, 2, 5), "intra-eff")
	}
}

// BenchmarkFig6aAMGPCG regenerates Figure 6a (AMG, 27-point, PCG).
func BenchmarkFig6aAMGPCG(b *testing.B) { benchFig6(b, experiments.Fig6a, 16) }

// BenchmarkFig6bAMGGMRES regenerates Figure 6b (AMG, 7-point, GMRES).
func BenchmarkFig6bAMGGMRES(b *testing.B) { benchFig6(b, experiments.Fig6b, 16) }

// BenchmarkFig6cGTC regenerates Figure 6c (GTC particle-in-cell).
func BenchmarkFig6cGTC(b *testing.B) { benchFig6(b, experiments.Fig6c, 16) }

// BenchmarkFig6dMiniGhost regenerates Figure 6d (MiniGhost stencil).
func BenchmarkFig6dMiniGhost(b *testing.B) { benchFig6(b, experiments.Fig6d, 16) }

// BenchmarkAblationTaskGranularity sweeps tasks/section (§V-B discussion).
func BenchmarkAblationTaskGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationTaskGranularity(16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 0, 2), "eff-1task")
		b.ReportMetric(cell(b, t, 3, 2), "eff-8tasks")
	}
}

// BenchmarkAblationInoutMode compares copy-restore vs atomic apply
// (§III-B2).
func BenchmarkAblationInoutMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationInoutMode(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 0, 2), "copy-sec")
		b.ReportMetric(cell(b, t, 1, 2), "atomic-sec")
	}
}

// BenchmarkCkptModel evaluates the §II checkpoint-vs-replication model.
func BenchmarkCkptModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.CkptModelTable()
		last := len(t.Rows) - 1
		b.ReportMetric(cell(b, t, last, 3), "ccr-eff-extreme")
		b.ReportMetric(cell(b, t, last, 5), "intra-eff-extreme")
	}
}

// --- sweep-runner benchmarks ---

// fig6PanelSpecs is the four Figure 6 applications as one sweep grid.
func fig6PanelSpecs(logical int) []experiments.Spec {
	return []experiments.Spec{
		{Name: "amg-pcg", Mode: experiments.Intra, Logical: logical, App: experiments.AMG(experiments.Fig6aConfig())},
		{Name: "amg-gmres", Mode: experiments.Intra, Logical: logical, App: experiments.AMG(experiments.Fig6bConfig())},
		{Name: "gtc", Mode: experiments.Intra, Logical: logical, App: experiments.GTC(experiments.Fig6cConfig())},
		{Name: "minighost", Mode: experiments.Intra, Logical: logical, App: experiments.MiniGhost(experiments.Fig6dConfig())},
	}
}

// BenchmarkSweepSerial runs the Figure 6 panel on one worker: the baseline
// the parallel runner is measured against.
func BenchmarkSweepSerial(b *testing.B) {
	specs := fig6PanelSpecs(8)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepN(1, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the same panel on all cores; the speedup over
// BenchmarkSweepSerial is the tentpole's win.
func BenchmarkSweepParallel(b *testing.B) {
	specs := fig6PanelSpecs(8)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sweep(specs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var events uint64
			for _, r := range res {
				events += r.SimEvents
			}
			b.ReportMetric(float64(events), "sim-events")
		}
	}
}

// BenchmarkSweepMemo measures a sweep whose grid is one unique point
// repeated: everything after the first run must be a memo hit.
func BenchmarkSweepMemo(b *testing.B) {
	spec := fig6PanelSpecs(8)[0]
	specs := make([]experiments.Spec, 16)
	for i := range specs {
		specs[i] = spec
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sweep(specs)
		if err != nil {
			b.Fatal(err)
		}
		hits := 0
		for _, r := range res {
			if r.Memoized {
				hits++
			}
		}
		if hits != len(specs)-1 {
			b.Fatalf("memo hits = %d, want %d", hits, len(specs)-1)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkSimEngineEvents measures raw event throughput of the
// discrete-event engine.
func BenchmarkSimEngineEvents(b *testing.B) {
	e := sim.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.After(1, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMPIPingPong measures simulated point-to-point messaging.
func BenchmarkMPIPingPong(b *testing.B) {
	e := sim.New()
	net := simnet.New(e, simnet.InfiniBand20G, 1)
	w := mpi.NewWorld(e, net, 2, perf.Grid5000, nil)
	payload := make([]float64, 128)
	w.Launch("a", 0, func(r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			r.Send(r.World(), 1, 0, payload, nil)
			if _, err := r.Recv(r.World(), 1, 1); err != nil {
				b.Error(err)
				return
			}
		}
	})
	w.Launch("b", 1, func(r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Recv(r.World(), 0, 0); err != nil {
				b.Error(err)
				return
			}
			r.Send(r.World(), 0, 1, payload, nil)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduce64 measures a 64-rank simulated allreduce per op.
func BenchmarkAllreduce64(b *testing.B) {
	e := sim.New()
	net := simnet.New(e, simnet.InfiniBand20G, 16)
	w := mpi.NewWorld(e, net, 64, perf.Grid5000, nil)
	w.LaunchAll("p", func(r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			if _, err := r.AllreduceScalar(r.World(), mpi.OpSum, 1); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntraSection measures the full cost of one intra-parallel
// section (8 tasks, two replicas) including update shipping.
func BenchmarkIntraSection(b *testing.B) {
	var wall sim.Time
	_, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 1, Mode: experiments.Intra},
		func(rt core.Runner) {
			out := make(core.Float64s, 1024)
			for i := 0; i < b.N; i++ {
				rt.SectionBegin()
				id := rt.TaskRegister(func(c core.Ctx, args []core.Value) {
					c.Compute(perf.Work{Flops: 1000})
				}, core.Out)
				for k := 0; k < 8; k++ {
					rt.TaskLaunch(id, out[k*128:(k+1)*128])
				}
				if err := rt.SectionEnd(); err != nil {
					b.Error(err)
					return
				}
			}
			wall = rt.Now()
		})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(wall.Seconds()/float64(b.N)*1e6, "virtual-us/section")
}

// BenchmarkHPCCGIteration measures one simulated CG iteration end to end
// under intra-parallelization.
func BenchmarkHPCCGIteration(b *testing.B) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = b.N
	_, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 2, Mode: experiments.Intra},
		func(rt core.Runner) {
			if _, err := hpccg.Run(rt, cfg); err != nil {
				b.Error(err)
			}
		})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationDegree measures efficiency vs replication degree.
func BenchmarkAblationDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationDegree(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 1, 3), "eff-degree2")
		b.ReportMetric(cell(b, t, 2, 3), "eff-degree3")
	}
}
