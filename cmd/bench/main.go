// Command bench runs the repository's performance trajectory: micro
// benchmarks of the simulation substrate (raw engine event throughput,
// point-to-point messaging, a 64-rank allreduce) and macro benchmarks at
// campaign scale (the CI smoke sweep, Monte Carlo failure trials), and
// writes the results as machine-readable JSON (BENCH_sim.json at the repo
// root by default). CI uploads the file as an artifact next to the
// determinism artifacts, so every commit carries its measured throughput.
//
// The embedded baseline is re-pinned each time a PR makes a deliberate
// performance claim; it currently holds the PR-8 substrate (allocation-light
// DES core, goroutine-per-rank collectives, fresh engine per spec), measured
// on the same benchmark bodies. The speedup section reports
// current/baseline so the collective-coalescing + engine-pooling refactor
// stays an observable, regression-checked fact; -min-speedup turns it into
// a hard gate for CI.
//
//	go run ./cmd/bench -out BENCH_sim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/jobstream"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Bench is one micro-benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// Macro is one campaign-scale result: total wall time for a known unit
// count, plus the derived rate.
type Macro struct {
	Name       string  `json:"name"`
	Units      string  `json:"units"`
	Count      int     `json:"count"`
	Seconds    float64 `json:"seconds"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// Speedup compares a current micro benchmark against the baseline.
type Speedup struct {
	Throughput  float64 `json:"throughput_x"`   // baseline ns/op ÷ current ns/op
	AllocsRatio float64 `json:"allocs_ratio_x"` // baseline allocs/op ÷ current (+1 each to tolerate zero)
}

// ExploreBench compares two ways of locating the ccr-vs-replication
// efficiency crossover to comparable resolution: a fixed dense MTBF grid
// at a fixed per-point trial count, and the adaptive explorer (coarse
// two-point axis, CI-driven refinement plus bisection) whose bracket
// target equals the fixed grid's step ratio. TrialsRatio is the headline:
// fixed trials over adaptive (refine + bisect; tau search excluded — the
// fixed side has no counterpart).
type ExploreBench struct {
	FixedPoints       int     `json:"fixed_points"`
	FixedTrials       int     `json:"fixed_trials"`
	FixedStepRatio    float64 `json:"fixed_step_ratio"`
	FixedCrossover    float64 `json:"fixed_crossover_mtbf_seconds"`
	FixedSeconds      float64 `json:"fixed_seconds"`
	AdaptiveTrials    int     `json:"adaptive_trials"`
	AdaptiveCross     float64 `json:"adaptive_crossover_mtbf_seconds"`
	AdaptiveLo        float64 `json:"adaptive_bracket_lo_seconds"`
	AdaptiveHi        float64 `json:"adaptive_bracket_hi_seconds"`
	AdaptiveSeparated bool    `json:"adaptive_separated"`
	AdaptiveSeconds   float64 `json:"adaptive_seconds"`
	TrialsRatio       float64 `json:"trials_ratio_x"`
}

// Output is the BENCH_sim.json schema.
type Output struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Micro       []Bench            `json:"micro"`
	Macro       []Macro            `json:"macro"`
	Explore     *ExploreBench      `json:"explore_crossover,omitempty"`
	Baseline    []Bench            `json:"baseline"`
	Speedup     map[string]Speedup `json:"speedup_vs_baseline"`
}

// baseline is the coalesced-collective substrate (PR 9), measured with
// that revision's own bench tool on the machine that pinned this baseline
// (Xeon 2.10GHz, go1.24, GOMAXPROCS=1) — all five micros pinned, so the
// slab-pooled allocation work and message recycling on top of it stay an
// observable, regression-checked fact. Cross-machine ns/op comparisons are
// meaningless at gate precision, so a re-pin always re-measures the old
// revision on the current machine. (The PR-8 goroutine-per-collective
// substrate, the previous pin, measured 3189 ns/op mpi-pingpong and
// 475035 ns/op allreduce-64 on its 2.70GHz box; the PR-4 closure-per-event
// engine before it, 58.40 ns/op engine-events.)
var baseline = []Bench{
	{Name: "engine-events", NsPerOp: 16.333620253717108, AllocsPerOp: 0, BytesPerOp: 0, OpsPerSec: 1e9 / 16.333620253717108},
	{Name: "mpi-pingpong", NsPerOp: 1580.8344411265762, AllocsPerOp: 4, BytesPerOp: 2208, OpsPerSec: 1e9 / 1580.8344411265762},
	{Name: "allreduce-64", NsPerOp: 53786.790050699834, AllocsPerOp: 0, BytesPerOp: 35, OpsPerSec: 1e9 / 53786.790050699834},
	{Name: "allreduce-512", NsPerOp: 958276.7407407408, AllocsPerOp: 34, BytesPerOp: 6110, OpsPerSec: 1e9 / 958276.7407407408},
	{Name: "pooled-sweep", NsPerOp: 7.292635525e+07, AllocsPerOp: 18251, BytesPerOp: 64471987, OpsPerSec: 1e9 / 7.292635525e+07},
}

func toBench(name string, r testing.BenchmarkResult) Bench {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return Bench{
		Name:        name,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		OpsPerSec:   1e9 / ns,
	}
}

// benchEngineEvents measures raw event throughput: a single self-
// rescheduling event chain, the engine's absolute hot path.
func benchEngineEvents(b *testing.B) {
	b.ReportAllocs()
	e := sim.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.After(1, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchPingPong measures one simulated send+recv round trip between two
// ranks sharing a node. Received messages are recycled, the steady-state
// discipline of a well-behaved consumer, so the round is allocation-free
// beyond amortized pool slab refills.
func benchPingPong(b *testing.B) {
	b.ReportAllocs()
	e := sim.New()
	net := simnet.New(e, simnet.InfiniBand20G, 1)
	w := mpi.NewWorld(e, net, 2, perf.Grid5000, nil)
	payload := make([]float64, 128)
	w.Launch("a", 0, func(r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			r.Send(r.World(), 1, 0, payload, nil)
			msg, err := r.Recv(r.World(), 1, 1)
			if err != nil {
				b.Error(err)
				return
			}
			w.RecycleMessage(msg)
		}
	})
	w.Launch("b", 1, func(r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			msg, err := r.Recv(r.World(), 0, 0)
			if err != nil {
				b.Error(err)
				return
			}
			w.RecycleMessage(msg)
			r.Send(r.World(), 0, 1, payload, nil)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchAllreduce measures an n-rank simulated allreduce per op (4 ranks
// per node, the smoke-cluster density).
func benchAllreduce(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.New()
		net := simnet.New(e, simnet.InfiniBand20G, n/4)
		w := mpi.NewWorld(e, net, n, perf.Grid5000, nil)
		w.LaunchAll("p", func(r *mpi.Rank) {
			for i := 0; i < b.N; i++ {
				if _, err := r.AllreduceScalar(r.World(), mpi.OpSum, 1); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPooledSweep measures one full pass of the smoke grid through the
// pooled runner (SweepN reuses one engine + scratch across the grid's
// specs, Reset between them) — the layer this PR's engine pooling
// accelerates, as opposed to the per-collective micros above.
func benchPooledSweep(b *testing.B) {
	scs, err := smokeGrid()
	if err != nil {
		b.Fatal(err)
	}
	specs, err := experiments.SpecsFor(scs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepN(1, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// smokeGrid is the CI smoke scenario (scenarios/smoke.json) inlined so the
// tool runs from any working directory: HPCCG under all three modes on a
// small cluster.
func smokeGrid() ([]scenario.Scenario, error) {
	g := scenario.Grid{
		Apps:    []string{"hpccg"},
		Modes:   []scenario.Mode{scenario.Native, scenario.Classic, scenario.Intra},
		Procs:   []int{8},
		Degrees: []int{2},
		Iters:   3,
	}
	return g.Expand()
}

// runSweepMacro times repeated full runs of the smoke grid through the
// parallel sweep runner (fresh memo each repetition, so every scenario is
// simulated).
func runSweepMacro(reps int) (Macro, error) {
	scs, err := smokeGrid()
	if err != nil {
		return Macro{}, err
	}
	start := time.Now()
	count := 0
	for i := 0; i < reps; i++ {
		res, err := experiments.SweepScenarios(0, scs)
		if err != nil {
			return Macro{}, err
		}
		count += len(res)
	}
	el := time.Since(start).Seconds()
	return Macro{
		Name: "sweep-smoke", Units: "scenario-runs", Count: count,
		Seconds: el, RatePerSec: float64(count) / el,
	}, nil
}

// runCampaignMacro times a Monte Carlo failure campaign (GTC, classic
// replication, 8 logical ranks, exponential failures) and reports seeded
// trials per second. The rate includes the campaign's two fault-free
// reference runs, i.e. it is the end-to-end cost per trial at this trial
// count, which is what campaign wall time scales with.
func runCampaignMacro(trials int) (Macro, error) {
	ent, err := scenario.AppByName("gtc")
	if err != nil {
		return Macro{}, err
	}
	sc := campaign.Scenario{
		MTBF: sim.Seconds(0.05),
		Point: scenario.Scenario{
			Name: "bench/gtc/classic/p8",
			App:  "gtc", Config: scenario.MustRaw(ent.Paper(2, 0)),
			Mode: scenario.Classic, Logical: 8, Degree: 2,
		},
	}
	start := time.Now()
	if _, err := campaign.Run(campaign.Config{Trials: trials, Seed: 1}, []campaign.Scenario{sc}); err != nil {
		return Macro{}, err
	}
	el := time.Since(start).Seconds()
	return Macro{
		Name: "campaign-gtc-trials", Units: "trials", Count: trials,
		Seconds: el, RatePerSec: float64(trials) / el,
	}, nil
}

// runJobstreamMacro times the open-load jobstream service (the CI smoke
// workload inlined: two job classes, node failures, FCFS vs EASY crossed
// with native vs replicated jobs) and reports simulated job submissions
// per second of bench wall time — the end-to-end cost of the scheduler
// event loop plus policy decisions plus failure resolution.
func runJobstreamMacro(trials int) (Macro, error) {
	w := &scenario.Workload{
		Nodes: 16, Jobs: 40, Rates: []float64{8},
		MTBFSeconds: 10, Seed: 7,
		Mix: []scenario.JobClass{
			{Name: "hpccg-small", App: "hpccg", Config: json.RawMessage(`{"Iters": 5, "Scale": 64}`), Logical: 4, Weight: 2},
			{Name: "gtc-small", App: "gtc", Config: json.RawMessage(`{"Steps": 2, "Scale": 512}`), Logical: 2, Weight: 1},
		},
		Schedulers: []string{"fcfs", "easy"},
		Policies:   []string{"native", "replicate"},
	}
	cells := len(w.Rates) * len(w.Schedulers) * len(w.Policies) * trials
	jobs := cells * w.Jobs
	start := time.Now()
	if _, err := jobstream.Run(jobstream.Config{Trials: trials}, w); err != nil {
		return Macro{}, err
	}
	el := time.Since(start).Seconds()
	return Macro{
		Name: "jobstream-smoke", Units: "jobs", Count: jobs,
		Seconds: el, RatePerSec: float64(jobs) / el,
	}, nil
}

// exploreGrid builds the crossover pairing the explore macro measures
// (the scenarios/explore-crossover.json workload inlined so the tool runs
// from any working directory): GTC under ccr and intra replication at each
// requested per-node MTBF.
func exploreGrid(mtbfs []float64) []campaign.Scenario {
	cfg := json.RawMessage(`{"Cells": 64, "PerCell": 25, "Zones": 8, "Steps": 2, "Dt": 0.02, "Scale": 64, "ShiftFrac": 0.05, "AuxBytes": 180, "IntraCharge": true, "IntraPush": true}`)
	var scs []campaign.Scenario
	for _, m := range mtbfs {
		scs = append(scs, campaign.Scenario{
			MTBF: sim.Seconds(m),
			Point: scenario.Scenario{
				Name: fmt.Sprintf("bench/gtc/ccr/p8/mtbf%g", m),
				App:  "gtc", Config: cfg, Mode: scenario.CCR, Logical: 8,
			},
		}, campaign.Scenario{
			MTBF: sim.Seconds(m),
			Point: scenario.Scenario{
				Name: fmt.Sprintf("bench/gtc/intra/p8/d2/mtbf%g", m),
				App:  "gtc", Config: cfg, Mode: scenario.Intra, Logical: 8, Degree: 2,
			},
		})
	}
	return scs
}

// runExploreMacro races the two crossover-location strategies to the same
// resolution. The fixed side samples a dense log-spaced MTBF axis (step
// ratio r) at a uniform per-point trial count and log-interpolates, the
// campaign's rule; the adaptive side gets only the two endpoints and a
// bracket target equal to r, so its bisection must localize the crossover
// as tightly as the fixed grid's spacing. Both run the same simulator on
// the same scenario family, so trial counts are directly comparable. The
// default per-point count (100) is the explorer's own per-probe cap — the
// trials it takes to resolve the sign of the efficiency difference at a
// contested point; a fixed design cannot know in advance which points are
// contested, so it pays that count everywhere.
func runExploreMacro(perPoint int) (*ExploreBench, error) {
	const loMTBF, hiMTBF = 0.02, 0.5
	const fixedSteps = 8
	stepRatio := math.Pow(hiMTBF/loMTBF, 1.0/fixedSteps)

	mtbfs := make([]float64, fixedSteps+1)
	for i := range mtbfs {
		mtbfs[i] = loMTBF * math.Pow(stepRatio, float64(i))
	}
	fixedScs := exploreGrid(mtbfs)
	start := time.Now()
	fres, err := campaign.Run(campaign.Config{Trials: perPoint, Seed: 1}, fixedScs)
	if err != nil {
		return nil, fmt.Errorf("explore macro, fixed grid: %w", err)
	}
	fixedSecs := time.Since(start).Seconds()
	if len(fres.Crossovers) != 1 || fres.Crossovers[0].MeasuredNodeMTBFSeconds == 0 {
		return nil, fmt.Errorf("explore macro: fixed grid found no crossover (%+v)", fres.Crossovers)
	}

	// Generous budget: the adaptive run stops on its own convergence
	// criteria (target CI met, bracket ratio met), and what it actually
	// spent is the measurement.
	start = time.Now()
	ares, err := explore.Run(explore.Config{
		Budget: len(fixedScs) * perPoint, TargetCI: 0.1,
		BracketRatio: stepRatio, TauTraces: 2, Seed: 1,
	}, exploreGrid([]float64{loMTBF, hiMTBF}))
	if err != nil {
		return nil, fmt.Errorf("explore macro, adaptive: %w", err)
	}
	adaptiveSecs := time.Since(start).Seconds()
	if len(ares.Crossovers) != 1 {
		return nil, fmt.Errorf("explore macro: adaptive run found no crossover")
	}
	ax := ares.Crossovers[0]
	if ax.MeasuredNodeMTBFSeconds == 0 {
		return nil, fmt.Errorf("explore macro: adaptive run found no bracket to bisect")
	}
	// The two estimators must agree to within two fixed-grid steps —
	// otherwise the trial comparison below compares different answers.
	fx, am := fres.Crossovers[0].MeasuredNodeMTBFSeconds, ax.MeasuredNodeMTBFSeconds
	if r := math.Max(fx, am) / math.Min(fx, am); r > stepRatio*stepRatio {
		return nil, fmt.Errorf("explore macro: estimates disagree: fixed %.4g vs adaptive %.4g (%.2fx apart)", fx, am, r)
	}

	fixedTrials := len(fixedScs) * perPoint
	adaptiveTrials := ares.SpentRefine + ares.SpentBisect
	return &ExploreBench{
		FixedPoints:       len(fixedScs),
		FixedTrials:       fixedTrials,
		FixedStepRatio:    stepRatio,
		FixedCrossover:    fres.Crossovers[0].MeasuredNodeMTBFSeconds,
		FixedSeconds:      fixedSecs,
		AdaptiveTrials:    adaptiveTrials,
		AdaptiveCross:     ax.MeasuredNodeMTBFSeconds,
		AdaptiveLo:        ax.BracketLoSeconds,
		AdaptiveHi:        ax.BracketHiSeconds,
		AdaptiveSeparated: ax.Separated,
		AdaptiveSeconds:   adaptiveSecs,
		TrialsRatio:       float64(fixedTrials) / float64(adaptiveTrials),
	}, nil
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output JSON path")
	reps := flag.Int("sweep-reps", 3, "repetitions of the smoke-grid sweep macro benchmark")
	trials := flag.Int("trials", 1000, "seeded trials for the campaign macro benchmark (1000 amortizes the reference runs)")
	jsTrials := flag.Int("jobstream-trials", 5, "seeded trials per cell for the jobstream macro benchmark")
	expTrials := flag.Int("explore-trials", 100, "fixed-grid trials per point in the explore-crossover macro (100 = the explorer's per-probe resolution cap)")
	minSpeedup := flag.Float64("min-speedup", 0, "exit nonzero if any speedup_vs_baseline throughput falls below this, or if the explore-crossover trials ratio falls below 3 (0 disables)")
	flag.Parse()

	micro := []Bench{
		toBench("engine-events", testing.Benchmark(benchEngineEvents)),
		toBench("mpi-pingpong", testing.Benchmark(benchPingPong)),
		toBench("allreduce-64", testing.Benchmark(benchAllreduce(64))),
		toBench("allreduce-512", testing.Benchmark(benchAllreduce(512))),
		toBench("pooled-sweep", testing.Benchmark(benchPooledSweep)),
	}
	speedup := make(map[string]Speedup, len(baseline))
	for _, base := range baseline {
		for _, cur := range micro {
			if cur.Name != base.Name {
				continue
			}
			speedup[cur.Name] = Speedup{
				Throughput:  base.NsPerOp / cur.NsPerOp,
				AllocsRatio: float64(base.AllocsPerOp+1) / float64(cur.AllocsPerOp+1),
			}
		}
	}

	var macro []Macro
	for _, run := range []func() (Macro, error){
		func() (Macro, error) { return runSweepMacro(*reps) },
		func() (Macro, error) { return runCampaignMacro(*trials) },
		func() (Macro, error) { return runJobstreamMacro(*jsTrials) },
	} {
		m, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		macro = append(macro, m)
	}

	exp, err := runExploreMacro(*expTrials)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	o := Output{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Micro:       micro,
		Macro:       macro,
		Explore:     exp,
		Baseline:    baseline,
		Speedup:     speedup,
	}
	b, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	for _, m := range micro {
		if s, ok := speedup[m.Name]; ok {
			fmt.Printf("%-16s %10.1f ns/op %6d allocs/op %8d B/op  (%.2fx vs baseline)\n",
				m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, s.Throughput)
		} else {
			fmt.Printf("%-16s %10.1f ns/op %6d allocs/op %8d B/op  (no baseline)\n",
				m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		}
	}
	for _, m := range macro {
		fmt.Printf("%-20s %6d %s in %.2fs = %.1f/s\n", m.Name, m.Count, m.Units, m.Seconds, m.RatePerSec)
	}
	fmt.Printf("explore-crossover    fixed %d trials -> %.3gs, adaptive %d trials -> %.3gs (%.1fx fewer trials)\n",
		exp.FixedTrials, exp.FixedCrossover, exp.AdaptiveTrials, exp.AdaptiveCross, exp.TrialsRatio)
	fmt.Printf("wrote %s\n", *out)

	if *minSpeedup > 0 {
		bad := false
		for name, s := range speedup {
			if s.Throughput < *minSpeedup {
				fmt.Fprintf(os.Stderr, "bench: %s regressed: %.3fx vs baseline < %.3fx floor\n",
					name, s.Throughput, *minSpeedup)
				bad = true
			}
		}
		// The adaptive explorer's headline claim rides the same gate: the
		// crossover must cost at most a third of the fixed grid's trials.
		if exp.TrialsRatio < 3 {
			fmt.Fprintf(os.Stderr, "bench: explore-crossover regressed: %.2fx trials ratio < 3x floor\n",
				exp.TrialsRatio)
			bad = true
		}
		if bad {
			os.Exit(1)
		}
	}
}
