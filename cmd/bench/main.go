// Command bench runs the repository's performance trajectory: micro
// benchmarks of the simulation substrate (raw engine event throughput,
// point-to-point messaging, a 64-rank allreduce) and macro benchmarks at
// campaign scale (the CI smoke sweep, Monte Carlo failure trials), and
// writes the results as machine-readable JSON (BENCH_sim.json at the repo
// root by default). CI uploads the file as an artifact next to the
// determinism artifacts, so every commit carries its measured throughput.
//
// The embedded baseline is re-pinned each time a PR makes a deliberate
// performance claim; it currently holds the PR-8 substrate (allocation-light
// DES core, goroutine-per-rank collectives, fresh engine per spec), measured
// on the same benchmark bodies. The speedup section reports
// current/baseline so the collective-coalescing + engine-pooling refactor
// stays an observable, regression-checked fact; -min-speedup turns it into
// a hard gate for CI.
//
//	go run ./cmd/bench -out BENCH_sim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/jobstream"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Bench is one micro-benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// Macro is one campaign-scale result: total wall time for a known unit
// count, plus the derived rate.
type Macro struct {
	Name       string  `json:"name"`
	Units      string  `json:"units"`
	Count      int     `json:"count"`
	Seconds    float64 `json:"seconds"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// Speedup compares a current micro benchmark against the baseline.
type Speedup struct {
	Throughput  float64 `json:"throughput_x"`   // baseline ns/op ÷ current ns/op
	AllocsRatio float64 `json:"allocs_ratio_x"` // baseline allocs/op ÷ current (+1 each to tolerate zero)
}

// Output is the BENCH_sim.json schema.
type Output struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Micro       []Bench            `json:"micro"`
	Macro       []Macro            `json:"macro"`
	Baseline    []Bench            `json:"baseline"`
	Speedup     map[string]Speedup `json:"speedup_vs_baseline"`
}

// baseline is the pre-coalescing substrate (PR 8), measured with this very
// tool on the same benchmark bodies (Xeon 2.70GHz, go1.24, GOMAXPROCS=1).
// It is pinned here so the collective-state-machine refactor's gain stays
// visible in every future BENCH_sim.json. (The PR-4 closure-per-event
// engine, the previous pin, measured 58.40 ns/op engine-events, 4908 ns/op
// mpi-pingpong, 930208 ns/op allreduce-64.) Micros without a baseline entry
// (allreduce-512, pooled-sweep) are new in PR 9 and will be pinned at the
// next re-baseline.
var baseline = []Bench{
	{Name: "engine-events", NsPerOp: 16.194375868941652, AllocsPerOp: 0, BytesPerOp: 0, OpsPerSec: 1e9 / 16.194375868941652},
	{Name: "mpi-pingpong", NsPerOp: 3189.2800199747685, AllocsPerOp: 10, BytesPerOp: 3168, OpsPerSec: 1e9 / 3189.2800199747685},
	{Name: "allreduce-64", NsPerOp: 475035.12525849335, AllocsPerOp: 822, BytesPerOp: 116732, OpsPerSec: 1e9 / 475035.12525849335},
}

func toBench(name string, r testing.BenchmarkResult) Bench {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return Bench{
		Name:        name,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		OpsPerSec:   1e9 / ns,
	}
}

// benchEngineEvents measures raw event throughput: a single self-
// rescheduling event chain, the engine's absolute hot path.
func benchEngineEvents(b *testing.B) {
	b.ReportAllocs()
	e := sim.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.After(1, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchPingPong measures one simulated send+recv round trip between two
// ranks sharing a node.
func benchPingPong(b *testing.B) {
	b.ReportAllocs()
	e := sim.New()
	net := simnet.New(e, simnet.InfiniBand20G, 1)
	w := mpi.NewWorld(e, net, 2, perf.Grid5000, nil)
	payload := make([]float64, 128)
	w.Launch("a", 0, func(r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			r.Send(r.World(), 1, 0, payload, nil)
			if _, err := r.Recv(r.World(), 1, 1); err != nil {
				b.Error(err)
				return
			}
		}
	})
	w.Launch("b", 1, func(r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Recv(r.World(), 0, 0); err != nil {
				b.Error(err)
				return
			}
			r.Send(r.World(), 0, 1, payload, nil)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchAllreduce measures an n-rank simulated allreduce per op (4 ranks
// per node, the smoke-cluster density).
func benchAllreduce(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.New()
		net := simnet.New(e, simnet.InfiniBand20G, n/4)
		w := mpi.NewWorld(e, net, n, perf.Grid5000, nil)
		w.LaunchAll("p", func(r *mpi.Rank) {
			for i := 0; i < b.N; i++ {
				if _, err := r.AllreduceScalar(r.World(), mpi.OpSum, 1); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPooledSweep measures one full pass of the smoke grid through the
// pooled runner (SweepN reuses one engine + scratch across the grid's
// specs, Reset between them) — the layer this PR's engine pooling
// accelerates, as opposed to the per-collective micros above.
func benchPooledSweep(b *testing.B) {
	scs, err := smokeGrid()
	if err != nil {
		b.Fatal(err)
	}
	specs, err := experiments.SpecsFor(scs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepN(1, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// smokeGrid is the CI smoke scenario (scenarios/smoke.json) inlined so the
// tool runs from any working directory: HPCCG under all three modes on a
// small cluster.
func smokeGrid() ([]scenario.Scenario, error) {
	g := scenario.Grid{
		Apps:    []string{"hpccg"},
		Modes:   []scenario.Mode{scenario.Native, scenario.Classic, scenario.Intra},
		Procs:   []int{8},
		Degrees: []int{2},
		Iters:   3,
	}
	return g.Expand()
}

// runSweepMacro times repeated full runs of the smoke grid through the
// parallel sweep runner (fresh memo each repetition, so every scenario is
// simulated).
func runSweepMacro(reps int) (Macro, error) {
	scs, err := smokeGrid()
	if err != nil {
		return Macro{}, err
	}
	start := time.Now()
	count := 0
	for i := 0; i < reps; i++ {
		res, err := experiments.SweepScenarios(0, scs)
		if err != nil {
			return Macro{}, err
		}
		count += len(res)
	}
	el := time.Since(start).Seconds()
	return Macro{
		Name: "sweep-smoke", Units: "scenario-runs", Count: count,
		Seconds: el, RatePerSec: float64(count) / el,
	}, nil
}

// runCampaignMacro times a Monte Carlo failure campaign (GTC, classic
// replication, 8 logical ranks, exponential failures) and reports seeded
// trials per second. The rate includes the campaign's two fault-free
// reference runs, i.e. it is the end-to-end cost per trial at this trial
// count, which is what campaign wall time scales with.
func runCampaignMacro(trials int) (Macro, error) {
	ent, err := scenario.AppByName("gtc")
	if err != nil {
		return Macro{}, err
	}
	sc := campaign.Scenario{
		MTBF: sim.Seconds(0.05),
		Point: scenario.Scenario{
			Name: "bench/gtc/classic/p8",
			App:  "gtc", Config: scenario.MustRaw(ent.Paper(2, 0)),
			Mode: scenario.Classic, Logical: 8, Degree: 2,
		},
	}
	start := time.Now()
	if _, err := campaign.Run(campaign.Config{Trials: trials, Seed: 1}, []campaign.Scenario{sc}); err != nil {
		return Macro{}, err
	}
	el := time.Since(start).Seconds()
	return Macro{
		Name: "campaign-gtc-trials", Units: "trials", Count: trials,
		Seconds: el, RatePerSec: float64(trials) / el,
	}, nil
}

// runJobstreamMacro times the open-load jobstream service (the CI smoke
// workload inlined: two job classes, node failures, FCFS vs EASY crossed
// with native vs replicated jobs) and reports simulated job submissions
// per second of bench wall time — the end-to-end cost of the scheduler
// event loop plus policy decisions plus failure resolution.
func runJobstreamMacro(trials int) (Macro, error) {
	w := &scenario.Workload{
		Nodes: 16, Jobs: 40, Rates: []float64{8},
		MTBFSeconds: 10, Seed: 7,
		Mix: []scenario.JobClass{
			{Name: "hpccg-small", App: "hpccg", Config: json.RawMessage(`{"Iters": 5, "Scale": 64}`), Logical: 4, Weight: 2},
			{Name: "gtc-small", App: "gtc", Config: json.RawMessage(`{"Steps": 2, "Scale": 512}`), Logical: 2, Weight: 1},
		},
		Schedulers: []string{"fcfs", "easy"},
		Policies:   []string{"native", "replicate"},
	}
	cells := len(w.Rates) * len(w.Schedulers) * len(w.Policies) * trials
	jobs := cells * w.Jobs
	start := time.Now()
	if _, err := jobstream.Run(jobstream.Config{Trials: trials}, w); err != nil {
		return Macro{}, err
	}
	el := time.Since(start).Seconds()
	return Macro{
		Name: "jobstream-smoke", Units: "jobs", Count: jobs,
		Seconds: el, RatePerSec: float64(jobs) / el,
	}, nil
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output JSON path")
	reps := flag.Int("sweep-reps", 3, "repetitions of the smoke-grid sweep macro benchmark")
	trials := flag.Int("trials", 1000, "seeded trials for the campaign macro benchmark (1000 amortizes the reference runs)")
	jsTrials := flag.Int("jobstream-trials", 5, "seeded trials per cell for the jobstream macro benchmark")
	minSpeedup := flag.Float64("min-speedup", 0, "exit nonzero if any speedup_vs_baseline throughput falls below this (0 disables)")
	flag.Parse()

	micro := []Bench{
		toBench("engine-events", testing.Benchmark(benchEngineEvents)),
		toBench("mpi-pingpong", testing.Benchmark(benchPingPong)),
		toBench("allreduce-64", testing.Benchmark(benchAllreduce(64))),
		toBench("allreduce-512", testing.Benchmark(benchAllreduce(512))),
		toBench("pooled-sweep", testing.Benchmark(benchPooledSweep)),
	}
	speedup := make(map[string]Speedup, len(baseline))
	for _, base := range baseline {
		for _, cur := range micro {
			if cur.Name != base.Name {
				continue
			}
			speedup[cur.Name] = Speedup{
				Throughput:  base.NsPerOp / cur.NsPerOp,
				AllocsRatio: float64(base.AllocsPerOp+1) / float64(cur.AllocsPerOp+1),
			}
		}
	}

	var macro []Macro
	for _, run := range []func() (Macro, error){
		func() (Macro, error) { return runSweepMacro(*reps) },
		func() (Macro, error) { return runCampaignMacro(*trials) },
		func() (Macro, error) { return runJobstreamMacro(*jsTrials) },
	} {
		m, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		macro = append(macro, m)
	}

	o := Output{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Micro:       micro,
		Macro:       macro,
		Baseline:    baseline,
		Speedup:     speedup,
	}
	b, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	for _, m := range micro {
		if s, ok := speedup[m.Name]; ok {
			fmt.Printf("%-16s %10.1f ns/op %6d allocs/op %8d B/op  (%.2fx vs baseline)\n",
				m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, s.Throughput)
		} else {
			fmt.Printf("%-16s %10.1f ns/op %6d allocs/op %8d B/op  (no baseline)\n",
				m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		}
	}
	for _, m := range macro {
		fmt.Printf("%-20s %6d %s in %.2fs = %.1f/s\n", m.Name, m.Count, m.Units, m.Seconds, m.RatePerSec)
	}
	fmt.Printf("wrote %s\n", *out)

	if *minSpeedup > 0 {
		bad := false
		for name, s := range speedup {
			if s.Throughput < *minSpeedup {
				fmt.Fprintf(os.Stderr, "bench: %s regressed: %.3fx vs baseline < %.3fx floor\n",
					name, s.Throughput, *minSpeedup)
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
	}
}
