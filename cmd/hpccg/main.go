// Command hpccg runs the HPCCG mini-application on the simulated cluster,
// mirroring the original Mantevo binary's interface (nx ny nz) with added
// fault-tolerance controls.
//
// Examples:
//
//	hpccg -nx 16 -ny 16 -nz 16 -procs 64 -mode intra
//	hpccg -mode intra -kill 1:0@0.5   # crash replica lane 0 of rank 1 at 50% of the ref runtime
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	nx := flag.Int("nx", 16, "local grid x extent")
	ny := flag.Int("ny", 16, "local grid y extent")
	nz := flag.Int("nz", 16, "local grid z extent")
	iters := flag.Int("iters", 25, "CG iterations")
	procs := flag.Int("procs", 16, "physical processes")
	tasks := flag.Int("tasks", 8, "tasks per intra-parallel section")
	modeName := flag.String("mode", "intra", "native | classic | intra")
	kill := flag.String("kill", "", "crash spec rank:lane@frac (replicated modes only)")
	jsonOut := flag.Bool("json", false, "emit the run report as JSON")
	flag.Parse()
	asJSON = *jsonOut

	mode, err := scenario.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpccg: %v\n", err)
		os.Exit(2)
	}

	cfg := hpccg.Config{
		Nx: *nx, Ny: *ny, Nz: *nz,
		Iters: *iters, Tasks: *tasks, Scale: 1, PlaneScale: 1,
		IntraDdot: true, IntraSparsemv: true,
	}
	logical := *procs
	if mode.Replicated() {
		logical = *procs / 2
	}
	if logical < 1 {
		fmt.Fprintln(os.Stderr, "hpccg: need at least 1 logical process")
		os.Exit(2)
	}

	var sched *fault.Schedule
	if *kill != "" {
		if !mode.Replicated() {
			fmt.Fprintln(os.Stderr, "hpccg: -kill requires a replicated mode")
			os.Exit(2)
		}
		var rank, lane int
		var frac float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(*kill, "@", " "), "%d:%d %f", &rank, &lane, &frac); err != nil {
			fmt.Fprintf(os.Stderr, "hpccg: bad -kill spec %q: %v\n", *kill, err)
			os.Exit(2)
		}
		// Reference runtime (an extra fault-free simulation), to place the
		// crash fraction.
		refWall := run(mode, logical, cfg, nil, false)
		sched = &fault.Schedule{Crashes: []fault.Crash{{
			Logical: rank, Lane: lane, Time: sim.Time(float64(refWall) * frac),
		}}}
		run(mode, logical, cfg, sched, true)
		return
	}
	run(mode, logical, cfg, nil, true)
}

func run(mode experiments.Mode, logical int, cfg hpccg.Config, sched *fault.Schedule, report bool) sim.Time {
	cluster, err := experiments.NewCluster(experiments.ClusterConfig{
		Logical: logical,
		Mode:    mode,
		SendLog: sched != nil,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpccg:", err)
		os.Exit(1)
	}
	if sched != nil {
		sched.Install(cluster.E, cluster.Sys)
		for _, c := range sched.Crashes {
			if !asJSON {
				fmt.Printf("arming crash of replica (rank %d, lane %d) at t=%v\n", c.Logical, c.Lane, c.Time)
			}
		}
	}
	var res *hpccg.Result
	rankFailed := false
	cluster.Launch(func(rt core.Runner) {
		r, err := hpccg.Run(rt, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: %v\n", rt.LogicalRank(), err)
			rankFailed = true
			return
		}
		if rt.LogicalRank() == 0 && res == nil {
			res = r
		}
	})
	wall, err := cluster.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpccg:", err)
		os.Exit(1)
	}
	if rankFailed {
		fmt.Fprintln(os.Stderr, "hpccg: application ranks failed")
		os.Exit(1)
	}
	if !report || res == nil {
		return wall
	}
	if asJSON {
		reportJSON(mode, cluster.PhysProcs(), logical, cfg, wall, res)
		return wall
	}
	fmt.Printf("mode=%s procs=%d logical=%d grid=%dx%dx%d iters=%d\n",
		mode, cluster.PhysProcs(), logical, cfg.Nx, cfg.Ny, cfg.Nz, res.Iters)
	fmt.Printf("wall=%v residual=%.3e\n", wall, res.Residual)
	names := make([]string, 0, len(res.Kernels))
	for n := range res.Kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		kt := res.Kernels[n]
		fmt.Printf("  %-10s %10v  (%d calls, update wait %v)\n", n, kt.Wall, kt.Calls, kt.UpdateWait)
	}
	st := res.Stats
	fmt.Printf("sections=%d tasksRun=%d tasksReceived=%d recovered=%d updateBytes=%d\n",
		st.Sections, st.TasksRun, st.TasksReceived, st.TasksRecovered, st.UpdateBytes)
	return wall
}

// asJSON switches the run report to JSON (-json flag).
var asJSON bool

type jsonReport struct {
	Mode          string                              `json:"mode"`
	PhysProcs     int                                 `json:"phys_procs"`
	Logical       int                                 `json:"logical"`
	Grid          string                              `json:"grid"`
	Iters         int                                 `json:"iters"`
	WallSeconds   float64                             `json:"wall_seconds"`
	Residual      float64                             `json:"residual"`
	Kernels       map[string]experiments.KernelResult `json:"kernels"`
	Sections      int                                 `json:"sections"`
	TasksRun      int                                 `json:"tasks_run"`
	TasksReceived int                                 `json:"tasks_received"`
	TasksRecov    int                                 `json:"tasks_recovered"`
	UpdateBytes   int64                               `json:"update_bytes"`
}

func reportJSON(mode experiments.Mode, phys, logical int, cfg hpccg.Config, wall sim.Time, res *hpccg.Result) {
	rep := jsonReport{
		Mode:          mode.String(),
		PhysProcs:     phys,
		Logical:       logical,
		Grid:          fmt.Sprintf("%dx%dx%d", cfg.Nx, cfg.Ny, cfg.Nz),
		Iters:         res.Iters,
		WallSeconds:   wall.Seconds(),
		Residual:      res.Residual,
		Kernels:       experiments.KernelResults(res.Kernels),
		Sections:      res.Stats.Sections,
		TasksRun:      res.Stats.TasksRun,
		TasksReceived: res.Stats.TasksReceived,
		TasksRecov:    res.Stats.TasksRecovered,
		UpdateBytes:   res.Stats.UpdateBytes,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "hpccg:", err)
		os.Exit(1)
	}
}
