// Command hpccg runs the HPCCG mini-application on the simulated cluster,
// mirroring the original Mantevo binary's interface (nx ny nz) with added
// fault-tolerance controls.
//
// Examples:
//
//	hpccg -nx 16 -ny 16 -nz 16 -procs 64 -mode intra
//	hpccg -mode intra -kill 1:0@0.5   # crash replica lane 0 of rank 1 at 50% of the ref runtime
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/sim"
)

func main() {
	nx := flag.Int("nx", 16, "local grid x extent")
	ny := flag.Int("ny", 16, "local grid y extent")
	nz := flag.Int("nz", 16, "local grid z extent")
	iters := flag.Int("iters", 25, "CG iterations")
	procs := flag.Int("procs", 16, "physical processes")
	tasks := flag.Int("tasks", 8, "tasks per intra-parallel section")
	modeName := flag.String("mode", "intra", "native | classic | intra")
	kill := flag.String("kill", "", "crash spec rank:lane@frac (replicated modes only)")
	flag.Parse()

	var mode experiments.Mode
	switch *modeName {
	case "native":
		mode = experiments.Native
	case "classic":
		mode = experiments.Classic
	case "intra":
		mode = experiments.Intra
	default:
		fmt.Fprintf(os.Stderr, "hpccg: unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	cfg := hpccg.Config{
		Nx: *nx, Ny: *ny, Nz: *nz,
		Iters: *iters, Tasks: *tasks, Scale: 1, PlaneScale: 1,
		IntraDdot: true, IntraSparsemv: true,
	}
	logical := *procs
	if mode.Replicated() {
		logical = *procs / 2
	}
	if logical < 1 {
		fmt.Fprintln(os.Stderr, "hpccg: need at least 1 logical process")
		os.Exit(2)
	}

	// Reference runtime, to place the crash fraction.
	refWall := run(mode, logical, cfg, nil, false)

	var sched *fault.Schedule
	if *kill != "" {
		if !mode.Replicated() {
			fmt.Fprintln(os.Stderr, "hpccg: -kill requires a replicated mode")
			os.Exit(2)
		}
		var rank, lane int
		var frac float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(*kill, "@", " "), "%d:%d %f", &rank, &lane, &frac); err != nil {
			fmt.Fprintf(os.Stderr, "hpccg: bad -kill spec %q: %v\n", *kill, err)
			os.Exit(2)
		}
		sched = &fault.Schedule{Crashes: []fault.Crash{{
			Logical: rank, Lane: lane, Time: sim.Time(float64(refWall) * frac),
		}}}
		run(mode, logical, cfg, sched, true)
		return
	}
	run(mode, logical, cfg, nil, true)
}

func run(mode experiments.Mode, logical int, cfg hpccg.Config, sched *fault.Schedule, report bool) sim.Time {
	cluster := experiments.NewCluster(experiments.ClusterConfig{
		Logical: logical,
		Mode:    mode,
		SendLog: sched != nil,
	})
	if sched != nil {
		sched.Install(cluster.E, cluster.Sys)
		for _, c := range sched.Crashes {
			fmt.Printf("arming crash of replica (rank %d, lane %d) at t=%v\n", c.Logical, c.Lane, c.Time)
		}
	}
	var res *hpccg.Result
	cluster.Launch(func(rt core.Runner) {
		r, err := hpccg.Run(rt, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: %v\n", rt.LogicalRank(), err)
			return
		}
		if rt.LogicalRank() == 0 && res == nil {
			res = r
		}
	})
	wall, err := cluster.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpccg:", err)
		os.Exit(1)
	}
	if !report || res == nil {
		return wall
	}
	fmt.Printf("mode=%s procs=%d logical=%d grid=%dx%dx%d iters=%d\n",
		mode, cluster.PhysProcs(), logical, cfg.Nx, cfg.Ny, cfg.Nz, res.Iters)
	fmt.Printf("wall=%v residual=%.3e\n", wall, res.Residual)
	names := make([]string, 0, len(res.Kernels))
	for n := range res.Kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		kt := res.Kernels[n]
		fmt.Printf("  %-10s %10v  (%d calls, update wait %v)\n", n, kt.Wall, kt.Calls, kt.UpdateWait)
	}
	st := res.Stats
	fmt.Printf("sections=%d tasksRun=%d tasksReceived=%d recovered=%d updateBytes=%d\n",
		st.Sections, st.TasksRun, st.TasksReceived, st.TasksRecovered, st.UpdateBytes)
	return wall
}
