// Command intrasim regenerates the paper's evaluation figures on the
// simulated cluster.
//
// Usage:
//
//	intrasim -exp fig5a          # one experiment
//	intrasim -exp all            # everything (the full evaluation)
//	intrasim -list               # show available experiments
//	intrasim -exp fig5a -procs 64   # smaller cluster for quick runs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5a, fig5b, fig6a, fig6b, fig6c, fig6d, ckpt, granularity, inout, all)")
	procs := flag.Int("procs", 0, "override physical process count (0 = paper value)")
	iters := flag.Int("iters", 0, "override solver iterations/steps (0 = default)")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list {
		fmt.Println(`fig5a        HPCCG kernels (waxpby/ddot/sparsemv), 512 physical processes
fig5b        HPCCG weak scaling, 128/256/512 physical processes
fig6a        AMG, 27-point stencil, PCG
fig6b        AMG, 7-point stencil, GMRES
fig6c        GTC particle-in-cell
fig6d        MiniGhost 27-point stencil
ckpt         checkpoint/restart vs replication model (Section II)
granularity  ablation: tasks per section (Section V-B discussion)
inout        ablation: copy-restore vs atomic update application (Section III-B2)
degree       extension: replication degree 1/2/3 on a constant problem
all          everything above`)
		return
	}

	run := func(id string) error {
		t, err := runExperiment(id, *procs, *iters)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(t.String())
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig6d", "ckpt", "granularity", "inout", "degree"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintln(os.Stderr, "intrasim:", err)
			os.Exit(1)
		}
	}
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func runExperiment(id string, procs, iters int) (*experiments.Table, error) {
	switch id {
	case "fig5a":
		return experiments.Fig5a(orDefault(procs, 512), orDefault(iters, 10))
	case "fig5b":
		counts := []int{128, 256, 512}
		if procs > 0 {
			counts = []int{procs}
		}
		return experiments.Fig5b(counts, orDefault(iters, 10))
	case "fig6a":
		return experiments.Fig6a(orDefault(procs, 252))
	case "fig6b":
		return experiments.Fig6b(orDefault(procs, 252))
	case "fig6c":
		return experiments.Fig6c(orDefault(procs, 256))
	case "fig6d":
		return experiments.Fig6d(orDefault(procs, 256))
	case "ckpt":
		return experiments.CkptModelTable(), nil
	case "granularity":
		return experiments.AblationTaskGranularity(orDefault(procs, 64))
	case "inout":
		return experiments.AblationInoutMode(orDefault(procs, 64))
	case "degree":
		return experiments.AblationDegree(orDefault(procs, 32))
	default:
		return nil, fmt.Errorf("unknown experiment %q (try -list)", id)
	}
}
