// Command intrasim regenerates the paper's evaluation figures on the
// simulated cluster.
//
// Usage:
//
//	intrasim -exp fig5a          # one experiment
//	intrasim -exp all            # everything (the full evaluation)
//	intrasim -exp all -json      # the same, as a JSON array of tables
//	intrasim -list               # show available experiments
//	intrasim -exp fig5a -procs 64   # smaller cluster for quick runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	procs := flag.Int("procs", 0, "override physical process count (0 = paper value)")
	iters := flag.Int("iters", 0, "override solver iterations/steps (0 = default)")
	jsonOut := flag.Bool("json", false, "emit a JSON array of tables instead of text")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list {
		for _, id := range experiments.FigureIDs {
			fmt.Printf("%-12s %s\n", id, experiments.FigureDescriptions[id])
		}
		fmt.Printf("%-12s everything above\n", "all")
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.FigureIDs
	}
	var tables []*experiments.Table
	for _, id := range ids {
		t, err := experiments.RunFigure(id, *procs, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "intrasim: %s: %v\n", id, err)
			os.Exit(1)
		}
		tables = append(tables, t)
		if !*jsonOut {
			fmt.Println(t.String())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "intrasim:", err)
			os.Exit(1)
		}
	}
}
