// Command sweep fans experiment grids out across all available cores, one
// sim.Engine per worker, and reports results as aligned tables or JSON.
//
// Two front ends share the runner:
//
// Figure mode regenerates the paper's evaluation in parallel:
//
//	sweep -figures all
//	sweep -figures fig5a,fig6c -json
//
// Grid mode explores arbitrary scenario grids beyond the paper's fixed
// figures — any cross product of application, mode, physical process
// count, replication degree, interconnect and machine model:
//
//	sweep -app hpccg -modes native,classic,intra -procs 32,64,128
//	sweep -app gtc -modes intra -procs 64 -degrees 2,3 -net eth10g -json
//
// Campaign mode layers Monte Carlo failure injection over the grid: per
// scenario point it runs -trials seeded simulations with crash schedules
// drawn from an exponential per-replica MTBF, and aggregates makespan,
// efficiency and survival statistics with confidence intervals next to the
// analytic §II checkpoint/restart model:
//
//	sweep -mode campaign -app hpccg -procs 16 -mtbf 0.05,0.2,1
//	sweep -mode campaign -app gtc -modes intra -trials 200 -seed 7 -json
//
// Identical points inside one sweep are simulated once (content-keyed
// memo); results keep the grid order regardless of the worker count, so
// output is byte-identical to a -workers 1 run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func main() {
	figures := flag.String("figures", "", "comma-separated figure ids, or 'all' (figure mode)")
	app := flag.String("app", "", "application grid: hpccg | amg | gtc | minighost (grid mode)")
	modesFlag := flag.String("modes", "native,classic,intra", "grid: comma-separated modes")
	procsFlag := flag.String("procs", "64", "grid: comma-separated process counts (physical budget for hpccg, logical ranks for amg/gtc/minighost); figure mode: single override")
	degreesFlag := flag.String("degrees", "2", "grid: comma-separated replication degrees")
	iters := flag.Int("iters", 0, "override solver iterations/steps (0 = default)")
	tasks := flag.Int("tasks", 0, "grid: override tasks per section (0 = default)")
	netName := flag.String("net", "ib20g", "grid: interconnect model ("+nameList(simnet.Nets)+")")
	machineName := flag.String("machine", "grid5000", "grid: machine model ("+nameList(perf.Machines)+")")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables")
	list := flag.Bool("list", false, "list figure ids and exit")
	modeFlag := flag.String("mode", "", "'campaign' runs Monte Carlo failure injection over the -app grid")
	trials := flag.Int("trials", 100, "campaign: seeded trials per scenario point")
	seed := flag.Int64("seed", 1, "campaign: master seed (trial seeds derive deterministically)")
	mtbfFlag := flag.String("mtbf", "0.2", "campaign: comma-separated per-replica MTBF values in virtual seconds")
	horizon := flag.Float64("horizon", 0, "campaign: crash-window in virtual seconds (0 = fault-free wall time; crashes drawn past a run's completion are no-ops)")
	ckptDelta := flag.Float64("ckpt-delta", 0, "campaign: analytic checkpoint cost in seconds (0 = 5% of fault-free wall)")
	ckptRestart := flag.Float64("ckpt-restart", 0, "campaign: analytic restart cost in seconds (0 = ckpt-delta)")
	flag.Parse()
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if *workers > 0 {
		// The sweep pool sizes itself from GOMAXPROCS, so bounding it here
		// covers figure mode (whose sweeps run inside RunFigure) too.
		runtime.GOMAXPROCS(*workers)
	}

	if *list {
		for _, id := range experiments.FigureIDs {
			fmt.Printf("%-12s %s\n", id, experiments.FigureDescriptions[id])
		}
		return
	}

	switch {
	case *modeFlag == "campaign":
		if *figures != "" {
			fail("-mode campaign uses the -app grid, not -figures")
		}
		if *app == "" {
			fail("-mode campaign needs an -app grid")
		}
		modes := *modesFlag
		if !setFlags["modes"] {
			modes = "classic,intra" // campaigns need replicas to crash
		}
		runCampaign(*app, modes, *procsFlag, *degreesFlag, *iters, *tasks,
			*netName, *machineName, *workers,
			*trials, *seed, *mtbfFlag, *horizon, *ckptDelta, *ckptRestart, *jsonOut)
	case *modeFlag != "":
		fail("unknown -mode %q (only 'campaign')", *modeFlag)
	case *figures != "" && *app != "":
		fail("use either -figures or -app, not both")
	case *figures != "":
		for _, gridOnly := range []string{"modes", "degrees", "tasks", "net", "machine"} {
			if setFlags[gridOnly] {
				fail("-%s only applies to grid mode (-app); figures run on their paper platform", gridOnly)
			}
		}
		procsOverride := ""
		if setFlags["procs"] {
			procsOverride = *procsFlag
		}
		runFigures(*figures, procsOverride, *iters, *jsonOut)
	case *app != "":
		runGrid(*app, *modesFlag, *procsFlag, *degreesFlag, *iters, *tasks,
			*netName, *machineName, *workers, *jsonOut)
	default:
		fail("nothing to do: pass -figures or -app (see -h)")
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(2)
}

func nameList[V any](m map[string]V) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, " | ")
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fail("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out
}

func parseModes(s string) []experiments.Mode {
	var out []experiments.Mode
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "native":
			out = append(out, experiments.Native)
		case "classic":
			out = append(out, experiments.Classic)
		case "intra":
			out = append(out, experiments.Intra)
		default:
			fail("unknown mode %q (native | classic | intra)", f)
		}
	}
	return out
}

// runFigures regenerates the selected paper figures (each internally a
// parallel sweep) and prints them as text or one JSON array.
func runFigures(sel, procsFlag string, iters int, jsonOut bool) {
	ids := strings.Split(sel, ",")
	if sel == "all" {
		ids = experiments.FigureIDs
	}
	procs := 0
	if procsFlag != "" {
		// A single explicit -procs overrides the paper scale, as in intrasim.
		vals := parseInts(procsFlag)
		if len(vals) != 1 {
			fail("figure mode takes a single -procs value")
		}
		procs = vals[0]
	}
	var tables []*experiments.Table
	for _, id := range ids {
		t, err := experiments.RunFigure(strings.TrimSpace(id), procs, iters)
		if err != nil {
			fail("%s: %v", id, err)
		}
		tables = append(tables, t)
	}
	if jsonOut {
		emitJSON(tables)
		return
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
}

// appFor binds the grid application to its paper configuration, with the
// per-logical problem sizing each app's figure uses. For HPCCG (weak
// scaling) the per-rank problem grows with the replication degree, so the
// total logical work stays constant on an equal physical budget.
func appFor(app string, mode experiments.Mode, degree, iters, tasks int) experiments.App {
	switch app {
	case "hpccg":
		if iters <= 0 {
			iters = 10
		}
		cfg := experiments.HPCCGPaperConfig(experiments.Native, iters, false)
		if mode.Replicated() {
			cfg.Nz *= degree
		}
		if tasks > 0 {
			cfg.Tasks = tasks
		}
		return experiments.HPCCG(cfg)
	case "amg":
		cfg := experiments.Fig6aConfig()
		if iters > 0 {
			cfg.Iters = iters
		}
		if tasks > 0 {
			cfg.Tasks = tasks
		}
		return experiments.AMG(cfg)
	case "gtc":
		cfg := experiments.Fig6cConfig()
		if iters > 0 {
			cfg.Steps = iters
		}
		if tasks > 0 {
			cfg.Zones = tasks
		}
		return experiments.GTC(cfg)
	case "minighost":
		cfg := experiments.Fig6dConfig()
		if iters > 0 {
			cfg.Steps = iters
		}
		if tasks > 0 {
			cfg.Tasks = tasks
		}
		return experiments.MiniGhost(cfg)
	default:
		fail("unknown app %q (hpccg | amg | gtc | minighost)", app)
		return experiments.App{}
	}
}

// runGrid builds the cross product of the grid flags, sweeps it, and
// reports one row per point with efficiency against the native run at the
// same physical budget where the grid contains one.
func runGrid(app, modesFlag, procsFlag, degreesFlag string, iters, tasks int,
	netName, machineName string, workers int, jsonOut bool) {
	net, ok := simnet.Nets[netName]
	if !ok {
		fail("unknown net %q (%s)", netName, nameList(simnet.Nets))
	}
	machine, ok := perf.Machines[machineName]
	if !ok {
		fail("unknown machine %q (%s)", machineName, nameList(perf.Machines))
	}
	modes := parseModes(modesFlag)
	procs := parseInts(procsFlag)
	degrees := parseInts(degreesFlag)

	// Two comparison protocols, matching the paper's figures. HPCCG weak-
	// scales (Fig 5): -procs is the physical budget, replicated modes run
	// p/d logical ranks on a doubled per-rank problem, so total work is
	// constant at equal resources. The fixed-size apps (Fig 6): -procs is
	// the logical rank count, replicated modes take p*d physical procs.
	weakScaling := app == "hpccg"

	var specs []experiments.Spec
	var groupOf []int // the -procs value each spec belongs to
	for _, p := range procs {
		for _, mode := range modes {
			for _, d := range degrees {
				if mode == experiments.Native && d != degrees[0] {
					continue // native has no replicas; one spec per p
				}
				logical := p
				name := fmt.Sprintf("%s/%s/p%d", app, mode, p)
				if mode.Replicated() {
					if weakScaling {
						if p%d != 0 {
							fail("-procs %d is not divisible by degree %d", p, d)
						}
						logical = p / d
					}
					name = fmt.Sprintf("%s/d%d", name, d)
				}
				if logical < 1 {
					fail("%d processes cannot host degree %d replication", p, d)
				}
				specs = append(specs, experiments.Spec{
					Name: name, Mode: mode, Logical: logical, Degree: d,
					Net: net, Machine: machine,
					App: appFor(app, mode, d, iters, tasks),
				})
				groupOf = append(groupOf, p)
			}
		}
	}

	results, err := experiments.SweepN(workers, specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	// Native baseline per -procs group, for the efficiency column.
	baseline := map[int]*experiments.Measure{}
	for i, r := range results {
		if specs[i].Mode == experiments.Native {
			baseline[groupOf[i]] = r.Measure
		}
	}

	if jsonOut {
		emitJSON(struct {
			Net     string               `json:"net"`
			Machine string               `json:"machine"`
			Results []experiments.Result `json:"results"`
		}{netName, machineName, results})
		return
	}
	t := &experiments.Table{
		ID:    "sweep",
		Title: fmt.Sprintf("%s on %s / %s", app, netName, machineName),
		Header: []string{"point", "mode", "logical", "phys", "time (s)",
			"upd wait (s)", "efficiency", "memo"},
	}
	for i, r := range results {
		eff := "-"
		if native := baseline[groupOf[i]]; native != nil {
			eff = fmt.Sprintf("%.2f", experiments.Efficiency(native, r.Measure))
		}
		memo := ""
		if r.Memoized {
			memo = "hit"
		}
		t.AddRow(r.Name, r.Mode, fmt.Sprintf("%d", r.Logical),
			fmt.Sprintf("%d", r.PhysProcs),
			fmt.Sprintf("%.3f", r.AppSeconds),
			fmt.Sprintf("%.3f", r.UpdateWaitSeconds),
			eff, memo)
	}
	t.Note("efficiency is resource-normalized vs the native run of the same point; '-' when the grid has no native")
	fmt.Println(t.String())
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fail("bad float list %q", s)
		}
		out = append(out, v)
	}
	return out
}

// runCampaign builds the scenario grid (cross product of app grid flags and
// -mtbf), runs cfg.Trials seeded failure injections per point through the
// campaign engine, and reports the aggregates as a table or JSON.
func runCampaign(app, modesFlag, procsFlag, degreesFlag string, iters, tasks int,
	netName, machineName string, workers, trials int, seed int64,
	mtbfFlag string, horizon, ckptDelta, ckptRestart float64, jsonOut bool) {
	net, ok := simnet.Nets[netName]
	if !ok {
		fail("unknown net %q (%s)", netName, nameList(simnet.Nets))
	}
	machine, ok := perf.Machines[machineName]
	if !ok {
		fail("unknown machine %q (%s)", machineName, nameList(perf.Machines))
	}
	modes := parseModes(modesFlag)
	procs := parseInts(procsFlag)
	degrees := parseInts(degreesFlag)
	mtbfs := parseFloats(mtbfFlag)

	// Same two comparison protocols as grid mode: HPCCG weak-scales (-procs
	// is the physical budget; the native reference runs the full budget),
	// the fixed-size apps pin the logical rank count.
	weakScaling := app == "hpccg"

	var scenarios []campaign.Scenario
	for _, p := range procs {
		for _, mode := range modes {
			if !mode.Replicated() {
				fail("campaign mode %s has no replicas to crash (use classic and/or intra)", mode)
			}
			for _, d := range degrees {
				for _, m := range mtbfs {
					logical := p
					sc := campaign.Scenario{
						Mode: mode, Degree: d, MTBF: sim.Seconds(m),
						Net: net, Machine: machine,
						App: appFor(app, mode, d, iters, tasks),
					}
					if weakScaling {
						if p%d != 0 {
							fail("-procs %d is not divisible by degree %d", p, d)
						}
						logical = p / d
						sc.NativeApp = appFor(app, experiments.Native, d, iters, tasks)
						sc.NativeLogical = p
					}
					if logical < 1 {
						fail("%d processes cannot host degree %d replication", p, d)
					}
					sc.Logical = logical
					sc.Name = fmt.Sprintf("%s/%s/p%d/d%d/mtbf%g", app, mode, p, d, m)
					scenarios = append(scenarios, sc)
				}
			}
		}
	}

	res, err := campaign.Run(campaign.Config{
		Trials: trials, Seed: seed, Workers: workers,
		Horizon: sim.Seconds(horizon), CkptDelta: ckptDelta, CkptRestart: ckptRestart,
	}, scenarios)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if jsonOut {
		emitJSON(struct {
			Net     string `json:"net"`
			Machine string `json:"machine"`
			*campaign.Result
		}{netName, machineName, res})
		return
	}
	fmt.Println(res.Table().String())
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
