// Command sweep fans experiment grids out across all available cores, one
// sim.Engine per worker, and reports results as aligned tables or JSON.
// Every front end speaks the same language: the canonical scenario type of
// internal/scenario.
//
// Figure mode regenerates the paper's evaluation in parallel:
//
//	sweep -figures all
//	sweep -figures fig5a,fig6c -json
//
// Grid mode explores arbitrary scenario grids beyond the paper's fixed
// figures — any cross product of application, mode, physical process
// count, replication degree, interconnect and machine model:
//
//	sweep -app hpccg -modes native,classic,intra -procs 32,64,128
//	sweep -app gtc -modes intra -procs 64 -degrees 2,3 -net eth10g -json
//
// Scenario-file mode loads a checked-in scenario file (a grid, an explicit
// scenario list, or a figure reproduction — see scenarios/ and README.md),
// validates it, expands it and runs it:
//
//	sweep -spec scenarios/fig5a.json
//	sweep -spec scenarios/smoke.json -json
//	sweep -spec scenarios/campaign-mtbf.json -mode campaign
//	sweep -spec scenarios/fig5b.json -validate   # check without running
//
// Campaign mode layers Monte Carlo failure injection over the grid: per
// scenario point it runs -trials seeded simulations with crash schedules
// drawn from an exponential per-replica MTBF, and aggregates makespan,
// efficiency and survival statistics with confidence intervals next to the
// analytic §II checkpoint/restart model:
//
//	sweep -mode campaign -app hpccg -procs 16 -mtbf 0.05,0.2,1
//	sweep -mode campaign -app gtc -modes intra -trials 200 -seed 7 -json
//
// -ft ccr adds the measured checkpoint/restart side of the §II comparison:
// a cCR series at the native resource budget, measured by replaying each
// point's native makespan under seeded failures with periodic checkpoints,
// rollbacks and restarts (internal/ckptsim), reported in a three-way table
// — measured replication, measured cCR, Daly's analytic prediction — with
// the measured crossover MTBF next to ckpt.CrossoverMTBF. Weak-scaling
// apps share one physical budget across the sides; fixed-size apps follow
// the grid convention of placing replicas on extra resources (degree×
// procs), and the efficiency metric is resource-normalized so the
// comparison stays commensurable:
//
//	sweep -mode campaign -ft ccr -app gtc -procs 8 -mtbf 0.01,0.1,1
//	sweep -mode campaign -ft ccr -app hpccg -ckpt-tau 0.05 -ckpt-delta 0.01 -mtbf 0.05,0.5
//	sweep -spec scenarios/campaign-ccr-vs-replication.json -mode campaign
//
// -list enumerates every registry: applications, figures, interconnect and
// machine models. Identical points inside one sweep are simulated once
// (content-keyed memo); results keep the grid order regardless of the
// worker count, so output is byte-identical to a -workers 1 run.
//
// The persistent result store extends that memo across processes: -store
// DIR backs the run with a content-addressed on-disk cache (points already
// present are served without simulating; fresh ones are appended), -shard
// i/N turns the run into one shard of a multi-process campaign (it
// simulates and persists only the unique points with index ≡ i mod N,
// reporting a populate summary instead of results), and the merge
// subcommand re-runs the same grid against the merged store — every point
// a cache hit, so the output is byte-identical to a single-process run —
// then verifies any stored campaign aggregates, compacts the store to one
// canonical file and reports hits/misses on stderr (a warm run shows
// misses=0):
//
//	sweep -spec scenarios/smoke.json -json -store results -shard 0/3
//	sweep -spec scenarios/smoke.json -json -store results -shard 1/3
//	sweep -spec scenarios/smoke.json -json -store results -shard 2/3
//	sweep merge -spec scenarios/smoke.json -json -store results
//
// Explore mode (-mode explore) spends a global trial budget adaptively
// instead of a fixed per-point count: CI-width-driven refinement batches
// trials where the relative CI95 is widest, the ccr-vs-replication
// crossover is located by bisection on the MTBF axis with budgeted
// CI-separated probes, and each ccr point's optimal checkpoint interval is
// golden-sectioned over measured replays on common failure traces
// (internal/explore). Trial streams derive from scenario fingerprints, so
// the output is byte-identical at any -workers count and a store-backed
// re-run is fully warm (misses=0), probe points included:
//
//	sweep -mode explore -spec scenarios/explore-crossover.json -json
//	sweep -mode explore -app gtc -procs 8 -ft ccr -mtbf 0.01,0.1,1 -budget 2000 -target-ci 0.03
//	sweep -mode explore -spec scenarios/explore-crossover.json -store results -json
//	sweep merge -mode explore -spec scenarios/explore-crossover.json -store results -json
//
// Jobstream mode runs a workload scenario file (a "workload" section; see
// scenarios/jobstream-*.json) as an open-load cluster service: a seeded
// Poisson job stream placed by pluggable schedulers under per-job
// fault-tolerance policies, compared side by side on identical arrival and
// failure streams (internal/jobstream). It composes with the store and
// shard machinery like a campaign — populate shards own cells by index,
// and a merge (or any warm rerun) serves every cell from the store:
//
//	sweep -mode jobstream -spec scenarios/jobstream-smoke.json
//	sweep -mode jobstream -spec scenarios/jobstream-policies.json -trials 10 -json
//	sweep -mode jobstream -spec scenarios/jobstream-smoke.json -store results -shard 0/3
//	sweep merge -mode jobstream -spec scenarios/jobstream-smoke.json -store results
//
// -progress D prints a heartbeat to stderr every D (e.g. -progress 2s):
// simulation units done/planned, plus store hits/misses when one is open.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/jobstream"
	"repro/internal/perf"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// storeCtx carries the persistent-store wiring through the run paths: the
// open store (nil = none), the shard this process populates (inactive =
// run everything), and whether this is the merge pass.
type storeCtx struct {
	st    *store.Store
	shard store.Shard
	merge bool
}

func main() {
	// The merge subcommand reuses the whole flag grammar: strip it before
	// parsing and remember the mode.
	args := os.Args[1:]
	mergeMode := len(args) > 0 && args[0] == "merge"
	if mergeMode {
		args = args[1:]
	}

	figures := flag.String("figures", "", "comma-separated figure ids, or 'all' (figure mode)")
	app := flag.String("app", "", "comma-separated application grid (grid mode; see -list)")
	modesFlag := flag.String("modes", "native,classic,intra", "grid: comma-separated modes")
	procsFlag := flag.String("procs", "64", "grid: comma-separated process counts (physical budget for weak-scaling apps, logical ranks otherwise); figure mode: single override")
	degreesFlag := flag.String("degrees", "2", "grid: comma-separated replication degrees")
	iters := flag.Int("iters", 0, "override solver iterations/steps (0 = default)")
	tasks := flag.Int("tasks", 0, "grid: override tasks per section (0 = default)")
	netName := flag.String("net", "ib20g", "grid: interconnect model (see -list)")
	machineName := flag.String("machine", "grid5000", "grid: machine model (see -list)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables")
	list := flag.Bool("list", false, "list registered apps, figures, nets and machines, then exit")
	specFile := flag.String("spec", "", "run a scenario file (see scenarios/)")
	validate := flag.Bool("validate", false, "with -spec: load, validate and expand the file, but do not run it")
	modeFlag := flag.String("mode", "", "'campaign' runs Monte Carlo failure injection over the -app grid or the -spec file; 'jobstream' runs a workload -spec file as an open-load cluster service")
	trials := flag.Int("trials", 100, "campaign/jobstream: seeded trials per point or cell (jobstream default 5)")
	seed := flag.Int64("seed", 1, "campaign/jobstream: master seed (jobstream default: the workload's own)")
	mtbfFlag := flag.String("mtbf", "0.2", "campaign: comma-separated per-replica MTBF values in virtual seconds")
	horizon := flag.Float64("horizon", 0, "campaign: crash-window in virtual seconds (0 = fault-free wall time; crashes drawn past a run's completion are no-ops)")
	ckptDelta := flag.Float64("ckpt-delta", 0, "campaign: checkpoint cost in seconds, analytic and measured ccr (0 = 5% of fault-free wall)")
	ckptRestart := flag.Float64("ckpt-restart", 0, "campaign: restart cost in seconds, analytic and measured ccr (0 = ckpt-delta)")
	ckptTau := flag.Float64("ckpt-tau", 0, "campaign: ccr checkpoint interval in seconds (0 = Daly's optimal interval per point)")
	ft := flag.String("ft", "replication", "campaign: fault-tolerance sides to measure — 'replication' (the -modes grid) or 'ccr' (adds a measured checkpoint/restart series at the native budget next to it)")
	budget := flag.Int("budget", 0, "explore: global adaptive trial budget (0 = default 4000)")
	round := flag.Int("round", 0, "explore: trials per point per allocation round (0 = default 10)")
	targetCI := flag.Float64("target-ci", 0, "explore: refinement target — widest acceptable relative CI95 per point (0 = default 0.05)")
	bracketRatio := flag.Float64("bracket-ratio", 0, "explore: crossover bisection stops when bracket hi/lo reaches this ratio (0 = default 1.5)")
	tauTraces := flag.Int("tau-traces", 0, "explore: failure traces per optimal-tau objective evaluation (0 = default 24)")
	storeDir := flag.String("store", "", "back the run with a persistent result store in this directory (content-addressed cache; see the package docs)")
	shardFlag := flag.String("shard", "", "with -store: populate only shard i/N of the run (e.g. 0/3) and report a summary instead of results")
	progress := flag.Duration("progress", 0, "print a progress heartbeat to stderr at this interval (e.g. 2s; 0 = off)")
	flag.CommandLine.Parse(args)
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if *workers > 0 {
		// The sweep pool sizes itself from GOMAXPROCS, so bounding it here
		// covers figure mode (whose sweeps run inside RunFigure) too.
		runtime.GOMAXPROCS(*workers)
	}

	if *list {
		listRegistries(os.Stdout)
		return
	}

	if *modeFlag != "campaign" && *modeFlag != "explore" {
		for _, flagName := range []string{"mtbf", "horizon", "ckpt-delta", "ckpt-restart", "ckpt-tau", "ft"} {
			if setFlags[flagName] {
				fail("-%s requires -mode campaign or -mode explore", flagName)
			}
		}
	}
	if *modeFlag != "campaign" && *modeFlag != "jobstream" {
		if setFlags["trials"] {
			fail("-trials requires -mode campaign or -mode jobstream (explore allocates trials from -budget)")
		}
		if *modeFlag != "explore" && setFlags["seed"] {
			fail("-seed requires -mode campaign, explore or jobstream")
		}
	}
	if *modeFlag != "explore" {
		for _, flagName := range []string{"budget", "round", "target-ci", "bracket-ratio", "tau-traces"} {
			if setFlags[flagName] {
				fail("-%s requires -mode explore", flagName)
			}
		}
	}
	measureCCR := false
	switch *ft {
	case "replication":
	case "ccr", "ccr,replication", "replication,ccr":
		measureCCR = true
	default:
		fail("unknown -ft %q (replication | ccr)", *ft)
	}

	ccfg := campaign.Config{
		Trials: *trials, Seed: *seed, Workers: *workers,
		Horizon:   sim.Seconds(*horizon),
		CkptDelta: *ckptDelta, CkptRestart: *ckptRestart, CkptTau: *ckptTau,
	}
	ecfg := explore.Config{
		Budget: *budget, Round: *round, TargetCI: *targetCI,
		BracketRatio: *bracketRatio, TauTraces: *tauTraces,
		Seed: *seed, Workers: *workers,
		Horizon:   sim.Seconds(*horizon),
		CkptDelta: *ckptDelta, CkptRestart: *ckptRestart, CkptTau: *ckptTau,
	}
	// Jobstream defaults differ: unset -trials means the subsystem's own
	// default, and an unset -seed defers to the workload's seed.
	jcfg := jobstream.Config{Workers: *workers}
	if setFlags["trials"] {
		jcfg.Trials = *trials
	}
	if setFlags["seed"] {
		jcfg.Seed = *seed
	}

	sctx := storeCtx{merge: mergeMode}
	if mergeMode && *storeDir == "" {
		fail("merge needs a -store directory")
	}
	if *shardFlag != "" {
		if mergeMode {
			fail("merge runs the whole grid; -shard only applies to populate runs")
		}
		if *modeFlag == "explore" {
			fail("-shard does not apply to -mode explore: the adaptive allocation is a single sequential decision process (share work through -store instead)")
		}
		if *storeDir == "" {
			fail("-shard needs a -store directory")
		}
		sh, err := store.ParseShard(*shardFlag)
		if err != nil {
			fail("%v", err)
		}
		sctx.shard = sh
	}
	if *storeDir != "" {
		if *figures != "" {
			fail("-store does not apply to -figures mode (run the figure through a -spec file)")
		}
		if *validate {
			fail("-store conflicts with -validate: nothing runs")
		}
		label := "run"
		if sctx.shard.Active() {
			label = sctx.shard.String()
		} else if mergeMode {
			label = "merge"
		}
		st, err := store.Open(*storeDir, label)
		if err != nil {
			fail("%v", err)
		}
		sctx.st = st
	}

	if *progress > 0 {
		// Heartbeat: simulation units done/planned so far, plus the store's
		// running hit/miss counters when one is open. Dies with the process.
		go func() {
			t := time.NewTicker(*progress)
			defer t.Stop()
			for range t.C {
				done, total := experiments.Progress.Snapshot()
				line := fmt.Sprintf("sweep: progress %d/%d units", done, total)
				if sctx.st != nil {
					s := sctx.st.Stats()
					line += fmt.Sprintf("; store hits=%d misses=%d", s.Hits, s.Misses)
				}
				if status := experiments.Progress.Status(); status != "" {
					line += "; " + status
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}()
	}

	switch {
	case *validate && *specFile == "":
		fail("-validate needs a -spec file")
	case *specFile != "":
		for _, flagName := range []string{"figures", "app", "modes", "procs", "degrees",
			"iters", "tasks", "net", "machine", "mtbf", "ft"} {
			if setFlags[flagName] {
				fail("-%s conflicts with -spec: the scenario file is the whole grid", flagName)
			}
		}
		f, err := scenario.Load(*specFile)
		if err != nil {
			fail("%v", err)
		}
		if *validate {
			validateSpec(f)
			return
		}
		if f.Workload != nil && *modeFlag != "jobstream" {
			fail("%s is a workload file: run it with -mode jobstream", *specFile)
		}
		switch *modeFlag {
		case "":
			if err := runSpecFile(os.Stdout, f, *workers, *jsonOut, sctx); err != nil {
				fail("%v", err)
			}
		case "campaign":
			if err := runCampaignSpec(os.Stdout, f, ccfg, *jsonOut, sctx); err != nil {
				fail("%v", err)
			}
		case "explore":
			if err := runExploreSpec(os.Stdout, f, ecfg, *jsonOut, sctx); err != nil {
				fail("%v", err)
			}
		case "jobstream":
			if f.Workload == nil {
				fail("-mode jobstream needs a workload file (%s has no workload section)", *specFile)
			}
			if err := runJobstream(os.Stdout, f, jcfg, *jsonOut, sctx); err != nil {
				fail("%v", err)
			}
		default:
			fail("unknown -mode %q (campaign | explore | jobstream)", *modeFlag)
		}
	case *modeFlag == "jobstream":
		fail("-mode jobstream needs a -spec workload file")
	case *modeFlag == "campaign":
		if *figures != "" {
			fail("-mode campaign uses the -app grid, not -figures")
		}
		if *app == "" {
			fail("-mode campaign needs an -app grid or a -spec file")
		}
		modes := *modesFlag
		if !setFlags["modes"] {
			modes = "classic,intra" // campaigns need replicas to crash
		}
		scs, err := campaignGrid(*app, modes, *procsFlag, *degreesFlag, *iters, *tasks,
			*netName, *machineName, *mtbfFlag, measureCCR)
		if err != nil {
			fail("%v", err)
		}
		if err := runCampaign(os.Stdout, ccfg, scs, *netName, *machineName, *jsonOut, sctx); err != nil {
			fail("%v", err)
		}
	case *modeFlag == "explore":
		if *figures != "" {
			fail("-mode explore uses the -app grid, not -figures")
		}
		if *app == "" {
			fail("-mode explore needs an -app grid or a -spec file")
		}
		modes := *modesFlag
		if !setFlags["modes"] {
			modes = "classic,intra"
		}
		scs, err := campaignGrid(*app, modes, *procsFlag, *degreesFlag, *iters, *tasks,
			*netName, *machineName, *mtbfFlag, measureCCR)
		if err != nil {
			fail("%v", err)
		}
		if err := runExplore(os.Stdout, ecfg, scs, *netName, *machineName, *jsonOut, sctx); err != nil {
			fail("%v", err)
		}
	case *modeFlag != "":
		fail("unknown -mode %q (campaign | explore | jobstream)", *modeFlag)
	case *figures != "" && *app != "":
		fail("use either -figures or -app, not both")
	case *figures != "":
		for _, gridOnly := range []string{"modes", "degrees", "tasks", "net", "machine"} {
			if setFlags[gridOnly] {
				fail("-%s only applies to grid mode (-app); figures run on their paper platform", gridOnly)
			}
		}
		procsOverride := ""
		if setFlags["procs"] {
			procsOverride = *procsFlag
		}
		runFigures(*figures, procsOverride, *iters, *jsonOut)
	case *app != "":
		g := gridFromFlags(*app, *modesFlag, *procsFlag, *degreesFlag, *iters, *tasks, *netName, *machineName)
		if err := runGrid(os.Stdout, g, *workers, *jsonOut, sctx); err != nil {
			fail("%v", err)
		}
	default:
		fail("nothing to do: pass -figures, -app or -spec (see -h and -list)")
	}

	if sctx.st != nil {
		if mergeMode {
			// The merge pass leaves one canonical sorted shard behind.
			if err := sctx.st.Compact(); err != nil {
				fail("%v", err)
			}
		}
		stats := sctx.st.Stats()
		if err := sctx.st.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "sweep: store %s: %s\n", *storeDir, stats.String())
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(2)
}

// listRegistries enumerates every registry the scenario layer knows about.
func listRegistries(w io.Writer) {
	fmt.Fprintln(w, "apps:")
	for _, e := range scenario.Apps() {
		fmt.Fprintf(w, "  %-12s %s\n", e.Name, e.Description)
	}
	fmt.Fprintln(w, "figures:")
	for _, id := range experiments.FigureIDs {
		fmt.Fprintf(w, "  %-12s %s\n", id, experiments.FigureDescriptions[id])
	}
	fmt.Fprintf(w, "nets:         %s\n", strings.Join(simnet.NetNames(), " | "))
	fmt.Fprintf(w, "machines:     %s\n", strings.Join(perf.MachineNames(), " | "))
	fmt.Fprintln(w, "jobstream schedulers:")
	for _, e := range jobstream.SchedulerList() {
		fmt.Fprintf(w, "  %-12s %s\n", e.Name, e.Description)
	}
	fmt.Fprintln(w, "jobstream policies:")
	for _, e := range jobstream.PolicyList() {
		fmt.Fprintf(w, "  %-12s %s\n", e.Name, e.Description)
	}
}

func validateSpec(f *scenario.File) {
	if f.Workload != nil {
		w := f.Workload
		if err := w.Validate(); err != nil {
			fail("%v", err)
		}
		if err := jobstream.CheckNames(w); err != nil {
			fail("%v", err)
		}
		fmt.Printf("ok: workload: %d rates × %d schedulers × %d policies, %d jobs/trial on %d nodes\n",
			len(w.Rates), len(w.Schedulers), len(w.Policies), w.Jobs, w.Nodes)
		return
	}
	scs, err := f.Expand()
	if err != nil {
		fail("%v", err)
	}
	if f.Figure != "" {
		if _, err := experiments.FigureByID(f.Figure); err != nil {
			fail("%v", err)
		}
	}
	fmt.Printf("ok: %d scenarios\n", len(scs))
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(f))
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fail("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fail("bad float list %q", s)
		}
		out = append(out, v)
	}
	return out
}

func parseModes(s string) []scenario.Mode {
	var out []scenario.Mode
	for _, f := range strings.Split(s, ",") {
		m, err := scenario.ParseMode(strings.TrimSpace(f))
		if err != nil {
			fail("%v", err)
		}
		out = append(out, m)
	}
	return out
}

// runFigures regenerates the selected paper figures (each internally a
// parallel sweep) and prints them as text or one JSON array.
func runFigures(sel, procsFlag string, iters int, jsonOut bool) {
	ids := strings.Split(sel, ",")
	if sel == "all" {
		ids = experiments.FigureIDs
	}
	procs := 0
	if procsFlag != "" {
		// A single explicit -procs overrides the paper scale, as in intrasim.
		vals := parseInts(procsFlag)
		if len(vals) != 1 {
			fail("figure mode takes a single -procs value")
		}
		procs = vals[0]
	}
	var tables []*experiments.Table
	for _, id := range ids {
		t, err := experiments.RunFigure(strings.TrimSpace(id), procs, iters)
		if err != nil {
			fail("%s: %v", id, err)
		}
		tables = append(tables, t)
	}
	if jsonOut {
		emitJSON(os.Stdout, tables)
		return
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
}

// gridFromFlags is the declarative form of the grid flags: the same
// scenario.Grid a scenario file would carry.
func gridFromFlags(apps, modesFlag, procsFlag, degreesFlag string, iters, tasks int,
	netName, machineName string) scenario.Grid {
	return scenario.Grid{
		Apps:    splitList(apps),
		Modes:   parseModes(modesFlag),
		Procs:   parseInts(procsFlag),
		Degrees: parseInts(degreesFlag),
		Nets:    []string{netName}, Machines: []string{machineName},
		Iters: iters, Tasks: tasks,
	}
}

// runGrid expands the grid, sweeps it, and reports one row per point with
// efficiency against the native run at the same physical budget where the
// grid contains one. Scenario files carrying a grid go through the very
// same path, so flag-built and file-built grids produce byte-identical
// output.
func runGrid(w io.Writer, g scenario.Grid, workers int, jsonOut bool, sctx storeCtx) error {
	scs, err := g.Expand()
	if err != nil {
		return err
	}
	return runScenarios(w, "sweep", strings.Join(g.Apps, ","), scs, workers, jsonOut, sctx)
}

// populateScenarios runs one shard's slice of a plain sweep: only the
// owned unique points are simulated and persisted, and the report is a
// populate summary instead of results — a later merge run over the warm
// store emits those, byte-identical to a single-process sweep.
func populateScenarios(w io.Writer, sctx storeCtx, scs []scenario.Scenario, workers int, jsonOut bool) error {
	specs, err := experiments.SpecsFor(scs)
	if err != nil {
		return err
	}
	_, _, stats, err := experiments.PopulateStore(workers, sctx.st, sctx.shard, specs)
	if err != nil {
		return err
	}
	if jsonOut {
		emitJSON(w, struct {
			Shard string `json:"shard"`
			experiments.PopulateStats
		}{sctx.shard.String(), stats})
		return nil
	}
	fmt.Fprintf(w, "shard %s: %d specs, %d unique, %d owned, %d simulated, %d store hits, %d unkeyed\n",
		sctx.shard, stats.Specs, stats.Unique, stats.Owned, stats.Simulated, stats.Hits, stats.Unkeyed)
	return nil
}

// runScenarios sweeps any scenario list and reports it under the one
// {net, machine, results} envelope, with platform labels derived from the
// scenarios themselves.
func runScenarios(w io.Writer, id, label string, scs []scenario.Scenario, workers int, jsonOut bool, sctx storeCtx) error {
	if sctx.shard.Active() {
		return populateScenarios(w, sctx, scs, workers, jsonOut)
	}
	results, err := experiments.SweepScenariosStore(workers, sctx.st, scs)
	if err != nil {
		return err
	}
	netLabel, machineLabel := scenario.PlatformLabels(scs)
	if jsonOut {
		emitJSON(w, struct {
			Net     string               `json:"net"`
			Machine string               `json:"machine"`
			Results []experiments.Result `json:"results"`
		}{netLabel, machineLabel, results})
		return nil
	}
	title := fmt.Sprintf("%s on %s / %s", label, netLabel, machineLabel)
	fmt.Fprintln(w, scenarioTable(id, title, scs, results).String())
	return nil
}

// baselineGroup keys the native-baseline lookup: scenarios of one app on
// one platform with the same resource budget compare against each other.
// Platform keys are normalized ("" and the default's explicit name key
// together) and inline custom models key by content.
func baselineGroup(sc scenario.Scenario) string {
	budget := sc.Logical
	if ent, err := scenario.AppByName(sc.App); err == nil && ent.WeakScaling {
		budget = sc.PhysProcs()
	}
	net := scenario.PlatformLabel(sc.Net, simnet.DefaultNetName)
	if sc.NetConfig != nil {
		net = "custom:" + string(scenario.MustRaw(sc.NetConfig))
	}
	machine := scenario.PlatformLabel(sc.Machine, perf.DefaultMachineName)
	if sc.MachineConfig != nil {
		machine = "custom:" + string(scenario.MustRaw(sc.MachineConfig))
	}
	return fmt.Sprintf("%s|%s|%s|%d", sc.App, net, machine, budget)
}

// scenarioTable renders any scenario list's results with the grid-mode
// columns.
func scenarioTable(id, title string, scs []scenario.Scenario, results []experiments.Result) *experiments.Table {
	baseline := map[string]*experiments.Measure{}
	for i, r := range results {
		if scs[i].Mode == scenario.Native {
			baseline[baselineGroup(scs[i])] = r.Measure
		}
	}
	t := &experiments.Table{
		ID:    id,
		Title: title,
		Header: []string{"point", "mode", "logical", "phys", "time (s)",
			"upd wait (s)", "efficiency", "memo"},
	}
	for i, r := range results {
		eff := "-"
		if native := baseline[baselineGroup(scs[i])]; native != nil {
			eff = fmt.Sprintf("%.2f", experiments.Efficiency(native, r.Measure))
		}
		memo := ""
		if r.Memoized {
			memo = "hit"
		}
		t.AddRow(r.Name, r.Mode, fmt.Sprintf("%d", r.Logical),
			fmt.Sprintf("%d", r.PhysProcs),
			fmt.Sprintf("%.3f", r.AppSeconds),
			fmt.Sprintf("%.3f", r.UpdateWaitSeconds),
			eff, memo)
	}
	t.Note("efficiency is resource-normalized vs the native run of the same point; '-' when the grid has no native")
	return t
}

// runSpecFile runs a loaded scenario file: a figure reproduction when the
// file binds one, the shared grid path for pure grid files, and a generic
// scenario sweep otherwise.
func runSpecFile(w io.Writer, f *scenario.File, workers int, jsonOut bool, sctx storeCtx) error {
	if f.Figure != "" {
		scs, err := f.Expand()
		if err != nil {
			return err
		}
		if sctx.shard.Active() {
			return populateScenarios(w, sctx, scs, workers, jsonOut)
		}
		res, err := experiments.SweepScenariosStore(workers, sctx.st, scs)
		if err != nil {
			return err
		}
		t, err := experiments.RenderFigure(f.Figure, scs, res)
		if err != nil {
			return err
		}
		if jsonOut {
			emitJSON(w, []*experiments.Table{t})
			return nil
		}
		fmt.Fprintln(w, t.String())
		return nil
	}
	if f.Grid != nil && len(f.Scenarios) == 0 {
		return runGrid(w, *f.Grid, workers, jsonOut, sctx)
	}
	scs, err := f.Expand()
	if err != nil {
		return err
	}
	label := f.Name
	if label == "" {
		label = "scenario file"
	}
	return runScenarios(w, "spec", label, scs, workers, jsonOut, sctx)
}

// campaignGrid builds the campaign scenario grid from the grid flags and
// the MTBF axis, using each app's registered paper protocol. With
// measureCCR, every (app, procs) point additionally gets a measured
// coordinated checkpoint/restart series over the same MTBF axis at the
// native budget — the paper's Fig. 1 comparison. For weak-scaling apps
// both sides occupy the same -procs physical budget; fixed-size apps
// keep the grid convention (replicated points add replica resources,
// phys = procs×degree) and rely on resource-normalized efficiency.
func campaignGrid(apps, modesFlag, procsFlag, degreesFlag string, iters, tasks int,
	netName, machineName, mtbfFlag string, measureCCR bool) ([]campaign.Scenario, error) {
	modes := parseModes(modesFlag)
	procs := parseInts(procsFlag)
	degrees := parseInts(degreesFlag)
	mtbfs := parseFloats(mtbfFlag)

	var out []campaign.Scenario
	for _, appName := range splitList(apps) {
		ent, err := scenario.AppByName(appName)
		if err != nil {
			return nil, err
		}
		if ent.Paper == nil {
			return nil, fmt.Errorf("app %q has no paper grid binding", appName)
		}
		for _, p := range procs {
			if measureCCR {
				// The ccr series runs the app unreplicated on the full
				// physical budget; checkpoint parameters come from the
				// -ckpt-* flags (campaign.Config) or their defaults.
				for _, m := range mtbfs {
					out = append(out, campaign.Scenario{
						MTBF: sim.Seconds(m),
						Point: scenario.Scenario{
							Name: fmt.Sprintf("%s/ccr/p%d/mtbf%g", appName, p, m),
							App:  appName, Config: scenario.MustRaw(ent.Paper(iters, tasks)),
							Mode: scenario.CCR, Logical: p,
							Net: netName, Machine: machineName,
						},
					})
				}
			}
			for _, mode := range modes {
				if !mode.Replicated() {
					return nil, fmt.Errorf("campaign mode %s has no replicas to crash (use classic and/or intra; -ft ccr adds the checkpoint/restart side)", mode)
				}
				for _, d := range degrees {
					for _, m := range mtbfs {
						logical := p
						cfg := ent.Paper(iters, tasks)
						if ent.GrowPerDegree != nil {
							ent.GrowPerDegree(cfg, d)
						}
						sc := campaign.Scenario{MTBF: sim.Seconds(m)}
						if ent.WeakScaling {
							if p%d != 0 {
								return nil, fmt.Errorf("-procs %d is not divisible by degree %d", p, d)
							}
							logical = p / d
							// The native reference runs the full physical
							// budget on the ungrown per-rank problem.
							sc.Native = &scenario.Scenario{
								App: appName, Config: scenario.MustRaw(ent.Paper(iters, tasks)),
								Mode: scenario.Native, Logical: p,
								Net: netName, Machine: machineName,
							}
						}
						if logical < 1 {
							return nil, fmt.Errorf("%d processes cannot host degree %d replication", p, d)
						}
						sc.Point = scenario.Scenario{
							Name: fmt.Sprintf("%s/%s/p%d/d%d/mtbf%g", appName, mode, p, d, m),
							App:  appName, Config: scenario.MustRaw(cfg),
							Mode: mode, Logical: logical, Degree: d,
							Net: netName, Machine: machineName,
						}
						out = append(out, sc)
					}
				}
			}
		}
	}
	return out, nil
}

// runCampaign executes the campaign grid and reports the aggregates. With
// an active shard it runs campaign.Populate instead — only the owned
// trials are simulated, and mergeable per-scenario aggregates land in the
// store. The merge pass cross-checks every complete stored shard scheme
// against the pooled statistics before reporting.
func runCampaign(w io.Writer, cfg campaign.Config, scs []campaign.Scenario,
	netLabel, machineLabel string, jsonOut bool, sctx storeCtx) error {
	cfg.Store = sctx.st
	if sctx.shard.Active() {
		stats, err := campaign.Populate(cfg, scs, sctx.shard)
		if err != nil {
			return err
		}
		if jsonOut {
			emitJSON(w, struct {
				Shard string `json:"shard"`
				campaign.PopulateStats
			}{sctx.shard.String(), stats})
			return nil
		}
		fmt.Fprintf(w, "shard %s: %d scenarios × %d trials; sweep: %d unique, %d owned, %d simulated, %d store hits; %d ccr replays; %d aggregate records\n",
			sctx.shard, stats.Scenarios, stats.Trials, stats.Sweep.Unique, stats.Sweep.Owned,
			stats.Sweep.Simulated, stats.Sweep.Hits, stats.CCRReplays, stats.AggRecords)
		return nil
	}
	res, err := campaign.Run(cfg, scs)
	if err != nil {
		return err
	}
	if sctx.merge {
		verified, err := campaign.VerifyStoredAggregates(cfg, scs, res)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: campaign aggregates verified across %d shard scheme(s)\n", verified)
	}
	if jsonOut {
		emitJSON(w, struct {
			Net     string `json:"net"`
			Machine string `json:"machine"`
			*campaign.Result
		}{netLabel, machineLabel, res})
		return nil
	}
	fmt.Fprintln(w, res.Table().String())
	return nil
}

// runJobstream runs a workload scenario file through the jobstream
// subsystem. With an active shard it populates the store with the owned
// cells instead; a merge (or any run over a warm store) serves every cell
// from the store, so its output is byte-identical to a cold
// single-process run.
func runJobstream(w io.Writer, f *scenario.File, cfg jobstream.Config, jsonOut bool, sctx storeCtx) error {
	cfg.Store = sctx.st
	if sctx.shard.Active() {
		stats, err := jobstream.Populate(cfg, f.Workload, sctx.shard)
		if err != nil {
			return err
		}
		if jsonOut {
			emitJSON(w, struct {
				Shard string `json:"shard"`
				jobstream.PopulateStats
			}{sctx.shard.String(), stats})
			return nil
		}
		fmt.Fprintf(w, "shard %s: %d cells, %d owned, %d simulated, %d store hits\n",
			sctx.shard, stats.Cells, stats.Owned, stats.Simulated, stats.Hits)
		return nil
	}
	res, err := jobstream.Run(cfg, f.Workload)
	if err != nil {
		return err
	}
	res.Name = f.Name
	if jsonOut {
		emitJSON(w, res)
		return nil
	}
	fmt.Fprintln(w, res.Table(f.Workload.SlowdownBound()).String())
	return nil
}

// runCampaignSpec runs a scenario file whose points carry MTBF fault
// models as a campaign.
func runCampaignSpec(w io.Writer, f *scenario.File, cfg campaign.Config, jsonOut bool, sctx storeCtx) error {
	scs, err := f.Expand()
	if err != nil {
		return err
	}
	camp := make([]campaign.Scenario, len(scs))
	for i, sc := range scs {
		camp[i], err = campaign.FromScenario(sc)
		if err != nil {
			return err
		}
	}
	netLabel, machineLabel := scenario.PlatformLabels(scs)
	return runCampaign(w, cfg, camp, netLabel, machineLabel, jsonOut, sctx)
}

// runExplore drives the adaptive explorer over a campaign grid and reports
// the refined points, measured crossover brackets and tau searches. The
// stdout report is a pure function of (config, grid) — store-backed,
// merge and any worker count all emit identical bytes; store verification
// traffic goes to stderr.
func runExplore(w io.Writer, cfg explore.Config, scs []campaign.Scenario,
	netLabel, machineLabel string, jsonOut bool, sctx storeCtx) error {
	cfg.Store = sctx.st
	res, err := explore.Run(cfg, scs)
	if err != nil {
		return err
	}
	if sctx.st != nil {
		fmt.Fprintf(os.Stderr, "sweep: explore records byte-verified against store: %d\n", res.StoreVerified())
	}
	if jsonOut {
		emitJSON(w, struct {
			Net     string `json:"net"`
			Machine string `json:"machine"`
			*explore.Result
		}{netLabel, machineLabel, res})
		return nil
	}
	fmt.Fprintln(w, res.Table().String())
	return nil
}

// runExploreSpec runs a scenario file's MTBF-carrying points adaptively.
func runExploreSpec(w io.Writer, f *scenario.File, cfg explore.Config, jsonOut bool, sctx storeCtx) error {
	scs, err := f.Expand()
	if err != nil {
		return err
	}
	camp := make([]campaign.Scenario, len(scs))
	for i, sc := range scs {
		camp[i], err = campaign.FromScenario(sc)
		if err != nil {
			return err
		}
	}
	netLabel, machineLabel := scenario.PlatformLabels(scs)
	return runExplore(w, cfg, camp, netLabel, machineLabel, jsonOut, sctx)
}

func emitJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
