package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestFlagGridAndSpecFileEquivalent is the sweep-equivalence property: the
// grid built from CLI flags and the equivalent checked-in scenario file
// (scenarios/smoke.json) produce byte-identical JSON results.
func TestFlagGridAndSpecFileEquivalent(t *testing.T) {
	// The flag path: exactly what `sweep -app hpccg -procs 8 -iters 3
	// -json` builds.
	g := gridFromFlags("hpccg", "native,classic,intra", "8", "2", 3, 0, "ib20g", "grid5000")
	var fromFlags bytes.Buffer
	if err := runGrid(&fromFlags, g, 1, true); err != nil {
		t.Fatal(err)
	}

	// The file path: `sweep -spec scenarios/smoke.json -json`.
	f, err := scenario.Load("../../scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	var fromFile bytes.Buffer
	if err := runSpecFile(&fromFile, f, 1, true); err != nil {
		t.Fatal(err)
	}

	flagsJSON := zeroElapsed(t, fromFlags.String())
	fileJSON := zeroElapsed(t, fromFile.String())
	if flagsJSON != fileJSON {
		t.Fatalf("flag grid and spec file diverge:\n%s\nvs\n%s", flagsJSON, fileJSON)
	}
}

// zeroElapsed blanks the elapsed_ms lines — the only legitimately
// run-dependent field — leaving every simulated value byte-comparable.
func zeroElapsed(t *testing.T, s string) string {
	t.Helper()
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if strings.Contains(l, `"elapsed_ms"`) {
			lines[i] = `      "elapsed_ms": 0,`
		}
	}
	return strings.Join(lines, "\n")
}

// TestSpecFileWorkerIndependence reruns the smoke file fully parallel: the
// JSON must match the serial run byte for byte (modulo elapsed_ms), the
// property the CI job enforces via the real binary.
func TestSpecFileWorkerIndependence(t *testing.T) {
	f, err := scenario.Load("../../scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	var serial, parallel bytes.Buffer
	if err := runSpecFile(&serial, f, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := runSpecFile(&parallel, f, 8, true); err != nil {
		t.Fatal(err)
	}
	if zeroElapsed(t, serial.String()) != zeroElapsed(t, parallel.String()) {
		t.Fatal("worker count changed the spec-file output")
	}
}
