package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// TestFlagGridAndSpecFileEquivalent is the sweep-equivalence property: the
// grid built from CLI flags and the equivalent checked-in scenario file
// (scenarios/smoke.json) produce byte-identical JSON results.
func TestFlagGridAndSpecFileEquivalent(t *testing.T) {
	// The flag path: exactly what `sweep -app hpccg -procs 8 -iters 3
	// -json` builds.
	g := gridFromFlags("hpccg", "native,classic,intra", "8", "2", 3, 0, "ib20g", "grid5000")
	var fromFlags bytes.Buffer
	if err := runGrid(&fromFlags, g, 1, true, storeCtx{}); err != nil {
		t.Fatal(err)
	}

	// The file path: `sweep -spec scenarios/smoke.json -json`.
	f, err := scenario.Load("../../scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	var fromFile bytes.Buffer
	if err := runSpecFile(&fromFile, f, 1, true, storeCtx{}); err != nil {
		t.Fatal(err)
	}

	flagsJSON := zeroElapsed(t, fromFlags.String())
	fileJSON := zeroElapsed(t, fromFile.String())
	if flagsJSON != fileJSON {
		t.Fatalf("flag grid and spec file diverge:\n%s\nvs\n%s", flagsJSON, fileJSON)
	}
}

// zeroElapsed blanks the elapsed_ms lines — the only legitimately
// run-dependent field — leaving every simulated value byte-comparable.
func zeroElapsed(t *testing.T, s string) string {
	t.Helper()
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if strings.Contains(l, `"elapsed_ms"`) {
			lines[i] = `      "elapsed_ms": 0,`
		}
	}
	return strings.Join(lines, "\n")
}

// TestSpecFileWorkerIndependence reruns the smoke file fully parallel: the
// JSON must match the serial run byte for byte (modulo elapsed_ms), the
// property the CI job enforces via the real binary.
func TestSpecFileWorkerIndependence(t *testing.T) {
	f, err := scenario.Load("../../scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	var serial, parallel bytes.Buffer
	if err := runSpecFile(&serial, f, 1, true, storeCtx{}); err != nil {
		t.Fatal(err)
	}
	if err := runSpecFile(&parallel, f, 8, true, storeCtx{}); err != nil {
		t.Fatal(err)
	}
	if zeroElapsed(t, serial.String()) != zeroElapsed(t, parallel.String()) {
		t.Fatal("worker count changed the spec-file output")
	}
}

// TestCampaignCCRSpecWorkerIndependence runs the checked-in Fig. 1-style
// comparison file serially and fully parallel: the three-way JSON
// aggregate (measured cCR, measured replication, analytic models,
// crossovers) must be byte-identical — the acceptance property the CI
// smoke enforces via the real binary.
func TestCampaignCCRSpecWorkerIndependence(t *testing.T) {
	f, err := scenario.Load("../../scenarios/campaign-ccr-vs-replication.json")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		cfg := campaign.Config{Trials: 3, Seed: 9, Workers: workers}
		var buf bytes.Buffer
		if err := runCampaignSpec(&buf, f, cfg, true, storeCtx{}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	if parallel := run(8); parallel != serial {
		t.Fatal("worker count changed the ccr campaign output")
	}
	for _, want := range []string{`"mode": "cCR"`, `"mode": "SDR-MPI"`, `"mode": "intra"`,
		`"crossovers"`, `"ckpt_tau_seconds"`} {
		if !strings.Contains(serial, want) {
			t.Fatalf("three-way aggregate missing %s", want)
		}
	}
}

// TestCampaignCCRFlagGrid: -ft ccr adds a measured checkpoint/restart
// series next to the replicated modes, at the full physical budget.
func TestCampaignCCRFlagGrid(t *testing.T) {
	scs, err := campaignGrid("gtc", "classic,intra", "8", "2", 2, 0,
		"ib20g", "grid5000", "0.05,0.5", true)
	if err != nil {
		t.Fatal(err)
	}
	var ccr, repl int
	for _, sc := range scs {
		if sc.Point.Mode == scenario.CCR {
			ccr++
			if sc.Point.Logical != 8 {
				t.Fatalf("ccr point must use the full budget: %+v", sc.Point)
			}
		} else {
			repl++
		}
	}
	if ccr != 2 || repl != 4 {
		t.Fatalf("grid has %d ccr + %d replicated points, want 2 + 4", ccr, repl)
	}
	// Without -ft ccr the grid is unchanged.
	scs, err = campaignGrid("gtc", "classic,intra", "8", "2", 2, 0,
		"ib20g", "grid5000", "0.05,0.5", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if sc.Point.Mode == scenario.CCR {
			t.Fatal("-ft replication must not add ccr points")
		}
	}
	if len(scs) != 4 {
		t.Fatalf("replication-only grid has %d points, want 4", len(scs))
	}
}
