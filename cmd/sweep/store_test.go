package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/scenario"
	"repro/internal/store"
)

func openStore(t *testing.T, dir, label string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, label)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestShardedSpecFileMergeByteIdentical is the CLI acceptance property for
// plain sweeps: N shard populate runs over scenarios/smoke.json, executed
// in random order, followed by a merge run, reproduce the storeless
// -workers 1 output byte for byte (modulo elapsed_ms, which a store hit
// serves from populate time) — and the merge performs zero simulations.
func TestShardedSpecFileMergeByteIdentical(t *testing.T) {
	f, err := scenario.Load("../../scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := runSpecFile(&plain, f, 1, true, storeCtx{}); err != nil {
		t.Fatal(err)
	}
	want := zeroElapsed(t, plain.String())

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 3; round++ {
		shards := 2 + rng.Intn(3)
		dir := t.TempDir()
		for _, i := range rng.Perm(shards) {
			sh := store.Shard{Index: i, Count: shards}
			st := openStore(t, dir, sh.String())
			var buf bytes.Buffer
			if err := runSpecFile(&buf, f, 2, true, storeCtx{st: st, shard: sh}); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), `"shard": "`+sh.String()+`"`) {
				t.Fatalf("shard run must report a populate summary, got:\n%s", buf.String())
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		}

		st := openStore(t, dir, "merge")
		var merged bytes.Buffer
		if err := runSpecFile(&merged, f, 2, true, storeCtx{st: st, merge: true}); err != nil {
			t.Fatal(err)
		}
		if got := zeroElapsed(t, merged.String()); got != want {
			t.Fatalf("round %d (%d shards): merged output diverges from the storeless run:\n%s\nvs\n%s",
				round, shards, got, want)
		}
		if s := st.Stats(); s.Misses != 0 || s.Puts != 0 {
			t.Fatalf("round %d: merge was not fully warm: %+v", round, s)
		}
		if err := st.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		// A second warm run over the compacted store: still byte-identical,
		// still zero simulations.
		again := openStore(t, dir, "again")
		var warm bytes.Buffer
		if err := runSpecFile(&warm, f, 2, true, storeCtx{st: again}); err != nil {
			t.Fatal(err)
		}
		if zeroElapsed(t, warm.String()) != want {
			t.Fatalf("round %d: post-compaction warm run diverges", round)
		}
		if s := again.Stats(); s.Misses != 0 {
			t.Fatalf("round %d: warm run had misses: %+v", round, s)
		}
		if err := again.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedCampaignSpecMerge drives the checked-in ccr-vs-replication
// campaign through three shard populates and a merge, all via the CLI run
// path: the merged campaign JSON must equal the storeless run exactly (no
// elapsed fields in campaign output), with zero merge-time simulations and
// the stored shard aggregates verifying against the pooled statistics.
func TestShardedCampaignSpecMerge(t *testing.T) {
	f, err := scenario.Load("../../scenarios/campaign-ccr-vs-replication.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.Config{Trials: 3, Seed: 9, Workers: 2}
	var plain bytes.Buffer
	if err := runCampaignSpec(&plain, f, cfg, true, storeCtx{}); err != nil {
		t.Fatal(err)
	}

	const shards = 3
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	for _, i := range rng.Perm(shards) {
		sh := store.Shard{Index: i, Count: shards}
		st := openStore(t, dir, sh.String())
		var buf bytes.Buffer
		if err := runCampaignSpec(&buf, f, cfg, true, storeCtx{st: st, shard: sh}); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), `"shard": "`+sh.String()+`"`) {
			t.Fatalf("campaign shard run must report a populate summary, got:\n%s", buf.String())
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	st := openStore(t, dir, "merge")
	defer st.Close()
	var merged bytes.Buffer
	// merge: true exercises the CLI's aggregate verification path too.
	if err := runCampaignSpec(&merged, f, cfg, true, storeCtx{st: st, merge: true}); err != nil {
		t.Fatal(err)
	}
	if merged.String() != plain.String() {
		t.Fatalf("merged campaign diverges from the storeless run:\n%s\nvs\n%s",
			merged.String(), plain.String())
	}
	if s := st.Stats(); s.Misses != 0 {
		t.Fatalf("campaign merge was not fully warm: %+v", s)
	}
}

// TestCorruptStoreResimulatesCLI: damaging a stored record between runs
// must surface as re-simulation, never as wrong output.
func TestCorruptStoreResimulatesCLI(t *testing.T) {
	f, err := scenario.Load("../../scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st := openStore(t, dir, "seed")
	var first bytes.Buffer
	if err := runSpecFile(&first, f, 1, true, storeCtx{st: st}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	want := zeroElapsed(t, first.String())

	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shard files written: %v %v", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40 // flip a bit mid-file
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st = openStore(t, dir, "rerun")
	defer st.Close()
	var rerun bytes.Buffer
	if err := runSpecFile(&rerun, f, 1, true, storeCtx{st: st}); err != nil {
		t.Fatal(err)
	}
	if zeroElapsed(t, rerun.String()) != want {
		t.Fatal("corruption changed the output instead of forcing re-simulation")
	}
	s := st.Stats()
	if s.Corrupt == 0 && s.Truncated == 0 {
		t.Fatalf("damage went undetected: %+v", s)
	}
	if s.Misses == 0 || s.Puts == 0 {
		t.Fatalf("damaged record was not re-simulated and re-persisted: %+v", s)
	}
}
