// Package repro reproduces "Efficient Process Replication for MPI
// Applications: Sharing Work Between Replicas" (Ropars, Lefray, Kim,
// Schiper — IPDPS 2015) as a pure-Go system: a deterministic cluster
// simulator, an MPI-flavoured runtime, SDR-MPI-style active replication,
// the intra-parallelization runtime itself, the paper's four benchmark
// applications, and a harness regenerating every figure of the evaluation.
//
// See README.md for a tour, DESIGN.md for the architecture and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
// The root package holds only the figure-level benchmarks (bench_test.go).
package repro
