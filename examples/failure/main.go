// Failure demo: the Figure 2 scenario, live.
//
// Two replicas run a section whose task increments an inout variable
// (a <- a+1; b <- a*2). The replica that owns the task crashes after
// shipping the update for a but before shipping b — the exact partial
// update hazard of the paper. The survivor restores its snapshot of a and
// re-executes the task, ending with the correct a=2, b=4 instead of the
// corrupted a=3, b=6 of Figure 2b.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/replication"
)

func main() {
	cluster, err := experiments.NewCluster(experiments.ClusterConfig{
		Logical: 1,
		Mode:    experiments.Intra,
		SendLog: true,
	})
	if err != nil {
		fmt.Println("cluster:", err)
		return
	}
	cluster.Sys.Launch("fig2", func(p *replication.Proc) {
		a, b := 1.0, 0.0
		opts := core.Options{Mode: core.CopyRestore}
		if p.Lane == 0 {
			// Lane 0 owns task 0 under the block schedule; crash right
			// after the first argument's update is posted.
			opts.Hooks.AfterArgSend = func(sec, task, arg int) {
				if arg == 0 {
					fmt.Printf("[lane 0] sent update for a, crashing before b (t=%v)\n", p.R.Now())
					p.R.Crash()
				}
			}
		}
		rt := core.NewIntra(p, opts)
		rt.SectionBegin()
		id := rt.TaskRegister(func(c core.Ctx, args []core.Value) {
			pa := args[0].(core.Scalar).P
			pb := args[1].(core.Scalar).P
			*pa = *pa + 1
			*pb = *pa * 2
			c.Compute(perf.Work{Flops: 2})
		}, core.InOut, core.Out)
		rt.TaskLaunch(id, core.Scalar{P: &a}, core.Scalar{P: &b})
		if err := rt.SectionEnd(); err != nil {
			fmt.Printf("[lane %d] section failed: %v\n", p.Lane, err)
			return
		}
		fmt.Printf("[lane %d] section done: a=%g b=%g (recovered tasks: %d)\n",
			p.Lane, a, b, rt.Stats().TasksRecovered)
		if a == 2 && b == 4 {
			fmt.Printf("[lane %d] correct result despite the partial update (Figure 2c behavior)\n", p.Lane)
		}
	})
	if _, err := cluster.Run(); err != nil {
		fmt.Println("run failed:", err)
	}
}
