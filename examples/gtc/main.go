// GTC demo: inout task arguments under fire.
//
// Runs the GTC particle-in-cell surrogate (charge deposition + particle
// push, where new positions depend on old ones) on four replicated logical
// processes, injects an exponential failure schedule, and shows that the
// survivors finish with exactly the failure-free physics (conserved
// particle weight, identical field energy).
package main

import (
	"fmt"

	"repro/internal/apps/gtc"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/sim"
)

func main() {
	cfg := gtc.DefaultConfig()
	cfg.Steps = 8

	run := func(withFailures bool) (*gtc.Result, []fault.Crash) {
		cluster, err := experiments.NewCluster(experiments.ClusterConfig{
			Logical: 4,
			Mode:    experiments.Intra,
			SendLog: true,
		})
		if err != nil {
			panic(err) // the literal config above is always valid
		}
		var crashes []fault.Crash
		if withFailures {
			sched := fault.Exponential(4, 2, 300*sim.Microsecond, sim.Millisecond, 7)
			sched.Install(cluster.E, cluster.Sys)
			crashes = sched.Crashes
		}
		var res *gtc.Result
		cluster.Launch(func(rt core.Runner) {
			r, err := gtc.Run(rt, cfg)
			if err != nil {
				fmt.Println("rank failed:", err)
				return
			}
			if rt.LogicalRank() == 0 && res == nil {
				res = r
			}
		})
		if _, err := cluster.Run(); err != nil {
			fmt.Println("run failed:", err)
			return nil, nil
		}
		return res, crashes
	}

	clean, _ := run(false)
	faulty, crashes := run(true)
	if clean == nil || faulty == nil {
		return
	}

	fmt.Printf("failure-free : weight=%.6f fieldEnergy=%.6e time=%v\n",
		clean.TotalWeight, clean.FieldEnergy, clean.Total)
	fmt.Printf("with crashes : weight=%.6f fieldEnergy=%.6e time=%v\n",
		faulty.TotalWeight, faulty.FieldEnergy, faulty.Total)
	for _, c := range crashes {
		fmt.Printf("  crashed replica (rank %d, lane %d) at t=%v\n", c.Logical, c.Lane, c.Time)
	}
	if clean.FieldEnergy == faulty.FieldEnergy && clean.TotalWeight == faulty.TotalWeight {
		fmt.Println("physics identical despite failures: intra-parallelization is fault tolerant")
	} else {
		fmt.Println("MISMATCH: results diverged")
	}
}
