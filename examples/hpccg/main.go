// HPCCG demo: the paper's headline experiment in miniature.
//
// Runs the HPCCG conjugate-gradient mini-app on a 32-process simulated
// cluster in the three configurations of the evaluation — native Open MPI,
// classic active replication (SDR-MPI), and replication with
// intra-parallelization — and prints wall time and workload efficiency for
// each, plus the per-kernel breakdown of the intra run.
package main

import (
	"fmt"
	"sort"

	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	const phys = 32
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 16, 16, 16
	cfg.Iters = 20

	type outcome struct {
		mode     experiments.Mode
		procs    int
		wall     sim.Time
		residual float64
		kernels  map[string]sim.Time
	}
	var runs []outcome

	for _, mode := range []experiments.Mode{experiments.Native, experiments.Classic, experiments.Intra} {
		logical := phys
		c := cfg
		if mode.Replicated() {
			logical = phys / 2
			c.Nz *= 2 // double the per-logical problem, as in §V-C
		}
		var res *hpccg.Result
		cluster, err := experiments.NewCluster(experiments.ClusterConfig{Logical: logical, Mode: mode})
		if err != nil {
			fmt.Println(mode, "cluster:", err)
			continue
		}
		cluster.Launch(func(rt core.Runner) {
			r, err := hpccg.Run(rt, c)
			if err != nil {
				fmt.Println("rank failed:", err)
				return
			}
			if rt.LogicalRank() == 0 {
				res = r
			}
		})
		if _, err := cluster.Run(); err != nil {
			fmt.Println(mode, "failed:", err)
			return
		}
		ks := map[string]sim.Time{}
		for name, kt := range res.Kernels {
			ks[name] = kt.Wall
		}
		runs = append(runs, outcome{mode, cluster.PhysProcs(), res.Total, res.Residual, ks})
	}

	native := runs[0]
	fmt.Printf("%-10s %6s %12s %12s %6s\n", "config", "procs", "time", "residual", "eff")
	for _, r := range runs {
		eff := float64(native.wall) * float64(native.procs) / (float64(r.wall) * float64(r.procs))
		fmt.Printf("%-10s %6d %12v %12.3e %6.2f\n", r.mode, r.procs, r.wall, r.residual, eff)
	}

	intra := runs[2]
	fmt.Println("\nintra per-kernel wall time (rank 0):")
	names := make([]string, 0, len(intra.kernels))
	for n := range intra.kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-10s %v\n", n, intra.kernels[n])
	}
}
