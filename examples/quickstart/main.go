// Quickstart: the paper's running example (Figures 3 and 4).
//
// One logical MPI process is replicated on two simulated nodes; a waxpby
// computation (w = alpha*x + beta*y) is split into 8 intra-parallel tasks,
// so each replica computes half of w and ships its halves to the other
// replica. The program prints both replicas' views: identical results,
// half the tasks executed on each side.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernels"
)

func main() {
	const n = 1 << 16 // vector length
	const tasks = 8   // paper default: 8 tasks per section

	cluster, err := experiments.NewCluster(experiments.ClusterConfig{
		Logical: 1,
		Mode:    experiments.Intra,
	})
	if err != nil {
		fmt.Println("cluster:", err)
		return
	}
	cluster.Launch(func(rt core.Runner) {
		alpha, beta := 2.0, 3.0
		x := make(core.Float64s, n)
		y := make(core.Float64s, n)
		w := make(core.Float64s, n)
		for i := range x {
			x[i] = float64(i)
			y[i] = 1
		}

		// Intra_Section_begin / Intra_Task_register / Intra_Task_launch /
		// Intra_Section_end — the paper's API (Section III-C).
		rt.SectionBegin()
		id := rt.TaskRegister(func(c core.Ctx, args []core.Value) {
			out := args[0].(core.Float64s)
			lo := int(*args[1].(core.Scalar).P)
			c.Compute(kernels.Waxpby(alpha, x[lo:lo+len(out)], beta, y[lo:lo+len(out)], out))
		}, core.Out, core.In)
		offs := make([]float64, tasks)
		for i := 0; i < tasks; i++ {
			lo := n / tasks * i
			offs[i] = float64(lo)
			rt.TaskLaunch(id, w[lo:lo+n/tasks], core.Scalar{P: &offs[i]})
		}
		if err := rt.SectionEnd(); err != nil {
			fmt.Println("section failed:", err)
			return
		}

		st := rt.Stats()
		fmt.Printf("replica done at t=%v: w[1]=%g w[%d]=%g | tasks run locally: %d, received: %d\n",
			rt.Now(), w[1], n-1, w[n-1], st.TasksRun, st.TasksReceived)
	})
	if _, err := cluster.Run(); err != nil {
		fmt.Println("run failed:", err)
	}
}
