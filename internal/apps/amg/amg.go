// Package amg is a surrogate of the AMG2013 proxy application (LLNL ASC):
// a parallel multigrid-preconditioned Krylov solver for Laplace-type
// problems on 3D grids (§V-D, Figures 6a and 6b of the paper).
//
// AMG2013's algebraic hierarchy is replaced by a geometric multigrid
// V-cycle on the structured slab (the evaluation problems *are*
// structured Laplace problems), preserving the computational profile: the
// heavy stencil sweeps of the smoother, residual and matvec are
// intra-parallel sections; grid-transfer operators, vector updates and the
// Krylov orthogonalization remain replicated. Both of the paper's
// configurations are implemented: PCG on a 27-point operator (Fig 6a) and
// GMRES on a 7-point operator (Fig 6b).
package amg

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Solver selects the Krylov method.
type Solver string

// Supported solvers.
const (
	PCG   Solver = "pcg"
	GMRES Solver = "gmres"
)

// Config parameterizes an AMG run.
type Config struct {
	Nx, Ny, Nz  int     // local fine-grid dimensions (each a multiple of 2^(Levels-1))
	Levels      int     // multigrid levels
	Solver      Solver  // pcg (27-point) or gmres (7-point)
	Points      int     // stencil points: 27 or 7
	Iters       int     // Krylov iterations
	Restart     int     // GMRES restart length
	CoarseIters int     // smoothing sweeps on the coarsest level
	Tasks       int     // tasks per intra-parallel section
	SetupFactor float64 // AMG setup cost, in operator-sweep equivalents per level
	//            (coarsening, interpolation and RAP triple products; a large
	//            non-sectionable fraction of real AMG2013 runs)
	Scale       float64 // virtual-cost multiplier (volume)
	PlaneScale  float64 // wire-size multiplier for halo planes
	IntraSweeps bool    // run stencil sweeps as intra-parallel sections
}

// DefaultConfig returns a small PCG test configuration.
func DefaultConfig() Config {
	return Config{
		Nx: 8, Ny: 8, Nz: 8,
		Levels: 2, Solver: PCG, Points: 27,
		Iters: 8, Restart: 5, CoarseIters: 4,
		Tasks: 8, SetupFactor: 2, Scale: 1, PlaneScale: 1,
		IntraSweeps: true,
	}
}

// Result reports one replica's view of the run.
type Result struct {
	Residual float64
	Iters    int
	Kernels  map[string]*apputil.KernelTime
	Total    sim.Time
	Stats    core.Stats
}

const tagHaloBase = 400 // + 2*level (+1 for the downward plane)

// level holds one multigrid level's per-rank state.
type level struct {
	nx, ny, nz int
	x, b, r    *kernels.Slab // solution, right-hand side, residual
	tmp        *kernels.Slab
}

type app struct {
	rt     core.Runner
	cfg    Config
	clock  *apputil.Clock
	levels []*level
	diag   float64 // stencil diagonal
	off    float64 // stencil off-diagonal weight
}

// Run executes the AMG surrogate on the calling logical process, solving
// A x = b with b = A*ones, and returns the final residual norm.
func Run(rt core.Runner, cfg Config) (*Result, error) {
	a, err := newApp(rt, cfg)
	if err != nil {
		return nil, err
	}
	start := rt.Now()
	a.setup()
	var res *Result
	switch cfg.Solver {
	case PCG:
		res, err = a.pcg()
	case GMRES:
		res, err = a.gmres()
	default:
		return nil, fmt.Errorf("amg: unknown solver %q", cfg.Solver)
	}
	if err != nil {
		return nil, err
	}
	res.Total = rt.Now() - start
	res.Kernels = a.clock.Times
	res.Stats = *rt.Stats()
	return res, nil
}

func newApp(rt core.Runner, cfg Config) (*app, error) {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 8
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.PlaneScale <= 0 {
		cfg.PlaneScale = 1
	}
	if cfg.Points != 27 && cfg.Points != 7 {
		return nil, fmt.Errorf("amg: stencil must be 27 or 7 points, got %d", cfg.Points)
	}
	a := &app{rt: rt, cfg: cfg, clock: apputil.NewClock(rt)}
	if cfg.Points == 27 {
		a.diag, a.off = 26, -1
	} else {
		a.diag, a.off = 6, -1
	}
	nx, ny, nz := cfg.Nx, cfg.Ny, cfg.Nz
	for l := 0; l < cfg.Levels; l++ {
		if nx < 2 || ny < 2 || nz < 2 {
			return nil, fmt.Errorf("amg: grid too small for %d levels", cfg.Levels)
		}
		a.levels = append(a.levels, &level{
			nx: nx, ny: ny, nz: nz,
			x:   kernels.NewSlab(nx, ny, nz),
			b:   kernels.NewSlab(nx, ny, nz),
			r:   kernels.NewSlab(nx, ny, nz),
			tmp: kernels.NewSlab(nx, ny, nz),
		})
		nx, ny, nz = nx/2, ny/2, nz/2
	}
	return a, nil
}

// setup charges the AMG setup phase: graph coarsening, interpolation
// construction and the RAP triple product at every level, approximated as
// SetupFactor sparse-matrix sweeps per level. It is replicated work — the
// paper's intra-parallelization was applied to solve-phase kernels only.
func (a *app) setup() {
	if a.cfg.SetupFactor <= 0 {
		return
	}
	a.clock.Track("setup", func() {
		for _, lvl := range a.levels {
			rows := lvl.nx * lvl.ny * lvl.nz
			w := kernels.SpmvWork(rows, rows*a.cfg.Points).Scale(a.cfg.SetupFactor)
			a.rt.Compute(w.Scale(a.cfg.Scale))
		}
	})
}

// exchangeHalo refreshes a slab's z halo planes at the given level.
func (a *app) exchangeHalo(lvl int, s *kernels.Slab) error {
	var err error
	a.clock.Track("halo", func() {
		rank, size := a.rt.LogicalRank(), a.rt.LogicalSize()
		plane := s.Nx * s.Ny
		wire := int64(float64(8*plane) * a.cfg.PlaneScale)
		tag := tagHaloBase + 2*lvl
		if rank > 0 {
			if e := a.rt.SendSized(rank-1, tag, s.Plane(0), wire); e != nil {
				err = e
				return
			}
		}
		if rank < size-1 {
			if e := a.rt.SendSized(rank+1, tag+1, s.Plane(s.Nz-1), wire); e != nil {
				err = e
				return
			}
		}
		if rank > 0 {
			data, e := a.rt.Recv(rank-1, tag+1)
			if e != nil {
				err = e
				return
			}
			copy(s.Plane(-1), data)
		}
		if rank < size-1 {
			data, e := a.rt.Recv(rank+1, tag)
			if e != nil {
				err = e
				return
			}
			copy(s.Plane(s.Nz), data)
		}
	})
	return err
}

// applyStencil computes out = A(in) over the whole level as an
// intra-parallel section of z-block tasks (or replicated compute when
// sections are disabled). Halos of `in` must be current.
func (a *app) applyStencil(lvl *level, in, out *kernels.Slab, name string) error {
	var err error
	a.clock.Track(name, func() {
		if !a.cfg.IntraSweeps {
			a.rt.Compute(a.rawStencil(in, out, 0, lvl.nz).Scale(a.cfg.Scale))
			return
		}
		nTasks := a.cfg.Tasks
		if nTasks > lvl.nz {
			nTasks = lvl.nz
		}
		a.rt.SectionBegin()
		id := a.rt.TaskRegister(func(c core.Ctx, args []core.Value) {
			z0 := int(*args[1].(core.Scalar).P)
			z1 := int(*args[2].(core.Scalar).P)
			c.Compute(a.rawStencil(in, out, z0, z1).Scale(a.cfg.Scale))
		}, core.Out, core.In, core.In)
		bounds := make([]float64, 2*nTasks)
		plane := lvl.nx * lvl.ny
		for i := 0; i < nTasks; i++ {
			z0, z1 := apputil.TaskBounds(lvl.nz, nTasks, i)
			bounds[2*i], bounds[2*i+1] = float64(z0), float64(z1)
			outRange := out.V[(z0+1)*plane : (z1+1)*plane]
			a.rt.TaskLaunch(id, core.Scaled(core.Float64s(outRange), a.cfg.Scale),
				core.Scalar{P: &bounds[2*i]}, core.Scalar{P: &bounds[2*i+1]})
		}
		err = a.rt.SectionEnd()
	})
	return err
}

// rawStencil applies the level operator over interior planes [z0, z1).
// The math is computed geometrically, but the cost charged is that of a
// CSR sparse matrix-vector sweep with Points nonzeros per row: AMG2013
// stores every operator of its hierarchy as a general ParCSR matrix, so a
// sweep streams matrix values and column indices rather than re-reading a
// cached 4-plane window.
func (a *app) rawStencil(in, out *kernels.Slab, z0, z1 int) perf.Work {
	if a.cfg.Points == 27 {
		kernels.Stencil27Range(in, out, a.diag, a.off, z0, z1)
	} else {
		kernels.Stencil7Range(in, out, a.diag, a.off, z0, z1)
	}
	rows := (z1 - z0) * in.Nx * in.Ny
	return kernels.SpmvWork(rows, rows*a.cfg.Points)
}
