package amg_test

import (
	"math"
	"testing"

	"repro/internal/apps/amg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func runMode(t *testing.T, mode experiments.Mode, logical int, cfg amg.Config) (map[int]*amg.Result, sim.Time) {
	t.Helper()
	results := map[int]*amg.Result{}
	end, err := experiments.RunProgram(experiments.ClusterConfig{
		Logical: logical,
		Mode:    mode,
	}, func(rt core.Runner) {
		res, err := amg.Run(rt, cfg)
		if err != nil {
			t.Errorf("%v rank %d: %v", mode, rt.LogicalRank(), err)
			return
		}
		if prev, ok := results[rt.LogicalRank()]; ok && prev.Residual != res.Residual {
			t.Errorf("replica divergence: %v vs %v", prev.Residual, res.Residual)
		}
		results[rt.LogicalRank()] = res
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, end
}

func initialResidual(t *testing.T, cfg amg.Config, logical int) float64 {
	t.Helper()
	zeroIter := cfg
	zeroIter.Iters = 0
	if cfg.Solver == amg.GMRES {
		zeroIter.Iters = 0
	}
	res, _ := runMode(t, experiments.Native, logical, zeroIter)
	return res[0].Residual
}

func TestPCGReducesResidual(t *testing.T) {
	cfg := amg.DefaultConfig()
	cfg.Iters = 10
	r0 := initialResidual(t, cfg, 2)
	res, _ := runMode(t, experiments.Native, 2, cfg)
	if res[0].Residual >= r0/100 {
		t.Fatalf("PCG stalled: r0=%v r=%v", r0, res[0].Residual)
	}
}

func TestGMRESReducesResidual(t *testing.T) {
	cfg := amg.DefaultConfig()
	cfg.Solver = amg.GMRES
	cfg.Points = 7
	cfg.Iters = 10
	r0 := initialResidual(t, cfg, 2)
	res, _ := runMode(t, experiments.Native, 2, cfg)
	if res[0].Residual >= r0/100 {
		t.Fatalf("GMRES stalled: r0=%v r=%v", r0, res[0].Residual)
	}
}

func TestMultilevelBeatsAndMatchesDecomposition(t *testing.T) {
	// Same global problem split across 1 vs 2 ranks must give the same
	// residual.
	residual := func(ranks int) float64 {
		cfg := amg.DefaultConfig()
		cfg.Nx, cfg.Ny = 8, 8
		cfg.Nz = 8 / ranks
		cfg.Iters = 6
		res, _ := runMode(t, experiments.Native, ranks, cfg)
		return res[0].Residual
	}
	r1, r2 := residual(1), residual(2)
	if math.Abs(r1-r2) > 1e-9*math.Abs(r1)+1e-15 {
		t.Fatalf("decomposition changed the math: %v vs %v", r1, r2)
	}
}

func TestAllModesAgree(t *testing.T) {
	for _, solver := range []amg.Solver{amg.PCG, amg.GMRES} {
		solver := solver
		t.Run(string(solver), func(t *testing.T) {
			cfg := amg.DefaultConfig()
			cfg.Solver = solver
			if solver == amg.GMRES {
				cfg.Points = 7
			}
			cfg.Iters = 5
			var base float64
			for _, mode := range []experiments.Mode{experiments.Native, experiments.Classic, experiments.Intra} {
				res, _ := runMode(t, mode, 2, cfg)
				if mode == experiments.Native {
					base = res[0].Residual
					continue
				}
				if math.Abs(res[0].Residual-base) > 1e-9*math.Abs(base)+1e-15 {
					t.Fatalf("%v residual %v != native %v", mode, res[0].Residual, base)
				}
			}
		})
	}
}

func TestBadConfigs(t *testing.T) {
	_, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 1, Mode: experiments.Native},
		func(rt core.Runner) {
			cfg := amg.DefaultConfig()
			cfg.Points = 9
			if _, err := amg.Run(rt, cfg); err == nil {
				t.Error("expected error for 9-point stencil")
			}
			cfg = amg.DefaultConfig()
			cfg.Levels = 10
			if _, err := amg.Run(rt, cfg); err == nil {
				t.Error("expected error for too many levels")
			}
			cfg = amg.DefaultConfig()
			cfg.Solver = "bicg"
			if _, err := amg.Run(rt, cfg); err == nil {
				t.Error("expected error for unknown solver")
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSurvivesCrash(t *testing.T) {
	cfg := amg.DefaultConfig()
	cfg.Iters = 6
	ref, _ := runMode(t, experiments.Intra, 2, cfg)

	results := map[int]*amg.Result{}
	c := newCluster(t, experiments.ClusterConfig{
		Logical: 2, Mode: experiments.Intra, SendLog: true,
	})
	c.Launch(func(rt core.Runner) {
		res, err := amg.Run(rt, cfg)
		if err != nil {
			t.Errorf("rank %d: %v", rt.LogicalRank(), err)
			return
		}
		results[rt.LogicalRank()] = res
	})
	c.E.At(ref[0].Total/2, func() { c.Sys.KillReplica(0, 0) })
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for rank, res := range results {
		if math.Abs(res.Residual-ref[rank].Residual) > 1e-9*math.Abs(ref[rank].Residual)+1e-15 {
			t.Fatalf("rank %d residual after crash %v != %v", rank, res.Residual, ref[rank].Residual)
		}
	}
}

// newCluster builds a cluster from a known-good test config, failing the
// test on a validation error.
func newCluster(t *testing.T, cfg experiments.ClusterConfig) *experiments.Cluster {
	t.Helper()
	c, err := experiments.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
