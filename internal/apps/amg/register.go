package amg

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// PaperPCGConfig is the AMG2013 27-point PCG problem of Figure 6a.
func PaperPCGConfig() Config {
	const div = apputil.SizeDivisor
	k := float64(div)
	return Config{
		Nx: 96 / div, Ny: 96 / div, Nz: 96 / div,
		Levels: 2, Solver: PCG, Points: 27,
		Iters: 6, CoarseIters: 4, Tasks: 8, SetupFactor: 12,
		Scale: k * k * k, PlaneScale: k * k,
		IntraSweeps: true,
	}
}

// PaperGMRESConfig is the AMG2013 7-point GMRES problem of Figure 6b.
func PaperGMRESConfig() Config {
	cfg := PaperPCGConfig()
	cfg.Solver = GMRES
	cfg.Points = 7
	cfg.Iters = 8
	cfg.Restart = 10
	// The 7-point problem has far fewer nonzeros to sweep in the solve
	// phase, so the (fixed-cost) setup weighs relatively more.
	cfg.SetupFactor = 22
	return cfg
}

func init() {
	scenario.RegisterApp(scenario.AppEntry{
		Name:        "amg",
		Description: "AMG2013 multigrid mini-app (PCG/GMRES, Figures 6a-6b)",
		New:         func() any { c := DefaultConfig(); return &c },
		Run: func(cfg any) (scenario.AppRun, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("amg: config is %T, want *amg.Config", cfg)
			}
			cc := *c
			return func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
				res, err := Run(rt, cc)
				if err != nil {
					return 0, nil, core.Stats{}, err
				}
				return res.Total, res.Kernels, res.Stats, nil
			}, nil
		},
		Paper: func(iters, tasks int) any {
			c := PaperPCGConfig()
			if iters > 0 {
				c.Iters = iters
			}
			if tasks > 0 {
				c.Tasks = tasks
			}
			return &c
		},
	})
}
