package amg

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/mpi"
)

const omega = 0.7 // damped-Jacobi relaxation weight

// dot computes the global dot product of two slabs' interiors (replicated
// vector work: AMG2013's Krylov scalar products are not sectioned here).
func (a *app) dot(u, v *kernels.Slab) (float64, error) {
	var local float64
	a.clock.Track("vector", func() {
		var w = kernels.DdotWork(len(u.Interior()))
		s, _ := kernels.Ddot(u.Interior(), v.Interior())
		local = s
		a.rt.Compute(w.Scale(a.cfg.Scale))
	})
	return a.rt.AllreduceScalar(mpi.OpSum, local)
}

// axpy computes y += alpha*x over slab interiors.
func (a *app) axpy(alpha float64, x, y *kernels.Slab) {
	a.clock.Track("vector", func() {
		a.rt.Compute(kernels.Axpy(alpha, x.Interior(), y.Interior()).Scale(a.cfg.Scale))
	})
}

// waxpbySlab computes w = alpha*x + beta*y over slab interiors.
func (a *app) waxpbySlab(alpha float64, x *kernels.Slab, beta float64, y, w *kernels.Slab) {
	a.clock.Track("vector", func() {
		a.rt.Compute(kernels.Waxpby(alpha, x.Interior(), beta, y.Interior(), w.Interior()).Scale(a.cfg.Scale))
	})
}

// zero clears a slab (interior and halos).
func zero(s *kernels.Slab) { kernels.Fill(s.V, 0) }

// smooth performs one damped-Jacobi sweep on level l: x += w/diag*(b - Ax).
func (a *app) smooth(l int) error {
	lvl := a.levels[l]
	if err := a.exchangeHalo(l, lvl.x); err != nil {
		return err
	}
	if err := a.applyStencil(lvl, lvl.x, lvl.tmp, "smooth"); err != nil {
		return err
	}
	a.clock.Track("vector", func() {
		x, b, t := lvl.x.Interior(), lvl.b.Interior(), lvl.tmp.Interior()
		c := omega / a.diag
		for i := range x {
			x[i] += c * (b[i] - t[i])
		}
		n := float64(len(x))
		a.rt.Compute(kernels.WaxpbyWork(int(n)).Scale(a.cfg.Scale))
	})
	return nil
}

// residual computes r = b - A x on level l.
func (a *app) residual(l int) error {
	lvl := a.levels[l]
	if err := a.exchangeHalo(l, lvl.x); err != nil {
		return err
	}
	if err := a.applyStencil(lvl, lvl.x, lvl.tmp, "residual"); err != nil {
		return err
	}
	a.waxpbySlab(1, lvl.b, -1, lvl.tmp, lvl.r)
	return nil
}

// vcycle runs one multigrid V-cycle starting at level l, improving
// levels[l].x for the right-hand side levels[l].b.
func (a *app) vcycle(l int) error {
	if l == len(a.levels)-1 {
		for i := 0; i < a.cfg.CoarseIters; i++ {
			if err := a.smooth(l); err != nil {
				return err
			}
		}
		return nil
	}
	if err := a.smooth(l); err != nil {
		return err
	}
	if err := a.residual(l); err != nil {
		return err
	}
	next := a.levels[l+1]
	a.clock.Track("transfer", func() {
		a.rt.Compute(kernels.Restrict(a.levels[l].r, next.b).Scale(a.cfg.Scale))
	})
	zero(next.x)
	if err := a.vcycle(l + 1); err != nil {
		return err
	}
	a.clock.Track("transfer", func() {
		a.rt.Compute(kernels.ProlongAdd(next.x, a.levels[l].x).Scale(a.cfg.Scale))
	})
	return a.smooth(l)
}

// precondition applies the V-cycle preconditioner: z = M^{-1} r.
func (a *app) precondition(r, z *kernels.Slab) error {
	fine := a.levels[0]
	copy(fine.b.V, r.V)
	zero(fine.x)
	if err := a.vcycle(0); err != nil {
		return err
	}
	copy(z.V, fine.x.V)
	return nil
}

// matvec computes out = A(in) on the fine level (halo exchange included).
func (a *app) matvec(in, out *kernels.Slab) error {
	if err := a.exchangeHalo(0, in); err != nil {
		return err
	}
	return a.applyStencil(a.levels[0], in, out, "matvec")
}

// rhs builds b = A*ones so the exact solution is all ones.
func (a *app) rhs(b *kernels.Slab) error {
	ones := kernels.NewSlab(a.cfg.Nx, a.cfg.Ny, a.cfg.Nz)
	kernels.Fill(ones.Interior(), 1)
	if err := a.exchangeHalo(0, ones); err != nil {
		return err
	}
	// Direct (unsectioned) application: setup is not measured.
	a.rawStencil(ones, b, 0, a.cfg.Nz)
	return nil
}

// pcg runs multigrid-preconditioned conjugate gradients (Figure 6a's
// configuration).
func (a *app) pcg() (*Result, error) {
	nx, ny, nz := a.cfg.Nx, a.cfg.Ny, a.cfg.Nz
	x := kernels.NewSlab(nx, ny, nz)
	b := kernels.NewSlab(nx, ny, nz)
	r := kernels.NewSlab(nx, ny, nz)
	z := kernels.NewSlab(nx, ny, nz)
	p := kernels.NewSlab(nx, ny, nz)
	Ap := kernels.NewSlab(nx, ny, nz)
	if err := a.rhs(b); err != nil {
		return nil, err
	}
	copy(r.V, b.V) // x0 = 0
	if err := a.precondition(r, z); err != nil {
		return nil, err
	}
	copy(p.V, z.V)
	rz, err := a.dot(r, z)
	if err != nil {
		return nil, err
	}
	var it int
	for it = 0; it < a.cfg.Iters; it++ {
		if err := a.matvec(p, Ap); err != nil {
			return nil, err
		}
		pAp, err := a.dot(p, Ap)
		if err != nil {
			return nil, err
		}
		if pAp == 0 {
			return nil, fmt.Errorf("amg: PCG breakdown at iteration %d", it)
		}
		alpha := rz / pAp
		a.axpy(alpha, p, x)
		a.axpy(-alpha, Ap, r)
		if err := a.precondition(r, z); err != nil {
			return nil, err
		}
		rzNew, err := a.dot(r, z)
		if err != nil {
			return nil, err
		}
		beta := rzNew / rz
		rz = rzNew
		a.waxpbySlab(1, z, beta, p, p)
	}
	rr, err := a.dot(r, r)
	if err != nil {
		return nil, err
	}
	return &Result{Residual: math.Sqrt(rr), Iters: it}, nil
}

// gmres runs multigrid-preconditioned restarted GMRES (Figure 6b's
// configuration), left-preconditioned.
func (a *app) gmres() (*Result, error) {
	nx, ny, nz := a.cfg.Nx, a.cfg.Ny, a.cfg.Nz
	m := a.cfg.Restart
	if m <= 0 {
		m = 10
	}
	x := kernels.NewSlab(nx, ny, nz)
	b := kernels.NewSlab(nx, ny, nz)
	r := kernels.NewSlab(nx, ny, nz)
	z := kernels.NewSlab(nx, ny, nz)
	w := kernels.NewSlab(nx, ny, nz)
	if err := a.rhs(b); err != nil {
		return nil, err
	}
	V := make([]*kernels.Slab, m+1)
	for i := range V {
		V[i] = kernels.NewSlab(nx, ny, nz)
	}
	h := make([][]float64, m+1)
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)

	iters := 0
	for iters < a.cfg.Iters {
		// r = b - A x; z = M^{-1} r.
		if err := a.matvec(x, w); err != nil {
			return nil, err
		}
		a.waxpbySlab(1, b, -1, w, r)
		if err := a.precondition(r, z); err != nil {
			return nil, err
		}
		beta2, err := a.dot(z, z)
		if err != nil {
			return nil, err
		}
		beta := math.Sqrt(beta2)
		if beta == 0 {
			break
		}
		a.clock.Track("vector", func() {
			copy(V[0].V, z.V)
			a.rt.Compute(kernels.Scale(1/beta, V[0].V).Scale(a.cfg.Scale))
		})
		for i := range g {
			g[i] = 0
		}
		g[0] = beta
		j := 0
		for ; j < m && iters < a.cfg.Iters; j++ {
			iters++
			// w = M^{-1} A V[j].
			if err := a.matvec(V[j], r); err != nil {
				return nil, err
			}
			if err := a.precondition(r, w); err != nil {
				return nil, err
			}
			// Modified Gram-Schmidt (replicated vector work + reductions).
			for i := 0; i <= j; i++ {
				hij, err := a.dot(w, V[i])
				if err != nil {
					return nil, err
				}
				h[i][j] = hij
				a.axpy(-hij, V[i], w)
			}
			wnorm2, err := a.dot(w, w)
			if err != nil {
				return nil, err
			}
			h[j+1][j] = math.Sqrt(wnorm2)
			if h[j+1][j] > 1e-300 {
				a.clock.Track("vector", func() {
					copy(V[j+1].V, w.V)
					a.rt.Compute(kernels.Scale(1/h[j+1][j], V[j+1].V).Scale(a.cfg.Scale))
				})
			}
			// Givens rotations.
			for i := 0; i < j; i++ {
				t := cs[i]*h[i][j] + sn[i]*h[i+1][j]
				h[i+1][j] = -sn[i]*h[i][j] + cs[i]*h[i+1][j]
				h[i][j] = t
			}
			den := math.Hypot(h[j][j], h[j+1][j])
			if den == 0 {
				j++
				break
			}
			cs[j] = h[j][j] / den
			sn[j] = h[j+1][j] / den
			h[j][j] = den
			h[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
		}
		// Solve the triangular system and update x += V y.
		y := make([]float64, j)
		for i := j - 1; i >= 0; i-- {
			y[i] = g[i]
			for k := i + 1; k < j; k++ {
				y[i] -= h[i][k] * y[k]
			}
			y[i] /= h[i][i]
		}
		for i := 0; i < j; i++ {
			a.axpy(y[i], V[i], x)
		}
	}
	// True residual.
	if err := a.matvec(x, w); err != nil {
		return nil, err
	}
	a.waxpbySlab(1, b, -1, w, r)
	rr, err := a.dot(r, r)
	if err != nil {
		return nil, err
	}
	return &Result{Residual: math.Sqrt(rr), Iters: iters}, nil
}
