// Package apputil holds helpers shared by the benchmark applications.
package apputil

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// SizeDivisor shrinks per-axis grid extents of the paper-scale app configs
// for laptop-scale runs while the cost model charges the paper-scale
// problem (volume scales by its cube, halo planes by its square). 8 keeps
// every figure run under a second of real time while preserving time
// ratios.
const SizeDivisor = 8

// KernelTime is the accumulated wall time of one kernel, with the portion
// spent waiting on update transfers after local tasks finished (the dashed
// area of Figure 5a).
type KernelTime struct {
	Wall       sim.Time
	UpdateWait sim.Time
	Calls      int
}

// Clock accumulates per-kernel wall times for one replica.
type Clock struct {
	rt    core.Runner
	Times map[string]*KernelTime
}

// NewClock creates a clock over rt.
func NewClock(rt core.Runner) *Clock {
	return &Clock{rt: rt, Times: make(map[string]*KernelTime)}
}

// Track runs fn and charges its wall time (and update-wait delta) to the
// named kernel.
func (c *Clock) Track(name string, fn func()) {
	t0 := c.rt.Now()
	u0 := c.rt.Stats().UpdateWait
	fn()
	kt := c.Times[name]
	if kt == nil {
		kt = &KernelTime{}
		c.Times[name] = kt
	}
	kt.Wall += c.rt.Now() - t0
	kt.UpdateWait += c.rt.Stats().UpdateWait - u0
	kt.Calls++
}

// Names returns the tracked kernel names in sorted order.
func (c *Clock) Names() []string {
	names := make([]string, 0, len(c.Times))
	for n := range c.Times {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TaskBounds splits n items into nTasks contiguous ranges; range i is
// [lo, hi). It distributes remainders evenly like the paper's n/N split.
func TaskBounds(n, nTasks, i int) (lo, hi int) {
	return n * i / nTasks, n * (i + 1) / nTasks
}
