package apputil

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func TestTaskBoundsCoverEverything(t *testing.T) {
	prop := func(nRaw, tRaw uint8) bool {
		n := int(nRaw) + 1
		tasks := int(tRaw)%16 + 1
		covered := 0
		prevHi := 0
		for i := 0; i < tasks; i++ {
			lo, hi := TaskBounds(n, tasks, i)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskBoundsBalance(t *testing.T) {
	// No task may be more than one element larger than another.
	for _, n := range []int{7, 8, 100, 1000} {
		for _, tasks := range []int{1, 3, 8} {
			min, max := n, 0
			for i := 0; i < tasks; i++ {
				lo, hi := TaskBounds(n, tasks, i)
				if hi-lo < min {
					min = hi - lo
				}
				if hi-lo > max {
					max = hi - lo
				}
			}
			if max-min > 1 {
				t.Fatalf("n=%d tasks=%d: sizes vary by %d", n, tasks, max-min)
			}
		}
	}
}

func TestClockTracksWallAndNames(t *testing.T) {
	e := sim.New()
	net := simnet.New(e, simnet.InfiniBand20G, 1)
	w := mpi.NewWorld(e, net, 1, perf.Grid5000, nil)
	w.Launch("p", 0, func(r *mpi.Rank) {
		rt := core.NewNative(r)
		c := NewClock(rt)
		c.Track("beta", func() { rt.Compute(perf.Work{Flops: 2e9}) }) // 1 s
		c.Track("alpha", func() { rt.Compute(perf.Work{Flops: 4e9}) })
		c.Track("alpha", func() { rt.Compute(perf.Work{Flops: 4e9}) })
		if got := c.Times["beta"].Wall; got != sim.Second {
			t.Errorf("beta wall = %v", got)
		}
		if got := c.Times["alpha"]; got.Wall != 4*sim.Second || got.Calls != 2 {
			t.Errorf("alpha = %+v", got)
		}
		names := c.Names()
		if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
			t.Errorf("names = %v", names)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
