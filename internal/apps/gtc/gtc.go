// Package gtc is a surrogate of the GTC gyrokinetic particle-in-cell code
// from the NERSC-8 benchmark suite (§V-D, Figure 6c of the paper).
//
// It reproduces GTC's computational structure: a charge-deposition phase
// scattering particles onto a grid, a field solve, a particle push whose
// new positions depend on the old ones (hence inout arguments and the
// extra-copy machinery of §III-B2), and a shift phase exchanging particles
// with neighboring domains. Particles are pre-binned into zones so that
// charge and push tasks write disjoint grid and particle ranges,
// satisfying the input-dependence-only rule of Definition 2.
package gtc

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Config parameterizes a GTC run.
type Config struct {
	Cells     int     // local grid cells
	PerCell   int     // particles per cell (micell)
	Zones     int     // particle zones == tasks per section
	Steps     int     // time steps
	Dt        float64 // push time step
	Scale     float64 // virtual-cost multiplier
	ShiftFrac float64 // fraction of particles exchanged with neighbors per step
	AuxBytes  float64 // per-particle memory traffic of the non-sectioned phases
	//          (poloidal field solve, smoothing, diagnostics; GTC spends
	//          ~25% of its time there, §V-D)
	// Intra-parallelize the two main kernels (the paper applies it to both
	// charge and push, which account for ~75% of runtime).
	IntraCharge bool
	IntraPush   bool
}

// DefaultConfig returns a small test configuration.
func DefaultConfig() Config {
	return Config{
		Cells: 64, PerCell: 16, Zones: 8,
		Steps: 4, Dt: 0.05, Scale: 1, ShiftFrac: 0.05, AuxBytes: 40,
		IntraCharge: true, IntraPush: true,
	}
}

// Result reports one replica's view of the run.
type Result struct {
	TotalWeight float64 // conserved particle weight (correctness witness)
	FieldEnergy float64 // sum of phi^2 at the end (correctness witness)
	Kernels     map[string]*apputil.KernelTime
	Total       sim.Time
	Stats       core.Stats
}

const (
	tagShiftUp = iota + 300
	tagShiftDown
)

type app struct {
	rt     core.Runner
	cfg    Config
	clock  *apputil.Clock
	zones  []*kernels.Particles
	zoneC0 []float64 // first cell of each zone
	zoneC1 []float64
	rho    []float64
	phi    []float64
}

// Run executes the GTC surrogate on the calling logical process.
func Run(rt core.Runner, cfg Config) (*Result, error) {
	if cfg.Zones <= 0 {
		cfg.Zones = 8
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	a := &app{rt: rt, cfg: cfg, clock: apputil.NewClock(rt)}
	a.rho = make([]float64, cfg.Cells)
	a.phi = make([]float64, cfg.Cells)
	perZone := cfg.Cells / cfg.Zones
	for z := 0; z < cfg.Zones; z++ {
		c0 := float64(z * perZone)
		c1 := float64((z + 1) * perZone)
		a.zoneC0 = append(a.zoneC0, c0)
		a.zoneC1 = append(a.zoneC1, c1)
		a.zones = append(a.zones, kernels.NewParticles(perZone*cfg.PerCell, c0, c1))
	}
	start := rt.Now()
	for step := 0; step < cfg.Steps; step++ {
		if err := a.charge(); err != nil {
			return nil, err
		}
		if err := a.fieldSolve(); err != nil {
			return nil, err
		}
		if err := a.push(); err != nil {
			return nil, err
		}
		if err := a.shift(); err != nil {
			return nil, err
		}
	}
	var weight float64
	for _, z := range a.zones {
		wz, _ := kernels.TotalWeight(z.W)
		weight += wz
	}
	total, err := rt.AllreduceScalar(mpi.OpSum, weight)
	if err != nil {
		return nil, err
	}
	var energy float64
	for _, v := range a.phi {
		energy += v * v
	}
	return &Result{
		TotalWeight: total,
		FieldEnergy: energy,
		Kernels:     a.clock.Times,
		Total:       rt.Now() - start,
		Stats:       *rt.Stats(),
	}, nil
}

// charge deposits particle weights onto the grid, one task per zone (each
// zone writes a disjoint grid range, keeping tasks input-dependent only).
func (a *app) charge() error {
	var err error
	a.clock.Track("charge", func() {
		if !a.cfg.IntraCharge {
			for z, ps := range a.zones {
				lo, hi := int(a.zoneC0[z]), int(a.zoneC1[z])
				w := kernels.ChargeDeposit(ps.Psi, ps.W, a.rho[lo:hi], a.zoneC0[z])
				a.rt.Compute(w.Scale(a.cfg.Scale))
				_ = hi
			}
			return
		}
		a.rt.SectionBegin()
		id := a.rt.TaskRegister(func(c core.Ctx, args []core.Value) {
			z := int(*args[1].(core.Scalar).P)
			ps := a.zones[z]
			lo, hi := int(a.zoneC0[z]), int(a.zoneC1[z])
			w := kernels.ChargeDeposit(ps.Psi, ps.W, a.rho[lo:hi], a.zoneC0[z])
			c.Compute(w.Scale(a.cfg.Scale))
		}, core.Out, core.In)
		zidx := make([]float64, a.cfg.Zones)
		for z := 0; z < a.cfg.Zones; z++ {
			lo, hi := int(a.zoneC0[z]), int(a.zoneC1[z])
			zidx[z] = float64(z)
			a.rt.TaskLaunch(id, core.Scaled(core.Float64s(a.rho[lo:hi]), a.cfg.Scale), core.Scalar{P: &zidx[z]})
		}
		err = a.rt.SectionEnd()
	})
	return err
}

// fieldSolve computes phi from rho: replicated computation plus a global
// neutralizing-background reduction (the cross-rank coupling of the real
// code's poloidal solve).
func (a *app) fieldSolve() error {
	var err error
	a.clock.Track("field", func() {
		var mean float64
		for _, v := range a.rho {
			mean += v
		}
		mean, err = a.rt.AllreduceScalar(mpi.OpSum, mean)
		if err != nil {
			return
		}
		mean /= float64(a.cfg.Cells * a.rt.LogicalSize())
		// Two damped Jacobi sweeps of a 1D Poisson-like smoother.
		n := a.cfg.Cells
		for sweep := 0; sweep < 2; sweep++ {
			prev := a.phi[0]
			for i := 1; i < n-1; i++ {
				old := a.phi[i]
				a.phi[i] = 0.5*a.phi[i] + 0.25*(prev+a.phi[i+1]) + 0.5*(a.rho[i]-mean)
				prev = old
			}
		}
		a.rt.Compute(perf.Work{
			Bytes: 2 * 32 * float64(n),
			Flops: 2 * 6 * float64(n),
		}.Scale(a.cfg.Scale))
		// Diagnostics and field smoothing scan the whole particle
		// population (replicated, outside sections).
		a.rt.Compute(perf.Work{
			Bytes: a.cfg.AuxBytes * float64(a.totalParticles()),
		}.Scale(a.cfg.Scale))
	})
	return err
}

// push advances the particles: positions and velocities are inout (the new
// state depends on the old), requiring the extra-copy protection the paper
// discusses for GTC (§IV).
func (a *app) push() error {
	var err error
	a.clock.Track("push", func() {
		if !a.cfg.IntraPush {
			for z, ps := range a.zones {
				w := kernels.Push(ps.Psi, ps.Vpar, a.phiZone(z), a.zoneC0[z], a.zoneC1[z], a.cfg.Dt)
				a.rt.Compute(w.Scale(a.cfg.Scale))
			}
			return
		}
		a.rt.SectionBegin()
		id := a.rt.TaskRegister(func(c core.Ctx, args []core.Value) {
			z := int(*args[2].(core.Scalar).P)
			ps := a.zones[z]
			w := kernels.Push(ps.Psi, ps.Vpar,
				a.phiZone(z), a.zoneC0[z], a.zoneC1[z], a.cfg.Dt)
			c.Compute(w.Scale(a.cfg.Scale))
		}, core.InOut, core.InOut, core.In)
		zidx := make([]float64, a.cfg.Zones)
		for z, ps := range a.zones {
			zidx[z] = float64(z)
			a.rt.TaskLaunch(id, core.Scaled(core.Float64s(ps.Psi), a.cfg.Scale),
				core.Scaled(core.Float64s(ps.Vpar), a.cfg.Scale), core.Scalar{P: &zidx[z]})
		}
		err = a.rt.SectionEnd()
	})
	return err
}

// phiZone returns the phi cells of zone z.
func (a *app) phiZone(z int) []float64 {
	return a.phi[int(a.zoneC0[z]):int(a.zoneC1[z])]
}

// shift models GTC's particle-shift phase: a fraction of each domain's
// particles crosses to the toroidal neighbors. The surrogate charges the
// scan/copy cost and exchanges equally-sized particle blocks whose
// contents do not alter zone membership (migration is symmetric by
// construction), keeping the numerics deterministic across modes.
func (a *app) shift() error {
	var err error
	a.clock.Track("shift", func() {
		rank, size := a.rt.LogicalRank(), a.rt.LogicalSize()
		nShift := int(float64(a.totalParticles()) * a.cfg.ShiftFrac / 2)
		if nShift == 0 || size == 1 {
			// Still charge the selection scan.
			a.rt.Compute(perf.Work{Bytes: 8 * float64(a.totalParticles())}.Scale(a.cfg.Scale))
			return
		}
		buf := make([]float64, nShift)
		up := (rank + 1) % size
		down := (rank - 1 + size) % size
		// Selection scan over all particles.
		a.rt.Compute(perf.Work{Bytes: 8 * float64(a.totalParticles())}.Scale(a.cfg.Scale))
		wire := int64(float64(8*nShift) * a.cfg.Scale)
		if e := a.rt.SendSized(up, tagShiftUp, buf, wire); e != nil {
			err = e
			return
		}
		if e := a.rt.SendSized(down, tagShiftDown, buf, wire); e != nil {
			err = e
			return
		}
		if _, e := a.rt.Recv(down, tagShiftUp); e != nil {
			err = e
			return
		}
		if _, e := a.rt.Recv(up, tagShiftDown); e != nil {
			err = e
			return
		}
		// Unpack/copy-in cost.
		a.rt.Compute(perf.Work{Bytes: 32 * float64(nShift)}.Scale(a.cfg.Scale))
	})
	return err
}

func (a *app) totalParticles() int {
	n := 0
	for _, z := range a.zones {
		n += z.Len()
	}
	return n
}
