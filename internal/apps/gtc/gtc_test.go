package gtc_test

import (
	"math"
	"testing"

	"repro/internal/apps/gtc"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func runMode(t *testing.T, mode experiments.Mode, logical int, cfg gtc.Config) (map[int]*gtc.Result, sim.Time) {
	t.Helper()
	results := map[int]*gtc.Result{}
	end, err := experiments.RunProgram(experiments.ClusterConfig{
		Logical: logical,
		Mode:    mode,
	}, func(rt core.Runner) {
		res, err := gtc.Run(rt, cfg)
		if err != nil {
			t.Errorf("%v rank %d: %v", mode, rt.LogicalRank(), err)
			return
		}
		if prev, ok := results[rt.LogicalRank()]; ok && prev.FieldEnergy != res.FieldEnergy {
			t.Errorf("replica divergence: %v vs %v", prev.FieldEnergy, res.FieldEnergy)
		}
		results[rt.LogicalRank()] = res
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, end
}

func TestWeightConserved(t *testing.T) {
	cfg := gtc.DefaultConfig()
	res, _ := runMode(t, experiments.Native, 2, cfg)
	// Each rank contributes total weight 1 per zone set (weights sum to 1
	// per zone's particle set of 1/n each... total = zones per rank).
	want := res[0].TotalWeight
	if want <= 0 {
		t.Fatalf("weight %v", want)
	}
	// Weight must not change over time: rerun with more steps.
	cfg2 := cfg
	cfg2.Steps *= 2
	res2, _ := runMode(t, experiments.Native, 2, cfg2)
	if math.Abs(res2[0].TotalWeight-want) > 1e-9*want {
		t.Fatalf("weight drifted: %v -> %v", want, res2[0].TotalWeight)
	}
}

func TestAllModesAgree(t *testing.T) {
	cfg := gtc.DefaultConfig()
	var base float64
	for _, mode := range []experiments.Mode{experiments.Native, experiments.Classic, experiments.Intra} {
		res, _ := runMode(t, mode, 2, cfg)
		if mode == experiments.Native {
			base = res[0].FieldEnergy
			continue
		}
		if math.Abs(res[0].FieldEnergy-base) > 1e-9*math.Abs(base)+1e-15 {
			t.Fatalf("%v field energy %v != native %v", mode, res[0].FieldEnergy, base)
		}
	}
}

func TestInoutCopiesCharged(t *testing.T) {
	// GTC's push declares positions/velocities inout; the intra runtime
	// must charge extra copies (the ~6% overhead of §V-D).
	cfg := gtc.DefaultConfig()
	res, _ := runMode(t, experiments.Intra, 1, cfg)
	if res[0].Stats.CopyTime <= 0 {
		t.Fatalf("no inout copy time charged: %+v", res[0].Stats)
	}
}

func TestChargeAndPushDominate(t *testing.T) {
	cfg := gtc.DefaultConfig()
	cfg.PerCell = 64 // particle-heavy, like the real code
	res, _ := runMode(t, experiments.Native, 2, cfg)
	k := res[0].Kernels
	mains := k["charge"].Wall + k["push"].Wall
	others := k["field"].Wall + k["shift"].Wall
	if mains <= 2*others {
		t.Fatalf("charge+push (%v) should dominate field+shift (%v)", mains, others)
	}
}

func TestSurvivesCrashMidPush(t *testing.T) {
	cfg := gtc.DefaultConfig()
	ref, _ := runMode(t, experiments.Intra, 2, cfg)

	results := map[int]*gtc.Result{}
	c := newCluster(t, experiments.ClusterConfig{
		Logical: 2, Mode: experiments.Intra, SendLog: true,
	})
	c.Launch(func(rt core.Runner) {
		res, err := gtc.Run(rt, cfg)
		if err != nil {
			t.Errorf("rank %d: %v", rt.LogicalRank(), err)
			return
		}
		results[rt.LogicalRank()] = res
	})
	c.E.At(ref[0].Total/2, func() { c.Sys.KillReplica(1, 1) })
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for rank, res := range results {
		if math.Abs(res.FieldEnergy-ref[rank].FieldEnergy) > 1e-9*math.Abs(ref[rank].FieldEnergy)+1e-15 {
			t.Fatalf("rank %d energy after crash %v != %v", rank, res.FieldEnergy, ref[rank].FieldEnergy)
		}
	}
}

// newCluster builds a cluster from a known-good test config, failing the
// test on a validation error.
func newCluster(t *testing.T, cfg experiments.ClusterConfig) *experiments.Cluster {
	t.Helper()
	c, err := experiments.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
