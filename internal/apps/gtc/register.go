package gtc

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// PaperConfig is the GTC problem of Figure 6c (mzetamax=64, npartdom=4,
// micell=200 scaled down).
func PaperConfig() Config {
	return Config{
		Cells: 64, PerCell: 25, Zones: 8,
		Steps: 6, Dt: 0.02, Scale: 64, ShiftFrac: 0.05, AuxBytes: 180,
		IntraCharge: true, IntraPush: true,
	}
}

func init() {
	scenario.RegisterApp(scenario.AppEntry{
		Name:        "gtc",
		Description: "GTC gyrokinetic particle-in-cell surrogate (Figure 6c)",
		New:         func() any { c := DefaultConfig(); return &c },
		Run: func(cfg any) (scenario.AppRun, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("gtc: config is %T, want *gtc.Config", cfg)
			}
			cc := *c
			return func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
				res, err := Run(rt, cc)
				if err != nil {
					return 0, nil, core.Stats{}, err
				}
				return res.Total, res.Kernels, res.Stats, nil
			}, nil
		},
		Paper: func(iters, tasks int) any {
			c := PaperConfig()
			if iters > 0 {
				c.Steps = iters
			}
			if tasks > 0 {
				c.Zones = tasks
			}
			return &c
		},
	})
}
