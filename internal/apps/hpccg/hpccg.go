// Package hpccg is a port of the HPCCG mini-application from the Mantevo
// suite: an unpreconditioned conjugate-gradient solve of a 27-point
// Laplace-type problem on a 3D grid, decomposed in z across logical ranks
// (§V-C of the paper).
//
// Its three computational kernels — waxpby, ddot and sparsemv — are the
// micro-benchmarks of Figure 5a; the full application is the weak-scaling
// study of Figure 5b (where intra-parallelization is applied to ddot and
// sparsemv only, because waxpby does not profit).
package hpccg

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Config parameterizes one HPCCG run.
type Config struct {
	Nx, Ny, Nz int     // local (per logical process) grid dimensions
	Iters      int     // CG iterations (HPCCG runs a fixed count)
	Tasks      int     // tasks per intra-parallel section (paper: 8)
	Scale      float64 // virtual-cost multiplier (paper volume / actual volume)
	PlaneScale float64 // wire-size multiplier for halo planes (paper plane / actual plane)
	// Which kernels run as intra-parallel sections. Under the native and
	// classic engines, sections execute locally, so these switches only
	// change where the work is accounted.
	IntraDdot     bool
	IntraSparsemv bool
	IntraWaxpby   bool
}

// DefaultConfig returns a small, fast configuration with all kernels
// sectioned.
func DefaultConfig() Config {
	return Config{
		Nx: 16, Ny: 16, Nz: 16,
		Iters: 10, Tasks: 8, Scale: 1,
		IntraDdot: true, IntraSparsemv: true, IntraWaxpby: false,
	}
}

// Result reports one replica's view of the run.
type Result struct {
	Residual float64                        // final residual norm
	Iters    int                            // iterations executed
	Kernels  map[string]*apputil.KernelTime // per-kernel wall times
	Total    sim.Time                       // total run wall time
	Stats    core.Stats                     // runtime counters snapshot
}

const (
	tagHaloUp = iota + 100
	tagHaloDown
)

// solver bundles one logical process's state.
type solver struct {
	rt    core.Runner
	cfg   Config
	clock *apputil.Clock
	mat   *kernels.CSR
	rows  int
	plane int

	x, b, r, p, Ap []float64 // p and Ap have halo space appended
}

// Run executes HPCCG on the calling logical process. All logical processes
// must call it with the same configuration.
func Run(rt core.Runner, cfg Config) (*Result, error) {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 8
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.PlaneScale <= 0 {
		cfg.PlaneScale = 1
	}
	s := &solver{rt: rt, cfg: cfg, clock: apputil.NewClock(rt)}
	s.plane = cfg.Nx * cfg.Ny
	s.rows = s.plane * cfg.Nz
	rank, size := rt.LogicalRank(), rt.LogicalSize()
	s.mat = kernels.Gen27Point(cfg.Nx, cfg.Ny, cfg.Nz, rank > 0, rank < size-1)
	s.x = make([]float64, s.rows)
	s.b = make([]float64, s.rows)
	s.r = make([]float64, s.rows)
	s.p = make([]float64, s.rows+2*s.plane)
	s.Ap = make([]float64, s.rows)

	start := rt.Now()
	res, err := s.cg()
	if err != nil {
		return nil, err
	}
	res.Total = rt.Now() - start
	res.Kernels = s.clock.Times
	res.Stats = *rt.Stats()
	return res, nil
}

// cg runs the HPCCG iteration: r = b - Ax with x0 = 0, then standard CG.
func (s *solver) cg() (*Result, error) {
	// b is chosen so the exact solution is all-ones: b = A * ones.
	ones := make([]float64, s.rows+2*s.plane)
	kernels.Fill(ones, 1)
	if err := s.exchangeHalo(ones); err != nil {
		return nil, err
	}
	s.rt.Compute(s.mat.MulVec(ones, s.b).Scale(s.cfg.Scale))
	copy(s.r, s.b) // r = b - A*0
	copy(s.p, s.r)

	rtrans, err := s.ddot(s.r, s.r)
	if err != nil {
		return nil, err
	}
	var it int
	for it = 0; it < s.cfg.Iters; it++ {
		if it > 0 {
			oldrtrans := rtrans
			rtrans, err = s.ddot(s.r, s.r)
			if err != nil {
				return nil, err
			}
			beta := rtrans / oldrtrans
			// p = r + beta*p
			if err := s.waxpby(1.0, s.r, beta, s.p[:s.rows], s.p[:s.rows]); err != nil {
				return nil, err
			}
		}
		if err := s.exchangeHalo(s.p); err != nil {
			return nil, err
		}
		if err := s.sparsemv(s.p, s.Ap); err != nil {
			return nil, err
		}
		pAp, err := s.ddot(s.p[:s.rows], s.Ap)
		if err != nil {
			return nil, err
		}
		if pAp == 0 {
			return nil, fmt.Errorf("hpccg: breakdown, pAp = 0 at iteration %d", it)
		}
		alpha := rtrans / pAp
		if err := s.waxpby(1.0, s.x, alpha, s.p[:s.rows], s.x); err != nil {
			return nil, err
		}
		if err := s.waxpby(1.0, s.r, -alpha, s.Ap, s.r); err != nil {
			return nil, err
		}
	}
	final, err := s.ddot(s.r, s.r)
	if err != nil {
		return nil, err
	}
	return &Result{Residual: math.Sqrt(final), Iters: it}, nil
}

// exchangeHalo fills v's two halo planes (appended at v[rows:]) from the z
// neighbors. v[0:plane] is the bottom interior plane, the top interior
// plane starts at rows-plane.
func (s *solver) exchangeHalo(v []float64) error {
	var err error
	s.clock.Track("halo", func() {
		rank, size := s.rt.LogicalRank(), s.rt.LogicalSize()
		wire := int64(float64(8*s.plane) * s.cfg.PlaneScale)
		if rank > 0 {
			if e := s.rt.SendSized(rank-1, tagHaloUp, v[:s.plane], wire); e != nil {
				err = e
				return
			}
		}
		if rank < size-1 {
			if e := s.rt.SendSized(rank+1, tagHaloDown, v[s.rows-s.plane:s.rows], wire); e != nil {
				err = e
				return
			}
		}
		if rank > 0 {
			data, e := s.rt.Recv(rank-1, tagHaloDown)
			if e != nil {
				err = e
				return
			}
			copy(v[s.rows:s.rows+s.plane], data)
		}
		if rank < size-1 {
			data, e := s.rt.Recv(rank+1, tagHaloUp)
			if e != nil {
				err = e
				return
			}
			copy(v[s.rows+s.plane:], data)
		}
	})
	return err
}

// ddot computes the global dot product of a and b: the local part is an
// intra-parallel section (when enabled); the reduction stays outside the
// section, as in the paper (footnote 6).
func (s *solver) ddot(a, b []float64) (float64, error) {
	var local float64
	var err error
	s.clock.Track("ddot", func() {
		if !s.cfg.IntraDdot {
			var w perf.Work
			local, w = kernels.Ddot(a, b)
			s.rt.Compute(w.Scale(s.cfg.Scale))
			return
		}
		parts := make([]float64, s.cfg.Tasks)
		s.rt.SectionBegin()
		id := s.rt.TaskRegister(func(c core.Ctx, args []core.Value) {
			lo := int(*args[1].(core.Scalar).P)
			hi := int(*args[2].(core.Scalar).P)
			v, w := kernels.Ddot(a[lo:hi], b[lo:hi])
			*args[0].(core.Scalar).P = v
			c.Compute(w.Scale(s.cfg.Scale))
		}, core.Out, core.In, core.In)
		bounds := make([]float64, 2*s.cfg.Tasks)
		for i := 0; i < s.cfg.Tasks; i++ {
			lo, hi := apputil.TaskBounds(len(a), s.cfg.Tasks, i)
			bounds[2*i], bounds[2*i+1] = float64(lo), float64(hi)
			s.rt.TaskLaunch(id, core.Scalar{P: &parts[i]},
				core.Scalar{P: &bounds[2*i]}, core.Scalar{P: &bounds[2*i+1]})
		}
		if err = s.rt.SectionEnd(); err != nil {
			return
		}
		for _, v := range parts {
			local += v
		}
	})
	if err != nil {
		return 0, err
	}
	return s.rt.AllreduceScalar(mpi.OpSum, local)
}

// sparsemv computes y = A*x as an intra-parallel section over row blocks.
func (s *solver) sparsemv(x, y []float64) error {
	var err error
	s.clock.Track("sparsemv", func() {
		if !s.cfg.IntraSparsemv {
			s.rt.Compute(s.mat.MulVec(x, y).Scale(s.cfg.Scale))
			return
		}
		s.rt.SectionBegin()
		id := s.rt.TaskRegister(func(c core.Ctx, args []core.Value) {
			lo := int(*args[1].(core.Scalar).P)
			hi := int(*args[2].(core.Scalar).P)
			w := s.mat.MulVecRange(x, y, lo, hi)
			c.Compute(w.Scale(s.cfg.Scale))
		}, core.Out, core.In, core.In)
		bounds := make([]float64, 2*s.cfg.Tasks)
		for i := 0; i < s.cfg.Tasks; i++ {
			lo, hi := apputil.TaskBounds(s.rows, s.cfg.Tasks, i)
			bounds[2*i], bounds[2*i+1] = float64(lo), float64(hi)
			s.rt.TaskLaunch(id, core.Scaled(core.Float64s(y[lo:hi]), s.cfg.Scale),
				core.Scalar{P: &bounds[2*i]}, core.Scalar{P: &bounds[2*i+1]})
		}
		err = s.rt.SectionEnd()
	})
	return err
}

// waxpby computes w = alpha*x + beta*y, sectioned when configured.
func (s *solver) waxpby(alpha float64, x []float64, beta float64, y, w []float64) error {
	var err error
	s.clock.Track("waxpby", func() {
		if !s.cfg.IntraWaxpby {
			s.rt.Compute(kernels.Waxpby(alpha, x, beta, y, w).Scale(s.cfg.Scale))
			return
		}
		a, bt := alpha, beta
		s.rt.SectionBegin()
		id := s.rt.TaskRegister(func(c core.Ctx, args []core.Value) {
			lo := int(*args[3].(core.Scalar).P)
			hi := int(*args[4].(core.Scalar).P)
			wk := kernels.Waxpby(*args[1].(core.Scalar).P, x[lo:hi],
				*args[2].(core.Scalar).P, y[lo:hi], w[lo:hi])
			c.Compute(wk.Scale(s.cfg.Scale))
		}, core.Out, core.In, core.In, core.In, core.In)
		bounds := make([]float64, 2*s.cfg.Tasks)
		for i := 0; i < s.cfg.Tasks; i++ {
			lo, hi := apputil.TaskBounds(len(w), s.cfg.Tasks, i)
			bounds[2*i], bounds[2*i+1] = float64(lo), float64(hi)
			s.rt.TaskLaunch(id, core.Scaled(core.Float64s(w[lo:hi]), s.cfg.Scale),
				core.Scalar{P: &a}, core.Scalar{P: &bt},
				core.Scalar{P: &bounds[2*i]}, core.Scalar{P: &bounds[2*i+1]})
		}
		err = s.rt.SectionEnd()
	})
	return err
}
