package hpccg_test

import (
	"math"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func runMode(t *testing.T, mode experiments.Mode, logical int, cfg hpccg.Config) (map[int]*hpccg.Result, sim.Time) {
	t.Helper()
	results := map[int]*hpccg.Result{}
	end, err := experiments.RunProgram(experiments.ClusterConfig{
		Logical: logical,
		Mode:    mode,
	}, func(rt core.Runner) {
		res, err := hpccg.Run(rt, cfg)
		if err != nil {
			t.Errorf("%v rank %d: %v", mode, rt.LogicalRank(), err)
			return
		}
		if prev, ok := results[rt.LogicalRank()]; ok {
			// Replicas of one logical rank must agree bit-for-bit.
			if prev.Residual != res.Residual {
				t.Errorf("replica divergence on rank %d: %v vs %v",
					rt.LogicalRank(), prev.Residual, res.Residual)
			}
		}
		results[rt.LogicalRank()] = res
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, end
}

func TestCGConvergesSingleRank(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Iters = 30
	res, _ := runMode(t, experiments.Native, 1, cfg)
	if res[0].Residual > 1e-6 {
		t.Fatalf("residual %v after %d iters", res[0].Residual, res[0].Iters)
	}
}

func TestCGSameResultAcrossRankCounts(t *testing.T) {
	// The global problem (weak scaling of the z extent) changes with rank
	// count, so instead check: a fixed global problem split over 1, 2, 4
	// ranks yields the same residual sequence.
	residual := func(ranks int) float64 {
		cfg := hpccg.DefaultConfig()
		cfg.Nz = 8 / ranks // global z extent 8
		cfg.Nx, cfg.Ny = 8, 8
		cfg.Iters = 12
		res, _ := runMode(t, experiments.Native, ranks, cfg)
		return res[0].Residual
	}
	r1, r2, r4 := residual(1), residual(2), residual(4)
	if math.Abs(r1-r2) > 1e-9*r1 || math.Abs(r1-r4) > 1e-9*r1 {
		t.Fatalf("decomposition changed the math: %v %v %v", r1, r2, r4)
	}
}

func TestAllModesAgreeNumerically(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 8
	var base float64
	for _, mode := range []experiments.Mode{experiments.Native, experiments.Classic, experiments.Intra} {
		res, _ := runMode(t, mode, 2, cfg)
		if mode == experiments.Native {
			base = res[0].Residual
			continue
		}
		if math.Abs(res[0].Residual-base) > 1e-9*base+1e-15 {
			t.Fatalf("%v residual %v != native %v", mode, res[0].Residual, base)
		}
	}
}

func TestIntraSharesKernelWork(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 5
	res, _ := runMode(t, experiments.Intra, 2, cfg)
	st := res[0].Stats
	if st.TasksRun == 0 || st.TasksReceived == 0 {
		t.Fatalf("no work sharing: %+v", st)
	}
	if st.Sections == 0 || st.UpdateBytes == 0 {
		t.Fatalf("sections did not run: %+v", st)
	}
}

func TestKernelClocksPopulated(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 3
	res, _ := runMode(t, experiments.Native, 2, cfg)
	for _, k := range []string{"ddot", "sparsemv", "waxpby", "halo"} {
		if res[0].Kernels[k] == nil || res[0].Kernels[k].Wall <= 0 {
			t.Fatalf("kernel %s not tracked: %+v", k, res[0].Kernels)
		}
	}
	if res[0].Total <= 0 {
		t.Fatal("total time missing")
	}
}

func TestIntraBeatsClassicOnWallClock(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 16, 16, 16
	cfg.Iters = 6
	_, classicEnd := runMode(t, experiments.Classic, 2, cfg)
	_, intraEnd := runMode(t, experiments.Intra, 2, cfg)
	if intraEnd >= classicEnd {
		t.Fatalf("intra (%v) not faster than classic (%v)", intraEnd, classicEnd)
	}
}

func TestSurvivesReplicaCrashMidRun(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 10

	// Reference run, failure-free.
	ref, _ := runMode(t, experiments.Intra, 2, cfg)

	// Crash one replica of logical rank 1 mid-run.
	results := map[int]*hpccg.Result{}
	c := newCluster(t, experiments.ClusterConfig{
		Logical: 2,
		Mode:    experiments.Intra,
		SendLog: true,
	})
	c.Launch(func(rt core.Runner) {
		res, err := hpccg.Run(rt, cfg)
		if err != nil {
			t.Errorf("rank %d: %v", rt.LogicalRank(), err)
			return
		}
		results[rt.LogicalRank()] = res
	})
	// Half-way through the failure-free runtime.
	c.E.At(ref[0].Total/2, func() { c.Sys.KillReplica(1, 0) })
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for rank, res := range results {
		if math.Abs(res.Residual-ref[rank].Residual) > 1e-9*ref[rank].Residual+1e-15 {
			t.Fatalf("rank %d residual after crash %v != reference %v",
				rank, res.Residual, ref[rank].Residual)
		}
	}
}

func TestIntraWaxpbySectionPath(t *testing.T) {
	// Figure 5a sections waxpby too; exercise that path end to end and
	// check the numerics still agree with the unsectioned run.
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 6
	ref, _ := runMode(t, experiments.Intra, 2, cfg)
	cfg.IntraWaxpby = true
	got, _ := runMode(t, experiments.Intra, 2, cfg)
	if math.Abs(got[0].Residual-ref[0].Residual) > 1e-9*ref[0].Residual {
		t.Fatalf("sectioned waxpby changed the math: %v vs %v",
			got[0].Residual, ref[0].Residual)
	}
	if got[0].Kernels["waxpby"].UpdateWait <= 0 {
		t.Fatal("sectioned waxpby should report update wait")
	}
}

func TestPlaneScaleInflatesHaloCost(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 4
	small, _ := runMode(t, experiments.Native, 2, cfg)
	cfg.PlaneScale = 256
	big, _ := runMode(t, experiments.Native, 2, cfg)
	if big[0].Kernels["halo"].Wall <= small[0].Kernels["halo"].Wall {
		t.Fatalf("halo cost did not scale: %v vs %v",
			big[0].Kernels["halo"].Wall, small[0].Kernels["halo"].Wall)
	}
}

// newCluster builds a cluster from a known-good test config, failing the
// test on a validation error.
func newCluster(t *testing.T, cfg experiments.ClusterConfig) *experiments.Cluster {
	t.Helper()
	c, err := experiments.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
