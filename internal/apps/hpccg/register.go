package hpccg

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// PaperConfig returns the paper's HPCCG setup (§V-C): per-logical problem
// 128^3 in native runs, doubled (z-extent 256) under replication, executed
// on SizeDivisor-scaled arrays charged at paper-scale cost.
func PaperConfig(replicated bool, iters int, intraWaxpby bool) Config {
	const div = apputil.SizeDivisor
	k := float64(div)
	cfg := Config{
		Nx: 128 / div, Ny: 128 / div, Nz: 128 / div,
		Iters: iters, Tasks: 8,
		Scale: k * k * k, PlaneScale: k * k,
		IntraDdot: true, IntraSparsemv: true, IntraWaxpby: intraWaxpby,
	}
	if replicated {
		cfg.Nz *= 2 // per-logical problem size doubles (§V-C)
	}
	return cfg
}

func init() {
	scenario.RegisterApp(scenario.AppEntry{
		Name:        "hpccg",
		Description: "HPCCG conjugate-gradient mini-app (Mantevo; weak scaling, Figure 5)",
		New:         func() any { c := DefaultConfig(); return &c },
		Run: func(cfg any) (scenario.AppRun, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("hpccg: config is %T, want *hpccg.Config", cfg)
			}
			cc := *c
			return func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
				res, err := Run(rt, cc)
				if err != nil {
					return 0, nil, core.Stats{}, err
				}
				return res.Total, res.Kernels, res.Stats, nil
			}, nil
		},
		Paper: func(iters, tasks int) any {
			if iters <= 0 {
				iters = 10
			}
			c := PaperConfig(false, iters, false)
			if tasks > 0 {
				c.Tasks = tasks
			}
			return &c
		},
		WeakScaling: true,
		// The per-rank problem grows with the replication degree, so total
		// logical work stays constant on an equal physical budget.
		GrowPerDegree: func(cfg any, degree int) { cfg.(*Config).Nz *= degree },
		ShrinkPerDegree: func(cfg any, degree int) error {
			c := cfg.(*Config)
			if c.Nz%degree != 0 {
				return fmt.Errorf("hpccg: Nz %d is not a degree-%d multiple: no unreplicated reference problem exists", c.Nz, degree)
			}
			c.Nz /= degree
			return nil
		},
	})
}
