// Package minighost is a surrogate of the MiniGhost mini-application from
// the Mantevo suite: a bulk-synchronous 27-point stencil code that studies
// boundary-exchange strategies (BSPMA), with a periodic grid summation used
// for error checking.
//
// As the paper found (§V-D, Figure 6d), the stencil itself cannot be
// intra-parallelized profitably (its output is a full new 3D grid), so
// only the grid summation — about 10% of the runtime — runs as
// intra-parallel sections; the stencil remains replicated computation.
package minighost

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Config parameterizes a MiniGhost run.
type Config struct {
	Nx, Ny, Nz int     // local grid dimensions (z-decomposed globally)
	Steps      int     // time steps
	Vars       int     // number of grid variables
	ReduceVars int     // variables summed (checksummed) each step
	Tasks      int     // tasks per intra-parallel section
	Scale      float64 // virtual-cost multiplier (volume)
	PlaneScale float64 // wire-size multiplier for halo planes
	IntraGsum  bool    // run grid summations as intra-parallel sections
}

// DefaultConfig returns a small test configuration.
func DefaultConfig() Config {
	return Config{
		Nx: 8, Ny: 8, Nz: 8,
		Steps: 4, Vars: 4, ReduceVars: 4,
		Tasks: 8, Scale: 1, PlaneScale: 1,
		IntraGsum: true,
	}
}

// Result reports one replica's view of the run.
type Result struct {
	Checksum float64 // final summed grid values (correctness witness)
	Kernels  map[string]*apputil.KernelTime
	Total    sim.Time
	Stats    core.Stats
}

const (
	tagHaloUp = iota + 200
	tagHaloDown
)

type app struct {
	rt    core.Runner
	cfg   Config
	clock *apputil.Clock
	cur   []*kernels.Slab // current value of each variable
	next  []*kernels.Slab
}

// Run executes MiniGhost on the calling logical process.
func Run(rt core.Runner, cfg Config) (*Result, error) {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 8
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.PlaneScale <= 0 {
		cfg.PlaneScale = 1
	}
	a := &app{rt: rt, cfg: cfg, clock: apputil.NewClock(rt)}
	for v := 0; v < cfg.Vars; v++ {
		s := kernels.NewSlab(cfg.Nx, cfg.Ny, cfg.Nz)
		// Deterministic, rank- and variable-dependent initial condition.
		for i := range s.V {
			s.V[i] = float64((i+v+rt.LogicalRank())%13) / 13.0
		}
		a.cur = append(a.cur, s)
		a.next = append(a.next, kernels.NewSlab(cfg.Nx, cfg.Ny, cfg.Nz))
	}
	start := rt.Now()
	var checksum float64
	for step := 0; step < cfg.Steps; step++ {
		for v := 0; v < cfg.Vars; v++ {
			if err := a.exchangeHalo(a.cur[v]); err != nil {
				return nil, err
			}
			a.stencil(a.cur[v], a.next[v])
			a.cur[v], a.next[v] = a.next[v], a.cur[v]
		}
		for v := 0; v < cfg.ReduceVars && v < cfg.Vars; v++ {
			sum, err := a.gsum(a.cur[v])
			if err != nil {
				return nil, err
			}
			checksum = sum
		}
	}
	return &Result{
		Checksum: checksum,
		Kernels:  a.clock.Times,
		Total:    rt.Now() - start,
		Stats:    *rt.Stats(),
	}, nil
}

// exchangeHalo swaps boundary z-planes with the logical neighbors (the
// BSPMA boundary exchange MiniGhost exists to study).
func (a *app) exchangeHalo(s *kernels.Slab) error {
	var err error
	a.clock.Track("halo", func() {
		rank, size := a.rt.LogicalRank(), a.rt.LogicalSize()
		plane := a.cfg.Nx * a.cfg.Ny
		wire := int64(float64(8*plane) * a.cfg.PlaneScale)
		if rank > 0 {
			if e := a.rt.SendSized(rank-1, tagHaloUp, s.Plane(0), wire); e != nil {
				err = e
				return
			}
		}
		if rank < size-1 {
			if e := a.rt.SendSized(rank+1, tagHaloDown, s.Plane(a.cfg.Nz-1), wire); e != nil {
				err = e
				return
			}
		}
		if rank > 0 {
			data, e := a.rt.Recv(rank-1, tagHaloDown)
			if e != nil {
				err = e
				return
			}
			copy(s.Plane(-1), data)
		}
		if rank < size-1 {
			data, e := a.rt.Recv(rank+1, tagHaloUp)
			if e != nil {
				err = e
				return
			}
			copy(s.Plane(a.cfg.Nz), data)
		}
	})
	return err
}

// stencil applies the 27-point stencil as replicated computation: its
// output is a full new 3D grid, so shipping updates would cost as much as
// computing them (§V-D).
func (a *app) stencil(in, out *kernels.Slab) {
	a.clock.Track("stencil27", func() {
		// MiniGhost's averaging stencil: new value is the mean of the 27
		// neighborhood points.
		w := kernels.Stencil27Range(in, out, 1.0/27, 1.0/27, 0, a.cfg.Nz)
		a.rt.Compute(w.Scale(a.cfg.Scale))
	})
}

// gsum computes the global sum of the grid: the local summation is the one
// kernel the paper could intra-parallelize in MiniGhost.
func (a *app) gsum(s *kernels.Slab) (float64, error) {
	var local float64
	var err error
	a.clock.Track("gsum", func() {
		interior := s.Interior()
		if !a.cfg.IntraGsum {
			var w = kernels.SumWork(len(interior))
			v, _ := kernels.Sum(interior)
			local = v
			a.rt.Compute(w.Scale(a.cfg.Scale))
			return
		}
		parts := make([]float64, a.cfg.Tasks)
		bounds := make([]float64, 2*a.cfg.Tasks)
		a.rt.SectionBegin()
		id := a.rt.TaskRegister(func(c core.Ctx, args []core.Value) {
			lo := int(*args[1].(core.Scalar).P)
			hi := int(*args[2].(core.Scalar).P)
			v, w := kernels.Sum(interior[lo:hi])
			*args[0].(core.Scalar).P = v
			c.Compute(w.Scale(a.cfg.Scale))
		}, core.Out, core.In, core.In)
		for i := 0; i < a.cfg.Tasks; i++ {
			lo, hi := apputil.TaskBounds(len(interior), a.cfg.Tasks, i)
			bounds[2*i], bounds[2*i+1] = float64(lo), float64(hi)
			a.rt.TaskLaunch(id, core.Scalar{P: &parts[i]},
				core.Scalar{P: &bounds[2*i]}, core.Scalar{P: &bounds[2*i+1]})
		}
		if err = a.rt.SectionEnd(); err != nil {
			return
		}
		for _, v := range parts {
			local += v
		}
	})
	if err != nil {
		return 0, err
	}
	return a.rt.AllreduceScalar(mpi.OpSum, local)
}
