package minighost_test

import (
	"math"
	"testing"

	"repro/internal/apps/minighost"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func runMode(t *testing.T, mode experiments.Mode, logical int, cfg minighost.Config) (map[int]*minighost.Result, sim.Time) {
	t.Helper()
	results := map[int]*minighost.Result{}
	end, err := experiments.RunProgram(experiments.ClusterConfig{
		Logical: logical,
		Mode:    mode,
	}, func(rt core.Runner) {
		res, err := minighost.Run(rt, cfg)
		if err != nil {
			t.Errorf("%v rank %d: %v", mode, rt.LogicalRank(), err)
			return
		}
		if prev, ok := results[rt.LogicalRank()]; ok && prev.Checksum != res.Checksum {
			t.Errorf("replica divergence: %v vs %v", prev.Checksum, res.Checksum)
		}
		results[rt.LogicalRank()] = res
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, end
}

func TestAveragingStencilConservesChecksumShape(t *testing.T) {
	cfg := minighost.DefaultConfig()
	res, _ := runMode(t, experiments.Native, 2, cfg)
	if res[0].Checksum == 0 {
		t.Fatal("checksum should be nonzero for nonzero initial grids")
	}
	if res[0].Checksum != res[1].Checksum {
		t.Fatal("global checksum must agree across ranks")
	}
}

func TestAllModesAgree(t *testing.T) {
	cfg := minighost.DefaultConfig()
	var base float64
	for _, mode := range []experiments.Mode{experiments.Native, experiments.Classic, experiments.Intra} {
		res, _ := runMode(t, mode, 2, cfg)
		if mode == experiments.Native {
			base = res[0].Checksum
			continue
		}
		if math.Abs(res[0].Checksum-base) > 1e-9*math.Abs(base) {
			t.Fatalf("%v checksum %v != native %v", mode, res[0].Checksum, base)
		}
	}
}

func TestGsumIsSmallFractionOfRuntime(t *testing.T) {
	// The paper could only intra-parallelize the grid summation, ~10% of
	// MiniGhost's runtime (§V-D). Check the stencil dominates.
	cfg := minighost.DefaultConfig()
	cfg.Steps = 3
	res, _ := runMode(t, experiments.Native, 2, cfg)
	st := res[0].Kernels["stencil27"].Wall
	gs := res[0].Kernels["gsum"].Wall
	if gs >= st {
		t.Fatalf("gsum (%v) should be much smaller than stencil (%v)", gs, st)
	}
}

func TestIntraSectionsOnlyForGsum(t *testing.T) {
	cfg := minighost.DefaultConfig()
	res, _ := runMode(t, experiments.Intra, 2, cfg)
	st := res[0].Stats
	wantSections := cfg.Steps * cfg.ReduceVars
	if st.Sections != wantSections {
		t.Fatalf("sections = %d, want %d", st.Sections, wantSections)
	}
}

func TestSurvivesCrash(t *testing.T) {
	cfg := minighost.DefaultConfig()
	ref, _ := runMode(t, experiments.Intra, 2, cfg)

	results := map[int]*minighost.Result{}
	c := newCluster(t, experiments.ClusterConfig{
		Logical: 2, Mode: experiments.Intra, SendLog: true,
	})
	c.Launch(func(rt core.Runner) {
		res, err := minighost.Run(rt, cfg)
		if err != nil {
			t.Errorf("rank %d: %v", rt.LogicalRank(), err)
			return
		}
		results[rt.LogicalRank()] = res
	})
	c.E.At(ref[0].Total/3, func() { c.Sys.KillReplica(0, 1) })
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for rank, res := range results {
		if math.Abs(res.Checksum-ref[rank].Checksum) > 1e-9*math.Abs(ref[rank].Checksum) {
			t.Fatalf("rank %d checksum after crash %v != %v", rank, res.Checksum, ref[rank].Checksum)
		}
	}
}

// newCluster builds a cluster from a known-good test config, failing the
// test on a validation error.
func newCluster(t *testing.T, cfg experiments.ClusterConfig) *experiments.Cluster {
	t.Helper()
	c, err := experiments.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
