package minighost

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// PaperConfig is the MiniGhost problem of Figure 6d (128x128x64, 27-point
// stencil).
func PaperConfig() Config {
	const div = apputil.SizeDivisor
	k := float64(div)
	return Config{
		Nx: 128 / div, Ny: 128 / div, Nz: 64 / div,
		Steps: 6, Vars: 4, ReduceVars: 4, Tasks: 8,
		Scale: k * k * k, PlaneScale: k * k,
		IntraGsum: true,
	}
}

func init() {
	scenario.RegisterApp(scenario.AppEntry{
		Name:        "minighost",
		Description: "MiniGhost 27-point stencil mini-app (Mantevo; Figure 6d)",
		New:         func() any { c := DefaultConfig(); return &c },
		Run: func(cfg any) (scenario.AppRun, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("minighost: config is %T, want *minighost.Config", cfg)
			}
			cc := *c
			return func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
				res, err := Run(rt, cc)
				if err != nil {
					return 0, nil, core.Stats{}, err
				}
				return res.Total, res.Kernels, res.Stats, nil
			}, nil
		},
		Paper: func(iters, tasks int) any {
			c := PaperConfig()
			if iters > 0 {
				c.Steps = iters
			}
			if tasks > 0 {
				c.Tasks = tasks
			}
			return &c
		},
	})
}
