package campaign

import (
	"encoding/json"
	"math"
)

// expansion is an exact float64 accumulator: the running sum is kept as a
// list of non-overlapping partials (Shewchuk's grow-expansion, the
// algorithm behind math.fsum), so adding a value loses no information and
// the represented total is the exact real-number sum of everything added.
// Exactness is what makes campaign aggregates mergeable: real-number
// addition is associative, so partial sums accumulated per shard and then
// merged represent the same exact total as one pooled pass, and the
// rounded statistics derived from them agree to the last ulp — a naive
// compensated sum could not promise that through the catastrophic
// cancellation in sumsq - sum²/n.
//
// Inputs must be finite; campaign metrics (makespans, slowdowns,
// efficiencies) always are.
type expansion struct {
	partials []float64 // non-overlapping, increasing magnitude
}

// add folds x into the expansion exactly (error-free transformation).
func (e *expansion) add(x float64) {
	i := 0
	for _, y := range e.partials {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			e.partials[i] = lo
			i++
		}
		x = hi
	}
	e.partials = append(e.partials[:i], x)
}

// merge folds another expansion in; the result represents the exact sum
// of both, whatever order the inputs arrived in.
func (e *expansion) merge(o expansion) {
	for _, p := range o.partials {
		e.add(p)
	}
}

// value rounds the exact total to float64, summing the non-overlapping
// partials in increasing magnitude.
func (e *expansion) value() float64 {
	v := 0.0
	for _, p := range e.partials {
		v += p
	}
	return v
}

// Agg is the mergeable aggregate of one metric over a set of trials:
// count, exact sum, exact sum of squares, and range. Shards accumulate
// disjoint trial subsets and a merge reconstitutes the pooled aggregate;
// Stat derives the campaign's reported statistics, so merged shards and a
// pooled pass produce the same numbers (see expansion for why exactly).
type Agg struct {
	count      int
	min, max   float64
	sum, sumsq expansion
}

// Add folds one trial value in.
func (a *Agg) Add(x float64) {
	if a.count == 0 || x < a.min {
		a.min = x
	}
	if a.count == 0 || x > a.max {
		a.max = x
	}
	a.count++
	a.sum.add(x)
	a.sumsq.add(x * x)
}

// Merge folds another aggregate in; the trial sets must be disjoint.
func (a *Agg) Merge(o Agg) {
	if o.count == 0 {
		return
	}
	if a.count == 0 || o.min < a.min {
		a.min = o.min
	}
	if a.count == 0 || o.max > a.max {
		a.max = o.max
	}
	a.count += o.count
	a.sum.merge(o.sum)
	a.sumsq.merge(o.sumsq)
}

// Count reports the number of trials folded in.
func (a *Agg) Count() int { return a.count }

// Stat derives the reported statistics. With fewer than two trials there
// is no dispersion estimate: CI95 is NaN (JSON null, "-" in tables),
// matching the PR 4 convention.
func (a *Agg) Stat() Stat {
	if a.count == 0 {
		return Stat{CI95: math.NaN()}
	}
	n := float64(a.count)
	sum := a.sum.value()
	s := Stat{Mean: sum / n, Min: a.min, Max: a.max, CI95: math.NaN()}
	if a.count > 1 {
		// Sample variance from the exact sums; the subtraction is the usual
		// cancellation-prone form, but both the pooled and the merged path
		// feed it identical exact sums, so they cancel identically. Clamp
		// the rounding-negative case to zero.
		ss := (a.sumsq.value() - sum*sum/n) / (n - 1)
		if ss < 0 {
			ss = 0
		}
		s.Std = math.Sqrt(ss)
		s.CI95 = 1.96 * s.Std / math.Sqrt(n)
	}
	return s
}

// aggWire is the stored form of an Agg: the exact partials round-trip
// losslessly through JSON (float64 marshals shortest-round-trip), so a
// shard's persisted aggregate merges as exactly as its in-memory one.
type aggWire struct {
	Count int       `json:"count"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	Sum   []float64 `json:"sum"`   // exact-sum partials
	SumSq []float64 `json:"sumsq"` // exact sum-of-squares partials
}

func (a *Agg) wire() aggWire {
	return aggWire{Count: a.count, Min: a.min, Max: a.max,
		Sum: a.sum.partials, SumSq: a.sumsq.partials}
}

func (w aggWire) agg() Agg {
	return Agg{count: w.Count, min: w.Min, max: w.Max,
		sum: expansion{partials: w.Sum}, sumsq: expansion{partials: w.SumSq}}
}

// MarshalJSON encodes the aggregate in its exact wire form, so persisted
// aggregates round-trip losslessly (same partials, bit for bit) and two
// runs that folded the same trials in the same order compare byte-equal.
func (a Agg) MarshalJSON() ([]byte, error) { return json.Marshal(a.wire()) }

// UnmarshalJSON restores an aggregate from its wire form.
func (a *Agg) UnmarshalJSON(b []byte) error {
	var w aggWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*a = w.agg()
	return nil
}

// newAgg builds the aggregate of a pooled value list.
func newAgg(xs []float64) Agg {
	var a Agg
	for _, x := range xs {
		a.Add(x)
	}
	return a
}

// newStat aggregates a pooled value list. Routing the pooled path through
// Agg is what ties the campaign's reported numbers to the mergeable
// shard aggregates: both are the same arithmetic on the same exact sums.
func newStat(xs []float64) Stat {
	a := newAgg(xs)
	return a.Stat()
}
