package campaign

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

// TestAggMergeMatchesPooled is the CI-math-under-merge property: for
// random trial sets split across random shard counts, merged in random
// order — with every partial aggregate pushed through its JSON wire form
// on the way — the merged statistics equal the pooled statistics to 1
// ulp, CI95 included. The values are deliberately ill-conditioned (large
// mean, tiny spread) so the sumsq - sum²/n cancellation would expose any
// inexact accumulation.
func TestAggMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 200; round++ {
		n := rng.Intn(40) // includes the 0- and 1-trial edges
		xs := make([]float64, n)
		for i := range xs {
			// Mean ~1000, stddev ~1e-4: variance is 10 orders of magnitude
			// below sumsq/n.
			xs[i] = 1000 + rng.NormFloat64()*1e-4
		}
		pooled := newStat(xs)

		shards := 1 + rng.Intn(4)
		parts := make([]Agg, shards)
		for _, x := range xs {
			parts[rng.Intn(shards)].Add(x)
		}
		var merged Agg
		for _, s := range rng.Perm(shards) {
			// Round-trip through the stored form: persisted partials must
			// merge exactly like in-memory ones.
			raw, err := json.Marshal(parts[s].wire())
			if err != nil {
				t.Fatal(err)
			}
			var w aggWire
			if err := json.Unmarshal(raw, &w); err != nil {
				t.Fatal(err)
			}
			merged.Merge(w.agg())
		}
		if merged.Count() != n {
			t.Fatalf("round %d: merged %d trials, want %d", round, merged.Count(), n)
		}
		got := merged.Stat()
		if !statUlpEq(got, pooled) {
			t.Fatalf("round %d (n=%d, %d shards): merged stat %+v diverges from pooled %+v",
				round, n, shards, got, pooled)
		}
	}
}

// TestAggFewTrialEdges pins the <2-trials convention through the
// mergeable path: no trials and one trial have no dispersion estimate
// (CI95 NaN, JSON null), and a 1+1 merge acquires one.
func TestAggFewTrialEdges(t *testing.T) {
	var empty Agg
	if s := empty.Stat(); !math.IsNaN(s.CI95) || s.Mean != 0 {
		t.Fatalf("empty aggregate: %+v", s)
	}
	var one Agg
	one.Add(3.5)
	s := one.Stat()
	if !math.IsNaN(s.CI95) || s.Std != 0 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single-trial aggregate: %+v", s)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var w map[string]any
	if err := json.Unmarshal(raw, &w); err != nil {
		t.Fatal(err)
	}
	if v, present := w["ci95"]; !present || v != nil {
		t.Fatalf("undefined CI95 must encode as null: %s", raw)
	}
	var other Agg
	other.Add(4.5)
	one.Merge(other)
	if s := one.Stat(); math.IsNaN(s.CI95) || s.Mean != 4.0 || s.Min != 3.5 || s.Max != 4.5 {
		t.Fatalf("1+1 merge must define a CI: %+v", s)
	}
	// Merging emptiness changes nothing.
	before := one.Stat()
	one.Merge(Agg{})
	if one.Count() != 2 || !statUlpEq(one.Stat(), before) {
		t.Fatalf("empty merge changed the aggregate: %+v", one.Stat())
	}
}

// TestExpansionExactness: the exact accumulator must survive a sum that
// defeats naive float64 addition outright (1, 1e100, 1, -1e100 sums to 2,
// naive addition says 0), in any order.
func TestExpansionExactness(t *testing.T) {
	xs := []float64{1, 1e100, 1, -1e100}
	naive := 0.0
	for _, x := range xs {
		naive += x
	}
	if naive == 2 {
		t.Skip("test platform sums this exactly; pick harder values")
	}
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 20; round++ {
		var e expansion
		for _, i := range rng.Perm(len(xs)) {
			e.add(xs[i])
		}
		if v := e.value(); v != 2 {
			t.Fatalf("round %d: exact sum = %v, want 2", round, v)
		}
	}
}

// TestVerifyStoredAggregatesMismatch: a stored aggregate that disagrees
// with the pooled trials must fail verification — the guard against a
// shard having aggregated different trials than the merge pooled.
func TestVerifyStoredAggregatesMismatch(t *testing.T) {
	scs := []Scenario{{
		Point: scenario.Scenario{
			Name: "p", App: "hpccg",
			Config: scenario.MustRaw(hpccg.Config{
				Nx: 8, Ny: 8, Nz: 8, Iters: 2, Tasks: 8,
				Scale: 64, PlaneScale: 16,
				IntraDdot: true, IntraSparsemv: true,
			}),
			Mode: scenario.Intra, Logical: 2,
		},
		MTBF: 100 * sim.Millisecond,
	}}
	cfg := Config{Trials: 4, Seed: 9, Workers: 1}
	res, err := Run(cfg, scs)
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir(), "doctored")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var bad Agg
	for k := 0; k < 4; k++ {
		bad.Add(1.0 + float64(k)) // not the campaign's makespans
	}
	if err := persistAggregates(st, store.Shard{}, cfg, 4, scs, [][3]Agg{{bad, bad, bad}}); err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	if _, err := VerifyStoredAggregates(cfg, scs, res); err == nil {
		t.Fatal("doctored aggregate record passed verification")
	}
}
