package campaign

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// BenchmarkCampaignGTC runs a full Monte Carlo campaign per op — the same
// workload as cmd/bench's campaign-gtc-trials macro — so the trial loop can
// be profiled in isolation with the testing harness:
//
//	BENCH_TRIALS=1000 go test ./internal/campaign/ -run xxx -bench CampaignGTC -benchtime 3x
//
// BENCH_TRIALS scales the trials per op (default 100); larger counts
// amortize the two fault-free reference runs and the trace recording.
func BenchmarkCampaignGTC(b *testing.B) {
	trials := 100
	if v := os.Getenv("BENCH_TRIALS"); v != "" {
		trials, _ = strconv.Atoi(v)
	}
	ent, err := scenario.AppByName("gtc")
	if err != nil {
		b.Fatal(err)
	}
	sc := Scenario{
		MTBF: sim.Seconds(0.05),
		Point: scenario.Scenario{
			Name: "bench/gtc/classic/p8",
			App:  "gtc", Config: scenario.MustRaw(ent.Paper(2, 0)),
			Mode: scenario.Classic, Logical: 8, Degree: 2,
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Trials: trials, Seed: 1, Workers: 1}, []Scenario{sc}); err != nil {
			b.Fatal(err)
		}
	}
}
