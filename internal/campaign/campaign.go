// Package campaign runs Monte Carlo failure campaigns: many seeded
// replicated simulations per scenario point, with crash schedules drawn
// from an exponential per-replica MTBF (fault.ExponentialDraw), aggregated
// into expected-makespan, workload-efficiency and failure-survival
// statistics with confidence intervals.
//
// A campaign measures both sides of the paper's §II comparison. The
// replicated side crashes replicas mid-run (clamped fault.ExponentialDraw
// schedules) and times the recovered executions. The checkpoint/restart
// side (scenario mode "ccr") measures the competing scheme the same way:
// the scenario's fault-free makespan — one memoized native sweep run — is
// replayed per trial under an unclamped seeded failure trace with periodic
// checkpoints, rollback re-execution and restarts (internal/ckptsim), and
// both measured series are reported next to Daly's analytic prediction,
// including the crossover MTBF found from the measured data next to
// ckpt.CrossoverMTBF.
//
// Every replicated trial is one experiments.Spec, so campaigns inherit the
// sweep runner's worker pool, content-keyed memo and deterministic
// ordering: trials whose draw contains no crash are simulated once and
// served from the memo, and the aggregate output is byte-identical for any
// worker count. The ccr trials fan out over the same worker count, each a
// deterministic replay. All randomness flows from Config.Seed through
// fault.TrialSeed, so a campaign is reproducible from (seed, scenario
// grid) alone.
package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ckpt"
	"repro/internal/ckptsim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

// Scenario is one point of the campaign grid: a canonical scenario under a
// replicated or checkpoint/restart fault-tolerance mode, subjected to an
// exponential per-replica failure process of mean MTBF. The campaign layer
// is a thin adapter over scenario.Scenario: every reference and trial run
// goes through experiments.SpecFor.
type Scenario struct {
	// Point is the scenario the failures perturb, in its fault-free form
	// (its Fault field must be empty; the campaign draws the schedules).
	// Replicated modes crash replicas inside the simulation; ccr points
	// replay their native makespan under ckptsim.
	Point scenario.Scenario
	// MTBF is the per-replica mean time between failures.
	MTBF sim.Time
	// Horizon overrides Config.Horizon for this scenario (0 = inherit).
	Horizon sim.Time

	// Native optionally overrides the unreplicated reference run used for
	// the resource-normalized efficiency metric. Nil derives it from Point
	// (same app/config/platform in native mode: the Figure 6
	// constant-problem protocol); weak-scaling campaigns (HPCCG, Figure 5)
	// set it to the full physical budget on the ungrown problem.
	Native *scenario.Scenario
}

// FromScenario adapts a scenario-file point carrying an MTBF fault model
// (fault.mtbf_seconds > 0) into a campaign scenario. For weak-scaling apps
// it reconstructs the CLI grid's native reference — the full physical
// budget on the degree-shrunk per-rank problem — so the efficiency
// baseline is identical whether a point came from flags or from a file.
func FromScenario(sc scenario.Scenario) (Scenario, error) {
	if sc.Fault == nil || sc.Fault.MTBFSeconds <= 0 {
		return Scenario{}, fmt.Errorf("campaign: scenario %q has no MTBF fault model", sc.Name)
	}
	if len(sc.Fault.Crashes) > 0 {
		return Scenario{}, fmt.Errorf("campaign: scenario %q mixes explicit crashes with an MTBF", sc.Name)
	}
	out := Scenario{
		MTBF:    sim.Seconds(sc.Fault.MTBFSeconds),
		Horizon: sim.Seconds(sc.Fault.HorizonSeconds),
	}
	sc.Fault = nil
	out.Point = sc
	native, err := weakScalingNative(sc)
	if err != nil {
		return Scenario{}, err
	}
	out.Native = native
	return out, nil
}

// weakScalingNative builds the weak-scaling native reference of a point,
// or nil for fixed-size apps and unreplicated (ccr) points, whose
// reference is the point itself in native mode.
func weakScalingNative(sc scenario.Scenario) (*scenario.Scenario, error) {
	if !sc.Mode.Replicated() {
		return nil, nil
	}
	ent, err := scenario.AppByName(sc.App)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if !ent.WeakScaling || ent.ShrinkPerDegree == nil {
		return nil, nil
	}
	cfg, err := sc.AppConfig()
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	d := sc.EffectiveDegree()
	if err := ent.ShrinkPerDegree(cfg, d); err != nil {
		return nil, fmt.Errorf("campaign: scenario %q: %w", sc.Name, err)
	}
	return &scenario.Scenario{
		App: sc.App, Config: scenario.MustRaw(cfg),
		Mode: scenario.Native, Logical: sc.Logical * d,
		Net: sc.Net, Machine: sc.Machine,
		NetConfig: sc.NetConfig, MachineConfig: sc.MachineConfig,
	}, nil
}

// nativeScenario is the unreplicated reference of the point.
func (sc Scenario) nativeScenario() scenario.Scenario {
	if sc.Native != nil {
		n := *sc.Native
		if n.Name == "" {
			n.Name = sc.Point.Name + "/native"
		}
		return n
	}
	n := sc.Point
	n.Name = sc.Point.Name + "/native"
	n.Mode = scenario.Native
	n.Degree = 0
	n.Intra = nil
	n.Ckpt = nil
	n.Fault = nil
	return n
}

// Config are the campaign-wide knobs.
type Config struct {
	Trials  int   // seeded trials per scenario (0 = default 100)
	Seed    int64 // master seed; trial seeds derive via fault.TrialSeed
	Workers int   // sweep workers (0 = GOMAXPROCS)

	// Horizon bounds the crash-drawing window — a hard cap for every
	// fault-tolerance side. Zero uses each scenario's measured fault-free
	// wall time (checkpoints included for ccr points), and the defaulted
	// ccr window additionally grows until it covers a failure-stretched
	// makespan, so the failure process covers exactly the execution it
	// perturbs.
	Horizon sim.Time

	// CkptDelta / CkptRestart parameterize the cCR machine — both the
	// analytic comparison and the measured ccr-mode replays — in seconds.
	// Zero defaults delta to 5% of the scenario's fault-free wall time and
	// restart to delta. CkptTau is the ccr replay's checkpoint interval
	// (0 = Daly's optimal interval at each scenario's system MTBF). A
	// scenario's own Ckpt options take precedence over all three.
	CkptDelta   float64
	CkptRestart float64
	CkptTau     float64

	// Store, when non-nil, backs every simulation with the persistent
	// result cache: references and replicated trials already present are
	// served without simulating, fresh ones are appended, and the
	// campaign's per-scenario aggregates are persisted as mergeable
	// count/sum/sumsq records (see Populate for the sharded producer).
	// The aggregate output is byte-identical with or without a store.
	Store *store.Store
}

// ckptParams resolves the cCR machine parameters of one scenario from the
// scenario's Ckpt options, the campaign config, and the defaults, given
// the measured native wall time W and the system MTBF.
func (cfg Config) ckptParams(sc Scenario, w, sysMTBF float64) ckptsim.Params {
	var o scenario.CkptOptions
	if sc.Point.Ckpt != nil {
		o = *sc.Point.Ckpt
	}
	p := ckptsim.Params{Tau: o.TauSeconds, Delta: o.DeltaSeconds, Restart: o.RestartSeconds}
	if p.Delta == 0 {
		p.Delta = cfg.CkptDelta
	}
	if p.Delta == 0 {
		p.Delta = 0.05 * w
	}
	if p.Restart == 0 {
		p.Restart = cfg.CkptRestart
	}
	if p.Restart == 0 {
		p.Restart = p.Delta
	}
	if p.Tau == 0 {
		p.Tau = cfg.CkptTau
	}
	if p.Tau == 0 {
		p.Tau = ckpt.OptimalInterval(p.Delta, p.Restart, sysMTBF)
	}
	return p
}

// Stat summarizes one metric over a scenario's trials: mean, sample
// standard deviation, 95% confidence half-width (normal approximation),
// and range. With fewer than two samples there is no dispersion estimate:
// CI95 is NaN (JSON null, "-" in tables), never a misleading zero that
// reads as a perfectly tight interval.
type Stat struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// statJSON is the wire form of Stat: ci95 is nullable because NaN has no
// JSON encoding.
type statJSON struct {
	Mean float64  `json:"mean"`
	Std  float64  `json:"std"`
	CI95 *float64 `json:"ci95"`
	Min  float64  `json:"min"`
	Max  float64  `json:"max"`
}

// MarshalJSON encodes an undefined CI95 (fewer than two trials) as null.
func (s Stat) MarshalJSON() ([]byte, error) {
	w := statJSON{Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max}
	if !math.IsNaN(s.CI95) {
		w.CI95 = &s.CI95
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a null ci95 back to NaN.
func (s *Stat) UnmarshalJSON(b []byte) error {
	var w statJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*s = Stat{Mean: w.Mean, Std: w.Std, CI95: math.NaN(), Min: w.Min, Max: w.Max}
	if w.CI95 != nil {
		s.CI95 = *w.CI95
	}
	return nil
}

// CrashStats counts the injected failures of a scenario's trials.
type CrashStats struct {
	Total           int     `json:"total"`             // crashes injected across all trials
	MeanPerTrial    float64 `json:"mean_per_trial"`    // expected crashes per run
	MaxPerTrial     int     `json:"max_per_trial"`     // worst single trial
	TrialsWithCrash int     `json:"trials_with_crash"` // trials that saw >= 1 failure
	// SuppressedKills counts drawn failures dropped by the survivability
	// clamp (they would have killed a logical rank's last replica), and
	// InterruptedDraws the trials containing at least one: the fraction of
	// runs the raw failure process would have interrupted, forcing a
	// checkpoint restart in a real system.
	SuppressedKills  int `json:"suppressed_kills"`
	InterruptedDraws int `json:"interrupted_draws"`
}

// Analytic is the §II model evaluated at the scenario's operating point,
// for the measured-vs-analytic comparison.
type Analytic struct {
	CkptDeltaSeconds   float64 `json:"ckpt_delta_seconds"`
	CkptRestartSeconds float64 `json:"ckpt_restart_seconds"`
	// CkptTauSeconds is the checkpoint interval a ccr scenario's replays
	// actually ran (Daly's optimal interval unless overridden); zero for
	// replicated scenarios, which never checkpoint inside a run.
	CkptTauSeconds float64 `json:"ckpt_tau_seconds,omitempty"`
	// SystemMTBFSeconds is the MTBF of an unreplicated system on the same
	// node count (MTBF / phys procs): the platform a cCR scheme would run
	// on.
	SystemMTBFSeconds float64 `json:"system_mtbf_seconds"`
	// CCREfficiency is Daly's analytic cCR efficiency at that system MTBF:
	// for ccr scenarios, at the interval the replays ran (CkptTauSeconds),
	// so measured and analytic describe the same machine; for replicated
	// scenarios, at the optimal interval.
	CCREfficiency float64 `json:"ccr_efficiency"`
	// ReplEfficiency is the Ferreira-style replicated efficiency using the
	// measured fault-free efficiency as base (exact for degree 2, the
	// paper's configuration; an approximation otherwise). Zero for ccr
	// scenarios, which have no replicas to model.
	ReplEfficiency float64 `json:"repl_efficiency,omitempty"`
	// CrossoverNodeMTBFSeconds is the per-node MTBF below which cCR on
	// this node count drops under the scenario's measured fault-free
	// efficiency — i.e. where replication starts to win. Zero for ccr
	// scenarios (see Result.Crossovers for the measured pairing).
	CrossoverNodeMTBFSeconds float64 `json:"crossover_node_mtbf_seconds,omitempty"`
}

// Crossover pairs a measured ccr series with a measured replication series
// that shares its native baseline, and reports the per-node MTBF at which
// the measured ccr efficiency drops below the measured replicated
// efficiency — the paper's Fig. 1 crossover — next to the analytic
// ckpt.CrossoverMTBF prediction at the same operating point.
type Crossover struct {
	App      string `json:"app"`
	ReplMode string `json:"repl_mode"` // replicated series: display mode name
	Logical  int    `json:"logical"`   // logical ranks of the replicated series
	Degree   int    `json:"degree"`
	// CCRPhysProcs is the node count of the paired ccr series — the
	// machine whose per-node MTBF both axes below are expressed in.
	CCRPhysProcs int `json:"ccr_phys_procs"`
	// MeasuredNodeMTBFSeconds is log-interpolated between the two sampled
	// MTBF points whose measured efficiencies bracket the crossover; zero
	// when the sampled grid never crosses.
	MeasuredNodeMTBFSeconds float64 `json:"measured_node_mtbf_seconds"`
	// AnalyticNodeMTBFSeconds is ckpt.CrossoverMTBF(delta, restart,
	// measured replicated fault-free efficiency), scaled from system to
	// per-node MTBF by the ccr node count.
	AnalyticNodeMTBFSeconds float64 `json:"analytic_node_mtbf_seconds"`
}

// ScenarioResult aggregates one scenario's trials.
type ScenarioResult struct {
	Name        string  `json:"name"`
	App         string  `json:"app"`
	Mode        string  `json:"mode"`
	Logical     int     `json:"logical"`
	Degree      int     `json:"degree"`
	PhysProcs   int     `json:"phys_procs"`
	MTBFSeconds float64 `json:"mtbf_seconds"`
	Trials      int     `json:"trials"`

	HorizonSeconds       float64 `json:"horizon_seconds"`
	FaultFreeWallSeconds float64 `json:"fault_free_wall_seconds"`
	NativeWallSeconds    float64 `json:"native_wall_seconds"`
	// FaultFreeEfficiency is the paper's resource-normalized workload
	// efficiency of the scenario mode without failures (the Figure 5/6
	// metric).
	FaultFreeEfficiency float64 `json:"fault_free_efficiency"`

	Makespan   Stat `json:"makespan_seconds"` // wall time over trials
	Slowdown   Stat `json:"slowdown"`         // trial wall / fault-free wall
	Efficiency Stat `json:"efficiency"`       // fault-free eff scaled by slowdown

	Crashes  CrashStats `json:"crashes"`
	MemoHits int        `json:"memo_hits"`
	Analytic Analytic   `json:"analytic"`
}

// Result is a whole campaign: the reproducibility envelope plus one
// aggregate per scenario, in grid order, and the measured ccr-vs-
// replication crossovers the grid supports.
type Result struct {
	Seed      int64            `json:"seed"`
	Trials    int              `json:"trials"`
	Scenarios []ScenarioResult `json:"scenarios"`
	// Crossovers is present when the grid pairs ccr and replicated series
	// over a shared MTBF axis and native baseline.
	Crossovers []Crossover `json:"crossovers,omitempty"`
}

// Run executes the campaign: two fault-free reference runs per scenario
// (native and scenario-mode; a ccr point's reference memo-hits its own
// native baseline), then Trials seeded failure injections per scenario —
// simulated crash schedules for replicated points, ckptsim replays for ccr
// points — all fanned out over the worker count, then the deterministic
// aggregation including the measured crossovers.
func Run(cfg Config, scenarios []Scenario) (*Result, error) {
	trials, base, templates, err := planReferences(cfg, scenarios)
	if err != nil {
		return nil, err
	}
	experiments.Progress.SetStatus(fmt.Sprintf("campaign: %d scenarios, measuring references", len(scenarios)))
	baseRes, err := experiments.SweepStore(cfg.Workers, cfg.Store, base)
	if err != nil {
		return nil, fmt.Errorf("campaign references: %w", err)
	}
	plan, err := armTrials(cfg, scenarios, trials, templates, baseRes)
	if err != nil {
		return nil, err
	}
	specs, draws, trialAt := plan.specs, plan.draws, plan.trialAt
	horizons, grow, params := plan.horizons, plan.grow, plan.params
	experiments.Progress.SetStatus(fmt.Sprintf("campaign: %d replicated trials (%d specs)", trials, len(specs)))
	trialRes, err := experiments.SweepStore(cfg.Workers, cfg.Store, specs)
	if err != nil {
		return nil, fmt.Errorf("campaign trials: %w", err)
	}

	// Phase 2b: ccr replays, fanned out over the same worker count. Each
	// replay is independent and deterministic in (seed, scenario, trial),
	// so the fan-out cannot affect the aggregate.
	experiments.Progress.SetStatus("campaign: ccr replays")
	replays := runCCRTrials(cfg, scenarios, trials, baseRes, params, horizons, grow)
	experiments.Progress.SetStatus("campaign: aggregating")

	// Phase 3: aggregate per scenario, in grid order.
	out := &Result{Seed: cfg.Seed, Trials: trials}
	aggs := make([][3]Agg, len(scenarios))
	for i, sc := range scenarios {
		native, ff := baseRes[2*i], baseRes[2*i+1]
		mtbfS := sc.MTBF.Seconds()

		walls := make([]float64, trials)
		var cs CrashStats
		memoHits := 0
		var ffWall, ffEff float64
		var analytic Analytic
		phys := ff.PhysProcs

		if sc.Point.Mode == scenario.CCR {
			// Measured side: replays of the native makespan under cCR. The
			// "fault-free" run of a ccr scenario is the zero-failure replay:
			// checkpoints included, failures excluded.
			w := native.Measure.Wall.Seconds()
			p := params[i]
			ffWall = p.FaultFreeMakespan(w)
			ffEff = w / ffWall * experiments.Efficiency(native.Measure, ff.Measure)
			for t := 0; t < trials; t++ {
				tr := replays[i][t]
				walls[t] = tr.Makespan
				cs.Total += tr.Failures
				if tr.Failures > 0 {
					cs.TrialsWithCrash++
				}
				if tr.Failures > cs.MaxPerTrial {
					cs.MaxPerTrial = tr.Failures
				}
			}
			sysMTBF := mtbfS / float64(phys)
			analytic = Analytic{
				CkptDeltaSeconds:   p.Delta,
				CkptRestartSeconds: p.Restart,
				CkptTauSeconds:     p.Tau,
				SystemMTBFSeconds:  sysMTBF,
				CCREfficiency:      ckpt.Efficiency(p.Tau, p.Delta, p.Restart, sysMTBF),
			}
		} else {
			ffWall = ff.Measure.Wall.Seconds()
			ffEff = experiments.Efficiency(native.Measure, ff.Measure)
			for t := 0; t < trials; t++ {
				r := trialRes[trialAt[i]+t]
				walls[t] = r.Measure.Wall.Seconds()
				cs.Total += r.Crashes
				if r.Crashes > 0 {
					cs.TrialsWithCrash++
				}
				if r.Crashes > cs.MaxPerTrial {
					cs.MaxPerTrial = r.Crashes
				}
				if d := draws[i][t]; d.Suppressed > 0 {
					cs.SuppressedKills += d.Suppressed
					cs.InterruptedDraws++
				}
				if r.Memoized {
					memoHits++
				}
			}
			delta := cfg.CkptDelta
			if delta <= 0 {
				delta = 0.05 * ffWall
			}
			restart := cfg.CkptRestart
			if restart <= 0 {
				restart = delta
			}
			analytic = Analytic{
				CkptDeltaSeconds:         delta,
				CkptRestartSeconds:       restart,
				SystemMTBFSeconds:        mtbfS / float64(phys),
				CCREfficiency:            ckpt.BestEfficiency(delta, restart, mtbfS/float64(phys)),
				ReplEfficiency:           ckpt.ReplicatedEfficiency(ffEff, sc.Point.Logical, mtbfS, delta, restart),
				CrossoverNodeMTBFSeconds: ckpt.CrossoverMTBF(delta, restart, ffEff) * float64(phys),
			}
		}
		cs.MeanPerTrial = float64(cs.Total) / float64(trials)

		slowdowns := make([]float64, trials)
		effs := make([]float64, trials)
		for t := range walls {
			slowdowns[t] = walls[t] / ffWall
			effs[t] = ffEff / slowdowns[t]
		}
		aggs[i] = [3]Agg{newAgg(walls), newAgg(slowdowns), newAgg(effs)}
		out.Scenarios = append(out.Scenarios, ScenarioResult{
			Name: sc.Point.Name, App: sc.Point.App, Mode: sc.Point.Mode.String(),
			Logical: sc.Point.Logical, Degree: sc.Point.EffectiveDegree(), PhysProcs: phys,
			MTBFSeconds: mtbfS, Trials: trials,
			HorizonSeconds:       horizons[i].Seconds(),
			FaultFreeWallSeconds: ffWall,
			NativeWallSeconds:    native.Measure.Wall.Seconds(),
			FaultFreeEfficiency:  ffEff,
			Makespan:             aggs[i][0].Stat(),
			Slowdown:             aggs[i][1].Stat(),
			Efficiency:           aggs[i][2].Stat(),
			Crashes:              cs,
			MemoHits:             memoHits,
			Analytic:             analytic,
		})
	}
	out.Crossovers = crossovers(scenarios, out.Scenarios)
	// A store-backed run persists its (whole-campaign) aggregates, so a
	// later merge can cross-check them against any sharded scheme's.
	if cfg.Store != nil {
		if err := persistAggregates(cfg.Store, store.Shard{}, cfg, trials, scenarios, aggs); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// planReferences validates the campaign and lays out phase 1: the
// fault-free reference specs (native + scenario-mode per scenario, spec
// order fixing result order) and the per-scenario trial templates.
func planReferences(cfg Config, scenarios []Scenario) (trials int, base, templates []experiments.Spec, err error) {
	trials = cfg.Trials
	if trials <= 0 {
		trials = 100
	}
	if len(scenarios) == 0 {
		return 0, nil, nil, fmt.Errorf("campaign: no scenarios")
	}
	if cfg.CkptDelta < 0 || cfg.CkptRestart < 0 || cfg.CkptTau < 0 {
		return 0, nil, nil, fmt.Errorf("campaign: negative checkpoint parameter")
	}
	for _, sc := range scenarios {
		if !sc.Point.Mode.Replicated() && sc.Point.Mode != scenario.CCR {
			return 0, nil, nil, fmt.Errorf("campaign: scenario %q: mode %s has no failures to survive (use classic, intra or ccr)",
				sc.Point.Name, sc.Point.Mode)
		}
		if sc.MTBF <= 0 {
			return 0, nil, nil, fmt.Errorf("campaign: scenario %q: MTBF must be positive", sc.Point.Name)
		}
		if f := sc.Point.Fault; f != nil && (f.MTBFSeconds > 0 || len(f.Crashes) > 0) {
			return 0, nil, nil, fmt.Errorf("campaign: scenario %q: carry the fault model in Scenario.MTBF, not the point", sc.Point.Name)
		}
	}
	base = make([]experiments.Spec, 0, 2*len(scenarios))
	templates = make([]experiments.Spec, len(scenarios))
	for i, sc := range scenarios {
		native, err := experiments.SpecFor(sc.nativeScenario())
		if err != nil {
			return 0, nil, nil, fmt.Errorf("campaign: %w", err)
		}
		ff, err := experiments.SpecFor(sc.Point)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("campaign: %w", err)
		}
		templates[i] = ff
		ff.Name = sc.Point.Name + "/fault-free"
		base = append(base, native, ff)
	}
	return trials, base, templates, nil
}

// trialPlan is phase 2a laid out: every replicated trial as a spec, the
// draws behind them, and the per-scenario failure windows and cCR machine
// parameters. Deterministic in (cfg, scenarios, baseRes), so every shard
// of a campaign derives the identical plan.
type trialPlan struct {
	specs   []experiments.Spec
	draws   [][]fault.Draw
	trialAt []int // scenario -> first spec index (-1 for ccr scenarios)
	// Horizon resolution happens exactly once per scenario: the draws and
	// the reported HorizonSeconds must describe the same window. An
	// explicitly configured horizon is a hard cap on the failure window
	// for every fault-tolerance side; only the defaulted ccr window grows
	// with the makespan.
	horizons []sim.Time
	grow     []bool
	params   []ckptsim.Params
}

// armTrials draws and lays out every trial of the campaign: one Spec per
// replicated trial, all scenarios in a single sweep so the pool stays
// saturated across the whole grid.
func armTrials(cfg Config, scenarios []Scenario, trials int, templates []experiments.Spec, baseRes []experiments.Result) (*trialPlan, error) {
	p := &trialPlan{
		draws:    make([][]fault.Draw, len(scenarios)),
		trialAt:  make([]int, len(scenarios)),
		horizons: make([]sim.Time, len(scenarios)),
		grow:     make([]bool, len(scenarios)),
		params:   make([]ckptsim.Params, len(scenarios)),
	}
	for i, sc := range scenarios {
		horizon := sc.Horizon
		if horizon == 0 {
			horizon = cfg.Horizon
		}
		if sc.Point.Mode == scenario.CCR {
			p.trialAt[i] = -1
			w := baseRes[2*i].Measure.Wall.Seconds()
			p.params[i] = cfg.ckptParams(sc, w, sc.MTBF.Seconds()/float64(sc.Point.Logical))
			if err := p.params[i].Validate(); err != nil {
				return nil, fmt.Errorf("campaign: scenario %q: %w", sc.Point.Name, err)
			}
			if horizon == 0 {
				// The base draw window is the zero-failure ccr makespan; the
				// replay loop grows it per trial until it covers the
				// failure-stretched run. An explicit horizon stays a cap —
				// the same meaning it has for replicated draws — so the two
				// sides of one table never see different failure windows.
				horizon = sim.Seconds(p.params[i].FaultFreeMakespan(w))
				p.grow[i] = true
			}
			p.horizons[i] = horizon
			continue
		}
		if horizon == 0 {
			horizon = baseRes[2*i+1].Measure.Wall
		}
		p.horizons[i] = horizon
		p.trialAt[i] = len(p.specs)
		p.draws[i] = make([]fault.Draw, trials)
		// Classic trials replay the scenario's recorded logical-op trace
		// instead of re-executing the application: send-deterministic
		// replication keeps the logical sequence crash-invariant, so one
		// recording run serves every trial of the scenario. Intra trials
		// keep executing for real — their section protocol reacts to
		// failures below the trace boundary.
		var replay *core.TraceSet
		if sc.Point.Mode == scenario.Classic {
			ts, err := experiments.RecordTraces(templates[i])
			if err != nil {
				return nil, fmt.Errorf("campaign: scenario %q: trace recording: %w", sc.Point.Name, err)
			}
			replay = ts
		}
		for t := 0; t < trials; t++ {
			d := fault.ExponentialDraw(sc.Point.Logical, sc.Point.EffectiveDegree(), sc.MTBF, p.horizons[i],
				fault.TrialSeed(cfg.Seed, i, t))
			p.draws[i][t] = d
			spec := templates[i]
			spec.Name = fmt.Sprintf("%s/t%03d", sc.Point.Name, t)
			spec.Fault = d.Schedule
			// Trials stay on the unbatched world: compute batching collapses
			// per-chunk wake events, which reorders same-instant event ties
			// (NIC posting order at crash times among them), so faulty trials
			// drift from the reference schedule by a few microseconds. Trace
			// replay has no such effect — the op sequence and every park/wake
			// instant are identical — so it is the only trial accelerator.
			spec.Replay = replay
			p.specs = append(p.specs, spec)
		}
	}
	return p, nil
}

// maxHorizonDoublings bounds the ccr draw-window growth; past it the
// remaining tail of an effectively-stalled operating point (expected
// makespan > ~10^6 fault-free walls) is truncated rather than drawn.
const maxHorizonDoublings = 20

// runCCRTrials replays every ccr scenario's trials concurrently on the
// configured worker count. Results are indexed [scenario][trial]; entries
// for replicated scenarios are nil.
func runCCRTrials(cfg Config, scenarios []Scenario, trials int,
	baseRes []experiments.Result, params []ckptsim.Params, horizons []sim.Time, grow []bool) [][]ckptsim.Trial {
	out := make([][]ckptsim.Trial, len(scenarios))
	type job struct{ sc, trial int }
	var jobs []job
	for i, sc := range scenarios {
		if sc.Point.Mode != scenario.CCR {
			continue
		}
		out[i] = make([]ckptsim.Trial, trials)
		for t := 0; t < trials; t++ {
			jobs = append(jobs, job{i, t})
		}
	}
	if len(jobs) == 0 {
		return out
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1))
				if j >= len(jobs) {
					return
				}
				i, t := jobs[j].sc, jobs[j].trial
				sc := scenarios[i]
				work := baseRes[2*i].Measure.Wall.Seconds()
				out[i][t] = ccrTrial(work, params[i], sc.Point.Logical, sc.MTBF,
					horizons[i], grow[i], fault.TrialSeed(cfg.Seed, i, t))
			}
		}()
	}
	wg.Wait()
	return out
}

// ccrTrial draws one unclamped failure trace and replays the work under
// it. With grow set (the defaulted-horizon case) it doubles the draw
// window until it covers the failure-stretched makespan — the unclamped
// draw extends a trace without disturbing the failures already inside
// it, so growth refines the same trial rather than redrawing it. With an
// explicit horizon the window is a hard cap, exactly as it is for
// replicated draws.
func ccrTrial(work float64, p ckptsim.Params, nodes int, mtbf, horizon sim.Time, grow bool, seed int64) ckptsim.Trial {
	h := horizon
	for doublings := 0; ; doublings++ {
		d := fault.ExponentialDrawUnclamped(nodes, 1, mtbf, h, seed)
		times := make([]float64, len(d.Schedule.Crashes))
		for i, c := range d.Schedule.Crashes {
			times[i] = c.Time.Seconds()
		}
		// params were validated in Run; with work >= 0 the replay cannot
		// fail.
		tr, err := ckptsim.Replay(work, p, times)
		if err != nil {
			panic(fmt.Sprintf("campaign: ccr replay: %v", err))
		}
		if !grow || tr.Makespan <= h.Seconds() || doublings >= maxHorizonDoublings {
			return tr
		}
		h *= 2
	}
}

// crossovers pairs each ccr series with the replicated series sharing its
// native baseline and finds where the measured efficiencies cross over
// the sampled MTBF axis.
func crossovers(scenarios []Scenario, results []ScenarioResult) []Crossover {
	// A series is one scenario point swept over MTBF: same native
	// baseline, mode, sizing. Group in first-appearance order so the
	// output is deterministic.
	type seriesKey struct {
		base            string // native reference fingerprint
		mode            string
		logical, degree int
	}
	type series struct {
		key    seriesKey
		phys   int
		points []int // indices into results, MTBF ascending (grid order kept)
	}
	var order []seriesKey
	byKey := map[seriesKey]*series{}
	for i, sc := range scenarios {
		fp, err := sc.nativeScenario().Fingerprint()
		if err != nil {
			continue // phase 1 validated; unreachable in practice
		}
		k := seriesKey{fp, results[i].Mode, results[i].Logical, results[i].Degree}
		s := byKey[k]
		if s == nil {
			s = &series{key: k, phys: results[i].PhysProcs}
			byKey[k] = s
			order = append(order, k)
		}
		s.points = append(s.points, i)
	}
	ccrName := scenario.CCR.String()
	var out []Crossover
	for _, rk := range order {
		if rk.mode == ccrName {
			continue
		}
		repl := byKey[rk]
		for _, ck := range order {
			if ck.mode != ccrName || ck.base != rk.base {
				continue
			}
			cs := byKey[ck]
			x := Crossover{
				App:          results[repl.points[0]].App,
				ReplMode:     rk.mode,
				Logical:      rk.logical,
				Degree:       rk.degree,
				CCRPhysProcs: cs.phys,
			}
			ccrRes := results[cs.points[0]]
			replRes := results[repl.points[0]]
			x.AnalyticNodeMTBFSeconds = ckpt.CrossoverMTBF(
				ccrRes.Analytic.CkptDeltaSeconds, ccrRes.Analytic.CkptRestartSeconds,
				replRes.FaultFreeEfficiency) * float64(cs.phys)
			x.MeasuredNodeMTBFSeconds = measuredCrossover(repl.points, cs.points, results)
			out = append(out, x)
		}
	}
	return out
}

// measuredCrossover finds the per-node MTBF where the measured ccr
// efficiency crosses the measured replicated efficiency, log-interpolated
// between the bracketing sampled points; 0 when the sampled axis never
// crosses or the series share fewer than two MTBF values.
func measuredCrossover(replPts, ccrPts []int, results []ScenarioResult) float64 {
	replAt := map[float64]float64{}
	for _, i := range replPts {
		replAt[results[i].MTBFSeconds] = results[i].Efficiency.Mean
	}
	type pt struct{ mtbf, diff float64 }
	var pts []pt
	for _, i := range ccrPts {
		m := results[i].MTBFSeconds
		if re, ok := replAt[m]; ok {
			pts = append(pts, pt{m, results[i].Efficiency.Mean - re})
		}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].mtbf < pts[b].mtbf })
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.diff == 0 {
			return a.mtbf
		}
		if (a.diff < 0) == (b.diff < 0) {
			continue
		}
		// Log-linear interpolation between the bracketing MTBFs.
		la, lb := math.Log(a.mtbf), math.Log(b.mtbf)
		return math.Exp(la + (lb-la)*(0-a.diff)/(b.diff-a.diff))
	}
	if n := len(pts); n > 0 && pts[n-1].diff == 0 {
		return pts[n-1].mtbf
	}
	return 0
}

// fmtCI renders a confidence half-width, with "-" for the undefined
// (fewer-than-two-trials) case instead of a misleading 0.
func fmtCI(ci float64) string {
	if math.IsNaN(ci) {
		return "-"
	}
	return fmt.Sprintf("%.4f", ci)
}

// Table renders the campaign as the "efficiency vs MTBF" figure family:
// one row per scenario — measured replication and measured cCR series
// side by side — next to the analytic §II models, with the measured
// crossovers as footnotes.
func (r *Result) Table() *experiments.Table {
	t := &experiments.Table{
		ID:    "campaign",
		Title: fmt.Sprintf("Monte Carlo failure campaign (%d trials/point, seed %d)", r.Trials, r.Seed),
		Header: []string{"scenario", "mode", "d", "MTBF (s)", "crash/run",
			"makespan (s)", "±95%", "eff", "ff eff", "cCR model", "repl model", "memo"},
	}
	ccrName := scenario.CCR.String()
	for _, s := range r.Scenarios {
		replModel := fmt.Sprintf("%.3f", s.Analytic.ReplEfficiency)
		if s.Mode == ccrName {
			replModel = "-" // a ccr point has no replicas to model
		}
		t.AddRow(s.Name, s.Mode, fmt.Sprintf("%d", s.Degree),
			fmt.Sprintf("%.3g", s.MTBFSeconds),
			fmt.Sprintf("%.2f", s.Crashes.MeanPerTrial),
			fmt.Sprintf("%.3f", s.Makespan.Mean),
			fmtCI(s.Makespan.CI95),
			fmt.Sprintf("%.3f", s.Efficiency.Mean),
			fmt.Sprintf("%.3f", s.FaultFreeEfficiency),
			fmt.Sprintf("%.3f", s.Analytic.CCREfficiency),
			replModel,
			fmt.Sprintf("%d", s.MemoHits),
		)
	}
	t.Note("eff = fault-free efficiency scaled by the measured failure slowdown; cCR/repl model = §II analytic prediction at the same MTBF; ±95%% is '-' with fewer than two trials")
	t.Note("cCR rows measure coordinated checkpoint/restart by replaying the native makespan under a seeded failure trace (internal/ckptsim)")
	for _, x := range r.Crossovers {
		measured := "no crossover inside the sampled MTBF grid"
		if x.MeasuredNodeMTBFSeconds > 0 {
			measured = fmt.Sprintf("measured crossover at node MTBF ~%.3g s", x.MeasuredNodeMTBFSeconds)
		}
		t.Note("%s vs %s d%d (p%d): %s; analytic ckpt.CrossoverMTBF predicts %.3g s",
			ccrName, x.ReplMode, x.Degree, x.CCRPhysProcs, measured, x.AnalyticNodeMTBFSeconds)
	}
	if len(r.Crossovers) == 0 {
		t.Note("below a scenario's crossover node MTBF (see JSON), the cCR model drops under the measured fault-free efficiency and replication wins")
	}
	return t
}
