// Package campaign runs Monte Carlo failure campaigns: many seeded
// replicated simulations per scenario point, with crash schedules drawn
// from an exponential per-replica MTBF (fault.ExponentialDraw), aggregated
// into expected-makespan, workload-efficiency and failure-survival
// statistics with confidence intervals.
//
// A campaign extends the paper's §II analysis with measured data: where
// internal/ckpt predicts analytically how coordinated checkpoint/restart
// collapses with shrinking MTBF while replication holds its (intra-boosted)
// efficiency, a campaign measures the replicated side by actually crashing
// replicas mid-run and timing the recovered executions, and reports both
// next to each other.
//
// Every trial is one experiments.Spec, so campaigns inherit the sweep
// runner's worker pool, content-keyed memo and deterministic ordering:
// trials whose draw contains no crash are simulated once and served from
// the memo, and the aggregate output is byte-identical for any worker
// count. All randomness flows from Config.Seed through fault.TrialSeed, so
// a campaign is reproducible from (seed, scenario grid) alone.
package campaign

import (
	"fmt"
	"math"

	"repro/internal/ckpt"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Scenario is one point of the campaign grid: a canonical scenario under a
// replicated fault-tolerance mode, subjected to an exponential per-replica
// failure process of mean MTBF. The campaign layer is a thin adapter over
// scenario.Scenario: every reference and trial run goes through
// experiments.SpecFor.
type Scenario struct {
	// Point is the replicated scenario the failures perturb, in its
	// fault-free form (its Fault field must be empty; the campaign draws
	// the schedules).
	Point scenario.Scenario
	// MTBF is the per-replica mean time between failures.
	MTBF sim.Time
	// Horizon overrides Config.Horizon for this scenario (0 = inherit).
	Horizon sim.Time

	// Native optionally overrides the unreplicated reference run used for
	// the resource-normalized efficiency metric. Nil derives it from Point
	// (same app/config/platform in native mode: the Figure 6
	// constant-problem protocol); weak-scaling campaigns (HPCCG, Figure 5)
	// set it to the full physical budget on the ungrown problem.
	Native *scenario.Scenario
}

// FromScenario adapts a scenario-file point carrying an MTBF fault model
// (fault.mtbf_seconds > 0) into a campaign scenario. For weak-scaling apps
// it reconstructs the CLI grid's native reference — the full physical
// budget on the degree-shrunk per-rank problem — so the efficiency
// baseline is identical whether a point came from flags or from a file.
func FromScenario(sc scenario.Scenario) (Scenario, error) {
	if sc.Fault == nil || sc.Fault.MTBFSeconds <= 0 {
		return Scenario{}, fmt.Errorf("campaign: scenario %q has no MTBF fault model", sc.Name)
	}
	if len(sc.Fault.Crashes) > 0 {
		return Scenario{}, fmt.Errorf("campaign: scenario %q mixes explicit crashes with an MTBF", sc.Name)
	}
	out := Scenario{
		MTBF:    sim.Seconds(sc.Fault.MTBFSeconds),
		Horizon: sim.Seconds(sc.Fault.HorizonSeconds),
	}
	sc.Fault = nil
	out.Point = sc
	native, err := weakScalingNative(sc)
	if err != nil {
		return Scenario{}, err
	}
	out.Native = native
	return out, nil
}

// weakScalingNative builds the weak-scaling native reference of a point,
// or nil for fixed-size apps (whose reference is the point itself in
// native mode).
func weakScalingNative(sc scenario.Scenario) (*scenario.Scenario, error) {
	ent, err := scenario.AppByName(sc.App)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if !ent.WeakScaling || ent.ShrinkPerDegree == nil {
		return nil, nil
	}
	cfg, err := sc.AppConfig()
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	d := sc.EffectiveDegree()
	if err := ent.ShrinkPerDegree(cfg, d); err != nil {
		return nil, fmt.Errorf("campaign: scenario %q: %w", sc.Name, err)
	}
	return &scenario.Scenario{
		App: sc.App, Config: scenario.MustRaw(cfg),
		Mode: scenario.Native, Logical: sc.Logical * d,
		Net: sc.Net, Machine: sc.Machine,
		NetConfig: sc.NetConfig, MachineConfig: sc.MachineConfig,
	}, nil
}

// nativeScenario is the unreplicated reference of the point.
func (sc Scenario) nativeScenario() scenario.Scenario {
	if sc.Native != nil {
		n := *sc.Native
		if n.Name == "" {
			n.Name = sc.Point.Name + "/native"
		}
		return n
	}
	n := sc.Point
	n.Name = sc.Point.Name + "/native"
	n.Mode = scenario.Native
	n.Degree = 0
	n.Intra = nil
	n.Fault = nil
	return n
}

// Config are the campaign-wide knobs.
type Config struct {
	Trials  int   // seeded trials per scenario (0 = default 100)
	Seed    int64 // master seed; trial seeds derive via fault.TrialSeed
	Workers int   // sweep workers (0 = GOMAXPROCS)

	// Horizon bounds the crash-drawing window. Zero uses each scenario's
	// measured fault-free wall time, so the failure process covers exactly
	// the execution it perturbs.
	Horizon sim.Time

	// CkptDelta / CkptRestart parameterize the analytic cCR comparison
	// (seconds). Zero defaults delta to 5% of the scenario's fault-free
	// wall time and restart to delta.
	CkptDelta   float64
	CkptRestart float64
}

// Stat summarizes one metric over a scenario's trials: mean, sample
// standard deviation, 95% confidence half-width (normal approximation),
// and range.
type Stat struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

func newStat(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	s := Stat{Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean /= float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
		s.CI95 = 1.96 * s.Std / math.Sqrt(float64(len(xs)))
	}
	return s
}

// CrashStats counts the injected failures of a scenario's trials.
type CrashStats struct {
	Total           int     `json:"total"`             // crashes injected across all trials
	MeanPerTrial    float64 `json:"mean_per_trial"`    // expected crashes per run
	MaxPerTrial     int     `json:"max_per_trial"`     // worst single trial
	TrialsWithCrash int     `json:"trials_with_crash"` // trials that saw >= 1 failure
	// SuppressedKills counts drawn failures dropped by the survivability
	// clamp (they would have killed a logical rank's last replica), and
	// InterruptedDraws the trials containing at least one: the fraction of
	// runs the raw failure process would have interrupted, forcing a
	// checkpoint restart in a real system.
	SuppressedKills  int `json:"suppressed_kills"`
	InterruptedDraws int `json:"interrupted_draws"`
}

// Analytic is the §II model evaluated at the scenario's operating point,
// for the measured-vs-analytic comparison.
type Analytic struct {
	CkptDeltaSeconds   float64 `json:"ckpt_delta_seconds"`
	CkptRestartSeconds float64 `json:"ckpt_restart_seconds"`
	// SystemMTBFSeconds is the MTBF of an unreplicated system on the same
	// node count (MTBF / phys procs): the platform a cCR scheme would run
	// on.
	SystemMTBFSeconds float64 `json:"system_mtbf_seconds"`
	// CCREfficiency is Daly's best-interval cCR efficiency at that system
	// MTBF.
	CCREfficiency float64 `json:"ccr_efficiency"`
	// ReplEfficiency is the Ferreira-style replicated efficiency using the
	// measured fault-free efficiency as base (exact for degree 2, the
	// paper's configuration; an approximation otherwise).
	ReplEfficiency float64 `json:"repl_efficiency"`
	// CrossoverNodeMTBFSeconds is the per-node MTBF below which cCR on
	// this node count drops under the scenario's measured fault-free
	// efficiency — i.e. where replication starts to win.
	CrossoverNodeMTBFSeconds float64 `json:"crossover_node_mtbf_seconds"`
}

// ScenarioResult aggregates one scenario's trials.
type ScenarioResult struct {
	Name        string  `json:"name"`
	App         string  `json:"app"`
	Mode        string  `json:"mode"`
	Logical     int     `json:"logical"`
	Degree      int     `json:"degree"`
	PhysProcs   int     `json:"phys_procs"`
	MTBFSeconds float64 `json:"mtbf_seconds"`
	Trials      int     `json:"trials"`

	HorizonSeconds       float64 `json:"horizon_seconds"`
	FaultFreeWallSeconds float64 `json:"fault_free_wall_seconds"`
	NativeWallSeconds    float64 `json:"native_wall_seconds"`
	// FaultFreeEfficiency is the paper's resource-normalized workload
	// efficiency of the scenario mode without failures (the Figure 5/6
	// metric).
	FaultFreeEfficiency float64 `json:"fault_free_efficiency"`

	Makespan   Stat `json:"makespan_seconds"` // wall time over trials
	Slowdown   Stat `json:"slowdown"`         // trial wall / fault-free wall
	Efficiency Stat `json:"efficiency"`       // fault-free eff scaled by slowdown

	Crashes  CrashStats `json:"crashes"`
	MemoHits int        `json:"memo_hits"`
	Analytic Analytic   `json:"analytic"`
}

// Result is a whole campaign: the reproducibility envelope plus one
// aggregate per scenario, in grid order.
type Result struct {
	Seed      int64            `json:"seed"`
	Trials    int              `json:"trials"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// Run executes the campaign: two fault-free reference runs per scenario
// (native and scenario-mode), then Trials seeded failure injections per
// scenario, all fanned out through the experiments sweep pool, then the
// deterministic aggregation.
func Run(cfg Config, scenarios []Scenario) (*Result, error) {
	trials := cfg.Trials
	if trials <= 0 {
		trials = 100
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("campaign: no scenarios")
	}
	for _, sc := range scenarios {
		if !sc.Point.Mode.Replicated() {
			return nil, fmt.Errorf("campaign: scenario %q: mode %s is not replicated", sc.Point.Name, sc.Point.Mode)
		}
		if sc.MTBF <= 0 {
			return nil, fmt.Errorf("campaign: scenario %q: MTBF must be positive", sc.Point.Name)
		}
		if f := sc.Point.Fault; f != nil && (f.MTBFSeconds > 0 || len(f.Crashes) > 0) {
			return nil, fmt.Errorf("campaign: scenario %q: carry the fault model in Scenario.MTBF, not the point", sc.Point.Name)
		}
	}

	// Phase 1: fault-free references. Spec order fixes result order. The
	// point's spec doubles as the trial template of phase 2, so every
	// scenario is validated and decoded exactly once.
	base := make([]experiments.Spec, 0, 2*len(scenarios))
	templates := make([]experiments.Spec, len(scenarios))
	for i, sc := range scenarios {
		native, err := experiments.SpecFor(sc.nativeScenario())
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		ff, err := experiments.SpecFor(sc.Point)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		templates[i] = ff
		ff.Name = sc.Point.Name + "/fault-free"
		base = append(base, native, ff)
	}
	baseRes, err := experiments.SweepN(cfg.Workers, base)
	if err != nil {
		return nil, fmt.Errorf("campaign references: %w", err)
	}

	// Phase 2: draw and run the trials, one Spec each, all scenarios in a
	// single sweep so the pool stays saturated across the whole grid.
	var specs []experiments.Spec
	draws := make([][]fault.Draw, len(scenarios))
	// Horizon resolution happens exactly once per scenario: the draws and
	// the reported HorizonSeconds must describe the same window.
	horizons := make([]sim.Time, len(scenarios))
	for i, sc := range scenarios {
		horizon := sc.Horizon
		if horizon == 0 {
			horizon = cfg.Horizon
		}
		if horizon == 0 {
			horizon = baseRes[2*i+1].Measure.Wall
		}
		horizons[i] = horizon
		draws[i] = make([]fault.Draw, trials)
		for t := 0; t < trials; t++ {
			d := fault.ExponentialDraw(sc.Point.Logical, sc.Point.EffectiveDegree(), sc.MTBF, horizons[i],
				fault.TrialSeed(cfg.Seed, i, t))
			draws[i][t] = d
			spec := templates[i]
			spec.Name = fmt.Sprintf("%s/t%03d", sc.Point.Name, t)
			spec.Fault = d.Schedule
			specs = append(specs, spec)
		}
	}
	trialRes, err := experiments.SweepN(cfg.Workers, specs)
	if err != nil {
		return nil, fmt.Errorf("campaign trials: %w", err)
	}

	// Phase 3: aggregate per scenario, in grid order.
	out := &Result{Seed: cfg.Seed, Trials: trials}
	for i, sc := range scenarios {
		native, ff := baseRes[2*i], baseRes[2*i+1]
		ffWall := ff.Measure.Wall.Seconds()
		ffEff := experiments.Efficiency(native.Measure, ff.Measure)

		walls := make([]float64, trials)
		slowdowns := make([]float64, trials)
		effs := make([]float64, trials)
		var cs CrashStats
		memoHits := 0
		for t := 0; t < trials; t++ {
			r := trialRes[i*trials+t]
			walls[t] = r.Measure.Wall.Seconds()
			slowdowns[t] = walls[t] / ffWall
			effs[t] = ffEff / slowdowns[t]
			cs.Total += r.Crashes
			if r.Crashes > 0 {
				cs.TrialsWithCrash++
			}
			if r.Crashes > cs.MaxPerTrial {
				cs.MaxPerTrial = r.Crashes
			}
			if d := draws[i][t]; d.Suppressed > 0 {
				cs.SuppressedKills += d.Suppressed
				cs.InterruptedDraws++
			}
			if r.Memoized {
				memoHits++
			}
		}
		cs.MeanPerTrial = float64(cs.Total) / float64(trials)

		delta := cfg.CkptDelta
		if delta <= 0 {
			delta = 0.05 * ffWall
		}
		restart := cfg.CkptRestart
		if restart <= 0 {
			restart = delta
		}
		phys := ff.PhysProcs
		mtbfS := sc.MTBF.Seconds()
		out.Scenarios = append(out.Scenarios, ScenarioResult{
			Name: sc.Point.Name, App: sc.Point.App, Mode: sc.Point.Mode.String(),
			Logical: sc.Point.Logical, Degree: sc.Point.EffectiveDegree(), PhysProcs: phys,
			MTBFSeconds: mtbfS, Trials: trials,
			HorizonSeconds:       horizons[i].Seconds(),
			FaultFreeWallSeconds: ffWall,
			NativeWallSeconds:    native.Measure.Wall.Seconds(),
			FaultFreeEfficiency:  ffEff,
			Makespan:             newStat(walls),
			Slowdown:             newStat(slowdowns),
			Efficiency:           newStat(effs),
			Crashes:              cs,
			MemoHits:             memoHits,
			Analytic: Analytic{
				CkptDeltaSeconds:         delta,
				CkptRestartSeconds:       restart,
				SystemMTBFSeconds:        mtbfS / float64(phys),
				CCREfficiency:            ckpt.BestEfficiency(delta, restart, mtbfS/float64(phys)),
				ReplEfficiency:           ckpt.ReplicatedEfficiency(ffEff, sc.Point.Logical, mtbfS, delta, restart),
				CrossoverNodeMTBFSeconds: ckpt.CrossoverMTBF(delta, restart, ffEff) * float64(phys),
			},
		})
	}
	return out, nil
}

// Table renders the campaign as the "efficiency vs MTBF" figure family: one
// row per scenario, measured statistics next to the analytic §II models.
func (r *Result) Table() *experiments.Table {
	t := &experiments.Table{
		ID:    "campaign",
		Title: fmt.Sprintf("Monte Carlo failure campaign (%d trials/point, seed %d)", r.Trials, r.Seed),
		Header: []string{"scenario", "mode", "d", "MTBF (s)", "crash/run",
			"makespan (s)", "±95%", "eff", "ff eff", "cCR model", "repl model", "memo"},
	}
	for _, s := range r.Scenarios {
		t.AddRow(s.Name, s.Mode, fmt.Sprintf("%d", s.Degree),
			fmt.Sprintf("%.3g", s.MTBFSeconds),
			fmt.Sprintf("%.2f", s.Crashes.MeanPerTrial),
			fmt.Sprintf("%.3f", s.Makespan.Mean),
			fmt.Sprintf("%.4f", s.Makespan.CI95),
			fmt.Sprintf("%.3f", s.Efficiency.Mean),
			fmt.Sprintf("%.3f", s.FaultFreeEfficiency),
			fmt.Sprintf("%.3f", s.Analytic.CCREfficiency),
			fmt.Sprintf("%.3f", s.Analytic.ReplEfficiency),
			fmt.Sprintf("%d", s.MemoHits),
		)
	}
	t.Note("eff = fault-free efficiency scaled by the measured failure slowdown; cCR/repl model = §II analytic prediction at the same MTBF")
	t.Note("below a scenario's crossover node MTBF (see JSON), the cCR model drops under the measured fault-free efficiency and replication wins")
	return t
}
