package campaign_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/campaign"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func smallPoint(name string, mode scenario.Mode) scenario.Scenario {
	return scenario.Scenario{
		Name: name, App: "hpccg",
		Config: scenario.MustRaw(hpccg.Config{
			Nx: 8, Ny: 8, Nz: 8, Iters: 3, Tasks: 8,
			Scale: 64, PlaneScale: 16,
			IntraDdot: true, IntraSparsemv: true,
		}),
		Mode: mode, Logical: 2,
	}
}

func smallScenarios() []campaign.Scenario {
	return []campaign.Scenario{
		{Point: smallPoint("intra/lowMTBF", scenario.Intra), MTBF: 100 * sim.Millisecond},
		{Point: smallPoint("intra/highMTBF", scenario.Intra), MTBF: 1000 * sim.Second},
		{Point: smallPoint("classic/lowMTBF", scenario.Classic), MTBF: 100 * sim.Millisecond},
	}
}

// TestCampaignReproducibleAcrossWorkers is the acceptance property: the
// aggregate JSON of a campaign is byte-identical for any worker count,
// given the same (seed, grid).
func TestCampaignReproducibleAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 5} {
		res, err := campaign.Run(campaign.Config{Trials: 12, Seed: 42, Workers: workers}, smallScenarios())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want = string(b)
			continue
		}
		if string(b) != want {
			t.Fatalf("workers=%d: aggregate JSON differs from serial run", workers)
		}
	}
}

// TestCampaignSeedSensitivity: a different master seed draws different
// failures (makespans or crash counts move), while re-running the same seed
// reproduces the aggregate exactly.
func TestCampaignSeedSensitivity(t *testing.T) {
	scs := smallScenarios()[:1]
	a, err := campaign.Run(campaign.Config{Trials: 10, Seed: 1}, scs)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := campaign.Run(campaign.Config{Trials: 10, Seed: 1}, scs)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	ja2, _ := json.Marshal(a2)
	if string(ja) != string(ja2) {
		t.Fatal("same seed must reproduce the same aggregate")
	}
	b, err := campaign.Run(campaign.Config{Trials: 10, Seed: 2}, scs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenarios[0].Crashes == b.Scenarios[0].Crashes &&
		a.Scenarios[0].Makespan == b.Scenarios[0].Makespan {
		t.Fatal("different seeds produced identical crash draws and makespans")
	}
}

// TestCampaignAggregates sanity-checks the statistics: failures only ever
// delay a run, efficiency degrades from the fault-free value, crash
// accounting is consistent, and fault-free draws hit the sweep memo.
func TestCampaignAggregates(t *testing.T) {
	res, err := campaign.Run(campaign.Config{Trials: 15, Seed: 3}, smallScenarios())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 || res.Trials != 15 {
		t.Fatalf("bad shape: %d scenarios, %d trials", len(res.Scenarios), res.Trials)
	}
	for _, s := range res.Scenarios {
		if s.Makespan.Min < s.FaultFreeWallSeconds-1e-12 {
			t.Errorf("%s: a failed run (%.6f) beat the fault-free wall (%.6f)",
				s.Name, s.Makespan.Min, s.FaultFreeWallSeconds)
		}
		if s.Efficiency.Max > s.FaultFreeEfficiency+1e-12 {
			t.Errorf("%s: trial efficiency %.4f above fault-free %.4f",
				s.Name, s.Efficiency.Max, s.FaultFreeEfficiency)
		}
		if s.Makespan.Std < 0 || s.Makespan.CI95 < 0 {
			t.Errorf("%s: negative dispersion", s.Name)
		}
		if s.Crashes.TrialsWithCrash > s.Trials || s.Crashes.MaxPerTrial > s.Logical {
			t.Errorf("%s: inconsistent crash stats %+v", s.Name, s.Crashes)
		}
		if s.Analytic.CCREfficiency < 0 || s.Analytic.CCREfficiency > 1 {
			t.Errorf("%s: cCR efficiency %v out of range", s.Name, s.Analytic.CCREfficiency)
		}
		switch {
		case strings.Contains(s.Name, "lowMTBF"):
			if s.Crashes.Total == 0 {
				t.Errorf("%s: expected crashes at MTBF << wall", s.Name)
			}
		case strings.Contains(s.Name, "highMTBF"):
			if s.Crashes.Total != 0 {
				t.Errorf("%s: unexpected crashes at MTBF >> wall", s.Name)
			}
			if s.MemoHits < s.Trials-1 {
				t.Errorf("%s: fault-free trials should memoize (%d hits of %d)",
					s.Name, s.MemoHits, s.Trials)
			}
			if s.Slowdown.Mean < 1-1e-12 || s.Slowdown.Mean > 1+1e-12 {
				t.Errorf("%s: fault-free slowdown %v != 1", s.Name, s.Slowdown.Mean)
			}
		}
	}
	// Intra must beat classic fault-free; under MTBF << wall the measured
	// intra efficiency degrades toward classic's, the campaign's headline
	// phenomenon.
	intra, classic := res.Scenarios[0], res.Scenarios[2]
	if intra.FaultFreeEfficiency <= classic.FaultFreeEfficiency {
		t.Fatalf("intra ff eff %.3f <= classic %.3f",
			intra.FaultFreeEfficiency, classic.FaultFreeEfficiency)
	}
	if intra.Efficiency.Mean >= intra.FaultFreeEfficiency {
		t.Fatalf("intra under heavy failures should lose efficiency (%.3f >= %.3f)",
			intra.Efficiency.Mean, intra.FaultFreeEfficiency)
	}
}

// TestCampaignHorizonBeyondMakespan is the regression test for the
// clock-stretch bug: crashes drawn past the program's completion are
// no-ops and must not inflate the measured makespan (the engine used to
// advance its clock to every armed crash time while draining the queue).
func TestCampaignHorizonBeyondMakespan(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Trials: 10, Seed: 5, Horizon: 1000 * sim.Second,
	}, []campaign.Scenario{{Point: smallPoint("far-horizon", scenario.Intra), MTBF: 100 * sim.Second}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scenarios[0]
	// Crash times are drawn up to 1000 virtual seconds; the run itself
	// lasts well under one. Even a crashed run cannot take longer than a
	// few fault-free walls.
	if s.Makespan.Max > 3*s.FaultFreeWallSeconds {
		t.Fatalf("makespan max %.3fs stretched far beyond the fault-free wall %.3fs: "+
			"post-completion crash events leaked into the clock", s.Makespan.Max, s.FaultFreeWallSeconds)
	}
}

// TestCampaignRejectsBadScenarios: native mode and non-positive MTBF are
// configuration errors, not panics.
func TestCampaignRejectsBadScenarios(t *testing.T) {
	_, err := campaign.Run(campaign.Config{Trials: 1},
		[]campaign.Scenario{{Point: smallPoint("bad", scenario.Native), MTBF: sim.Second}})
	if err == nil || !strings.Contains(err.Error(), "not replicated") {
		t.Fatalf("native scenario: got %v", err)
	}
	_, err = campaign.Run(campaign.Config{Trials: 1},
		[]campaign.Scenario{{Point: smallPoint("bad", scenario.Intra)}})
	if err == nil || !strings.Contains(err.Error(), "MTBF") {
		t.Fatalf("zero MTBF: got %v", err)
	}
	if _, err := campaign.Run(campaign.Config{Trials: 1}, nil); err == nil {
		t.Fatal("empty grid must error")
	}
	// A point that carries its own fault model conflicts with the
	// campaign's draws.
	faulty := smallPoint("bad", scenario.Intra)
	faulty.Fault = &scenario.FaultSpec{MTBFSeconds: 0.5}
	_, err = campaign.Run(campaign.Config{Trials: 1},
		[]campaign.Scenario{{Point: faulty, MTBF: sim.Second}})
	if err == nil || !strings.Contains(err.Error(), "fault model") {
		t.Fatalf("fault-carrying point: got %v", err)
	}
}

// TestFromScenario adapts scenario-file points: the MTBF moves out of the
// fault model, and weak-scaling apps get the CLI grid's native reference
// (full physical budget, degree-shrunk problem) so both entry paths share
// one efficiency baseline.
func TestFromScenario(t *testing.T) {
	pt := smallPoint("hpccg/file-point", scenario.Intra)
	pt.Fault = &scenario.FaultSpec{MTBFSeconds: 0.25, HorizonSeconds: 2}
	sc, err := campaign.FromScenario(pt)
	if err != nil {
		t.Fatal(err)
	}
	if sc.MTBF != 250*sim.Millisecond || sc.Horizon != 2*sim.Second {
		t.Fatalf("fault model not lifted: MTBF %v horizon %v", sc.MTBF, sc.Horizon)
	}
	if sc.Point.Fault != nil {
		t.Fatal("the point must shed its fault model")
	}
	if sc.Native == nil {
		t.Fatal("weak-scaling apps need the native reference")
	}
	if sc.Native.Mode != scenario.Native || sc.Native.Logical != 2*pt.Logical {
		t.Fatalf("native reference must run the full physical budget: %+v", sc.Native)
	}
	ncfg, err := sc.Native.AppConfig()
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := sc.Point.AppConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ncfg.(*hpccg.Config).Nz, pcfg.(*hpccg.Config).Nz/2; got != want {
		t.Fatalf("native per-rank problem must be degree-shrunk: Nz %d, want %d", got, want)
	}

	gtcPt := scenario.Scenario{Name: "gtc/file-point", App: "gtc", Mode: scenario.Intra,
		Logical: 4, Fault: &scenario.FaultSpec{MTBFSeconds: 0.1}}
	sc, err = campaign.FromScenario(gtcPt)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Native != nil {
		t.Fatal("fixed-size apps use the constant-problem reference (nil Native)")
	}

	if _, err := campaign.FromScenario(smallPoint("no-fault", scenario.Intra)); err == nil {
		t.Fatal("a point without an MTBF cannot join a campaign")
	}
}

// TestCampaignTable renders without panicking and carries one row per
// scenario.
func TestCampaignTable(t *testing.T) {
	res, err := campaign.Run(campaign.Config{Trials: 4, Seed: 9}, smallScenarios()[:2])
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table()
	if len(tab.Rows) != 2 {
		t.Fatalf("table rows = %d, want 2", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "intra/lowMTBF") {
		t.Fatal("table missing scenario name")
	}
}
