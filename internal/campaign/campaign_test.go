package campaign_test

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/campaign"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func smallPoint(name string, mode scenario.Mode) scenario.Scenario {
	return scenario.Scenario{
		Name: name, App: "hpccg",
		Config: scenario.MustRaw(hpccg.Config{
			Nx: 8, Ny: 8, Nz: 8, Iters: 3, Tasks: 8,
			Scale: 64, PlaneScale: 16,
			IntraDdot: true, IntraSparsemv: true,
		}),
		Mode: mode, Logical: 2,
	}
}

func smallScenarios() []campaign.Scenario {
	return []campaign.Scenario{
		{Point: smallPoint("intra/lowMTBF", scenario.Intra), MTBF: 100 * sim.Millisecond},
		{Point: smallPoint("intra/highMTBF", scenario.Intra), MTBF: 1000 * sim.Second},
		{Point: smallPoint("classic/lowMTBF", scenario.Classic), MTBF: 100 * sim.Millisecond},
	}
}

// TestCampaignReproducibleAcrossWorkers is the acceptance property: the
// aggregate JSON of a campaign is byte-identical for any worker count,
// given the same (seed, grid).
func TestCampaignReproducibleAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 5} {
		res, err := campaign.Run(campaign.Config{Trials: 12, Seed: 42, Workers: workers}, smallScenarios())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want = string(b)
			continue
		}
		if string(b) != want {
			t.Fatalf("workers=%d: aggregate JSON differs from serial run", workers)
		}
	}
}

// TestCampaignSeedSensitivity: a different master seed draws different
// failures (makespans or crash counts move), while re-running the same seed
// reproduces the aggregate exactly.
func TestCampaignSeedSensitivity(t *testing.T) {
	scs := smallScenarios()[:1]
	a, err := campaign.Run(campaign.Config{Trials: 10, Seed: 1}, scs)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := campaign.Run(campaign.Config{Trials: 10, Seed: 1}, scs)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	ja2, _ := json.Marshal(a2)
	if string(ja) != string(ja2) {
		t.Fatal("same seed must reproduce the same aggregate")
	}
	b, err := campaign.Run(campaign.Config{Trials: 10, Seed: 2}, scs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenarios[0].Crashes == b.Scenarios[0].Crashes &&
		a.Scenarios[0].Makespan == b.Scenarios[0].Makespan {
		t.Fatal("different seeds produced identical crash draws and makespans")
	}
}

// TestCampaignAggregates sanity-checks the statistics: failures only ever
// delay a run, efficiency degrades from the fault-free value, crash
// accounting is consistent, and fault-free draws hit the sweep memo.
func TestCampaignAggregates(t *testing.T) {
	res, err := campaign.Run(campaign.Config{Trials: 15, Seed: 3}, smallScenarios())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 || res.Trials != 15 {
		t.Fatalf("bad shape: %d scenarios, %d trials", len(res.Scenarios), res.Trials)
	}
	for _, s := range res.Scenarios {
		if s.Makespan.Min < s.FaultFreeWallSeconds-1e-12 {
			t.Errorf("%s: a failed run (%.6f) beat the fault-free wall (%.6f)",
				s.Name, s.Makespan.Min, s.FaultFreeWallSeconds)
		}
		if s.Efficiency.Max > s.FaultFreeEfficiency+1e-12 {
			t.Errorf("%s: trial efficiency %.4f above fault-free %.4f",
				s.Name, s.Efficiency.Max, s.FaultFreeEfficiency)
		}
		if s.Makespan.Std < 0 || s.Makespan.CI95 < 0 {
			t.Errorf("%s: negative dispersion", s.Name)
		}
		if s.Crashes.TrialsWithCrash > s.Trials || s.Crashes.MaxPerTrial > s.Logical {
			t.Errorf("%s: inconsistent crash stats %+v", s.Name, s.Crashes)
		}
		if s.Analytic.CCREfficiency < 0 || s.Analytic.CCREfficiency > 1 {
			t.Errorf("%s: cCR efficiency %v out of range", s.Name, s.Analytic.CCREfficiency)
		}
		switch {
		case strings.Contains(s.Name, "lowMTBF"):
			if s.Crashes.Total == 0 {
				t.Errorf("%s: expected crashes at MTBF << wall", s.Name)
			}
		case strings.Contains(s.Name, "highMTBF"):
			if s.Crashes.Total != 0 {
				t.Errorf("%s: unexpected crashes at MTBF >> wall", s.Name)
			}
			if s.MemoHits < s.Trials-1 {
				t.Errorf("%s: fault-free trials should memoize (%d hits of %d)",
					s.Name, s.MemoHits, s.Trials)
			}
			if s.Slowdown.Mean < 1-1e-12 || s.Slowdown.Mean > 1+1e-12 {
				t.Errorf("%s: fault-free slowdown %v != 1", s.Name, s.Slowdown.Mean)
			}
		}
	}
	// Intra must beat classic fault-free; under MTBF << wall the measured
	// intra efficiency degrades toward classic's, the campaign's headline
	// phenomenon.
	intra, classic := res.Scenarios[0], res.Scenarios[2]
	if intra.FaultFreeEfficiency <= classic.FaultFreeEfficiency {
		t.Fatalf("intra ff eff %.3f <= classic %.3f",
			intra.FaultFreeEfficiency, classic.FaultFreeEfficiency)
	}
	if intra.Efficiency.Mean >= intra.FaultFreeEfficiency {
		t.Fatalf("intra under heavy failures should lose efficiency (%.3f >= %.3f)",
			intra.Efficiency.Mean, intra.FaultFreeEfficiency)
	}
}

// TestCampaignHorizonBeyondMakespan is the regression test for the
// clock-stretch bug: crashes drawn past the program's completion are
// no-ops and must not inflate the measured makespan (the engine used to
// advance its clock to every armed crash time while draining the queue).
func TestCampaignHorizonBeyondMakespan(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Trials: 10, Seed: 5, Horizon: 1000 * sim.Second,
	}, []campaign.Scenario{{Point: smallPoint("far-horizon", scenario.Intra), MTBF: 100 * sim.Second}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scenarios[0]
	// Crash times are drawn up to 1000 virtual seconds; the run itself
	// lasts well under one. Even a crashed run cannot take longer than a
	// few fault-free walls.
	if s.Makespan.Max > 3*s.FaultFreeWallSeconds {
		t.Fatalf("makespan max %.3fs stretched far beyond the fault-free wall %.3fs: "+
			"post-completion crash events leaked into the clock", s.Makespan.Max, s.FaultFreeWallSeconds)
	}
}

// TestCampaignRejectsBadScenarios: native mode and non-positive MTBF are
// configuration errors, not panics.
func TestCampaignRejectsBadScenarios(t *testing.T) {
	_, err := campaign.Run(campaign.Config{Trials: 1},
		[]campaign.Scenario{{Point: smallPoint("bad", scenario.Native), MTBF: sim.Second}})
	if err == nil || !strings.Contains(err.Error(), "no failures to survive") {
		t.Fatalf("native scenario: got %v", err)
	}
	_, err = campaign.Run(campaign.Config{Trials: 1},
		[]campaign.Scenario{{Point: smallPoint("bad", scenario.Intra)}})
	if err == nil || !strings.Contains(err.Error(), "MTBF") {
		t.Fatalf("zero MTBF: got %v", err)
	}
	if _, err := campaign.Run(campaign.Config{Trials: 1}, nil); err == nil {
		t.Fatal("empty grid must error")
	}
	// A point that carries its own fault model conflicts with the
	// campaign's draws.
	faulty := smallPoint("bad", scenario.Intra)
	faulty.Fault = &scenario.FaultSpec{MTBFSeconds: 0.5}
	_, err = campaign.Run(campaign.Config{Trials: 1},
		[]campaign.Scenario{{Point: faulty, MTBF: sim.Second}})
	if err == nil || !strings.Contains(err.Error(), "fault model") {
		t.Fatalf("fault-carrying point: got %v", err)
	}
}

// TestFromScenario adapts scenario-file points: the MTBF moves out of the
// fault model, and weak-scaling apps get the CLI grid's native reference
// (full physical budget, degree-shrunk problem) so both entry paths share
// one efficiency baseline.
func TestFromScenario(t *testing.T) {
	pt := smallPoint("hpccg/file-point", scenario.Intra)
	pt.Fault = &scenario.FaultSpec{MTBFSeconds: 0.25, HorizonSeconds: 2}
	sc, err := campaign.FromScenario(pt)
	if err != nil {
		t.Fatal(err)
	}
	if sc.MTBF != 250*sim.Millisecond || sc.Horizon != 2*sim.Second {
		t.Fatalf("fault model not lifted: MTBF %v horizon %v", sc.MTBF, sc.Horizon)
	}
	if sc.Point.Fault != nil {
		t.Fatal("the point must shed its fault model")
	}
	if sc.Native == nil {
		t.Fatal("weak-scaling apps need the native reference")
	}
	if sc.Native.Mode != scenario.Native || sc.Native.Logical != 2*pt.Logical {
		t.Fatalf("native reference must run the full physical budget: %+v", sc.Native)
	}
	ncfg, err := sc.Native.AppConfig()
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := sc.Point.AppConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ncfg.(*hpccg.Config).Nz, pcfg.(*hpccg.Config).Nz/2; got != want {
		t.Fatalf("native per-rank problem must be degree-shrunk: Nz %d, want %d", got, want)
	}

	gtcPt := scenario.Scenario{Name: "gtc/file-point", App: "gtc", Mode: scenario.Intra,
		Logical: 4, Fault: &scenario.FaultSpec{MTBFSeconds: 0.1}}
	sc, err = campaign.FromScenario(gtcPt)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Native != nil {
		t.Fatal("fixed-size apps use the constant-problem reference (nil Native)")
	}

	if _, err := campaign.FromScenario(smallPoint("no-fault", scenario.Intra)); err == nil {
		t.Fatal("a point without an MTBF cannot join a campaign")
	}
}

// TestCampaignTable renders without panicking and carries one row per
// scenario.
func TestCampaignTable(t *testing.T) {
	res, err := campaign.Run(campaign.Config{Trials: 4, Seed: 9}, smallScenarios()[:2])
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table()
	if len(tab.Rows) != 2 {
		t.Fatalf("table rows = %d, want 2", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "intra/lowMTBF") {
		t.Fatal("table missing scenario name")
	}
}

// ccrPoint pins tau/delta/R to the tiny test scale (the native wall is
// ~19 ms, so the default Daly-optimal interval would exceed the whole run
// and never checkpoint).
func ccrPoint(name string, mtbf sim.Time) campaign.Scenario {
	pt := smallPoint(name, scenario.CCR)
	pt.Ckpt = &scenario.CkptOptions{TauSeconds: 0.002, DeltaSeconds: 0.0005, RestartSeconds: 0.0005}
	return campaign.Scenario{Point: pt, MTBF: mtbf}
}

// TestCampaignCCRMeasuredVsAnalytic is the acceptance property of the
// measured checkpoint/restart side: at a moderate MTBF the mean measured
// efficiency lands within the documented 15% of Daly's prediction at the
// same (tau, delta, R, system MTBF) — ckpt.Efficiency — and near the
// §II collapse it falls below both the moderate-MTBF value and the
// scenario's fault-free efficiency.
func TestCampaignCCRMeasuredVsAnalytic(t *testing.T) {
	res, err := campaign.Run(campaign.Config{Trials: 400, Seed: 2},
		[]campaign.Scenario{
			ccrPoint("ccr/moderate", 2*sim.Second),
			ccrPoint("ccr/collapse", 4*sim.Millisecond),
		})
	if err != nil {
		t.Fatal(err)
	}
	mod, low := res.Scenarios[0], res.Scenarios[1]
	if mod.Mode != "cCR" || mod.Degree != 1 || mod.PhysProcs != 2 {
		t.Fatalf("ccr identity wrong: %+v", mod)
	}
	if mod.Analytic.CkptTauSeconds <= 0 {
		t.Fatal("ccr row must report the replayed checkpoint interval")
	}
	if mod.FaultFreeWallSeconds <= mod.NativeWallSeconds {
		t.Fatalf("ccr fault-free wall %v must include checkpoint overhead over the native %v",
			mod.FaultFreeWallSeconds, mod.NativeWallSeconds)
	}
	for _, s := range []campaign.ScenarioResult{mod, low} {
		if s.Analytic.CCREfficiency <= 0 || s.Analytic.CCREfficiency >= 1 {
			t.Fatalf("%s: analytic eff %v out of range", s.Name, s.Analytic.CCREfficiency)
		}
		if rel := (s.Efficiency.Mean - s.Analytic.CCREfficiency) / s.Analytic.CCREfficiency; rel > 0.15 || rel < -0.15 {
			t.Fatalf("%s: measured eff %v vs Daly %v: off by %.1f%% (> documented 15%%)",
				s.Name, s.Efficiency.Mean, s.Analytic.CCREfficiency, 100*rel)
		}
	}
	if low.Efficiency.Mean >= mod.Efficiency.Mean {
		t.Fatalf("efficiency must collapse with MTBF: %v at low vs %v at moderate",
			low.Efficiency.Mean, mod.Efficiency.Mean)
	}
	if low.Efficiency.Mean >= low.FaultFreeEfficiency {
		t.Fatalf("collapsed efficiency %v above fault-free %v",
			low.Efficiency.Mean, low.FaultFreeEfficiency)
	}
	if low.Crashes.Total == 0 || low.Crashes.MeanPerTrial <= mod.Crashes.MeanPerTrial {
		t.Fatalf("crash accounting: %+v at low MTBF vs %+v at moderate", low.Crashes, mod.Crashes)
	}
}

// TestCampaignThreeWayCrossover runs the Fig. 1-style grid — a measured
// cCR series and a measured replication series over one MTBF axis — and
// checks the campaign pairs them: a measured crossover inside the sampled
// axis, reported next to the analytic ckpt.CrossoverMTBF, and the whole
// aggregate byte-identical across worker counts.
func TestCampaignThreeWayCrossover(t *testing.T) {
	mtbfs := []sim.Time{4 * sim.Millisecond, 20 * sim.Second}
	var scs []campaign.Scenario
	for _, m := range mtbfs {
		scs = append(scs, ccrPoint(fmt.Sprintf("ccr/mtbf%v", m), m))
		scs = append(scs, campaign.Scenario{
			Point: smallPoint(fmt.Sprintf("intra/mtbf%v", m), scenario.Intra), MTBF: m})
	}
	var want string
	for _, workers := range []int{1, 4} {
		res, err := campaign.Run(campaign.Config{Trials: 10, Seed: 7, Workers: workers}, scs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want = string(b)
		} else if string(b) != want {
			t.Fatal("worker count changed the three-way aggregate")
		}

		if len(res.Crossovers) != 1 {
			t.Fatalf("crossovers = %+v, want exactly one ccr-vs-intra pairing", res.Crossovers)
		}
		x := res.Crossovers[0]
		if x.ReplMode != "intra" || x.CCRPhysProcs != 2 {
			t.Fatalf("crossover identity: %+v", x)
		}
		lo, hi := mtbfs[0].Seconds(), mtbfs[1].Seconds()
		if x.MeasuredNodeMTBFSeconds <= lo || x.MeasuredNodeMTBFSeconds >= hi {
			t.Fatalf("measured crossover %v outside the bracketing axis [%v, %v]",
				x.MeasuredNodeMTBFSeconds, lo, hi)
		}
		if x.AnalyticNodeMTBFSeconds <= 0 {
			t.Fatalf("analytic crossover missing: %+v", x)
		}
		// The grid really does cross: cCR above replication at high MTBF,
		// below it at the collapse point.
		effOf := func(name string) float64 {
			for _, s := range res.Scenarios {
				if s.Name == name {
					return s.Efficiency.Mean
				}
			}
			t.Fatalf("scenario %q missing", name)
			return 0
		}
		if effOf("ccr/mtbf4.000ms") >= effOf("intra/mtbf4.000ms") {
			t.Fatal("cCR should lose at collapsed MTBF")
		}
		if effOf("ccr/mtbf20.0000s") <= effOf("intra/mtbf20.0000s") {
			t.Fatal("cCR should win at high MTBF")
		}
	}
}

// TestStatSingleTrialCI: one trial gives no dispersion estimate — CI95 is
// NaN, JSON null, and "-" in the rendered table — never a zero that reads
// as a perfectly tight interval.
func TestStatSingleTrialCI(t *testing.T) {
	res, err := campaign.Run(campaign.Config{Trials: 1, Seed: 4},
		[]campaign.Scenario{{Point: smallPoint("one", scenario.Intra), MTBF: sim.Second}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scenarios[0]
	if !math.IsNaN(s.Makespan.CI95) || !math.IsNaN(s.Efficiency.CI95) {
		t.Fatalf("1-trial CI95 must be NaN, got %v / %v", s.Makespan.CI95, s.Efficiency.CI95)
	}
	b, err := json.Marshal(s.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"ci95":null`) {
		t.Fatalf("1-trial ci95 must encode as null: %s", b)
	}
	var back campaign.Stat
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.CI95) || back.Mean != s.Makespan.Mean {
		t.Fatalf("round trip mangled the stat: %+v", back)
	}
	if tab := res.Table().String(); !strings.Contains(tab, "-") {
		t.Fatal("table must render the undefined CI as '-'")
	}
	// Two trials restore a defined (possibly zero) interval.
	res2, err := campaign.Run(campaign.Config{Trials: 2, Seed: 4},
		[]campaign.Scenario{{Point: smallPoint("two", scenario.Intra), MTBF: sim.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res2.Scenarios[0].Makespan.CI95) {
		t.Fatal("2-trial CI95 must be defined")
	}
}

// TestFromScenarioCCR: ccr scenario-file points adapt like any campaign
// point — the MTBF lifts out of the fault model, the ckpt options stay on
// the point, and the native reference is the point itself in native mode.
func TestFromScenarioCCR(t *testing.T) {
	pt := smallPoint("ccr/file-point", scenario.CCR)
	pt.Ckpt = &scenario.CkptOptions{TauSeconds: 0.05, DeltaSeconds: 0.004}
	pt.Fault = &scenario.FaultSpec{MTBFSeconds: 0.25}
	sc, err := campaign.FromScenario(pt)
	if err != nil {
		t.Fatal(err)
	}
	if sc.MTBF != 250*sim.Millisecond || sc.Point.Fault != nil {
		t.Fatalf("fault model not lifted: %+v", sc)
	}
	if sc.Point.Ckpt == nil || sc.Point.Ckpt.TauSeconds != 0.05 {
		t.Fatalf("ckpt options lost: %+v", sc.Point)
	}
	if sc.Native != nil {
		t.Fatal("ccr points are their own native reference shape (nil Native)")
	}
}
