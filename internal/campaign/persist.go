package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

// aggKind namespaces per-scenario campaign aggregates in the store.
const aggKind = "campaign-agg"

// campaignFingerprint canonically encodes every campaign knob that shapes
// the trial set (Workers deliberately excluded: the fan-out cannot change
// the numbers). Aggregates from different campaigns never collide.
func campaignFingerprint(cfg Config, trials int) string {
	b, err := json.Marshal(struct {
		Seed        int64    `json:"seed"`
		Trials      int      `json:"trials"`
		Horizon     sim.Time `json:"horizon"`
		CkptDelta   float64  `json:"ckpt_delta"`
		CkptRestart float64  `json:"ckpt_restart"`
		CkptTau     float64  `json:"ckpt_tau"`
	}{cfg.Seed, trials, cfg.Horizon, cfg.CkptDelta, cfg.CkptRestart, cfg.CkptTau})
	if err != nil {
		panic(fmt.Sprintf("campaign: fingerprint: %v", err)) // struct of scalars cannot fail
	}
	return string(b)
}

// scenarioFingerprint canonically encodes one campaign scenario: the
// point and its native reference by content fingerprint, plus the failure
// process parameters.
func scenarioFingerprint(sc Scenario) (string, error) {
	pfp, err := sc.Point.Fingerprint()
	if err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	nfp, err := sc.nativeScenario().Fingerprint()
	if err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	b, err := json.Marshal(struct {
		Point   string   `json:"point"`
		Native  string   `json:"native"`
		MTBF    sim.Time `json:"mtbf"`
		Horizon sim.Time `json:"horizon"`
	}{pfp, nfp, sc.MTBF, sc.Horizon})
	if err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	return string(b), nil
}

// aggKey is the content address of one (campaign, scenario, shard)
// aggregate record.
func aggKey(campaignFP, scenarioFP string, sh store.Shard) string {
	return store.Key(campaignFP + "|" + scenarioFP + "|shard:" + sh.String())
}

// aggRecord is the stored form of one shard's partial aggregates for one
// scenario: the mergeable count/sum/sumsq (exact partials) of the three
// reported metrics. N such records, one per shard, merge into the pooled
// campaign aggregate; VerifyStoredAggregates checks they do.
type aggRecord struct {
	Shard      string  `json:"shard"`  // "i/N"
	Trials     int     `json:"trials"` // trials this shard owns
	Makespan   aggWire `json:"makespan"`
	Slowdown   aggWire `json:"slowdown"`
	Efficiency aggWire `json:"efficiency"`
}

// persistAggregates writes one aggregate record per scenario under the
// given shard label.
func persistAggregates(st *store.Store, sh store.Shard, cfg Config, trials int, scenarios []Scenario, aggs [][3]Agg) error {
	cfp := campaignFingerprint(cfg, trials)
	for i, sc := range scenarios {
		sfp, err := scenarioFingerprint(sc)
		if err != nil {
			return err
		}
		rec := aggRecord{
			Shard: sh.String(), Trials: aggs[i][0].Count(),
			Makespan: aggs[i][0].wire(), Slowdown: aggs[i][1].wire(), Efficiency: aggs[i][2].wire(),
		}
		if err := st.Put(aggKind, aggKey(cfp, sfp, sh), rec); err != nil {
			return err
		}
	}
	return nil
}

// PopulateStats summarizes one shard's campaign populate pass.
type PopulateStats struct {
	Scenarios  int                       `json:"scenarios"`   // campaign grid points
	Trials     int                       `json:"trials"`      // trials per scenario (whole campaign)
	Sweep      experiments.PopulateStats `json:"sweep"`       // replicated trial sweep, this shard's slice
	CCRReplays int                       `json:"ccr_replays"` // ccr replays this shard ran
	AggRecords int                       `json:"agg_records"` // aggregate records persisted
}

// Populate runs one shard's slice of a campaign and persists everything a
// later merge needs: the references (store-backed, shared by all shards
// through first-write-wins dedup), the owned replicated trial simulations
// (partitioned by unique spec, exactly as experiments.PopulateStore), and
// one mergeable aggregate record per scenario covering the trials this
// shard owns — replicated trials by spec ownership, ccr replays by trial
// index. After every shard of the scheme has run, `Run` against the
// merged store performs zero simulations and reproduces the
// single-process campaign byte for byte, and VerifyStoredAggregates
// cross-checks the pooled statistics against the merged shard aggregates.
func Populate(cfg Config, scenarios []Scenario, sh store.Shard) (PopulateStats, error) {
	st := cfg.Store
	if st == nil {
		return PopulateStats{}, fmt.Errorf("campaign: Populate needs Config.Store")
	}
	trials, base, templates, err := planReferences(cfg, scenarios)
	if err != nil {
		return PopulateStats{}, err
	}
	baseRes, err := experiments.SweepStore(cfg.Workers, st, base)
	if err != nil {
		return PopulateStats{}, fmt.Errorf("campaign references: %w", err)
	}
	plan, err := armTrials(cfg, scenarios, trials, templates, baseRes)
	if err != nil {
		return PopulateStats{}, err
	}
	res, ok, sstats, err := experiments.PopulateStore(cfg.Workers, st, sh, plan.specs)
	if err != nil {
		return PopulateStats{}, fmt.Errorf("campaign trials: %w", err)
	}
	stats := PopulateStats{Scenarios: len(scenarios), Trials: trials, Sweep: sstats}

	// Partial aggregates over this shard's trials, with the per-trial
	// arithmetic of Run's phase 3 verbatim: the merge cross-check depends
	// on every shard producing bit-identical per-trial values.
	aggs := make([][3]Agg, len(scenarios))
	for i, sc := range scenarios {
		native, ff := baseRes[2*i], baseRes[2*i+1]
		var ffWall, ffEff float64
		addTrial := func(wall float64) {
			slowdown := wall / ffWall
			aggs[i][0].Add(wall)
			aggs[i][1].Add(slowdown)
			aggs[i][2].Add(ffEff / slowdown)
		}
		if sc.Point.Mode == scenario.CCR {
			w := native.Measure.Wall.Seconds()
			p := plan.params[i]
			ffWall = p.FaultFreeMakespan(w)
			ffEff = w / ffWall * experiments.Efficiency(native.Measure, ff.Measure)
			for t := 0; t < trials; t++ {
				if !sh.Owns(t) {
					continue
				}
				tr := ccrTrial(w, p, sc.Point.Logical, sc.MTBF,
					plan.horizons[i], plan.grow[i], fault.TrialSeed(cfg.Seed, i, t))
				addTrial(tr.Makespan)
				stats.CCRReplays++
			}
			continue
		}
		ffWall = ff.Measure.Wall.Seconds()
		ffEff = experiments.Efficiency(native.Measure, ff.Measure)
		for t := 0; t < trials; t++ {
			if idx := plan.trialAt[i] + t; ok[idx] {
				addTrial(res[idx].Measure.Wall.Seconds())
			}
		}
	}
	if err := persistAggregates(st, sh, cfg, trials, scenarios, aggs); err != nil {
		return PopulateStats{}, err
	}
	stats.AggRecords = len(scenarios)
	return stats, nil
}

// ulpEq reports whether two float64s are equal to within one unit in the
// last place (NaN matches NaN: the <2-trials CI95 convention).
func ulpEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b || math.Nextafter(a, b) == b
}

// statUlpEq compares two Stats field-wise to 1 ulp.
func statUlpEq(a, b Stat) bool {
	return ulpEq(a.Mean, b.Mean) && ulpEq(a.Std, b.Std) && ulpEq(a.CI95, b.CI95) &&
		ulpEq(a.Min, b.Min) && ulpEq(a.Max, b.Max)
}

// VerifyStoredAggregates cross-checks a campaign result against the
// mergeable aggregate records in the store: for every shard scheme N
// whose records are complete (all N shards present, trial counts summing
// to the campaign's), the merged count/sum/sumsq statistics must equal
// the pooled statistics in res to 1 ulp, CI95 included. It returns the
// number of complete schemes verified; a mismatch is an error — it means
// a shard aggregated different trials than the merged run pooled.
func VerifyStoredAggregates(cfg Config, scenarios []Scenario, res *Result) (int, error) {
	st := cfg.Store
	if st == nil {
		return 0, fmt.Errorf("campaign: VerifyStoredAggregates needs Config.Store")
	}
	cfp := campaignFingerprint(cfg, res.Trials)
	sfps := make([]string, len(scenarios))
	for i, sc := range scenarios {
		sfp, err := scenarioFingerprint(sc)
		if err != nil {
			return 0, err
		}
		sfps[i] = sfp
	}
	// Candidate schemes: every shard count appearing in any aggregate
	// record. The key is a hash, so records bind to scenarios by re-deriving
	// the expected key per (scenario, shard).
	schemes := map[int]bool{}
	for _, rec := range st.Records(aggKind) {
		var r aggRecord
		if err := json.Unmarshal(rec.Payload, &r); err != nil {
			continue // foreign or damaged payload: simply not a candidate
		}
		if sh, err := store.ParseShard(r.Shard); err == nil {
			schemes[sh.Count] = true
		}
	}
	counts := make([]int, 0, len(schemes))
	for n := range schemes {
		counts = append(counts, n)
	}
	sort.Ints(counts)

	verified := 0
	for _, n := range counts {
		complete := true
		merged := make([][3]Agg, len(scenarios))
		for i := range scenarios {
			for s := 0; s < n && complete; s++ {
				raw, okGet := st.Get(aggKind, aggKey(cfp, sfps[i], store.Shard{Index: s, Count: n}))
				if !okGet {
					complete = false
					break
				}
				var r aggRecord
				if err := json.Unmarshal(raw, &r); err != nil {
					return verified, fmt.Errorf("campaign: aggregate record %d/%d for scenario %q: %w", s, n, scenarios[i].Point.Name, err)
				}
				merged[i][0].Merge(r.Makespan.agg())
				merged[i][1].Merge(r.Slowdown.agg())
				merged[i][2].Merge(r.Efficiency.agg())
			}
			if !complete || merged[i][0].Count() != res.Trials {
				complete = false
				break
			}
		}
		if !complete {
			continue // partial populate: nothing to verify yet
		}
		for i, sr := range res.Scenarios {
			for m, name := range []string{"makespan", "slowdown", "efficiency"} {
				got := merged[i][m].Stat()
				want := [3]Stat{sr.Makespan, sr.Slowdown, sr.Efficiency}[m]
				if !statUlpEq(got, want) {
					return verified, fmt.Errorf("campaign: scenario %q: merged %d-shard %s aggregate diverges from pooled trials: %+v vs %+v",
						sr.Name, n, name, got, want)
				}
			}
		}
		verified++
	}
	return verified, nil
}
