package campaign

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/ckptsim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Point is one prepared scenario point of an adaptive campaign: the
// fault-free references are measured, the cCR machine parameters and the
// failure window are resolved, and trials are exposed one index at a time
// instead of as a fixed-size batch. The adaptive explorer builds on it.
//
// Unlike Run, whose trial seeds derive from the scenario's position in the
// grid (fault.TrialSeed(seed, index, trial)), a Point's trial stream is
// seeded from the scenario's content fingerprint. Any driver that reaches
// the same point — whatever subset, ordering or dynamically chosen probe
// got it there — draws the identical trials, so adaptive aggregates are a
// prefix-extension of any other run's and warm store hits line up across
// campaigns that never saw each other's grids.
type Point struct {
	Scenario  Scenario
	PhysProcs int

	// NativeWall is the unreplicated reference wall time in seconds;
	// FFWall / FFEff the scenario mode's fault-free wall time (checkpoints
	// included for ccr) and resource-normalized efficiency.
	NativeWall float64
	FFWall     float64
	FFEff      float64

	// Params is the resolved cCR machine (ccr points only); Delta and
	// Restart are the analytic comparison's checkpoint parameters for
	// replicated points, resolved with Run's defaulting rules.
	Params  ckptsim.Params
	Delta   float64
	Restart float64
	// Horizon is the crash-draw window; Grow marks the defaulted ccr
	// window that doubles per trial until it covers the stretched makespan.
	Horizon sim.Time
	Grow    bool
	// Seed is the fingerprint-derived trial-stream seed: trial t draws
	// with fault.TrialSeed(Seed, 0, t); auxiliary streams (the optimal-tau
	// search's common random traces) use stream indices >= 1.
	Seed int64

	fp       string // scenario fingerprint (see scenarioFingerprint)
	nativeFP string
	template experiments.Spec
	replay   *core.TraceSet
}

// PointSeed derives the trial-stream seed of one scenario from the master
// seed and the scenario's content fingerprint. It is independent of grid
// position, so two drivers exploring overlapping scenario sets draw
// identical trial streams for the shared points.
func PointSeed(master int64, scenarioFP string) int64 {
	sum := sha256.Sum256([]byte(scenarioFP))
	h := int64(binary.LittleEndian.Uint64(sum[:8]))
	return fault.TrialSeed(master^h, 0, 0)
}

// PreparePoints measures the fault-free references of the scenarios (one
// sweep, memo- and store-backed like Run's phase 1) and returns one
// prepared Point per scenario, in input order.
func PreparePoints(cfg Config, scenarios []Scenario) ([]*Point, error) {
	_, base, templates, err := planReferences(cfg, scenarios)
	if err != nil {
		return nil, err
	}
	baseRes, err := experiments.SweepStore(cfg.Workers, cfg.Store, base)
	if err != nil {
		return nil, fmt.Errorf("campaign references: %w", err)
	}
	pts := make([]*Point, len(scenarios))
	for i, sc := range scenarios {
		native, ff := baseRes[2*i], baseRes[2*i+1]
		p := &Point{
			Scenario:   sc,
			PhysProcs:  ff.PhysProcs,
			NativeWall: native.Measure.Wall.Seconds(),
		}
		sfp, err := scenarioFingerprint(sc)
		if err != nil {
			return nil, err
		}
		p.fp = sfp
		nfp, err := sc.nativeScenario().Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		p.nativeFP = nfp
		p.Seed = PointSeed(cfg.Seed, sfp)

		horizon := sc.Horizon
		if horizon == 0 {
			horizon = cfg.Horizon
		}
		if sc.Point.Mode == scenario.CCR {
			w := p.NativeWall
			p.Params = cfg.ckptParams(sc, w, sc.MTBF.Seconds()/float64(sc.Point.Logical))
			if err := p.Params.Validate(); err != nil {
				return nil, fmt.Errorf("campaign: scenario %q: %w", sc.Point.Name, err)
			}
			p.FFWall = p.Params.FaultFreeMakespan(w)
			p.FFEff = w / p.FFWall * experiments.Efficiency(native.Measure, ff.Measure)
			p.Delta, p.Restart = p.Params.Delta, p.Params.Restart
			if horizon == 0 {
				horizon = sim.Seconds(p.FFWall)
				p.Grow = true
			}
		} else {
			p.FFWall = ff.Measure.Wall.Seconds()
			p.FFEff = experiments.Efficiency(native.Measure, ff.Measure)
			p.Delta = cfg.CkptDelta
			if p.Delta <= 0 {
				p.Delta = 0.05 * p.FFWall
			}
			p.Restart = cfg.CkptRestart
			if p.Restart <= 0 {
				p.Restart = p.Delta
			}
			if horizon == 0 {
				horizon = ff.Measure.Wall
			}
			p.template = templates[i]
			if sc.Point.Mode == scenario.Classic {
				ts, err := experiments.RecordTraces(templates[i])
				if err != nil {
					return nil, fmt.Errorf("campaign: scenario %q: trace recording: %w", sc.Point.Name, err)
				}
				p.replay = ts
			}
		}
		p.Horizon = horizon
		pts[i] = p
	}
	return pts, nil
}

// IsCCR reports whether trials replay under ckptsim instead of simulating
// replicated executions.
func (p *Point) IsCCR() bool { return p.Scenario.Point.Mode == scenario.CCR }

// Fingerprint is the canonical identity of the point (scenario + native
// reference + MTBF + horizon), the basis of its seed and store keys.
func (p *Point) Fingerprint() string { return p.fp }

// NativeFingerprint identifies the shared native baseline, the pairing key
// for crossover series.
func (p *Point) NativeFingerprint() string { return p.nativeFP }

// TrialSpec lays out replicated trial t as a sweep spec (panics on ccr
// points, which have no replicated execution). The draw is returned for
// crash accounting.
func (p *Point) TrialSpec(t int) (experiments.Spec, fault.Draw) {
	if p.IsCCR() {
		panic("campaign: TrialSpec on a ccr point")
	}
	sc := p.Scenario
	d := fault.ExponentialDraw(sc.Point.Logical, sc.Point.EffectiveDegree(), sc.MTBF, p.Horizon,
		fault.TrialSeed(p.Seed, 0, t))
	spec := p.template
	spec.Name = fmt.Sprintf("%s/x%04d", sc.Point.Name, t)
	spec.Fault = d.Schedule
	spec.Replay = p.replay
	return spec, d
}

// CCRTrial replays ccr trial t (panics on replicated points).
func (p *Point) CCRTrial(t int) ckptsim.Trial {
	if !p.IsCCR() {
		panic("campaign: CCRTrial on a replicated point")
	}
	sc := p.Scenario
	return ccrTrial(p.NativeWall, p.Params, sc.Point.Logical, sc.MTBF, p.Horizon, p.Grow,
		fault.TrialSeed(p.Seed, 0, t))
}

// ReplayTrace draws auxiliary failure-trace stream `stream` >= 1, index k,
// for the point's system — the optimal-tau search's common random numbers.
// The window doubles from the point's horizon until the replayed makespan
// at the given params fits (the unclamped draw extends prefix-stably), so
// one trace serves every candidate interval.
func (p *Point) ReplayTrace(stream, k int, params ckptsim.Params) ckptsim.Trial {
	if !p.IsCCR() {
		panic("campaign: ReplayTrace on a replicated point")
	}
	sc := p.Scenario
	return ccrTrial(p.NativeWall, params, sc.Point.Logical, sc.MTBF, p.Horizon, true,
		fault.TrialSeed(p.Seed, stream, k))
}

// Metrics converts one trial's wall time into the campaign's metric triple.
func (p *Point) Metrics(wall float64) (makespan, slowdown, eff float64) {
	slowdown = wall / p.FFWall
	return wall, slowdown, p.FFEff / slowdown
}

// SysMTBF is the MTBF of the unreplicated system on the point's node
// count — the axis Daly's model and the crossover are expressed in.
func (p *Point) SysMTBF() float64 {
	return p.Scenario.MTBF.Seconds() / float64(p.PhysProcs)
}

// AnalyticEfficiency evaluates the §II model at the point's operating
// point: Daly's cCR efficiency for ccr points (at the interval the replays
// run), the Ferreira-style replicated efficiency otherwise.
func (p *Point) AnalyticEfficiency() float64 {
	if p.IsCCR() {
		return ckpt.Efficiency(p.Params.Tau, p.Params.Delta, p.Params.Restart, p.SysMTBF())
	}
	return ckpt.ReplicatedEfficiency(p.FFEff, p.Scenario.Point.Logical, p.Scenario.MTBF.Seconds(), p.Delta, p.Restart)
}
