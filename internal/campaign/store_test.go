package campaign_test

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/campaign"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

// shardedScenarios is the sharding test grid: replicated points plus a
// ccr point, so both trial paths (simulated crash schedules and ckptsim
// replays) cross the shard boundary.
func shardedScenarios() []campaign.Scenario {
	return append(smallScenarios(),
		campaign.Scenario{Point: smallPoint("ccr/point", scenario.CCR), MTBF: 10 * sim.Second})
}

func campaignJSON(t *testing.T, res *campaign.Result) string {
	t.Helper()
	b, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCampaignShardedMergeByteIdentical is the campaign acceptance
// property: N shards populating a store in any order, then a merge run
// over the warm store, reproduce the storeless single-process campaign
// byte for byte — with zero merge-time simulations — and the persisted
// shard aggregates verify against the pooled statistics.
func TestCampaignShardedMergeByteIdentical(t *testing.T) {
	scs := shardedScenarios()
	base := campaign.Config{Trials: 9, Seed: 5, Workers: 2}
	plain, err := campaign.Run(base, scs)
	if err != nil {
		t.Fatal(err)
	}
	want := campaignJSON(t, plain)

	const shards = 3
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	for _, i := range rng.Perm(shards) {
		sh := store.Shard{Index: i, Count: shards}
		st, err := store.Open(dir, sh.String())
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Store = st
		pstats, err := campaign.Populate(cfg, scs, sh)
		if err != nil {
			t.Fatal(err)
		}
		if pstats.Scenarios != len(scs) || pstats.Trials != 9 || pstats.AggRecords != len(scs) {
			t.Fatalf("shard %v populate stats: %+v", sh, pstats)
		}
		if pstats.CCRReplays != 3 {
			t.Fatalf("shard %v replayed %d ccr trials, want 3 of 9", sh, pstats.CCRReplays)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	st, err := store.Open(dir, "merge")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := base
	cfg.Store = st
	merged, err := campaign.Run(cfg, scs)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignJSON(t, merged); got != want {
		t.Fatalf("merged campaign diverges from the storeless single-process run:\n%s\nvs\n%s", got, want)
	}
	// Zero simulations at merge time: every sweep point was a store hit.
	// The merge's own puts are exactly its whole-campaign aggregate records.
	if s := st.Stats(); s.Misses != 0 || s.Puts != int64(len(scs)) {
		t.Fatalf("merge run was not fully warm: %+v", s)
	}
	verified, err := campaign.VerifyStoredAggregates(cfg, scs, merged)
	if err != nil {
		t.Fatal(err)
	}
	// Two complete schemes: the 3-shard populate and the merge run's own
	// whole-campaign (0/1) records.
	if verified != 2 {
		t.Fatalf("verified %d aggregate schemes, want 2", verified)
	}

	// A second warm run over the compacted store is still byte-identical.
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, "again")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cfg.Store = st2
	again, err := campaign.Run(cfg, scs)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignJSON(t, again); got != want {
		t.Fatal("post-compaction warm campaign diverges")
	}
	if s := st2.Stats(); s.Misses != 0 {
		t.Fatalf("post-compaction run had misses: %+v", s)
	}
}

// TestCampaignStoreDoesNotChangeOutput: running with a store (cold) must
// not perturb the campaign aggregate relative to the storeless path.
func TestCampaignStoreDoesNotChangeOutput(t *testing.T) {
	scs := smallScenarios()[:1]
	base := campaign.Config{Trials: 6, Seed: 11}
	plain, err := campaign.Run(base, scs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), "cold")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := base
	cfg.Store = st
	stored, err := campaign.Run(cfg, scs)
	if err != nil {
		t.Fatal(err)
	}
	if campaignJSON(t, plain) != campaignJSON(t, stored) {
		t.Fatal("a cold store changed the campaign output")
	}
	if s := st.Stats(); s.Puts == 0 {
		t.Fatalf("cold campaign persisted nothing: %+v", s)
	}
}
