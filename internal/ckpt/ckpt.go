// Package ckpt models coordinated checkpoint/restart (cCR) efficiency and
// the failure behavior of replicated systems: the background analysis of
// §II that motivates replication (and intra-parallelization) at exascale.
//
// The cCR model is Daly's complete model (J.T. Daly, FGCS 2006): with an
// exponential failure distribution of mean M, checkpoint cost delta,
// restart cost R and checkpoint interval tau, the expected wall time per
// unit of solve time is
//
//	w(tau) = (M/tau) * exp(R/M) * (exp((tau+delta)/M) - 1)
//
// and the workload efficiency is E = 1/w. The replication side implements
// the birthday-bound analysis of Ferreira et al. [1] / Casanova et al.
// [16]: with N replica pairs, the expected number of node failures until
// some pair has lost both members is ~sqrt(pi*N/2), which stretches the
// mean time to interrupt far beyond the system MTBF.
package ckpt

import "math"

// Wall returns Daly's expected wall-clock factor w(tau) >= 1: wall time
// per unit of useful work for checkpoint interval tau, checkpoint cost
// delta, restart cost r, and exponential MTBF m (all in the same unit).
func Wall(tau, delta, r, m float64) float64 {
	if tau <= 0 {
		return math.Inf(1)
	}
	return m / tau * math.Exp(r/m) * (math.Expm1((tau + delta) / m))
}

// Efficiency returns 1/Wall, the workload efficiency of cCR at interval
// tau.
func Efficiency(tau, delta, r, m float64) float64 { return 1 / Wall(tau, delta, r, m) }

// OptimalInterval returns the checkpoint interval minimizing Wall, found
// numerically by golden-section search (Daly's closed form is an
// approximation; the search is exact to tolerance).
//
// The search bracket must contain the optimum at every operating point:
// tau* ≈ sqrt(2*delta*m) (Young's approximation) when m >> delta, and
// tau* → m as the MTBF collapses below the checkpoint cost (each
// checkpoint barely completes between failures). The old bracket
// [delta/100, 50*m] excluded tau* ≈ m whenever delta > 100*m, so the
// search converged onto its own lower edge; the bracket now spans
// [min(delta, m)/100, 50*(m + sqrt(2*delta*m))], which covers both
// asymptotes with two orders of magnitude of slack on each side.
func OptimalInterval(delta, r, m float64) float64 {
	lo := math.Min(delta, m)/100 + 1e-12
	hi := 50 * (m + math.Sqrt(2*delta*m))
	if hi <= lo {
		hi = 2 * lo // degenerate inputs (delta == 0 and m ~ 0)
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	for i := 0; i < 200 && (b-a) > 1e-9*(1+b); i++ {
		// <= and not <: when exp((tau+delta)/m) overflows, both probes are
		// +Inf and the plateau always lies on the large-tau side — a strict
		// comparison would discard the finite region instead.
		if Wall(c, delta, r, m) <= Wall(d, delta, r, m) {
			b = d
		} else {
			a = c
		}
		c = b - phi*(b-a)
		d = a + phi*(b-a)
	}
	return (a + b) / 2
}

// BestEfficiency returns the cCR efficiency at the optimal interval.
func BestEfficiency(delta, r, m float64) float64 {
	return Efficiency(OptimalInterval(delta, r, m), delta, r, m)
}

// MeanFailuresToInterrupt returns the expected number of single-node
// failures a dual-replicated system of n logical processes absorbs before
// some logical process loses both replicas (no repair), which is the
// birthday bound sqrt(pi*n/2) + 2/3.
func MeanFailuresToInterrupt(n int) float64 {
	return math.Sqrt(math.Pi*float64(n)/2) + 2.0/3.0
}

// ReplicationMTTI returns the mean time to interrupt of a dual-replicated
// system with n logical processes (2n nodes) and per-node MTBF nodeMTBF:
// failures arrive at rate 2n/nodeMTBF and the system absorbs
// MeanFailuresToInterrupt(n) of them.
func ReplicationMTTI(n int, nodeMTBF float64) float64 {
	failureRate := 2 * float64(n) / nodeMTBF
	return MeanFailuresToInterrupt(n) / failureRate
}

// SystemMTBF returns the unreplicated system MTBF for n nodes.
func SystemMTBF(n int, nodeMTBF float64) float64 { return nodeMTBF / float64(n) }

// CrossoverMTBF returns the system MTBF below which coordinated
// checkpoint/restart is less efficient than a replicated system whose
// failure-free workload efficiency is base: the m solving
// BestEfficiency(delta, r, m) == base. BestEfficiency is monotone
// increasing in m, so the root is found by bisection on a log scale.
// Returns +Inf when base >= 1 (cCR never reaches it) and 0 when base <= 0.
func CrossoverMTBF(delta, r, base float64) float64 {
	if base >= 1 {
		return math.Inf(1)
	}
	if base <= 0 {
		return 0
	}
	lo, hi := delta*1e-6, delta*1e12
	for BestEfficiency(delta, r, hi) < base {
		hi *= 1e3
		if math.IsInf(hi, 1) {
			return math.Inf(1)
		}
	}
	for BestEfficiency(delta, r, lo) > base {
		lo /= 1e3
		if lo == 0 {
			return 0
		}
	}
	for i := 0; i < 200 && hi/lo > 1+1e-12; i++ {
		mid := math.Sqrt(lo * hi)
		if BestEfficiency(delta, r, mid) < base {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// ReplicatedEfficiency returns the workload efficiency of a replicated
// system whose failure-free efficiency is base (0.5 for classic
// replication, higher with intra-parallelization): the system still
// checkpoints, but at the much longer MTTI of the replicated system, so
// the cCR correction is tiny.
func ReplicatedEfficiency(base float64, n int, nodeMTBF, delta, r float64) float64 {
	mtti := ReplicationMTTI(n, nodeMTBF)
	return base * BestEfficiency(delta, r, mtti)
}
