package ckpt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWallBasics(t *testing.T) {
	// No failures in practice (m huge): wall factor ~ 1 + delta/tau.
	w := Wall(100, 1, 1, 1e12)
	if math.Abs(w-1.01) > 1e-3 {
		t.Fatalf("wall = %v, want ~1.01", w)
	}
	if !math.IsInf(Wall(0, 1, 1, 100), 1) {
		t.Fatal("tau=0 must be infinite")
	}
}

func TestEfficiencyInverse(t *testing.T) {
	if e := Efficiency(100, 1, 1, 1e12); math.Abs(e-1/1.01) > 1e-3 {
		t.Fatalf("eff = %v", e)
	}
}

func TestOptimalIntervalNearYoung(t *testing.T) {
	// For m >> delta the optimum approaches Young's sqrt(2*delta*m).
	delta, r, m := 1.0, 1.0, 10000.0
	opt := OptimalInterval(delta, r, m)
	young := math.Sqrt(2 * delta * m)
	if math.Abs(opt-young)/young > 0.15 {
		t.Fatalf("opt = %v, young = %v", opt, young)
	}
	// It must actually be a minimum.
	w := Wall(opt, delta, r, m)
	for _, f := range []float64{0.5, 0.8, 1.25, 2} {
		if Wall(opt*f, delta, r, m) < w-1e-12 {
			t.Fatalf("not optimal: Wall(%v)=%v < Wall(%v)=%v", opt*f, Wall(opt*f, delta, r, m), opt, w)
		}
	}
}

// TestOptimalIntervalExtremeMTBF is the regression test for the bracket
// bug: with delta >> m (checkpoints cost hundreds of MTBFs) the optimum
// sits near tau ~ m, far below the old bracket floor of delta/100, and the
// search used to return its own lower edge. The fix is checked against a
// brute-force scan over eight decades of tau.
func TestOptimalIntervalExtremeMTBF(t *testing.T) {
	delta, r, m := 300.0, 0.0, 1.0 // exp((tau+delta)/m) is finite but enormous
	opt := OptimalInterval(delta, r, m)
	// Analytically, minimizing exp(tau/m)/tau gives tau* = m exactly.
	if math.Abs(opt-m)/m > 0.02 {
		t.Fatalf("opt = %v, want ~%v (tau* -> m for m << delta)", opt, m)
	}
	best, bestTau := math.Inf(1), 0.0
	for i := 0; i <= 8000; i++ {
		tau := math.Pow(10, -4+float64(i)/1000) // 1e-4 .. 1e4, 1000 points/decade
		if w := Wall(tau, delta, r, m); w < best {
			best, bestTau = w, tau
		}
	}
	if w := Wall(opt, delta, r, m); w > best*(1+1e-3) {
		t.Fatalf("Wall(opt=%v) = %v beats nothing: brute-force tau %v gives %v", opt, w, bestTau, best)
	}
	// The healthy regime must keep working too.
	delta, m = 1.0, 10000.0
	opt = OptimalInterval(delta, r, m)
	young := math.Sqrt(2 * delta * m)
	if math.Abs(opt-young)/young > 0.15 {
		t.Fatalf("m >> delta regime drifted: opt %v vs young %v", opt, young)
	}
}

func TestEfficiencyDropsWithMTBF(t *testing.T) {
	// The §II story: as MTBF shrinks, cCR efficiency collapses below 50%.
	delta, r := 600.0, 600.0 // 10-minute checkpoint/restart (PFS-class)
	eHigh := BestEfficiency(delta, r, 24*3600)
	eLow := BestEfficiency(delta, r, 3600)
	if eHigh <= eLow {
		t.Fatal("efficiency should improve with MTBF")
	}
	if eLow >= 0.5 {
		t.Fatalf("at 1h MTBF with 10-min checkpoints, eff = %v, expected < 0.5", eLow)
	}
}

func TestMeanFailuresToInterrupt(t *testing.T) {
	// sqrt(pi/2*n)+2/3: spot checks.
	if v := MeanFailuresToInterrupt(1); math.Abs(v-(math.Sqrt(math.Pi/2)+2.0/3)) > 1e-12 {
		t.Fatalf("n=1: %v", v)
	}
	small, big := MeanFailuresToInterrupt(100), MeanFailuresToInterrupt(10000)
	if big <= small {
		t.Fatal("monotone in n")
	}
	// Ferreira et al. report hundreds of failures absorbed at large scale.
	if big < 100 {
		t.Fatalf("n=10000 absorbs %v failures, expected > 100", big)
	}
}

func TestReplicationMTTIBeatsSystemMTBF(t *testing.T) {
	nodeMTBF := 5.0 * 365 * 24 // 5 years in hours
	n := 100000
	sys := SystemMTBF(2*n, nodeMTBF)
	rep := ReplicationMTTI(n, nodeMTBF)
	if rep < 50*sys {
		t.Fatalf("replication MTTI %v should vastly exceed system MTBF %v", rep, sys)
	}
}

func TestReplicatedEfficiencyNearBase(t *testing.T) {
	// With heavy PFS checkpoints (10 min) the correction is visible but
	// small; with fast multi-level checkpoints (1 min) it is negligible.
	e := ReplicatedEfficiency(0.5, 100000, 5*365*24*3600, 600, 600)
	if e < 0.45 || e > 0.5 {
		t.Fatalf("replicated efficiency = %v, want in [0.45, 0.5]", e)
	}
	e = ReplicatedEfficiency(0.5, 100000, 5*365*24*3600, 60, 60)
	if e < 0.49 || e > 0.5 {
		t.Fatalf("replicated efficiency (fast ckpt) = %v, want ~0.5", e)
	}
	// And with intra-parallelization's base efficiency it stays near it.
	e = ReplicatedEfficiency(0.7, 100000, 5*365*24*3600, 60, 60)
	if e < 0.68 || e > 0.7 {
		t.Fatalf("intra replicated efficiency = %v, want ~0.7", e)
	}
}

func TestCrossoverMTBF(t *testing.T) {
	delta, r := 600.0, 600.0
	for _, base := range []float64{0.3, 0.5, 0.7} {
		m := CrossoverMTBF(delta, r, base)
		if math.IsInf(m, 0) || m <= 0 {
			t.Fatalf("base %v: crossover = %v", base, m)
		}
		if e := BestEfficiency(delta, r, m); math.Abs(e-base) > 1e-6 {
			t.Fatalf("base %v: BestEfficiency(crossover) = %v", base, e)
		}
		// Below the crossover cCR loses to replication at efficiency base;
		// above it wins.
		if BestEfficiency(delta, r, m/10) >= base {
			t.Fatalf("base %v: cCR should lose below the crossover", base)
		}
		if BestEfficiency(delta, r, m*10) <= base {
			t.Fatalf("base %v: cCR should win above the crossover", base)
		}
	}
	// Higher base efficiency (intra-parallelization) pushes the crossover
	// up: replication wins over a wider MTBF range.
	if CrossoverMTBF(delta, r, 0.7) <= CrossoverMTBF(delta, r, 0.5) {
		t.Fatal("crossover must grow with base efficiency")
	}
	if !math.IsInf(CrossoverMTBF(delta, r, 1), 1) {
		t.Fatal("base >= 1 is unreachable by cCR")
	}
	if CrossoverMTBF(delta, r, 0) != 0 {
		t.Fatal("base <= 0 is always reached")
	}
}

// Property: Wall is >= 1 + delta/tau (you always pay checkpoints) and
// decreasing in MTBF.
func TestWallBoundsProperty(t *testing.T) {
	prop := func(tauR, deltaR, mR uint16) bool {
		tau := float64(tauR%1000) + 1
		delta := float64(deltaR%100) + 0.1
		m := float64(mR)*10 + 100
		w := Wall(tau, delta, 0, m)
		if w < 1+delta/tau-1e-9 {
			return false
		}
		return Wall(tau, delta, 0, 2*m) <= w+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
