// Package ckptsim replays a measured fault-free makespan under simulated
// coordinated checkpoint/restart (cCR): the execution model of §II that
// the paper's replication argument is measured against.
//
// A replay takes the application's useful-work duration W (the wall time
// of its unreplicated, failure-free simulation), a checkpoint interval
// tau, a checkpoint cost delta and a restart cost R, plus an absolute
// failure trace, and walks the timeline the §II machine would follow:
// work proceeds in tau-long segments, each followed by a delta-long
// checkpoint that secures the segment (no checkpoint after the final
// segment — the run just completes); a failure at time f destroys all
// work since the last completed checkpoint, costs R of restart, and
// resumes from the secured state; failures during a checkpoint or a
// restart roll back the same way.
//
// This is exactly the renewal process Daly's model (internal/ckpt)
// integrates analytically, so replay means over an exponential failure
// trace converge on ckpt.Efficiency(tau, delta, R, M_sys) — the property
// the campaign layer's measured-vs-analytic comparison rests on, verified
// in this package's tests.
//
// Everything is a pure float64 computation over virtual seconds: replays
// are deterministic, microsecond-cheap, and run thousands of Monte Carlo
// trials per sweep point without touching the discrete-event simulator.
package ckptsim

import (
	"fmt"
	"math"
)

// Params are the cCR machine parameters, in seconds.
type Params struct {
	Tau     float64 // checkpoint interval (useful work between checkpoints)
	Delta   float64 // cost of writing one checkpoint
	Restart float64 // cost of restarting after a failure
}

// Validate rejects parameter combinations the replay cannot execute.
func (p Params) Validate() error {
	if p.Tau <= 0 {
		return fmt.Errorf("ckptsim: checkpoint interval %g must be positive", p.Tau)
	}
	if p.Delta < 0 || p.Restart < 0 {
		return fmt.Errorf("ckptsim: negative checkpoint (%g) or restart (%g) cost", p.Delta, p.Restart)
	}
	return nil
}

// Trial is one replay outcome.
type Trial struct {
	// Makespan is the wall time to complete the work, checkpoints,
	// rollbacks and restarts included, in seconds.
	Makespan float64
	// Failures counts the failures that hit the run (failures in the trace
	// after completion are ignored).
	Failures int
}

// FaultFreeMakespan is the replay's zero-failure wall time: the work plus
// one checkpoint after every full interval except the last segment.
func (p Params) FaultFreeMakespan(work float64) float64 {
	return p.finish(0, work)
}

// finish returns the completion time of `remaining` seconds of work
// started at absolute time t, assuming no further failures.
func (p Params) finish(t, remaining float64) float64 {
	if remaining <= 0 {
		return t
	}
	ckpts := math.Ceil(remaining/p.Tau) - 1
	return t + remaining + ckpts*p.Delta
}

// secured returns how much of `remaining` work is checkpointed by
// absolute time f, for an attempt started at time t: one full interval
// per completed (tau + delta) cycle, never counting the final segment
// (which has no checkpoint to secure it) and never a half-written
// checkpoint.
func (p Params) secured(t, remaining, f float64) float64 {
	cycles := math.Floor((f - t) / (p.Tau + p.Delta))
	total := math.Ceil(remaining/p.Tau) - 1 // checkpoints this attempt would write
	return p.Tau * math.Min(cycles, total)
}

// Replay executes `work` seconds of application progress under cCR
// against an absolute failure trace (seconds, ascending — the order
// fault.ExponentialDrawUnclamped emits). Failures at or after the
// completion time are ignored; a failure during a restart restarts the
// restart. The trace must cover the returned makespan for the result to
// be exact — the campaign layer grows the draw window until it does.
func Replay(work float64, p Params, failures []float64) (Trial, error) {
	if err := p.Validate(); err != nil {
		return Trial{}, err
	}
	if work < 0 {
		return Trial{}, fmt.Errorf("ckptsim: negative work %g", work)
	}
	var tr Trial
	t, done := 0.0, 0.0
	for _, f := range failures {
		if f >= p.finish(t, work-done) {
			break // completed before this failure
		}
		if f > t {
			done += p.secured(t, work-done, f)
		}
		// f <= t: the failure hit during the restart we are already paying;
		// no progress was made, the restart just starts over.
		tr.Failures++
		t = f + p.Restart
	}
	tr.Makespan = p.finish(t, work-done)
	return tr, nil
}
