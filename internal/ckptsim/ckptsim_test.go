package ckptsim_test

import (
	"math"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/ckptsim"
	"repro/internal/fault"
	"repro/internal/sim"
)

func mustReplay(t *testing.T, work float64, p ckptsim.Params, failures []float64) ckptsim.Trial {
	t.Helper()
	tr, err := ckptsim.Replay(work, p, failures)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFaultFreeMakespan(t *testing.T) {
	p := ckptsim.Params{Tau: 10, Delta: 1, Restart: 2}
	// 35s of work: segments 10+10+10+5, checkpoints after the first three.
	if got := p.FaultFreeMakespan(35); got != 38 {
		t.Fatalf("fault-free makespan = %v, want 38", got)
	}
	// Work fits in one interval: no checkpoint at all.
	if got := p.FaultFreeMakespan(7); got != 7 {
		t.Fatalf("single-segment makespan = %v, want 7", got)
	}
	// An exact multiple of tau skips the final checkpoint too.
	if got := p.FaultFreeMakespan(20); got != 21 {
		t.Fatalf("two-segment makespan = %v, want 21", got)
	}
	if got := mustReplay(t, 35, p, nil).Makespan; got != 38 {
		t.Fatalf("empty trace replay = %v, want 38", got)
	}
	if got := mustReplay(t, 0, p, []float64{1}).Makespan; got != 0 {
		t.Fatalf("zero work = %v, want 0", got)
	}
}

func TestReplayRollback(t *testing.T) {
	p := ckptsim.Params{Tau: 10, Delta: 1, Restart: 2}
	// Failure at t=15: one full cycle (work [0,10], ckpt [10,11]) secured
	// 10s; the 4s into the second segment are lost. Restart at 17, then
	// 25s of work remain: 17 + 25 + 2*1 = 44.
	tr := mustReplay(t, 35, p, []float64{15})
	if tr.Failures != 1 || tr.Makespan != 44 {
		t.Fatalf("got %+v, want 1 failure, makespan 44", tr)
	}
	// Failure mid-checkpoint (t=10.5) destroys the half-written checkpoint:
	// nothing secured, restart at 12.5, full 38s schedule follows.
	tr = mustReplay(t, 35, p, []float64{10.5})
	if tr.Failures != 1 || tr.Makespan != 12.5+38 {
		t.Fatalf("mid-checkpoint: got %+v, want makespan %v", tr, 12.5+38)
	}
	// Failure during the restart restarts it: failures at 15 and 16 (inside
	// the [15,17] restart window) => resume at 18, same secured work.
	tr = mustReplay(t, 35, p, []float64{15, 16})
	if tr.Failures != 2 || tr.Makespan != 18+25+2 {
		t.Fatalf("restart restart: got %+v, want makespan 45", tr)
	}
	// Failures after completion are ignored.
	tr = mustReplay(t, 35, p, []float64{100, 200})
	if tr.Failures != 0 || tr.Makespan != 38 {
		t.Fatalf("post-completion failures counted: %+v", tr)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := ckptsim.Replay(10, ckptsim.Params{Tau: 0, Delta: 1}, nil); err == nil {
		t.Fatal("tau = 0 must error")
	}
	if _, err := ckptsim.Replay(10, ckptsim.Params{Tau: 1, Delta: -1}, nil); err == nil {
		t.Fatal("negative delta must error")
	}
	if _, err := ckptsim.Replay(-1, ckptsim.Params{Tau: 1}, nil); err == nil {
		t.Fatal("negative work must error")
	}
}

// TestReplayMatchesDaly is the measured-vs-analytic acceptance property:
// replaying exponential failure traces reproduces Daly's expected
// efficiency E = 1/w(tau) at the same operating point. At a moderate
// system MTBF (work ~ MTBF) the mean over seeded trials lands within 5%
// of the model; near the paper's low-MTBF collapse the measured mean
// stays below the moderate-MTBF efficiency and keeps tracking the model.
func TestReplayMatchesDaly(t *testing.T) {
	const (
		nodes  = 16
		work   = 40.0
		trials = 3000
	)
	p := ckptsim.Params{Delta: 1, Restart: 1}
	measure := func(nodeMTBF float64) float64 {
		sysMTBF := nodeMTBF / nodes
		p := p
		p.Tau = ckpt.OptimalInterval(p.Delta, p.Restart, sysMTBF)
		sum := 0.0
		for s := int64(0); s < trials; s++ {
			// Draw the per-node failure trace over a window, growing it
			// until it covers the stretched makespan (the campaign layer's
			// protocol).
			h := 4 * work
			var tr ckptsim.Trial
			for {
				d := fault.ExponentialDrawUnclamped(nodes, 1, sim.Seconds(nodeMTBF), sim.Seconds(h), s)
				times := make([]float64, len(d.Schedule.Crashes))
				for i, c := range d.Schedule.Crashes {
					times[i] = c.Time.Seconds()
				}
				tr = mustReplay(t, work, p, times)
				if tr.Makespan <= h {
					break
				}
				h *= 2
			}
			sum += work / tr.Makespan
		}
		return sum / trials
	}

	moderate := 16 * work // system MTBF == work
	eff := measure(moderate)
	want := ckpt.BestEfficiency(p.Delta, p.Restart, moderate/nodes)
	if math.Abs(eff-want)/want > 0.05 {
		t.Fatalf("moderate MTBF: measured %v vs Daly %v (>5%% off)", eff, want)
	}

	low := 16 * work / 20 // system MTBF == work/20: the §II collapse
	lowEff := measure(low)
	lowWant := ckpt.BestEfficiency(p.Delta, p.Restart, low/nodes)
	if lowEff >= eff {
		t.Fatalf("efficiency must collapse with MTBF: %v at low vs %v at moderate", lowEff, eff)
	}
	if math.Abs(lowEff-lowWant)/lowWant > 0.10 {
		t.Fatalf("low MTBF: measured %v vs Daly %v (>10%% off)", lowEff, lowWant)
	}
}

// TestReplayDeterministic: identical traces give identical trials.
func TestReplayDeterministic(t *testing.T) {
	p := ckptsim.Params{Tau: 3, Delta: 0.5, Restart: 0.5}
	d := fault.ExponentialDrawUnclamped(8, 1, sim.Seconds(5), sim.Seconds(200), 11)
	times := make([]float64, len(d.Schedule.Crashes))
	for i, c := range d.Schedule.Crashes {
		times[i] = c.Time.Seconds()
	}
	a := mustReplay(t, 20, p, times)
	b := mustReplay(t, 20, p, times)
	if a != b {
		t.Fatalf("replay not deterministic: %+v vs %+v", a, b)
	}
	if a.Makespan < 20 {
		t.Fatalf("makespan %v under the raw work", a.Makespan)
	}
}
