package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// harness builds a replicated world for core tests.
type harness struct {
	e   *sim.Engine
	w   *mpi.World
	sys *replication.System
}

func newHarness(t *testing.T, logical, degree int) *harness {
	t.Helper()
	e := sim.New()
	cfg := simnet.Config{
		Latency:        sim.Micros(1),
		Bandwidth:      1e9,
		LocalLatency:   sim.Micros(0.1),
		LocalBandwidth: 1e10,
		CoresPerNode:   2,
	}
	n := logical * degree
	nodes := (n + cfg.CoresPerNode - 1) / cfg.CoresPerNode
	net := simnet.New(e, cfg, nodes)
	w := mpi.NewWorld(e, net, n, perf.Grid5000, nil)
	sys := replication.New(w, replication.Config{Logical: logical, Degree: degree, SendLog: true})
	return &harness{e: e, w: w, sys: sys}
}

func (h *harness) run(t *testing.T) {
	t.Helper()
	if err := h.e.Run(); err != nil {
		t.Fatal(err)
	}
}

// waxpbyTask is the paper's running example (Figure 4): w = alpha*x+beta*y.
func waxpbyTask(c Ctx, args []Value) {
	alpha := *args[0].(Scalar).P
	x := args[1].(Float64s)
	beta := *args[2].(Scalar).P
	y := args[3].(Float64s)
	w := args[4].(Float64s)
	for i := range w {
		w[i] = alpha*x[i] + beta*y[i]
	}
	c.Compute(perf.Work{Bytes: 24 * float64(len(w)), Flops: 3 * float64(len(w))})
}

// runWaxpbySection runs one intra-parallelized waxpby over nTasks tasks and
// returns the resulting w vector. Mirrors Figure 4 of the paper.
func runWaxpbySection(rt Runner, n, nTasks int) (Float64s, error) {
	alpha, beta := 2.0, 3.0
	x := make(Float64s, n)
	y := make(Float64s, n)
	w := make(Float64s, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(2 * i)
	}
	rt.SectionBegin()
	id := rt.TaskRegister(waxpbyTask, In, In, In, In, Out)
	ts := n / nTasks
	for i := 0; i < nTasks; i++ {
		rt.TaskLaunch(id,
			Scalar{&alpha}, x[i*ts:(i+1)*ts],
			Scalar{&beta}, y[i*ts:(i+1)*ts],
			w[i*ts:(i+1)*ts])
	}
	return w, rt.SectionEnd()
}

func checkWaxpby(t *testing.T, w Float64s, who string) {
	t.Helper()
	for i, v := range w {
		want := 2.0*float64(i) + 3.0*float64(2*i)
		if v != want {
			t.Fatalf("%s: w[%d] = %v, want %v", who, i, v, want)
		}
	}
}

func TestIntraSectionSharesWork(t *testing.T) {
	h := newHarness(t, 1, 2)
	stats := map[int]*Stats{}
	h.sys.Launch("app", func(p *replication.Proc) {
		rt := NewIntra(p, Options{})
		w, err := runWaxpbySection(rt, 64, 8)
		if err != nil {
			t.Errorf("section: %v", err)
			return
		}
		checkWaxpby(t, w, "replica")
		stats[p.Lane] = rt.Stats()
	})
	h.run(t)
	for lane := 0; lane < 2; lane++ {
		st := stats[lane]
		if st.TasksRun != 4 || st.TasksReceived != 4 {
			t.Fatalf("lane %d: run=%d received=%d, want 4/4 (paper's static split)",
				lane, st.TasksRun, st.TasksReceived)
		}
		if st.Sections != 1 || st.UpdateBytes == 0 {
			t.Fatalf("lane %d stats: %+v", lane, st)
		}
	}
}

func TestIntraFasterThanClassicForComputeBoundTasks(t *testing.T) {
	// A compute-heavy task with a tiny output (like ddot) must run close to
	// twice as fast under intra as under classic replication.
	heavy := func(c Ctx, args []Value) {
		s := args[1].(Scalar)
		*s.P = float64(len(args[0].(Float64s)))
		c.Compute(perf.Work{Flops: 2e8}) // 100 ms at 2 Gflop/s
	}
	runOnce := func(mode string) sim.Time {
		h := newHarness(t, 1, 2)
		var end sim.Time
		h.sys.Launch("app", func(p *replication.Proc) {
			var rt Runner
			if mode == "intra" {
				rt = NewIntra(p, Options{})
			} else {
				rt = NewClassic(p)
			}
			data := make(Float64s, 4)
			outs := make([]float64, 8)
			rt.SectionBegin()
			id := rt.TaskRegister(heavy, In, Out)
			for i := 0; i < 8; i++ {
				rt.TaskLaunch(id, data, Scalar{&outs[i]})
			}
			if err := rt.SectionEnd(); err != nil {
				t.Errorf("section: %v", err)
			}
			if end < rt.Now() {
				end = rt.Now()
			}
		})
		h.run(t)
		return end
	}
	classic := runOnce("classic")
	intra := runOnce("intra")
	ratio := float64(intra) / float64(classic)
	if ratio > 0.55 {
		t.Fatalf("intra/classic = %.3f, want ~0.5 (classic=%v intra=%v)", ratio, classic, intra)
	}
}

func TestNativeRunnerExecutesLocally(t *testing.T) {
	e := sim.New()
	net := simnet.New(e, simnet.InfiniBand20G, 1)
	w := mpi.NewWorld(e, net, 1, perf.Grid5000, nil)
	w.Launch("native", 0, func(r *mpi.Rank) {
		rt := NewNative(r)
		if rt.Mode() != "native" {
			t.Errorf("mode = %s", rt.Mode())
		}
		wv, err := runWaxpbySection(rt, 32, 8)
		if err != nil {
			t.Errorf("section: %v", err)
			return
		}
		checkWaxpby(t, wv, "native")
		if rt.Stats().TasksRun != 8 || rt.Stats().UpdateBytes != 0 {
			t.Errorf("stats: %+v", rt.Stats())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestClassicRunnerExecutesEverythingEverywhere(t *testing.T) {
	h := newHarness(t, 1, 2)
	h.sys.Launch("app", func(p *replication.Proc) {
		rt := NewClassic(p)
		if rt.Mode() != "classic" {
			t.Errorf("mode = %s", rt.Mode())
		}
		wv, err := runWaxpbySection(rt, 32, 8)
		if err != nil {
			t.Errorf("section: %v", err)
			return
		}
		checkWaxpby(t, wv, "classic")
		if rt.Stats().TasksRun != 8 {
			t.Errorf("classic replica should run all tasks: %+v", rt.Stats())
		}
	})
	h.run(t)
}

// figure2Task reproduces the paper's Figure 2 example: a <- a+1; b <- a*2.
func figure2Task(c Ctx, args []Value) {
	a := args[0].(Scalar)
	b := args[1].(Scalar)
	*a.P = *a.P + 1
	*b.P = *a.P * 2
	c.Compute(perf.Work{Flops: 2})
}

// TestFigure2PartialUpdateHazard reproduces the exact scenario of Figure 2:
// the executing replica crashes after shipping the update for a but before
// shipping b. The survivor must re-execute the task starting from the
// original a (via the snapshot), ending with a=2, b=4 — not the incorrect
// a=3, b=6 of Figure 2b.
func TestFigure2PartialUpdateHazard(t *testing.T) {
	for _, mode := range []InoutMode{CopyRestore, AtomicApply} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			h := newHarness(t, 1, 2)
			var survivorA, survivorB float64
			h.sys.Launch("app", func(p *replication.Proc) {
				a, b := 1.0, 0.0
				opts := Options{Mode: mode}
				if p.Lane == 0 {
					// Lane 0 executes task 0 (block schedule) and crashes
					// after sending the first argument's update.
					opts.Hooks.AfterArgSend = func(sec, task, arg int) {
						if arg == 0 {
							p.R.Crash()
						}
					}
				}
				rt := NewIntra(p, opts)
				rt.SectionBegin()
				id := rt.TaskRegister(figure2Task, InOut, Out)
				rt.TaskLaunch(id, Scalar{&a}, Scalar{&b})
				if err := rt.SectionEnd(); err != nil {
					t.Errorf("lane %d: %v", p.Lane, err)
					return
				}
				if p.Lane == 1 {
					survivorA, survivorB = a, b
				}
			})
			h.run(t)
			if survivorA != 2 || survivorB != 4 {
				t.Fatalf("mode %v: survivor state a=%v b=%v, want a=2 b=4 (Figure 2c)",
					mode, survivorA, survivorB)
			}
		})
	}
}

// TestCrashBeforeAnyUpdate covers §III-B2 case 1: the failure occurs before
// any update is sent; the survivor simply executes the task.
func TestCrashBeforeAnyUpdate(t *testing.T) {
	h := newHarness(t, 1, 2)
	var got Float64s
	h.sys.Launch("app", func(p *replication.Proc) {
		opts := Options{}
		if p.Lane == 0 {
			opts.Hooks.AfterTaskExec = func(sec, task int) { p.R.Crash() }
		}
		rt := NewIntra(p, opts)
		w, err := runWaxpbySection(rt, 32, 4)
		if p.Lane == 1 {
			if err != nil {
				t.Errorf("survivor: %v", err)
				return
			}
			got = w
			if rt.Stats().TasksRecovered == 0 {
				t.Error("expected recovered tasks")
			}
		}
	})
	h.run(t)
	checkWaxpby(t, got, "survivor")
}

// TestCrashOutsideSection covers §III-B2's "failure outside sections": no
// special action; the next sections run entirely on the survivor.
func TestCrashOutsideSection(t *testing.T) {
	h := newHarness(t, 1, 2)
	var got Float64s
	var st Stats
	h.sys.Launch("app", func(p *replication.Proc) {
		rt := NewIntra(p, Options{})
		w1, err := runWaxpbySection(rt, 32, 4)
		if err != nil {
			t.Errorf("lane %d section 1: %v", p.Lane, err)
			return
		}
		checkWaxpby(t, w1, "section1")
		if p.Lane == 0 {
			p.R.Crash() // between sections
		}
		w2, err := runWaxpbySection(rt, 32, 4)
		if err != nil {
			t.Errorf("survivor section 2: %v", err)
			return
		}
		got = w2
		st = *rt.Stats()
	})
	h.run(t)
	checkWaxpby(t, got, "section2")
	// The survivor must have executed all 4 tasks of section 2 itself.
	if st.TasksRun != 2+4+2 && st.TasksRun != 6 {
		// lane 1 ran 2 tasks in section 1 plus all 4 in section 2
		t.Fatalf("TasksRun = %d, want 6", st.TasksRun)
	}
}

// TestInoutChainAcrossSections: a value updated in place across several
// sections (like GTC's particle positions) stays correct on all replicas.
func TestInoutChainAcrossSections(t *testing.T) {
	for _, mode := range []InoutMode{CopyRestore, AtomicApply} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			h := newHarness(t, 1, 2)
			finals := map[int]float64{}
			inc := func(c Ctx, args []Value) {
				v := args[0].(Float64s)
				for i := range v {
					v[i] = v[i]*2 + 1
				}
				c.Compute(perf.Work{Flops: float64(2 * len(v))})
			}
			h.sys.Launch("app", func(p *replication.Proc) {
				rt := NewIntra(p, Options{Mode: mode})
				data := make(Float64s, 16) // zeros
				for step := 0; step < 5; step++ {
					rt.SectionBegin()
					id := rt.TaskRegister(inc, InOut)
					rt.TaskLaunch(id, data[:8])
					rt.TaskLaunch(id, data[8:])
					if err := rt.SectionEnd(); err != nil {
						t.Errorf("step %d: %v", step, err)
						return
					}
				}
				finals[p.Lane] = data[3] + data[12]
			})
			h.run(t)
			// x -> 2x+1 five times from 0: 0,1,3,7,15,31.
			if finals[0] != 62 || finals[1] != 62 {
				t.Fatalf("finals = %v, want 62 on both lanes", finals)
			}
		})
	}
}

func TestCopyTimeChargedForInout(t *testing.T) {
	h := newHarness(t, 1, 2)
	var copyTime sim.Time
	h.sys.Launch("app", func(p *replication.Proc) {
		rt := NewIntra(p, Options{Mode: CopyRestore})
		data := make(Float64s, 1024)
		rt.SectionBegin()
		id := rt.TaskRegister(func(c Ctx, args []Value) {
			c.Compute(perf.Work{Flops: 1})
		}, InOut)
		rt.TaskLaunch(id, data[:512])
		rt.TaskLaunch(id, data[512:])
		if err := rt.SectionEnd(); err != nil {
			t.Errorf("section: %v", err)
		}
		if p.Lane == 0 {
			copyTime = rt.Stats().CopyTime
		}
	})
	h.run(t)
	if copyTime == 0 {
		t.Fatal("no copy time charged for inout args")
	}
}

func TestDegree3DeathSelfExecution(t *testing.T) {
	h := newHarness(t, 1, 3)
	finals := map[int]Float64s{}
	h.sys.Launch("app", func(p *replication.Proc) {
		opts := Options{}
		if p.Lane == 1 {
			opts.Hooks.AfterTaskExec = func(sec, task int) { p.R.Crash() }
		}
		rt := NewIntra(p, opts)
		w, err := runWaxpbySection(rt, 48, 6)
		if p.Lane != 1 {
			if err != nil {
				t.Errorf("lane %d: %v", p.Lane, err)
				return
			}
			finals[p.Lane] = w
		}
	})
	h.run(t)
	for _, lane := range []int{0, 2} {
		checkWaxpby(t, finals[lane], "survivor")
	}
}

func TestSchedulersCoverAllTasksExactlyOnce(t *testing.T) {
	for _, sched := range []struct {
		name string
		fn   Scheduler
	}{{"block", BlockScheduler}, {"rr", RoundRobinScheduler}} {
		sched := sched
		t.Run(sched.name, func(t *testing.T) {
			prop := func(nRaw, lRaw uint8) bool {
				n := int(nRaw)%64 + 1
				l := int(lRaw)%4 + 1
				lanes := make([]int, l)
				for i := range lanes {
					lanes[i] = i
				}
				owner := sched.fn(n, lanes)
				if len(owner) != n {
					return false
				}
				for _, o := range owner {
					if o < 0 || o >= l {
						return false
					}
				}
				// Block scheduler must give contiguous runs.
				if sched.name == "block" {
					for i := 1; i < n; i++ {
						if owner[i] < owner[i-1] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBlockSchedulerMatchesPaperSplit(t *testing.T) {
	// 8 tasks, 2 replicas: first 4 to replica 1, last 4 to replica 2 (§V-A).
	owner := BlockScheduler(8, []int{0, 1})
	for i := 0; i < 4; i++ {
		if owner[i] != 0 || owner[i+4] != 1 {
			t.Fatalf("owner = %v", owner)
		}
	}
}

func TestValues(t *testing.T) {
	v := Float64s{1, 2, 3}
	if v.ByteSize() != 24 {
		t.Fatal("bytes")
	}
	snap := v.Snapshot()
	v[0] = 9
	v.Restore(snap)
	if v[0] != 1 {
		t.Fatal("restore")
	}
	v.Apply([]float64{7, 8, 9})
	if v[2] != 9 {
		t.Fatal("apply")
	}
	x := 5.0
	s := Scalar{&x}
	if s.ByteSize() != 8 || s.Encode()[0] != 5 {
		t.Fatal("scalar basics")
	}
	ssnap := s.Snapshot()
	x = 6
	s.Restore(ssnap)
	if x != 5 {
		t.Fatal("scalar restore")
	}
	s.Apply([]float64{3})
	if x != 3 {
		t.Fatal("scalar apply")
	}
	for _, tag := range []ArgTag{In, Out, InOut, ArgTag(99)} {
		if tag.String() == "" {
			t.Fatal("tag string")
		}
	}
}

func TestSectionMisuse(t *testing.T) {
	e := sim.New()
	net := simnet.New(e, simnet.InfiniBand20G, 1)
	w := mpi.NewWorld(e, net, 1, perf.Grid5000, nil)
	w.Launch("native", 0, func(r *mpi.Rank) {
		rt := NewNative(r)
		mustPanic(t, "nested", func() { rt.SectionBegin(); rt.SectionBegin() })
		rt.SectionEnd()
		mustPanic(t, "end-no-begin", func() { rt.SectionEnd() })
		mustPanic(t, "register-outside", func() { rt.TaskRegister(figure2Task, In) })
		mustPanic(t, "launch-outside", func() { rt.TaskLaunch(0) })
		rt.SectionBegin()
		id := rt.TaskRegister(figure2Task, InOut, Out)
		mustPanic(t, "arity", func() { rt.TaskLaunch(id, Float64s{1}) })
		rt.SectionEnd()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestCrashAnywhereProperty is the central fault-tolerance property: a
// replica crashing at a uniformly random protocol point (or at a random
// virtual time) must leave every surviving replica with exactly the
// failure-free result, in both inout-protection modes.
func TestCrashAnywhereProperty(t *testing.T) {
	// Failure-free reference: x -> 2x+1 three times over each element, plus
	// a waxpby into w.
	ref := func() (Float64s, Float64s) {
		data := make(Float64s, 32)
		for i := range data {
			data[i] = float64(i)
		}
		for step := 0; step < 3; step++ {
			for i := range data {
				data[i] = data[i]*2 + 1
			}
		}
		w := make(Float64s, 32)
		for i := range w {
			w[i] = 2*data[i] + 3
		}
		return data, w
	}
	refData, refW := ref()

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mode := InoutMode(rng.Intn(2))
		victimLane := rng.Intn(2)
		crashSec := rng.Intn(4)
		crashTask := rng.Intn(4)
		crashKind := rng.Intn(3) // 0: before exec, 1: after exec, 2: after an arg send
		crashArg := rng.Intn(2)

		h := newHarness(t, 1, 2)
		okData := true
		h.sys.Launch("app", func(p *replication.Proc) {
			opts := Options{Mode: mode}
			if p.Lane == victimLane {
				switch crashKind {
				case 0:
					opts.Hooks.BeforeTaskExec = func(sec, task int) {
						if sec == crashSec && task == crashTask {
							p.R.Crash()
						}
					}
				case 1:
					opts.Hooks.AfterTaskExec = func(sec, task int) {
						if sec == crashSec && task == crashTask {
							p.R.Crash()
						}
					}
				default:
					opts.Hooks.AfterArgSend = func(sec, task, arg int) {
						if sec == crashSec && task == crashTask && arg == crashArg {
							p.R.Crash()
						}
					}
				}
			}
			rt := NewIntra(p, opts)
			data := make(Float64s, 32)
			for i := range data {
				data[i] = float64(i)
			}
			inc := func(c Ctx, args []Value) {
				v := args[0].(Float64s)
				for i := range v {
					v[i] = v[i]*2 + 1
				}
				c.Compute(perf.Work{Flops: float64(2 * len(v)), Bytes: float64(16 * len(v))})
			}
			for step := 0; step < 3; step++ {
				rt.SectionBegin()
				id := rt.TaskRegister(inc, InOut)
				for k := 0; k < 4; k++ {
					rt.TaskLaunch(id, data[k*8:(k+1)*8])
				}
				if err := rt.SectionEnd(); err != nil {
					okData = false
					return
				}
			}
			// Section 4: waxpby-style with separate out.
			w := make(Float64s, 32)
			two, three := 2.0, 3.0
			rt.SectionBegin()
			id := rt.TaskRegister(waxpbyTask, In, In, In, In, Out)
			ones := make(Float64s, 32)
			for i := range ones {
				ones[i] = 1
			}
			for k := 0; k < 4; k++ {
				rt.TaskLaunch(id, Scalar{&two}, data[k*8:(k+1)*8], Scalar{&three}, ones[k*8:(k+1)*8], w[k*8:(k+1)*8])
			}
			if err := rt.SectionEnd(); err != nil {
				okData = false
				return
			}
			if p.Lane != victimLane || !p.R.Proc().Crashed() {
				for i := range data {
					if data[i] != refData[i] || w[i] != refW[i] {
						okData = false
						return
					}
				}
			}
		})
		if err := h.e.Run(); err != nil {
			return false
		}
		return okData
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashAtRandomVirtualTime drives the same invariant with time-based
// fault injection instead of protocol hooks.
func TestCrashAtRandomVirtualTime(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mode := InoutMode(rng.Intn(2))
		victimLane := rng.Intn(2)
		// Sections take roughly a few hundred microseconds in total.
		at := sim.Time(rng.Int63n(int64(2 * sim.Millisecond)))
		h := newHarness(t, 1, 2)
		bad := false
		h.sys.Launch("app", func(p *replication.Proc) {
			rt := NewIntra(p, Options{Mode: mode})
			data := make(Float64s, 32)
			for step := 0; step < 6; step++ {
				rt.SectionBegin()
				id := rt.TaskRegister(func(c Ctx, args []Value) {
					v := args[0].(Float64s)
					for i := range v {
						v[i] += 1
					}
					c.Compute(perf.Work{Bytes: 1e5})
				}, InOut)
				for k := 0; k < 4; k++ {
					rt.TaskLaunch(id, data[k*8:(k+1)*8])
				}
				if err := rt.SectionEnd(); err != nil {
					bad = true
					return
				}
			}
			if p.Lane != victimLane || !p.R.Proc().Crashed() {
				for _, v := range data {
					if v != 6 {
						bad = true
						return
					}
				}
			}
		})
		h.e.At(at, func() { h.sys.KillReplica(0, victimLane) })
		if err := h.e.Run(); err != nil {
			return false
		}
		return !bad
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateWaitVisibleForTransferBoundTasks(t *testing.T) {
	// waxpby-like: big output, tiny compute => most of the section is spent
	// on updates (the dashed area in Fig 5a).
	h := newHarness(t, 1, 2)
	var st Stats
	h.sys.Launch("app", func(p *replication.Proc) {
		rt := NewIntra(p, Options{})
		out := make(Float64s, 1<<16)
		rt.SectionBegin()
		id := rt.TaskRegister(func(c Ctx, args []Value) {
			c.Compute(perf.Work{Flops: 10})
		}, Out)
		for k := 0; k < 8; k++ {
			rt.TaskLaunch(id, out[k*8192:(k+1)*8192])
		}
		if err := rt.SectionEnd(); err != nil {
			t.Errorf("section: %v", err)
		}
		if p.Lane == 0 {
			st = *rt.Stats()
		}
	})
	h.run(t)
	if st.UpdateWait <= 0 || st.UpdateWait < st.SectionCompute {
		t.Fatalf("expected update-dominated section, stats %+v", st)
	}
}

func TestAllreduceAndBarrierViaRunner(t *testing.T) {
	h := newHarness(t, 3, 2)
	bad := false
	h.sys.Launch("app", func(p *replication.Proc) {
		rt := NewIntra(p, Options{})
		if rt.LogicalRank() != p.Logical || rt.LogicalSize() != 3 {
			bad = true
		}
		v, err := rt.AllreduceScalar(mpi.OpSum, float64(rt.LogicalRank()))
		if err != nil || v != 3 {
			bad = true
		}
		if err := rt.Barrier(); err != nil {
			bad = true
		}
		// Logical p2p through the runner.
		if rt.LogicalRank() == 0 {
			if err := rt.Send(1, 7, []float64{math.Pi}); err != nil {
				bad = true
			}
		} else if rt.LogicalRank() == 1 {
			data, err := rt.Recv(0, 7)
			if err != nil || data[0] != math.Pi {
				bad = true
			}
		}
	})
	h.run(t)
	if bad {
		t.Fatal("runner comm wrong")
	}
}

func TestScaledValue(t *testing.T) {
	v := make(Float64s, 4)
	s := Scaled(v, 100)
	if s.ByteSize() != 3200 {
		t.Fatalf("scaled bytes = %d, want 3200", s.ByteSize())
	}
	if Scaled(v, 1).ByteSize() != 32 {
		t.Fatal("factor 1 must be identity")
	}
	// Snapshot/Restore must work through the wrapper.
	v[0] = 7
	snap := s.Snapshot()
	v[0] = 9
	s.Restore(snap)
	if v[0] != 7 {
		t.Fatalf("restore through wrapper: v[0] = %v", v[0])
	}
	if snap.ByteSize() != 3200 {
		t.Fatal("snapshot loses scaling")
	}
	// Restore from an unwrapped snapshot also works.
	raw := make(Float64s, 4)
	raw[0] = 5
	s.Restore(raw)
	if v[0] != 5 {
		t.Fatal("restore from raw value")
	}
	s.Apply([]float64{1, 2, 3, 4})
	if v[3] != 4 {
		t.Fatal("apply through wrapper")
	}
	if len(s.Encode()) != 4 {
		t.Fatal("encode through wrapper")
	}
}

func TestScaledValueDrivesUpdateCost(t *testing.T) {
	// Two identical sections, one with 1000x scaled outputs: the scaled
	// one must spend far longer on update transfers.
	run := func(factor float64) sim.Time {
		h := newHarness(t, 1, 2)
		var wait sim.Time
		h.sys.Launch("app", func(p *replication.Proc) {
			rt := NewIntra(p, Options{})
			out := make(Float64s, 4096)
			rt.SectionBegin()
			id := rt.TaskRegister(func(c Ctx, args []Value) {
				c.Compute(perf.Work{Flops: 100})
			}, Out)
			for k := 0; k < 8; k++ {
				rt.TaskLaunch(id, Scaled(out[k*512:(k+1)*512], factor))
			}
			if err := rt.SectionEnd(); err != nil {
				t.Errorf("section: %v", err)
			}
			if p.Lane == 0 {
				wait = rt.Stats().UpdateWait
			}
		})
		h.run(t)
		return wait
	}
	small, big := run(1), run(1000)
	if big < 100*small {
		t.Fatalf("scaled update wait %v not ~1000x of %v", big, small)
	}
}

func TestIntraDegreeOneRunsLocally(t *testing.T) {
	// Degree 1 (no peers): the intra engine degenerates to local execution.
	h := newHarness(t, 1, 1)
	h.sys.Launch("app", func(p *replication.Proc) {
		rt := NewIntra(p, Options{})
		w, err := runWaxpbySection(rt, 32, 4)
		if err != nil {
			t.Errorf("section: %v", err)
			return
		}
		checkWaxpby(t, w, "degree1")
		if rt.Stats().TasksRun != 4 || rt.Stats().UpdateBytes != 0 {
			t.Errorf("stats: %+v", rt.Stats())
		}
	})
	h.run(t)
}

func TestRoundRobinSchedulerWorksEndToEnd(t *testing.T) {
	h := newHarness(t, 1, 2)
	h.sys.Launch("app", func(p *replication.Proc) {
		rt := NewIntra(p, Options{Sched: RoundRobinScheduler})
		w, err := runWaxpbySection(rt, 32, 8)
		if err != nil {
			t.Errorf("section: %v", err)
			return
		}
		checkWaxpby(t, w, "rr")
		if rt.Stats().TasksRun != 4 {
			t.Errorf("rr split wrong: %+v", rt.Stats())
		}
	})
	h.run(t)
}

func TestSequentialSectionsReuseRuntime(t *testing.T) {
	// Many sections in a row: task registry resets each time (Algorithm 1
	// lines 9-12), stats accumulate.
	h := newHarness(t, 1, 2)
	h.sys.Launch("app", func(p *replication.Proc) {
		rt := NewIntra(p, Options{})
		for i := 0; i < 20; i++ {
			if _, err := runWaxpbySection(rt, 16, 4); err != nil {
				t.Errorf("section %d: %v", i, err)
				return
			}
		}
		if rt.Stats().Sections != 20 {
			t.Errorf("sections = %d", rt.Stats().Sections)
		}
	})
	h.run(t)
}
