package core

import (
	"repro/internal/mpi"
	"repro/internal/replication"
	"repro/internal/sim"
)

// Runtime overhead constants: CPU cost of managing one task and of posting
// one update request. They model the scheduling and MPI-request costs that
// make very fine task granularities counter-productive (§V-B: "Having more
// tasks can create overhead because it increases synchronization between
// replicas").
const (
	taskOverhead = 1 * sim.Microsecond
	postOverhead = 500 * sim.Nanosecond
)

// InoutMode selects the protection mechanism against the true-dependence
// hazard of re-executing a task after a partial update (§III-B2, Figure 2).
type InoutMode uint8

const (
	// CopyRestore snapshots inout variables before the first update is
	// received and restores the snapshot before any (re-)execution: the
	// paper's chosen solution (Figure 2c, Algorithm 1 lines 30-31, 37-38).
	CopyRestore InoutMode = iota
	// AtomicApply buffers incoming updates and applies them to memory only
	// once the task's full update has arrived: the paper's stated
	// alternative with similar cost (§III-B2).
	AtomicApply
)

func (m InoutMode) String() string {
	if m == AtomicApply {
		return "atomic"
	}
	return "copy"
}

// Scheduler assigns each of a section's tasks to one of the given lanes.
// Assignments are computed over the full (configured) lane set on every
// replica, so they are identical everywhere by construction — replicas
// never need to agree dynamically on ownership. Tasks assigned to a lane
// that turns out to be dead are executed locally by every surviving
// replica that is missing their results (the "execute the task locally"
// option of §III-B2).
type Scheduler func(nTasks int, lanes []int) []int

// BlockScheduler is the paper's static policy (§V-A): with L lanes the
// first n/L launched tasks go to the first lane, the next n/L to the
// second, and so on.
func BlockScheduler(nTasks int, lanes []int) []int {
	owner := make([]int, nTasks)
	l := len(lanes)
	for i := range owner {
		owner[i] = lanes[i*l/nTasks]
	}
	return owner
}

// RoundRobinScheduler deals tasks to lanes cyclically; an alternative used
// by the scheduling ablation.
func RoundRobinScheduler(nTasks int, lanes []int) []int {
	owner := make([]int, nTasks)
	for i := range owner {
		owner[i] = lanes[i%len(lanes)]
	}
	return owner
}

// Hooks expose protocol points to the fault-injection layer. A hook may
// crash the calling replica to exercise the failure cases of §III-B2.
type Hooks struct {
	// BeforeTaskExec fires before a task body runs.
	BeforeTaskExec func(section, task int)
	// AfterTaskExec fires after a task body ran, before any update is sent.
	AfterTaskExec func(section, task int)
	// AfterArgSend fires after the update for one argument has been posted
	// (crashing here models a partial update, the Figure 2 scenario).
	AfterArgSend func(section, task, arg int)
}

// Options configures the intra engine.
type Options struct {
	Mode  InoutMode
	Sched Scheduler // defaults to BlockScheduler
	Hooks Hooks
	// CostScale multiplies the modeled size of task arguments for update
	// transfers and inout copies, so scaled-down arrays are charged at the
	// modeled problem size. Defaults to 1.
	CostScale float64
}

// intraEngine implements the paper's protocol (Algorithm 1) for one
// replica.
type intraEngine struct {
	p        *replication.Proc
	opts     Options
	secSeq   int
	allLanes []int
}

func (en *intraEngine) mode() string { return "intra" }

// NewIntra creates a Runner for one replica under intra-parallelization.
func NewIntra(p *replication.Proc, opts Options) *R {
	if opts.Sched == nil {
		opts.Sched = BlockScheduler
	}
	if opts.CostScale <= 0 {
		opts.CostScale = 1
	}
	en := &intraEngine{p: p, opts: opts}
	for l := 0; l < p.System().Config().Degree; l++ {
		en.allLanes = append(en.allLanes, l)
	}
	return &R{
		comm:      replComm{p: p},
		engine:    en,
		machine:   p.R.Machine(),
		costScale: opts.CostScale,
	}
}

// updateTag encodes (section, task, argument) into a tag on the dedicated
// replica communicator (§V-A: updates are plain MPI messages over a
// dedicated communicator). Tags are unique per live section: sections are
// serialized per logical process, so the 15-bit section counter cannot
// collide while messages are in flight.
func updateTag(section, task, arg int) int {
	return (section&0x7fff)<<16 | (task&0x3ff)<<6 | arg&0x3f
}

type pendingRecv struct {
	t   *task
	arg int
	req *mpi.Request
}

// runSection is Intra_Section_end (Algorithm 1 lines 20-28), extended with
// the prototype's overlap optimizations (§V-A): receives for remote tasks
// are posted up front, updates are sent as soon as each local task
// completes, and everything is completed with a Waitall at the end.
//
// Failure handling: a receive from a crashed owner fails, and the next
// round executes the orphaned task locally. Because ownership is a pure
// function of the task index, replicas never block on a peer that does not
// know it is expected to send.
func (en *intraEngine) runSection(r *R) error {
	secID := en.secSeq
	en.secSeq++
	if len(r.tasks) == 0 {
		return nil
	}
	rc := en.p.ReplicaComm()
	sys := en.p.System()
	owner := en.opts.Sched(len(r.tasks), en.allLanes)
	for {
		if len(en.p.AliveLanes()) == 0 {
			return &replication.LogicalRankLostError{Rank: en.p.Logical}
		}
		// Post receives for unfinished tasks owned by live peers
		// (snapshotting their inout arguments first: Algorithm 1,
		// receive_task_update lines 37-38).
		var recvs []pendingRecv
		var selfExec []*task
		for ti, t := range r.tasks {
			if t.done || owner[ti] == en.p.Lane {
				continue
			}
			if !sys.Alive(en.p.Logical, owner[ti]) {
				selfExec = append(selfExec, t)
				continue
			}
			en.prepareForReceive(r, t)
			for ai, tag := range t.def.tags {
				if tag == In || t.recvd[ai] {
					continue
				}
				r.rank().Compute(postOverhead)
				req := r.rank().Irecv(rc, owner[ti], updateTag(secID, ti, ai))
				recvs = append(recvs, pendingRecv{t: t, arg: ai, req: req})
			}
		}

		// Execute my own tasks, shipping each update as soon as it is
		// ready (overlapped with the remaining computation).
		var sends []*mpi.Request
		for ti, t := range r.tasks {
			if owner[ti] != en.p.Lane || t.done {
				continue
			}
			if h := en.opts.Hooks.BeforeTaskExec; h != nil {
				h(secID, ti)
			}
			r.rank().Compute(taskOverhead)
			r.runTaskLocally(t)
			t.done = true
			if h := en.opts.Hooks.AfterTaskExec; h != nil {
				h(secID, ti)
			}
			sends = append(sends, en.sendUpdates(r, rc, secID, ti, t)...)
		}

		// Re-execute locally the unfinished tasks of dead lanes
		// (§III-B2: tasks can run in any order thanks to the
		// input-dependence-only rule, and inout snapshots undo any
		// partially applied update, Figure 2c).
		for _, t := range selfExec {
			if h := en.opts.Hooks.BeforeTaskExec; h != nil {
				h(secID, t.idx)
			}
			r.runTaskLocally(t)
			t.done = true
			r.stats.TasksRecovered++
		}
		localDone := r.Now()

		// Collect updates for remote tasks; failures trigger another round.
		failed := false
		for _, pr := range recvs {
			if err := r.rank().Wait(pr.req); err != nil {
				if mpi.IsPeerDead(err) {
					failed = true
					continue
				}
				return err
			}
			en.applyUpdate(r, pr.t, pr.arg, pr.req.Msg().Data)
		}
		en.finishReceivedTasks(r)

		if err := r.rank().Waitall(sends); err != nil {
			return err
		}
		r.stats.UpdateWait += r.Now() - localDone

		if !failed && allDone(r.tasks) {
			return nil
		}
		r.stats.RecoveryRounds++
	}
}

// prepareForReceive makes the inout snapshots required before any update
// for t can be written to memory (copy-restore mode only; atomic mode
// leaves memory untouched until the full update has arrived).
func (en *intraEngine) prepareForReceive(r *R, t *task) {
	if en.opts.Mode != CopyRestore {
		return
	}
	for ai, tag := range t.def.tags {
		if tag != InOut || t.copies[ai] != nil {
			continue
		}
		d := r.machine.MemcpyDuration(r.scaledBytes(t.args[ai]))
		r.stats.CopyTime += d
		r.rank().Compute(d)
		t.copies[ai] = t.args[ai].Snapshot()
	}
}

// sendUpdates ships every non-in argument of a completed task to all other
// alive lanes (Algorithm 1, execute_task lines 33-34).
func (en *intraEngine) sendUpdates(r *R, rc *mpi.Comm, secID, ti int, t *task) []*mpi.Request {
	var reqs []*mpi.Request
	for ai, tag := range t.def.tags {
		if tag == In {
			continue
		}
		enc := t.args[ai].Encode()
		wire := r.scaledBytes(t.args[ai])
		for _, l := range en.p.AliveLanes() {
			if l == en.p.Lane {
				continue
			}
			r.rank().Compute(postOverhead)
			reqs = append(reqs, r.rank().IsendSized(rc, l, updateTag(secID, ti, ai), enc, nil, wire))
			r.stats.UpdateBytes += wire
		}
		if h := en.opts.Hooks.AfterArgSend; h != nil {
			h(secID, ti, ai)
		}
	}
	return reqs
}

// applyUpdate records one received argument update. In copy-restore mode
// the update is written to memory immediately (like an MPI receive into
// the application buffer); in atomic mode it is buffered.
func (en *intraEngine) applyUpdate(r *R, t *task, arg int, data []float64) {
	if t.recvd[arg] || t.done {
		return
	}
	t.recvd[arg] = true
	if en.opts.Mode == CopyRestore {
		t.args[arg].Apply(data)
		return
	}
	t.pendingD[arg] = data
}

// finishReceivedTasks marks tasks complete once every non-in argument has
// arrived; in atomic mode this is where buffered updates are applied (and
// their memory cost charged).
func (en *intraEngine) finishReceivedTasks(r *R) {
	for _, t := range r.tasks {
		if t.done {
			continue
		}
		complete := true
		for ai, tag := range t.def.tags {
			if tag != In && !t.recvd[ai] {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		if en.opts.Mode == AtomicApply {
			for ai, tag := range t.def.tags {
				if tag == In {
					continue
				}
				d := r.machine.MemcpyDuration(r.scaledBytes(t.args[ai]))
				r.stats.CopyTime += d
				r.rank().Compute(d)
				t.args[ai].Apply(t.pendingD[ai])
				t.pendingD[ai] = nil
			}
		}
		t.done = true
		r.stats.TasksReceived++
	}
}

func allDone(tasks []*task) bool {
	for _, t := range tasks {
		if !t.done {
			return false
		}
	}
	return true
}
