package core

import (
	"repro/internal/mpi"
	"repro/internal/replication"
)

// localEngine executes every task of a section on the calling process. It
// backs the two baselines of the evaluation: the native (unreplicated) runs
// and classic state-machine replication, where all replicas redundantly
// execute all computation (Figure 1a).
type localEngine struct {
	name string
}

func (en *localEngine) mode() string { return en.name }

func (en *localEngine) runSection(r *R) error {
	for _, t := range r.tasks {
		r.runTaskLocally(t)
		t.done = true
	}
	return nil
}

// NewNative creates a Runner for an unreplicated rank: logical ranks are
// physical ranks and sections execute entirely locally. This is the
// "Open MPI" configuration of the evaluation.
func NewNative(rank *mpi.Rank) *R {
	return &R{
		comm:      mpiComm{r: rank},
		engine:    &localEngine{name: "native"},
		machine:   rank.Machine(),
		costScale: 1,
	}
}

// NewClassic creates a Runner for one replica under classic state-machine
// replication: communication is replicated, and every replica executes
// every task. This is the "SDR-MPI" configuration of the evaluation.
func NewClassic(p *replication.Proc) *R {
	return &R{
		comm:      replComm{p: p},
		engine:    &localEngine{name: "classic"},
		machine:   p.R.Machine(),
		costScale: 1,
	}
}
