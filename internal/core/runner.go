package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/replication"
	"repro/internal/sim"
)

// Ctx is passed to task functions so they can charge the virtual CPU cost
// of the computation they perform.
type Ctx interface {
	// Compute charges w of compute time to the executing replica.
	Compute(w perf.Work)
}

// TaskFunc is the body of an intra-parallel task. It performs real
// computation on args (in the declared order of its registration) and
// charges its cost through c.
type TaskFunc func(c Ctx, args []Value)

// TaskID identifies a registered task type within the current section.
type TaskID int

// Stats aggregates per-replica runtime accounting used to regenerate the
// paper's figures.
type Stats struct {
	SectionTime    sim.Time // wall time between SectionBegin and SectionEnd return
	SectionCompute sim.Time // task compute charged inside sections
	UpdateWait     sim.Time // section-end time after local tasks finished (Fig 5a dashed area)
	CopyTime       sim.Time // inout snapshot/restore and atomic-apply overhead
	OutsideCompute sim.Time // compute charged outside sections
	Sections       int
	TasksRun       int   // tasks executed locally
	TasksReceived  int   // tasks whose updates were received from a peer
	TasksRecovered int   // tasks re-executed or re-sent due to a failure
	UpdateBytes    int64 // update payload bytes sent to peers
	RecoveryRounds int   // extra section-end scheduling rounds after failures
}

// Runner is the logical-process programming interface the applications are
// written against: MPI-style communication plus the paper's section API
// (§III-C). Three engines implement it: native, classic replication, and
// intra-parallelization.
type Runner interface {
	LogicalRank() int
	LogicalSize() int
	Now() sim.Time
	Mode() string

	Send(dst, tag int, data []float64) error
	// SendSized models a message whose on-wire payload is payloadBytes even
	// though the in-memory array is smaller (scaled experiment runs).
	SendSized(dst, tag int, data []float64, payloadBytes int64) error
	Recv(src, tag int) ([]float64, error)
	Allreduce(op mpi.ReduceOp, data []float64) error
	AllreduceScalar(op mpi.ReduceOp, v float64) (float64, error)
	Barrier() error

	// Compute charges work performed outside intra-parallel sections.
	Compute(w perf.Work)

	// SectionBegin opens an intra-parallel section (Intra_Section_begin).
	SectionBegin()
	// TaskRegister declares a task type executed by fn with the given
	// argument tags (Intra_Task_register).
	TaskRegister(fn TaskFunc, tags ...ArgTag) TaskID
	// TaskLaunch instantiates a task with concrete arguments
	// (Intra_Task_launch). Arguments must match the registered tags.
	TaskLaunch(id TaskID, args ...Value)
	// SectionEnd runs the section protocol to completion
	// (Intra_Section_end): on return, every live replica of this logical
	// process holds the results of every task.
	SectionEnd() error

	Stats() *Stats
}

// comm abstracts the logical communication substrate (plain MPI for the
// native engine, the replication layer otherwise).
type comm interface {
	logicalRank() int
	logicalSize() int
	send(dst, tag int, data []float64) error
	sendSized(dst, tag int, data []float64, payloadBytes int64) error
	recv(src, tag int) ([]float64, error)
	allreduce(op mpi.ReduceOp, data []float64) error
	barrier() error
	rank() *mpi.Rank
}

type mpiComm struct{ r *mpi.Rank }

func (c mpiComm) logicalRank() int { return c.r.Rank() }
func (c mpiComm) logicalSize() int { return c.r.Size() }
func (c mpiComm) send(dst, tag int, data []float64) error {
	return c.r.Send(c.r.World(), dst, tag, data, nil)
}
func (c mpiComm) sendSized(dst, tag int, data []float64, payloadBytes int64) error {
	return c.r.Wait(c.r.IsendSized(c.r.World(), dst, tag, data, nil, payloadBytes))
}
func (c mpiComm) recv(src, tag int) ([]float64, error) {
	msg, err := c.r.Recv(c.r.World(), src, tag)
	if err != nil {
		return nil, err
	}
	return msg.Data, nil
}
func (c mpiComm) allreduce(op mpi.ReduceOp, data []float64) error {
	return c.r.Allreduce(c.r.World(), op, data)
}
func (c mpiComm) barrier() error  { return c.r.Barrier(c.r.World()) }
func (c mpiComm) rank() *mpi.Rank { return c.r }

type replComm struct{ p *replication.Proc }

func (c replComm) logicalRank() int { return c.p.Logical }
func (c replComm) logicalSize() int { return c.p.LogicalSize() }
func (c replComm) send(dst, tag int, data []float64) error {
	return c.p.Send(dst, tag, data, nil)
}
func (c replComm) sendSized(dst, tag int, data []float64, payloadBytes int64) error {
	return c.p.SendSized(dst, tag, data, nil, payloadBytes)
}
func (c replComm) recv(src, tag int) ([]float64, error) {
	msg, err := c.p.Recv(src, tag)
	if err != nil {
		return nil, err
	}
	return msg.Data, nil
}
func (c replComm) allreduce(op mpi.ReduceOp, data []float64) error {
	return c.p.Allreduce(op, data)
}
func (c replComm) barrier() error  { return c.p.Barrier() }
func (c replComm) rank() *mpi.Rank { return c.p.R }

// sectionEngine runs a buffered section to completion.
type sectionEngine interface {
	runSection(r *R) error
	mode() string
}

// R is the concrete Runner shared by all three engines.
type R struct {
	comm
	engine    sectionEngine
	machine   perf.Machine
	costScale float64 // multiplies Value sizes for update transfers and copies
	rec       *Trace  // non-nil while recording the logical-op trace
	stats     Stats
	inSection bool
	secStart  sim.Time
	defs      []taskDef
	tasks     []*task
}

type taskDef struct {
	fn   TaskFunc
	tags []ArgTag
}

type task struct {
	idx      int
	def      taskDef
	args     []Value
	done     bool
	executed bool    // executed locally (vs received)
	copies   []Value // inout snapshots (copy-restore mode)
	recvd    []bool  // per-arg: update applied (copy mode) or buffered (atomic)
	pendingD [][]float64
}

// LogicalRank returns the logical MPI rank.
func (r *R) LogicalRank() int { return r.logicalRank() }

// LogicalSize returns the number of logical ranks.
func (r *R) LogicalSize() int { return r.logicalSize() }

// Now returns the current virtual time.
func (r *R) Now() sim.Time { return r.rank().Now() }

// Mode identifies the engine ("native", "classic", or "intra").
func (r *R) Mode() string { return r.engine.mode() }

// Send performs a logical send.
func (r *R) Send(dst, tag int, data []float64) error {
	r.rec.comm(traceSend, dst, tag, 8*int64(len(data)))
	return r.send(dst, tag, data)
}

// SendSized performs a logical send with an explicit modeled payload size.
func (r *R) SendSized(dst, tag int, data []float64, payloadBytes int64) error {
	r.rec.comm(traceSend, dst, tag, payloadBytes)
	return r.sendSized(dst, tag, data, payloadBytes)
}

// Recv performs a logical receive.
func (r *R) Recv(src, tag int) ([]float64, error) {
	r.rec.comm(traceRecv, src, tag, 0)
	return r.recv(src, tag)
}

// Allreduce reduces data across all logical ranks.
func (r *R) Allreduce(op mpi.ReduceOp, data []float64) error {
	r.rec.comm(traceAllreduce, len(data), 0, 0)
	return r.allreduce(op, data)
}

// AllreduceScalar reduces a single value across all logical ranks.
func (r *R) AllreduceScalar(op mpi.ReduceOp, v float64) (float64, error) {
	r.rec.comm(traceAllreduce, 1, 0, 0)
	buf := []float64{v}
	if err := r.allreduce(op, buf); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// Barrier synchronizes all logical ranks.
func (r *R) Barrier() error {
	r.rec.comm(traceBarrier, 0, 0, 0)
	return r.barrier()
}

// Compute charges work performed outside sections.
func (r *R) Compute(w perf.Work) {
	d := r.machine.Duration(w)
	r.stats.OutsideCompute += d
	r.rec.compute(d)
	r.rank().ComputeWork(w)
}

// Stats returns the runtime counters (live; callers may snapshot by copy).
func (r *R) Stats() *Stats { return &r.stats }

// SectionBegin opens an intra-parallel section. Sections must not nest and
// must not contain message-passing communication (Definition 1).
func (r *R) SectionBegin() {
	if r.inSection {
		panic("core: nested intra-parallel sections are not allowed")
	}
	r.inSection = true
	r.secStart = r.Now()
	r.defs = r.defs[:0]
	r.tasks = r.tasks[:0]
}

// TaskRegister declares a task type for the current section.
func (r *R) TaskRegister(fn TaskFunc, tags ...ArgTag) TaskID {
	if !r.inSection {
		panic("core: TaskRegister outside a section")
	}
	r.defs = append(r.defs, taskDef{fn: fn, tags: tags})
	return TaskID(len(r.defs) - 1)
}

// TaskLaunch instantiates a registered task with concrete arguments.
func (r *R) TaskLaunch(id TaskID, args ...Value) {
	if !r.inSection {
		panic("core: TaskLaunch outside a section")
	}
	def := r.defs[id]
	if len(args) != len(def.tags) {
		panic(fmt.Sprintf("core: task %d launched with %d args, registered with %d",
			id, len(args), len(def.tags)))
	}
	t := &task{
		idx:      len(r.tasks),
		def:      def,
		args:     args,
		copies:   make([]Value, len(args)),
		recvd:    make([]bool, len(args)),
		pendingD: make([][]float64, len(args)),
	}
	r.tasks = append(r.tasks, t)
}

// SectionEnd completes the section under the configured engine.
func (r *R) SectionEnd() error {
	if !r.inSection {
		panic("core: SectionEnd without SectionBegin")
	}
	err := r.engine.runSection(r)
	r.inSection = false
	r.stats.Sections++
	r.stats.SectionTime += r.Now() - r.secStart
	return err
}

// taskCtx charges compute performed inside a task.
type taskCtx struct {
	r *R
}

func (c taskCtx) Compute(w perf.Work) {
	d := c.r.machine.Duration(w)
	c.r.stats.SectionCompute += d
	c.r.rec.compute(d)
	c.r.rank().Compute(d)
}

// scaledBytes returns a Value's modeled size under the experiment's cost
// scale.
func (r *R) scaledBytes(v Value) int64 {
	return int64(float64(v.ByteSize()) * r.costScale)
}

// runTaskLocally executes a task's body after restoring inout snapshots if
// a copy exists (Algorithm 1, execute_task lines 30-32).
func (r *R) runTaskLocally(t *task) {
	for i, tag := range t.def.tags {
		if tag == InOut && t.copies[i] != nil {
			d := r.machine.MemcpyDuration(r.scaledBytes(t.args[i]))
			r.stats.CopyTime += d
			r.rec.compute(d)
			r.rank().Compute(d)
			t.args[i].Restore(t.copies[i])
		}
	}
	t.def.fn(taskCtx{r: r}, t.args)
	t.executed = true
	r.stats.TasksRun++
}
