package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// The applications are deterministic programs over the Runner interface,
// and in the section-free engines (native, classic) every effect a program
// has on the simulation passes through five operations: compute charges,
// sends, receives, allreduces and barriers. Recording that sequence once —
// per logical rank, at the Runner boundary — captures everything the
// simulator can observe about the program, so a later run can replay the
// trace instead of re-executing the application's kernels.
//
// Replay reproduces the simulation exactly, crashes included: under
// send-deterministic replication (§II) a crash never alters a logical
// rank's operation sequence — the replication layer re-routes deliveries
// and replays send logs underneath it — so the trace recorded from the
// fault-free run is the trace of every trial. Message payload contents are
// the one thing not reproduced (replayed sends carry empty arrays with the
// recorded modeled size, and modeled cost depends only on that size), which
// is why replay is reserved for runs whose results feed timing aggregates,
// never figure tables derived from app-internal state.

const (
	traceCompute   = iota // d: accumulated compute duration
	traceSend             // peer, tag, bytes: modeled payload size
	traceRecv             // peer, tag
	traceAllreduce        // peer: element count
	traceBarrier
)

type traceOp struct {
	kind  int
	peer  int // send dst / recv src; allreduce element count
	tag   int
	bytes int64
	d     sim.Time
}

// Trace is the recorded logical-operation sequence of one logical rank.
// Adjacent compute charges are merged as they are recorded: sim.Time is
// integral, so the merged charge is exactly the sum the original sequence
// would have accumulated.
type Trace struct {
	ops   []traceOp
	total sim.Time // the recording main's returned in-app total
}

// Ops returns the number of recorded operations (diagnostics and tests).
func (tr *Trace) Ops() int { return len(tr.ops) }

func (tr *Trace) compute(d sim.Time) {
	if tr == nil {
		return
	}
	if n := len(tr.ops); n > 0 && tr.ops[n-1].kind == traceCompute {
		tr.ops[n-1].d += d
		return
	}
	tr.ops = append(tr.ops, traceOp{kind: traceCompute, d: d})
}

func (tr *Trace) comm(kind, peer, tag int, bytes int64) {
	if tr == nil {
		return
	}
	tr.ops = append(tr.ops, traceOp{kind: kind, peer: peer, tag: tag, bytes: bytes})
}

// TraceSet holds one trace per logical rank. In replicated modes every
// replica of a rank records the identical sequence (that is the
// send-determinism the replay argument rests on), so the set keeps the
// first committed trace per rank.
type TraceSet struct {
	traces []*Trace
}

// NewTraceSet allocates an empty set for `logical` ranks.
func NewTraceSet(logical int) *TraceSet {
	return &TraceSet{traces: make([]*Trace, logical)}
}

// Commit stores rank's recorded trace and the app main's returned total.
// The first completed replica of a rank wins; its twins recorded the same
// sequence.
func (ts *TraceSet) Commit(rank int, tr *Trace, total sim.Time) {
	if ts.traces[rank] == nil {
		tr.total = total
		ts.traces[rank] = tr
	}
}

// Complete reports whether every logical rank has committed a trace.
func (ts *TraceSet) Complete() bool {
	for _, tr := range ts.traces {
		if tr == nil {
			return false
		}
	}
	return true
}

// Rank returns the committed trace for one logical rank (nil if absent).
func (ts *TraceSet) Rank(rank int) *Trace {
	if rank < 0 || rank >= len(ts.traces) {
		return nil
	}
	return ts.traces[rank]
}

// StartRecording attaches a fresh trace to the runner and returns it. It
// must be called before the application main runs, and only on the
// section-free engines: the intra engine exchanges section-protocol
// messages below the Runner boundary, which a Runner-level trace cannot
// see (and which are not crash-invariant, so they could not be replayed
// under faults anyway).
func StartRecording(rt Runner) (*Trace, error) {
	r, ok := rt.(*R)
	if !ok {
		return nil, fmt.Errorf("core: trace recording requires the standard runner, got %T", rt)
	}
	if _, ok := r.engine.(*localEngine); !ok {
		return nil, fmt.Errorf("core: trace recording is limited to section-free engines (native, classic), not %q", r.Mode())
	}
	tr := &Trace{}
	r.rec = tr
	return tr, nil
}

// Replay re-issues the trace of rt's logical rank against the runner and
// returns the recorded in-app total. The rank-level operation sequence —
// and with it every simulated time — is identical to executing the
// recorded application, minus message payload contents: replayed sends
// carry empty arrays with the recorded modeled sizes, and allreduces run
// on a zeroed scratch buffer of the recorded length.
func Replay(rt Runner, ts *TraceSet) (sim.Time, error) {
	r, ok := rt.(*R)
	if !ok {
		return 0, fmt.Errorf("core: replay requires the standard runner, got %T", rt)
	}
	tr := ts.Rank(r.LogicalRank())
	if tr == nil {
		return 0, fmt.Errorf("core: no trace recorded for logical rank %d", r.LogicalRank())
	}
	var scratch []float64
	for i := range tr.ops {
		op := &tr.ops[i]
		var err error
		switch op.kind {
		case traceCompute:
			r.stats.OutsideCompute += op.d
			r.rank().Compute(op.d)
		case traceSend:
			err = r.sendSized(op.peer, op.tag, nil, op.bytes)
		case traceRecv:
			_, err = r.recv(op.peer, op.tag)
		case traceAllreduce:
			if op.peer > len(scratch) {
				scratch = make([]float64, op.peer)
			}
			err = r.allreduce(mpi.OpSum, scratch[:op.peer])
		case traceBarrier:
			err = r.barrier()
		}
		if err != nil {
			return 0, fmt.Errorf("replay op %d: %w", i, err)
		}
	}
	return tr.total, nil
}
