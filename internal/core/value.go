// Package core implements intra-parallelization, the paper's contribution:
// sharing the work of computational sections between the replicas of a
// logical MPI process (§III).
//
// A computation phase is declared as an *intra-parallel section* divided
// into *tasks* (Definitions 1 and 2). Under the intra runtime each task is
// executed by exactly one replica, which ships the task's written variables
// ("updates") to its peer replicas so that all replicas are consistent
// again when the section ends. If a replica crashes mid-section, survivors
// re-execute its unfinished tasks; copies of inout variables (or atomic
// update application) protect re-execution against the true-dependence
// hazard of Figure 2.
//
// The same section API also runs under two baseline engines: native (no
// replication; every task runs locally) and classic state-machine
// replication (every replica runs every task), so applications are written
// once and measured in all three configurations of the paper's evaluation.
package core

// Value is a variable that can be passed to an intra-parallel task. The
// runtime uses it to snapshot inout arguments, to encode updates for the
// wire, and to apply received updates to the replica's memory.
type Value interface {
	// ByteSize returns the size of the variable for cost accounting and
	// update-transfer modeling.
	ByteSize() int64
	// Snapshot returns a deep copy with private storage.
	Snapshot() Value
	// Restore overwrites this value's backing memory from a snapshot
	// previously returned by Snapshot.
	Restore(from Value)
	// Encode returns the wire representation. It may alias backing memory;
	// the messaging layer copies on send.
	Encode() []float64
	// Apply overwrites this value's backing memory from a wire
	// representation.
	Apply(data []float64)
}

// Float64s is a Value backed by a float64 slice in application memory.
type Float64s []float64

// ByteSize returns 8 bytes per element.
func (v Float64s) ByteSize() int64 { return 8 * int64(len(v)) }

// Snapshot returns a deep copy.
func (v Float64s) Snapshot() Value { return append(Float64s(nil), v...) }

// Restore copies a snapshot back into the backing slice.
func (v Float64s) Restore(from Value) { copy(v, from.(Float64s)) }

// Encode returns the backing slice (the messaging layer copies on send).
func (v Float64s) Encode() []float64 { return v }

// Apply copies received data into the backing slice.
func (v Float64s) Apply(data []float64) { copy(v, data) }

// Scalar is a Value backed by a single float64 in application memory.
type Scalar struct{ P *float64 }

// ByteSize returns 8.
func (s Scalar) ByteSize() int64 { return 8 }

// Snapshot returns a copy with private storage.
func (s Scalar) Snapshot() Value {
	v := *s.P
	return Scalar{P: &v}
}

// Restore copies a snapshot back.
func (s Scalar) Restore(from Value) { *s.P = *from.(Scalar).P }

// Encode returns a one-element wire representation.
func (s Scalar) Encode() []float64 { return []float64{*s.P} }

// Apply overwrites the scalar from the wire representation.
func (s Scalar) Apply(data []float64) { *s.P = data[0] }

// ArgTag declares how a task accesses an argument (§III-C): in arguments
// are only read; out arguments are written without being read; inout
// arguments are read and written and therefore need protection against
// re-execution after a partial update (Figure 2).
type ArgTag uint8

// Argument access tags.
const (
	In ArgTag = iota
	Out
	InOut
)

func (t ArgTag) String() string {
	switch t {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return "invalid"
}

// Scaled wraps a Value so its modeled size is factor times its in-memory
// size. Scaled-down experiment runs wrap task outputs with the ratio
// between the paper's problem size and the allocated arrays, so update
// transfers and inout copies are charged at the modeled scale.
func Scaled(v Value, factor float64) Value {
	if factor == 1 {
		return v
	}
	return scaledValue{Value: v, factor: factor}
}

type scaledValue struct {
	Value
	factor float64
}

func (s scaledValue) ByteSize() int64 {
	return int64(float64(s.Value.ByteSize()) * s.factor)
}

func (s scaledValue) Snapshot() Value {
	return scaledValue{Value: s.Value.Snapshot(), factor: s.factor}
}

func (s scaledValue) Restore(from Value) {
	if sv, ok := from.(scaledValue); ok {
		s.Value.Restore(sv.Value)
		return
	}
	s.Value.Restore(from)
}
