package experiments

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/apps/gtc"
	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/sim"
)

// runModeOpts is runMode with explicit intra-engine options.
func runModeOpts(mode Mode, logical int, opts core.Options, main appMain) (*Measure, error) {
	c := NewCluster(ClusterConfig{Logical: logical, Mode: mode, IntraOpts: opts})
	meas := &Measure{Mode: mode, Kernels: map[string]*apputil.KernelTime{}}
	var firstErr error
	c.Launch(func(rt core.Runner) {
		total, kernels, st, err := main(rt)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		meas.add(total, kernels, st)
	})
	wall, err := c.Run()
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	meas.finish(wall, c.PhysProcs())
	return meas, nil
}

// AblationTaskGranularity sweeps the number of tasks per section on HPCCG
// (§V-B: 8 tasks per section is the paper's default; fewer tasks reduce
// transfer/compute overlap, more tasks add synchronization overhead).
func AblationTaskGranularity(physProcs int) (*Table, error) {
	iters := 10
	native, err := runMode(Native, physProcs, hpccgMain(hpccgPaperConfig(Native, iters, false)))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "granularity",
		Title:  fmt.Sprintf("Ablation: tasks per section (HPCCG, %d physical processes)", physProcs),
		Header: []string{"tasks/section", "intra time (s)", "efficiency", "update wait (s)"},
	}
	for _, tasks := range []int{1, 2, 4, 8, 16, 32, 64} {
		cfg := hpccgPaperConfig(Intra, iters, false)
		cfg.Tasks = tasks
		m, err := runMode(Intra, physProcs/2, hpccgMain(cfg))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", tasks), secs(m.AppTotal),
			fmt.Sprintf("%.3f", efficiency(native, m)),
			secs(m.Stats.UpdateWait))
	}
	t.Note("paper's default is 8 tasks/section (4 per replica)")
	return t, nil
}

// AblationInoutMode compares the two protections against the Figure 2
// hazard — copy-on-receive vs atomic update application — on GTC, the
// application with inout task arguments (§III-B2 claims similar cost).
func AblationInoutMode(physProcs int) (*Table, error) {
	cfg := Fig6cConfig()
	main := func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
		res, err := gtc.Run(rt, cfg)
		if err != nil {
			return 0, nil, core.Stats{}, err
		}
		return res.Total, res.Kernels, res.Stats, nil
	}
	t := &Table{
		ID:     "inout",
		Title:  fmt.Sprintf("Ablation: inout protection mode (GTC, %d logical processes)", physProcs/2),
		Header: []string{"mode", "time (s)", "copy overhead (s)", "copy/section"},
	}
	for _, mode := range []core.InoutMode{core.CopyRestore, core.AtomicApply} {
		m, err := runModeOpts(Intra, physProcs/2, core.Options{Mode: mode}, main)
		if err != nil {
			return nil, err
		}
		frac := float64(m.Stats.CopyTime) / float64(m.Stats.SectionTime)
		t.AddRow(mode.String(), secs(m.AppTotal), secs(m.Stats.CopyTime),
			fmt.Sprintf("%.1f%%", 100*frac))
	}
	t.Note("paper (§III-B2): both solutions have similar cost")
	t.Note("paper (§V-D): extra copies add ~6%% overhead on GTC's affected tasks")
	return t, nil
}

// AblationDegree measures intra-parallelization efficiency as a function
// of the replication degree on a fixed HPCCG problem. The paper argues
// (§II) that degree 2 is the appropriate choice for crash failures; this
// table shows why higher degrees do not pay: sections speed up at most
// d-fold while the resource bill grows d-fold and the replicated parts
// are never shared.
func AblationDegree(logical int) (*Table, error) {
	cfg := hpccg.Config{
		Nx: 16, Ny: 16, Nz: 16, Iters: 10, Tasks: 12,
		Scale: 512, PlaneScale: 64,
		IntraDdot: true, IntraSparsemv: true,
	}
	main := hpccgMain(cfg)
	native, err := runMode(Native, logical, main)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "degree",
		Title:  fmt.Sprintf("Extension: replication degree (HPCCG, %d logical processes, constant problem)", logical),
		Header: []string{"degree", "phys procs", "time (s)", "efficiency"},
	}
	t.AddRow("1 (native)", fmt.Sprintf("%d", native.PhysProcs), secs(native.AppTotal), "1.00")
	for _, d := range []int{2, 3} {
		c := NewCluster(ClusterConfig{Logical: logical, Mode: Intra, Degree: d})
		m := &Measure{Mode: Intra, Kernels: map[string]*apputil.KernelTime{}}
		var firstErr error
		c.Launch(func(rt core.Runner) {
			total, kernels, st, err := main(rt)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			m.add(total, kernels, st)
		})
		wall, err := c.Run()
		if err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		m.finish(wall, c.PhysProcs())
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", m.PhysProcs),
			secs(m.AppTotal), fmt.Sprintf("%.2f", efficiency(native, m)))
	}
	t.Note("degree 2 tolerates any single failure per logical rank; degree 3 buys little speedup for 1.5x the resources (§II)")
	return t, nil
}
