package experiments

import (
	"fmt"

	"repro/internal/apps/hpccg"
	"repro/internal/scenario"
)

// AblationTaskGranularity sweeps the number of tasks per section on HPCCG
// (§V-B: 8 tasks per section is the paper's default; fewer tasks reduce
// transfer/compute overlap, more tasks add synchronization overhead). The
// native baseline and every granularity run through one parallel sweep.
func AblationTaskGranularity(physProcs int) (*Table, error) {
	return figures["granularity"].Run(physProcs, 0)
}

var granularityTaskCounts = []int{1, 2, 4, 8, 16, 32, 64}

func granularityScenarios(procs, iters int) ([]scenario.Scenario, error) {
	physProcs := orDefault(procs, 64)
	iters = orDefault(iters, 10)
	scs := []scenario.Scenario{{
		Name: "granularity/native", App: "hpccg",
		Config: scenario.MustRaw(hpccg.PaperConfig(false, iters, false)),
		Mode:   Native, Logical: physProcs,
	}}
	for _, tasks := range granularityTaskCounts {
		cfg := hpccg.PaperConfig(true, iters, false)
		cfg.Tasks = tasks
		scs = append(scs, scenario.Scenario{
			Name: fmt.Sprintf("granularity/%d", tasks), App: "hpccg",
			Config: scenario.MustRaw(cfg),
			Mode:   Intra, Logical: physProcs / 2,
		})
	}
	return scs, nil
}

func granularityRender(scs []scenario.Scenario, res []Result) (*Table, error) {
	if len(res) < 2 || len(scs) != len(res) {
		return nil, fmt.Errorf("granularity renders a native point plus task counts, got %d points", len(res))
	}
	ms := measures(res)
	native := ms[0]
	t := &Table{
		ID:     "granularity",
		Title:  fmt.Sprintf("Ablation: tasks per section (HPCCG, %d physical processes)", native.PhysProcs),
		Header: []string{"tasks/section", "intra time (s)", "efficiency", "update wait (s)"},
	}
	for i, m := range ms[1:] {
		cfg, err := scs[i+1].AppConfig()
		if err != nil {
			return nil, err
		}
		hc, ok := cfg.(*hpccg.Config)
		if !ok {
			return nil, fmt.Errorf("granularity renders hpccg points, got %q", scs[i+1].App)
		}
		t.AddRow(fmt.Sprintf("%d", hc.Tasks), secs(m.AppTotal),
			fmt.Sprintf("%.3f", Efficiency(native, m)),
			secs(m.Stats.UpdateWait))
	}
	t.Note("paper's default is 8 tasks/section (4 per replica)")
	return t, nil
}

// AblationInoutMode compares the two protections against the Figure 2
// hazard — copy-on-receive vs atomic update application — on GTC, the
// application with inout task arguments (§III-B2 claims similar cost).
func AblationInoutMode(physProcs int) (*Table, error) {
	return figures["inout"].Run(physProcs, 0)
}

func inoutScenarios(procs, iters int) ([]scenario.Scenario, error) {
	physProcs := orDefault(procs, 64)
	raw := scenario.MustRaw(Fig6cConfig())
	var scs []scenario.Scenario
	for _, mode := range []string{"copy", "atomic"} {
		scs = append(scs, scenario.Scenario{
			Name: "inout/" + mode, App: "gtc", Config: raw,
			Mode: Intra, Logical: physProcs / 2,
			Intra: &scenario.IntraOptions{Inout: mode},
		})
	}
	return scs, nil
}

func inoutRender(scs []scenario.Scenario, res []Result) (*Table, error) {
	if len(res) != 2 || len(scs) != len(res) {
		return nil, fmt.Errorf("inout renders 2 points, got %d", len(res))
	}
	ms := measures(res)
	t := &Table{
		ID:     "inout",
		Title:  fmt.Sprintf("Ablation: inout protection mode (GTC, %d logical processes)", scs[0].Logical),
		Header: []string{"mode", "time (s)", "copy overhead (s)", "copy/section"},
	}
	for i, m := range ms {
		label := "copy" // an omitted intra block runs the copy-restore default
		if scs[i].Intra != nil && scs[i].Intra.Inout != "" {
			label = scs[i].Intra.Inout
		}
		frac := float64(m.Stats.CopyTime) / float64(m.Stats.SectionTime)
		t.AddRow(label, secs(m.AppTotal), secs(m.Stats.CopyTime),
			fmt.Sprintf("%.1f%%", 100*frac))
	}
	t.Note("paper (§III-B2): both solutions have similar cost")
	t.Note("paper (§V-D): extra copies add ~6%% overhead on GTC's affected tasks")
	return t, nil
}

// AblationDegree measures intra-parallelization efficiency as a function
// of the replication degree on a fixed HPCCG problem. The paper argues
// (§II) that degree 2 is the appropriate choice for crash failures; this
// table shows why higher degrees do not pay: sections speed up at most
// d-fold while the resource bill grows d-fold and the replicated parts
// are never shared.
func AblationDegree(logical int) (*Table, error) {
	return figures["degree"].Run(logical, 0)
}

var ablationDegrees = []int{2, 3}

func degreeScenarios(procs, iters int) ([]scenario.Scenario, error) {
	logical := orDefault(procs, 32)
	raw := scenario.MustRaw(hpccg.Config{
		Nx: 16, Ny: 16, Nz: 16, Iters: 10, Tasks: 12,
		Scale: 512, PlaneScale: 64,
		IntraDdot: true, IntraSparsemv: true,
	})
	scs := []scenario.Scenario{{
		Name: "degree/native", App: "hpccg", Config: raw, Mode: Native, Logical: logical,
	}}
	for _, d := range ablationDegrees {
		scs = append(scs, scenario.Scenario{
			Name: fmt.Sprintf("degree/%d", d), App: "hpccg", Config: raw,
			Mode: Intra, Logical: logical, Degree: d,
		})
	}
	return scs, nil
}

func degreeRender(scs []scenario.Scenario, res []Result) (*Table, error) {
	if len(res) < 2 || len(scs) != len(res) {
		return nil, fmt.Errorf("degree renders a native point plus degrees, got %d points", len(res))
	}
	ms := measures(res)
	native := ms[0]
	t := &Table{
		ID:     "degree",
		Title:  fmt.Sprintf("Extension: replication degree (HPCCG, %d logical processes, constant problem)", scs[0].Logical),
		Header: []string{"degree", "phys procs", "time (s)", "efficiency"},
	}
	t.AddRow("1 (native)", fmt.Sprintf("%d", native.PhysProcs), secs(native.AppTotal), "1.00")
	for i, m := range ms[1:] {
		t.AddRow(fmt.Sprintf("%d", scs[i+1].Degree), fmt.Sprintf("%d", m.PhysProcs),
			secs(m.AppTotal), fmt.Sprintf("%.2f", Efficiency(native, m)))
	}
	t.Note("degree 2 tolerates any single failure per logical rank; degree 3 buys little speedup for 1.5x the resources (§II)")
	return t, nil
}
