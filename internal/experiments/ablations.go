package experiments

import (
	"fmt"

	"repro/internal/apps/hpccg"
	"repro/internal/core"
)

// AblationTaskGranularity sweeps the number of tasks per section on HPCCG
// (§V-B: 8 tasks per section is the paper's default; fewer tasks reduce
// transfer/compute overlap, more tasks add synchronization overhead). The
// native baseline and every granularity run through one parallel sweep.
func AblationTaskGranularity(physProcs int) (*Table, error) {
	iters := 10
	taskCounts := []int{1, 2, 4, 8, 16, 32, 64}
	specs := []Spec{{Name: "granularity/native", Mode: Native, Logical: physProcs,
		App: HPCCG(HPCCGPaperConfig(Native, iters, false))}}
	for _, tasks := range taskCounts {
		cfg := HPCCGPaperConfig(Intra, iters, false)
		cfg.Tasks = tasks
		specs = append(specs, Spec{
			Name: fmt.Sprintf("granularity/%d", tasks), Mode: Intra, Logical: physProcs / 2,
			App: HPCCG(cfg),
		})
	}
	ms, err := sweepMeasures(specs...)
	if err != nil {
		return nil, err
	}
	native := ms[0]
	t := &Table{
		ID:     "granularity",
		Title:  fmt.Sprintf("Ablation: tasks per section (HPCCG, %d physical processes)", physProcs),
		Header: []string{"tasks/section", "intra time (s)", "efficiency", "update wait (s)"},
	}
	for i, tasks := range taskCounts {
		m := ms[i+1]
		t.AddRow(fmt.Sprintf("%d", tasks), secs(m.AppTotal),
			fmt.Sprintf("%.3f", Efficiency(native, m)),
			secs(m.Stats.UpdateWait))
	}
	t.Note("paper's default is 8 tasks/section (4 per replica)")
	return t, nil
}

// AblationInoutMode compares the two protections against the Figure 2
// hazard — copy-on-receive vs atomic update application — on GTC, the
// application with inout task arguments (§III-B2 claims similar cost).
func AblationInoutMode(physProcs int) (*Table, error) {
	app := GTC(Fig6cConfig())
	modes := []core.InoutMode{core.CopyRestore, core.AtomicApply}
	var specs []Spec
	for _, mode := range modes {
		specs = append(specs, Spec{
			Name: "inout/" + mode.String(), Mode: Intra, Logical: physProcs / 2,
			Opts: core.Options{Mode: mode}, App: app,
		})
	}
	ms, err := sweepMeasures(specs...)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "inout",
		Title:  fmt.Sprintf("Ablation: inout protection mode (GTC, %d logical processes)", physProcs/2),
		Header: []string{"mode", "time (s)", "copy overhead (s)", "copy/section"},
	}
	for i, mode := range modes {
		m := ms[i]
		frac := float64(m.Stats.CopyTime) / float64(m.Stats.SectionTime)
		t.AddRow(mode.String(), secs(m.AppTotal), secs(m.Stats.CopyTime),
			fmt.Sprintf("%.1f%%", 100*frac))
	}
	t.Note("paper (§III-B2): both solutions have similar cost")
	t.Note("paper (§V-D): extra copies add ~6%% overhead on GTC's affected tasks")
	return t, nil
}

// AblationDegree measures intra-parallelization efficiency as a function
// of the replication degree on a fixed HPCCG problem. The paper argues
// (§II) that degree 2 is the appropriate choice for crash failures; this
// table shows why higher degrees do not pay: sections speed up at most
// d-fold while the resource bill grows d-fold and the replicated parts
// are never shared.
func AblationDegree(logical int) (*Table, error) {
	cfg := hpccg.Config{
		Nx: 16, Ny: 16, Nz: 16, Iters: 10, Tasks: 12,
		Scale: 512, PlaneScale: 64,
		IntraDdot: true, IntraSparsemv: true,
	}
	app := HPCCG(cfg)
	degrees := []int{2, 3}
	specs := []Spec{{Name: "degree/native", Mode: Native, Logical: logical, App: app}}
	for _, d := range degrees {
		specs = append(specs, Spec{
			Name: fmt.Sprintf("degree/%d", d), Mode: Intra, Logical: logical, Degree: d, App: app,
		})
	}
	ms, err := sweepMeasures(specs...)
	if err != nil {
		return nil, err
	}
	native := ms[0]
	t := &Table{
		ID:     "degree",
		Title:  fmt.Sprintf("Extension: replication degree (HPCCG, %d logical processes, constant problem)", logical),
		Header: []string{"degree", "phys procs", "time (s)", "efficiency"},
	}
	t.AddRow("1 (native)", fmt.Sprintf("%d", native.PhysProcs), secs(native.AppTotal), "1.00")
	for i, d := range degrees {
		m := ms[i+1]
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", m.PhysProcs),
			secs(m.AppTotal), fmt.Sprintf("%.2f", Efficiency(native, m)))
	}
	t.Note("degree 2 tolerates any single failure per logical rank; degree 3 buys little speedup for 1.5x the resources (§II)")
	return t, nil
}
