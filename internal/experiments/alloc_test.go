package experiments

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/testutil"
)

// rerunAllocs runs the same classic spec `times` times on one pooled
// engine and scratch and returns the total allocation count. Differencing
// two counts cancels engine construction and pool warm-up, leaving the
// steady-state cost of one full spec rerun (world build, replica launch,
// application run, reclaim).
func rerunAllocs(t *testing.T, times int) float64 {
	t.Helper()
	s := Spec{Name: "rerun", Mode: Classic, Logical: 4, App: HPCCG(smallHPCCG(2))}
	return testing.AllocsPerRun(2, func() {
		eng := sim.NewPooled()
		defer eng.Shutdown()
		sc := mpi.NewScratch()
		for i := 0; i < times; i++ {
			eng.Reset()
			if _, err := runSpec(eng, sc, s); err != nil {
				t.Error(err)
				return
			}
		}
	})
}

// TestPooledRerunAllocBudget pins the pooled-runner path: once the worker's
// engine and scratch are warm, each additional spec rerun must reuse the
// event nodes, goroutines, channel states and message buffers of its
// predecessors. Before engine pooling a rerun of this spec allocated well
// over 100k objects; the 8000 budget holds the steady state an order of
// magnitude below that so a pool regression (a Reclaim path dropped, a
// freelist bypassed) fails loudly rather than melting into GC noise.
func TestPooledRerunAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	const span = 6
	perRun := (rerunAllocs(t, 2+span) - rerunAllocs(t, 2)) / span
	t.Logf("allocs per pooled spec rerun: %.0f", perRun)
	if perRun > 8000 {
		t.Fatalf("pooled spec rerun allocates %.0f objects, budget 8000", perRun)
	}
}
