// Package experiments reconstructs the paper's evaluation: it builds
// simulated clusters, runs the benchmark applications under the three
// configurations of the paper (native Open MPI, classic active replication
// à la SDR-MPI, and intra-parallelization), and regenerates every figure
// of §V as a table. All experiment points are described by the canonical
// scenario.Scenario type; this package is the runtime that turns scenarios
// into simulations.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/replication"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Mode is the canonical fault-tolerance mode (scenario.Mode), re-exported
// so experiment code reads naturally.
type Mode = scenario.Mode

// Modes of the evaluation.
const (
	Native  = scenario.Native  // unreplicated Open MPI baseline
	Classic = scenario.Classic // SDR-MPI: classic state-machine replication
	Intra   = scenario.Intra   // replication with intra-parallelization
	CCR     = scenario.CCR     // coordinated checkpoint/restart (native run + ckptsim replay)
)

// ClusterConfig describes one experiment's platform and mode.
type ClusterConfig struct {
	Logical   int // logical MPI ranks
	Mode      Mode
	Degree    int // replication degree (paper: 2)
	Net       simnet.Config
	Machine   perf.Machine
	SendLog   bool         // enable crash coverage logs (off for perf runs)
	IntraOpts core.Options // options for the intra engine

	// Engine, when non-nil, is the simulation engine to build the cluster
	// on instead of a fresh one — the hook the pooled sweep runner uses to
	// reuse one engine (event free lists, process goroutines) across many
	// spec runs. The caller owns its lifecycle: it must be freshly created
	// or Reset, and Reset again before any reuse.
	Engine *sim.Engine

	// Scratch, when non-nil, is a shared mpi free-list bundle the world
	// draws from (mpi.World.UseScratch) — the pooled runner's counterpart
	// to Engine for the message layer. Worlds sharing a scratch must run
	// sequentially on one goroutine.
	Scratch *mpi.Scratch

	// BatchCompute builds the world with deferred compute accounting
	// (mpi.World.SetBatchedCompute): identical simulated outcomes, far
	// fewer engine events. Leave off when the engine's event count is part
	// of the tracked output.
	BatchCompute bool
}

// DefaultPlatform returns the Grid'5000-like platform of §V-B.
func DefaultPlatform() (simnet.Config, perf.Machine) {
	return simnet.InfiniBand20G, perf.Grid5000
}

// Cluster is a ready-to-run simulated machine.
type Cluster struct {
	Cfg ClusterConfig
	E   *sim.Engine
	W   *mpi.World
	Sys *replication.System // nil in native mode
}

// NewCluster builds the simulated platform for cfg. The zero values of Net
// and Machine select the paper's platform independently (a config may
// override just one of them); a partially-specified custom model is an
// error, never silently swapped for the default.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if !cfg.Mode.Known() {
		return nil, fmt.Errorf("experiments: unknown mode %d", int(cfg.Mode))
	}
	if cfg.Logical < 1 {
		return nil, fmt.Errorf("experiments: cluster needs at least 1 logical rank, got %d", cfg.Logical)
	}
	if cfg.Degree == 0 {
		cfg.Degree = scenario.DefaultDegree
	}
	defNet, defMachine := DefaultPlatform()
	if cfg.Net == (simnet.Config{}) {
		cfg.Net = defNet
	} else if err := scenario.CheckNet(cfg.Net); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if cfg.Machine == (perf.Machine{}) {
		cfg.Machine = defMachine
	} else if err := scenario.CheckMachine(cfg.Machine); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	phys := cfg.Logical
	if cfg.Mode.Replicated() {
		phys *= cfg.Degree
	}
	e := cfg.Engine
	if e == nil {
		e = sim.New()
	}
	nodes := (phys + cfg.Net.CoresPerNode - 1) / cfg.Net.CoresPerNode
	net := simnet.New(e, cfg.Net, nodes)
	w := mpi.NewWorld(e, net, phys, cfg.Machine, nil)
	if cfg.Scratch != nil {
		w.UseScratch(cfg.Scratch)
	}
	w.SetBatchedCompute(cfg.BatchCompute)
	c := &Cluster{Cfg: cfg, E: e, W: w}
	if cfg.Mode.Replicated() {
		c.Sys = replication.New(w, replication.Config{
			Logical: cfg.Logical,
			Degree:  cfg.Degree,
			SendLog: cfg.SendLog,
		})
	}
	return c, nil
}

// PhysProcs returns the number of physical processes the cluster uses (the
// "ps" annotation in Figure 6).
func (c *Cluster) PhysProcs() int { return c.W.Size() }

// Launch starts program on every logical process (on every replica in
// replicated modes). The runner passed to program matches the cluster
// mode.
func (c *Cluster) Launch(program func(rt core.Runner)) {
	switch c.Cfg.Mode {
	case Native, CCR:
		// ccr runs the application unreplicated: checkpoints, rollbacks and
		// restarts are layered over the measured makespan by the campaign's
		// ckptsim replay, never simulated inside the cluster.
		c.W.LaunchAll("native", func(r *mpi.Rank) {
			program(core.NewNative(r))
		})
	case Classic:
		c.Sys.Launch("classic", func(p *replication.Proc) {
			program(core.NewClassic(p))
		})
	case Intra:
		c.Sys.Launch("intra", func(p *replication.Proc) {
			program(core.NewIntra(p, c.Cfg.IntraOpts))
		})
	}
}

// Run drives the simulation to completion and returns the wall-clock time
// of the run (the virtual time at which the last process finished).
func (c *Cluster) Run() (sim.Time, error) {
	if err := c.E.Run(); err != nil {
		return 0, fmt.Errorf("experiments: %s run failed: %w", c.Cfg.Mode, err)
	}
	return c.E.Now(), nil
}

// RunProgram is the one-call convenience used by tests and benches: build,
// launch, run.
func RunProgram(cfg ClusterConfig, program func(rt core.Runner)) (sim.Time, error) {
	c, err := NewCluster(cfg)
	if err != nil {
		return 0, err
	}
	c.Launch(program)
	return c.Run()
}
