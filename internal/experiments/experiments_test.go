package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func TestModeStrings(t *testing.T) {
	if Native.String() != "Open MPI" || Classic.String() != "SDR-MPI" || Intra.String() != "intra" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatalf("unknown mode must render error-worthy, got %q", Mode(9).String())
	}
	if Native.Replicated() || !Classic.Replicated() || !Intra.Replicated() {
		t.Fatal("Replicated wrong")
	}
}

func mustCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterSizes(t *testing.T) {
	n := mustCluster(t, ClusterConfig{Logical: 8, Mode: Native})
	if n.PhysProcs() != 8 || n.Sys != nil {
		t.Fatalf("native cluster: %d procs", n.PhysProcs())
	}
	r := mustCluster(t, ClusterConfig{Logical: 8, Mode: Intra})
	if r.PhysProcs() != 16 || r.Sys == nil {
		t.Fatalf("intra cluster: %d procs", r.PhysProcs())
	}
}

// TestClusterRejectsPartialPlatform is the regression test for the silent
// default-substitution bug: a custom net or machine with a zero key field
// used to be swapped wholesale for the Grid'5000 default; it must be an
// error instead. The zero value still selects the default platform.
func TestClusterRejectsPartialPlatform(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Logical: 2, Mode: Native,
		Net: simnet.Config{Latency: sim.Micros(1), LocalBandwidth: 1e9, CoresPerNode: 4}}); err == nil ||
		!strings.Contains(err.Error(), "bandwidth") {
		t.Fatalf("zero-bandwidth custom net must error, got %v", err)
	}
	if _, err := NewCluster(ClusterConfig{Logical: 2, Mode: Native,
		Machine: perf.Machine{MemBWPerCore: 1e9}}); err == nil ||
		!strings.Contains(err.Error(), "flop") {
		t.Fatalf("zero-flops custom machine must error, got %v", err)
	}
	if _, err := NewCluster(ClusterConfig{Logical: 0, Mode: Native}); err == nil {
		t.Fatal("zero logical ranks must error")
	}
	if _, err := NewCluster(ClusterConfig{Logical: 2, Mode: Mode(7)}); err == nil {
		t.Fatal("unknown mode must error")
	}
	if _, err := NewCluster(ClusterConfig{Logical: 2, Mode: Classic}); err != nil {
		t.Fatalf("zero-value platform must select the default, got %v", err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("hello %d", 7)
	s := tab.String()
	for _, want := range []string{"x — demo", "a", "bb", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestEfficiencyMath(t *testing.T) {
	native := &Measure{AppTotal: 100, PhysProcs: 256}
	same := &Measure{AppTotal: 100, PhysProcs: 512}
	if e := Efficiency(native, same); e != 0.5 {
		t.Fatalf("eff = %v, want 0.5", e)
	}
	faster := &Measure{AppTotal: 50, PhysProcs: 512}
	if e := Efficiency(native, faster); e != 1.0 {
		t.Fatalf("eff = %v, want 1.0", e)
	}
}

func TestRunProgramExecutes(t *testing.T) {
	ran := 0
	_, err := RunProgram(ClusterConfig{Logical: 3, Mode: Classic}, func(rt core.Runner) {
		rt.Compute(perf.Work{Flops: 1e6})
		ran++
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 6 { // 3 logical x 2 replicas
		t.Fatalf("ran = %d, want 6", ran)
	}
}

func parseEff(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad efficiency cell %q", cell)
	}
	return v
}

// TestFig5aSmallShape runs Figure 5a on a small cluster and checks the
// paper's qualitative result: ddot and sparsemv profit from
// intra-parallelization, waxpby does not.
func TestFig5aSmallShape(t *testing.T) {
	tab, err := Fig5a(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	eff := map[string]float64{}
	sdr := map[string]float64{}
	for _, row := range tab.Rows {
		eff[row[0]] = parseEff(t, row[5])
		sdr[row[0]] = parseEff(t, row[3])
	}
	for k, v := range sdr {
		if v < 0.45 || v > 0.55 {
			t.Fatalf("SDR efficiency for %s = %v, want ~0.5", k, v)
		}
	}
	if eff["ddot"] < 0.85 || eff["sparsemv"] < 0.85 {
		t.Fatalf("ddot/sparsemv should be near 1: %v", eff)
	}
	if eff["waxpby"] > 0.55 {
		t.Fatalf("waxpby should not profit: %v", eff["waxpby"])
	}
	if eff["waxpby"] >= eff["sparsemv"] || eff["sparsemv"] > eff["ddot"]+0.1 {
		t.Fatalf("ordering wrong: %v", eff)
	}
}

// TestFig5bSmallShape checks SDR pins at 0.5 and intra lands clearly above.
func TestFig5bSmallShape(t *testing.T) {
	tab, err := Fig5b([]int{32}, 4)
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	sdr, intra := parseEff(t, row[3]), parseEff(t, row[5])
	if sdr < 0.45 || sdr > 0.55 {
		t.Fatalf("SDR eff = %v", sdr)
	}
	if intra < 0.65 {
		t.Fatalf("intra eff = %v, want > 0.65", intra)
	}
}

// TestFig6SmallShapes runs the four applications of Figure 6 on small
// clusters and checks the efficiency ordering of the paper: GTC > AMG-PCG >
// AMG-GMRES > MiniGhost, with everything in (0.5, 1).
func TestFig6SmallShapes(t *testing.T) {
	get := func(fn func(int) (*Table, error), procs int) float64 {
		t.Helper()
		tab, err := fn(procs)
		if err != nil {
			t.Fatal(err)
		}
		return parseEff(t, tab.Rows[2][5])
	}
	gtcEff := get(Fig6c, 16)
	pcg := get(Fig6a, 16)
	gmres := get(Fig6b, 16)
	mg := get(Fig6d, 16)
	for name, v := range map[string]float64{"gtc": gtcEff, "pcg": pcg, "gmres": gmres, "mg": mg} {
		if v <= 0.5 || v >= 1 {
			t.Fatalf("%s intra efficiency %v outside (0.5, 1)", name, v)
		}
	}
	if mg > 0.6 {
		t.Fatalf("MiniGhost should barely profit (10%% coverage): %v", mg)
	}
	if gtcEff < pcg-0.05 {
		t.Fatalf("GTC (%v) should be at least comparable to AMG-PCG (%v)", gtcEff, pcg)
	}
	if gmres > pcg {
		t.Fatalf("GMRES (%v) should not beat PCG (%v): lower section coverage", gmres, pcg)
	}
}

func TestCkptModelTable(t *testing.T) {
	tab := CkptModelTable()
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// cCR efficiency must fall with system size; replicated stays ~base.
	first := parseEff(t, tab.Rows[0][3])
	last := parseEff(t, tab.Rows[len(tab.Rows)-1][3])
	if last >= first {
		t.Fatalf("cCR efficiency should fall with scale: %v -> %v", first, last)
	}
	for _, row := range tab.Rows {
		repl := parseEff(t, row[4])
		intra := parseEff(t, row[5])
		if repl < 0.4 || repl > 0.5 {
			t.Fatalf("replication eff %v out of range", repl)
		}
		if intra <= repl {
			t.Fatalf("intra (%v) must beat plain replication (%v)", intra, repl)
		}
	}
	// The motivating crossover: at the largest scale cCR must be below
	// what replication+intra delivers.
	if last >= 0.5 {
		t.Fatalf("expected cCR below 0.5 at extreme scale, got %v", last)
	}
}

// TestAblationsRun exercises the two ablation tables on tiny clusters.
func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	tab, err := AblationTaskGranularity(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// One task per section cannot overlap anything: worst efficiency.
	if parseEff(t, tab.Rows[0][2]) >= parseEff(t, tab.Rows[3][2]) {
		t.Fatal("1 task should be worse than 8 tasks")
	}
	inout, err := AblationInoutMode(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(inout.Rows) != 2 {
		t.Fatalf("inout rows = %d", len(inout.Rows))
	}
}

// TestAblationDegree checks the §II argument: degree 2 is the sweet spot;
// degree 3 costs efficiency.
func TestAblationDegree(t *testing.T) {
	tab, err := AblationDegree(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	d2 := parseEff(t, tab.Rows[1][3])
	d3 := parseEff(t, tab.Rows[2][3])
	if d2 <= 0.5 {
		t.Fatalf("degree 2 efficiency %v should beat the 50%% wall", d2)
	}
	if d3 >= d2 {
		t.Fatalf("degree 3 (%v) should be less efficient than degree 2 (%v)", d3, d2)
	}
}
