package experiments

import (
	"fmt"

	"repro/internal/apps/amg"
	"repro/internal/apps/apputil"
	"repro/internal/apps/gtc"
	"repro/internal/apps/hpccg"
	"repro/internal/apps/minighost"
	"repro/internal/ckpt"
	"repro/internal/scenario"
)

// SizeDivisor is re-exported from apputil, where the paper-scale app
// configs live (see apputil.SizeDivisor).
const SizeDivisor = apputil.SizeDivisor

// HPCCGPaperConfig returns the paper's HPCCG setup (§V-C) for the mode:
// per-logical problem 128^3 in native runs, doubled (z-extent 256) under
// replication.
func HPCCGPaperConfig(mode Mode, iters int, intraWaxpby bool) hpccg.Config {
	return hpccg.PaperConfig(mode.Replicated(), iters, intraWaxpby)
}

// Fig6aConfig is the AMG 27-point PCG problem of Figure 6a.
func Fig6aConfig() amg.Config { return amg.PaperPCGConfig() }

// Fig6bConfig is the AMG 7-point GMRES problem of Figure 6b.
func Fig6bConfig() amg.Config { return amg.PaperGMRESConfig() }

// Fig6cConfig is the GTC problem of Figure 6c (mzetamax=64, npartdom=4,
// micell=200 scaled down).
func Fig6cConfig() gtc.Config { return gtc.PaperConfig() }

// Fig6dConfig is the MiniGhost problem of Figure 6d (128x128x64, 27-point).
func Fig6dConfig() minighost.Config { return minighost.PaperConfig() }

// hpccgTriple is the three-mode protocol of Figure 5: native on the full
// physical-process budget, both replicated modes on half the logical ranks
// (same physical budget, degree 2).
func hpccgTriple(tag string, physProcs, iters int, intraWaxpby bool) []scenario.Scenario {
	native := scenario.MustRaw(hpccg.PaperConfig(false, iters, intraWaxpby))
	repl := scenario.MustRaw(hpccg.PaperConfig(true, iters, intraWaxpby))
	return []scenario.Scenario{
		{Name: tag + "/native", App: "hpccg", Config: native, Mode: Native, Logical: physProcs},
		{Name: tag + "/classic", App: "hpccg", Config: repl, Mode: Classic, Logical: physProcs / 2},
		{Name: tag + "/intra", App: "hpccg", Config: repl, Mode: Intra, Logical: physProcs / 2},
	}
}

// measures extracts the raw aggregates, the form the renderers consume.
func measures(res []Result) []*Measure {
	ms := make([]*Measure, len(res))
	for i := range res {
		ms[i] = res[i].Measure
	}
	return ms
}

// Fig5a regenerates Figure 5a: normalized per-kernel execution time and
// efficiency for waxpby, ddot and sparsemv on 512 physical processes, with
// the time spent on non-overlapped update transfers.
func Fig5a(physProcs, iters int) (*Table, error) {
	scs, err := fig5aScenarios(physProcs, iters)
	if err != nil {
		return nil, err
	}
	return runFigure(scs, fig5aRender)
}

func fig5aScenarios(procs, iters int) ([]scenario.Scenario, error) {
	return hpccgTriple("fig5a", orDefault(procs, 512), orDefault(iters, 10), true), nil
}

func fig5aRender(scs []scenario.Scenario, res []Result) (*Table, error) {
	if len(res) != 3 {
		return nil, fmt.Errorf("fig5a renders 3 points, got %d", len(res))
	}
	ms := measures(res)
	native, classic, intra := ms[0], ms[1], ms[2]
	t := &Table{
		ID:     "fig5a",
		Title:  fmt.Sprintf("HPCCG kernels, %d physical processes (normalized time; efficiency)", native.PhysProcs),
		Header: []string{"kernel", "OpenMPI", "SDR-MPI", "SDR eff", "intra", "intra eff", "intra updates"},
	}
	for _, k := range []string{"waxpby", "ddot", "sparsemv"} {
		base := native.Kernels[k].Wall
		cw := classic.Kernels[k].Wall
		iw := intra.Kernels[k].Wall
		t.AddRow(k,
			"1.00",
			ratio(cw, base), fmt.Sprintf("%.2f", float64(base)/float64(cw)),
			ratio(iw, base), fmt.Sprintf("%.2f", float64(base)/float64(iw)),
			ratio(intra.Kernels[k].UpdateWait, base),
		)
	}
	t.Note("paper: eff 1 / 0.5 / {waxpby 0.34, ddot 0.99, sparsemv 0.94}")
	t.Note("'intra updates' is non-overlapped update-transfer time, normalized to OpenMPI")
	return t, nil
}

// Fig5b regenerates Figure 5b: HPCCG total execution time under weak
// scaling, with intra-parallelization applied to ddot and sparsemv only.
// All proc-count/mode combinations run through one sweep.
func Fig5b(procCounts []int, iters int) (*Table, error) {
	var scs []scenario.Scenario
	for _, p := range procCounts {
		scs = append(scs, hpccgTriple(fmt.Sprintf("fig5b/%d", p), p, orDefault(iters, 10), false)...)
	}
	return runFigure(scs, fig5bRender)
}

func fig5bScenarios(procs, iters int) ([]scenario.Scenario, error) {
	counts := []int{128, 256, 512}
	if procs > 0 {
		counts = []int{procs}
	}
	var scs []scenario.Scenario
	for _, p := range counts {
		scs = append(scs, hpccgTriple(fmt.Sprintf("fig5b/%d", p), p, orDefault(iters, 10), false)...)
	}
	return scs, nil
}

func fig5bRender(scs []scenario.Scenario, res []Result) (*Table, error) {
	if len(res) == 0 || len(res)%3 != 0 || len(scs) != len(res) {
		return nil, fmt.Errorf("fig5b renders triples of points, got %d", len(res))
	}
	ms := measures(res)
	t := &Table{
		ID:     "fig5b",
		Title:  "HPCCG weak scaling (total execution time in seconds; efficiency)",
		Header: []string{"phys procs", "OpenMPI", "SDR-MPI", "SDR eff", "intra", "intra eff"},
	}
	for i := 0; i < len(ms)/3; i++ {
		native, classic, intra := ms[3*i], ms[3*i+1], ms[3*i+2]
		// The native point runs the full physical budget: its logical rank
		// count is the group's -procs value.
		t.AddRow(fmt.Sprintf("%d", scs[3*i].Logical),
			secs(native.AppTotal),
			secs(classic.AppTotal), fmt.Sprintf("%.2f", Efficiency(native, classic)),
			secs(intra.AppTotal), fmt.Sprintf("%.2f", Efficiency(native, intra)),
		)
	}
	t.Note("paper: SDR eff 0.5; intra eff 0.80 / 0.79 / 0.82 at 128 / 256 / 512")
	return t, nil
}

// fig6Scenarios builds one application's Figure 6 protocol: constant
// problem size, native on `logical` processes, replicated modes on twice
// the physical resources.
func fig6Scenarios(id, appName string, cfg any, logical int) []scenario.Scenario {
	raw := scenario.MustRaw(cfg)
	return []scenario.Scenario{
		{Name: id + "/native", App: appName, Config: raw, Mode: Native, Logical: logical},
		{Name: id + "/classic", App: appName, Config: raw, Mode: Classic, Logical: logical},
		{Name: id + "/intra", App: appName, Config: raw, Mode: Intra, Logical: logical},
	}
}

// fig6Render renders the Figure 6 table family.
func fig6Render(id, title, paperNote string) func([]scenario.Scenario, []Result) (*Table, error) {
	return func(scs []scenario.Scenario, res []Result) (*Table, error) {
		if len(res) != 3 {
			return nil, fmt.Errorf("%s renders 3 points, got %d", id, len(res))
		}
		ms := measures(res)
		native := ms[0]
		t := &Table{
			ID:     id,
			Title:  title,
			Header: []string{"config", "phys procs", "time (s)", "sections (s)", "others (s)", "efficiency"},
		}
		for _, m := range ms {
			t.AddRow(m.Mode.String(),
				fmt.Sprintf("%d", m.PhysProcs),
				secs(m.AppTotal),
				secs(m.Stats.SectionTime),
				secs(m.AppTotal-m.Stats.SectionTime),
				fmt.Sprintf("%.2f", Efficiency(native, m)),
			)
		}
		frac := float64(native.Stats.SectionTime) / float64(native.AppTotal)
		t.Note("sections cover %.0f%% of the native execution time", 100*frac)
		t.Note("%s", paperNote)
		return t, nil
	}
}

// Fig6a regenerates Figure 6a: AMG2013, 27-point stencil, PCG solver.
func Fig6a(logical int) (*Table, error) { return figures["fig6a"].Run(logical, 0) }

// Fig6b regenerates Figure 6b: AMG2013, 7-point stencil, GMRES solver.
func Fig6b(logical int) (*Table, error) { return figures["fig6b"].Run(logical, 0) }

// Fig6c regenerates Figure 6c: the GTC particle-in-cell code.
func Fig6c(logical int) (*Table, error) { return figures["fig6c"].Run(logical, 0) }

// Fig6d regenerates Figure 6d: MiniGhost (27-point stencil boundary
// exchange).
func Fig6d(logical int) (*Table, error) { return figures["fig6d"].Run(logical, 0) }

// CkptModelTable regenerates the §II motivation: cCR efficiency collapses
// with shrinking MTBF while replication-based schemes hold theirs. The
// table is analytic (internal/ckpt): it has no scenarios to simulate.
func CkptModelTable() *Table {
	t := &Table{
		ID:    "ckpt",
		Title: "Checkpoint/restart vs replication efficiency (Daly model, delta=R=600s)",
		Header: []string{"nodes", "node MTBF", "sys MTBF (h)", "cCR eff",
			"repl eff", "repl+intra eff (base 0.7)"},
	}
	const nodeMTBF = 5 * 365 * 24 * 3600.0 // 5 years in seconds
	const delta, rst = 600.0, 600.0
	for _, n := range []int{10000, 50000, 100000, 200000, 500000} {
		sysM := ckpt.SystemMTBF(n, nodeMTBF)
		t.AddRow(
			fmt.Sprintf("%d", n),
			"5y",
			fmt.Sprintf("%.1f", sysM/3600),
			fmt.Sprintf("%.2f", ckpt.BestEfficiency(delta, rst, sysM)),
			fmt.Sprintf("%.2f", ckpt.ReplicatedEfficiency(0.5, n/2, nodeMTBF, delta, rst)),
			fmt.Sprintf("%.2f", ckpt.ReplicatedEfficiency(0.7, n/2, nodeMTBF, delta, rst)),
		)
	}
	t.Note("replication uses half the nodes for replicas: efficiencies already include the x2 resources")
	t.Note("crossover: below the MTBF where cCR eff < 0.5, replication wins; intra-parallelization raises the bar to its base efficiency")
	return t
}
