package experiments

import (
	"fmt"

	"repro/internal/apps/amg"
	"repro/internal/apps/apputil"
	"repro/internal/apps/gtc"
	"repro/internal/apps/hpccg"
	"repro/internal/apps/minighost"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/sim"
)

// SizeDivisor shrinks per-axis grid extents for laptop-scale runs while the
// cost model charges the paper-scale problem (volume scales by its cube,
// halo planes by its square). 8 keeps every figure run under a second of
// real time while preserving time ratios.
const SizeDivisor = 8

// HPCCGPaperConfig returns the paper's HPCCG setup (§V-C): per-logical
// problem 128^3 in native runs, doubled (z-extent 256) under replication.
func HPCCGPaperConfig(mode Mode, iters int, intraWaxpby bool) hpccg.Config {
	k := float64(SizeDivisor)
	cfg := hpccg.Config{
		Nx: 128 / SizeDivisor, Ny: 128 / SizeDivisor, Nz: 128 / SizeDivisor,
		Iters: iters, Tasks: 8,
		Scale: k * k * k, PlaneScale: k * k,
		IntraDdot: true, IntraSparsemv: true, IntraWaxpby: intraWaxpby,
	}
	if mode.Replicated() {
		cfg.Nz *= 2 // per-logical problem size doubles (§V-C)
	}
	return cfg
}

func hpccgMain(cfg hpccg.Config) appMain {
	return func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
		res, err := hpccg.Run(rt, cfg)
		if err != nil {
			return 0, nil, core.Stats{}, err
		}
		return res.Total, res.Kernels, res.Stats, nil
	}
}

func amgMain(cfg amg.Config) appMain {
	return func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
		res, err := amg.Run(rt, cfg)
		if err != nil {
			return 0, nil, core.Stats{}, err
		}
		return res.Total, res.Kernels, res.Stats, nil
	}
}

func gtcMain(cfg gtc.Config) appMain {
	return func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
		res, err := gtc.Run(rt, cfg)
		if err != nil {
			return 0, nil, core.Stats{}, err
		}
		return res.Total, res.Kernels, res.Stats, nil
	}
}

func minighostMain(cfg minighost.Config) appMain {
	return func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
		res, err := minighost.Run(rt, cfg)
		if err != nil {
			return 0, nil, core.Stats{}, err
		}
		return res.Total, res.Kernels, res.Stats, nil
	}
}

// hpccgTriple is the three-mode protocol of Figure 5: native on the full
// physical-process budget, both replicated modes on half the logical ranks
// (same physical budget, degree 2).
func hpccgTriple(tag string, physProcs, iters int, intraWaxpby bool) []Spec {
	return []Spec{
		{Name: tag + "/native", Mode: Native, Logical: physProcs,
			App: HPCCG(HPCCGPaperConfig(Native, iters, intraWaxpby))},
		{Name: tag + "/classic", Mode: Classic, Logical: physProcs / 2,
			App: HPCCG(HPCCGPaperConfig(Classic, iters, intraWaxpby))},
		{Name: tag + "/intra", Mode: Intra, Logical: physProcs / 2,
			App: HPCCG(HPCCGPaperConfig(Intra, iters, intraWaxpby))},
	}
}

// Fig5a regenerates Figure 5a: normalized per-kernel execution time and
// efficiency for waxpby, ddot and sparsemv on 512 physical processes, with
// the time spent on non-overlapped update transfers.
func Fig5a(physProcs, iters int) (*Table, error) {
	ms, err := sweepMeasures(hpccgTriple("fig5a", physProcs, iters, true)...)
	if err != nil {
		return nil, err
	}
	native, classic, intra := ms[0], ms[1], ms[2]
	t := &Table{
		ID:     "fig5a",
		Title:  fmt.Sprintf("HPCCG kernels, %d physical processes (normalized time; efficiency)", physProcs),
		Header: []string{"kernel", "OpenMPI", "SDR-MPI", "SDR eff", "intra", "intra eff", "intra updates"},
	}
	for _, k := range []string{"waxpby", "ddot", "sparsemv"} {
		base := native.Kernels[k].Wall
		cw := classic.Kernels[k].Wall
		iw := intra.Kernels[k].Wall
		t.AddRow(k,
			"1.00",
			ratio(cw, base), fmt.Sprintf("%.2f", float64(base)/float64(cw)),
			ratio(iw, base), fmt.Sprintf("%.2f", float64(base)/float64(iw)),
			ratio(intra.Kernels[k].UpdateWait, base),
		)
	}
	t.Note("paper: eff 1 / 0.5 / {waxpby 0.34, ddot 0.99, sparsemv 0.94}")
	t.Note("'intra updates' is non-overlapped update-transfer time, normalized to OpenMPI")
	return t, nil
}

// Fig5b regenerates Figure 5b: HPCCG total execution time under weak
// scaling, with intra-parallelization applied to ddot and sparsemv only.
// All proc-count/mode combinations run through one sweep.
func Fig5b(procCounts []int, iters int) (*Table, error) {
	var specs []Spec
	for _, p := range procCounts {
		specs = append(specs, hpccgTriple(fmt.Sprintf("fig5b/%d", p), p, iters, false)...)
	}
	ms, err := sweepMeasures(specs...)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5b",
		Title:  "HPCCG weak scaling (total execution time in seconds; efficiency)",
		Header: []string{"phys procs", "OpenMPI", "SDR-MPI", "SDR eff", "intra", "intra eff"},
	}
	for i, p := range procCounts {
		native, classic, intra := ms[3*i], ms[3*i+1], ms[3*i+2]
		t.AddRow(fmt.Sprintf("%d", p),
			secs(native.AppTotal),
			secs(classic.AppTotal), fmt.Sprintf("%.2f", Efficiency(native, classic)),
			secs(intra.AppTotal), fmt.Sprintf("%.2f", Efficiency(native, intra)),
		)
	}
	t.Note("paper: SDR eff 0.5; intra eff 0.80 / 0.79 / 0.82 at 128 / 256 / 512")
	return t, nil
}

// fig6 runs one application in the Figure 6 protocol: constant problem
// size, native on `logical` processes, replicated modes on twice the
// physical resources.
func fig6(id, title string, logical int, app App, paperNote string) (*Table, error) {
	ms, err := sweepMeasures(
		Spec{Name: id + "/native", Mode: Native, Logical: logical, App: app},
		Spec{Name: id + "/classic", Mode: Classic, Logical: logical, App: app},
		Spec{Name: id + "/intra", Mode: Intra, Logical: logical, App: app},
	)
	if err != nil {
		return nil, err
	}
	native := ms[0]
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"config", "phys procs", "time (s)", "sections (s)", "others (s)", "efficiency"},
	}
	for _, m := range ms {
		t.AddRow(m.Mode.String(),
			fmt.Sprintf("%d", m.PhysProcs),
			secs(m.AppTotal),
			secs(m.Stats.SectionTime),
			secs(m.AppTotal-m.Stats.SectionTime),
			fmt.Sprintf("%.2f", Efficiency(native, m)),
		)
	}
	frac := float64(native.Stats.SectionTime) / float64(native.AppTotal)
	t.Note("sections cover %.0f%% of the native execution time", 100*frac)
	t.Note("%s", paperNote)
	return t, nil
}

// Fig6aConfig is the AMG 27-point PCG problem of Figure 6a.
func Fig6aConfig() amg.Config {
	k := float64(SizeDivisor)
	return amg.Config{
		Nx: 96 / SizeDivisor, Ny: 96 / SizeDivisor, Nz: 96 / SizeDivisor,
		Levels: 2, Solver: amg.PCG, Points: 27,
		Iters: 6, CoarseIters: 4, Tasks: 8, SetupFactor: 12,
		Scale: k * k * k, PlaneScale: k * k,
		IntraSweeps: true,
	}
}

// Fig6a regenerates Figure 6a: AMG2013, 27-point stencil, PCG solver.
func Fig6a(logical int) (*Table, error) {
	return fig6("fig6a", "AMG (27-point stencil, PCG solver)", logical,
		AMG(Fig6aConfig()),
		"paper: eff 1 / 0.48 / 0.61, sections = 62% of native time")
}

// Fig6bConfig is the AMG 7-point GMRES problem of Figure 6b.
func Fig6bConfig() amg.Config {
	cfg := Fig6aConfig()
	cfg.Solver = amg.GMRES
	cfg.Points = 7
	cfg.Iters = 8
	cfg.Restart = 10
	// The 7-point problem has far fewer nonzeros to sweep in the solve
	// phase, so the (fixed-cost) setup weighs relatively more.
	cfg.SetupFactor = 22
	return cfg
}

// Fig6b regenerates Figure 6b: AMG2013, 7-point stencil, GMRES solver.
func Fig6b(logical int) (*Table, error) {
	return fig6("fig6b", "AMG (7-point stencil, GMRES solver)", logical,
		AMG(Fig6bConfig()),
		"paper: eff 1 / 0.49 / 0.59, sections = 42% of native time")
}

// Fig6cConfig is the GTC problem of Figure 6c (mzetamax=64, npartdom=4,
// micell=200 scaled down).
func Fig6cConfig() gtc.Config {
	return gtc.Config{
		Cells: 64, PerCell: 25, Zones: 8,
		Steps: 6, Dt: 0.02, Scale: 64, ShiftFrac: 0.05, AuxBytes: 180,
		IntraCharge: true, IntraPush: true,
	}
}

// Fig6c regenerates Figure 6c: the GTC particle-in-cell code.
func Fig6c(logical int) (*Table, error) {
	return fig6("fig6c", "GTC (gyrokinetic particle-in-cell)", logical,
		GTC(Fig6cConfig()),
		"paper: eff 1 / 0.49 / 0.71, sections = 75% of native time, inout copy ~6% on affected tasks")
}

// Fig6dConfig is the MiniGhost problem of Figure 6d (128x128x64, 27-point).
func Fig6dConfig() minighost.Config {
	k := float64(SizeDivisor)
	return minighost.Config{
		Nx: 128 / SizeDivisor, Ny: 128 / SizeDivisor, Nz: 64 / SizeDivisor,
		Steps: 6, Vars: 4, ReduceVars: 4, Tasks: 8,
		Scale: k * k * k, PlaneScale: k * k,
		IntraGsum: true,
	}
}

// Fig6d regenerates Figure 6d: MiniGhost (27-point stencil boundary
// exchange).
func Fig6d(logical int) (*Table, error) {
	return fig6("fig6d", "MiniGhost (3D 27-point stencil)", logical,
		MiniGhost(Fig6dConfig()),
		"paper: eff 1 / 0.49 / 0.51, sections = 10% of native time")
}

// CkptModelTable regenerates the §II motivation: cCR efficiency collapses
// with shrinking MTBF while replication-based schemes hold theirs.
func CkptModelTable() *Table {
	t := &Table{
		ID:    "ckpt",
		Title: "Checkpoint/restart vs replication efficiency (Daly model, delta=R=600s)",
		Header: []string{"nodes", "node MTBF", "sys MTBF (h)", "cCR eff",
			"repl eff", "repl+intra eff (base 0.7)"},
	}
	const nodeMTBF = 5 * 365 * 24 * 3600.0 // 5 years in seconds
	const delta, rst = 600.0, 600.0
	for _, n := range []int{10000, 50000, 100000, 200000, 500000} {
		sysM := ckpt.SystemMTBF(n, nodeMTBF)
		t.AddRow(
			fmt.Sprintf("%d", n),
			"5y",
			fmt.Sprintf("%.1f", sysM/3600),
			fmt.Sprintf("%.2f", ckpt.BestEfficiency(delta, rst, sysM)),
			fmt.Sprintf("%.2f", ckpt.ReplicatedEfficiency(0.5, n/2, nodeMTBF, delta, rst)),
			fmt.Sprintf("%.2f", ckpt.ReplicatedEfficiency(0.7, n/2, nodeMTBF, delta, rst)),
		)
	}
	t.Note("replication uses half the nodes for replicas: efficiencies already include the x2 resources")
	t.Note("crossover: below the MTBF where cCR eff < 0.5, replication wins; intra-parallelization raises the bar to its base efficiency")
	return t
}
