package experiments

import "fmt"

// FigureIDs lists every regenerable figure of the evaluation, in
// presentation order. "all" in the CLIs expands to this list.
var FigureIDs = []string{
	"fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig6d",
	"ckpt", "granularity", "inout", "degree",
}

// FigureDescriptions maps figure ids to one-line summaries for CLI
// listings.
var FigureDescriptions = map[string]string{
	"fig5a":       "HPCCG kernels (waxpby/ddot/sparsemv), 512 physical processes",
	"fig5b":       "HPCCG weak scaling, 128/256/512 physical processes",
	"fig6a":       "AMG, 27-point stencil, PCG",
	"fig6b":       "AMG, 7-point stencil, GMRES",
	"fig6c":       "GTC particle-in-cell",
	"fig6d":       "MiniGhost 27-point stencil",
	"ckpt":        "checkpoint/restart vs replication model (Section II)",
	"granularity": "ablation: tasks per section (Section V-B discussion)",
	"inout":       "ablation: copy-restore vs atomic update application (Section III-B2)",
	"degree":      "extension: replication degree 1/2/3 on a constant problem",
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// RunFigure regenerates one figure by id, using the paper-scale defaults.
// procs overrides the physical process count and iters the solver
// iteration/step count when positive.
func RunFigure(id string, procs, iters int) (*Table, error) {
	switch id {
	case "fig5a":
		return Fig5a(orDefault(procs, 512), orDefault(iters, 10))
	case "fig5b":
		counts := []int{128, 256, 512}
		if procs > 0 {
			counts = []int{procs}
		}
		return Fig5b(counts, orDefault(iters, 10))
	case "fig6a":
		return Fig6a(orDefault(procs, 252))
	case "fig6b":
		return Fig6b(orDefault(procs, 252))
	case "fig6c":
		return Fig6c(orDefault(procs, 256))
	case "fig6d":
		return Fig6d(orDefault(procs, 256))
	case "ckpt":
		return CkptModelTable(), nil
	case "granularity":
		return AblationTaskGranularity(orDefault(procs, 64))
	case "inout":
		return AblationInoutMode(orDefault(procs, 64))
	case "degree":
		return AblationDegree(orDefault(procs, 32))
	default:
		return nil, fmt.Errorf("unknown experiment %q (try -list)", id)
	}
}
