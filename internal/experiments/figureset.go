package experiments

import (
	"fmt"

	"repro/internal/scenario"
)

// Figure is one regenerable figure of the evaluation: a scenario generator
// (nil for analytic tables) plus a renderer that turns the swept results
// back into the paper's table. The generator/renderer split is what lets a
// checked-in scenario file reproduce a figure exactly: the file carries
// the generated scenarios, and the renderer is looked up by id.
type Figure struct {
	ID          string
	Description string
	// Scenarios declares the figure's experiment points. procs and iters
	// override the paper scale when positive. Nil for analytic figures.
	Scenarios func(procs, iters int) ([]scenario.Scenario, error)
	// Render builds the figure table from the scenarios and their results
	// (in scenario order). Analytic figures are called with nil, nil.
	Render func(scs []scenario.Scenario, res []Result) (*Table, error)
}

// Run regenerates the figure: declare scenarios, sweep, render.
func (f Figure) Run(procs, iters int) (*Table, error) {
	if f.Scenarios == nil {
		return f.Render(nil, nil)
	}
	scs, err := f.Scenarios(procs, iters)
	if err != nil {
		return nil, err
	}
	return runFigure(scs, f.Render)
}

func runFigure(scs []scenario.Scenario, render func([]scenario.Scenario, []Result) (*Table, error)) (*Table, error) {
	res, err := SweepScenarios(0, scs)
	if err != nil {
		return nil, err
	}
	return render(scs, res)
}

// FigureIDs lists every regenerable figure of the evaluation, in
// presentation order. "all" in the CLIs expands to this list.
var FigureIDs = []string{
	"fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig6d",
	"ckpt", "granularity", "inout", "degree",
}

// figures is the registry the CLIs, scenario files and tests share.
var figures = map[string]Figure{
	"fig5a": {
		ID:          "fig5a",
		Description: "HPCCG kernels (waxpby/ddot/sparsemv), 512 physical processes",
		Scenarios:   fig5aScenarios,
		Render:      fig5aRender,
	},
	"fig5b": {
		ID:          "fig5b",
		Description: "HPCCG weak scaling, 128/256/512 physical processes",
		Scenarios:   fig5bScenarios,
		Render:      fig5bRender,
	},
	"fig6a": {
		ID:          "fig6a",
		Description: "AMG, 27-point stencil, PCG",
		Scenarios: func(procs, iters int) ([]scenario.Scenario, error) {
			return fig6Scenarios("fig6a", "amg", Fig6aConfig(), orDefault(procs, 252)), nil
		},
		Render: fig6Render("fig6a", "AMG (27-point stencil, PCG solver)",
			"paper: eff 1 / 0.48 / 0.61, sections = 62% of native time"),
	},
	"fig6b": {
		ID:          "fig6b",
		Description: "AMG, 7-point stencil, GMRES",
		Scenarios: func(procs, iters int) ([]scenario.Scenario, error) {
			return fig6Scenarios("fig6b", "amg", Fig6bConfig(), orDefault(procs, 252)), nil
		},
		Render: fig6Render("fig6b", "AMG (7-point stencil, GMRES solver)",
			"paper: eff 1 / 0.49 / 0.59, sections = 42% of native time"),
	},
	"fig6c": {
		ID:          "fig6c",
		Description: "GTC particle-in-cell",
		Scenarios: func(procs, iters int) ([]scenario.Scenario, error) {
			return fig6Scenarios("fig6c", "gtc", Fig6cConfig(), orDefault(procs, 256)), nil
		},
		Render: fig6Render("fig6c", "GTC (gyrokinetic particle-in-cell)",
			"paper: eff 1 / 0.49 / 0.71, sections = 75% of native time, inout copy ~6% on affected tasks"),
	},
	"fig6d": {
		ID:          "fig6d",
		Description: "MiniGhost 27-point stencil",
		Scenarios: func(procs, iters int) ([]scenario.Scenario, error) {
			return fig6Scenarios("fig6d", "minighost", Fig6dConfig(), orDefault(procs, 256)), nil
		},
		Render: fig6Render("fig6d", "MiniGhost (3D 27-point stencil)",
			"paper: eff 1 / 0.49 / 0.51, sections = 10% of native time"),
	},
	"ckpt": {
		ID:          "ckpt",
		Description: "checkpoint/restart vs replication model (Section II)",
		Render: func([]scenario.Scenario, []Result) (*Table, error) {
			return CkptModelTable(), nil
		},
	},
	"granularity": {
		ID:          "granularity",
		Description: "ablation: tasks per section (Section V-B discussion)",
		Scenarios:   granularityScenarios,
		Render:      granularityRender,
	},
	"inout": {
		ID:          "inout",
		Description: "ablation: copy-restore vs atomic update application (Section III-B2)",
		Scenarios:   inoutScenarios,
		Render:      inoutRender,
	},
	"degree": {
		ID:          "degree",
		Description: "extension: replication degree 1/2/3 on a constant problem",
		Scenarios:   degreeScenarios,
		Render:      degreeRender,
	},
}

// FigureDescriptions maps figure ids to one-line summaries for CLI
// listings, derived from the registry so there is one source of truth.
var FigureDescriptions = func() map[string]string {
	out := make(map[string]string, len(figures))
	for id, f := range figures {
		out[id] = f.Description
	}
	return out
}()

// FigureByID looks a figure up by id.
func FigureByID(id string) (Figure, error) {
	f, ok := figures[id]
	if !ok {
		return Figure{}, fmt.Errorf("unknown experiment %q (try -list)", id)
	}
	return f, nil
}

// RenderFigure renders already-swept results with the named figure's table
// builder: the path scenario files with a "figure" binding go through.
func RenderFigure(id string, scs []scenario.Scenario, res []Result) (*Table, error) {
	f, err := FigureByID(id)
	if err != nil {
		return nil, err
	}
	if f.Scenarios == nil {
		return nil, fmt.Errorf("figure %q is analytic: it has no scenarios to render", id)
	}
	return f.Render(scs, res)
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// RunFigure regenerates one figure by id, using the paper-scale defaults.
// procs overrides the physical process count and iters the solver
// iteration/step count when positive.
func RunFigure(id string, procs, iters int) (*Table, error) {
	f, err := FigureByID(id)
	if err != nil {
		return nil, err
	}
	return f.Run(procs, iters)
}
