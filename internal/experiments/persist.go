package experiments

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/store"
)

// resultKind namespaces sweep-point records in the store.
const resultKind = "result"

// measureWire is the persisted form of Measure. Every field — including
// the unexported sample count — is carried explicitly, so a decoded
// Measure is field-for-field the one the simulation produced and figure
// builders downstream of a cache hit see exactly what a fresh run sees.
// All fields are integers (sim.Time is int64), so the JSON round-trip is
// exact by construction.
type measureWire struct {
	Mode      Mode                           `json:"mode"`
	PhysProcs int                            `json:"phys_procs"`
	Wall      sim.Time                       `json:"wall"`
	AppTotal  sim.Time                       `json:"app_total"`
	Kernels   map[string]*apputil.KernelTime `json:"kernels"`
	Stats     core.Stats                     `json:"stats"`
	Samples   int                            `json:"samples"`
}

// resultWire is the payload stored at one sweep point's content address:
// the JSON Result plus the raw Measure the Result was derived from. The
// float64 fields of Result marshal shortest-round-trip, so decode(encode)
// is the identity and a cache hit emits byte-identical JSON.
type resultWire struct {
	Result  Result       `json:"result"`
	Measure *measureWire `json:"measure"`
}

func encodeResult(r Result) resultWire {
	m := r.Measure
	return resultWire{Result: r, Measure: &measureWire{
		Mode: m.Mode, PhysProcs: m.PhysProcs, Wall: m.Wall, AppTotal: m.AppTotal,
		Kernels: m.Kernels, Stats: m.Stats, Samples: m.samples,
	}}
}

// decodeResult rebuilds a Result from a stored payload. It reports false —
// a cache miss, so the point is re-simulated — when the payload does not
// decode or lacks its Measure (e.g. a record written by an older schema);
// a questionable record is never allowed to stand in for a simulation.
func decodeResult(raw json.RawMessage) (Result, bool) {
	var w resultWire
	if err := json.Unmarshal(raw, &w); err != nil || w.Measure == nil {
		return Result{}, false
	}
	r := w.Result
	mw := w.Measure
	r.Measure = &Measure{
		Mode: mw.Mode, PhysProcs: mw.PhysProcs, Wall: mw.Wall, AppTotal: mw.AppTotal,
		Kernels: mw.Kernels, Stats: mw.Stats, samples: mw.Samples,
	}
	// Restore the non-nil-map invariant a fresh run guarantees.
	if r.Measure.Kernels == nil {
		r.Measure.Kernels = map[string]*apputil.KernelTime{}
	}
	if r.Kernels == nil {
		r.Kernels = map[string]KernelResult{}
	}
	return r, true
}

// runOrLoad serves one unique sweep point: from the store when the spec is
// keyed and cached, from a fresh simulation otherwise. Fresh results of
// keyed specs are persisted, so the next process (or the merge run) hits.
// The bool reports whether the store served the point.
func runOrLoad(eng *sim.Engine, sc *mpi.Scratch, st *store.Store, s Spec, key string) (Result, bool, error) {
	if st == nil || key == "" {
		r, err := runSpec(eng, sc, s)
		return r, false, err
	}
	addr := store.Key(key)
	if raw, ok := st.Get(resultKind, addr); ok {
		if r, ok := decodeResult(raw); ok {
			return r, true, nil
		}
	}
	r, err := runSpec(eng, sc, s)
	if err != nil {
		return Result{}, false, err
	}
	if err := st.Put(resultKind, addr, encodeResult(r)); err != nil {
		return Result{}, false, err
	}
	return r, false, nil
}

// PopulateStats summarizes one shard's populate pass.
type PopulateStats struct {
	Specs     int `json:"specs"`     // sweep points requested
	Unique    int `json:"unique"`    // distinct simulations after the memo dedup
	Unkeyed   int `json:"unkeyed"`   // unique points with no content key (cannot be persisted)
	Owned     int `json:"owned"`     // unique keyed points this shard is responsible for
	Hits      int `json:"hits"`      // owned points served from the store
	Simulated int `json:"simulated"` // owned points simulated (and persisted) by this pass
}

// PopulateStore runs the slice of a spec list that shard sh owns and
// persists the results, without producing output: the build phase of a
// multi-process sweep. Every shard derives the identical deduplicated
// point list (the memo key is content-addressed), then claims unique
// points by index modulo the shard count — an exact partition, so N
// shards together simulate each unique point exactly once and their
// merged store lets a final plain run emit the single-process JSON with
// zero simulations.
//
// It returns the owned results in spec order alongside an ownership mask
// (ok[i] reports whether specs[i] resolved to an owned unique point), so
// callers can sanity-report what this shard measured. Unkeyed specs are
// skipped — their results cannot outlive the process — and are simulated
// by the merge run instead.
func PopulateStore(workers int, st *store.Store, sh store.Shard, specs []Spec) ([]Result, []bool, PopulateStats, error) {
	uniq, keys, uniqOf := dedupe(specs)
	stats := PopulateStats{Specs: len(specs), Unique: len(uniq)}
	owned := make([]bool, len(uniq))
	for j, key := range keys {
		if key == "" {
			stats.Unkeyed++
			continue
		}
		if sh.Owns(j) {
			owned[j] = true
			stats.Owned++
		}
	}

	runs := make([]Result, len(uniq))
	errs := make([]error, len(uniq))
	var hits, simulated atomic.Int64
	Progress.Plan(stats.Owned)
	forEachUnique(workers, len(uniq), func(eng *sim.Engine, sc *mpi.Scratch, j int) {
		if !owned[j] {
			return
		}
		defer Progress.Done()
		var hit bool
		runs[j], hit, errs[j] = runOrLoad(eng, sc, st, uniq[j], keys[j])
		if errs[j] != nil {
			return
		}
		if hit {
			hits.Add(1)
		} else {
			simulated.Add(1)
		}
	})
	stats.Hits = int(hits.Load())
	stats.Simulated = int(simulated.Load())

	for i, s := range specs {
		if err := errs[uniqOf[i]]; err != nil {
			return nil, nil, stats, fmt.Errorf("sweep %q: %w", s.Name, err)
		}
	}

	out := make([]Result, len(specs))
	ok := make([]bool, len(specs))
	seen := make([]bool, len(uniq))
	for i, s := range specs {
		j := uniqOf[i]
		if !owned[j] {
			continue
		}
		r := runs[j]
		r.Name = s.Name
		r.Mode = s.Mode.String()
		if seen[j] {
			r.Memoized = true
			r.ElapsedMS = 0
		}
		seen[j] = true
		out[i] = r
		ok[i] = true
	}
	return out, ok, stats, nil
}
