package experiments

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/store"
)

// openStore opens a store over dir, failing the test on error.
func openStore(t *testing.T, dir, label string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, label)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// storedSpecs is smallSpecs plus a duplicate point, so the memo overlay
// (Memoized, zeroed ElapsedMS) is exercised under the store.
func storedSpecs() []Spec {
	specs := smallSpecs()
	dup := specs[1]
	dup.Name = "classic-again"
	return append(specs, dup)
}

// TestSweepStoreWarmRunIsIdentical is the cache-correctness property at
// the experiments layer: a warm-store sweep must reproduce the populating
// sweep exactly — every Result field including ElapsedMS and the raw
// Measure — while performing zero simulations (misses=0, puts=0).
func TestSweepStoreWarmRunIsIdentical(t *testing.T) {
	dir := t.TempDir()
	cold, err := SweepStore(2, openStore(t, dir, "cold"), storedSpecs())
	if err != nil {
		t.Fatal(err)
	}

	warmStore := openStore(t, dir, "warm")
	warm, err := SweepStore(2, warmStore, storedSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm run diverges from the run that populated the store:\n%+v\nvs\n%+v", cold, warm)
	}
	coldJSON, _ := json.Marshal(cold)
	warmJSON, _ := json.Marshal(warm)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatalf("warm JSON differs:\n%s\nvs\n%s", coldJSON, warmJSON)
	}
	if st := warmStore.Stats(); st.Misses != 0 || st.Puts != 0 || st.Hits == 0 {
		t.Fatalf("warm run should simulate nothing: %+v", st)
	}
	// The memo overlay is independent of store warmth.
	if !warm[4].Memoized || warm[4].ElapsedMS != 0 {
		t.Fatalf("duplicate point lost its memo flag on the warm path: %+v", warm[4])
	}
	if warm[4].Measure != warm[1].Measure {
		t.Fatal("memo hits must share the served measure")
	}
}

// TestResultRoundTripExact pins the wire schema: a stored Result decodes
// field-for-field identical, including the unexported Measure internals
// that campaign efficiency math consumes after a cache hit.
func TestResultRoundTripExact(t *testing.T) {
	res, err := SweepN(1, smallSpecs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	raw, err := json.Marshal(encodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	back, ok := decodeResult(raw)
	if !ok {
		t.Fatal("round-trip decode failed")
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip not exact:\n%+v\nvs\n%+v", r, back)
	}
	if back.Measure.samples != r.Measure.samples {
		t.Fatalf("sample count lost: %d vs %d", back.Measure.samples, r.Measure.samples)
	}
	// A payload without its measure is a miss, never a half-result.
	if _, ok := decodeResult([]byte(`{"result":{"name":"x"}}`)); ok {
		t.Fatal("measureless payload must decode as a miss")
	}
	if _, ok := decodeResult([]byte(`{broken`)); ok {
		t.Fatal("garbage payload must decode as a miss")
	}
}

// TestPopulateStoreShardsPartitionAndMerge is the tentpole property at
// this layer: random shard counts and populate orders must partition the
// unique points exactly (each simulated once, by one shard), and a plain
// warm sweep over the merged store must reproduce the single-process
// sweep with zero misses.
func TestPopulateStoreShardsPartitionAndMerge(t *testing.T) {
	specs := storedSpecs()
	direct, err := SweepN(1, specs)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalize(t, direct)

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		shards := 2 + rng.Intn(3)
		ownedBy := make([]int, len(specs)) // shard claiming each spec index
		for i := range ownedBy {
			ownedBy[i] = -1
		}
		totalSim := 0
		for _, i := range rng.Perm(shards) {
			sh := store.Shard{Index: i, Count: shards}
			st := openStore(t, dir, sh.String())
			res, ok, stats, err := PopulateStore(2, st, sh, specs)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Specs != len(specs) || stats.Unique != 4 || stats.Unkeyed != 0 {
				t.Fatalf("shard %v stats: %+v", sh, stats)
			}
			if stats.Hits != 0 {
				t.Fatalf("disjoint shards must not hit each other's work: %+v", stats)
			}
			totalSim += stats.Simulated
			for j, owned := range ok {
				if !owned {
					continue
				}
				if ownedBy[j] != -1 {
					t.Fatalf("spec %d claimed by shards %d and %d", j, ownedBy[j], i)
				}
				ownedBy[j] = i
				if res[j].Name != specs[j].Name {
					t.Fatalf("owned result %d misnamed: %q", j, res[j].Name)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if totalSim != 4 {
			t.Fatalf("round %d: %d simulations across shards, want each unique point once (4)", round, totalSim)
		}
		for j, owner := range ownedBy {
			if owner == -1 {
				t.Fatalf("round %d: spec %d owned by no shard", round, j)
			}
		}

		mergeStore := openStore(t, dir, "merge")
		merged, err := SweepStore(1, mergeStore, specs)
		if err != nil {
			t.Fatal(err)
		}
		if got := canonicalize(t, merged); got != want {
			t.Fatalf("round %d: merged sweep diverges from single-process run:\n%s\nvs\n%s", round, got, want)
		}
		if st := mergeStore.Stats(); st.Misses != 0 || st.Puts != 0 {
			t.Fatalf("round %d: merge run had to simulate: %+v", round, st)
		}
	}
}

// TestPopulateStoreUnkeyedSpecs: a spec the memo cannot fingerprint is
// skipped by every shard (its result cannot outlive the process) and
// simulated by the merge run instead.
func TestPopulateStoreUnkeyedSpecs(t *testing.T) {
	unkeyed := Spec{Name: "hooked", Mode: Intra, Logical: 1,
		Opts: core.Options{Hooks: core.Hooks{BeforeTaskExec: func(int, int) {}}},
		App: App{Name: "x", key: "same", main: func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
			return rt.Now(), nil, core.Stats{}, nil
		}}}
	specs := append(smallSpecs(), unkeyed)
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		sh := store.Shard{Index: i, Count: 2}
		st := openStore(t, dir, sh.String())
		_, ok, stats, err := PopulateStore(1, st, sh, specs)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Unkeyed != 1 || ok[len(specs)-1] {
			t.Fatalf("shard %v must skip the unkeyed spec: %+v ok=%v", sh, stats, ok)
		}
	}
	st := openStore(t, dir, "merge")
	res, err := SweepStore(1, st, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) || res[len(specs)-1].Name != "hooked" {
		t.Fatalf("merge run lost the unkeyed spec: %+v", res)
	}
	// The merge run simulated exactly the unkeyed point: no store misses
	// (unkeyed specs never consult it), no puts.
	if s := st.Stats(); s.Misses != 0 || s.Puts != 0 {
		t.Fatalf("unkeyed spec leaked into the store: %+v", s)
	}
}

// TestStoreCorruptionResimulated closes the loop from disk damage to
// correct output: corrupt one stored record and the next sweep must
// detect it, re-simulate exactly that point, and emit results identical
// to the pristine run — wrong numbers are never served.
func TestStoreCorruptionResimulated(t *testing.T) {
	dir := t.TempDir()
	cold, err := SweepStore(1, openStore(t, dir, "cold"), storedSpecs())
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalize(t, cold)

	names, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(names) != 1 {
		t.Fatalf("want one shard file, have %v (%v)", names, err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the second record.
	first := bytes.IndexByte(data, '\n')
	second := first + 1 + bytes.IndexByte(data[first+1:], '\n')
	data[(first+second)/2] ^= 0x01
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st := openStore(t, dir, "repair")
	res, err := SweepStore(1, st, storedSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalize(t, res); got != want {
		t.Fatalf("post-corruption sweep diverges:\n%s\nvs\n%s", got, want)
	}
	s := st.Stats()
	if s.Corrupt != 1 {
		t.Fatalf("corruption not detected: %+v", s)
	}
	if s.Misses != 1 || s.Puts != 1 {
		t.Fatalf("exactly the damaged point must be re-simulated and re-persisted: %+v", s)
	}

	// A record that passes the checksum but decodes to no usable result is
	// equally a miss: poison one key with a measureless payload.
	dir2 := t.TempDir()
	bad := openStore(t, dir2, "bad")
	specs := smallSpecs()[:1]
	uniq, keys, _ := dedupe(specs)
	if err := bad.Put(resultKind, store.Key(keys[0]), map[string]any{"result": map[string]any{}}); err != nil {
		t.Fatal(err)
	}
	res2, err := SweepStore(1, bad, specs)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := SweepN(1, uniq)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalize(t, res2) != canonicalize(t, fresh) {
		t.Fatal("undecodable record served instead of re-simulating")
	}
}
