package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// pooledGrid is a small mixed grid — all three engine modes plus faulty
// classic points — shuffled with a fixed seed so the pooled engine sees
// modes in an adversarial order (intra after classic after native, faulty
// between clean) rather than the friendly grouped order of a real sweep.
func pooledGrid() []Spec {
	cfg := smallHPCCG(3)
	specs := []Spec{
		{Name: "native", Mode: Native, Logical: 8, App: HPCCG(cfg)},
		{Name: "classic", Mode: Classic, Logical: 4, App: HPCCG(cfg)},
		{Name: "intra", Mode: Intra, Logical: 4, App: HPCCG(cfg)},
		{Name: "intra-d3", Mode: Intra, Logical: 4, Degree: 3, App: HPCCG(cfg)},
	}
	for trial := 0; trial < 4; trial++ {
		d := fault.ExponentialDraw(4, 2, sim.Seconds(0.01), sim.Seconds(0.05), fault.TrialSeed(7, 0, trial))
		specs = append(specs, Spec{
			Name: "classic-faulty", Mode: Classic, Logical: 4,
			App: HPCCG(cfg), Fault: d.Schedule,
		})
	}
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })
	return specs
}

// TestPooledEngineRerunByteIdentical is the pooling property test: the
// shuffled grid run twice back-to-back on ONE pooled engine and scratch
// (every spec after the first inherits warm event nodes, parked goroutines
// and message pools from arbitrary predecessors) must produce Results
// byte-identical to a run where every spec gets a brand-new engine. Any
// state leaking across Engine.Reset or World.Reclaim shows up here as a
// diverging wall time or event count.
func TestPooledEngineRerunByteIdentical(t *testing.T) {
	specs := pooledGrid()

	fresh := make([]Result, len(specs))
	for i, s := range specs {
		r, err := runSpec(nil, nil, s)
		if err != nil {
			t.Fatalf("fresh %q: %v", s.Name, err)
		}
		fresh[i] = r
	}
	want := canonicalize(t, fresh)

	eng := sim.NewPooled()
	defer eng.Shutdown()
	sc := mpi.NewScratch()
	for pass := 0; pass < 2; pass++ {
		got := make([]Result, len(specs))
		for i, s := range specs {
			eng.Reset()
			r, err := runSpec(eng, sc, s)
			if err != nil {
				t.Fatalf("pooled pass %d %q: %v", pass, s.Name, err)
			}
			got[i] = r
		}
		if g := canonicalize(t, got); g != want {
			t.Fatalf("pooled pass %d diverges from fresh-engine run:\n%s\nvs\n%s", pass, g, want)
		}
	}
}
