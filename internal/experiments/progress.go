package experiments

import "sync/atomic"

// Progress is the process-wide work-unit counter behind cmd/sweep's
// -progress heartbeat. Layers that run simulation work through the pools
// plan units up front and mark them done as they finish: SweepStore counts
// each unique sweep point, PopulateStore each owned unique point, and the
// jobstream layer each (rate, scheduler, policy, trial) cell. Counts are
// cumulative over the process lifetime — a heartbeat only ever reads the
// ratio, so monotone is exactly what it wants.
var Progress ProgressCounter

// ProgressCounter tracks planned vs completed work units. The zero value
// is ready to use; all methods are safe for concurrent callers.
type ProgressCounter struct {
	done, total atomic.Int64
	status      atomic.Value // string: current phase, human-readable
}

// Plan records n upcoming work units.
func (p *ProgressCounter) Plan(n int) { p.total.Add(int64(n)) }

// Done records one completed work unit.
func (p *ProgressCounter) Done() { p.done.Add(1) }

// Snapshot reads the counters.
func (p *ProgressCounter) Snapshot() (done, total int64) {
	return p.done.Load(), p.total.Load()
}

// SetStatus publishes a one-line description of the current phase — the
// campaign and explore drivers report rounds, budget spent and the current
// widest-CI point here. Empty clears it.
func (p *ProgressCounter) SetStatus(s string) { p.status.Store(s) }

// Status reads the current phase line ("" when none was published).
func (p *ProgressCounter) Status() string {
	s, _ := p.status.Load().(string)
	return s
}
