package experiments

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// RecordTraces runs the spec once, fault-free, with every runner in
// recording mode, and returns the per-logical-rank logical-op traces. A
// spec carrying those traces in Spec.Replay then simulates without
// executing the application at all — the campaign's trial accelerator.
//
// Recording is limited to the section-free engine modes (native, classic):
// the intra engine's section protocol runs below the recording boundary
// and reacts to failures, so its trials must keep executing for real.
func RecordTraces(s Spec) (*core.TraceSet, error) {
	if s.App.main == nil {
		return nil, fmt.Errorf("spec %q has no application", s.Name)
	}
	c, err := NewCluster(ClusterConfig{
		Logical: s.Logical, Mode: s.Mode, Degree: s.Degree,
		Net: s.Net, Machine: s.Machine, IntraOpts: s.Opts,
	})
	if err != nil {
		return nil, err
	}
	ts := core.NewTraceSet(s.Logical)
	var firstErr error
	c.Launch(func(rt core.Runner) {
		tr, err := core.StartRecording(rt)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		total, _, _, err := s.App.main(rt)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("rank %d: %w", rt.LogicalRank(), err)
			}
			return
		}
		ts.Commit(rt.LogicalRank(), tr, total)
	})
	if _, err := c.Run(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if !ts.Complete() {
		return nil, fmt.Errorf("experiments: trace recording for %q left ranks without a trace", s.Name)
	}
	return ts, nil
}

// replayMain adapts a trace set to the appMain signature. Kernel timings
// are not re-derived (the kernels never run); the runner stats reflect the
// replay's own accounting.
func replayMain(ts *core.TraceSet) appMain {
	return func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
		total, err := core.Replay(rt, ts)
		return total, nil, *rt.Stats(), err
	}
}
