package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

var updateScenarios = flag.Bool("update-scenarios", false,
	"rewrite the figure files under scenarios/ from the figure generators")

const scenariosDir = "../../scenarios"

// figureFiles builds the checked-in scenario file of every simulated
// figure: the figure's scenarios at paper-scale defaults plus the figure
// binding that selects the renderer.
func figureFiles(t *testing.T) map[string]*scenario.File {
	t.Helper()
	out := map[string]*scenario.File{}
	for id, f := range figures {
		if f.Scenarios == nil {
			continue // analytic: nothing to simulate
		}
		scs, err := f.Scenarios(0, 0)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out[id] = &scenario.File{
			Name:        id,
			Description: f.Description,
			Figure:      id,
			Scenarios:   scs,
		}
	}
	return out
}

// TestScenarioFilesInSync proves each scenarios/<figure>.json equals what
// the figure generator declares, so `sweep -spec scenarios/fig5a.json`
// reproduces `sweep -figures fig5a` exactly. Run with -update-scenarios to
// regenerate the files after changing a figure.
func TestScenarioFilesInSync(t *testing.T) {
	for id, want := range figureFiles(t) {
		path := filepath.Join(scenariosDir, id+".json")
		wantJSON, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		wantJSON = append(wantJSON, '\n')
		if *updateScenarios {
			if err := os.WriteFile(path, wantJSON, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with `go test ./internal/experiments -run TestScenarioFilesInSync -update-scenarios`)", id, err)
		}
		// Compare canonically: both sides parsed and re-marshaled, so
		// formatting is irrelevant but every field is significant.
		canon := func(b []byte) string {
			f, err := scenario.Parse(b)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			c, err := json.Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			return string(c)
		}
		if canon(got) != canon(wantJSON) {
			t.Errorf("%s: scenarios/%s.json is out of sync with the figure generator "+
				"(regenerate with -update-scenarios)", id, id)
		}
	}
}

// TestAllScenarioFilesValid loads every checked-in scenario file — the
// figure reproductions, the smoke grid and the beyond-paper grids — and
// validates the full expansion.
func TestAllScenarioFilesValid(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("expected the checked-in scenario files, found %d", len(paths))
	}
	for _, path := range paths {
		f, err := scenario.Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if f.Workload != nil {
			// Workload files run through jobstream, not Expand; the
			// scheduler/policy names are checked by the jobstream tests.
			if err := f.Workload.Validate(); err != nil {
				t.Errorf("%s: %v", path, err)
			}
			continue
		}
		scs, err := f.Expand()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(scs) == 0 {
			t.Errorf("%s: empty expansion", path)
		}
		if f.Figure != "" {
			if _, err := FigureByID(f.Figure); err != nil {
				t.Errorf("%s: %v", path, err)
			}
		}
	}
}

// TestSpecFileReproducesFigure is the figure-equivalence property at test
// scale: rendering a figure from a scenario file written by the generator
// produces the byte-identical table to running the figure directly.
func TestSpecFileReproducesFigure(t *testing.T) {
	const procs, iters = 16, 3
	direct, err := RunFigure("fig5b", procs, iters)
	if err != nil {
		t.Fatal(err)
	}
	// The file path: generate scenarios, serialize, reload, sweep, render —
	// exactly what `sweep -spec` does.
	scs, err := figures["fig5b"].Scenarios(procs, iters)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(&scenario.File{Figure: "fig5b", Scenarios: scs})
	if err != nil {
		t.Fatal(err)
	}
	f, err := scenario.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := f.Expand()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SweepScenarios(0, loaded)
	if err != nil {
		t.Fatal(err)
	}
	viaFile, err := RenderFigure("fig5b", loaded, res)
	if err != nil {
		t.Fatal(err)
	}
	if viaFile.String() != direct.String() {
		t.Fatalf("file path diverges from figure path:\n%s\nvs\n%s", viaFile.String(), direct.String())
	}
}
