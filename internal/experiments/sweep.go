package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps/amg"
	"repro/internal/apps/apputil"
	"repro/internal/apps/gtc"
	"repro/internal/apps/hpccg"
	"repro/internal/apps/minighost"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// App is one benchmark application bound to a concrete configuration,
// ready to run on a sweep point. The key is a canonical content
// fingerprint of the configuration (scenario.AppFingerprint): two Apps
// with equal keys produce identical simulations, which is what lets the
// sweep memoize repeated points.
type App struct {
	Name string
	key  string
	main appMain
}

// AppFor binds a registered application to a decoded configuration (the
// pointer type the registry's New returns).
func AppFor(name string, cfg any) (App, error) {
	ent, err := scenario.AppByName(name)
	if err != nil {
		return App{}, err
	}
	run, err := ent.Run(cfg)
	if err != nil {
		return App{}, err
	}
	key, err := scenario.AppFingerprint(name, cfg)
	if err != nil {
		return App{}, err
	}
	return App{Name: name, key: key, main: appMain(run)}, nil
}

// mustApp is AppFor for the typed constructors below, whose registry
// entries are guaranteed by this package's app imports.
func mustApp(name string, cfg any) App {
	app, err := AppFor(name, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return app
}

// HPCCG wraps the HPCCG conjugate-gradient mini-app for a sweep.
func HPCCG(cfg hpccg.Config) App { return mustApp("hpccg", &cfg) }

// AMG wraps the AMG2013 multigrid mini-app for a sweep.
func AMG(cfg amg.Config) App { return mustApp("amg", &cfg) }

// GTC wraps the GTC particle-in-cell code for a sweep.
func GTC(cfg gtc.Config) App { return mustApp("gtc", &cfg) }

// MiniGhost wraps the MiniGhost stencil mini-app for a sweep.
func MiniGhost(cfg minighost.Config) App { return mustApp("minighost", &cfg) }

// Spec is one sweep point: a platform, a fault-tolerance mode, and an
// application. The zero values of Degree, Net and Machine select the
// paper's defaults (degree 2, InfiniBand 20G, Grid'5000 node).
type Spec struct {
	Name    string // label carried into the Result
	Mode    Mode
	Logical int // logical MPI ranks
	Degree  int // replication degree (0 = default 2)
	Opts    core.Options
	Net     simnet.Config
	Machine perf.Machine
	App     App

	// Fault, when non-nil and non-empty, arms the crash schedule on the
	// cluster before launch (replicated modes only). Schedules participate
	// in the memo key via their content fingerprint, so two trials drawing
	// identical schedules — in particular, fault-free draws — are simulated
	// once.
	Fault *fault.Schedule

	// BatchCompute runs the point on a batched-compute world: compute-only
	// stretches between communications collapse into one engine event
	// instead of one per kernel. Simulated outcomes (every virtual time,
	// every message, every crash consequence) are identical to the
	// unbatched run; only the diagnostic SimEvents counter shrinks. It is
	// therefore an execution strategy, not a semantic parameter, and is
	// excluded from the memo key — callers that serialize SimEvents (the
	// JSON sweep reports) must leave it off.
	BatchCompute bool

	// Replay, when non-nil, substitutes the application's main with a
	// replay of the recorded logical-op traces (RecordTraces): the
	// simulated makespan, crash consequences and physical layout are
	// identical to executing the application, but its kernels never run.
	// Like BatchCompute it is an execution strategy excluded from the memo
	// key; unlike it, app-internal diagnostics (kernel timings, section
	// stats, per-arg update bytes) are not re-derived, so only callers
	// that consume timing aggregates — the failure campaigns — may arm it.
	Replay *core.TraceSet
}

// key returns the memo fingerprint of the spec — the canonical JSON
// encoding of every semantic field — or "" when the spec is not memoizable
// (custom scheduler or hooks carry code the key cannot see, and an unknown
// mode cannot be encoded).
func (s Spec) key() string {
	o := s.Opts
	if s.App.key == "" || o.Sched != nil ||
		o.Hooks.BeforeTaskExec != nil || o.Hooks.AfterTaskExec != nil || o.Hooks.AfterArgSend != nil {
		return ""
	}
	// Normalize the degree the same way the cluster resolves it, so a
	// degree-0 (default) spec memo-hits its spelled-out twin and native
	// specs key identically whatever degree tag they carry.
	degree := s.Degree
	if !s.Mode.Replicated() {
		degree = 1
	} else if degree == 0 {
		degree = scenario.DefaultDegree
	}
	// A ccr point's cluster simulation IS the native run (checkpointing is
	// replayed outside the simulator), so it keys as native and a campaign's
	// ccr reference memo-hits its own native baseline.
	mode := s.Mode
	if mode == scenario.CCR {
		mode = scenario.Native
	}
	k, err := json.Marshal(struct {
		Mode      Mode           `json:"mode"`
		Logical   int            `json:"logical"`
		Degree    int            `json:"degree"`
		Inout     core.InoutMode `json:"inout"`
		CostScale float64        `json:"cost_scale"`
		Net       simnet.Config  `json:"net"`
		Machine   perf.Machine   `json:"machine"`
		Fault     string         `json:"fault"`
		App       string         `json:"app"`
	}{mode, s.Logical, degree, o.Mode, o.CostScale, s.Net, s.Machine,
		s.Fault.Fingerprint(), s.App.key})
	if err != nil {
		return ""
	}
	return string(k)
}

// Key returns the spec's canonical content fingerprint — the memo and
// store key — or "" when the spec is not memoizable. Exported for layers
// that memoize per-spec simulations themselves (the jobstream runner).
func (s Spec) Key() string { return s.key() }

// SpecFor converts a validated Scenario into a runnable sweep point: the
// thin adapter every scenario consumer (CLIs, figures, scenario files,
// campaigns) goes through.
func SpecFor(sc scenario.Scenario) (Spec, error) {
	if err := sc.Validate(); err != nil {
		return Spec{}, err
	}
	if sc.Fault != nil && sc.Fault.MTBFSeconds > 0 {
		return Spec{}, fmt.Errorf("scenario %q: an MTBF fault model needs a campaign (-mode campaign), a single sweep point cannot run it", sc.Name)
	}
	cfg, err := sc.AppConfig()
	if err != nil {
		return Spec{}, err
	}
	app, err := AppFor(sc.App, cfg)
	if err != nil {
		return Spec{}, err
	}
	net, machine, err := sc.Platform()
	if err != nil {
		return Spec{}, err
	}
	opts, err := sc.Intra.CoreOptions()
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Name: sc.Name, Mode: sc.Mode, Logical: sc.Logical, Degree: sc.Degree,
		Opts: opts, Net: net, Machine: machine, App: app,
		Fault: sc.Fault.Schedule(),
	}, nil
}

// SweepScenarios validates and runs a scenario list through the sweep
// pool, in order.
func SweepScenarios(workers int, scs []scenario.Scenario) ([]Result, error) {
	return SweepScenariosStore(workers, nil, scs)
}

// SweepScenariosStore is SweepScenarios backed by a persistent result
// store (nil = in-memory only).
func SweepScenariosStore(workers int, st *store.Store, scs []scenario.Scenario) ([]Result, error) {
	specs, err := SpecsFor(scs)
	if err != nil {
		return nil, err
	}
	return SweepStore(workers, st, specs)
}

// SpecsFor converts a scenario list into sweep points, in order.
func SpecsFor(scs []scenario.Scenario) ([]Spec, error) {
	specs := make([]Spec, len(scs))
	for i, sc := range scs {
		spec, err := SpecFor(sc)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	return specs, nil
}

// KernelResult is the JSON view of one kernel's timing.
type KernelResult struct {
	WallSeconds       float64 `json:"wall_seconds"`
	UpdateWaitSeconds float64 `json:"update_wait_seconds"`
	Calls             int     `json:"calls"`
}

// Result is the outcome of one sweep point. All virtual times are reported
// in seconds; ElapsedMS is the real time the simulation took (zero when the
// point was served from the memo).
type Result struct {
	Name              string                  `json:"name"`
	App               string                  `json:"app"`
	Mode              string                  `json:"mode"`
	Logical           int                     `json:"logical"`
	Degree            int                     `json:"degree"`
	PhysProcs         int                     `json:"phys_procs"`
	WallSeconds       float64                 `json:"wall_seconds"`
	AppSeconds        float64                 `json:"app_seconds"`
	SectionSeconds    float64                 `json:"section_seconds"`
	UpdateWaitSeconds float64                 `json:"update_wait_seconds"`
	CopySeconds       float64                 `json:"copy_seconds"`
	Sections          int                     `json:"sections"`
	TasksRun          int                     `json:"tasks_run"`
	TasksReceived     int                     `json:"tasks_received"`
	UpdateBytes       int64                   `json:"update_bytes"`
	SimEvents         uint64                  `json:"sim_events"`
	SimProcs          int                     `json:"sim_procs"`
	Crashes           int                     `json:"crashes,omitempty"`
	ElapsedMS         float64                 `json:"elapsed_ms"`
	Memoized          bool                    `json:"memoized"`
	Kernels           map[string]KernelResult `json:"kernels,omitempty"`

	// Measure is the raw aggregate, for figure builders that need
	// sim.Time arithmetic. Memoized results share one Measure.
	Measure *Measure `json:"-"`
}

// KernelResults converts per-kernel timings to their JSON view. Shared by
// the sweep runner and the CLI reports so there is one wire schema.
func KernelResults(kernels map[string]*apputil.KernelTime) map[string]KernelResult {
	out := make(map[string]KernelResult, len(kernels))
	for name, kt := range kernels {
		out[name] = KernelResult{
			WallSeconds:       kt.Wall.Seconds(),
			UpdateWaitSeconds: kt.UpdateWait.Seconds(),
			Calls:             kt.Calls,
		}
	}
	return out
}

// Sweep runs every spec and returns the results in spec order. Points run
// concurrently on up to GOMAXPROCS workers, each worker owning its own
// sim.Engine; engines share no state, so results are identical to a serial
// run. Specs with equal content keys are simulated once and the remaining
// occurrences served from an in-memory memo.
func Sweep(specs []Spec) ([]Result, error) { return SweepN(0, specs) }

// SweepN is Sweep with an explicit worker count (0 = GOMAXPROCS).
func SweepN(workers int, specs []Spec) ([]Result, error) {
	return SweepStore(workers, nil, specs)
}

// dedupe maps each spec to the unique run that serves it: uniq is the
// distinct-simulation list, keys its memo fingerprints ("" = not
// memoizable), and uniqOf[i] the index into uniq serving specs[i].
// Deduplicating up front (rather than racing a singleflight) keeps memo
// behavior independent of worker scheduling — and, because the keys are
// content fingerprints, every process sweeping the same spec list derives
// the identical uniq list, which is what lets shards partition it by
// index with no coordination.
func dedupe(specs []Spec) (uniq []Spec, keys []string, uniqOf []int) {
	firstIdx := map[string]int{}
	uniqOf = make([]int, len(specs))
	for i, s := range specs {
		k := s.key()
		if k != "" {
			if j, ok := firstIdx[k]; ok {
				uniqOf[i] = j
				continue
			}
			firstIdx[k] = len(uniq)
		}
		uniqOf[i] = len(uniq)
		uniq = append(uniq, s)
		keys = append(keys, k)
	}
	return uniq, keys, uniqOf
}

// forEachUnique runs fn(eng, sc, j) for j in [0, n) on a pool of workers.
// Each worker owns one pooled simulation engine and one mpi scratch for its
// whole lifetime: fn receives the engine Reset (time zero, empty queue,
// goroutines parked in the idle pool) and the scratch warm, so consecutive
// specs on a worker reuse the engine's event free list, its process
// goroutines and the message layer's request/message/transfer pools instead
// of rebuilding them per spec.
func forEachUnique(workers, n int, fn func(eng *sim.Engine, sc *mpi.Scratch, j int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := sim.NewPooled()
			defer eng.Shutdown()
			sc := mpi.NewScratch()
			for {
				j := int(next.Add(1))
				if j >= n {
					return
				}
				eng.Reset()
				fn(eng, sc, j)
			}
		}()
	}
	wg.Wait()
}

// SweepStore is SweepN consulting (and populating) a persistent result
// store behind the in-memory memo: a unique point found in the store skips
// simulation entirely, a simulated point is appended for later processes.
// A nil store is the plain in-memory sweep. Results are identical either
// way — stored payloads round-trip the Result and its Measure exactly —
// except that a store-served point reports the ElapsedMS of the run that
// originally simulated it (the memo overlay below is applied after store
// lookup, so Memoized flags are untouched by store warmth).
func SweepStore(workers int, st *store.Store, specs []Spec) ([]Result, error) {
	uniq, keys, uniqOf := dedupe(specs)
	runs := make([]Result, len(uniq))
	errs := make([]error, len(uniq))
	Progress.Plan(len(uniq))
	forEachUnique(workers, len(uniq), func(eng *sim.Engine, sc *mpi.Scratch, j int) {
		runs[j], _, errs[j] = runOrLoad(eng, sc, st, uniq[j], keys[j])
		Progress.Done()
	})

	// Report the first failure in spec order, so the error is the same
	// whatever the worker count.
	for i, s := range specs {
		if err := errs[uniqOf[i]]; err != nil {
			return nil, fmt.Errorf("sweep %q: %w", s.Name, err)
		}
	}

	out := make([]Result, len(specs))
	seen := make([]bool, len(uniq))
	for i, s := range specs {
		r := runs[uniqOf[i]]
		r.Name = s.Name
		// The memo can serve one spec from another mode's identical
		// simulation (ccr <-> native); the reported mode is always the
		// spec's own.
		r.Mode = s.Mode.String()
		if seen[uniqOf[i]] {
			r.Memoized = true
			r.ElapsedMS = 0
		}
		seen[uniqOf[i]] = true
		out[i] = r
	}
	return out, nil
}

// runSpec simulates one sweep point. eng, when non-nil, is a Reset pooled
// engine supplied by the worker pool, and sc an mpi scratch shared across
// the worker's specs; nil runs on private ones. The simulated outcome is
// identical either way — reuse recycles event nodes, goroutines and message
// buffers, never state the simulation can observe.
func runSpec(eng *sim.Engine, sc *mpi.Scratch, s Spec) (Result, error) {
	if s.App.main == nil {
		return Result{}, fmt.Errorf("spec %q has no application", s.Name)
	}
	main := s.App.main
	if s.Replay != nil {
		main = replayMain(s.Replay)
	}
	crashes := 0
	if s.Fault != nil {
		crashes = len(s.Fault.Crashes)
	}
	if crashes > 0 && !s.Mode.Replicated() {
		return Result{}, fmt.Errorf("spec %q: fault schedule requires a replicated mode", s.Name)
	}
	start := time.Now()
	c, err := NewCluster(ClusterConfig{
		Logical: s.Logical, Mode: s.Mode, Degree: s.Degree,
		Net: s.Net, Machine: s.Machine, IntraOpts: s.Opts,
		SendLog: crashes > 0,
		Engine:  eng, Scratch: sc, BatchCompute: s.BatchCompute,
	})
	if err != nil {
		return Result{}, err
	}
	if crashes > 0 {
		s.Fault.Install(c.E, c.Sys)
	}
	m := &Measure{Mode: s.Mode, Kernels: map[string]*apputil.KernelTime{}}
	var firstErr error
	// Wall time is the completion of the last (surviving) replica, not the
	// engine's queue-drain time: a fault schedule may arm crashes beyond
	// the program's end (e.g. a campaign horizon larger than the actual
	// makespan), and those no-op events must not stretch the measured run.
	var lastEnd sim.Time
	c.Launch(func(rt core.Runner) {
		total, kernels, st, err := main(rt)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("rank %d: %w", rt.LogicalRank(), err)
			}
			return
		}
		m.add(total, kernels, st)
		if now := rt.Now(); now > lastEnd {
			lastEnd = now
		}
	})
	if _, err := c.Run(); err != nil {
		return Result{}, err
	}
	if sc != nil {
		// The world dies with this call; hand its pooled inventory back to
		// the worker's scratch so the next spec starts warm.
		c.W.Reclaim()
	}
	if firstErr != nil {
		return Result{}, firstErr
	}
	m.finish(lastEnd, c.PhysProcs())

	degree := s.Degree
	if degree == 0 {
		degree = 2
	}
	if !s.Mode.Replicated() {
		degree = 1
	}
	es := c.E.Stats()
	r := Result{
		Name:              s.Name,
		App:               s.App.Name,
		Mode:              s.Mode.String(),
		Logical:           s.Logical,
		Degree:            degree,
		PhysProcs:         m.PhysProcs,
		WallSeconds:       m.Wall.Seconds(),
		AppSeconds:        m.AppTotal.Seconds(),
		SectionSeconds:    m.Stats.SectionTime.Seconds(),
		UpdateWaitSeconds: m.Stats.UpdateWait.Seconds(),
		CopySeconds:       m.Stats.CopyTime.Seconds(),
		Sections:          m.Stats.Sections,
		TasksRun:          m.Stats.TasksRun,
		TasksReceived:     m.Stats.TasksReceived,
		UpdateBytes:       m.Stats.UpdateBytes,
		SimEvents:         es.Events,
		SimProcs:          es.Procs,
		Crashes:           crashes,
		ElapsedMS:         float64(time.Since(start).Microseconds()) / 1e3,
		Kernels:           KernelResults(m.Kernels),
		Measure:           m,
	}
	return r, nil
}
