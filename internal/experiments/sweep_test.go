package experiments

import (
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/apps/apputil"
	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/perf"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func smallHPCCG(iters int) hpccg.Config {
	return hpccg.Config{
		Nx: 8, Ny: 8, Nz: 8, Iters: iters, Tasks: 8,
		Scale: 64, PlaneScale: 16,
		IntraDdot: true, IntraSparsemv: true,
	}
}

func smallSpecs() []Spec {
	cfg := smallHPCCG(4)
	return []Spec{
		{Name: "native", Mode: Native, Logical: 8, App: HPCCG(cfg)},
		{Name: "classic", Mode: Classic, Logical: 4, App: HPCCG(cfg)},
		{Name: "intra", Mode: Intra, Logical: 4, App: HPCCG(cfg)},
		{Name: "intra-d3", Mode: Intra, Logical: 4, Degree: 3, App: HPCCG(cfg)},
	}
}

// canonicalize strips the fields that legitimately vary between runs
// (real-time measurements) so the rest can be compared byte for byte.
func canonicalize(t *testing.T, res []Result) string {
	t.Helper()
	for i := range res {
		res[i].ElapsedMS = 0
	}
	b, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSweepDeterministicAcrossWorkers runs the same spec list serially and
// at several worker counts: results must be identical in content and order.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	specs := smallSpecs()
	serial, err := SweepN(1, specs)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalize(t, serial)
	for _, workers := range []int{2, 4, 8} {
		res, err := SweepN(workers, specs)
		if err != nil {
			t.Fatal(err)
		}
		if got := canonicalize(t, res); got != want {
			t.Fatalf("workers=%d diverges from serial run:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestSweepResultFields spot-checks the structured result of one point.
func TestSweepResultFields(t *testing.T) {
	res, err := Sweep(smallSpecs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Name != "native" || r.App != "hpccg" || r.Mode != "Open MPI" {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	if r.Logical != 8 || r.PhysProcs != 8 || r.Degree != 1 {
		t.Fatalf("size fields wrong: %+v", r)
	}
	if r.AppSeconds <= 0 || r.WallSeconds < r.AppSeconds {
		t.Fatalf("time fields wrong: %+v", r)
	}
	if r.SimEvents == 0 || r.SimProcs != 8 {
		t.Fatalf("engine stats wrong: %+v", r)
	}
	if len(r.Kernels) == 0 || r.Kernels["ddot"].Calls == 0 {
		t.Fatalf("kernels missing: %+v", r.Kernels)
	}
	if r.Memoized {
		t.Fatal("sole run cannot be a memo hit")
	}
	if r.Measure == nil {
		t.Fatal("raw measure not attached")
	}
}

// TestSweepMemo checks that identical points are simulated once: later
// occurrences are flagged, share the first run's measure, and the
// application body does not execute again.
func TestSweepMemo(t *testing.T) {
	var runs atomic.Int32
	counted := func(key string) App {
		return App{Name: "counted", key: key, main: func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
			runs.Add(1)
			rt.Compute(perf.Work{Flops: 1e6})
			return rt.Now(), nil, core.Stats{}, nil
		}}
	}
	specs := []Spec{
		{Name: "a", Mode: Native, Logical: 2, App: counted("k1")},
		{Name: "b", Mode: Native, Logical: 2, App: counted("k1")}, // dup of a
		{Name: "c", Mode: Native, Logical: 2, App: counted("k2")}, // different app key
		{Name: "d", Mode: Intra, Logical: 2, App: counted("k1")},  // different mode
		{Name: "e", Mode: Native, Logical: 2, App: counted("k1")}, // dup of a
	}
	res, err := Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	// a, c: 2 logical ranks each; d: 2 logical x 2 replicas. b and e memoized.
	if got := runs.Load(); got != 2+2+4 {
		t.Fatalf("app ran %d times, want 8 (memo misses only)", got)
	}
	wantMemo := map[string]bool{"a": false, "b": true, "c": false, "d": false, "e": true}
	for _, r := range res {
		if r.Memoized != wantMemo[r.Name] {
			t.Fatalf("%s: memoized = %v, want %v", r.Name, r.Memoized, wantMemo[r.Name])
		}
	}
	if res[1].Measure != res[0].Measure || res[4].Measure != res[0].Measure {
		t.Fatal("memo hits must share the original measure")
	}
	if res[2].Measure == res[0].Measure || res[3].Measure == res[0].Measure {
		t.Fatal("distinct points must not share measures")
	}
	if res[1].ElapsedMS != 0 {
		t.Fatal("memo hits should report zero elapsed time")
	}
	if res[1].Name != "b" {
		t.Fatal("memo hits keep their own spec name")
	}
}

// TestSweepMemoDegreeNormalization: a default-degree spec must memo-hit
// its spelled-out degree-2 twin, and native specs key identically whatever
// degree tag they carry (native ignores the degree).
func TestSweepMemoDegreeNormalization(t *testing.T) {
	cfg := smallHPCCG(2)
	res, err := Sweep([]Spec{
		{Name: "default-degree", Mode: Intra, Logical: 2, App: HPCCG(cfg)},
		{Name: "explicit-degree", Mode: Intra, Logical: 2, Degree: 2, App: HPCCG(cfg)},
		{Name: "native-tagged", Mode: Native, Logical: 2, Degree: 3, App: HPCCG(cfg)},
		{Name: "native-plain", Mode: Native, Logical: 2, App: HPCCG(cfg)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Memoized || res[1].Measure != res[0].Measure {
		t.Fatal("degree 0 and degree 2 describe the same replicated simulation")
	}
	if !res[3].Memoized || res[3].Measure != res[2].Measure {
		t.Fatal("native specs must key identically whatever degree they carry")
	}
}

// TestFingerprintMatchesMemoKey pins scenario.Fingerprint and the sweep
// memo key together: for every pair of scenarios, the two encodings must
// agree on whether the points are the same simulation. This is the guard
// against the two canonical encoders drifting apart.
func TestFingerprintMatchesMemoKey(t *testing.T) {
	cfg := smallHPCCG(2)
	cfg2 := cfg
	cfg2.Iters = 3
	scs := []scenario.Scenario{
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Intra, Logical: 2},
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Intra, Logical: 2, Degree: 2},
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Intra, Logical: 2, Degree: 3},
		{App: "hpccg", Config: scenario.MustRaw(cfg2), Mode: Intra, Logical: 2},
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Classic, Logical: 2},
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Intra, Logical: 4},
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Intra, Logical: 2, Net: "eth10g"},
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Intra, Logical: 2, Machine: "skylake"},
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Intra, Logical: 2,
			Intra: &scenario.IntraOptions{Inout: "atomic"}},
		// An explicit inout "copy" is the omitted default: both encoders
		// must key it together with the bare scenario above.
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Intra, Logical: 2,
			Intra: &scenario.IntraOptions{Inout: "copy"}},
		{App: "hpccg", Config: scenario.MustRaw(cfg), Mode: Intra, Logical: 2,
			Fault: &scenario.FaultSpec{Crashes: []scenario.Crash{{Logical: 0, Lane: 1, AtSeconds: 0.1}}}},
	}
	fps := make([]string, len(scs))
	keys := make([]string, len(scs))
	for i, sc := range scs {
		fp, err := sc.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = fp
		spec, err := SpecFor(sc)
		if err != nil {
			t.Fatal(err)
		}
		if keys[i] = spec.key(); keys[i] == "" {
			t.Fatalf("scenario %d is unexpectedly not memoizable", i)
		}
	}
	for i := range scs {
		for j := range scs {
			if (fps[i] == fps[j]) != (keys[i] == keys[j]) {
				t.Fatalf("scenarios %d and %d: Fingerprint says same=%v, memo key says same=%v",
					i, j, fps[i] == fps[j], keys[i] == keys[j])
			}
		}
	}
}

// TestSweepNoMemoForHookedSpecs checks that specs carrying code the key
// cannot fingerprint (hooks, custom schedulers) are never deduplicated.
func TestSweepNoMemoForHookedSpecs(t *testing.T) {
	var runs atomic.Int32
	app := App{Name: "x", key: "same", main: func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
		runs.Add(1)
		return rt.Now(), nil, core.Stats{}, nil
	}}
	hooked := core.Options{Hooks: core.Hooks{BeforeTaskExec: func(int, int) {}}}
	_, err := Sweep([]Spec{
		{Name: "h1", Mode: Intra, Logical: 1, Opts: hooked, App: app},
		{Name: "h2", Mode: Intra, Logical: 1, Opts: hooked, App: app},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 4 { // 2 specs x 1 logical x 2 replicas
		t.Fatalf("hooked specs ran %d bodies, want 4 (no dedup)", got)
	}
}

// TestSweepFaultSpecs checks the fault-schedule wiring: a schedule with
// crashes slows the point down and is recorded, an empty schedule keys
// identically to no schedule at all (memo hit), distinct schedules key
// apart, and a fault on an unreplicated mode is a named error.
func TestSweepFaultSpecs(t *testing.T) {
	cfg := smallHPCCG(4)
	sched := fault.Exponential(4, 2, 20*sim.Millisecond, 100*sim.Millisecond, 5)
	if len(sched.Crashes) == 0 {
		t.Fatal("test draw produced no crashes; pick another seed")
	}
	specs := []Spec{
		{Name: "clean", Mode: Intra, Logical: 4, App: HPCCG(cfg)},
		{Name: "empty-fault", Mode: Intra, Logical: 4, App: HPCCG(cfg), Fault: &fault.Schedule{}},
		{Name: "crashy", Mode: Intra, Logical: 4, App: HPCCG(cfg), Fault: sched},
	}
	res, err := Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	clean, empty, crashy := res[0], res[1], res[2]
	if clean.Crashes != 0 || empty.Crashes != 0 || crashy.Crashes != len(sched.Crashes) {
		t.Fatalf("crash counts wrong: %d/%d/%d", clean.Crashes, empty.Crashes, crashy.Crashes)
	}
	if !empty.Memoized || empty.Measure != clean.Measure {
		t.Fatal("an empty schedule must memoize against the fault-free point")
	}
	if crashy.Memoized {
		t.Fatal("a crashing schedule must not memoize against the fault-free point")
	}
	if crashy.WallSeconds < clean.WallSeconds {
		t.Fatalf("crashes should not speed the run up: %v < %v", crashy.WallSeconds, clean.WallSeconds)
	}
	if _, err := Sweep([]Spec{{Name: "native-fault", Mode: Native, Logical: 4,
		App: HPCCG(cfg), Fault: sched}}); err == nil ||
		!strings.Contains(err.Error(), "replicated") {
		t.Fatalf("fault on native must be a named error, got %v", err)
	}
}

// TestSweepErrorPropagation checks that a failing app run surfaces as an
// error naming the failing spec, deterministically across worker counts.
func TestSweepErrorPropagation(t *testing.T) {
	boom := App{Name: "boom", key: "boom", main: func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error) {
		return 0, nil, core.Stats{}, errInjected
	}}
	specs := []Spec{
		{Name: "fine", Mode: Native, Logical: 2, App: HPCCG(smallHPCCG(2))},
		{Name: "broken", Mode: Native, Logical: 2, App: boom},
	}
	for _, workers := range []int{1, 4} {
		res, err := SweepN(workers, specs)
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		if res != nil {
			t.Fatalf("workers=%d: no results expected on error", workers)
		}
		if !strings.Contains(err.Error(), `"broken"`) || !strings.Contains(err.Error(), "injected") {
			t.Fatalf("workers=%d: error should name the spec and cause: %v", workers, err)
		}
	}
	// A spec with no application is an immediate, named error.
	if _, err := Sweep([]Spec{{Name: "empty", Mode: Native, Logical: 1}}); err == nil {
		t.Fatal("expected an error for a spec without an application")
	}
}

var errInjected = errInjectedType{}

type errInjectedType struct{}

func (errInjectedType) Error() string { return "injected failure" }

// TestSpecPartialPlatformDefaults checks that Net and Machine default
// independently: overriding just one must not discard or zero the other.
func TestSpecPartialPlatformDefaults(t *testing.T) {
	cfg := smallHPCCG(2)
	base, err := Sweep([]Spec{{Name: "default", Mode: Native, Logical: 2, App: HPCCG(cfg)}})
	if err != nil {
		t.Fatal(err)
	}
	machineOnly, err := Sweep([]Spec{{Name: "skylake", Mode: Native, Logical: 2,
		Machine: perf.Skylake, App: HPCCG(cfg)}})
	if err != nil {
		t.Fatal(err)
	}
	if machineOnly[0].AppSeconds >= base[0].AppSeconds {
		t.Fatalf("Skylake override ignored: %v >= %v (grid5000)",
			machineOnly[0].AppSeconds, base[0].AppSeconds)
	}
	netOnly, err := Sweep([]Spec{{Name: "eth", Mode: Native, Logical: 2,
		Net: simnet.Ethernet10G, App: HPCCG(cfg)}})
	if err != nil {
		t.Fatal(err)
	}
	if s := netOnly[0].AppSeconds; s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("net-only spec got a zero machine model: app seconds = %v", s)
	}
}

// TestFigureRegistry checks the id registry both CLIs share.
func TestFigureRegistry(t *testing.T) {
	if len(FigureIDs) != len(FigureDescriptions) {
		t.Fatalf("ids and descriptions out of sync: %d vs %d", len(FigureIDs), len(FigureDescriptions))
	}
	for _, id := range FigureIDs {
		if FigureDescriptions[id] == "" {
			t.Fatalf("no description for %q", id)
		}
	}
	if _, err := RunFigure("nope", 0, 0); err == nil {
		t.Fatal("unknown figure id must error")
	}
	tab, err := RunFigure("ckpt", 0, 0)
	if err != nil || tab.ID != "ckpt" {
		t.Fatalf("ckpt: %v %v", tab, err)
	}
}

// TestFiguresByteIdenticalAcrossGOMAXPROCS regenerates a figure with the
// worker pool forced serial and fully parallel: the rendered tables must
// match byte for byte. The figure path sizes its pool from GOMAXPROCS, so
// the serial rendering pins it to 1.
func TestFiguresByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	render := func() string {
		tab, err := Fig5b([]int{16}, 3)
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	prev := runtime.GOMAXPROCS(1)
	serial := render()
	runtime.GOMAXPROCS(prev)
	for i := 0; i < 3; i++ {
		if got := render(); got != serial {
			t.Fatalf("parallel rendering diverges from GOMAXPROCS=1:\n%s\nvs\n%s", got, serial)
		}
	}
}

// TestCCRSpecMemoSharesNativeRun: a ccr point's cluster simulation is the
// native run, so the two memo-share, while each result reports its own
// mode. SpecFor accepts ccr scenarios (the campaign's reference path).
func TestCCRSpecMemoSharesNativeRun(t *testing.T) {
	cfg := smallHPCCG(3)
	specs := []Spec{
		{Name: "native", Mode: Native, Logical: 4, App: HPCCG(cfg)},
		{Name: "ccr", Mode: CCR, Logical: 4, App: HPCCG(cfg)},
	}
	res, err := SweepN(1, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Memoized {
		t.Fatal("ccr spec must be served from the native run's memo entry")
	}
	if res[0].Mode != "Open MPI" || res[1].Mode != "cCR" {
		t.Fatalf("modes %q / %q: memo sharing must not leak the other spec's mode", res[0].Mode, res[1].Mode)
	}
	if res[0].WallSeconds != res[1].WallSeconds || res[1].PhysProcs != 4 || res[1].Degree != 1 {
		t.Fatalf("ccr result diverged from native: %+v vs %+v", res[0], res[1])
	}

	sc := scenario.Scenario{
		Name: "ccr-point", App: "hpccg", Config: scenario.MustRaw(cfg),
		Mode: scenario.CCR, Logical: 4,
		Ckpt: &scenario.CkptOptions{DeltaSeconds: 0.01},
	}
	spec, err := SpecFor(sc)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != CCR {
		t.Fatalf("SpecFor dropped the ccr mode: %+v", spec)
	}
	// The checkpoint process never runs inside the simulator, so a single
	// ccr sweep point is just its native run.
	one, err := SweepN(1, []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if one[0].Crashes != 0 || one[0].WallSeconds != res[0].WallSeconds {
		t.Fatalf("plain ccr sweep point: %+v", one[0])
	}
}
