package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Table is a regenerated figure: the same series the paper plots, as rows.
// The JSON form is what `cmd/intrasim -json` and `cmd/sweep -json` emit.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Measure aggregates one mode's run: cluster wall time plus per-kernel and
// runtime-stat averages over every replica's view.
type Measure struct {
	Mode      Mode
	PhysProcs int
	Wall      sim.Time // wall time of the whole run (last process end)
	AppTotal  sim.Time // average in-app total time
	Kernels   map[string]*apputil.KernelTime
	Stats     core.Stats
	samples   int
}

func (m *Measure) add(total sim.Time, kernels map[string]*apputil.KernelTime, st core.Stats) {
	m.samples++
	m.AppTotal += total
	for name, kt := range kernels {
		agg := m.Kernels[name]
		if agg == nil {
			agg = &apputil.KernelTime{}
			m.Kernels[name] = agg
		}
		agg.Wall += kt.Wall
		agg.UpdateWait += kt.UpdateWait
		agg.Calls += kt.Calls
	}
	m.Stats.SectionTime += st.SectionTime
	m.Stats.SectionCompute += st.SectionCompute
	m.Stats.UpdateWait += st.UpdateWait
	m.Stats.CopyTime += st.CopyTime
	m.Stats.OutsideCompute += st.OutsideCompute
	m.Stats.Sections += st.Sections
	m.Stats.TasksRun += st.TasksRun
	m.Stats.TasksReceived += st.TasksReceived
	m.Stats.UpdateBytes += st.UpdateBytes
}

func (m *Measure) finish(wall sim.Time, phys int) {
	m.Wall = wall
	m.PhysProcs = phys
	if m.samples == 0 {
		return
	}
	n := sim.Time(m.samples)
	m.AppTotal /= n
	for _, kt := range m.Kernels {
		kt.Wall /= n
		kt.UpdateWait /= n
		kt.Calls /= m.samples
	}
	m.Stats.SectionTime /= n
	m.Stats.SectionCompute /= n
	m.Stats.UpdateWait /= n
	m.Stats.CopyTime /= n
	m.Stats.OutsideCompute /= n
	m.Stats.Sections /= m.samples
	m.Stats.TasksRun /= m.samples
	m.Stats.TasksReceived /= m.samples
	m.Stats.UpdateBytes /= int64(m.samples)
}

// appMain runs the application on one logical process and reports its
// timings (total, per-kernel, stats).
type appMain func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error)

// Efficiency computes the paper's workload efficiency E = Tsolve/Twallclock
// normalized by resources: native and mode may use different numbers of
// physical processes (Fig 6) or the same (Fig 5).
func Efficiency(native, mode *Measure) float64 {
	return float64(native.AppTotal) * float64(native.PhysProcs) /
		(float64(mode.AppTotal) * float64(mode.PhysProcs))
}

func secs(t sim.Time) string { return fmt.Sprintf("%.3f", t.Seconds()) }

func ratio(v, base sim.Time) string { return fmt.Sprintf("%.2f", float64(v)/float64(base)) }
