package explore

import (
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/sim"
)

// bracket is a crossover bracket on the per-node MTBF axis: the efficiency
// difference (ccr - replicated) changes sign between lo and hi.
type bracket struct {
	lo, hi      float64
	dlo, dhi    float64
	targetRatio float64
}

// probeOut is one budgeted measurement of the efficiency difference at a
// probe MTBF: the difference of means, the combined CI95 half-width, the
// trials spent, and whether the two sides' intervals separated before the
// probe's cap or the global budget cut it off.
type probeOut struct {
	diff, ci  float64
	trials    int
	separated bool
}

// probeFn measures the efficiency difference at one per-node MTBF. The
// bisection driver is abstract over it so tests can drive it with a
// synthetic curve.
type probeFn func(mtbfSeconds float64) (probeOut, error)

// bisectOut is the bisection's outcome: the final bracket, its geometric
// midpoint (the crossover estimate), and the probe log.
type bisectOut struct {
	lo, hi, mid float64
	separated   bool
	probes      []ProbePoint
	trials      int
}

// maxBisectProbes bounds the bisection loop; the bracket's log-width
// halves per separated probe, so real runs finish far earlier.
const maxBisectProbes = 32

// bisectCrossover shrinks the bracket by geometric bisection: each step
// probes the log-midpoint, keeps the half where the sign change lives, and
// stops when hi/lo meets the target ratio — or as soon as a probe fails to
// separate the two sides (more trials there would be spent on a point the
// measurement cannot distinguish, so the midpoint is already the best
// estimate the budget supports).
func bisectCrossover(br bracket, probe probeFn) (bisectOut, error) {
	out := bisectOut{lo: br.lo, hi: br.hi, separated: true}
	for i := 0; out.hi/out.lo > br.targetRatio && i < maxBisectProbes; i++ {
		mid := math.Sqrt(out.lo * out.hi)
		p, err := probe(mid)
		if err != nil {
			return out, err
		}
		out.trials += p.trials
		out.probes = append(out.probes, ProbePoint{
			NodeMTBFSeconds: mid, EffDiff: p.diff, EffDiffCI95: p.ci,
			Trials: p.trials, Separated: p.separated,
		})
		if !p.separated {
			out.separated = false
			out.mid = mid
			return out, nil
		}
		if p.diff == 0 {
			out.lo, out.hi = mid, mid
			break
		}
		if (p.diff < 0) == (br.dlo < 0) {
			out.lo = mid
		} else {
			out.hi = mid
		}
	}
	out.mid = math.Sqrt(out.lo * out.hi)
	return out, nil
}

// maxProbeBatches caps one probe's per-side spending at this many rounds —
// past that, the difference at the midpoint is below the resolving power
// the round size affords and the probe reports unseparated.
const maxProbeBatches = 10

// bisect runs the geometric bisection for one series pair, probing with
// budgeted mini-campaigns at dynamically chosen MTBFs.
func (e *explorer) bisect(br bracket, pr pairT) (bisectOut, error) {
	return bisectCrossover(br, func(mtbf float64) (probeOut, error) {
		return e.probePair(pr, mtbf)
	})
}

// probePair measures the efficiency difference (ccr - replicated) at one
// per-node MTBF: it prepares the pair's two scenarios at that MTBF (the
// fault-free references are shared with the grid, so they hit the memo or
// the store), then alternates round-sized batches per side until the CI95
// intervals separate, the per-probe cap is reached, or the budget runs dry.
// Probe cells are retained: their aggregates persist like grid cells', and
// a re-run bisecting the same bracket rebuilds them warm.
func (e *explorer) probePair(pr pairT, mtbf float64) (probeOut, error) {
	scs := make([]campaign.Scenario, 2)
	for i, src := range []*cell{pr.ccr[0], pr.repl[0]} {
		sc := src.p.Scenario
		sc.Point.Name = fmt.Sprintf("%s@mtbf=%.9g", sc.Point.Name, mtbf)
		sc.MTBF = sim.Seconds(mtbf)
		scs[i] = sc
	}
	pts, err := campaign.PreparePoints(e.cfg.campaignConfig(), scs)
	if err != nil {
		return probeOut{}, fmt.Errorf("explore probe (mtbf %.9g): %w", mtbf, err)
	}
	cc := &cell{p: pts[0], grid: -1}
	rc := &cell{p: pts[1], grid: -1}
	e.probes = append(e.probes, cc, rc)

	out := probeOut{}
	for {
		dc, dr := cc.aggs[2].Stat(), rc.aggs[2].Stat()
		if cc.n >= 2 && rc.n >= 2 && !math.IsNaN(dc.CI95) && !math.IsNaN(dr.CI95) {
			out.diff = dc.Mean - dr.Mean
			out.ci = dc.CI95 + dr.CI95
			if math.Abs(out.diff) > out.ci {
				out.separated = true
				return out, nil
			}
		}
		if cc.n >= maxProbeBatches*e.cfg.Round {
			return out, nil
		}
		ac, ar := e.take(e.cfg.Round), e.take(e.cfg.Round)
		if ac == 0 && ar == 0 {
			return out, nil
		}
		e.spentBisect += ac + ar
		out.trials += ac + ar
		if err := e.runBatch([]*cell{cc, rc}, []int{ac, ar}); err != nil {
			return out, err
		}
	}
}
