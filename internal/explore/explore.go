// Package explore is the adaptive campaign driver: it spends one global
// trial budget where statistical uncertainty is highest instead of
// spreading a fixed grid's identical batches over settled and contested
// points alike.
//
// Three engines share the budget, in deterministic order:
//
//  1. CI-width-driven refinement runs trials in fixed-size batches per
//     scenario point; after each round the next batches go to the points
//     with the widest relative CI95 on efficiency/makespan, until every
//     point meets the target or the budget runs out.
//  2. Measured-crossover bisection replaces the fixed grid's
//     log-interpolation: it bisects the per-node MTBF axis between a
//     measured replication series and a measured cCR series, each probe a
//     budgeted mini-campaign that stops as soon as the two efficiency
//     CI95s separate, until the bracket is narrower than the configured
//     ratio.
//  3. Optimal-tau search golden-sections the checkpoint interval of each
//     ccr grid point over microsecond-cheap ckptsim.Replay evaluations on
//     a common set of seeded failure traces, cross-checked against
//     ckpt.OptimalInterval.
//
// Determinism is the load-bearing property. Every point's trial stream is
// seeded from its content fingerprint (campaign.PointSeed), not its grid
// position, and trial indices are consumed in stable ascending blocks — so
// an adaptive run's per-point aggregate is a byte-identical
// prefix-extension of any fixed run over the same indices, the output is
// identical at any worker count, and a store-backed re-run is fully warm
// (misses=0) even for probe points the original grid never named.
package explore

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/ckpt"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

// Config are the explorer-wide knobs.
type Config struct {
	// Budget is the global number of trials the three engines may spend
	// (replicated simulations, ccr replays and tau-search replays all
	// count one each). Default 4000.
	Budget int
	// Round is the per-point batch size of one allocation round (and of
	// one bisection probe step per side). Default 10, minimum 2 — a CI
	// needs two samples.
	Round int
	// TargetCI is the refinement goal: the widest acceptable relative
	// CI95 (half-width / |mean|) on a point's efficiency and makespan.
	// Default 0.05.
	TargetCI float64
	// BracketRatio is where bisection stops: the final crossover bracket
	// satisfies hi/lo <= BracketRatio. Default 1.5.
	BracketRatio float64
	// TauTraces is the number of common seeded failure traces behind each
	// optimal-tau objective evaluation. Default 24.
	TauTraces int

	Seed    int64
	Workers int

	// Horizon, CkptDelta, CkptRestart, CkptTau have campaign.Config
	// semantics and flow through unchanged.
	Horizon     sim.Time
	CkptDelta   float64
	CkptRestart float64
	CkptTau     float64

	// Store, when non-nil, backs every simulation with the persistent
	// result cache and persists per-cell aggregates, bisection outcomes
	// and tau results as content-keyed records. Records already present
	// are byte-compared against the recomputation — a mismatch means
	// nondeterminism or corruption and fails the run.
	Store *store.Store
}

func (cfg Config) withDefaults() Config {
	if cfg.Budget <= 0 {
		cfg.Budget = 4000
	}
	if cfg.Round <= 0 {
		cfg.Round = 10
	}
	if cfg.Round < 2 {
		cfg.Round = 2
	}
	if cfg.TargetCI <= 0 {
		cfg.TargetCI = 0.05
	}
	if cfg.BracketRatio <= 1 {
		cfg.BracketRatio = 1.5
	}
	if cfg.TauTraces <= 0 {
		cfg.TauTraces = 24
	}
	return cfg
}

// campaignConfig maps the shared knobs onto the campaign layer.
func (cfg Config) campaignConfig() campaign.Config {
	return campaign.Config{
		Seed: cfg.Seed, Workers: cfg.Workers, Horizon: cfg.Horizon,
		CkptDelta: cfg.CkptDelta, CkptRestart: cfg.CkptRestart, CkptTau: cfg.CkptTau,
		Store: cfg.Store,
	}
}

// cell is one explored point: a prepared campaign.Point plus the running
// aggregates over the trial prefix consumed so far.
type cell struct {
	p       *campaign.Point
	aggs    [3]campaign.Agg // makespan, slowdown, efficiency
	n       int             // trials folded: indices [0, n)
	crashes int
	grid    int // index into the input grid; -1 for bisection probes
}

// relCI is the cell's uncertainty measure: the wider of the relative CI95s
// on makespan and efficiency (+Inf below two trials or at zero mean).
func (c *cell) relCI() float64 {
	if c.n < 2 {
		return math.Inf(1)
	}
	r := relOf(c.aggs[0].Stat())
	if e := relOf(c.aggs[2].Stat()); e > r {
		r = e
	}
	return r
}

func relOf(s campaign.Stat) float64 {
	if math.IsNaN(s.CI95) || s.Mean == 0 {
		return math.Inf(1)
	}
	return s.CI95 / math.Abs(s.Mean)
}

type explorer struct {
	cfg    Config
	cells  []*cell // grid cells, input order
	probes []*cell // bisection probe cells, creation order
	rounds int

	spent       int
	spentRefine int
	spentBisect int
	spentTau    int

	crossovers []CrossoverResult
	tau        []TauResult
	verified   int // store records byte-verified against a previous run
}

// take grants up to n trials from the remaining budget.
func (e *explorer) take(n int) int {
	if left := e.cfg.Budget - e.spent; n > left {
		n = left
	}
	if n < 0 {
		n = 0
	}
	e.spent += n
	return n
}

// tryTake grants exactly n trials or none.
func (e *explorer) tryTake(n int) bool {
	if e.cfg.Budget-e.spent < n {
		return false
	}
	e.spent += n
	return true
}

// Run executes the adaptive campaign over the scenario grid.
func Run(cfg Config, scenarios []campaign.Scenario) (*Result, error) {
	cfg = cfg.withDefaults()
	points, err := campaign.PreparePoints(cfg.campaignConfig(), scenarios)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	e := &explorer{cfg: cfg}
	for i, p := range points {
		e.cells = append(e.cells, &cell{p: p, grid: i})
	}
	if err := e.refine(); err != nil {
		return nil, err
	}
	if err := e.bisectCrossovers(); err != nil {
		return nil, err
	}
	e.tauSearch()
	experiments.Progress.SetStatus(fmt.Sprintf("explore: done, budget %d/%d", e.spent, cfg.Budget))
	res := e.result()
	if cfg.Store != nil {
		if err := e.persist(res); err != nil {
			return nil, err
		}
		res.storeVerified = e.verified
	}
	return res, nil
}

// refine is engine 1: rounds of fixed-size batches, each round allocated
// to the points with the widest relative CI95, widest first, until every
// point meets TargetCI or the budget is gone.
func (e *explorer) refine() error {
	for {
		// Candidates still above target, widest first; ties keep grid
		// order (sort stability), and fresh cells (+Inf) lead round one.
		var cand []int
		for i, c := range e.cells {
			if c.relCI() > e.cfg.TargetCI {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			break
		}
		sort.SliceStable(cand, func(a, b int) bool {
			return e.cells[cand[a]].relCI() > e.cells[cand[b]].relCI()
		})
		allocs := make([]int, len(e.cells))
		total := 0
		for _, ci := range cand {
			a := e.take(e.cfg.Round)
			if a == 0 {
				break
			}
			allocs[ci] = a
			total += a
		}
		if total == 0 {
			break // budget exhausted
		}
		e.rounds++
		e.spentRefine += total
		widest := e.cells[cand[0]]
		experiments.Progress.SetStatus(fmt.Sprintf(
			"explore: round %d, budget %d/%d, widest %s relCI %.3g",
			e.rounds, e.spent, e.cfg.Budget, widest.p.Scenario.Point.Name, widest.relCI()))
		if err := e.runBatch(e.cells, allocs); err != nil {
			return err
		}
	}
	return nil
}

// runBatch measures trials [n, n+alloc) of each cell and folds them into
// the aggregates in cell order, trial index ascending — the same order any
// fixed-grid run over the same indices would use, so the aggregate partials
// stay byte-identical. Replicated trials flow through one sweep (pool
// saturation, memo, store); ccr replays fan out over the worker count.
func (e *explorer) runBatch(cells []*cell, allocs []int) error {
	var specs []experiments.Spec
	specAt := make([]int, len(cells)) // cell -> first spec index, -1 = none
	type job struct{ cell, trial int }
	var jobs []job
	for i, c := range cells {
		specAt[i] = -1
		a := allocs[i]
		if a == 0 {
			continue
		}
		if c.p.IsCCR() {
			for t := c.n; t < c.n+a; t++ {
				jobs = append(jobs, job{i, t})
			}
			continue
		}
		specAt[i] = len(specs)
		for t := c.n; t < c.n+a; t++ {
			spec, _ := c.p.TrialSpec(t)
			specs = append(specs, spec)
		}
	}
	trialRes, err := experiments.SweepStore(e.cfg.Workers, e.cfg.Store, specs)
	if err != nil {
		return fmt.Errorf("explore trials: %w", err)
	}
	replayWalls := make([]float64, len(jobs))
	replayFails := make([]int, len(jobs))
	runJobs(e.cfg.Workers, len(jobs), func(j int) {
		tr := cells[jobs[j].cell].p.CCRTrial(jobs[j].trial)
		replayWalls[j] = tr.Makespan
		replayFails[j] = tr.Failures
	})
	// Fold in deterministic order: cells in slice order, trials ascending.
	ji := 0
	for i, c := range cells {
		a := allocs[i]
		if a == 0 {
			continue
		}
		for k := 0; k < a; k++ {
			var wall float64
			if c.p.IsCCR() {
				wall = replayWalls[ji]
				c.crashes += replayFails[ji]
				ji++
			} else {
				r := trialRes[specAt[i]+k]
				wall = r.Measure.Wall.Seconds()
				c.crashes += r.Crashes
			}
			mk, sd, eff := c.p.Metrics(wall)
			c.aggs[0].Add(mk)
			c.aggs[1].Add(sd)
			c.aggs[2].Add(eff)
		}
		c.n += a
	}
	return nil
}

// runJobs fans n independent jobs over the worker count.
func runJobs(workers, n int, fn func(int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1))
				if j >= n {
					return
				}
				fn(j)
			}
		}()
	}
	wg.Wait()
}

// bisectCrossovers is engine 2: pair each measured ccr series with the
// replicated series sharing its native baseline, bracket the efficiency
// crossover on the refined grid, then bisect the per-node MTBF axis with
// budgeted CI-separated probes until the bracket ratio meets the target.
func (e *explorer) bisectCrossovers() error {
	pairs := pairSeries(e.cells)
	for _, pr := range pairs {
		x := CrossoverResult{
			App:          pr.repl[0].p.Scenario.Point.App,
			ReplMode:     pr.repl[0].p.Scenario.Point.Mode.String(),
			Logical:      pr.repl[0].p.Scenario.Point.Logical,
			Degree:       pr.repl[0].p.Scenario.Point.EffectiveDegree(),
			CCRPhysProcs: pr.ccr[0].p.PhysProcs,
		}
		ccr0 := pr.ccr[0].p
		x.AnalyticNodeMTBFSeconds = ckpt.CrossoverMTBF(
			ccr0.Params.Delta, ccr0.Params.Restart, pr.repl[0].p.FFEff) * float64(ccr0.PhysProcs)

		// The shared refined axis, ascending, with the efficiency
		// difference (ccr - repl) at each sampled MTBF.
		replAt := map[float64]*cell{}
		for _, c := range pr.repl {
			replAt[c.p.Scenario.MTBF.Seconds()] = c
		}
		var axis []axisSample
		for _, c := range pr.ccr {
			m := c.p.Scenario.MTBF.Seconds()
			if rc, ok := replAt[m]; ok {
				axis = append(axis, axisSample{
					mtbf: m,
					diff: c.aggs[2].Stat().Mean - rc.aggs[2].Stat().Mean,
				})
			}
		}
		sort.Slice(axis, func(a, b int) bool { return axis[a].mtbf < axis[b].mtbf })
		x.GridNodeMTBFSeconds = gridInterpolate(axis)

		// First adjacent sign change brackets the crossover.
		bi := -1
		for i := 1; i < len(axis); i++ {
			if (axis[i-1].diff < 0) != (axis[i].diff < 0) {
				bi = i
				break
			}
		}
		if bi < 0 {
			e.crossovers = append(e.crossovers, x)
			continue
		}
		lo, hi := axis[bi-1], axis[bi]
		out, err := e.bisect(bracket{
			lo: lo.mtbf, hi: hi.mtbf, dlo: lo.diff, dhi: hi.diff,
			targetRatio: e.cfg.BracketRatio,
		}, pr)
		if err != nil {
			return err
		}
		x.BracketLoSeconds, x.BracketHiSeconds = out.lo, out.hi
		x.BracketRatio = out.hi / out.lo
		x.MeasuredNodeMTBFSeconds = out.mid
		x.Separated = out.separated
		x.Probes = out.probes
		x.Trials = out.trials
		e.crossovers = append(e.crossovers, x)
	}
	return nil
}

// axisSample is one shared-MTBF grid sample of the efficiency difference
// (ccr mean - replicated mean).
type axisSample struct {
	mtbf, diff float64
}

// gridInterpolate is the fixed-grid estimator the bisection supersedes:
// log-linear interpolation between the first bracketing sampled MTBFs
// (campaign's measured-crossover rule), kept in the output for comparison.
func gridInterpolate(axis []axisSample) float64 {
	for i := 1; i < len(axis); i++ {
		a, b := axis[i-1], axis[i]
		if a.diff == 0 {
			return a.mtbf
		}
		if (a.diff < 0) == (b.diff < 0) {
			continue
		}
		la, lb := math.Log(a.mtbf), math.Log(b.mtbf)
		return math.Exp(la + (lb-la)*(0-a.diff)/(b.diff-a.diff))
	}
	if n := len(axis); n > 0 && axis[n-1].diff == 0 {
		return axis[n-1].mtbf
	}
	return 0
}

// pair is a crossover pairing: a ccr series and a replicated series over
// the same native baseline, each MTBF-ascending in grid order.
type pairT struct {
	repl, ccr []*cell
}

// pairSeries groups grid cells into series (same native fingerprint, mode,
// sizing) in first-appearance order and pairs replicated with ccr series
// sharing a native baseline — campaign.Run's crossover rule.
func pairSeries(cells []*cell) []pairT {
	type seriesKey struct {
		base            string
		mode            string
		logical, degree int
	}
	var order []seriesKey
	byKey := map[seriesKey][]*cell{}
	for _, c := range cells {
		sc := c.p.Scenario.Point
		k := seriesKey{c.p.NativeFingerprint(), sc.Mode.String(), sc.Logical, sc.EffectiveDegree()}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], c)
	}
	ccrName := scenario.CCR.String()
	var out []pairT
	for _, rk := range order {
		if rk.mode == ccrName {
			continue
		}
		for _, ck := range order {
			if ck.mode != ccrName || ck.base != rk.base {
				continue
			}
			out = append(out, pairT{repl: byKey[rk], ccr: byKey[ck]})
		}
	}
	return out
}
