package explore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

func smallPoint(name string, mode scenario.Mode) scenario.Scenario {
	return scenario.Scenario{
		Name: name, App: "hpccg",
		Config: scenario.MustRaw(hpccg.Config{
			Nx: 8, Ny: 8, Nz: 8, Iters: 3, Tasks: 8,
			Scale: 64, PlaneScale: 16,
			IntraDdot: true, IntraSparsemv: true,
		}),
		Mode: mode, Logical: 2,
	}
}

func ccrScen(name string, mtbf sim.Time) campaign.Scenario {
	pt := smallPoint(name, scenario.CCR)
	pt.Ckpt = &scenario.CkptOptions{TauSeconds: 0.002, DeltaSeconds: 0.0005, RestartSeconds: 0.0005}
	return campaign.Scenario{Point: pt, MTBF: mtbf}
}

// crossoverGrid is the Fig. 1-style pair: a ccr series and an intra series
// over an MTBF axis whose endpoints land on opposite sides of the
// efficiency crossover (same axis the campaign crossover test uses).
func crossoverGrid() []campaign.Scenario {
	var scs []campaign.Scenario
	for _, m := range []sim.Time{4 * sim.Millisecond, 20 * sim.Second} {
		scs = append(scs, ccrScen(fmt.Sprintf("ccr/mtbf%v", m), m))
		scs = append(scs, campaign.Scenario{
			Point: smallPoint(fmt.Sprintf("intra/mtbf%v", m), scenario.Intra), MTBF: m})
	}
	return scs
}

// TestBisectSynthetic drives the bisection with a synthetic monotone
// difference curve whose crossover is known, checking the final bracket
// contains it at the requested ratio — and that an unseparable probe stops
// the search at the midpoint instead of spending more budget.
func TestBisectSynthetic(t *testing.T) {
	const m0 = 0.37
	probes := 0
	out, err := bisectCrossover(bracket{
		lo: 0.01, hi: 10, dlo: math.Log(0.01 / m0), dhi: math.Log(10 / m0),
		targetRatio: 1.05,
	}, func(m float64) (probeOut, error) {
		probes++
		return probeOut{diff: math.Log(m / m0), ci: 1e-6, trials: 10, separated: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.separated {
		t.Fatal("synthetic probes always separate, bisection said otherwise")
	}
	if out.lo > m0 || out.hi < m0 {
		t.Fatalf("final bracket [%v, %v] lost the crossover %v", out.lo, out.hi, m0)
	}
	if r := out.hi / out.lo; r > 1.05 {
		t.Fatalf("bracket ratio %v above target 1.05", r)
	}
	if out.trials != 10*probes || len(out.probes) != probes {
		t.Fatalf("probe accounting: %d probes, %d logged, %d trials", probes, len(out.probes), out.trials)
	}
	// Log-space halving: reaching ratio 1.05 from 1000x takes ceil(log2(ln1000/ln1.05)) = 8 probes.
	if probes > 9 {
		t.Fatalf("bisection took %d probes for a 1000x bracket", probes)
	}

	out, err = bisectCrossover(bracket{lo: 0.01, hi: 10, dlo: -1, dhi: 1, targetRatio: 1.05},
		func(m float64) (probeOut, error) {
			return probeOut{diff: 0.01, ci: 0.5, trials: 4, separated: false}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.01 * 10)
	if out.separated || out.mid != want || len(out.probes) != 1 {
		t.Fatalf("unseparable probe should stop at first midpoint %v: %+v", want, out)
	}
}

// TestAdaptivePrefixIdentity is the determinism property behind the whole
// design: the adaptive run's per-point aggregates are byte-identical to a
// fixed fold over the same trial indices [0, n) — the batching and the
// round-by-round allocation leave no trace in the numbers.
func TestAdaptivePrefixIdentity(t *testing.T) {
	cfg := Config{Budget: 60, Round: 4, TargetCI: 0.01, Seed: 11, Workers: 3}
	scs := []campaign.Scenario{
		{Point: smallPoint("intra/low", scenario.Intra), MTBF: 100 * sim.Millisecond},
		ccrScen("ccr/low", 50*sim.Millisecond),
	}
	res, err := Run(cfg, scs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spent > cfg.Budget {
		t.Fatalf("spent %d over budget %d", res.Spent, cfg.Budget)
	}

	pts, err := campaign.PreparePoints(cfg.withDefaults().campaignConfig(), scs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		got := res.Points[i]
		if got.Trials == 0 {
			t.Fatalf("point %d got no trials", i)
		}
		var aggs [3]campaign.Agg
		fold := func(wall float64) {
			mk, sd, eff := p.Metrics(wall)
			aggs[0].Add(mk)
			aggs[1].Add(sd)
			aggs[2].Add(eff)
		}
		if p.IsCCR() {
			for tr := 0; tr < got.Trials; tr++ {
				fold(p.CCRTrial(tr).Makespan)
			}
		} else {
			var specs []experiments.Spec
			for tr := 0; tr < got.Trials; tr++ {
				spec, _ := p.TrialSpec(tr)
				specs = append(specs, spec)
			}
			trialRes, err := experiments.Sweep(specs)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range trialRes {
				fold(r.Measure.Wall.Seconds())
			}
		}
		for m, want := range []campaign.Stat{aggs[0].Stat(), aggs[1].Stat(), aggs[2].Stat()} {
			gotStat := []campaign.Stat{got.Makespan, got.Slowdown, got.Efficiency}[m]
			wb, _ := json.Marshal(want)
			gb, _ := json.Marshal(gotStat)
			if !bytes.Equal(wb, gb) {
				t.Fatalf("point %d metric %d: adaptive %s != fixed fold over [0,%d) %s",
					i, m, gb, got.Trials, wb)
			}
		}
	}
}

// TestExploreWorkersByteIdentical: the full exploration — refinement,
// crossover bisection with its dynamically chosen probes, tau search — is
// byte-identical at any worker count.
func TestExploreWorkersByteIdentical(t *testing.T) {
	cfg := Config{Budget: 260, Round: 5, TargetCI: 0.2, BracketRatio: 2.5, TauTraces: 5, Seed: 7}
	var want []byte
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		res, err := Run(cfg, crossoverGrid())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want = b
			if res.Spent > cfg.Budget {
				t.Fatalf("spent %d over budget %d", res.Spent, cfg.Budget)
			}
			if len(res.Crossovers) != 1 {
				t.Fatalf("crossovers = %+v, want exactly one ccr-vs-intra pairing", res.Crossovers)
			}
			x := res.Crossovers[0]
			if x.MeasuredNodeMTBFSeconds <= 0.004 || x.MeasuredNodeMTBFSeconds >= 20 {
				t.Fatalf("measured crossover %v outside the grid bracket", x.MeasuredNodeMTBFSeconds)
			}
			if x.Separated && x.BracketHiSeconds/x.BracketLoSeconds > cfg.BracketRatio {
				t.Fatalf("separated bisection left bracket ratio %v above target", x.BracketHiSeconds/x.BracketLoSeconds)
			}
			if len(res.Tau) != 2 {
				t.Fatalf("tau results = %d, want one per ccr point", len(res.Tau))
			}
			for _, ts := range res.Tau {
				if ts.Trials > 0 && ts.MeasuredTau <= 0 {
					t.Fatalf("tau search spent %d trials without a measured optimum", ts.Trials)
				}
			}
		} else if !bytes.Equal(b, want) {
			t.Fatalf("workers=%d: exploration JSON differs from serial run", workers)
		}
	}
}

// TestExploreWarmStore: a store-backed re-run reproduces the result byte
// for byte with zero store misses — every simulation and every persisted
// record (grid cells, probe cells, crossovers, tau searches) is found and
// byte-verified.
func TestExploreWarmStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Budget: 140, Round: 4, TargetCI: 0.25, BracketRatio: 3, TauTraces: 4, Seed: 9, Workers: 2}
	run := func(label string) (*Result, store.Stats) {
		st, err := store.Open(dir, label)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		cfg.Store = st
		res, err := Run(cfg, crossoverGrid())
		if err != nil {
			t.Fatal(err)
		}
		return res, st.Stats()
	}
	res1, stats1 := run("cold")
	if stats1.Puts == 0 {
		t.Fatal("cold run persisted nothing")
	}
	if res1.StoreVerified() != 0 {
		t.Fatalf("cold run claims %d verified records", res1.StoreVerified())
	}
	res2, stats2 := run("warm")
	if stats2.Misses != 0 {
		t.Fatalf("warm run missed the store %d times (stats %v)", stats2.Misses, stats2)
	}
	if res2.StoreVerified() == 0 {
		t.Fatal("warm run verified no stored records")
	}
	b1, _ := json.MarshalIndent(res1, "", " ")
	b2, _ := json.MarshalIndent(res2, "", " ")
	if !bytes.Equal(b1, b2) {
		t.Fatal("warm store-backed run diverged from cold run")
	}
}
