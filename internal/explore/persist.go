package explore

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/store"
)

// Store record kinds. Point aggregates live under a narrow key (trial
// streams + point identity + trial count) so any driver that consumed the
// same trial prefix of the same point produces the identical record,
// whatever budget or grid got it there; crossover and tau records bind to
// the full run (their outcomes depend on the whole budget history).
const (
	aggKind   = "explore-agg"
	xoverKind = "explore-crossover"
	tauKind   = "explore-tau"
)

// streamFingerprint canonically encodes the knobs that shape per-trial
// values (Workers and the budget knobs deliberately excluded: neither can
// change what trial t of a point measures).
func (cfg Config) streamFingerprint() string {
	b, err := json.Marshal(struct {
		Seed        int64    `json:"seed"`
		Horizon     sim.Time `json:"horizon"`
		CkptDelta   float64  `json:"ckpt_delta"`
		CkptRestart float64  `json:"ckpt_restart"`
		CkptTau     float64  `json:"ckpt_tau"`
	}{cfg.Seed, cfg.Horizon, cfg.CkptDelta, cfg.CkptRestart, cfg.CkptTau})
	if err != nil {
		panic(fmt.Sprintf("explore: fingerprint: %v", err)) // struct of scalars cannot fail
	}
	return string(b)
}

// runFingerprint additionally pins the budget knobs and the full grid —
// the identity of one complete exploration.
func (e *explorer) runFingerprint() string {
	cfg := e.cfg
	fps := make([]string, len(e.cells))
	for i, c := range e.cells {
		fps[i] = c.p.Fingerprint()
	}
	b, err := json.Marshal(struct {
		Stream       string   `json:"stream"`
		Budget       int      `json:"budget"`
		Round        int      `json:"round"`
		TargetCI     float64  `json:"target_ci"`
		BracketRatio float64  `json:"bracket_ratio"`
		TauTraces    int      `json:"tau_traces"`
		Grid         []string `json:"grid"`
	}{cfg.streamFingerprint(), cfg.Budget, cfg.Round, cfg.TargetCI, cfg.BracketRatio, cfg.TauTraces, fps})
	if err != nil {
		panic(fmt.Sprintf("explore: fingerprint: %v", err))
	}
	return string(b)
}

// aggRecord is the stored form of one point's refined aggregate: the trial
// prefix [0, Trials) folded ascending. Exact partials round-trip, so a
// warm re-run's record compares byte-equal.
type aggRecord struct {
	Trials     int          `json:"trials"`
	Crashes    int          `json:"crashes"`
	Makespan   campaign.Agg `json:"makespan"`
	Slowdown   campaign.Agg `json:"slowdown"`
	Efficiency campaign.Agg `json:"efficiency"`
}

// putVerify persists one record — or, if its key is already present,
// byte-compares the stored payload against this run's recomputation. A
// mismatch means the computation was not deterministic (or the store is
// damaged) and fails the run; a match counts toward Result.StoreVerified.
func (e *explorer) putVerify(kind, key string, payload any) error {
	b, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("explore: marshal %s record: %w", kind, err)
	}
	if prev, ok := e.cfg.Store.Get(kind, key); ok {
		if !bytes.Equal(prev, b) {
			return fmt.Errorf("explore: %s record %s diverges from stored run: recomputation is not deterministic", kind, key)
		}
		e.verified++
		return nil
	}
	return e.cfg.Store.Put(kind, key, json.RawMessage(b))
}

// persist writes the exploration's records: one aggregate per explored
// cell (grid and probe), one record per crossover, one per tau search.
func (e *explorer) persist(res *Result) error {
	sfp := e.cfg.streamFingerprint()
	for _, c := range append(append([]*cell{}, e.cells...), e.probes...) {
		if c.n == 0 {
			continue
		}
		key := store.Key(sfp + "|" + c.p.Fingerprint() + fmt.Sprintf("|trials:%d", c.n))
		rec := aggRecord{
			Trials: c.n, Crashes: c.crashes,
			Makespan: c.aggs[0], Slowdown: c.aggs[1], Efficiency: c.aggs[2],
		}
		if err := e.putVerify(aggKind, key, rec); err != nil {
			return err
		}
	}
	rfp := e.runFingerprint()
	for i, x := range res.Crossovers {
		key := store.Key(rfp + fmt.Sprintf("|xover:%d", i))
		if err := e.putVerify(xoverKind, key, x); err != nil {
			return err
		}
	}
	for i, t := range res.Tau {
		key := store.Key(rfp + fmt.Sprintf("|tau:%d", i))
		if err := e.putVerify(tauKind, key, t); err != nil {
			return err
		}
	}
	return nil
}
