package explore

import (
	"math"

	"repro/internal/campaign"
)

// Result is the explorer's machine-readable output. Every field is a pure
// function of (config, scenario grid): no timings, memo counters or store
// traffic appear, so runs at different worker counts — and cold vs warm
// store-backed runs — marshal byte-identically.
type Result struct {
	Budget      int     `json:"budget"`
	Spent       int     `json:"spent"`
	SpentRefine int     `json:"spent_refine"`
	SpentBisect int     `json:"spent_bisect"`
	SpentTau    int     `json:"spent_tau"`
	Rounds      int     `json:"rounds"`
	TargetCI    float64 `json:"target_ci"`

	// Points are the grid cells in input order; Probes the bisection's
	// dynamically chosen cells in creation order.
	Points     []PointResult     `json:"points"`
	Probes     []PointResult     `json:"probes,omitempty"`
	Crossovers []CrossoverResult `json:"crossovers,omitempty"`
	Tau        []TauResult       `json:"tau,omitempty"`

	// storeVerified counts persisted records that already existed and were
	// byte-compared against this run's recomputation. Deliberately not
	// marshaled: it describes cache traffic, not results.
	storeVerified int
}

// StoreVerified reports how many persisted records this run re-derived and
// byte-verified against a previous run (0 on a cold store or without one).
func (r *Result) StoreVerified() int { return r.storeVerified }

// PointResult is the refined aggregate of one explored scenario point.
type PointResult struct {
	Scenario        string  `json:"scenario"`
	App             string  `json:"app"`
	Mode            string  `json:"mode"`
	Logical         int     `json:"logical"`
	Degree          int     `json:"degree"`
	PhysProcs       int     `json:"phys_procs"`
	NodeMTBFSeconds float64 `json:"node_mtbf_seconds"`

	Trials  int `json:"trials"`
	Crashes int `json:"crashes"`
	// RelCI is the refinement's uncertainty measure — the wider relative
	// CI95 of makespan and efficiency — null below two trials.
	RelCI *float64 `json:"rel_ci"`

	Makespan   campaign.Stat `json:"makespan_seconds"`
	Slowdown   campaign.Stat `json:"slowdown"`
	Efficiency campaign.Stat `json:"efficiency"`
	// AnalyticEff is the §II model prediction at the point's operating
	// point (Daly for ccr, Ferreira-style for replication).
	AnalyticEff float64 `json:"analytic_efficiency"`

	// Fingerprint is the point's content identity (basis of its seed and
	// store keys).
	Fingerprint string `json:"fingerprint"`
}

// CrossoverResult locates one ccr-vs-replication efficiency crossover on
// the per-node MTBF axis, three ways: the §II analytic prediction, the
// fixed grid's log-interpolation, and the bisection's measured bracket.
type CrossoverResult struct {
	App          string `json:"app"`
	ReplMode     string `json:"repl_mode"`
	Logical      int    `json:"logical"`
	Degree       int    `json:"degree"`
	CCRPhysProcs int    `json:"ccr_phys_procs"`

	AnalyticNodeMTBFSeconds float64 `json:"analytic_node_mtbf_seconds"`
	// GridNodeMTBFSeconds is the fixed-grid estimator (log-interpolation
	// between bracketing samples; 0 when the grid shows no sign change).
	GridNodeMTBFSeconds float64 `json:"grid_node_mtbf_seconds"`

	// Bracket and measured midpoint from the bisection; zero when the grid
	// gave no bracket to refine.
	BracketLoSeconds        float64 `json:"bracket_lo_seconds,omitempty"`
	BracketHiSeconds        float64 `json:"bracket_hi_seconds,omitempty"`
	BracketRatio            float64 `json:"bracket_ratio,omitempty"`
	MeasuredNodeMTBFSeconds float64 `json:"measured_node_mtbf_seconds,omitempty"`
	// Separated is false when a probe could not separate the two sides'
	// CIs before its cap or the budget ran dry — the measured value is
	// then the unresolved midpoint, not a CI-backed crossing.
	Separated bool         `json:"separated"`
	Probes    []ProbePoint `json:"probe_points,omitempty"`
	Trials    int          `json:"trials"`
}

// ProbePoint is one bisection probe: the efficiency difference measured at
// a dynamically chosen MTBF.
type ProbePoint struct {
	NodeMTBFSeconds float64 `json:"node_mtbf_seconds"`
	EffDiff         float64 `json:"eff_diff"`
	EffDiffCI95     float64 `json:"eff_diff_ci95"`
	Trials          int     `json:"trials"`
	Separated       bool    `json:"separated"`
}

// TauResult is the optimal-interval search outcome for one ccr point.
type TauResult struct {
	Scenario        string  `json:"scenario"`
	NodeMTBFSeconds float64 `json:"node_mtbf_seconds"`
	SysMTBFSeconds  float64 `json:"sys_mtbf_seconds"`
	Delta           float64 `json:"delta_seconds"`
	Restart         float64 `json:"restart_seconds"`

	// ReplayTau is the interval the grid replays ran at; AnalyticTau and
	// AnalyticBestEff are Daly's optimum and its predicted efficiency.
	ReplayTau       float64 `json:"replay_tau_seconds"`
	AnalyticTau     float64 `json:"analytic_tau_seconds"`
	AnalyticBestEff float64 `json:"analytic_best_efficiency"`

	// MeasuredTau minimizes the mean replayed makespan over the common
	// failure traces; MeasuredEff is the point's efficiency at that
	// interval.
	MeasuredTau      float64 `json:"measured_tau_seconds"`
	MeasuredMakespan float64 `json:"measured_makespan_seconds"`
	MeasuredEff      float64 `json:"measured_efficiency"`

	TracesPerEval int  `json:"traces_per_eval"`
	Evals         int  `json:"evals"`
	Trials        int  `json:"trials"`
	Converged     bool `json:"converged"`
}

func (e *explorer) result() *Result {
	r := &Result{
		Budget: e.cfg.Budget, Spent: e.spent,
		SpentRefine: e.spentRefine, SpentBisect: e.spentBisect, SpentTau: e.spentTau,
		Rounds: e.rounds, TargetCI: e.cfg.TargetCI,
		Crossovers: e.crossovers, Tau: e.tau,
	}
	for _, c := range e.cells {
		r.Points = append(r.Points, pointResult(c))
	}
	for _, c := range e.probes {
		r.Probes = append(r.Probes, pointResult(c))
	}
	return r
}

func pointResult(c *cell) PointResult {
	sc := c.p.Scenario
	pr := PointResult{
		Scenario:        sc.Point.Name,
		App:             sc.Point.App,
		Mode:            sc.Point.Mode.String(),
		Logical:         sc.Point.Logical,
		Degree:          sc.Point.EffectiveDegree(),
		PhysProcs:       c.p.PhysProcs,
		NodeMTBFSeconds: sc.MTBF.Seconds(),
		Trials:          c.n,
		Crashes:         c.crashes,
		Makespan:        c.aggs[0].Stat(),
		Slowdown:        c.aggs[1].Stat(),
		Efficiency:      c.aggs[2].Stat(),
		AnalyticEff:     c.p.AnalyticEfficiency(),
		Fingerprint:     c.p.Fingerprint(),
	}
	if rc := c.relCI(); !math.IsInf(rc, 1) && !math.IsNaN(rc) {
		pr.RelCI = &rc
	}
	return pr
}
