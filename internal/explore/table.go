package explore

import (
	"fmt"
	"math"

	"repro/internal/experiments"
)

// Table renders the exploration: one row per explored point (grid first,
// then bisection probes) with its adaptively sized trial count and
// achieved relative CI, with the crossover brackets and tau searches as
// footnotes.
func (r *Result) Table() *experiments.Table {
	t := &experiments.Table{
		ID: "explore",
		Title: fmt.Sprintf("Adaptive exploration (budget %d, spent %d: refine %d + bisect %d + tau %d, %d rounds)",
			r.Budget, r.Spent, r.SpentRefine, r.SpentBisect, r.SpentTau, r.Rounds),
		Header: []string{"scenario", "mode", "d", "MTBF (s)", "trials",
			"makespan (s)", "±95%", "eff", "±95%", "relCI", "model"},
	}
	addPoint := func(p PointResult) {
		rel := "-"
		if p.RelCI != nil {
			rel = fmt.Sprintf("%.3f", *p.RelCI)
		}
		t.AddRow(p.Scenario, p.Mode, fmt.Sprintf("%d", p.Degree),
			fmt.Sprintf("%.3g", p.NodeMTBFSeconds),
			fmt.Sprintf("%d", p.Trials),
			fmt.Sprintf("%.3f", p.Makespan.Mean), fmtCI(p.Makespan.CI95),
			fmt.Sprintf("%.3f", p.Efficiency.Mean), fmtCI(p.Efficiency.CI95),
			rel,
			fmt.Sprintf("%.3f", p.AnalyticEff),
		)
	}
	for _, p := range r.Points {
		addPoint(p)
	}
	for _, p := range r.Probes {
		addPoint(p)
	}
	t.Note("trials are allocated adaptively: each round's batches go to the points with the widest relative CI95 (target %.3g); probe rows are the crossover bisection's dynamically chosen points", r.TargetCI)
	for _, x := range r.Crossovers {
		switch {
		case x.MeasuredNodeMTBFSeconds == 0:
			t.Note("ccr vs %s d%d (p%d): no crossover inside the sampled MTBF grid; analytic predicts %.3g s",
				x.ReplMode, x.Degree, x.CCRPhysProcs, x.AnalyticNodeMTBFSeconds)
		case x.Separated:
			t.Note("ccr vs %s d%d (p%d): crossover bisected to node MTBF %.3g s (bracket [%.3g, %.3g], ratio %.2f, %d probe trials); grid interpolation said %.3g s, analytic %.3g s",
				x.ReplMode, x.Degree, x.CCRPhysProcs, x.MeasuredNodeMTBFSeconds,
				x.BracketLoSeconds, x.BracketHiSeconds, x.BracketRatio, x.Trials,
				x.GridNodeMTBFSeconds, x.AnalyticNodeMTBFSeconds)
		default:
			t.Note("ccr vs %s d%d (p%d): bisection stopped unseparated at node MTBF %.3g s (bracket [%.3g, %.3g], %d probe trials) — the curves are statistically indistinguishable there at this budget",
				x.ReplMode, x.Degree, x.CCRPhysProcs, x.MeasuredNodeMTBFSeconds,
				x.BracketLoSeconds, x.BracketHiSeconds, x.Trials)
		}
	}
	for _, ts := range r.Tau {
		if ts.Trials == 0 {
			t.Note("tau search %s: budget exhausted before any evaluation; Daly predicts %.4g s (eff %.3f)",
				ts.Scenario, ts.AnalyticTau, ts.AnalyticBestEff)
			continue
		}
		t.Note("tau search %s: measured optimum %.4g s (eff %.3f, %d evals x %d traces) vs Daly %.4g s (eff %.3f); replays ran at %.4g s",
			ts.Scenario, ts.MeasuredTau, ts.MeasuredEff, ts.Evals, ts.TracesPerEval,
			ts.AnalyticTau, ts.AnalyticBestEff, ts.ReplayTau)
	}
	return t
}

// fmtCI renders a confidence half-width, "-" when undefined.
func fmtCI(ci float64) string {
	if math.IsNaN(ci) {
		return "-"
	}
	return fmt.Sprintf("%.4f", ci)
}
