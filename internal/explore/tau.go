package explore

import (
	"math"

	"repro/internal/ckpt"
	"repro/internal/ckptsim"
)

const (
	// goldenPhi is the golden-section step (1/phi), shared with
	// ckpt.OptimalInterval's analytic search.
	goldenPhi = 0.6180339887498949
	// maxTauEvals caps one cell's objective evaluations; at the default 24
	// traces per evaluation that bounds a cell's tau search near 800
	// trials.
	maxTauEvals = 32
	// tauSpan brackets the measured search at analyticTau/8 .. 8x — three
	// octaves around Daly's optimum. The analytic search's full bracket
	// reaches intervals shorter than the checkpoint cost itself, where a
	// replay practically never completes and its cost explodes with the
	// failure count; the measured optimum is a trace-discreteness
	// perturbation of the analytic one and lives well inside this window.
	tauSpan = 8.0
	// tauLogTol stops the golden section once the bracket endpoints are
	// within 2% of each other (the search walks log(tau), so the tolerance
	// is a ratio) — tighter brackets cost evaluations without moving the
	// reported efficiency.
	tauLogTol = 0.02
)

// tauSearch is engine 3: for every ccr grid point, golden-section the
// checkpoint interval over measured Replay makespans on a common set of
// seeded failure traces (common random numbers — every candidate interval
// replays the same failures, so the comparison is paired and the objective
// is deterministic), cross-checked against Daly's analytic optimum.
func (e *explorer) tauSearch() {
	for _, c := range e.cells {
		if !c.p.IsCCR() {
			continue
		}
		e.tau = append(e.tau, e.tauSearchCell(c))
	}
}

func (e *explorer) tauSearchCell(c *cell) TauResult {
	p := c.p
	sysMTBF := p.SysMTBF()
	res := TauResult{
		Scenario:        p.Scenario.Point.Name,
		NodeMTBFSeconds: p.Scenario.MTBF.Seconds(),
		SysMTBFSeconds:  sysMTBF,
		Delta:           p.Params.Delta,
		Restart:         p.Params.Restart,
		ReplayTau:       p.Params.Tau,
		AnalyticTau:     ckpt.OptimalInterval(p.Params.Delta, p.Params.Restart, sysMTBF),
		AnalyticBestEff: ckpt.BestEfficiency(p.Params.Delta, p.Params.Restart, sysMTBF),
		TracesPerEval:   e.cfg.TauTraces,
	}

	// Objective: mean replayed makespan at interval tau over the common
	// traces, memoized per tau. A fresh evaluation takes its traces from
	// the budget whole or not at all, so a dry budget never produces a
	// half-measured objective value.
	memo := map[float64]float64{}
	eval := func(tau float64) (float64, bool) {
		if m, ok := memo[tau]; ok {
			return m, true
		}
		if res.Evals >= maxTauEvals || !e.tryTake(e.cfg.TauTraces) {
			return 0, false
		}
		e.spentTau += e.cfg.TauTraces
		res.Evals++
		res.Trials += e.cfg.TauTraces
		params := ckptsim.Params{Tau: tau, Delta: p.Params.Delta, Restart: p.Params.Restart}
		walls := make([]float64, e.cfg.TauTraces)
		runJobs(e.cfg.Workers, len(walls), func(k int) {
			walls[k] = p.ReplayTrace(1, k, params).Makespan
		})
		sum := 0.0
		for _, w := range walls {
			sum += w
		}
		m := sum / float64(len(walls))
		memo[tau] = m
		return m, true
	}

	// Golden-section log(tau) over tauSpan octaves around the analytic
	// optimum (checkpoint intervals live on a ratio scale; see tauSpan for
	// why not the analytic search's full bracket).
	if res.AnalyticTau <= 0 {
		return res // degenerate machine: nothing to search
	}
	lo := math.Log(res.AnalyticTau / tauSpan)
	hi := math.Log(res.AnalyticTau * tauSpan)
	evalLog := func(x float64) (float64, bool) { return eval(math.Exp(x)) }
	x1 := hi - goldenPhi*(hi-lo)
	x2 := lo + goldenPhi*(hi-lo)
	f1, ok1 := evalLog(x1)
	f2, ok2 := evalLog(x2)
	for ok1 && ok2 && hi-lo > tauLogTol {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - goldenPhi*(hi-lo)
			f1, ok1 = evalLog(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + goldenPhi*(hi-lo)
			f2, ok2 = evalLog(x2)
		}
	}
	res.Converged = ok1 && ok2

	// Report the best evaluated point (deterministic argmin: smallest
	// makespan, ties to the smaller tau).
	bestTau, bestMk := math.NaN(), math.Inf(1)
	for tau, mk := range memo {
		if mk < bestMk || (mk == bestMk && tau < bestTau) {
			bestTau, bestMk = tau, mk
		}
	}
	if !math.IsInf(bestMk, 1) {
		res.MeasuredTau = bestTau
		res.MeasuredMakespan = bestMk
		// FFEff*FFWall is tau-independent (native-normalized work rate), so
		// this is the point's efficiency had its replays used bestTau.
		res.MeasuredEff = p.FFEff * p.FFWall / bestMk
	}
	return res
}
