// Package fault injects crash-stop failures into replicated runs: at fixed
// virtual times, at protocol points inside intra-parallel sections (the
// three cases of §III-B2), or randomly following an exponential MTBF, as a
// real machine would produce them.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
)

// At schedules a crash of replica (logical, lane) at virtual time t.
func At(e *sim.Engine, sys *replication.System, logical, lane int, t sim.Time) {
	e.At(t, func() { sys.KillReplica(logical, lane) })
}

// Point identifies a protocol point inside a section (§III-B2).
type Point uint8

// Protocol points at which a crash can be injected.
const (
	BeforeExec Point = iota // before the task body runs
	AfterExec               // after the body, before any update is sent
	MidUpdate               // after one argument's update has been sent
)

func (p Point) String() string {
	switch p {
	case BeforeExec:
		return "before-exec"
	case AfterExec:
		return "after-exec"
	case MidUpdate:
		return "mid-update"
	}
	return "?"
}

// CrashPlan crashes the calling replica the n-th time the given protocol
// point is reached (counting from 1). Install it in core.Options.Hooks.
type CrashPlan struct {
	Point Point
	Nth   int
	count int
	fired bool
}

// Reset re-arms the plan. A CrashPlan is stateful (it counts protocol
// points and fires once); reusing one across runs without a Reset means the
// second run inherits count/fired from the first and never crashes.
func (cp *CrashPlan) Reset() {
	cp.count = 0
	cp.fired = false
}

// Hooks builds the intra-engine hooks implementing the plan for the given
// replica. Pass p == nil (or install on one replica only) elsewhere.
func (cp *CrashPlan) Hooks(self *replication.Proc) core.Hooks {
	trigger := func() {
		cp.count++
		if !cp.fired && cp.count == cp.Nth {
			cp.fired = true
			self.R.Crash()
		}
	}
	var h core.Hooks
	switch cp.Point {
	case BeforeExec:
		h.BeforeTaskExec = func(_, _ int) { trigger() }
	case AfterExec:
		h.AfterTaskExec = func(_, _ int) { trigger() }
	case MidUpdate:
		h.AfterArgSend = func(_, _, _ int) { trigger() }
	}
	return h
}

// Schedule is a reproducible set of timed replica crashes.
type Schedule struct {
	Crashes []Crash
}

// Crash is one scheduled failure.
type Crash struct {
	Logical, Lane int
	Time          sim.Time
}

// Install arms every crash of the schedule on the engine, in canonical
// (time, logical, lane) order. The engine breaks equal-time ties by
// insertion order, so arming in the same canonical order Fingerprint
// keys by is what makes two set-equal schedules — including ones with
// same-time crashes — genuinely interchangeable under the sweep memo.
func (s *Schedule) Install(e *sim.Engine, sys *replication.System) {
	crashes := append([]Crash(nil), s.Crashes...)
	sortCrashes(crashes)
	for _, c := range crashes {
		At(e, sys, c.Logical, c.Lane, c.Time)
	}
}

// Fingerprint returns a compact content key of the schedule: two schedules
// with equal fingerprints arm identical crashes. Crashes are canonicalized
// by (time, logical, lane) order first — installing a schedule arms the
// same events whatever the slice order, so two shuffles of one schedule
// must key identically or they defeat the sweep memo. The empty schedule
// fingerprints to "", so a fault-free trial keys identically to a spec with
// no schedule at all — which is what lets a sweep memo serve it from the
// fault-free baseline run.
func (s *Schedule) Fingerprint() string {
	if s == nil || len(s.Crashes) == 0 {
		return ""
	}
	crashes := append([]Crash(nil), s.Crashes...)
	sortCrashes(crashes)
	var b strings.Builder
	for _, c := range crashes {
		fmt.Fprintf(&b, "%d:%d@%d;", c.Logical, c.Lane, int64(c.Time))
	}
	return b.String()
}

// sortCrashes orders crashes canonically by (time, logical, lane).
func sortCrashes(cs []Crash) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Time != cs[j].Time {
			return cs[i].Time < cs[j].Time
		}
		if cs[i].Logical != cs[j].Logical {
			return cs[i].Logical < cs[j].Logical
		}
		return cs[i].Lane < cs[j].Lane
	})
}

// Exponential draws a crash schedule from an exponential per-replica MTBF
// over the horizon, never killing both replicas of the same logical rank
// (the paper's metric assumes the run is not interrupted; a double failure
// would force a checkpoint restart). The result is deterministic in seed.
func Exponential(logical, degree int, mtbf, horizon sim.Time, seed int64) *Schedule {
	return ExponentialDraw(logical, degree, mtbf, horizon, seed).Schedule
}

// Draw is one Monte Carlo draw of the failure process: the survivable crash
// schedule plus the failures the survivability clamp suppressed.
type Draw struct {
	Schedule *Schedule
	// Suppressed counts drawn failures that were dropped because they would
	// have killed the last replica of a logical rank. A nonzero count means
	// the raw failure process would have interrupted this run: in a real
	// system the application falls back to checkpoint restart (§II), so
	// campaigns report it as a survival statistic.
	Suppressed int
}

// ExponentialDraw is Exponential exposing the full draw: the schedule plus
// the count of suppressed last-replica kills. Deterministic in seed, and
// consuming the generator identically to Exponential for every (logical,
// degree, mtbf, horizon).
//
// The survivability clamp is deliberately lane-ordered: lanes draw in
// index order, so when every lane of a logical rank would crash, the
// lower-indexed lanes are the ones killed and the highest-indexed lane is
// the spared survivor. The choice is pinned by a seeded regression test
// (TestExponentialDrawLaneBias): which lane survives changes every drawn
// schedule, so it must not drift accidentally.
func ExponentialDraw(logical, degree int, mtbf, horizon sim.Time, seed int64) Draw {
	rng := newRand(seed)
	d := Draw{Schedule: &Schedule{}}
	killed := make(map[int]int) // logical -> kills so far
	for r := 0; r < logical; r++ {
		for l := 0; l < degree; l++ {
			t := sim.Time(rng.ExpFloat64() * float64(mtbf))
			if t >= horizon {
				continue
			}
			if killed[r]+1 >= degree {
				d.Suppressed++
				continue // keep at least one replica alive
			}
			killed[r]++
			d.Schedule.Crashes = append(d.Schedule.Crashes, Crash{Logical: r, Lane: l, Time: t})
		}
	}
	return d
}

// ExponentialDrawUnclamped draws the complete failure trace of every
// replica slot over the horizon: a Poisson (renewal) process per slot with
// repeated failures and no last-replica suppression. It models fault
// tolerance that repairs or restarts failed nodes — the coordinated
// checkpoint/restart path — where losing every replica of a rank is
// survivable (it just forces another rollback) and a restarted node can
// fail again.
//
// Each slot's sub-stream derives independently from seed, so growing the
// horizon extends a trace without disturbing the failures already drawn
// inside the smaller window — campaigns exploit this to enlarge the draw
// window until it covers a failure-stretched makespan. Crashes are
// returned sorted by (time, logical, lane); Suppressed is always zero.
func ExponentialDrawUnclamped(logical, degree int, mtbf, horizon sim.Time, seed int64) Draw {
	d := Draw{Schedule: &Schedule{}}
	for r := 0; r < logical; r++ {
		for l := 0; l < degree; l++ {
			rng := newRand(TrialSeed(seed, r, l))
			for t := expStep(rng, mtbf); t < horizon; t += expStep(rng, mtbf) {
				d.Schedule.Crashes = append(d.Schedule.Crashes, Crash{Logical: r, Lane: l, Time: t})
			}
		}
	}
	sortCrashes(d.Schedule.Crashes)
	return d
}

// expStep draws one exponential inter-arrival time, clamped to at least one
// virtual nanosecond so a pathologically small variate cannot stall the
// renewal loop.
func expStep(rng *rand.Rand, mtbf sim.Time) sim.Time {
	dt := sim.Time(rng.ExpFloat64() * float64(mtbf))
	if dt < 1 {
		return 1
	}
	return dt
}

// TrialSeed derives the RNG seed of one campaign trial from the campaign
// seed and the (scenario, trial) coordinates, via a splitmix64 mix: nearby
// coordinates give statistically independent streams, and the mapping is
// stable across runs and worker counts.
func TrialSeed(base int64, scenario, trial int) int64 {
	x := uint64(base) ^ 0x9e3779b97f4a7c15*uint64(scenario+1) ^ 0xbf58476d1ce4e5b9*uint64(trial+1)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
