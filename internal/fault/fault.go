// Package fault injects crash-stop failures into replicated runs: at fixed
// virtual times, at protocol points inside intra-parallel sections (the
// three cases of §III-B2), or randomly following an exponential MTBF, as a
// real machine would produce them.
package fault

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
)

// At schedules a crash of replica (logical, lane) at virtual time t.
func At(e *sim.Engine, sys *replication.System, logical, lane int, t sim.Time) {
	e.At(t, func() { sys.KillReplica(logical, lane) })
}

// Point identifies a protocol point inside a section (§III-B2).
type Point uint8

// Protocol points at which a crash can be injected.
const (
	BeforeExec Point = iota // before the task body runs
	AfterExec               // after the body, before any update is sent
	MidUpdate               // after one argument's update has been sent
)

func (p Point) String() string {
	switch p {
	case BeforeExec:
		return "before-exec"
	case AfterExec:
		return "after-exec"
	case MidUpdate:
		return "mid-update"
	}
	return "?"
}

// CrashPlan crashes the calling replica the n-th time the given protocol
// point is reached (counting from 1). Install it in core.Options.Hooks.
type CrashPlan struct {
	Point Point
	Nth   int
	count int
	fired bool
}

// Hooks builds the intra-engine hooks implementing the plan for the given
// replica. Pass p == nil (or install on one replica only) elsewhere.
func (cp *CrashPlan) Hooks(self *replication.Proc) core.Hooks {
	trigger := func() {
		cp.count++
		if !cp.fired && cp.count == cp.Nth {
			cp.fired = true
			self.R.Crash()
		}
	}
	var h core.Hooks
	switch cp.Point {
	case BeforeExec:
		h.BeforeTaskExec = func(_, _ int) { trigger() }
	case AfterExec:
		h.AfterTaskExec = func(_, _ int) { trigger() }
	case MidUpdate:
		h.AfterArgSend = func(_, _, _ int) { trigger() }
	}
	return h
}

// Schedule is a reproducible set of timed replica crashes.
type Schedule struct {
	Crashes []Crash
}

// Crash is one scheduled failure.
type Crash struct {
	Logical, Lane int
	Time          sim.Time
}

// Install arms every crash of the schedule on the engine.
func (s *Schedule) Install(e *sim.Engine, sys *replication.System) {
	for _, c := range s.Crashes {
		At(e, sys, c.Logical, c.Lane, c.Time)
	}
}

// Exponential draws a crash schedule from an exponential per-replica MTBF
// over the horizon, never killing both replicas of the same logical rank
// (the paper's metric assumes the run is not interrupted; a double failure
// would force a checkpoint restart). The result is deterministic in seed.
func Exponential(logical, degree int, mtbf, horizon sim.Time, seed int64) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{}
	killed := make(map[int]int) // logical -> kills so far
	for r := 0; r < logical; r++ {
		for l := 0; l < degree; l++ {
			t := sim.Time(rng.ExpFloat64() * float64(mtbf))
			if t >= horizon {
				continue
			}
			if killed[r]+1 >= degree {
				continue // keep at least one replica alive
			}
			killed[r]++
			s.Crashes = append(s.Crashes, Crash{Logical: r, Lane: l, Time: t})
		}
	}
	return s
}
