package fault_test

import (
	"math"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/replication"
	"repro/internal/sim"
)

func TestPointStrings(t *testing.T) {
	for _, p := range []fault.Point{fault.BeforeExec, fault.AfterExec, fault.MidUpdate, fault.Point(9)} {
		if p.String() == "" {
			t.Fatal("empty point name")
		}
	}
}

func TestExponentialScheduleProperties(t *testing.T) {
	s := fault.Exponential(64, 2, sim.Second, 10*sim.Second, 42)
	perLogical := map[int]int{}
	for _, c := range s.Crashes {
		if c.Time < 0 || c.Time >= 10*sim.Second {
			t.Fatalf("crash outside horizon: %+v", c)
		}
		perLogical[c.Logical]++
	}
	for r, n := range perLogical {
		if n >= 2 {
			t.Fatalf("logical %d loses all replicas (%d crashes)", r, n)
		}
	}
	// Deterministic in seed.
	s2 := fault.Exponential(64, 2, sim.Second, 10*sim.Second, 42)
	if len(s.Crashes) != len(s2.Crashes) {
		t.Fatal("schedule not deterministic")
	}
	if len(s.Crashes) == 0 {
		t.Fatal("expected some crashes with MTBF=1s over 10s")
	}
}

// TestExponentialDrawHighRate hammers the generator with MTBF three orders
// of magnitude under the horizon: every logical rank must keep one live
// replica, the clamp must report what it suppressed, and the draw must stay
// deterministic and consistent with Exponential.
func TestExponentialDrawHighRate(t *testing.T) {
	for _, degree := range []int{2, 3} {
		for seed := int64(1); seed <= 20; seed++ {
			d := fault.ExponentialDraw(32, degree, sim.Millisecond, sim.Second, seed)
			perLogical := map[int]int{}
			for _, c := range d.Schedule.Crashes {
				perLogical[c.Logical]++
			}
			for r, n := range perLogical {
				if n > degree-1 {
					t.Fatalf("degree %d seed %d: logical %d loses all replicas (%d kills)", degree, seed, r, n)
				}
			}
			if d.Suppressed == 0 {
				t.Fatalf("degree %d seed %d: MTBF/horizon = 1/1000 must suppress kills", degree, seed)
			}
			if len(d.Schedule.Crashes)+d.Suppressed != 32*degree {
				t.Fatalf("degree %d seed %d: %d crashes + %d suppressed != %d draws",
					degree, seed, len(d.Schedule.Crashes), d.Suppressed, 32*degree)
			}
			s := fault.Exponential(32, degree, sim.Millisecond, sim.Second, seed)
			if s.Fingerprint() != d.Schedule.Fingerprint() {
				t.Fatalf("degree %d seed %d: Exponential and ExponentialDraw disagree", degree, seed)
			}
		}
	}
}

// TestScheduleFingerprint: empty schedules (and nil) key to "", distinct
// schedules to distinct keys, equal schedules to equal keys.
func TestScheduleFingerprint(t *testing.T) {
	var nilSched *fault.Schedule
	if nilSched.Fingerprint() != "" || (&fault.Schedule{}).Fingerprint() != "" {
		t.Fatal("empty schedule must fingerprint to \"\"")
	}
	a := fault.Exponential(8, 2, 10*sim.Millisecond, sim.Second, 1)
	b := fault.Exponential(8, 2, 10*sim.Millisecond, sim.Second, 1)
	c := fault.Exponential(8, 2, 10*sim.Millisecond, sim.Second, 2)
	if a.Fingerprint() == "" || a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal draws must share a fingerprint")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds should not collide (these draws differ)")
	}
}

// TestScheduleFingerprintOrderInsensitive is the regression test for the
// memo-defeating order sensitivity: the same crashes in a different slice
// order arm identical events, so they must produce the same key.
func TestScheduleFingerprintOrderInsensitive(t *testing.T) {
	s := fault.Exponential(16, 2, 20*sim.Millisecond, sim.Second, 3)
	if len(s.Crashes) < 3 {
		t.Fatalf("draw too small to shuffle (%d crashes)", len(s.Crashes))
	}
	shuffled := &fault.Schedule{Crashes: append([]fault.Crash(nil), s.Crashes...)}
	for i := range shuffled.Crashes { // deterministic reversal, no rng needed
		j := len(shuffled.Crashes) - 1 - i
		if i >= j {
			break
		}
		shuffled.Crashes[i], shuffled.Crashes[j] = shuffled.Crashes[j], shuffled.Crashes[i]
	}
	if s.Fingerprint() != shuffled.Fingerprint() {
		t.Fatal("shuffled schedule fingerprints differently: the sweep memo treats equal schedules as distinct")
	}
	// Sorting is on a copy: the caller's slice order is untouched.
	if shuffled.Crashes[0] == s.Crashes[0] && len(s.Crashes) > 1 {
		t.Fatal("test is vacuous: shuffle did not change the order")
	}
}

// TestExponentialDrawLaneBias pins the survivability clamp's lane choice:
// lanes draw in index order, so when every lane of a rank would crash the
// recorded kills are the lower-indexed lanes and the highest-indexed lane
// is the spared survivor. This is a deliberate, documented choice — see
// ExponentialDraw — not an accident; changing it silently would reshuffle
// every drawn schedule.
func TestExponentialDrawLaneBias(t *testing.T) {
	// MTBF three orders of magnitude under the horizon: every lane draws a
	// crash inside the window with overwhelming probability.
	for seed := int64(1); seed <= 10; seed++ {
		d := fault.ExponentialDraw(16, 2, sim.Millisecond, sim.Second, seed)
		for _, c := range d.Schedule.Crashes {
			if c.Lane != 0 {
				t.Fatalf("seed %d: clamp spared lane 0 of rank %d (killed lane %d); the survivor must be the highest lane",
					seed, c.Logical, c.Lane)
			}
		}
		if len(d.Schedule.Crashes) != 16 || d.Suppressed != 16 {
			t.Fatalf("seed %d: %d crashes, %d suppressed; want 16/16 at this rate",
				seed, len(d.Schedule.Crashes), d.Suppressed)
		}
	}
}

// TestExponentialDrawUnclamped covers the cCR failure model: repeated
// failures per slot, no survivability clamp, canonical crash order, and
// prefix stability under horizon growth.
func TestExponentialDrawUnclamped(t *testing.T) {
	d := fault.ExponentialDrawUnclamped(4, 1, 10*sim.Millisecond, sim.Second, 7)
	if d.Suppressed != 0 {
		t.Fatalf("unclamped draw suppressed %d kills", d.Suppressed)
	}
	perSlot := map[int]int{}
	for i, c := range d.Schedule.Crashes {
		if c.Time < 0 || c.Time >= sim.Second {
			t.Fatalf("crash outside horizon: %+v", c)
		}
		perSlot[c.Logical]++
		if i > 0 && d.Schedule.Crashes[i-1].Time > c.Time {
			t.Fatal("crashes not sorted by time")
		}
	}
	repeated := 0
	for _, n := range perSlot {
		if n > 1 {
			repeated++
		}
	}
	// ~100 expected failures per slot: every slot fails many times.
	if repeated != 4 {
		t.Fatalf("only %d of 4 slots failed repeatedly at MTBF << horizon", repeated)
	}

	// Deterministic in seed; different seeds draw different traces.
	d2 := fault.ExponentialDrawUnclamped(4, 1, 10*sim.Millisecond, sim.Second, 7)
	if d.Schedule.Fingerprint() != d2.Schedule.Fingerprint() {
		t.Fatal("unclamped draw not deterministic")
	}
	if d.Schedule.Fingerprint() == fault.ExponentialDrawUnclamped(4, 1, 10*sim.Millisecond, sim.Second, 8).Schedule.Fingerprint() {
		t.Fatal("different seeds collide")
	}

	// Prefix property: a larger horizon must reproduce every crash of the
	// smaller window exactly, then extend it.
	small := fault.ExponentialDrawUnclamped(4, 1, 10*sim.Millisecond, sim.Second, 7)
	big := fault.ExponentialDrawUnclamped(4, 1, 10*sim.Millisecond, 2*sim.Second, 7)
	var bigPrefix []fault.Crash
	for _, c := range big.Schedule.Crashes {
		if c.Time < sim.Second {
			bigPrefix = append(bigPrefix, c)
		}
	}
	if len(bigPrefix) != len(small.Schedule.Crashes) {
		t.Fatalf("horizon growth changed the small window: %d vs %d crashes",
			len(bigPrefix), len(small.Schedule.Crashes))
	}
	for i, c := range small.Schedule.Crashes {
		if bigPrefix[i] != c {
			t.Fatalf("crash %d differs after horizon growth: %+v vs %+v", i, c, bigPrefix[i])
		}
	}
	if len(big.Schedule.Crashes) <= len(small.Schedule.Crashes) {
		t.Fatal("doubled horizon drew no additional failures")
	}
}

// TestTrialSeedDerivation: the (base, scenario, trial) -> seed map is
// stable and collision-free over a realistic campaign envelope.
func TestTrialSeedDerivation(t *testing.T) {
	if fault.TrialSeed(7, 3, 11) != fault.TrialSeed(7, 3, 11) {
		t.Fatal("TrialSeed must be deterministic")
	}
	seen := map[int64]bool{}
	for sc := 0; sc < 20; sc++ {
		for tr := 0; tr < 200; tr++ {
			s := fault.TrialSeed(1, sc, tr)
			if seen[s] {
				t.Fatalf("seed collision at scenario %d trial %d", sc, tr)
			}
			seen[s] = true
		}
	}
}

// TestCrashPlanReset is the regression test for the stateful-plan bug: a
// CrashPlan reused across runs kept count/fired from the first run and
// never crashed again. Reset re-arms it.
func TestCrashPlanReset(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 4

	plan := &fault.CrashPlan{Point: fault.BeforeExec, Nth: 5}
	runWithPlan := func() int {
		c := newCluster(t, experiments.ClusterConfig{
			Logical: 2, Mode: experiments.Intra, SendLog: true,
		})
		c.Sys.Launch("app", func(p *replication.Proc) {
			opts := core.Options{}
			if p.Logical == 0 && p.Lane == 0 {
				opts.Hooks = plan.Hooks(p)
			}
			rt := core.NewIntra(p, opts)
			if _, err := hpccg.Run(rt, cfg); err != nil {
				t.Errorf("run: %v", err)
			}
		})
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Sys.Epoch()
	}

	if got := runWithPlan(); got != 1 {
		t.Fatalf("first run: %d deaths, want 1", got)
	}
	// Without Reset the plan stays fired: the second run sees no crash.
	// (That silent no-op is exactly what a reused/memoized plan hits.)
	if got := runWithPlan(); got != 0 {
		t.Fatalf("stale plan fired again: %d deaths, want 0", got)
	}
	plan.Reset()
	if got := runWithPlan(); got != 1 {
		t.Fatalf("after Reset: %d deaths, want 1", got)
	}
}

// TestCrashPlanMatrix drives HPCCG through every §III-B2 protocol point on
// both lanes and both inout modes and checks the survivors compute the
// failure-free residual.
func TestCrashPlanMatrix(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 6

	// Failure-free reference.
	var ref float64
	_, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 2, Mode: experiments.Intra},
		func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("ref: %v", err)
				return
			}
			ref = res.Residual
		})
	if err != nil {
		t.Fatal(err)
	}

	for _, point := range []fault.Point{fault.BeforeExec, fault.AfterExec, fault.MidUpdate} {
		for _, lane := range []int{0, 1} {
			for _, mode := range []core.InoutMode{core.CopyRestore, core.AtomicApply} {
				name := point.String() + "/" + mode.String()
				c := newCluster(t, experiments.ClusterConfig{
					Logical: 2, Mode: experiments.Intra, SendLog: true,
				})
				plan := &fault.CrashPlan{Point: point, Nth: 7}
				lane := lane
				c.Sys.Launch("app", func(p *replication.Proc) {
					opts := core.Options{Mode: mode}
					if p.Logical == 0 && p.Lane == lane {
						opts.Hooks = plan.Hooks(p)
					}
					rt := core.NewIntra(p, opts)
					res, err := hpccg.Run(rt, cfg)
					if err != nil {
						t.Errorf("%s lane %d: %v", name, lane, err)
						return
					}
					if math.Abs(res.Residual-ref) > 1e-9*ref+1e-15 {
						t.Errorf("%s lane %d: residual %v != ref %v", name, lane, res.Residual, ref)
					}
				})
				if _, err := c.Run(); err != nil {
					t.Fatalf("%s lane %d: %v", name, lane, err)
				}
			}
		}
	}
}

// TestExponentialFailuresDuringRun injects an MTBF-driven schedule and
// checks the run completes with correct numerics.
func TestExponentialFailuresDuringRun(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 8

	var ref float64
	if _, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 4, Mode: experiments.Intra},
		func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err == nil {
				ref = res.Residual
			}
		}); err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 5; seed++ {
		c := newCluster(t, experiments.ClusterConfig{
			Logical: 4, Mode: experiments.Intra, SendLog: true,
		})
		sched := fault.Exponential(4, 2, 50*sim.Millisecond, 200*sim.Millisecond, seed)
		sched.Install(c.E, c.Sys)
		bad := false
		c.Launch(func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("seed %d rank %d: %v", seed, rt.LogicalRank(), err)
				return
			}
			if math.Abs(res.Residual-ref) > 1e-9*ref+1e-15 {
				bad = true
			}
		})
		if _, err := c.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bad {
			t.Fatalf("seed %d: wrong numerics under failures %v", seed, sched.Crashes)
		}
	}
}

// TestDenseCrashSweep slides a single crash across the whole runtime of a
// short HPCCG execution in fine steps, so failures land inside sections,
// collectives, and halo exchanges alike.
func TestDenseCrashSweep(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 4

	var ref float64
	var horizon sim.Time
	if _, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 2, Mode: experiments.Intra},
		func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("ref: %v", err)
				return
			}
			ref = res.Residual
			if rt.Now() > horizon {
				horizon = rt.Now()
			}
		}); err != nil {
		t.Fatal(err)
	}

	steps := 40
	for i := 0; i < steps; i++ {
		at := horizon * sim.Time(i) / sim.Time(steps)
		lane := i % 2
		c := newCluster(t, experiments.ClusterConfig{
			Logical: 2, Mode: experiments.Intra, SendLog: true,
		})
		fault.At(c.E, c.Sys, 1, lane, at)
		c.Launch(func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("crash at %v lane %d: rank %d: %v", at, lane, rt.LogicalRank(), err)
				return
			}
			if math.Abs(res.Residual-ref) > 1e-9*ref+1e-15 {
				t.Errorf("crash at %v lane %d: residual %v != %v", at, lane, res.Residual, ref)
			}
		})
		if _, err := c.Run(); err != nil {
			t.Fatalf("crash at %v lane %d: %v", at, lane, err)
		}
	}
}

// newCluster builds a cluster from a known-good test config, failing the
// test on a validation error.
func newCluster(t *testing.T, cfg experiments.ClusterConfig) *experiments.Cluster {
	t.Helper()
	c, err := experiments.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestInstallCanonicalOrder: the engine breaks equal-time event ties by
// insertion order, so Install must arm crashes in the same canonical
// order Fingerprint keys by — otherwise two set-equal schedules (which
// now share a sweep-memo key) could simulate differently.
func TestInstallCanonicalOrder(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 4

	run := func(crashes []fault.Crash) sim.Time {
		c := newCluster(t, experiments.ClusterConfig{
			Logical: 2, Mode: experiments.Intra, SendLog: true,
		})
		sched := &fault.Schedule{Crashes: crashes}
		sched.Install(c.E, c.Sys)
		c.Launch(func(rt core.Runner) {
			if _, err := hpccg.Run(rt, cfg); err != nil {
				t.Errorf("rank %d: %v", rt.LogicalRank(), err)
			}
		})
		wall, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return wall
	}

	at := 5 * sim.Millisecond // mid-run, same instant for both crashes
	fwd := []fault.Crash{{Logical: 0, Lane: 0, Time: at}, {Logical: 1, Lane: 1, Time: at}}
	rev := []fault.Crash{{Logical: 1, Lane: 1, Time: at}, {Logical: 0, Lane: 0, Time: at}}
	if (&fault.Schedule{Crashes: fwd}).Fingerprint() != (&fault.Schedule{Crashes: rev}).Fingerprint() {
		t.Fatal("set-equal schedules must share a fingerprint")
	}
	if wf, wr := run(fwd), run(rev); wf != wr {
		t.Fatalf("slice order changed the simulation: wall %v vs %v", wf, wr)
	}
}
