package fault_test

import (
	"math"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/replication"
	"repro/internal/sim"
)

func TestPointStrings(t *testing.T) {
	for _, p := range []fault.Point{fault.BeforeExec, fault.AfterExec, fault.MidUpdate, fault.Point(9)} {
		if p.String() == "" {
			t.Fatal("empty point name")
		}
	}
}

func TestExponentialScheduleProperties(t *testing.T) {
	s := fault.Exponential(64, 2, sim.Second, 10*sim.Second, 42)
	perLogical := map[int]int{}
	for _, c := range s.Crashes {
		if c.Time < 0 || c.Time >= 10*sim.Second {
			t.Fatalf("crash outside horizon: %+v", c)
		}
		perLogical[c.Logical]++
	}
	for r, n := range perLogical {
		if n >= 2 {
			t.Fatalf("logical %d loses all replicas (%d crashes)", r, n)
		}
	}
	// Deterministic in seed.
	s2 := fault.Exponential(64, 2, sim.Second, 10*sim.Second, 42)
	if len(s.Crashes) != len(s2.Crashes) {
		t.Fatal("schedule not deterministic")
	}
	if len(s.Crashes) == 0 {
		t.Fatal("expected some crashes with MTBF=1s over 10s")
	}
}

// TestCrashPlanMatrix drives HPCCG through every §III-B2 protocol point on
// both lanes and both inout modes and checks the survivors compute the
// failure-free residual.
func TestCrashPlanMatrix(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 6

	// Failure-free reference.
	var ref float64
	_, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 2, Mode: experiments.Intra},
		func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("ref: %v", err)
				return
			}
			ref = res.Residual
		})
	if err != nil {
		t.Fatal(err)
	}

	for _, point := range []fault.Point{fault.BeforeExec, fault.AfterExec, fault.MidUpdate} {
		for _, lane := range []int{0, 1} {
			for _, mode := range []core.InoutMode{core.CopyRestore, core.AtomicApply} {
				name := point.String() + "/" + mode.String()
				c := experiments.NewCluster(experiments.ClusterConfig{
					Logical: 2, Mode: experiments.Intra, SendLog: true,
				})
				plan := &fault.CrashPlan{Point: point, Nth: 7}
				lane := lane
				c.Sys.Launch("app", func(p *replication.Proc) {
					opts := core.Options{Mode: mode}
					if p.Logical == 0 && p.Lane == lane {
						opts.Hooks = plan.Hooks(p)
					}
					rt := core.NewIntra(p, opts)
					res, err := hpccg.Run(rt, cfg)
					if err != nil {
						t.Errorf("%s lane %d: %v", name, lane, err)
						return
					}
					if math.Abs(res.Residual-ref) > 1e-9*ref+1e-15 {
						t.Errorf("%s lane %d: residual %v != ref %v", name, lane, res.Residual, ref)
					}
				})
				if _, err := c.Run(); err != nil {
					t.Fatalf("%s lane %d: %v", name, lane, err)
				}
			}
		}
	}
}

// TestExponentialFailuresDuringRun injects an MTBF-driven schedule and
// checks the run completes with correct numerics.
func TestExponentialFailuresDuringRun(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 8

	var ref float64
	if _, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 4, Mode: experiments.Intra},
		func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err == nil {
				ref = res.Residual
			}
		}); err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 5; seed++ {
		c := experiments.NewCluster(experiments.ClusterConfig{
			Logical: 4, Mode: experiments.Intra, SendLog: true,
		})
		sched := fault.Exponential(4, 2, 50*sim.Millisecond, 200*sim.Millisecond, seed)
		sched.Install(c.E, c.Sys)
		bad := false
		c.Launch(func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("seed %d rank %d: %v", seed, rt.LogicalRank(), err)
				return
			}
			if math.Abs(res.Residual-ref) > 1e-9*ref+1e-15 {
				bad = true
			}
		})
		if _, err := c.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bad {
			t.Fatalf("seed %d: wrong numerics under failures %v", seed, sched.Crashes)
		}
	}
}

// TestDenseCrashSweep slides a single crash across the whole runtime of a
// short HPCCG execution in fine steps, so failures land inside sections,
// collectives, and halo exchanges alike.
func TestDenseCrashSweep(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 4

	var ref float64
	var horizon sim.Time
	if _, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 2, Mode: experiments.Intra},
		func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("ref: %v", err)
				return
			}
			ref = res.Residual
			if rt.Now() > horizon {
				horizon = rt.Now()
			}
		}); err != nil {
		t.Fatal(err)
	}

	steps := 40
	for i := 0; i < steps; i++ {
		at := horizon * sim.Time(i) / sim.Time(steps)
		lane := i % 2
		c := experiments.NewCluster(experiments.ClusterConfig{
			Logical: 2, Mode: experiments.Intra, SendLog: true,
		})
		fault.At(c.E, c.Sys, 1, lane, at)
		c.Launch(func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("crash at %v lane %d: rank %d: %v", at, lane, rt.LogicalRank(), err)
				return
			}
			if math.Abs(res.Residual-ref) > 1e-9*ref+1e-15 {
				t.Errorf("crash at %v lane %d: residual %v != %v", at, lane, res.Residual, ref)
			}
		})
		if _, err := c.Run(); err != nil {
			t.Fatalf("crash at %v lane %d: %v", at, lane, err)
		}
	}
}
