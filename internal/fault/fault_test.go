package fault_test

import (
	"math"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/replication"
	"repro/internal/sim"
)

func TestPointStrings(t *testing.T) {
	for _, p := range []fault.Point{fault.BeforeExec, fault.AfterExec, fault.MidUpdate, fault.Point(9)} {
		if p.String() == "" {
			t.Fatal("empty point name")
		}
	}
}

func TestExponentialScheduleProperties(t *testing.T) {
	s := fault.Exponential(64, 2, sim.Second, 10*sim.Second, 42)
	perLogical := map[int]int{}
	for _, c := range s.Crashes {
		if c.Time < 0 || c.Time >= 10*sim.Second {
			t.Fatalf("crash outside horizon: %+v", c)
		}
		perLogical[c.Logical]++
	}
	for r, n := range perLogical {
		if n >= 2 {
			t.Fatalf("logical %d loses all replicas (%d crashes)", r, n)
		}
	}
	// Deterministic in seed.
	s2 := fault.Exponential(64, 2, sim.Second, 10*sim.Second, 42)
	if len(s.Crashes) != len(s2.Crashes) {
		t.Fatal("schedule not deterministic")
	}
	if len(s.Crashes) == 0 {
		t.Fatal("expected some crashes with MTBF=1s over 10s")
	}
}

// TestExponentialDrawHighRate hammers the generator with MTBF three orders
// of magnitude under the horizon: every logical rank must keep one live
// replica, the clamp must report what it suppressed, and the draw must stay
// deterministic and consistent with Exponential.
func TestExponentialDrawHighRate(t *testing.T) {
	for _, degree := range []int{2, 3} {
		for seed := int64(1); seed <= 20; seed++ {
			d := fault.ExponentialDraw(32, degree, sim.Millisecond, sim.Second, seed)
			perLogical := map[int]int{}
			for _, c := range d.Schedule.Crashes {
				perLogical[c.Logical]++
			}
			for r, n := range perLogical {
				if n > degree-1 {
					t.Fatalf("degree %d seed %d: logical %d loses all replicas (%d kills)", degree, seed, r, n)
				}
			}
			if d.Suppressed == 0 {
				t.Fatalf("degree %d seed %d: MTBF/horizon = 1/1000 must suppress kills", degree, seed)
			}
			if len(d.Schedule.Crashes)+d.Suppressed != 32*degree {
				t.Fatalf("degree %d seed %d: %d crashes + %d suppressed != %d draws",
					degree, seed, len(d.Schedule.Crashes), d.Suppressed, 32*degree)
			}
			s := fault.Exponential(32, degree, sim.Millisecond, sim.Second, seed)
			if s.Fingerprint() != d.Schedule.Fingerprint() {
				t.Fatalf("degree %d seed %d: Exponential and ExponentialDraw disagree", degree, seed)
			}
		}
	}
}

// TestScheduleFingerprint: empty schedules (and nil) key to "", distinct
// schedules to distinct keys, equal schedules to equal keys.
func TestScheduleFingerprint(t *testing.T) {
	var nilSched *fault.Schedule
	if nilSched.Fingerprint() != "" || (&fault.Schedule{}).Fingerprint() != "" {
		t.Fatal("empty schedule must fingerprint to \"\"")
	}
	a := fault.Exponential(8, 2, 10*sim.Millisecond, sim.Second, 1)
	b := fault.Exponential(8, 2, 10*sim.Millisecond, sim.Second, 1)
	c := fault.Exponential(8, 2, 10*sim.Millisecond, sim.Second, 2)
	if a.Fingerprint() == "" || a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal draws must share a fingerprint")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds should not collide (these draws differ)")
	}
}

// TestTrialSeedDerivation: the (base, scenario, trial) -> seed map is
// stable and collision-free over a realistic campaign envelope.
func TestTrialSeedDerivation(t *testing.T) {
	if fault.TrialSeed(7, 3, 11) != fault.TrialSeed(7, 3, 11) {
		t.Fatal("TrialSeed must be deterministic")
	}
	seen := map[int64]bool{}
	for sc := 0; sc < 20; sc++ {
		for tr := 0; tr < 200; tr++ {
			s := fault.TrialSeed(1, sc, tr)
			if seen[s] {
				t.Fatalf("seed collision at scenario %d trial %d", sc, tr)
			}
			seen[s] = true
		}
	}
}

// TestCrashPlanReset is the regression test for the stateful-plan bug: a
// CrashPlan reused across runs kept count/fired from the first run and
// never crashed again. Reset re-arms it.
func TestCrashPlanReset(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 4

	plan := &fault.CrashPlan{Point: fault.BeforeExec, Nth: 5}
	runWithPlan := func() int {
		c := newCluster(t, experiments.ClusterConfig{
			Logical: 2, Mode: experiments.Intra, SendLog: true,
		})
		c.Sys.Launch("app", func(p *replication.Proc) {
			opts := core.Options{}
			if p.Logical == 0 && p.Lane == 0 {
				opts.Hooks = plan.Hooks(p)
			}
			rt := core.NewIntra(p, opts)
			if _, err := hpccg.Run(rt, cfg); err != nil {
				t.Errorf("run: %v", err)
			}
		})
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Sys.Epoch()
	}

	if got := runWithPlan(); got != 1 {
		t.Fatalf("first run: %d deaths, want 1", got)
	}
	// Without Reset the plan stays fired: the second run sees no crash.
	// (That silent no-op is exactly what a reused/memoized plan hits.)
	if got := runWithPlan(); got != 0 {
		t.Fatalf("stale plan fired again: %d deaths, want 0", got)
	}
	plan.Reset()
	if got := runWithPlan(); got != 1 {
		t.Fatalf("after Reset: %d deaths, want 1", got)
	}
}

// TestCrashPlanMatrix drives HPCCG through every §III-B2 protocol point on
// both lanes and both inout modes and checks the survivors compute the
// failure-free residual.
func TestCrashPlanMatrix(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 6

	// Failure-free reference.
	var ref float64
	_, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 2, Mode: experiments.Intra},
		func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("ref: %v", err)
				return
			}
			ref = res.Residual
		})
	if err != nil {
		t.Fatal(err)
	}

	for _, point := range []fault.Point{fault.BeforeExec, fault.AfterExec, fault.MidUpdate} {
		for _, lane := range []int{0, 1} {
			for _, mode := range []core.InoutMode{core.CopyRestore, core.AtomicApply} {
				name := point.String() + "/" + mode.String()
				c := newCluster(t, experiments.ClusterConfig{
					Logical: 2, Mode: experiments.Intra, SendLog: true,
				})
				plan := &fault.CrashPlan{Point: point, Nth: 7}
				lane := lane
				c.Sys.Launch("app", func(p *replication.Proc) {
					opts := core.Options{Mode: mode}
					if p.Logical == 0 && p.Lane == lane {
						opts.Hooks = plan.Hooks(p)
					}
					rt := core.NewIntra(p, opts)
					res, err := hpccg.Run(rt, cfg)
					if err != nil {
						t.Errorf("%s lane %d: %v", name, lane, err)
						return
					}
					if math.Abs(res.Residual-ref) > 1e-9*ref+1e-15 {
						t.Errorf("%s lane %d: residual %v != ref %v", name, lane, res.Residual, ref)
					}
				})
				if _, err := c.Run(); err != nil {
					t.Fatalf("%s lane %d: %v", name, lane, err)
				}
			}
		}
	}
}

// TestExponentialFailuresDuringRun injects an MTBF-driven schedule and
// checks the run completes with correct numerics.
func TestExponentialFailuresDuringRun(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 8

	var ref float64
	if _, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 4, Mode: experiments.Intra},
		func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err == nil {
				ref = res.Residual
			}
		}); err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 5; seed++ {
		c := newCluster(t, experiments.ClusterConfig{
			Logical: 4, Mode: experiments.Intra, SendLog: true,
		})
		sched := fault.Exponential(4, 2, 50*sim.Millisecond, 200*sim.Millisecond, seed)
		sched.Install(c.E, c.Sys)
		bad := false
		c.Launch(func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("seed %d rank %d: %v", seed, rt.LogicalRank(), err)
				return
			}
			if math.Abs(res.Residual-ref) > 1e-9*ref+1e-15 {
				bad = true
			}
		})
		if _, err := c.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bad {
			t.Fatalf("seed %d: wrong numerics under failures %v", seed, sched.Crashes)
		}
	}
}

// TestDenseCrashSweep slides a single crash across the whole runtime of a
// short HPCCG execution in fine steps, so failures land inside sections,
// collectives, and halo exchanges alike.
func TestDenseCrashSweep(t *testing.T) {
	cfg := hpccg.DefaultConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	cfg.Iters = 4

	var ref float64
	var horizon sim.Time
	if _, err := experiments.RunProgram(experiments.ClusterConfig{Logical: 2, Mode: experiments.Intra},
		func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("ref: %v", err)
				return
			}
			ref = res.Residual
			if rt.Now() > horizon {
				horizon = rt.Now()
			}
		}); err != nil {
		t.Fatal(err)
	}

	steps := 40
	for i := 0; i < steps; i++ {
		at := horizon * sim.Time(i) / sim.Time(steps)
		lane := i % 2
		c := newCluster(t, experiments.ClusterConfig{
			Logical: 2, Mode: experiments.Intra, SendLog: true,
		})
		fault.At(c.E, c.Sys, 1, lane, at)
		c.Launch(func(rt core.Runner) {
			res, err := hpccg.Run(rt, cfg)
			if err != nil {
				t.Errorf("crash at %v lane %d: rank %d: %v", at, lane, rt.LogicalRank(), err)
				return
			}
			if math.Abs(res.Residual-ref) > 1e-9*ref+1e-15 {
				t.Errorf("crash at %v lane %d: residual %v != %v", at, lane, res.Residual, ref)
			}
		})
		if _, err := c.Run(); err != nil {
			t.Fatalf("crash at %v lane %d: %v", at, lane, err)
		}
	}
}

// newCluster builds a cluster from a known-good test config, failing the
// test on a validation error.
func newCluster(t *testing.T, cfg experiments.ClusterConfig) *experiments.Cluster {
	t.Helper()
	c, err := experiments.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
