package fault

import (
	"math/rand"
	"testing"
)

// The whole point of lfgSource is bit-identical streams: campaign fault
// schedules are pinned by goldens, so the fast source must be
// indistinguishable from rand.New(rand.NewSource(seed)).
func TestLFGSourceMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 89482311, 1 << 31, -(1 << 35), 6364136223846793005}
	for _, base := range []int64{0, 17} {
		seeds = append(seeds, TrialSeed(base, 3, 11))
	}
	for _, seed := range seeds {
		want := rand.NewSource(seed).(rand.Source64)
		got := &lfgSource{}
		got.Seed(seed)
		for i := 0; i < 2500; i++ {
			if g, w := got.Uint64(), want.Uint64(); g != w {
				t.Fatalf("seed %d: Uint64 #%d = %d, stdlib %d", seed, i, g, w)
			}
		}
	}
	// And through rand.Rand, the consumer the campaigns actually use.
	for _, seed := range seeds {
		want := rand.New(rand.NewSource(seed))
		got := newRand(seed)
		for i := 0; i < 500; i++ {
			if g, w := got.ExpFloat64(), want.ExpFloat64(); g != w {
				t.Fatalf("seed %d: ExpFloat64 #%d = %v, stdlib %v", seed, i, g, w)
			}
		}
	}
}

func BenchmarkSeedLFG(b *testing.B) {
	s := &lfgSource{}
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkSeedStdlib(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rand.NewSource(int64(i))
	}
}
