package jobstream

import (
	"testing"

	"repro/internal/testutil"
)

// steadyView builds a mid-stream scheduler view: a cluster mostly busy, a
// queue whose head does not fit (forcing EASY into its reservation walk,
// the most expensive tick) and a tail of backfill candidates.
func steadyView() *View {
	return &View{
		Now:   100,
		Nodes: 16,
		Free:  3,
		Pending: []PendingJob{
			{Width: 8, Arrival: 90, Est: 4},
			{Width: 2, Arrival: 91, Est: 1},
			{Width: 1, Arrival: 92, Est: 0.5},
			{Width: 3, Arrival: 93, Est: 2},
			{Width: 2, Arrival: 94, Est: 8},
		},
		RunEnds: []RunEnd{
			{Time: 101, Width: 4},
			{Time: 102, Width: 5},
			{Time: 104, Width: 2},
			{Time: 107, Width: 2},
		},
	}
}

// TestSchedulerTickAllocBudget pins the scheduler hot path: one Next call
// on a steady-state view must not allocate for any registered scheduler.
// The jobstream event loop calls Next once per placement attempt — an
// allocation here multiplies by jobs x cells x trials across a run.
func TestSchedulerTickAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	for _, e := range SchedulerList() {
		s, err := newScheduler(e.Name)
		if err != nil {
			t.Fatal(err)
		}
		// FCFS legitimately returns -1 here (its head does not fit); a
		// refusal tick is just as hot as a placement tick.
		v := steadyView()
		if got := s.Next(v); got >= len(v.Pending) {
			t.Fatalf("%s: Next returned out-of-range index %d", e.Name, got)
		}
		per := testing.AllocsPerRun(200, func() {
			s.Next(v)
		})
		t.Logf("%s: allocs per Next: %.3f", e.Name, per)
		if per > 0 {
			t.Errorf("%s: Next allocates %.3f objects per tick, budget 0", e.Name, per)
		}
	}
}

// TestClusterAllocBudget pins the placement hot path: Alloc into a reused
// slice plus the matching Release must not allocate.
func TestClusterAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	cl := NewCluster(32)
	busy := cl.Alloc(7, nil) // fragment the free list a little
	_ = busy
	dst := make([]int, 0, 32)
	per := testing.AllocsPerRun(200, func() {
		nodes := cl.Alloc(12, dst[:0])
		cl.Release(nodes)
	})
	t.Logf("allocs per Alloc+Release: %.3f", per)
	if per > 0 {
		t.Errorf("Alloc+Release allocates %.3f objects per placement, budget 0", per)
	}
}
