package jobstream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ckptsim"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// maxGrow bounds the observation-window growth loop of one job's
// execution: each iteration the window at least covers the previous
// makespan, so hitting the cap means a pathological failure rate; the
// last replay stands, slightly optimistic, like the campaign layer's
// horizon-doubling cap.
const maxGrow = 20

// classCtx is one job class resolved for execution: fault-free spec
// templates for the native and replicated shapes plus their measured
// fault-free makespans. Built once per run, read-only across cells.
type classCtx struct {
	class      scenario.JobClass
	nativeSpec experiments.Spec // native, fault-free
	replSpec   experiments.Spec // classic degree-2, fault-free
	nativeWall float64
	replWall   float64
}

// buildClasses resolves the workload mix: per class, the native and
// degree-2 replicated templates on the workload's platform and their
// fault-free makespans (via the shared runner, so references are
// simulated once and persist alongside everything else). The replicated
// job keeps the native per-rank problem — replication is a footprint
// decision, not a problem resizing.
func buildClasses(w *scenario.Workload, r Runner) ([]classCtx, error) {
	out := make([]classCtx, len(w.Mix))
	for i, c := range w.Mix {
		base := scenario.Scenario{
			Name: c.Label(), App: c.App, Config: c.Config,
			Mode: scenario.Native, Logical: c.Logical,
			Net: w.Net, Machine: w.Machine,
		}
		nspec, err := experiments.SpecFor(base)
		if err != nil {
			return nil, fmt.Errorf("jobstream: class %q: %w", c.Label(), err)
		}
		repl := base
		repl.Mode = scenario.Classic
		repl.Degree = 2
		rspec, err := experiments.SpecFor(repl)
		if err != nil {
			return nil, fmt.Errorf("jobstream: class %q: %w", c.Label(), err)
		}
		nres, err := r.Run(nspec)
		if err != nil {
			return nil, fmt.Errorf("jobstream: class %q native reference: %w", c.Label(), err)
		}
		rres, err := r.Run(rspec)
		if err != nil {
			return nil, fmt.Errorf("jobstream: class %q replicated reference: %w", c.Label(), err)
		}
		out[i] = classCtx{
			class: c, nativeSpec: nspec, replSpec: rspec,
			nativeWall: nres.WallSeconds, replWall: rres.WallSeconds,
		}
	}
	return out, nil
}

// cellParams identifies one simulation cell: a single-rate stream point
// under one scheduler and one policy, for one trial.
type cellParams struct {
	w         *scenario.Workload
	rate      float64
	seed      int64
	trial     int
	scheduler string
	policy    string
	classes   []classCtx
	runner    Runner
}

// cellWire is one cell's measured outcome — the stored and aggregated
// form. Every float64 marshals shortest-round-trip, so a store hit
// reproduces the fresh run's aggregates bit for bit.
type cellWire struct {
	Jobs       int     `json:"jobs"`
	Completed  int     `json:"completed"`
	Failed     int     `json:"failed"`
	Native     int     `json:"jobs_native"`
	Replicated int     `json:"jobs_replicated"`
	CCR        int     `json:"jobs_ccr"`
	Span       float64 `json:"span_seconds"`            // last completion
	Throughput float64 `json:"throughput_jobs_per_sec"` // completed / span
	BSLDMean   float64 `json:"bounded_slowdown_mean"`   // completed jobs
	BSLDP95    float64 `json:"bounded_slowdown_p95"`    // completed jobs
	WaitMean   float64 `json:"wait_mean_seconds"`       // all jobs
	Util       float64 `json:"utilization"`             // busy/total node-seconds
	Goodput    float64 `json:"goodput"`                 // useful native work fraction
}

// job is one submission's lifecycle inside a cell.
type job struct {
	class int
	dec   Decision
	ref   float64 // fault-free service of the chosen configuration
	width int

	arrive, start, end float64
	nodes              []int
	ok                 bool
}

// cellRun is the mutable state of one cell simulation.
type cellRun struct {
	p     cellParams
	trace *failTrace
	cl    *Cluster
	sched Scheduler
	pol   Policy
	jobs  []job

	view    View
	pend    []int
	running []int // job ids by ascending (end, id)

	relBuf  []float64 // scratch: relative failure times
	evBuf   []crashEv // scratch: replica crash events
	killBuf []int     // scratch: per-rank kill counts
}

// crashEv is one node failure mapped onto a replicated job's slot grid.
type crashEv struct {
	t          float64 // relative to job start
	rank, lane int
}

// runCell replays one cell: the trial's arrival stream through one
// scheduler and one policy on a fresh cluster, against the trial's shared
// failure trace. Everything is deterministic in the cell coordinates.
func runCell(p cellParams) (cellWire, error) {
	sched, err := newScheduler(p.scheduler)
	if err != nil {
		return cellWire{}, err
	}
	pol, err := newPolicy(p.policy)
	if err != nil {
		return cellWire{}, err
	}
	arrivals := genArrivals(p.w, p.rate, p.seed, p.trial)
	c := &cellRun{
		p:     p,
		trace: newFailTrace(p.w.Nodes, p.w.MTBFSeconds, fault.TrialSeed(p.seed, failureLane, p.trial)),
		cl:    NewCluster(p.w.Nodes),
		sched: sched, pol: pol,
		jobs:    make([]job, len(arrivals)),
		killBuf: make([]int, maxLogical(p.classes)),
	}
	c.view.Nodes = p.w.Nodes

	nextA, done := 0, 0
	now := 0.0
	for done < len(c.jobs) {
		switch {
		case len(c.running) > 0 && (nextA >= len(arrivals) || c.jobs[c.running[0]].end <= arrivals[nextA].at):
			// Completions before arrivals on ties: nodes free up before the
			// arriving job's policy reads spare capacity.
			id := c.running[0]
			c.running = c.running[1:]
			now = c.jobs[id].end
			c.cl.Release(c.jobs[id].nodes)
			done++
		case nextA < len(arrivals):
			id := nextA
			now = arrivals[id].at
			if err := c.admit(id, arrivals[id].class, now); err != nil {
				return cellWire{}, err
			}
			c.pend = append(c.pend, id)
			nextA++
		default:
			return cellWire{}, fmt.Errorf("jobstream: stalled with %d pending jobs and nothing running", len(c.pend))
		}
		if err := c.schedulePass(now); err != nil {
			return cellWire{}, err
		}
	}
	return c.metrics(), nil
}

func maxLogical(classes []classCtx) int {
	m := 0
	for _, cc := range classes {
		if cc.class.Logical > m {
			m = cc.class.Logical
		}
	}
	return m
}

// admit runs the arrival-time policy decision for job id.
func (c *cellRun) admit(id, class int, now float64) error {
	cc := &c.p.classes[class]
	j := &c.jobs[id]
	j.class = class
	j.arrive = now
	j.dec = c.pol.Decide(Request{
		Logical: cc.class.Logical, NativeWall: cc.nativeWall,
		NodeMTBF: c.p.w.MTBFSeconds, DeltaFrac: c.p.w.DeltaFrac(),
		Nodes: c.cl.Nodes(), Free: c.cl.Free(),
	})
	switch j.dec.Mode {
	case scenario.Native:
		j.width = cc.class.Logical
		j.ref = cc.nativeWall
	case scenario.CCR:
		j.width = cc.class.Logical
		j.ref = j.dec.Params.FaultFreeMakespan(cc.nativeWall)
	case scenario.Classic:
		if j.dec.Degree != 2 {
			return fmt.Errorf("jobstream: policy %q chose unsupported degree %d", c.pol.Name(), j.dec.Degree)
		}
		j.width = 2 * cc.class.Logical
		j.ref = cc.replWall
	default:
		return fmt.Errorf("jobstream: policy %q chose unsupported mode %s", c.pol.Name(), j.dec.Mode.Name())
	}
	if j.width > c.cl.Nodes() {
		return fmt.Errorf("jobstream: policy %q sized job %q to %d of %d nodes", c.pol.Name(), cc.class.Label(), j.width, c.cl.Nodes())
	}
	return nil
}

// schedulePass drains the scheduler at one decision point: place until it
// returns -1.
func (c *cellRun) schedulePass(now float64) error {
	for len(c.pend) > 0 {
		c.buildView(now)
		i := c.sched.Next(&c.view)
		if i < 0 {
			return nil
		}
		if i >= len(c.pend) {
			return fmt.Errorf("jobstream: scheduler %q returned index %d of %d pending", c.sched.Name(), i, len(c.pend))
		}
		id := c.pend[i]
		if c.jobs[id].width > c.cl.Free() {
			return fmt.Errorf("jobstream: scheduler %q placed a %d-node job on %d free nodes", c.sched.Name(), c.jobs[id].width, c.cl.Free())
		}
		c.pend = append(c.pend[:i], c.pend[i+1:]...)
		if err := c.place(id, now); err != nil {
			return err
		}
	}
	return nil
}

// buildView refreshes the scheduler's picture into reused buffers.
func (c *cellRun) buildView(now float64) {
	c.view.Now = now
	c.view.Free = c.cl.Free()
	c.view.Pending = c.view.Pending[:0]
	for _, id := range c.pend {
		j := &c.jobs[id]
		c.view.Pending = append(c.view.Pending, PendingJob{Width: j.width, Arrival: j.arrive, Est: j.ref})
	}
	c.view.RunEnds = c.view.RunEnds[:0]
	for _, id := range c.running {
		j := &c.jobs[id]
		c.view.RunEnds = append(c.view.RunEnds, RunEnd{Time: j.end, Width: j.width})
	}
}

// place allocates nodes for job id, resolves its outcome against the
// failure trace, and books its completion event.
func (c *cellRun) place(id int, now float64) error {
	j := &c.jobs[id]
	j.start = now
	j.nodes = c.cl.Alloc(j.width, j.nodes[:0])
	dur, ok, err := c.exec(j)
	if err != nil {
		return err
	}
	j.end = now + dur
	j.ok = ok
	// Insert into running, keyed (end, id): deterministic completion order.
	pos := sort.Search(len(c.running), func(k int) bool {
		jk := &c.jobs[c.running[k]]
		if jk.end != j.end {
			return jk.end > j.end
		}
		return c.running[k] > id
	})
	c.running = append(c.running, 0)
	copy(c.running[pos+1:], c.running[pos:])
	c.running[pos] = id
	return nil
}

// exec resolves a placed job's duration and outcome under its
// fault-tolerance configuration and its nodes' failure windows.
func (c *cellRun) exec(j *job) (dur float64, ok bool, err error) {
	cc := &c.p.classes[j.class]
	if c.p.w.MTBFSeconds == 0 {
		return j.ref, true, nil
	}
	switch j.dec.Mode {
	case scenario.Native:
		// First node failure inside the service window kills the job there.
		first := math.Inf(1)
		for _, node := range j.nodes {
			if w := c.trace.window(node, j.start, j.start+j.ref); len(w) > 0 && w[0] < first {
				first = w[0]
			}
		}
		if first < j.start+j.ref {
			return first - j.start, false, nil
		}
		return j.ref, true, nil
	case scenario.CCR:
		return c.execCCR(j, cc)
	default:
		return c.execReplicated(j, cc)
	}
}

// execCCR replays the job's native work under its checkpoint parameters
// against the failures its nodes see, growing the observation window
// until it covers the failure-stretched makespan.
func (c *cellRun) execCCR(j *job, cc *classCtx) (float64, bool, error) {
	win := j.ref
	for iter := 0; ; iter++ {
		c.relBuf = c.relBuf[:0]
		for _, node := range j.nodes {
			for _, f := range c.trace.window(node, j.start, j.start+win) {
				c.relBuf = append(c.relBuf, f-j.start)
			}
		}
		sort.Float64s(c.relBuf)
		tr, err := ckptsim.Replay(cc.nativeWall, j.dec.Params, c.relBuf)
		if err != nil {
			return 0, false, err
		}
		if tr.Makespan <= win || iter >= maxGrow {
			return tr.Makespan, true, nil
		}
		win = tr.Makespan
	}
}

// execReplicated maps the job's nodes onto the (rank, lane) slot grid —
// node index i hosts rank i%logical, lane i/logical — and walks its
// failure events chronologically. The first instant a rank has lost all
// its lanes interrupts the job (replication's unsurvivable case); the
// survivable prefix becomes a crash schedule for the cluster simulator,
// whose measured makespan is the job's duration if it completes first.
func (c *cellRun) execReplicated(j *job, cc *classCtx) (float64, bool, error) {
	logical := cc.class.Logical
	degree := j.dec.Degree
	win := j.ref
	for iter := 0; ; iter++ {
		c.evBuf = c.evBuf[:0]
		for idx, node := range j.nodes {
			rank, lane := idx%logical, idx/logical
			for _, f := range c.trace.window(node, j.start, j.start+win) {
				c.evBuf = append(c.evBuf, crashEv{t: f - j.start, rank: rank, lane: lane})
			}
		}
		sort.Slice(c.evBuf, func(a, b int) bool {
			ea, eb := c.evBuf[a], c.evBuf[b]
			if ea.t != eb.t {
				return ea.t < eb.t
			}
			if ea.rank != eb.rank {
				return ea.rank < eb.rank
			}
			return ea.lane < eb.lane
		})
		kills := c.killBuf[:logical]
		for k := range kills {
			kills[k] = 0
		}
		fatalIdx := len(c.evBuf)
		fatalT := math.Inf(1)
		for k, e := range c.evBuf {
			kills[e.rank]++
			if kills[e.rank] >= degree {
				fatalIdx, fatalT = k, e.t
				break
			}
		}
		spec := cc.replSpec
		if fatalIdx > 0 {
			fs := &fault.Schedule{Crashes: make([]fault.Crash, fatalIdx)}
			for k, e := range c.evBuf[:fatalIdx] {
				fs.Crashes[k] = fault.Crash{Logical: e.rank, Lane: e.lane, Time: sim.Seconds(e.t)}
			}
			spec.Fault = fs
		}
		res, err := c.p.runner.Run(spec)
		if err != nil {
			return 0, false, err
		}
		m := res.WallSeconds
		if fatalIdx < len(c.evBuf) {
			// Every survivable crash before fatalT is in the schedule, so m is
			// exact up to fatalT: the job either finished first or dies there.
			if m > fatalT {
				return fatalT, false, nil
			}
			return m, true, nil
		}
		if m <= win || iter >= maxGrow {
			return m, true, nil
		}
		win = m
	}
}

// metrics folds the finished cell into its wire record.
func (c *cellRun) metrics() cellWire {
	w := cellWire{Jobs: len(c.jobs)}
	bound := c.p.w.SlowdownBound()
	var busy, useful, waitSum float64
	c.relBuf = c.relBuf[:0] // reuse as the completed-job BSLD list
	for i := range c.jobs {
		j := &c.jobs[i]
		if j.end > w.Span {
			w.Span = j.end
		}
		busy += float64(j.width) * (j.end - j.start)
		waitSum += j.start - j.arrive
		switch j.dec.Mode {
		case scenario.Native:
			w.Native++
		case scenario.CCR:
			w.CCR++
		default:
			w.Replicated++
		}
		if !j.ok {
			w.Failed++
			continue
		}
		w.Completed++
		useful += c.p.classes[j.class].nativeWall * float64(c.p.classes[j.class].class.Logical)
		denom := math.Max(j.ref, bound)
		c.relBuf = append(c.relBuf, math.Max(1, (j.end-j.arrive)/denom))
	}
	w.WaitMean = waitSum / float64(len(c.jobs))
	if w.Span > 0 {
		total := float64(c.cl.Nodes()) * w.Span
		w.Throughput = float64(w.Completed) / w.Span
		w.Util = busy / total
		w.Goodput = useful / total
	}
	if bslds := c.relBuf; len(bslds) > 0 {
		sort.Float64s(bslds)
		sum := 0.0
		for _, b := range bslds {
			sum += b
		}
		w.BSLDMean = sum / float64(len(bslds))
		w.BSLDP95 = bslds[(95*len(bslds)+99)/100-1]
	}
	return w
}
