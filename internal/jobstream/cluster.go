package jobstream

import "fmt"

// Cluster is the shared node allocator of one job stream: N identical
// nodes, each either free or held by exactly one running job. Allocation
// is lowest-id-first, so placement is deterministic in the event order.
// A node failure does not remove the node from service — the failed
// process's job pays (crash, rollback or interruption) and the node is
// back for the next job, matching the renewal failure model.
type Cluster struct {
	busy []bool
	free int
}

// NewCluster builds an all-free cluster of n nodes.
func NewCluster(n int) *Cluster {
	return &Cluster{busy: make([]bool, n), free: n}
}

// Nodes is the cluster size.
func (c *Cluster) Nodes() int { return len(c.busy) }

// Free is the current free-node count.
func (c *Cluster) Free() int { return c.free }

// Alloc claims the width lowest-numbered free nodes, appending their ids
// to dst (pass a reused dst[:0] to stay allocation-free). The scheduler
// contract guarantees width <= Free; violating it is a programming error.
func (c *Cluster) Alloc(width int, dst []int) []int {
	if width > c.free {
		panic(fmt.Sprintf("jobstream: alloc %d of %d free nodes", width, c.free))
	}
	for id := 0; width > 0; id++ {
		if c.busy[id] {
			continue
		}
		c.busy[id] = true
		c.free--
		dst = append(dst, id)
		width--
	}
	return dst
}

// Release frees the given nodes.
func (c *Cluster) Release(nodes []int) {
	for _, id := range nodes {
		if !c.busy[id] {
			panic(fmt.Sprintf("jobstream: release of free node %d", id))
		}
		c.busy[id] = false
		c.free++
	}
}
