// Package jobstream runs the cluster as a service under open load: a
// seeded Poisson load generator submits jobs (each a registered app at a
// requested scale) to a shared cluster, pluggable schedulers (FCFS, EASY
// backfill, k-choices) place them side by side on identical arrival
// streams, and a per-job fault-tolerance policy decides — from the current
// MTBF and spare capacity — whether each job runs native, under degree-2
// process replication, or under coordinated checkpoint/restart, while
// node failures keep arriving from the fault layer's renewal MTBF model.
//
// This reframes the paper's SS-II question as an online policy: should a
// scheduler spend spare nodes on replication degree or on checkpoint
// interval? Jobs execute through the existing sweep machinery — a placed
// job is a Spec-shaped simulation whose measured makespan feeds its
// completion back into the stream — and every (rate, scheduler, policy)
// cell reports throughput, bounded slowdown (mean and P95), utilization
// and goodput, aggregated over seeded trials with 95% confidence
// intervals.
//
// The determinism contract is the repository's usual one: a run is
// byte-identical at any worker count, cells persist in the result store
// under content-addressed keys (a warm rerun simulates nothing), and
// Populate partitions cells across shards by index so N processes build
// the store cooperatively.
package jobstream

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/store"
)

// Config are the run knobs orthogonal to the workload itself.
type Config struct {
	Trials  int          // seeded trials per (rate, scheduler, policy) cell (0 = 5)
	Seed    int64        // master seed (0 = the workload's own, then 1)
	Workers int          // cell/simulation workers (0 = GOMAXPROCS)
	Store   *store.Store // optional persistent cell/result cache
}

// DefaultTrials is the trial count when Config.Trials is zero.
const DefaultTrials = 5

func (cfg Config) trials() int {
	if cfg.Trials <= 0 {
		return DefaultTrials
	}
	return cfg.Trials
}

func (cfg Config) seed(w *scenario.Workload) int64 {
	if cfg.Seed != 0 {
		return cfg.Seed
	}
	if w.Seed != 0 {
		return w.Seed
	}
	return 1
}

// cell is one enumerated simulation cell. Enumeration order — rate axis,
// then scheduler, then policy, then trial — is the canonical cell index
// every shard derives identically.
type cell struct {
	rate      float64
	rateIdx   int
	scheduler string
	policy    string
	trial     int
	group     int // index into the result's group list
}

// enumerate lists the run's cells and its (rate, scheduler, policy)
// groups in canonical order.
func enumerate(w *scenario.Workload, trials int) ([]cell, int) {
	groups := 0
	var cells []cell
	for ri, rate := range w.Rates {
		for _, s := range w.Schedulers {
			for _, p := range w.Policies {
				for t := 0; t < trials; t++ {
					cells = append(cells, cell{
						rate: rate, rateIdx: ri, scheduler: s, policy: p,
						trial: t, group: groups,
					})
				}
				groups++
			}
		}
	}
	return cells, groups
}

// Group is the aggregated outcome of one (rate, scheduler, policy) cell
// across the run's trials.
type Group struct {
	RateJobsPerSec float64 `json:"rate_jobs_per_sec"`
	Scheduler      string  `json:"scheduler"`
	Policy         string  `json:"policy"`
	Trials         int     `json:"trials"`

	// Job counts, summed over trials.
	Jobs       int `json:"jobs"`
	Completed  int `json:"completed"`
	Failed     int `json:"failed"`
	Native     int `json:"jobs_native"`
	Replicated int `json:"jobs_replicated"`
	CCR        int `json:"jobs_ccr"`

	Throughput campaign.Stat `json:"throughput_jobs_per_sec"`
	BSLD       campaign.Stat `json:"bounded_slowdown"`
	BSLDP95    campaign.Stat `json:"bounded_slowdown_p95"`
	Wait       campaign.Stat `json:"wait_seconds"`
	Util       campaign.Stat `json:"utilization"`
	Goodput    campaign.Stat `json:"goodput"`
}

// Result is one workload's full side-by-side comparison.
type Result struct {
	Name        string  `json:"name,omitempty"`
	Nodes       int     `json:"nodes"`
	Jobs        int     `json:"jobs"`
	Trials      int     `json:"trials"`
	Seed        int64   `json:"seed"`
	MTBFSeconds float64 `json:"mtbf_seconds"`
	Groups      []Group `json:"groups"`
}

// forEachCell is the jobstream worker pool: fn(i) for i in [0, n).
func forEachCell(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// prepare validates the workload and resolves everything cells share:
// the effective seed, the canonical cell list, the class contexts (their
// reference simulations run here, through the store when one is set) and
// the per-cell store keys.
func prepare(cfg Config, w *scenario.Workload, r Runner) (cells []cell, groups int, seed int64, classes []classCtx, keys []string, err error) {
	if err = w.Validate(); err != nil {
		return
	}
	if err = CheckNames(w); err != nil {
		return
	}
	seed = cfg.seed(w)
	cells, groups = enumerate(w, cfg.trials())
	classes, err = buildClasses(w, r)
	if err != nil {
		return
	}
	streamFPs := make([]string, len(w.Rates))
	for i, rate := range w.Rates {
		if streamFPs[i], err = w.StreamFingerprint(rate); err != nil {
			return
		}
	}
	keys = make([]string, len(cells))
	for i, c := range cells {
		keys[i] = cellKey(streamFPs[c.rateIdx], c.scheduler, c.policy, c.trial, seed)
	}
	return
}

// Run executes the workload: every (rate, scheduler, policy, trial) cell
// through the worker pool — served from the store when warm — and the
// trial aggregates per group. Output is byte-identical at any worker
// count and any store temperature.
func Run(cfg Config, w *scenario.Workload) (*Result, error) {
	runner := newMemoRunner(cfg.Store)
	cells, groups, seed, classes, keys, err := prepare(cfg, w, runner)
	if err != nil {
		return nil, err
	}
	wires := make([]cellWire, len(cells))
	errs := make([]error, len(cells))
	experiments.Progress.Plan(len(cells))
	forEachCell(cfg.Workers, len(cells), func(i int) {
		defer experiments.Progress.Done()
		c := cells[i]
		wires[i], _, errs[i] = runOrLoadCell(cfg.Store, keys[i], cellParams{
			w: w, rate: c.rate, seed: seed, trial: c.trial,
			scheduler: c.scheduler, policy: c.policy,
			classes: classes, runner: runner,
		})
	})
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("jobstream: rate %g %s/%s trial %d: %w", c.rate, c.scheduler, c.policy, c.trial, err)
		}
	}

	res := &Result{
		Nodes: w.Nodes, Jobs: w.Jobs, Trials: cfg.trials(), Seed: seed,
		MTBFSeconds: w.MTBFSeconds, Groups: make([]Group, groups),
	}
	type aggs struct{ thr, bsld, p95, wait, util, good campaign.Agg }
	acc := make([]aggs, groups)
	for i, c := range cells {
		g := &res.Groups[c.group]
		if g.Trials == 0 {
			g.RateJobsPerSec, g.Scheduler, g.Policy = c.rate, c.scheduler, c.policy
		}
		g.Trials++
		cw := wires[i]
		g.Jobs += cw.Jobs
		g.Completed += cw.Completed
		g.Failed += cw.Failed
		g.Native += cw.Native
		g.Replicated += cw.Replicated
		g.CCR += cw.CCR
		a := &acc[c.group]
		a.thr.Add(cw.Throughput)
		a.bsld.Add(cw.BSLDMean)
		a.p95.Add(cw.BSLDP95)
		a.wait.Add(cw.WaitMean)
		a.util.Add(cw.Util)
		a.good.Add(cw.Goodput)
	}
	for gi := range res.Groups {
		a := &acc[gi]
		g := &res.Groups[gi]
		g.Throughput = a.thr.Stat()
		g.BSLD = a.bsld.Stat()
		g.BSLDP95 = a.p95.Stat()
		g.Wait = a.wait.Stat()
		g.Util = a.util.Stat()
		g.Goodput = a.good.Stat()
	}
	return res, nil
}

// fmtStat renders a Stat's mean for the table.
func fmtStat(s campaign.Stat, prec int) string {
	return fmt.Sprintf("%.*f", prec, s.Mean)
}

// fmtCI renders a 95% confidence half-width, "-" below two trials (the
// campaign convention: an undefined CI95 is NaN).
func fmtCI(s campaign.Stat, prec int) string {
	if math.IsNaN(s.CI95) {
		return "-"
	}
	return fmt.Sprintf("%.*f", prec, s.CI95)
}

// Table renders the schedulers x FT-policies comparison — the
// beyond-the-paper figure of the jobstream subsystem.
func (r *Result) Table(bound float64) *experiments.Table {
	title := fmt.Sprintf("job stream: %d nodes, %d jobs/trial, %d trials, seed %d", r.Nodes, r.Jobs, r.Trials, r.Seed)
	if r.MTBFSeconds > 0 {
		title += fmt.Sprintf(", node MTBF %gs", r.MTBFSeconds)
	} else {
		title += ", failure-free"
	}
	t := &experiments.Table{
		ID: "jobstream", Title: title,
		Header: []string{"rate (j/s)", "sched", "policy", "done", "failed", "nat/rep/ccr",
			"jobs/s", "±95%", "bsld", "p95", "wait (s)", "util", "goodput"},
	}
	for _, g := range r.Groups {
		t.AddRow(
			fmt.Sprintf("%g", g.RateJobsPerSec), g.Scheduler, g.Policy,
			fmt.Sprintf("%d", g.Completed), fmt.Sprintf("%d", g.Failed),
			fmt.Sprintf("%d/%d/%d", g.Native, g.Replicated, g.CCR),
			fmtStat(g.Throughput, 2), fmtCI(g.Throughput, 2),
			fmtStat(g.BSLD, 2), fmtStat(g.BSLDP95, 2),
			fmtStat(g.Wait, 4), fmtStat(g.Util, 3), fmtStat(g.Goodput, 3),
		)
	}
	t.Note("bounded slowdown floors its denominator at %gs; goodput counts completed jobs' native node-seconds against the whole cluster's", bound)
	t.Note("native/replicated/ccr count the per-job fault-tolerance choices; failed jobs hit an unsurvivable failure")
	return t
}
