package jobstream

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/store"

	_ "repro/internal/apps/gtc"
	_ "repro/internal/apps/hpccg"
)

// testWorkload is a small two-class workload that exercises failures,
// replication fallback and both schedulers in well under a second.
func testWorkload() *scenario.Workload {
	return &scenario.Workload{
		Nodes: 8, Jobs: 12, Rates: []float64{4},
		MTBFSeconds: 5, Seed: 3,
		Mix: []scenario.JobClass{
			{Name: "h", App: "hpccg", Config: json.RawMessage(`{"Iters": 2, "Scale": 16}`), Logical: 4, Weight: 2},
			{Name: "g", App: "gtc", Config: json.RawMessage(`{"Steps": 2, "Scale": 128}`), Logical: 2, Weight: 1},
		},
		Schedulers: []string{"fcfs", "easy"},
		Policies:   []string{"native", "replicate"},
	}
}

func TestGenArrivalsDeterministic(t *testing.T) {
	w := testWorkload()
	a := genArrivals(w, 4, w.Seed, 0)
	b := genArrivals(w, 4, w.Seed, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (workload, rate, seed, trial) must draw identical arrivals")
	}
	if len(a) != w.Jobs {
		t.Fatalf("want %d arrivals, got %d", w.Jobs, len(a))
	}
	last := 0.0
	for i, ar := range a {
		if ar.at <= last {
			t.Fatalf("arrival %d at %g not after %g", i, ar.at, last)
		}
		if ar.class < 0 || ar.class >= len(w.Mix) {
			t.Fatalf("arrival %d drew class %d", i, ar.class)
		}
		last = ar.at
	}
	if reflect.DeepEqual(a, genArrivals(w, 4, w.Seed, 1)) {
		t.Fatal("different trials must draw different arrivals")
	}

	// Common random numbers across the rate axis: the draw sequence is
	// rate-independent uniforms scaled by 1/rate, so doubling the rate
	// halves every interarrival gap and keeps the class picks.
	double := genArrivals(w, 8, w.Seed, 0)
	for i := range a {
		if double[i].class != a[i].class {
			t.Fatalf("arrival %d changed class across rates", i)
		}
		if math.Abs(double[i].at-a[i].at/2) > 1e-12 {
			t.Fatalf("arrival %d: rate 8 at %g, want %g", i, double[i].at, a[i].at/2)
		}
	}
}

func TestFailTracePrefixStable(t *testing.T) {
	const nodes, mtbf = 4, 0.5
	grown := newFailTrace(nodes, mtbf, 42)
	oneshot := newFailTrace(nodes, mtbf, 42)
	oneshot.ensure(40)

	// Reading through many small windows must agree with one big draw:
	// window growth never rewrites history.
	for node := 0; node < nodes; node++ {
		var incremental []float64
		for lo := 0.0; lo < 40; lo += 2.5 {
			for _, f := range grown.window(node, lo, lo+2.5) {
				incremental = append(incremental, f)
			}
		}
		direct := oneshot.window(node, 0, 40)
		if !reflect.DeepEqual(incremental, append([]float64(nil), direct...)) {
			t.Fatalf("node %d: incremental windows %v != direct %v", node, incremental, direct)
		}
	}

	if w := newFailTrace(nodes, 0, 42).window(0, 0, 1e9); w != nil {
		t.Fatalf("failure-free trace must be empty, got %v", w)
	}
}

func TestClusterAllocRelease(t *testing.T) {
	cl := NewCluster(4)
	a := cl.Alloc(3, nil)
	if !reflect.DeepEqual(a, []int{0, 1, 2}) || cl.Free() != 1 {
		t.Fatalf("lowest-first alloc broken: %v free=%d", a, cl.Free())
	}
	cl.Release(a[1:2]) // free node 1 only
	b := cl.Alloc(2, nil)
	if !reflect.DeepEqual(b, []int{1, 3}) || cl.Free() != 0 {
		t.Fatalf("want [1 3], got %v free=%d", b, cl.Free())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation must panic")
		}
	}()
	cl.Alloc(1, nil)
}

func TestEASYBackfill(t *testing.T) {
	s, err := newScheduler("easy")
	if err != nil {
		t.Fatal(err)
	}
	// Head needs 8, 2 free; the 4-wide job at index 2 would outlive the
	// shadow time (free reaches 8 at t=10), but the short 2-wide job at
	// index 1 fits now and finishes before it — the classic backfill.
	v := &View{
		Now: 0, Nodes: 8, Free: 2,
		Pending: []PendingJob{
			{Width: 8, Arrival: 0, Est: 5},
			{Width: 2, Arrival: 1, Est: 4},
			{Width: 2, Arrival: 2, Est: 40},
		},
		RunEnds: []RunEnd{{Time: 4, Width: 2}, {Time: 10, Width: 4}},
	}
	if got := s.Next(v); got != 1 {
		t.Fatalf("EASY should backfill the non-delaying job 1, got %d", got)
	}
	// Without job 1, job 2 (2-wide, 40s est) would run past the shadow
	// (t=10) and the head's reservation leaves no spare width (free 2 +
	// released 6 = 8, all reserved), so EASY must refuse it.
	v.Pending = []PendingJob{
		{Width: 8, Arrival: 0, Est: 5},
		{Width: 2, Arrival: 2, Est: 40},
	}
	if got := s.Next(v); got != -1 {
		t.Fatalf("EASY must not delay the head reservation, got %d", got)
	}
	// A fitting head goes first, always.
	v.Free = 8
	v.RunEnds = nil
	if got := s.Next(v); got != 0 {
		t.Fatalf("fitting head should place first, got %d", got)
	}
}

func TestKChoices(t *testing.T) {
	s, err := newScheduler("kchoices")
	if err != nil {
		t.Fatal(err)
	}
	v := &View{
		Now: 0, Nodes: 8, Free: 4,
		Pending: []PendingJob{
			{Width: 6, Arrival: 0, Est: 1}, // does not fit
			{Width: 2, Arrival: 1, Est: 1}, // fits
			{Width: 4, Arrival: 2, Est: 1}, // fits, widest among first k
			{Width: 3, Arrival: 3, Est: 1}, // fits, narrower
			{Width: 4, Arrival: 4, Est: 1}, // beyond k=4: ignored
		},
	}
	if got := s.Next(v); got != 2 {
		t.Fatalf("kchoices should take the widest fitting of the first 4, got %d", got)
	}
	v.Free = 1
	if got := s.Next(v); got != -1 {
		t.Fatalf("nothing fits, want -1, got %d", got)
	}
}

func TestPolicies(t *testing.T) {
	req := Request{Logical: 4, NativeWall: 1, NodeMTBF: 10, DeltaFrac: 0.05, Nodes: 16, Free: 16}

	nat, _ := newPolicy("native")
	if d := nat.Decide(req); d.Mode != scenario.Native {
		t.Fatalf("native policy chose %s", d.Mode.Name())
	}

	rep, _ := newPolicy("replicate")
	if d := rep.Decide(req); d.Mode != scenario.Classic || d.Degree != 2 {
		t.Fatalf("replicate policy chose %s/%d", d.Mode.Name(), d.Degree)
	}
	tight := req
	tight.Nodes = 6 // 2x4 replicas can never fit
	if d := rep.Decide(tight); d.Mode != scenario.Native {
		t.Fatalf("replicate must fall back to native on a too-small cluster, got %s", d.Mode.Name())
	}

	ccrP, _ := newPolicy("ccr")
	d := ccrP.Decide(req)
	if d.Mode != scenario.CCR {
		t.Fatalf("ccr policy chose %s", d.Mode.Name())
	}
	if d.Params.Tau <= 0 || d.Params.Tau > req.NativeWall {
		t.Fatalf("ccr tau %g outside (0, wall]", d.Params.Tau)
	}
	if d.Params.Delta != req.DeltaFrac*req.NativeWall {
		t.Fatalf("ccr delta %g, want %g", d.Params.Delta, req.DeltaFrac*req.NativeWall)
	}
	noFail := req
	noFail.NodeMTBF = 0
	if d := ccrP.Decide(noFail); d.Params.Tau != noFail.NativeWall {
		t.Fatalf("failure-free ccr should run one segment, tau %g", d.Params.Tau)
	}

	ad, _ := newPolicy("adaptive")
	if d := ad.Decide(noFail); d.Mode != scenario.Native {
		t.Fatalf("adaptive without failures should run native, got %s", d.Mode.Name())
	}
	if d := ad.Decide(req); d.Mode != scenario.CCR {
		t.Fatalf("adaptive at mild MTBF should checkpoint, got %s", d.Mode.Name())
	}
	harsh := req
	harsh.NodeMTBF = 0.2 // rank MTBF 0.05 vs wall 1: checkpointing collapses
	if d := ad.Decide(harsh); d.Mode != scenario.Classic || d.Degree != 2 {
		t.Fatalf("adaptive at harsh MTBF with spare nodes should replicate, got %s", d.Mode.Name())
	}
	harshFull := harsh
	harshFull.Free = 7 // no room for 8 replica slots
	if d := ad.Decide(harshFull); d.Mode != scenario.CCR {
		t.Fatalf("adaptive without spare capacity should checkpoint, got %s", d.Mode.Name())
	}
}

// resultJSON canonicalizes a Result for byte comparison.
func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	w := testWorkload()
	one, err := Run(Config{Trials: 2, Workers: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(Config{Trials: 2, Workers: 8}, w)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := resultJSON(t, one), resultJSON(t, many); a != b {
		t.Fatalf("worker count changed the result:\n%s\n%s", a, b)
	}
	if len(one.Groups) != 4 {
		t.Fatalf("want 2 schedulers x 2 policies = 4 groups, got %d", len(one.Groups))
	}
	for _, g := range one.Groups {
		if g.Jobs != 2*w.Jobs {
			t.Fatalf("group %s/%s saw %d jobs, want %d", g.Scheduler, g.Policy, g.Jobs, 2*w.Jobs)
		}
		if g.Completed+g.Failed != g.Jobs {
			t.Fatalf("group %s/%s: %d done + %d failed != %d jobs", g.Scheduler, g.Policy, g.Completed, g.Failed, g.Jobs)
		}
	}
	// Identical arrival streams across the axes: every group of one trial
	// set saw the same job count and the same per-policy mode counts
	// regardless of scheduler.
	for _, g := range one.Groups {
		for _, h := range one.Groups {
			if g.Policy == h.Policy && (g.Native != h.Native || g.Replicated != h.Replicated || g.CCR != h.CCR) {
				t.Fatalf("schedulers disagree on policy %q mode counts", g.Policy)
			}
		}
	}
}

func TestRunStoreWarmAndSharded(t *testing.T) {
	w := testWorkload()
	plain, err := Run(Config{Trials: 2}, w)
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, plain)

	// Cold run populates the store; a warm rerun serves every cell and
	// reference simulation from it, byte-identically.
	dir := t.TempDir()
	st, err := store.Open(dir, "cold")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(Config{Trials: 2, Store: st}, w)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, cold) != want {
		t.Fatal("store-backed run diverged from plain run")
	}
	if st.Stats().Puts == 0 {
		t.Fatal("cold run should persist cells")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, "warm")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(Config{Trials: 2, Store: st2}, w)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, warm) != want {
		t.Fatal("warm run diverged")
	}
	if s := st2.Stats(); s.Misses != 0 || s.Puts != 0 {
		t.Fatalf("warm run should hit everything: %s", s.String())
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Three populate shards partition the cells exactly; the merged store
	// then serves a full Run without a single simulation.
	dir2 := t.TempDir()
	totalOwned := 0
	for i := 0; i < 3; i++ {
		sh, err := store.ParseShard(itoa(i) + "/3")
		if err != nil {
			t.Fatal(err)
		}
		sst, err := store.Open(dir2, sh.String())
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Populate(Config{Trials: 2, Store: sst}, w, sh)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Owned != stats.Hits+stats.Simulated {
			t.Fatalf("shard %d stats do not add up: %+v", i, stats)
		}
		totalOwned += stats.Owned
		if stats.Cells != 8 {
			t.Fatalf("shard %d sees %d cells, want 8", i, stats.Cells)
		}
		if err := sst.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if totalOwned != 8 {
		t.Fatalf("shards own %d cells in total, want 8", totalOwned)
	}
	mst, err := store.Open(dir2, "merge")
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Run(Config{Trials: 2, Store: mst}, w)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, merged) != want {
		t.Fatal("merged run diverged from plain run")
	}
	if s := mst.Stats(); s.Misses != 0 {
		t.Fatalf("merged run should be fully warm: %s", s.String())
	}
	if err := mst.Close(); err != nil {
		t.Fatal(err)
	}

	// Populate without a store is a usage error.
	if _, err := Populate(Config{Trials: 2}, w, store.Shard{Count: 3}); err == nil {
		t.Fatal("storeless Populate should fail")
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestRunRejectsBadNames(t *testing.T) {
	w := testWorkload()
	w.Schedulers = []string{"fcfs", "nope"}
	if _, err := Run(Config{Trials: 1}, w); err == nil {
		t.Fatal("unknown scheduler must fail")
	}
	w = testWorkload()
	w.Policies = []string{"nope"}
	if _, err := Run(Config{Trials: 1}, w); err == nil {
		t.Fatal("unknown policy must fail")
	}
}
