package jobstream

import (
	"encoding/json"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/store"
)

// cellKind namespaces jobstream cell records in the store.
const cellKind = "jobstream-cell"

// cellKey is the content address of one cell: the stream point's
// canonical fingerprint plus the scheduler, policy, trial index and
// effective seed. Trial count is deliberately absent — a 10-trial run
// warm-hits the first 5 cells of a 5-trial store — and so are the
// workload's axis lists, so two files sharing a stream point share its
// cells.
func cellKey(streamFP, scheduler, policy string, trial int, seed int64) string {
	b, err := json.Marshal(struct {
		Stream    string `json:"stream"`
		Scheduler string `json:"scheduler"`
		Policy    string `json:"policy"`
		Trial     int    `json:"trial"`
		Seed      int64  `json:"seed"`
	}{streamFP, scheduler, policy, trial, seed})
	if err != nil {
		panic(fmt.Sprintf("jobstream: cell key: %v", err)) // struct of scalars cannot fail
	}
	return store.Key(string(b))
}

// runOrLoadCell serves one cell from the store when warm, simulating and
// persisting it otherwise. A payload that does not decode is a cache miss
// (the store's corruption convention), never a stand-in result. The bool
// reports a store hit.
func runOrLoadCell(st *store.Store, key string, p cellParams) (cellWire, bool, error) {
	if st != nil {
		if raw, ok := st.Get(cellKind, key); ok {
			var cw cellWire
			if err := json.Unmarshal(raw, &cw); err == nil {
				return cw, true, nil
			}
		}
	}
	cw, err := runCell(p)
	if err != nil {
		return cellWire{}, false, err
	}
	if st != nil {
		if err := st.Put(cellKind, key, cw); err != nil {
			return cellWire{}, false, err
		}
	}
	return cw, false, nil
}

// PopulateStats summarizes one shard's jobstream populate pass.
type PopulateStats struct {
	Cells     int `json:"cells"`     // cells in the whole run
	Owned     int `json:"owned"`     // cells this shard is responsible for
	Hits      int `json:"hits"`      // owned cells served from the store
	Simulated int `json:"simulated"` // owned cells simulated (and persisted)
}

// Populate runs one shard's slice of a workload and persists everything a
// later merge needs: the class reference simulations (store-backed and
// shared by all shards through first-write-wins), the owned cells' inner
// job simulations, and the owned cell records themselves. Cells are
// claimed by canonical index modulo the shard count — an exact partition,
// so after every shard has run, a plain Run against the merged store
// serves every cell warm and emits the single-process JSON with zero
// simulations.
func Populate(cfg Config, w *scenario.Workload, sh store.Shard) (PopulateStats, error) {
	if cfg.Store == nil {
		return PopulateStats{}, fmt.Errorf("jobstream: Populate needs Config.Store")
	}
	runner := newMemoRunner(cfg.Store)
	cells, _, seed, classes, keys, err := prepare(cfg, w, runner)
	if err != nil {
		return PopulateStats{}, err
	}
	stats := PopulateStats{Cells: len(cells)}
	owned := make([]int, 0, len(cells))
	for i := range cells {
		if sh.Owns(i) {
			owned = append(owned, i)
		}
	}
	stats.Owned = len(owned)

	hits := make([]bool, len(owned))
	errs := make([]error, len(owned))
	experiments.Progress.Plan(len(owned))
	forEachCell(cfg.Workers, len(owned), func(k int) {
		defer experiments.Progress.Done()
		i := owned[k]
		c := cells[i]
		_, hits[k], errs[k] = runOrLoadCell(cfg.Store, keys[i], cellParams{
			w: w, rate: c.rate, seed: seed, trial: c.trial,
			scheduler: c.scheduler, policy: c.policy,
			classes: classes, runner: runner,
		})
	})
	for k, err := range errs {
		if err != nil {
			c := cells[owned[k]]
			return stats, fmt.Errorf("jobstream: rate %g %s/%s trial %d: %w", c.rate, c.scheduler, c.policy, c.trial, err)
		}
		if hits[k] {
			stats.Hits++
		} else {
			stats.Simulated++
		}
	}
	return stats, nil
}
