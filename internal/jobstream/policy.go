package jobstream

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/ckptsim"
	"repro/internal/scenario"
)

// Request is what a fault-tolerance policy sees when a job arrives: the
// job's shape, the failure environment, and the cluster's spare capacity
// at that instant.
type Request struct {
	Logical    int     // requested rank count (native footprint)
	NativeWall float64 // fault-free native makespan, seconds
	NodeMTBF   float64 // per-node MTBF, seconds (0 = no failures)
	DeltaFrac  float64 // checkpoint cost as a fraction of NativeWall
	Nodes      int     // cluster size
	Free       int     // free nodes right now
}

// Decision is the fault-tolerance configuration a policy chose for one
// job. The simulator derives the footprint: Logical nodes for native and
// ccr, Logical x Degree for replicated modes.
type Decision struct {
	Mode   scenario.Mode
	Degree int            // replicated modes only
	Params ckptsim.Params // ccr only
}

// Policy assigns a fault-tolerance configuration to each arriving job.
// Policies may consult spare capacity, so two schedulers replaying the
// identical arrival stream can still drive an adaptive policy to
// different choices — that interaction is the point of the experiment.
type Policy interface {
	Name() string
	Decide(r Request) Decision
}

// ccrParams derives the checkpoint/restart parameters for one job: cost
// delta = DeltaFrac x the fault-free wall, restart = delta, and Daly's
// optimal interval at the job's system MTBF (per-node MTBF / ranks),
// clamped to the job length — an interval past the end means a single
// segment and zero checkpoints, which is also the failure-free limit.
func ccrParams(r Request) ckptsim.Params {
	delta := r.DeltaFrac * r.NativeWall
	tau := r.NativeWall
	if r.NodeMTBF > 0 {
		if t := ckpt.OptimalInterval(delta, delta, r.NodeMTBF/float64(r.Logical)); t < tau {
			tau = t
		}
	}
	return ckptsim.Params{Tau: tau, Delta: delta, Restart: delta}
}

func native(r Request) Decision {
	return Decision{Mode: scenario.Native}
}

// nativePolicy runs every job unprotected.
type nativePolicy struct{}

func (nativePolicy) Name() string              { return "native" }
func (nativePolicy) Decide(r Request) Decision { return native(r) }

// replicatePolicy runs every job under degree-2 process replication
// (classic mode, 2x the footprint), falling back to native when the
// cluster is too small to ever host the doubled job.
type replicatePolicy struct{}

func (replicatePolicy) Name() string { return "replicate" }

func (replicatePolicy) Decide(r Request) Decision {
	if 2*r.Logical > r.Nodes {
		return native(r)
	}
	return Decision{Mode: scenario.Classic, Degree: 2}
}

// ccrPolicy runs every job under coordinated checkpoint/restart at its
// native footprint.
type ccrPolicy struct{}

func (ccrPolicy) Name() string { return "ccr" }

func (ccrPolicy) Decide(r Request) Decision {
	return Decision{Mode: scenario.CCR, Params: ccrParams(r)}
}

// adaptiveEffFloor is the cCR efficiency below which the adaptive policy
// prefers replication: degree-2 replication delivers ~1/2 resource
// efficiency (double the nodes, survives node losses), so once Daly's
// best efficiency drops under 1/2 the doubled footprint is the better
// spend — the paper's SS-II crossover recast as an online rule.
const adaptiveEffFloor = 0.5

// adaptivePolicy chooses per job from the current MTBF and spare
// capacity: no failures -> native; checkpointing still efficient or no
// spare room for replicas -> ccr; otherwise degree-2 replication.
type adaptivePolicy struct{}

func (adaptivePolicy) Name() string { return "adaptive" }

func (adaptivePolicy) Decide(r Request) Decision {
	if r.NodeMTBF == 0 {
		return native(r)
	}
	delta := r.DeltaFrac * r.NativeWall
	eff := ckpt.BestEfficiency(delta, delta, r.NodeMTBF/float64(r.Logical))
	if eff < adaptiveEffFloor && 2*r.Logical <= r.Free {
		return Decision{Mode: scenario.Classic, Degree: 2}
	}
	return Decision{Mode: scenario.CCR, Params: ccrParams(r)}
}

var policies = map[string]struct {
	desc string
	mk   func() Policy
}{}

// RegisterPolicy adds a fault-tolerance policy to the registry; an empty
// or duplicate name panics, as everywhere in the scenario currency.
func RegisterPolicy(name, desc string, mk func() Policy) {
	if name == "" || mk == nil {
		panic("jobstream: RegisterPolicy with empty name or constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := policies[name]; dup {
		panic(fmt.Sprintf("jobstream: policy %q registered twice", name))
	}
	policies[name] = struct {
		desc string
		mk   func() Policy
	}{desc, mk}
}

// newPolicy instantiates a registered policy.
func newPolicy(name string) (Policy, error) {
	regMu.RLock()
	ent, ok := policies[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("jobstream: unknown policy %q (have %s)", name, nameList(PolicyList()))
	}
	return ent.mk(), nil
}

// PolicyList enumerates the registered policies, sorted by name.
func PolicyList() []RegistryEntry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]RegistryEntry, 0, len(policies))
	for name, ent := range policies {
		out = append(out, RegistryEntry{Name: name, Description: ent.desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckNames resolves the workload's scheduler and policy names against
// the registries: the jobstream half of workload validation (the scenario
// layer cannot see these registries without an import cycle).
func CheckNames(w *scenario.Workload) error {
	for _, n := range w.Schedulers {
		if _, err := newScheduler(n); err != nil {
			return err
		}
	}
	for _, n := range w.Policies {
		if _, err := newPolicy(n); err != nil {
			return err
		}
	}
	return nil
}

func init() {
	RegisterPolicy("native", "no fault tolerance: a node failure kills the job",
		func() Policy { return nativePolicy{} })
	RegisterPolicy("replicate", "degree-2 process replication (2x footprint; native when the cluster cannot fit it)",
		func() Policy { return replicatePolicy{} })
	RegisterPolicy("ccr", "coordinated checkpoint/restart at Daly's optimal interval, native footprint",
		func() Policy { return ccrPolicy{} })
	RegisterPolicy("adaptive", "per-job rule: native when failure-free, replicate when cCR efficiency < 1/2 and spare nodes allow, else ccr",
		func() Policy { return adaptivePolicy{} })
}
