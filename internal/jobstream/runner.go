package jobstream

import (
	"sync"

	"repro/internal/experiments"
	"repro/internal/store"
)

// Runner resolves one placed job's cluster simulation to its measured
// result: fault-free reference runs and replicated runs under concrete
// crash schedules. The jobstream simulator shares one Runner across all
// cells of a run, so a (class, schedule) simulation happens once however
// many cells need it.
type Runner interface {
	Run(spec experiments.Spec) (experiments.Result, error)
}

// memoRunner memoizes simulations by the spec's content key, backed by
// the optional persistent store. Concurrent cells may race to simulate
// the same key; the results are identical by the determinism contract, so
// first-wins on both the memo and the store keeps every cell's numbers
// independent of scheduling.
type memoRunner struct {
	st   *store.Store
	mu   sync.Mutex
	memo map[string]experiments.Result
}

func newMemoRunner(st *store.Store) *memoRunner {
	return &memoRunner{st: st, memo: map[string]experiments.Result{}}
}

func (r *memoRunner) Run(spec experiments.Spec) (experiments.Result, error) {
	key := spec.Key()
	if key != "" {
		r.mu.Lock()
		res, ok := r.memo[key]
		r.mu.Unlock()
		if ok {
			return res, nil
		}
	}
	// SweepStore consults and populates the persistent store behind its
	// own memo; a single-spec call is exactly runOrLoad plus bookkeeping.
	out, err := experiments.SweepStore(1, r.st, []experiments.Spec{spec})
	if err != nil {
		return experiments.Result{}, err
	}
	if key != "" {
		r.mu.Lock()
		r.memo[key] = out[0]
		r.mu.Unlock()
	}
	return out[0], nil
}
