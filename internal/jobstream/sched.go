package jobstream

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// PendingJob is a queued job as schedulers see it.
type PendingJob struct {
	Width   int     // physical nodes the job occupies once placed
	Arrival float64 // submission time, seconds
	Est     float64 // fault-free service estimate, seconds
}

// RunEnd is one running job's completion. The simulator knows exact
// completion times (it computed them when the job was placed), so backfill
// reservations here are sharper than a real scheduler's walltime guesses —
// but a job's *own* Est can still undershoot its failure-stretched
// runtime, which is exactly the estimate error real backfill lives with.
type RunEnd struct {
	Time  float64
	Width int
}

// View is a scheduler's read-only picture of the cluster at one decision
// point. The simulator rebuilds it (into reused buffers) after every event
// and after every placement.
type View struct {
	Now     float64
	Nodes   int
	Free    int
	Pending []PendingJob // queue in arrival order
	RunEnds []RunEnd     // running jobs by ascending completion time
}

// Scheduler picks which pending job to place next. Next returns an index
// into v.Pending whose job must fit (Width <= v.Free), or -1 to wait for
// the next event. It is called again after every placement until it
// returns -1, so one decision point can place many jobs. A Scheduler may
// keep state; each (rate, scheduler, policy, trial) cell gets a fresh
// instance. The placement loop is an alloc-budgeted hot path: Next must
// not allocate.
type Scheduler interface {
	Name() string
	Next(v *View) int
}

// fcfs places strictly in arrival order: the head of the queue or nothing.
type fcfs struct{}

func (fcfs) Name() string { return "fcfs" }

func (fcfs) Next(v *View) int {
	if len(v.Pending) > 0 && v.Pending[0].Width <= v.Free {
		return 0
	}
	return -1
}

// easy is EASY backfill: FCFS, but when the head does not fit it computes
// the head's reservation (the shadow time at which enough nodes will have
// freed) and places any later job that fits now and either finishes by the
// shadow time or leaves the reservation's spare nodes untouched.
type easy struct{}

func (easy) Name() string { return "easy" }

func (easy) Next(v *View) int {
	if len(v.Pending) == 0 {
		return -1
	}
	if v.Pending[0].Width <= v.Free {
		return 0
	}
	// Reservation for the head: walk completions until it fits.
	shadow := math.Inf(1)
	spare := 0
	free := v.Free
	for _, re := range v.RunEnds {
		free += re.Width
		if free >= v.Pending[0].Width {
			shadow = re.Time
			spare = free - v.Pending[0].Width
			break
		}
	}
	for i := 1; i < len(v.Pending); i++ {
		p := v.Pending[i]
		if p.Width > v.Free {
			continue
		}
		if v.Now+p.Est <= shadow || p.Width <= spare {
			return i
		}
	}
	return -1
}

// kchoicesK is the probe width of the k-choices scheduler.
const kchoicesK = 4

// kchoices probes the first k queued jobs and places the widest one that
// fits (ties to the earliest arrival): a bounded-lookahead packing rule in
// the spirit of power-of-k-choices load balancing.
type kchoices struct{}

func (kchoices) Name() string { return "kchoices" }

func (kchoices) Next(v *View) int {
	best := -1
	for i := 0; i < len(v.Pending) && i < kchoicesK; i++ {
		if v.Pending[i].Width > v.Free {
			continue
		}
		if best < 0 || v.Pending[i].Width > v.Pending[best].Width {
			best = i
		}
	}
	return best
}

// RegistryEntry is one registered scheduler or policy, for sweep -list.
type RegistryEntry struct {
	Name        string
	Description string
}

var (
	regMu      sync.RWMutex
	schedulers = map[string]struct {
		desc string
		mk   func() Scheduler
	}{}
)

// RegisterScheduler adds a scheduler to the registry. Names are workload
// currency (files, store keys, CLI output), so an empty or duplicate name
// panics.
func RegisterScheduler(name, desc string, mk func() Scheduler) {
	if name == "" || mk == nil {
		panic("jobstream: RegisterScheduler with empty name or constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := schedulers[name]; dup {
		panic(fmt.Sprintf("jobstream: scheduler %q registered twice", name))
	}
	schedulers[name] = struct {
		desc string
		mk   func() Scheduler
	}{desc, mk}
}

// newScheduler instantiates a registered scheduler.
func newScheduler(name string) (Scheduler, error) {
	regMu.RLock()
	ent, ok := schedulers[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("jobstream: unknown scheduler %q (have %s)", name, nameList(SchedulerList()))
	}
	return ent.mk(), nil
}

// SchedulerList enumerates the registered schedulers, sorted by name.
func SchedulerList() []RegistryEntry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]RegistryEntry, 0, len(schedulers))
	for name, ent := range schedulers {
		out = append(out, RegistryEntry{Name: name, Description: ent.desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func nameList(entries []RegistryEntry) string {
	s := ""
	for i, e := range entries {
		if i > 0 {
			s += ", "
		}
		s += e.Name
	}
	return s
}

func init() {
	RegisterScheduler("fcfs", "first-come first-served: strict arrival order, no lookahead",
		func() Scheduler { return fcfs{} })
	RegisterScheduler("easy", "EASY backfill: FCFS head reservation, later jobs fill the holes",
		func() Scheduler { return easy{} })
	RegisterScheduler("kchoices", fmt.Sprintf("bounded lookahead: widest fitting job among the first %d queued", kchoicesK),
		func() Scheduler { return kchoices{} })
}
