package jobstream

import (
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Seed-stream lanes under fault.TrialSeed(seed, lane, trial): lane 0
// drives arrivals and class draws, lane 1 the node-failure trace. Every
// (scheduler, policy) cell of one trial re-derives both from the same
// coordinates, which is what makes the side-by-side comparison replay
// identical streams.
const (
	arrivalLane = 0
	failureLane = 1
)

// arrival is one generated job submission.
type arrival struct {
	at    float64 // submission time, seconds
	class int     // index into the workload mix
}

// genArrivals draws the trial's arrival stream: exponential interarrivals
// at the given rate and weighted class picks, both from one seeded
// generator. The interarrival draws are rate-independent uniforms scaled
// by 1/rate, so different rate points of one workload see common random
// numbers — a variance-reduction property, not a correctness requirement.
func genArrivals(w *scenario.Workload, rate float64, seed int64, trial int) []arrival {
	rng := rand.New(rand.NewSource(fault.TrialSeed(seed, arrivalLane, trial)))
	total := 0.0
	for _, c := range w.Mix {
		total += c.EffWeight()
	}
	out := make([]arrival, w.Jobs)
	t := 0.0
	for j := range out {
		t += rng.ExpFloat64() / rate
		pick := rng.Float64() * total
		class := len(w.Mix) - 1
		acc := 0.0
		for k, c := range w.Mix {
			acc += c.EffWeight()
			if pick < acc {
				class = k
				break
			}
		}
		out[j] = arrival{at: t, class: class}
	}
	return out
}

// failTrace is the trial's shared node-failure history: one exponential
// renewal process per node (fault.ExponentialDrawUnclamped with the nodes
// as "logical" slots), drawn lazily over a doubling horizon. Growing the
// horizon never disturbs failures already drawn — each node's sub-stream
// is prefix-stable — so every job can extend its own observation window
// independently and all cells of a trial agree on every node's history.
type failTrace struct {
	nodes   int
	mtbf    float64 // per-node MTBF, seconds (0 = failure-free)
	seed    int64
	horizon float64
	times   [][]float64 // per node, ascending absolute seconds
}

func newFailTrace(nodes int, mtbfSeconds float64, seed int64) *failTrace {
	return &failTrace{nodes: nodes, mtbf: mtbfSeconds, seed: seed, times: make([][]float64, nodes)}
}

// ensure extends the drawn horizon to cover `to`.
func (ft *failTrace) ensure(to float64) {
	if ft.mtbf == 0 || to <= ft.horizon {
		return
	}
	h := ft.horizon
	if h == 0 {
		h = ft.mtbf
	}
	for h < to {
		h *= 2
	}
	d := fault.ExponentialDrawUnclamped(ft.nodes, 1, sim.Seconds(ft.mtbf), sim.Seconds(h), ft.seed)
	for i := range ft.times {
		ft.times[i] = ft.times[i][:0]
	}
	for _, c := range d.Schedule.Crashes {
		ft.times[c.Logical] = append(ft.times[c.Logical], c.Time.Seconds())
	}
	ft.horizon = h
}

// window returns node's failures in [from, to), ascending. The returned
// slice aliases the trace; callers copy what they keep.
func (ft *failTrace) window(node int, from, to float64) []float64 {
	if ft.mtbf == 0 {
		return nil
	}
	ft.ensure(to)
	ts := ft.times[node]
	lo := sort.SearchFloat64s(ts, from)
	hi := lo + sort.SearchFloat64s(ts[lo:], to)
	return ts[lo:hi]
}
