// Package kernels implements the numerical kernels of the paper's
// benchmark applications (HPCCG's waxpby/ddot/sparsemv, the stencil
// operators of MiniGhost and AMG2013, grid reductions, and the
// particle-in-cell charge/push kernels of GTC).
//
// Every kernel performs the real computation on its arguments and returns
// a perf.Work describing the memory traffic and floating-point operations
// it performed, so callers can charge virtual time under the machine
// model. The byte/flop constants implement the roofline intuition the
// paper uses to explain intra-parallelization efficiency (§V-C): what
// matters is the ratio between a kernel's computation and the size of the
// output it must ship to peer replicas.
package kernels

import "repro/internal/perf"

// Per-element cost constants (bytes of memory traffic, flops). Bytes
// assume streaming access with cache reuse of neighbor values.
const (
	WaxpbyBytes = 24 // read x, read y, write w
	WaxpbyFlops = 3
	DdotBytes   = 16 // read x, read y
	DdotFlops   = 2
	AxpyBytes   = 24 // read x, read+write y
	AxpyFlops   = 2
	ScaleBytes  = 16
	ScaleFlops  = 1
	SumBytes    = 8
	SumFlops    = 1
)

// WaxpbyWork returns the cost of a waxpby over n elements.
func WaxpbyWork(n int) perf.Work {
	return perf.Work{Bytes: WaxpbyBytes * float64(n), Flops: WaxpbyFlops * float64(n)}
}

// Waxpby computes w = alpha*x + beta*y (HPCCG's waxpby kernel, Figure 3 of
// the paper) and returns its cost.
func Waxpby(alpha float64, x []float64, beta float64, y, w []float64) perf.Work {
	if alpha == 1.0 {
		for i := range w {
			w[i] = x[i] + beta*y[i]
		}
	} else if beta == 1.0 {
		for i := range w {
			w[i] = alpha*x[i] + y[i]
		}
	} else {
		for i := range w {
			w[i] = alpha*x[i] + beta*y[i]
		}
	}
	return WaxpbyWork(len(w))
}

// DdotWork returns the cost of a dot product over n elements.
func DdotWork(n int) perf.Work {
	return perf.Work{Bytes: DdotBytes * float64(n), Flops: DdotFlops * float64(n)}
}

// Ddot computes the dot product of x and y (HPCCG's ddot kernel).
func Ddot(x, y []float64) (float64, perf.Work) {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s, DdotWork(len(x))
}

// Axpy computes y += alpha*x and returns its cost.
func Axpy(alpha float64, x, y []float64) perf.Work {
	for i := range y {
		y[i] += alpha * x[i]
	}
	return perf.Work{Bytes: AxpyBytes * float64(len(y)), Flops: AxpyFlops * float64(len(y))}
}

// Scale computes x *= alpha and returns its cost.
func Scale(alpha float64, x []float64) perf.Work {
	for i := range x {
		x[i] *= alpha
	}
	return perf.Work{Bytes: ScaleBytes * float64(len(x)), Flops: ScaleFlops * float64(len(x))}
}

// SumWork returns the cost of summing n elements.
func SumWork(n int) perf.Work {
	return perf.Work{Bytes: SumBytes * float64(n), Flops: SumFlops * float64(n)}
}

// Sum computes the sum of v (MiniGhost's grid summation kernel).
func Sum(v []float64) (float64, perf.Work) {
	var s float64
	for _, x := range v {
		s += x
	}
	return s, SumWork(len(v))
}

// Fill sets every element of v to x (no cost accounting: setup only).
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}
