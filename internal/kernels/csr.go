package kernels

import "repro/internal/perf"

// Sparse matrix-vector cost constants. The gather of x is partially cached;
// 16 bytes per nonzero covers the 8-byte value, 4-byte column index, and an
// effective 4 bytes of x traffic, plus 16 bytes per row for row pointers
// and the store of y.
const (
	SpmvBytesPerNnz = 16
	SpmvBytesPerRow = 16
	SpmvFlopsPerNnz = 2
)

// CSR is a sparse matrix in compressed-sparse-row format. Column indices
// may address a vector longer than the number of rows: indices >= Rows
// refer to halo (external) entries appended to the local vector, exactly
// like HPCCG's external columns after exchange_externals.
type CSR struct {
	Rows   int
	RowPtr []int32
	Cols   []int32
	Vals   []float64
}

// Nnz returns the number of stored nonzeros.
func (m *CSR) Nnz() int { return len(m.Vals) }

// SpmvWork returns the cost of a sparse matrix-vector product with the
// given shape.
func SpmvWork(rows, nnz int) perf.Work {
	return perf.Work{
		Bytes: SpmvBytesPerNnz*float64(nnz) + SpmvBytesPerRow*float64(rows),
		Flops: SpmvFlopsPerNnz * float64(nnz),
	}
}

// MulVecRange computes y[r0:r1] = (A x)[r0:r1] for the row range [r0, r1)
// (HPCCG's sparsemv kernel, restricted to a task's rows). x must include
// halo entries for any external column indices.
func (m *CSR) MulVecRange(x, y []float64, r0, r1 int) perf.Work {
	nnz := 0
	for r := r0; r < r1; r++ {
		var s float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Vals[k] * x[m.Cols[k]]
		}
		y[r] = s
		nnz += int(m.RowPtr[r+1] - m.RowPtr[r])
	}
	return SpmvWork(r1-r0, nnz)
}

// MulVec computes y = A x over all rows.
func (m *CSR) MulVec(x, y []float64) perf.Work {
	return m.MulVecRange(x, y, 0, m.Rows)
}

// Gen27Point generates the local block of the 27-point problem HPCCG
// solves: a (nx*ny*nz)-row slab of the global grid decomposed in z. Row
// (ix, iy, iz) couples to its 27 neighbors with off-diagonal value -1 and
// diagonal 26 (HPCCG's default operator, which makes the global matrix
// weakly diagonally dominant). Neighbors that fall outside the global
// domain are dropped; neighbors in the z-plane below/above the slab map to
// halo indices:
//
//	below: rows..rows+nx*ny-1   (plane received from rank-1)
//	above: rows+nx*ny..rows+2*nx*ny-1 (plane received from rank+1)
//
// hasBelow/hasAbove indicate whether those neighbor slabs exist.
func Gen27Point(nx, ny, nz int, hasBelow, hasAbove bool) *CSR {
	rows := nx * ny * nz
	plane := nx * ny
	m := &CSR{Rows: rows}
	m.RowPtr = make([]int32, rows+1)
	m.Cols = make([]int32, 0, rows*27)
	m.Vals = make([]float64, 0, rows*27)
	idx := func(ix, iy, iz int) int32 { return int32(iz*plane + iy*nx + ix) }
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							jx, jy, jz := ix+dx, iy+dy, iz+dz
							if jx < 0 || jx >= nx || jy < 0 || jy >= ny {
								continue
							}
							var col int32
							switch {
							case jz >= 0 && jz < nz:
								col = idx(jx, jy, jz)
							case jz < 0:
								if !hasBelow {
									continue
								}
								col = int32(rows + jy*nx + jx)
							default: // jz >= nz
								if !hasAbove {
									continue
								}
								col = int32(rows + plane + jy*nx + jx)
							}
							v := -1.0
							if dx == 0 && dy == 0 && dz == 0 {
								v = 26.0
							}
							m.Cols = append(m.Cols, col)
							m.Vals = append(m.Vals, v)
						}
					}
				}
				m.RowPtr[iz*plane+iy*nx+ix+1] = int32(len(m.Vals))
			}
		}
	}
	return m
}

// MulVecDense is a reference implementation against a dense row gather,
// used by property tests.
func (m *CSR) MulVecDense(x []float64) []float64 {
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			y[r] += m.Vals[k] * x[m.Cols[k]]
		}
	}
	return y
}
