package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(math.Abs(a)+math.Abs(b))+1e-12
}

func TestWaxpby(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	w := make([]float64, 3)
	work := Waxpby(2, x, 3, y, w)
	for i := range w {
		if w[i] != 2*x[i]+3*y[i] {
			t.Fatalf("w = %v", w)
		}
	}
	if work.Bytes != 72 || work.Flops != 9 {
		t.Fatalf("work = %v", work)
	}
	// Specialized paths.
	Waxpby(1, x, 3, y, w)
	if w[0] != 1+3*4 {
		t.Fatal("alpha=1 path")
	}
	Waxpby(2, x, 1, y, w)
	if w[0] != 2+4 {
		t.Fatal("beta=1 path")
	}
}

func TestDdotAndSum(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	d, work := Ddot(x, y)
	if d != 32 {
		t.Fatalf("ddot = %v", d)
	}
	if work != DdotWork(3) {
		t.Fatalf("work = %v", work)
	}
	s, _ := Sum(x)
	if s != 6 {
		t.Fatalf("sum = %v", s)
	}
}

func TestAxpyScaleFill(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("axpy: %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 {
		t.Fatalf("scale: %v", y)
	}
	Fill(y, 9)
	if y[0] != 9 || y[1] != 9 {
		t.Fatalf("fill: %v", y)
	}
}

func TestGen27PointShape(t *testing.T) {
	m := Gen27Point(4, 4, 4, false, false)
	if m.Rows != 64 {
		t.Fatalf("rows = %d", m.Rows)
	}
	// Interior row (1,1,1)...(2,2,2) region: center rows have 27 entries.
	r := 1*16 + 1*4 + 1
	if got := int(m.RowPtr[r+1] - m.RowPtr[r]); got != 27 {
		t.Fatalf("interior row has %d entries, want 27", got)
	}
	// Corner row 0: 8 entries (2x2x2 neighborhood).
	if got := int(m.RowPtr[1] - m.RowPtr[0]); got != 8 {
		t.Fatalf("corner row has %d entries, want 8", got)
	}
	// Diagonal dominance: row sums are 26 - (k-1) >= 0.
	for r := 0; r < m.Rows; r++ {
		var sum float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			sum += m.Vals[k]
		}
		if sum < 0 {
			t.Fatalf("row %d sum %v < 0", r, sum)
		}
	}
}

func TestGen27PointHaloColumns(t *testing.T) {
	nx, ny, nz := 3, 3, 2
	m := Gen27Point(nx, ny, nz, true, true)
	rows := nx * ny * nz
	plane := nx * ny
	maxCol := int32(0)
	seenBelow, seenAbove := false, false
	for _, c := range m.Cols {
		if c > maxCol {
			maxCol = c
		}
		if c >= int32(rows) && c < int32(rows+plane) {
			seenBelow = true
		}
		if c >= int32(rows+plane) {
			seenAbove = true
		}
	}
	if !seenBelow || !seenAbove {
		t.Fatal("halo columns missing")
	}
	if maxCol >= int32(rows+2*plane) {
		t.Fatalf("column %d out of range", maxCol)
	}
}

func TestMulVecRangeMatchesFull(t *testing.T) {
	m := Gen27Point(3, 3, 3, false, false)
	x := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	want := m.MulVecDense(x)
	y := make([]float64, m.Rows)
	m.MulVecRange(x, y, 0, m.Rows/2)
	m.MulVecRange(x, y, m.Rows/2, m.Rows)
	for i := range y {
		if !almostEq(y[i], want[i]) {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

// Property: CSR matvec matches the dense reference for random sparse
// matrices.
func TestSpmvProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(20) + 1
		m := &CSR{Rows: rows, RowPtr: make([]int32, rows+1)}
		for r := 0; r < rows; r++ {
			nnz := rng.Intn(5)
			for k := 0; k < nnz; k++ {
				m.Cols = append(m.Cols, int32(rng.Intn(rows)))
				m.Vals = append(m.Vals, rng.NormFloat64())
			}
			m.RowPtr[r+1] = int32(len(m.Vals))
		}
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := m.MulVecDense(x)
		y := make([]float64, rows)
		mid := rows / 2
		m.MulVecRange(x, y, 0, mid)
		m.MulVecRange(x, y, mid, rows)
		for i := range y {
			if !almostEq(y[i], want[i]) {
				return false
			}
		}
		return m.Nnz() == len(m.Vals)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func naiveStencil(in *Slab, center, off float64, pts int) *Slab {
	out := NewSlab(in.Nx, in.Ny, in.Nz)
	for iz := 0; iz < in.Nz; iz++ {
		for iy := 0; iy < in.Ny; iy++ {
			for ix := 0; ix < in.Nx; ix++ {
				var nb float64
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							if pts == 7 && (dx*dx+dy*dy+dz*dz) != 1 {
								continue
							}
							nb += in.at(ix+dx, iy+dy, iz+dz)
						}
					}
				}
				out.V[(iz+1)*in.Nx*in.Ny+iy*in.Nx+ix] = center*in.at(ix, iy, iz) + off*nb
			}
		}
	}
	return out
}

func randomSlab(rng *rand.Rand, nx, ny, nz int, halos bool) *Slab {
	s := NewSlab(nx, ny, nz)
	lo := 0
	hi := len(s.V)
	if !halos {
		lo = nx * ny
		hi -= nx * ny
	}
	for i := lo; i < hi; i++ {
		s.V[i] = rng.NormFloat64()
	}
	return s
}

func TestStencilsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := randomSlab(rng, 4, 3, 5, true)
	for _, pts := range []int{7, 27} {
		out := NewSlab(4, 3, 5)
		if pts == 27 {
			Stencil27Range(in, out, 2.0, -0.1, 0, 5)
		} else {
			Stencil7Range(in, out, 2.0, -0.1, 0, 5)
		}
		want := naiveStencil(in, 2.0, -0.1, pts)
		for i, v := range out.Interior() {
			if !almostEq(v, want.Interior()[i]) {
				t.Fatalf("%d-pt stencil mismatch at %d: %v vs %v", pts, i, v, want.Interior()[i])
			}
		}
	}
}

func TestStencilRangeSplitsMatchWhole(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny, nz := rng.Intn(4)+2, rng.Intn(4)+2, rng.Intn(6)+2
		in := randomSlab(rng, nx, ny, nz, true)
		whole := NewSlab(nx, ny, nz)
		split := NewSlab(nx, ny, nz)
		Stencil27Range(in, whole, 1.5, -0.2, 0, nz)
		cut := rng.Intn(nz)
		Stencil27Range(in, split, 1.5, -0.2, 0, cut)
		Stencil27Range(in, split, 1.5, -0.2, cut, nz)
		for i := range whole.V {
			if !almostEq(whole.V[i], split.V[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSlabPlaneAccess(t *testing.T) {
	s := NewSlab(2, 2, 3)
	Fill(s.Plane(-1), 1) // bottom halo
	Fill(s.Plane(3), 2)  // top halo
	Fill(s.Plane(0), 5)
	if s.at(0, 0, -1) != 1 || s.at(1, 1, 3) != 2 || s.at(0, 1, 0) != 5 {
		t.Fatal("plane addressing wrong")
	}
	if s.at(-1, 0, 0) != 0 || s.at(2, 0, 0) != 0 {
		t.Fatal("x/y boundary should be zero")
	}
	if len(s.Interior()) != 12 {
		t.Fatal("interior size")
	}
}

func TestRestrictProlongRoundtrip(t *testing.T) {
	fine := NewSlab(4, 4, 4)
	Fill(fine.Interior(), 0)
	for i := range fine.V {
		fine.V[i] = 3
	}
	coarse := NewSlab(2, 2, 2)
	Restrict(fine, coarse)
	for _, v := range coarse.Interior() {
		if v != 3 {
			t.Fatalf("restrict of constant = %v, want 3", v)
		}
	}
	target := NewSlab(4, 4, 4)
	ProlongAdd(coarse, target)
	for _, v := range target.Interior() {
		if v != 3 {
			t.Fatalf("prolong of constant = %v, want 3", v)
		}
	}
}

func TestChargeDepositConservesWeight(t *testing.T) {
	p := NewParticles(1000, 0, 16)
	rho := make([]float64, 16)
	ChargeDeposit(p.Psi, p.W, rho, 0)
	total, _ := Sum(rho)
	if !almostEq(total, 1.0) {
		t.Fatalf("deposited weight = %v, want 1", total)
	}
}

func TestChargeDepositClampsOutOfRange(t *testing.T) {
	rho := make([]float64, 4)
	ChargeDeposit([]float64{-5, 100}, []float64{1, 1}, rho, 0)
	total, _ := Sum(rho)
	if !almostEq(total, 2) {
		t.Fatalf("clamped deposit lost weight: %v", rho)
	}
}

func TestPushReflectsAtBoundaries(t *testing.T) {
	p := NewParticles(64, 0, 8)
	phi := make([]float64, 8)
	for i := range phi {
		phi[i] = math.Sin(float64(i))
	}
	for step := 0; step < 50; step++ {
		Push(p.Psi, p.Vpar, phi, 0, 8, 0.5)
	}
	for i, x := range p.Psi {
		if x < 0 || x > 8 {
			t.Fatalf("particle %d escaped: psi=%v", i, x)
		}
	}
}

func TestPushDeterminism(t *testing.T) {
	run := func() float64 {
		p := NewParticles(128, 0, 8)
		phi := make([]float64, 8)
		for i := range phi {
			phi[i] = float64(i % 3)
		}
		for step := 0; step < 10; step++ {
			Push(p.Psi, p.Vpar, phi, 0, 8, 0.1)
		}
		s, _ := Sum(p.Psi)
		return s
	}
	if run() != run() {
		t.Fatal("push is not deterministic")
	}
}

func TestWorkFunctions(t *testing.T) {
	cases := []struct {
		name string
		work func(int) float64
	}{
		{"waxpby", func(n int) float64 { return WaxpbyWork(n).Bytes }},
		{"ddot", func(n int) float64 { return DdotWork(n).Bytes }},
		{"sum", func(n int) float64 { return SumWork(n).Bytes }},
		{"st27", func(n int) float64 { return Stencil27Work(n).Flops }},
		{"st7", func(n int) float64 { return Stencil7Work(n).Flops }},
		{"charge", func(n int) float64 { return ChargeWork(n).Flops }},
		{"push", func(n int) float64 { return PushWork(n).Flops }},
		{"spmv", func(n int) float64 { return SpmvWork(n, 27*n).Bytes }},
	}
	for _, c := range cases {
		if c.work(10) <= 0 || c.work(20) != 2*c.work(10) {
			t.Fatalf("%s work not linear", c.name)
		}
	}
}

func TestTotalWeight(t *testing.T) {
	w, _ := TotalWeight([]float64{0.25, 0.25, 0.5})
	if w != 1 {
		t.Fatalf("total weight %v", w)
	}
	p := NewParticles(10, 0, 4)
	if p.Len() != 10 {
		t.Fatal("len")
	}
}
