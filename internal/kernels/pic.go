package kernels

import "repro/internal/perf"

// Particle-in-cell cost constants, sized after GTC's charge and push
// phases: push performs the gyro-averaged field gather and the
// Runge-Kutta position/velocity update (hundreds of flops per particle),
// charge scatters each particle onto its neighboring grid points.
const (
	ChargeBytesPerParticle = 80
	ChargeFlopsPerParticle = 60
	PushBytesPerParticle   = 120
	PushFlopsPerParticle   = 300
)

// Particles holds the state of one zone's particles in structure-of-arrays
// form. Psi is the (1D surrogate) position coordinate within the zone's
// cell range, Vpar the parallel velocity, W the particle weight.
type Particles struct {
	Psi  []float64
	Vpar []float64
	W    []float64
}

// NewParticles creates n particles spread deterministically over cells
// [c0, c1) with alternating velocities.
func NewParticles(n int, c0, c1 float64) *Particles {
	p := &Particles{
		Psi:  make([]float64, n),
		Vpar: make([]float64, n),
		W:    make([]float64, n),
	}
	span := c1 - c0
	for i := 0; i < n; i++ {
		frac := (float64(i) + 0.5) / float64(n)
		p.Psi[i] = c0 + frac*span
		p.Vpar[i] = 0.3 * (2*frac - 1)
		p.W[i] = 1.0 / float64(n)
	}
	return p
}

// Len returns the particle count.
func (p *Particles) Len() int { return len(p.Psi) }

// ChargeWork returns the cost of depositing n particles.
func ChargeWork(n int) perf.Work {
	return perf.Work{Bytes: ChargeBytesPerParticle * float64(n), Flops: ChargeFlopsPerParticle * float64(n)}
}

// ChargeDeposit scatters particle weights onto rho, a grid covering cells
// [c0, c0+len(rho)) with linear (cloud-in-cell) interpolation. rho is
// overwritten (GTC's charge kernel for one zone).
func ChargeDeposit(psi, w []float64, rho []float64, c0 float64) perf.Work {
	Fill(rho, 0)
	n := len(rho)
	for i := range psi {
		x := psi[i] - c0
		cell := int(x)
		frac := x - float64(cell)
		if cell < 0 {
			cell, frac = 0, 0
		}
		if cell >= n-1 {
			cell, frac = n-2, 1
		}
		rho[cell] += w[i] * (1 - frac)
		rho[cell+1] += w[i] * frac
	}
	return ChargeWork(len(psi))
}

// PushWork returns the cost of pushing n particles.
func PushWork(n int) perf.Work {
	return perf.Work{Bytes: PushBytesPerParticle * float64(n), Flops: PushFlopsPerParticle * float64(n)}
}

// Push advances particle positions and velocities one step dt using the
// field phi defined on cells [c0, c0+len(phi)) (GTC's push kernel for one
// zone). Positions are reflected at the zone boundaries [c0, c1]; the new
// position depends on the old one, which is why the paper declares
// positions inout (§IV).
func Push(psi, vpar []float64, phi []float64, c0, c1, dt float64) perf.Work {
	n := len(phi)
	for i := range psi {
		x := psi[i] - c0
		cell := int(x)
		if cell < 0 {
			cell = 0
		}
		if cell >= n-1 {
			cell = n - 2
		}
		frac := x - float64(cell)
		// Field gather (linear interpolation of E = -grad phi).
		e := -(phi[cell+1] - phi[cell])
		_ = frac
		// Leapfrog-ish update.
		vpar[i] += dt * e
		psi[i] += dt * vpar[i]
		// Reflect at zone boundaries.
		if psi[i] < c0 {
			psi[i] = 2*c0 - psi[i]
			vpar[i] = -vpar[i]
		}
		if psi[i] > c1 {
			psi[i] = 2*c1 - psi[i]
			vpar[i] = -vpar[i]
		}
	}
	return PushWork(len(psi))
}

// TotalWeight returns the summed particle weight (charge conservation
// check) and its cost.
func TotalWeight(w []float64) (float64, perf.Work) {
	return Sum(w)
}
