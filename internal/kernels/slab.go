package kernels

import "repro/internal/perf"

// Stencil cost constants. Neighbor loads hit cache (three resident
// planes), so effective traffic is the input read, the output write, and a
// third-of-a-plane miss stream.
const (
	Stencil27Bytes = 24
	Stencil27Flops = 54 // 27 multiply-adds
	Stencil7Bytes  = 24
	Stencil7Flops  = 14 // 7 multiply-adds
)

// Slab is a 3D block of a z-decomposed structured grid with one halo plane
// on each z side. The layout is V[(iz+1)*Nx*Ny + iy*Nx + ix] for interior
// z index iz in [0, Nz); planes z=-1 and z=Nz live at the ends and are
// filled by halo exchange. x and y boundaries are domain boundaries
// (Dirichlet: values outside are treated as zero).
type Slab struct {
	Nx, Ny, Nz int
	V          []float64
}

// NewSlab allocates a zeroed slab.
func NewSlab(nx, ny, nz int) *Slab {
	return &Slab{Nx: nx, Ny: ny, Nz: nz, V: make([]float64, nx*ny*(nz+2))}
}

// Plane returns the storage of interior plane iz in [0, Nz); iz == -1 and
// iz == Nz address the halo planes.
func (s *Slab) Plane(iz int) []float64 {
	p := s.Nx * s.Ny
	off := (iz + 1) * p
	return s.V[off : off+p]
}

// Interior returns all interior values as one slice (without halos).
// The result aliases the slab's storage only when Nz == 1; callers must
// treat it as read-only.
func (s *Slab) Interior() []float64 {
	p := s.Nx * s.Ny
	return s.V[p : p+s.Nx*s.Ny*s.Nz]
}

// at returns the value at (ix, iy, iz) with zero x/y boundaries; iz may
// address halo planes.
func (s *Slab) at(ix, iy, iz int) float64 {
	if ix < 0 || ix >= s.Nx || iy < 0 || iy >= s.Ny {
		return 0
	}
	return s.V[(iz+1)*s.Nx*s.Ny+iy*s.Nx+ix]
}

// Stencil27Work returns the cost of a 27-point stencil over n elements.
func Stencil27Work(n int) perf.Work {
	return perf.Work{Bytes: Stencil27Bytes * float64(n), Flops: Stencil27Flops * float64(n)}
}

// Stencil27Range applies the 27-point stencil
//
//	out = center*in + sum(neighbors)*off
//
// to interior planes [z0, z1) (MiniGhost's 27-point kernel and the AMG
// 27-point operator). Halo planes of `in` must be current.
func Stencil27Range(in, out *Slab, center, off float64, z0, z1 int) perf.Work {
	nx, ny := in.Nx, in.Ny
	for iz := z0; iz < z1; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				var nb float64
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							nb += in.at(ix+dx, iy+dy, iz+dz)
						}
					}
				}
				out.V[(iz+1)*nx*ny+iy*nx+ix] = center*in.at(ix, iy, iz) + off*nb
			}
		}
	}
	return Stencil27Work((z1 - z0) * nx * ny)
}

// Stencil7Work returns the cost of a 7-point stencil over n elements.
func Stencil7Work(n int) perf.Work {
	return perf.Work{Bytes: Stencil7Bytes * float64(n), Flops: Stencil7Flops * float64(n)}
}

// Stencil7Range applies the 7-point stencil out = center*in + off*(6
// face neighbors) to interior planes [z0, z1) (AMG's 7-point operator).
func Stencil7Range(in, out *Slab, center, off float64, z0, z1 int) perf.Work {
	nx, ny := in.Nx, in.Ny
	for iz := z0; iz < z1; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				nb := in.at(ix-1, iy, iz) + in.at(ix+1, iy, iz) +
					in.at(ix, iy-1, iz) + in.at(ix, iy+1, iz) +
					in.at(ix, iy, iz-1) + in.at(ix, iy, iz+1)
				out.V[(iz+1)*nx*ny+iy*nx+ix] = center*in.at(ix, iy, iz) + off*nb
			}
		}
	}
	return Stencil7Work((z1 - z0) * nx * ny)
}

// RestrictWork returns the cost of restricting n fine elements.
const (
	restrictBytesPerCoarse = 80 // read 8 fine cells, write 1 coarse
	restrictFlopsPerCoarse = 8
	prolongBytesPerFine    = 24 // read coarse (cached), read+write fine
	prolongFlopsPerFine    = 2
)

// Restrict coarsens fine into coarse by averaging 2x2x2 cells (the
// full-weighting restriction of the multigrid hierarchy). Fine dimensions
// must be exactly double the coarse ones.
func Restrict(fine, coarse *Slab) perf.Work {
	for iz := 0; iz < coarse.Nz; iz++ {
		for iy := 0; iy < coarse.Ny; iy++ {
			for ix := 0; ix < coarse.Nx; ix++ {
				var s float64
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							s += fine.at(2*ix+dx, 2*iy+dy, 2*iz+dz)
						}
					}
				}
				coarse.V[(iz+1)*coarse.Nx*coarse.Ny+iy*coarse.Nx+ix] = s / 8
			}
		}
	}
	n := coarse.Nx * coarse.Ny * coarse.Nz
	return perf.Work{Bytes: restrictBytesPerCoarse * float64(n), Flops: restrictFlopsPerCoarse * float64(n)}
}

// ProlongAdd interpolates coarse into fine by piecewise-constant
// injection and adds it to fine (the correction step of the V-cycle).
func ProlongAdd(coarse, fine *Slab) perf.Work {
	for iz := 0; iz < fine.Nz; iz++ {
		for iy := 0; iy < fine.Ny; iy++ {
			for ix := 0; ix < fine.Nx; ix++ {
				fine.V[(iz+1)*fine.Nx*fine.Ny+iy*fine.Nx+ix] += coarse.at(ix/2, iy/2, iz/2)
			}
		}
	}
	n := fine.Nx * fine.Ny * fine.Nz
	return perf.Work{Bytes: prolongBytesPerFine * float64(n), Flops: prolongFlopsPerFine * float64(n)}
}
