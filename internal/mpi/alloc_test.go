package mpi

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/testutil"
)

// pingPongAllocs runs a two-rank ping-pong of the given length in a fresh
// world and returns the total allocation count. Callers difference two
// lengths so the fixed setup cost (engine, world, goroutines) cancels out.
func pingPongAllocs(t *testing.T, rounds int) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		e := sim.New()
		net := simnet.New(e, simnet.InfiniBand20G, 1)
		w := NewWorld(e, net, 2, perf.Grid5000, nil)
		payload := make([]float64, 16)
		w.Launch("a", 0, func(r *Rank) {
			for i := 0; i < rounds; i++ {
				if err := r.Send(r.World(), 1, 0, payload, nil); err != nil {
					t.Error(err)
					return
				}
				if _, err := r.Recv(r.World(), 1, 1); err != nil {
					t.Error(err)
					return
				}
			}
		})
		w.Launch("b", 1, func(r *Rank) {
			for i := 0; i < rounds; i++ {
				if _, err := r.Recv(r.World(), 0, 0); err != nil {
					t.Error(err)
					return
				}
				if err := r.Send(r.World(), 0, 1, payload, nil); err != nil {
					t.Error(err)
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
}

// TestPingPongAllocBudget pins the allocation-light p2p hot path. One round
// is two messages plus two receives; each message costs the payload copy,
// the Message, the Request, and the in-flight record, and each receive one
// Request — everything else (events, transfers, delivery and completion
// callbacks, park reasons) must stay allocation-free. The pre-refactor
// engine spent ~40 allocations per round; the budget fails CI if the hot
// path regresses toward that.
func TestPingPongAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	const span = 1000
	perRound := (pingPongAllocs(t, 100+span) - pingPongAllocs(t, 100)) / span
	t.Logf("allocs per ping-pong round: %.2f", perRound)
	if perRound > 12 {
		t.Fatalf("ping-pong round allocates %.2f objects, budget 12", perRound)
	}
}
