package mpi

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/testutil"
)

// pingPongAllocs runs a two-rank ping-pong of the given length in a fresh
// world and returns the total allocation count. Callers difference two
// lengths so the fixed setup cost (engine, world, goroutines) cancels out.
func pingPongAllocs(t *testing.T, rounds int) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		e := sim.New()
		net := simnet.New(e, simnet.InfiniBand20G, 1)
		w := NewWorld(e, net, 2, perf.Grid5000, nil)
		payload := make([]float64, 16)
		w.Launch("a", 0, func(r *Rank) {
			for i := 0; i < rounds; i++ {
				if err := r.Send(r.World(), 1, 0, payload, nil); err != nil {
					t.Error(err)
					return
				}
				msg, err := r.Recv(r.World(), 1, 1)
				if err != nil {
					t.Error(err)
					return
				}
				w.RecycleMessage(msg)
			}
		})
		w.Launch("b", 1, func(r *Rank) {
			for i := 0; i < rounds; i++ {
				msg, err := r.Recv(r.World(), 0, 0)
				if err != nil {
					t.Error(err)
					return
				}
				w.RecycleMessage(msg)
				if err := r.Send(r.World(), 0, 1, payload, nil); err != nil {
					t.Error(err)
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
}

// TestPingPongAllocBudget pins the allocation-free p2p hot path. Blocking
// Send copies into a pooled message, the receiver hands the consumed message
// back via RecycleMessage, and requests, transfer nodes and channel states
// all cycle through the world pools — so a steady-state round allocates
// nothing beyond amortized pool slab refills. The pre-refactor engine spent
// ~40 allocations per round and the copying Send 4; the budget fails CI if
// the hot path regresses toward either.
func TestPingPongAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	const span = 1000
	perRound := (pingPongAllocs(t, 100+span) - pingPongAllocs(t, 100)) / span
	t.Logf("allocs per ping-pong round: %.2f", perRound)
	if perRound > 1 {
		t.Fatalf("ping-pong round allocates %.2f objects, budget 1", perRound)
	}
}

// collAllocs runs `rounds` back-to-back collectives on an n-rank world and
// returns the total allocation count. As with pingPongAllocs, callers
// difference two round counts so world construction and the pool's warm-up
// rounds cancel out and only the steady-state per-operation cost remains.
func collAllocs(t *testing.T, n, rounds int, op func(r *Rank, buf []float64) error) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		e := sim.New()
		net := simnet.New(e, simnet.InfiniBand20G, n)
		w := NewWorld(e, net, n, perf.Grid5000, nil)
		w.LaunchAll("coll", func(r *Rank) {
			buf := make([]float64, 8)
			for i := 0; i < rounds; i++ {
				if err := op(r, buf); err != nil {
					t.Error(err)
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
}

// TestCollectiveAllocBudgets pins the pooled collective state machines:
// once the scratch pools are warm, a whole barrier, broadcast or allreduce
// must cost at most a handful of allocations per rank per operation. The
// blocking pre-refactor implementation spent hundreds per allreduce-64;
// the budget of 8 allocs/op (the acceptance bar for allreduce-64) keeps
// the event-driven rewrite honest at both ends of the size range.
func TestCollectiveAllocBudgets(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	cases := []struct {
		name string
		n    int
		op   func(r *Rank, buf []float64) error
	}{
		{"barrier-8", 8, func(r *Rank, _ []float64) error { return r.Barrier(r.World()) }},
		{"barrier-64", 64, func(r *Rank, _ []float64) error { return r.Barrier(r.World()) }},
		{"bcast-8", 8, func(r *Rank, buf []float64) error { return r.Bcast(r.World(), 0, buf) }},
		{"bcast-64", 64, func(r *Rank, buf []float64) error { return r.Bcast(r.World(), 0, buf) }},
		{"allreduce-8", 8, func(r *Rank, buf []float64) error { return r.Allreduce(r.World(), OpSum, buf) }},
		{"allreduce-64", 64, func(r *Rank, buf []float64) error { return r.Allreduce(r.World(), OpSum, buf) }},
		{"allreduce-512", 512, func(r *Rank, buf []float64) error { return r.Allreduce(r.World(), OpSum, buf) }},
	}
	const span = 60
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rounds := 20
			if tc.n >= 512 {
				// The big world warms its pools in fewer rounds and each op
				// costs ~1 ms; keep the differencing window affordable.
				rounds = 5
			}
			perOp := (collAllocs(t, tc.n, rounds+span, tc.op) - collAllocs(t, tc.n, rounds, tc.op)) / span
			perRankOp := perOp / float64(tc.n)
			t.Logf("%s: %.2f allocs per collective (%.3f per rank)", tc.name, perOp, perRankOp)
			if perRankOp > 1 {
				t.Fatalf("%s allocates %.2f objects per rank per op, budget 1", tc.name, perRankOp)
			}
		})
	}
}
