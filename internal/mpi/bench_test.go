package mpi

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// benchAllreduce measures an n-rank simulated allreduce per op (4 ranks per
// node), in-package so the collective state machines can be profiled without
// going through cmd/bench.
func benchAllreduce(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.New()
		net := simnet.New(e, simnet.InfiniBand20G, n/4)
		w := NewWorld(e, net, n, perf.Grid5000, nil)
		w.LaunchAll("r", func(r *Rank) {
			for i := 0; i < b.N; i++ {
				if _, err := r.AllreduceScalar(r.World(), OpSum, float64(r.Rank())); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllreduce64(b *testing.B)  { benchAllreduce(64)(b) }
func BenchmarkAllreduce512(b *testing.B) { benchAllreduce(512)(b) }
