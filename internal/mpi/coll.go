package mpi

import "repro/internal/sim"

// collSM is a per-rank collective state machine. Instead of parking the
// calling process once per hop (goroutine handoff per message), the caller
// parks once per collective and the machine advances inside engine event
// callbacks: each completed request schedules exactly one continuation event
// via Future.NotifyTimer, at the same virtual time and sequence position a
// process wake-up would have occupied, so the engine's event sequence — and
// with it every same-timestamp tie-break and the sim_events counter — is
// identical to the blocking implementation it replaced.
//
// One machine lives on each rankState and is reused across collectives
// (ranks run at most one collective at a time); its requests and messages
// cycle through the world pools, so steady-state collectives allocate
// nothing.
type collSM struct {
	st *rankState
	c  *Comm

	op  int // public operation code (opBarrier..opGather), for park reasons
	sub int // algorithm currently running (allreduce chains reduce→bcast)
	tag int

	n, me, root, vrank int

	phase int
	dist  int // dissemination barrier distance
	mask  int // binomial tree mask (bcast/reduce)
	step  int // allgather ring step
	idx   int // gather receive index
	elems int // per-member block length (allgather/gather)

	data    []float64 // caller buffer (bcast/reduce/allreduce)
	contrib []float64 // caller contribution (gather non-root)
	out     []float64 // caller output (allgather/gather root)
	rop     ReduceOp

	sreq, rreq *Request
	blockedAt  sim.Time

	proc   *sim.Proc // the parked caller, once parked
	active bool
	parked bool
	done   bool
	err    error
}

// startColl readies the rank's pooled machine for one collective.
func (r *Rank) startColl(c *Comm, op int) *collSM {
	r.flush()
	me := c.CommRank(r.st.rank)
	if me < 0 {
		panic(errNotMember(r.st.rank, c.id))
	}
	sm := r.st.coll
	if sm == nil {
		sm = &collSM{st: r.st}
		r.st.coll = sm
	}
	if sm.active {
		panic("mpi: concurrent collectives on one rank")
	}
	sm.active = true
	sm.c = c
	sm.op = op
	sm.sub = op
	sm.tag = -op
	sm.n = c.Size()
	sm.me = me
	sm.phase = 0
	sm.root = 0
	sm.vrank = 0
	sm.dist = 0
	sm.mask = 0
	sm.step = 0
	sm.idx = 0
	sm.elems = 0
	return sm
}

// runColl drives the machine from the caller's process context. If it
// cannot finish inline, the caller parks once; the machine's final
// continuation event hands control back via Engine.Unblock.
func (r *Rank) runColl(sm *collSM) error {
	sm.advance()
	if !sm.done {
		sm.proc = r.p
		sm.parked = true
		r.p.Block(sim.ParkReason{Kind: sim.WaitColl, A: int64(sm.op)})
	}
	err := sm.err
	sm.release()
	return err
}

// release returns the machine to its idle state for reuse. Requests still
// in flight on error paths are deliberately not recycled.
func (sm *collSM) release() {
	sm.c = nil
	sm.data = nil
	sm.contrib = nil
	sm.out = nil
	sm.rop = nil
	sm.sreq = nil
	sm.rreq = nil
	sm.proc = nil
	sm.active = false
	sm.parked = false
	sm.done = false
	sm.err = nil
}

// Fire is the continuation: the request the machine blocked on has
// completed, so account the blocked span and keep advancing. A completion
// arriving after the rank crashed is dropped, exactly as a stale process
// wake-up would be.
func (sm *collSM) Fire() {
	if sm.st.dead {
		return
	}
	sm.st.stats.Blocked += sm.st.w.e.Now() - sm.blockedAt
	sm.advance()
	if sm.done && sm.parked {
		sm.st.w.e.Unblock(sm.proc)
	}
}

// advance runs the current algorithm until it blocks or the collective
// (including a chained sub-collective) completes.
func (sm *collSM) advance() {
	for {
		var blocked bool
		switch sm.sub {
		case opBarrier:
			blocked = sm.stepBarrier()
		case opBcast:
			blocked = sm.stepBcast()
		case opReduce:
			blocked = sm.stepReduce()
		case opAllgather:
			blocked = sm.stepAllgather()
		case opGather:
			blocked = sm.stepGather()
		}
		if blocked || sm.done {
			return
		}
	}
}

// finish ends the current algorithm. A successful reduce inside an
// allreduce chains into the broadcast of the result; everything else
// completes the collective.
func (sm *collSM) finish(err error) bool {
	if err == nil && sm.op == opAllreduce && sm.sub == opReduce {
		sm.sub = opBcast
		sm.tag = -opBcast
		sm.root = 0
		sm.vrank = sm.me
		sm.mask = 0
		sm.phase = 0
		return false
	}
	sm.done = true
	sm.err = err
	return false
}

// yield blocks the machine on rq unless it already completed inline — the
// exact condition under which the blocking implementation parked.
func (sm *collSM) yield(rq *Request) bool {
	if rq.fut.Done() {
		return false
	}
	sm.blockedAt = sm.st.w.e.Now()
	rq.fut.NotifyTimer(sm)
	return true
}

// takeRecv consumes the completed receive: the payload is copied into
// `into` (when non-nil) and the pooled message and request are recycled.
func (sm *collSM) takeRecv(into []float64) error {
	rq := sm.rreq
	sm.rreq = nil
	if rq.err != nil {
		return rq.err
	}
	if into != nil {
		copy(into, rq.msg.Data)
	}
	sm.st.w.putMessage(rq.msg)
	sm.st.w.putRequest(rq)
	return nil
}

// takeSend consumes the completed send and recycles the request.
func (sm *collSM) takeSend() error {
	rq := sm.sreq
	sm.sreq = nil
	if rq.err != nil {
		return rq.err
	}
	sm.st.w.putRequest(rq)
	return nil
}

// stepBarrier: dissemination barrier. For dist = 1, 2, 4, ... < n: send to
// (me+dist) mod n, receive from (me-dist) mod n, wait send completion.
func (sm *collSM) stepBarrier() bool {
	st := sm.st
	for {
		switch sm.phase {
		case 0:
			if sm.dist >= sm.n {
				return sm.finish(nil)
			}
			sm.sreq = st.isendColl(sm.c, (sm.me+sm.dist)%sm.n, sm.tag, nil)
			sm.rreq = st.irecvColl(sm.c, (sm.me-sm.dist+sm.n)%sm.n, sm.tag)
			sm.phase = 1
		case 1:
			if sm.yield(sm.rreq) {
				return true
			}
			if err := sm.takeRecv(nil); err != nil {
				return sm.finish(err)
			}
			sm.phase = 2
		case 2:
			if sm.yield(sm.sreq) {
				return true
			}
			if err := sm.takeSend(); err != nil {
				return sm.finish(err)
			}
			sm.dist <<= 1
			sm.phase = 0
		}
	}
}

// stepBcast: binomial tree rotated so the root is virtual rank 0. Non-root
// ranks receive from their parent, then every rank forwards to its children
// in descending mask order with a blocking send each.
func (sm *collSM) stepBcast() bool {
	st := sm.st
	for {
		switch sm.phase {
		case 0:
			if sm.vrank == 0 {
				sm.mask = 1
				for sm.mask < sm.n {
					sm.mask <<= 1
				}
				sm.phase = 2
				continue
			}
			mask := 1
			for sm.vrank&mask == 0 {
				mask <<= 1
			}
			sm.mask = mask
			parent := (sm.vrank - mask + sm.n) % sm.n
			sm.rreq = st.irecvColl(sm.c, (parent+sm.root)%sm.n, sm.tag)
			sm.phase = 1
		case 1:
			if sm.yield(sm.rreq) {
				return true
			}
			if err := sm.takeRecv(sm.data); err != nil {
				return sm.finish(err)
			}
			sm.phase = 2
		case 2:
			sm.mask >>= 1
			if sm.mask < 1 {
				return sm.finish(nil)
			}
			if child := sm.vrank + sm.mask; child < sm.n {
				sm.sreq = st.isendColl(sm.c, (child+sm.root)%sm.n, sm.tag, sm.data)
				sm.phase = 3
			}
		case 3:
			if sm.yield(sm.sreq) {
				return true
			}
			if err := sm.takeSend(); err != nil {
				return sm.finish(err)
			}
			sm.phase = 2
		}
	}
}

// stepReduce: binomial tree. At each mask a rank either sends its partial
// result to its parent and is done, or receives and folds a child's data.
func (sm *collSM) stepReduce() bool {
	st := sm.st
	for {
		switch sm.phase {
		case 0:
			if sm.mask >= sm.n {
				return sm.finish(nil)
			}
			if sm.vrank&sm.mask != 0 {
				parent := sm.vrank - sm.mask
				sm.sreq = st.isendColl(sm.c, (parent+sm.root)%sm.n, sm.tag, sm.data)
				sm.phase = 2
				continue
			}
			if child := sm.vrank + sm.mask; child < sm.n {
				sm.rreq = st.irecvColl(sm.c, (child+sm.root)%sm.n, sm.tag)
				sm.phase = 1
				continue
			}
			sm.mask <<= 1
		case 1:
			if sm.yield(sm.rreq) {
				return true
			}
			rq := sm.rreq
			sm.rreq = nil
			if rq.err != nil {
				return sm.finish(rq.err)
			}
			sm.rop(sm.data, rq.msg.Data)
			st.w.putMessage(rq.msg)
			st.w.putRequest(rq)
			sm.mask <<= 1
			sm.phase = 0
		case 2:
			if sm.yield(sm.sreq) {
				return true
			}
			return sm.finish(sm.takeSend())
		}
	}
}

// stepAllgather: ring. In step s every rank forwards the block originated
// by (me-s) to its right neighbour and receives block (me-s-1) from its
// left neighbour.
func (sm *collSM) stepAllgather() bool {
	st := sm.st
	k := sm.elems
	for {
		switch sm.phase {
		case 0:
			if sm.step >= sm.n-1 {
				return sm.finish(nil)
			}
			blk := (sm.me - sm.step + sm.n) % sm.n
			right := (sm.me + 1) % sm.n
			left := (sm.me - 1 + sm.n) % sm.n
			sm.sreq = st.isendColl(sm.c, right, sm.tag, sm.out[blk*k:(blk+1)*k])
			sm.rreq = st.irecvColl(sm.c, left, sm.tag)
			sm.phase = 1
		case 1:
			if sm.yield(sm.rreq) {
				return true
			}
			inBlk := (sm.me - sm.step - 1 + sm.n) % sm.n
			if err := sm.takeRecv(sm.out[inBlk*k : (inBlk+1)*k]); err != nil {
				return sm.finish(err)
			}
			sm.phase = 2
		case 2:
			if sm.yield(sm.sreq) {
				return true
			}
			if err := sm.takeSend(); err != nil {
				return sm.finish(err)
			}
			sm.step++
			sm.phase = 0
		}
	}
}

// stepGather: non-root ranks send their contribution to the root with a
// blocking send; the root receives from each member in rank order.
func (sm *collSM) stepGather() bool {
	st := sm.st
	for {
		switch sm.phase {
		case 0:
			if sm.me != sm.root {
				sm.sreq = st.isendColl(sm.c, sm.root, sm.tag, sm.contrib)
				sm.phase = 1
				continue
			}
			sm.phase = 2
		case 1:
			if sm.yield(sm.sreq) {
				return true
			}
			return sm.finish(sm.takeSend())
		case 2:
			if sm.idx >= sm.n {
				return sm.finish(nil)
			}
			if sm.idx == sm.root {
				sm.idx++
				continue
			}
			sm.rreq = st.irecvColl(sm.c, sm.idx, sm.tag)
			sm.phase = 3
		case 3:
			if sm.yield(sm.rreq) {
				return true
			}
			k := sm.elems
			if err := sm.takeRecv(sm.out[sm.idx*k : (sm.idx+1)*k]); err != nil {
				return sm.finish(err)
			}
			sm.idx++
			sm.phase = 2
		}
	}
}
