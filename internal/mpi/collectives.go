package mpi

import "fmt"

// ReduceOp combines src into dst element-wise. dst and src have equal
// length.
type ReduceOp func(dst, src []float64)

// Predefined reduction operators.
var (
	OpSum ReduceOp = func(dst, src []float64) {
		for i, v := range src {
			dst[i] += v
		}
	}
	OpMax ReduceOp = func(dst, src []float64) {
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
	OpMin ReduceOp = func(dst, src []float64) {
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	}
)

// Collective tags live in the negative tag space so they can never collide
// with user tags (which must be non-negative). Each collective call on a
// communicator advances a per-member round counter; members must therefore
// invoke collectives in the same order, as in MPI.
func (c *Comm) collTag(r *Rank, op int) int {
	me := c.CommRank(r.st.rank)
	if me < 0 {
		panic(fmt.Sprintf("mpi: rank %d not a member of communicator %d", r.st.rank, c.id))
	}
	c.rounds[me]++
	return -(op<<24 | (c.rounds[me] & 0xffffff))
}

const (
	opBarrier = iota + 1
	opBcast
	opReduce
	opAllreduce
	opAllgather
	opGather
)

// Barrier blocks until all members have entered it (dissemination
// algorithm, O(log n) rounds).
func (r *Rank) Barrier(c *Comm) error {
	tag := c.collTag(r, opBarrier)
	n := c.Size()
	if n == 1 {
		return nil
	}
	me := c.CommRank(r.st.rank)
	for k := 1; k < n; k <<= 1 {
		to := (me + k) % n
		from := (me - k + n) % n
		sreq := r.Isend(c, to, tag, nil, nil)
		if _, err := r.Recv(c, from, tag); err != nil {
			return err
		}
		if err := r.Wait(sreq); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts data from root to all members using a binomial tree.
// Non-root callers pass a buffer of the correct length that is filled in.
func (r *Rank) Bcast(c *Comm, root int, data []float64) error {
	tag := c.collTag(r, opBcast)
	n := c.Size()
	if n == 1 {
		return nil
	}
	me := c.CommRank(r.st.rank)
	// Rotate so the root is virtual rank 0.
	vrank := (me - root + n) % n
	if vrank != 0 {
		// Receive from parent.
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := ((vrank - mask + n) % n)
		msg, err := r.Recv(c, (parent+root)%n, tag)
		if err != nil {
			return err
		}
		copy(data, msg.Data)
	}
	// Forward to children.
	mask := 1
	for vrank&mask == 0 && mask < n {
		mask <<= 1
	}
	// children are vrank + m for m in {mask>>1, mask>>2, ...}? Use standard
	// binomial: for m := highest power of two below n down to 1.
	for m := mask >> 1; m >= 1; m >>= 1 {
		child := vrank + m
		if child < n {
			if err := r.Send(c, (child+root)%n, tag, data, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce combines each member's data into root's data using op (binomial
// tree). data is modified in place on all ranks (it is used as the local
// accumulation buffer); only root's final value is meaningful.
func (r *Rank) Reduce(c *Comm, root int, op ReduceOp, data []float64) error {
	tag := c.collTag(r, opReduce)
	n := c.Size()
	if n == 1 {
		return nil
	}
	me := c.CommRank(r.st.rank)
	vrank := (me - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := vrank - mask
			return r.Send(c, (parent+root)%n, tag, data, nil)
		}
		child := vrank + mask
		if child < n {
			msg, err := r.Recv(c, (child+root)%n, tag)
			if err != nil {
				return err
			}
			op(data, msg.Data)
		}
	}
	return nil
}

// Allreduce combines data across all members and leaves the result in data
// on every member (reduce-to-0 then broadcast).
func (r *Rank) Allreduce(c *Comm, op ReduceOp, data []float64) error {
	if err := r.Reduce(c, 0, op, data); err != nil {
		return err
	}
	return r.Bcast(c, 0, data)
}

// AllreduceScalar is a convenience wrapper for single-value reductions.
func (r *Rank) AllreduceScalar(c *Comm, op ReduceOp, v float64) (float64, error) {
	buf := []float64{v}
	if err := r.Allreduce(c, op, buf); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// Allgather concatenates each member's equally-sized contribution into out
// (length = len(contrib) * comm size) on every member, using a ring.
func (r *Rank) Allgather(c *Comm, contrib, out []float64) error {
	tag := c.collTag(r, opAllgather)
	n := c.Size()
	k := len(contrib)
	if len(out) != n*k {
		return fmt.Errorf("mpi: allgather out length %d, want %d", len(out), n*k)
	}
	me := c.CommRank(r.st.rank)
	copy(out[me*k:(me+1)*k], contrib)
	if n == 1 {
		return nil
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	// Ring: in step s we forward the block originated by (me-s).
	for s := 0; s < n-1; s++ {
		blk := (me - s + n) % n
		sreq := r.Isend(c, right, tag, out[blk*k:(blk+1)*k], nil)
		msg, err := r.Recv(c, left, tag)
		if err != nil {
			return err
		}
		inBlk := (me - s - 1 + n) % n
		copy(out[inBlk*k:(inBlk+1)*k], msg.Data)
		if err := r.Wait(sreq); err != nil {
			return err
		}
	}
	return nil
}

// Gather collects each member's equally-sized contribution at root into out
// (length = len(contrib) * comm size at root; ignored elsewhere).
func (r *Rank) Gather(c *Comm, root int, contrib, out []float64) error {
	tag := c.collTag(r, opGather)
	n := c.Size()
	me := c.CommRank(r.st.rank)
	if me != root {
		return r.Send(c, root, tag, contrib, me)
	}
	k := len(contrib)
	if len(out) != n*k {
		return fmt.Errorf("mpi: gather out length %d, want %d", len(out), n*k)
	}
	copy(out[me*k:(me+1)*k], contrib)
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		msg, err := r.Recv(c, i, tag)
		if err != nil {
			return err
		}
		copy(out[i*k:(i+1)*k], msg.Data)
	}
	return nil
}
