package mpi

import "fmt"

// ReduceOp combines src into dst element-wise. dst and src have equal
// length.
type ReduceOp func(dst, src []float64)

// Predefined reduction operators.
var (
	OpSum ReduceOp = func(dst, src []float64) {
		for i, v := range src {
			dst[i] += v
		}
	}
	OpMax ReduceOp = func(dst, src []float64) {
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
	OpMin ReduceOp = func(dst, src []float64) {
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	}
)

// Collective operation codes. Each operation uses the fixed tag -op, in the
// negative tag space so it can never collide with user tags (which must be
// non-negative). Rounds need no tag disambiguation: members invoke
// collectives on a communicator in the same order (as in MPI) and matching
// is FIFO per (source, tag, communicator) channel, so successive rounds
// self-match — and the bounded tag space keeps the per-rank matching maps,
// and their allocations, bounded no matter how many collectives run.
const (
	opBarrier = iota + 1
	opBcast
	opReduce
	opAllreduce
	opAllgather
	opGather
)

func errNotMember(rank, comm int) string {
	return fmt.Sprintf("mpi: rank %d not a member of communicator %d", rank, comm)
}

// Barrier blocks until all members have entered it (dissemination
// algorithm, O(log n) rounds).
func (r *Rank) Barrier(c *Comm) error {
	sm := r.startColl(c, opBarrier)
	if sm.n == 1 {
		sm.release()
		return nil
	}
	sm.dist = 1
	return r.runColl(sm)
}

// Bcast broadcasts data from root to all members using a binomial tree.
// Non-root callers pass a buffer of the correct length that is filled in.
func (r *Rank) Bcast(c *Comm, root int, data []float64) error {
	sm := r.startColl(c, opBcast)
	if sm.n == 1 {
		sm.release()
		return nil
	}
	sm.root = root
	sm.vrank = (sm.me - root + sm.n) % sm.n
	sm.data = data
	return r.runColl(sm)
}

// Reduce combines each member's data into root's data using op (binomial
// tree). data is modified in place on all ranks (it is used as the local
// accumulation buffer); only root's final value is meaningful.
func (r *Rank) Reduce(c *Comm, root int, op ReduceOp, data []float64) error {
	sm := r.startColl(c, opReduce)
	if sm.n == 1 {
		sm.release()
		return nil
	}
	sm.root = root
	sm.vrank = (sm.me - root + sm.n) % sm.n
	sm.data = data
	sm.rop = op
	sm.mask = 1
	return r.runColl(sm)
}

// Allreduce combines data across all members and leaves the result in data
// on every member (reduce-to-0 then broadcast, chained inside one state
// machine so the caller parks at most once).
func (r *Rank) Allreduce(c *Comm, op ReduceOp, data []float64) error {
	sm := r.startColl(c, opAllreduce)
	if sm.n == 1 {
		sm.release()
		return nil
	}
	sm.sub = opReduce
	sm.tag = -opReduce
	sm.root = 0
	sm.vrank = sm.me
	sm.data = data
	sm.rop = op
	sm.mask = 1
	return r.runColl(sm)
}

// AllreduceScalar is a convenience wrapper for single-value reductions. The
// rank's scratch cell backs the reduction, so the call allocates nothing.
func (r *Rank) AllreduceScalar(c *Comm, op ReduceOp, v float64) (float64, error) {
	st := r.st
	st.scalar[0] = v
	if err := r.Allreduce(c, op, st.scalar[:]); err != nil {
		return 0, err
	}
	return st.scalar[0], nil
}

// Allgather concatenates each member's equally-sized contribution into out
// (length = len(contrib) * comm size) on every member, using a ring.
func (r *Rank) Allgather(c *Comm, contrib, out []float64) error {
	sm := r.startColl(c, opAllgather)
	k := len(contrib)
	if len(out) != sm.n*k {
		n := sm.n
		sm.release()
		return fmt.Errorf("mpi: allgather out length %d, want %d", len(out), n*k)
	}
	copy(out[sm.me*k:(sm.me+1)*k], contrib)
	if sm.n == 1 {
		sm.release()
		return nil
	}
	sm.elems = k
	sm.out = out
	return r.runColl(sm)
}

// Gather collects each member's equally-sized contribution at root into out
// (length = len(contrib) * comm size at root; ignored elsewhere).
func (r *Rank) Gather(c *Comm, root int, contrib, out []float64) error {
	sm := r.startColl(c, opGather)
	sm.root = root
	if sm.me != root {
		sm.contrib = contrib
		return r.runColl(sm)
	}
	k := len(contrib)
	if len(out) != sm.n*k {
		n := sm.n
		sm.release()
		return fmt.Errorf("mpi: gather out length %d, want %d", len(out), n*k)
	}
	copy(out[sm.me*k:(sm.me+1)*k], contrib)
	sm.elems = k
	sm.out = out
	return r.runColl(sm)
}
