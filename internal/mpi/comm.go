package mpi

import (
	"errors"
	"fmt"
)

// PeerDeadError reports that a receive cannot complete because the source
// rank crashed.
type PeerDeadError struct {
	Rank int // world rank of the dead peer
}

func (e *PeerDeadError) Error() string { return fmt.Sprintf("mpi: peer rank %d is dead", e.Rank) }

// IsPeerDead reports whether err is (or wraps) a PeerDeadError.
func IsPeerDead(err error) bool {
	var pd *PeerDeadError
	return errors.As(err, &pd)
}

// Comm is a communicator: an ordered group of world ranks with a private
// matching context. Rank arguments to communication calls are positions in
// the communicator ("comm ranks").
type Comm struct {
	id      int
	w       *World
	members []int       // comm rank -> world rank
	pos     map[int]int // world rank -> comm rank, built on first CommRank
}

// newComm builds a communicator over world ranks (callers must pass a slice
// they will not mutate). The reverse index is lazy: most communicators —
// every per-trial world and replica comm of a campaign — only ever
// translate comm ranks to world ranks, so they never pay for the map.
func (w *World) newComm(members []int) *Comm {
	w.commSeq++
	for i, a := range members {
		for _, b := range members[:i] {
			if a == b {
				panic(fmt.Sprintf("mpi: duplicate member %d in communicator", a))
			}
		}
	}
	return &Comm{id: w.commSeq, w: w, members: members}
}

// NewComm creates a communicator over the given world ranks. All members
// must make collective calls on it in the same order.
func (w *World) NewComm(members []int) *Comm {
	return w.newComm(append([]int(nil), members...))
}

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.members[commRank] }

// CommRank translates a world rank to a comm rank, or -1 if not a member.
func (c *Comm) CommRank(worldRank int) int {
	if c.pos == nil {
		c.pos = make(map[int]int, len(c.members))
		for i, wr := range c.members {
			c.pos[wr] = i
		}
	}
	if p, ok := c.pos[worldRank]; ok {
		return p
	}
	return -1
}

// Members returns the comm-rank-ordered world ranks (callers must not
// mutate the result).
func (c *Comm) Members() []int { return c.members }

// RankIn returns the calling rank's position in c, or -1.
func (r *Rank) RankIn(c *Comm) int { return c.CommRank(r.st.rank) }
