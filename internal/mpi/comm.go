package mpi

import (
	"errors"
	"fmt"
)

// PeerDeadError reports that a receive cannot complete because the source
// rank crashed.
type PeerDeadError struct {
	Rank int // world rank of the dead peer
}

func (e *PeerDeadError) Error() string { return fmt.Sprintf("mpi: peer rank %d is dead", e.Rank) }

// IsPeerDead reports whether err is (or wraps) a PeerDeadError.
func IsPeerDead(err error) bool {
	var pd *PeerDeadError
	return errors.As(err, &pd)
}

// Comm is a communicator: an ordered group of world ranks with a private
// matching context. Rank arguments to communication calls are positions in
// the communicator ("comm ranks").
type Comm struct {
	id      int
	w       *World
	members []int       // comm rank -> world rank
	pos     map[int]int // world rank -> comm rank
	rounds  []int       // per-member collective round counter
}

// newComm builds a communicator over world ranks (callers must pass a slice
// they will not mutate).
func (w *World) newComm(members []int) *Comm {
	w.commSeq++
	c := &Comm{id: w.commSeq, w: w, members: members, pos: make(map[int]int, len(members))}
	for i, wr := range members {
		if _, dup := c.pos[wr]; dup {
			panic(fmt.Sprintf("mpi: duplicate member %d in communicator", wr))
		}
		c.pos[wr] = i
	}
	c.rounds = make([]int, len(members))
	return c
}

// NewComm creates a communicator over the given world ranks. All members
// must make collective calls on it in the same order.
func (w *World) NewComm(members []int) *Comm {
	return w.newComm(append([]int(nil), members...))
}

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.members[commRank] }

// CommRank translates a world rank to a comm rank, or -1 if not a member.
func (c *Comm) CommRank(worldRank int) int {
	if p, ok := c.pos[worldRank]; ok {
		return p
	}
	return -1
}

// Members returns the comm-rank-ordered world ranks (callers must not
// mutate the result).
func (c *Comm) Members() []int { return c.members }

// RankIn returns the calling rank's position in c, or -1.
func (r *Rank) RankIn(c *Comm) int { return c.CommRank(r.st.rank) }
