package mpi

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func testWorld(t *testing.T, n int) (*sim.Engine, *World) {
	t.Helper()
	e := sim.New()
	cfg := simnet.Config{
		Latency:        sim.Micros(1),
		Bandwidth:      1e9,
		LocalLatency:   sim.Micros(0.1),
		LocalBandwidth: 1e10,
		CoresPerNode:   4,
	}
	nodes := (n + cfg.CoresPerNode - 1) / cfg.CoresPerNode
	net := simnet.New(e, cfg, nodes)
	w := NewWorld(e, net, n, perf.Grid5000, nil)
	return e, w
}

func run(t *testing.T, e *sim.Engine) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	e, w := testWorld(t, 2)
	var got []float64
	w.LaunchAll("p", func(r *Rank) {
		switch r.Rank() {
		case 0:
			if err := r.Send(r.World(), 1, 7, []float64{1, 2, 3}, "hi"); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			msg, err := r.Recv(r.World(), 0, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = msg.Data
			if msg.Meta != "hi" || msg.Src != 0 || msg.Tag != 7 {
				t.Errorf("bad envelope: %+v", msg)
			}
		}
	})
	run(t, e)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	e, w := testWorld(t, 2)
	var got float64
	w.LaunchAll("p", func(r *Rank) {
		if r.Rank() == 0 {
			buf := []float64{42}
			req := r.Isend(r.World(), 1, 0, buf, nil)
			buf[0] = -1 // mutate immediately; receiver must still see 42
			r.Wait(req)
		} else {
			msg, err := r.Recv(r.World(), 0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = msg.Data[0]
		}
	})
	run(t, e)
	if got != 42 {
		t.Fatalf("got %v, want 42 (send did not copy)", got)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	e, w := testWorld(t, 2)
	done := false
	w.LaunchAll("p", func(r *Rank) {
		if r.Rank() == 1 {
			msg, err := r.Recv(r.World(), 0, 3)
			if err != nil || msg.Data[0] != 9 {
				t.Errorf("recv: %v %v", msg, err)
			}
			done = true
		} else {
			r.Compute(sim.Millisecond) // ensure recv is posted first
			r.Send(r.World(), 1, 3, []float64{9}, nil)
		}
	})
	run(t, e)
	if !done {
		t.Fatal("recv never completed")
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	e, w := testWorld(t, 3)
	var order []int
	w.LaunchAll("p", func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(r.World(), 2, 1, []float64{1}, nil)
		case 1:
			r.Send(r.World(), 2, 2, []float64{2}, nil)
		case 2:
			// Receive tag 2 first even though tag 1 likely arrives first.
			m2, err := r.Recv(r.World(), 1, 2)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			m1, err := r.Recv(r.World(), 0, 1)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			order = []int{int(m2.Data[0]), int(m1.Data[0])}
		}
	})
	run(t, e)
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	e, w := testWorld(t, 2)
	var got []float64
	w.LaunchAll("p", func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 5; i++ {
				r.Isend(r.World(), 1, 0, []float64{float64(i)}, nil)
			}
		} else {
			r.Compute(sim.Millisecond)
			for i := 0; i < 5; i++ {
				msg, err := r.Recv(r.World(), 0, 0)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				got = append(got, msg.Data[0])
			}
		}
	})
	run(t, e)
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestTryRecv(t *testing.T) {
	e, w := testWorld(t, 2)
	w.LaunchAll("p", func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(r.World(), 1, 5, []float64{7}, nil)
		} else {
			if _, ok := r.TryRecv(r.World(), 0, 5); ok {
				t.Error("TryRecv matched before arrival")
			}
			r.Compute(sim.Millisecond)
			msg, ok := r.TryRecv(r.World(), 0, 5)
			if !ok || msg.Data[0] != 7 {
				t.Errorf("TryRecv after arrival: %v %v", msg, ok)
			}
		}
	})
	run(t, e)
}

func TestSelfSend(t *testing.T) {
	e, w := testWorld(t, 1)
	w.LaunchAll("p", func(r *Rank) {
		r.Isend(r.World(), 0, 0, []float64{3.14}, nil)
		msg, err := r.Recv(r.World(), 0, 0)
		if err != nil || msg.Data[0] != 3.14 {
			t.Errorf("self recv: %v %v", msg, err)
		}
	})
	run(t, e)
}

func TestComputeChargesTime(t *testing.T) {
	e, w := testWorld(t, 1)
	w.LaunchAll("p", func(r *Rank) {
		r.ComputeWork(perf.Work{Bytes: 3e9}) // 1 s at 3 GB/s
	})
	run(t, e)
	if e.Now() != sim.Second {
		t.Fatalf("now = %v, want 1s", e.Now())
	}
	if w.StatsOf(0).Compute != sim.Second {
		t.Fatalf("stats = %+v", w.StatsOf(0))
	}
}

func TestBlockedTimeAccounted(t *testing.T) {
	e, w := testWorld(t, 2)
	w.LaunchAll("p", func(r *Rank) {
		if r.Rank() == 0 {
			r.Compute(10 * sim.Millisecond)
			r.Send(r.World(), 1, 0, nil, nil)
		} else {
			r.Recv(r.World(), 0, 0)
		}
	})
	run(t, e)
	if b := w.StatsOf(1).Blocked; b < 10*sim.Millisecond {
		t.Fatalf("blocked = %v, want >= 10ms", b)
	}
}

func collectiveWorld(t *testing.T, n int) (*sim.Engine, *World) {
	return testWorld(t, n)
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			e, w := collectiveWorld(t, n)
			var releases []sim.Time
			w.LaunchAll("p", func(r *Rank) {
				r.Compute(sim.Time(r.Rank()) * sim.Millisecond)
				if err := r.Barrier(r.World()); err != nil {
					t.Errorf("barrier: %v", err)
				}
				releases = append(releases, r.Now())
			})
			run(t, e)
			if len(releases) != n {
				t.Fatalf("%d ranks released", len(releases))
			}
			slowest := sim.Time(n-1) * sim.Millisecond
			for _, rel := range releases {
				if rel < slowest {
					t.Fatalf("release %v before slowest entry %v", rel, slowest)
				}
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		for _, root := range []int{0, n - 1} {
			if root < 0 {
				continue
			}
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d,root=%d", n, root), func(t *testing.T) {
				e, w := collectiveWorld(t, n)
				got := make([][]float64, n)
				w.LaunchAll("p", func(r *Rank) {
					data := make([]float64, 4)
					if r.Rank() == root {
						for i := range data {
							data[i] = float64(10 + i)
						}
					}
					if err := r.Bcast(r.World(), root, data); err != nil {
						t.Errorf("bcast: %v", err)
					}
					got[r.Rank()] = data
				})
				run(t, e)
				for i, d := range got {
					for j, v := range d {
						if v != float64(10+j) {
							t.Fatalf("rank %d got %v", i, d)
						}
					}
				}
			})
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 8, 9} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			e, w := collectiveWorld(t, n)
			bad := false
			w.LaunchAll("p", func(r *Rank) {
				data := []float64{float64(r.Rank()), 1}
				if err := r.Allreduce(r.World(), OpSum, data); err != nil {
					t.Errorf("allreduce: %v", err)
				}
				wantSum := float64(n*(n-1)) / 2
				if data[0] != wantSum || data[1] != float64(n) {
					bad = true
				}
			})
			run(t, e)
			if bad {
				t.Fatal("wrong allreduce result")
			}
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	e, w := collectiveWorld(t, 5)
	w.LaunchAll("p", func(r *Rank) {
		v := float64(r.Rank())
		mx, err := r.AllreduceScalar(r.World(), OpMax, v)
		if err != nil || mx != 4 {
			t.Errorf("max = %v, %v", mx, err)
		}
		mn, err := r.AllreduceScalar(r.World(), OpMin, v)
		if err != nil || mn != 0 {
			t.Errorf("min = %v, %v", mn, err)
		}
	})
	run(t, e)
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			e, w := collectiveWorld(t, n)
			bad := false
			w.LaunchAll("p", func(r *Rank) {
				contrib := []float64{float64(r.Rank()), float64(r.Rank() * 10)}
				out := make([]float64, 2*n)
				if err := r.Allgather(r.World(), contrib, out); err != nil {
					t.Errorf("allgather: %v", err)
				}
				for i := 0; i < n; i++ {
					if out[2*i] != float64(i) || out[2*i+1] != float64(i*10) {
						bad = true
					}
				}
			})
			run(t, e)
			if bad {
				t.Fatal("wrong allgather result")
			}
		})
	}
}

func TestGather(t *testing.T) {
	e, w := collectiveWorld(t, 4)
	var rootOut []float64
	w.LaunchAll("p", func(r *Rank) {
		contrib := []float64{float64(r.Rank())}
		var out []float64
		if r.Rank() == 2 {
			out = make([]float64, 4)
		}
		if err := r.Gather(r.World(), 2, contrib, out); err != nil {
			t.Errorf("gather: %v", err)
		}
		if r.Rank() == 2 {
			rootOut = out
		}
	})
	run(t, e)
	for i, v := range rootOut {
		if v != float64(i) {
			t.Fatalf("gather out = %v", rootOut)
		}
	}
}

func TestReduce(t *testing.T) {
	e, w := collectiveWorld(t, 6)
	var rootVal float64
	w.LaunchAll("p", func(r *Rank) {
		data := []float64{1}
		if err := r.Reduce(r.World(), 3, OpSum, data); err != nil {
			t.Errorf("reduce: %v", err)
		}
		if r.Rank() == 3 {
			rootVal = data[0]
		}
	})
	run(t, e)
	if rootVal != 6 {
		t.Fatalf("reduce = %v, want 6", rootVal)
	}
}

func TestSubCommunicator(t *testing.T) {
	e, w := testWorld(t, 6)
	// Odd ranks form a communicator; allreduce must only involve them.
	sub := w.NewComm([]int{1, 3, 5})
	w.LaunchAll("p", func(r *Rank) {
		if r.Rank()%2 == 0 {
			return
		}
		if got := r.RankIn(sub); got != r.Rank()/2 {
			t.Errorf("RankIn = %d", got)
		}
		v, err := r.AllreduceScalar(sub, OpSum, 1)
		if err != nil || v != 3 {
			t.Errorf("sub allreduce = %v, %v", v, err)
		}
	})
	run(t, e)
	if sub.WorldRank(2) != 5 || sub.CommRank(3) != 1 || sub.CommRank(0) != -1 {
		t.Fatal("comm rank translation wrong")
	}
	if sub.Size() != 3 || len(sub.Members()) != 3 {
		t.Fatal("bad size")
	}
}

func TestRecvFromDeadRankFails(t *testing.T) {
	e, w := testWorld(t, 2)
	var gotErr error
	w.Launch("victim", 0, func(r *Rank) {
		r.Compute(sim.Second) // killed at 1ms, never sends
	})
	w.Launch("waiter", 1, func(r *Rank) {
		_, gotErr = r.Recv(r.World(), 0, 0)
	})
	e.At(sim.Millisecond, func() { w.Kill(0) })
	run(t, e)
	if !IsPeerDead(gotErr) {
		t.Fatalf("err = %v, want PeerDeadError", gotErr)
	}
	if !w.Dead(0) || w.Dead(1) {
		t.Fatal("death state wrong")
	}
}

func TestRecvPostedAfterDeathFails(t *testing.T) {
	e, w := testWorld(t, 2)
	var gotErr error
	w.Launch("victim", 0, func(r *Rank) { r.Compute(sim.Second) })
	w.Launch("waiter", 1, func(r *Rank) {
		r.Compute(10 * sim.Millisecond) // rank 0 already dead
		_, gotErr = r.Recv(r.World(), 0, 0)
	})
	e.At(sim.Millisecond, func() { w.Kill(0) })
	run(t, e)
	if !IsPeerDead(gotErr) {
		t.Fatalf("err = %v, want PeerDeadError", gotErr)
	}
}

func TestMessageSentBeforeDeathStillDelivered(t *testing.T) {
	e, w := testWorld(t, 2)
	var got float64
	var secondErr error
	w.Launch("victim", 0, func(r *Rank) {
		r.Send(r.World(), 1, 0, []float64{5}, nil)
		r.Compute(sim.Second)
	})
	w.Launch("waiter", 1, func(r *Rank) {
		msg, err := r.Recv(r.World(), 0, 0)
		if err != nil {
			t.Errorf("first recv should succeed: %v", err)
			return
		}
		got = msg.Data[0]
		_, secondErr = r.Recv(r.World(), 0, 0)
	})
	e.At(100*sim.Millisecond, func() { w.Kill(0) })
	run(t, e)
	if got != 5 {
		t.Fatalf("got %v", got)
	}
	if !IsPeerDead(secondErr) {
		t.Fatalf("second recv err = %v", secondErr)
	}
}

func TestInFlightMessageLostOnCrash(t *testing.T) {
	e, w := testWorld(t, 2)
	var gotErr error
	var killAt sim.Time
	w.Launch("victim", 0, func(r *Rank) {
		// Large message: both ranks share a node, so the 80 MB payload
		// takes 8 ms on the 10 GB/s local path. Crash at 1 ms kills it.
		req := r.Isend(r.World(), 1, 0, make([]float64, 10_000_000), nil)
		killAt = r.Now() + sim.Millisecond
		r.Wait(req)
	})
	w.Launch("waiter", 1, func(r *Rank) {
		_, gotErr = r.Recv(r.World(), 0, 0)
	})
	e.At(sim.Millisecond, func() { w.Kill(0) })
	run(t, e)
	_ = killAt
	if !IsPeerDead(gotErr) {
		t.Fatalf("err = %v, want PeerDeadError (message should be lost)", gotErr)
	}
}

func TestSendToDeadRankIsDropped(t *testing.T) {
	e, w := testWorld(t, 2)
	w.Launch("victim", 0, func(r *Rank) { r.Compute(sim.Second) })
	w.Launch("sender", 1, func(r *Rank) {
		r.Compute(10 * sim.Millisecond)
		if err := r.Send(r.World(), 0, 0, []float64{1}, nil); err != nil {
			t.Errorf("send to dead rank should not error: %v", err)
		}
	})
	e.At(sim.Millisecond, func() { w.Kill(0) })
	run(t, e)
}

func TestOnDeathHook(t *testing.T) {
	e, w := testWorld(t, 3)
	var deaths []int
	w.OnDeath(func(rank int) { deaths = append(deaths, rank) })
	w.LaunchAll("p", func(r *Rank) { r.Compute(sim.Second) })
	e.At(sim.Millisecond, func() { w.Kill(1) })
	run(t, e)
	if len(deaths) != 1 || deaths[0] != 1 {
		t.Fatalf("deaths = %v", deaths)
	}
}

func TestWaitallCollectsErrors(t *testing.T) {
	e, w := testWorld(t, 3)
	var err error
	w.Launch("dead", 0, func(r *Rank) { r.Compute(sim.Second) })
	w.Launch("ok", 1, func(r *Rank) {
		r.Send(r.World(), 2, 1, []float64{1}, nil)
	})
	w.Launch("waiter", 2, func(r *Rank) {
		r1 := r.Irecv(r.World(), 0, 1)
		r2 := r.Irecv(r.World(), 1, 1)
		err = r.Waitall([]*Request{r1, r2})
		if !r2.Done() || r2.Err() != nil {
			t.Error("healthy recv should complete")
		}
	})
	e.At(sim.Millisecond, func() { w.Kill(0) })
	run(t, e)
	if !IsPeerDead(err) {
		t.Fatalf("waitall err = %v", err)
	}
}

// Property: allreduce(sum) equals the serial sum for random contributions
// and random world sizes.
func TestAllreduceSumProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		contribs := make([]float64, n)
		var want float64
		for i := range contribs {
			contribs[i] = math.Round(rng.Float64()*1000) / 8
			want += contribs[i]
		}
		e, w := testWorld(t, n)
		ok := true
		w.LaunchAll("p", func(r *Rank) {
			got, err := r.AllreduceScalar(r.World(), OpSum, contribs[r.Rank()])
			if err != nil || math.Abs(got-want) > 1e-9*math.Abs(want)+1e-12 {
				ok = false
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random mesh of sends/recvs delivers every payload exactly
// once with matching content.
func TestRandomTrafficProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		msgs := rng.Intn(20) + 1
		type env struct{ src, dst, tag int }
		plan := make([]env, msgs)
		perDst := make(map[int][]env)
		for i := range plan {
			ev := env{src: rng.Intn(n), dst: rng.Intn(n), tag: rng.Intn(3)}
			plan[i] = ev
			perDst[ev.dst] = append(perDst[ev.dst], ev)
		}
		e, w := testWorld(t, n)
		received := 0
		w.LaunchAll("p", func(r *Rank) {
			me := r.Rank()
			for i, ev := range plan {
				if ev.src == me {
					r.Isend(r.World(), ev.dst, ev.tag, []float64{float64(i)}, nil)
				}
			}
			for _, ev := range perDst[me] {
				msg, err := r.Recv(r.World(), ev.src, ev.tag)
				if err != nil {
					return
				}
				idx := int(msg.Data[0])
				if plan[idx].src != ev.src || plan[idx].dst != me || plan[idx].tag != ev.tag {
					return
				}
				received++
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return received == msgs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
