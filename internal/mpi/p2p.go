package mpi

import (
	"sort"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Rank is the process-facing handle for one MPI rank. It is only valid
// inside the rank's own program function.
type Rank struct {
	st *rankState
	p  *sim.Proc
}

// Rank returns the world rank number.
func (r *Rank) Rank() int { return r.st.rank }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.st.w.ranks) }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.st.w.world }

// Node returns the node this rank is placed on.
func (r *Rank) Node() int { return r.st.node }

// Now returns the current virtual time. On a batched-compute world this
// includes the rank's deferred compute, so timing measurements see the
// exact schedule an unbatched run would produce.
func (r *Rank) Now() sim.Time { return r.p.Now() + r.st.pending }

// Proc returns the underlying simulated process.
func (r *Rank) Proc() *sim.Proc { return r.p }

// Stats returns a copy of the rank's accounting counters.
func (r *Rank) Stats() Stats { return r.st.stats }

// Machine returns the world's per-core compute model.
func (r *Rank) Machine() perf.Machine { return r.st.w.machine }

// Compute charges d of virtual CPU time to this rank. On a batched-compute
// world the charge is deferred: consecutive compute stretches collapse into
// one Sleep at the next communication instead of entering the event queue
// per kernel.
func (r *Rank) Compute(d sim.Time) {
	r.st.stats.Compute += d
	if r.st.w.batch {
		r.st.pending += d
		return
	}
	r.p.Sleep(d)
}

// flush realizes deferred compute time. Every operation whose outcome can
// depend on the current instant calls it first, so a batched world makes
// exactly the same externally visible transitions, at the same virtual
// times, as an unbatched one.
func (r *Rank) flush() {
	if d := r.st.pending; d > 0 {
		r.st.pending = 0
		r.p.Sleep(d)
	}
}

// ComputeWork charges the virtual time of w under the world's machine model.
func (r *Rank) ComputeWork(w perf.Work) {
	r.Compute(r.st.w.machine.Duration(w))
}

// Crash crash-stops the calling rank (used by fault injection callbacks
// running inside the rank's program).
func (r *Rank) Crash() {
	r.flush()
	r.p.Crash()
}

// Dead reports whether another rank has crashed.
func (r *Rank) Dead(rank int) bool {
	r.flush()
	return r.st.w.ranks[rank].dead
}

// Request is a handle on a nonblocking operation. The completion future is
// embedded by value and send completion is scheduled with the request
// itself as the typed timer, so posting an operation costs exactly one
// allocation: the Request.
type Request struct {
	id     uint64
	st     *rankState
	ch     *chanState // receive channel state (recv only)
	key    matchKey   // receive matching key (recv only)
	isRecv bool
	fut    sim.Future
	msg    *Message
	err    error
}

func newRequest(st *rankState, isRecv bool, key matchKey) *Request {
	// The id sequence lives on the World (not in a package variable) so
	// that independent worlds — e.g. one per sweep worker — never share
	// mutable state and stay individually deterministic. Requests are drawn
	// from the world pool; paths where the handle provably does not escape
	// (blocking Send/Recv, the collective state machines) return them.
	w := st.w
	sc := w.sc
	n := len(sc.reqFree)
	if n == 0 {
		slab := make([]Request, requestSlab)
		for i := range slab {
			sc.reqFree = append(sc.reqFree, &slab[i])
		}
		n = requestSlab
	}
	rq := sc.reqFree[n-1]
	sc.reqFree[n-1] = nil
	sc.reqFree = sc.reqFree[:n-1]
	rq.st = st
	rq.isRecv = isRecv
	rq.key = key
	w.reqSeq++
	rq.id = w.reqSeq
	rq.fut.Init(w.e)
	return rq
}

// Fire completes the request with no message and no error; it is the typed
// send-completion callback scheduled at the local NIC's TxDone time.
func (rq *Request) Fire() { rq.complete(nil, nil) }

func (rq *Request) complete(msg *Message, err error) {
	rq.msg = msg
	rq.err = err
	rq.fut.Complete(msg, err)
}

// Done reports whether the operation has completed.
func (rq *Request) Done() bool { return rq.fut.Done() }

// Msg returns the received message (receives only, after completion).
func (rq *Request) Msg() *Message { return rq.msg }

// Err returns the completion error, if any.
func (rq *Request) Err() error { return rq.err }

func sortRequests(reqs []*Request) {
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].id < reqs[j].id })
}

// envelopeBytes models per-message protocol overhead on the wire, on top
// of eight bytes per float64 payload element (or the explicit modeled size
// for IsendSized).
const envelopeBytes = 64

// Isend posts a nonblocking send of data (which is copied, so the caller
// may reuse the buffer immediately) to dst on communicator c. meta must be
// immutable. The request completes when the local NIC finishes
// transmitting, which is what overlapping update transfers wait on.
func (r *Rank) Isend(c *Comm, dst, tag int, data []float64, meta any) *Request {
	buf := make([]float64, len(data))
	copy(buf, data)
	return r.IsendOwned(c, dst, tag, buf, meta)
}

// IsendOwned is Isend without the defensive copy: ownership of data
// transfers to the runtime. Use when the caller has already cloned.
func (r *Rank) IsendOwned(c *Comm, dst, tag int, data []float64, meta any) *Request {
	r.flush()
	return r.st.isendOwned(c, dst, tag, data, meta)
}

// IsendSized is Isend with an explicit modeled payload size in bytes,
// used by scaled experiment runs where the in-memory arrays are a fraction
// of the modeled problem (data is still copied; the envelope is added on
// top of payloadBytes).
func (r *Rank) IsendSized(c *Comm, dst, tag int, data []float64, meta any, payloadBytes int64) *Request {
	r.flush()
	buf := make([]float64, len(data))
	copy(buf, data)
	return r.st.isendSized(c, dst, tag, buf, meta, payloadBytes)
}

// AsyncSend posts a send on behalf of rank src from engine context (no
// process blocks on it). Used by the replication layer to replay a send
// log when a replica crashes. Ownership of data transfers to the runtime.
func (w *World) AsyncSend(src int, c *Comm, dst, tag int, data []float64, meta any, payloadBytes int64) {
	w.ranks[src].isendSized(c, dst, tag, data, meta, payloadBytes)
}

func (st *rankState) isendOwned(c *Comm, dst, tag int, data []float64, meta any) *Request {
	return st.isendSized(c, dst, tag, data, meta, 8*int64(len(data)))
}

// sendSeqFor returns the per-channel send sequence for the next message on
// (st.rank, tag, c). Collective tags (negative) are single-shot — at most
// one message per channel — so their sequence is constantly 1 and no
// sender-side channel state is materialized for them at all.
func (st *rankState) sendSeqFor(c *Comm, tag int) uint64 {
	if tag < 0 {
		return 1
	}
	sendCh := st.chanFor(matchKey{src: st.rank, tag: tag, comm: c.id})
	sendCh.sendSeq++
	return sendCh.sendSeq
}

func (st *rankState) isendSized(c *Comm, dst, tag int, data []float64, meta any, payloadBytes int64) *Request {
	w := st.w
	worldDst := c.WorldRank(dst)
	key := matchKey{src: st.rank, tag: tag, comm: c.id}
	msg := &Message{
		Src:   st.rank,
		Dst:   worldDst,
		Tag:   tag,
		Data:  data,
		Meta:  meta,
		Bytes: envelopeBytes + payloadBytes,
		seq:   st.sendSeqFor(c, tag),
	}
	req := newRequest(st, false, matchKey{})
	st.stats.MsgsSent++
	st.stats.BytesSent += msg.Bytes
	dstState := w.ranks[worldDst]
	if dstState.dead {
		// Crash-stop destination: the message vanishes. Model the local NIC
		// cost anyway (the sender cannot know). The no-op delivery event is
		// still scheduled so the engine's event sequence — and with it every
		// same-timestamp tie-break — is identical to the live-receiver path.
		//
		// Known modeling gap (pre-dating this path's rewrite, kept for
		// output stability): this transfer is not tracked in st.outgoing,
		// so if the sender also crashes before TxDone the receiver-node
		// rxFree reservation is never rolled back.
		var tr simnet.Transfer
		w.net.SendInto(&tr, st.node, dstState.node, msg.Bytes, nopTimer{})
		w.e.AtTimer(tr.TxDone(), req)
		return req
	}
	dstCh := dstState.chanFor(key)
	dstCh.inflight++
	om := w.getOutMsg()
	om.srcSt = st
	om.dstSt = dstState
	om.dstCh = dstCh
	om.msg = msg
	om.dst = worldDst
	om.key = key
	w.net.SendInto(&om.tr, st.node, dstState.node, msg.Bytes, om)
	st.outgoing = append(st.outgoing, om)
	st.pruneOutgoing()
	w.e.AtTimer(om.tr.TxDone(), req)
	return req
}

// isendColl posts a collective send: like isendOwned, but the request,
// message and payload buffer all come from the world pools (the matching
// collective receive recycles them), so steady-state collectives allocate
// nothing. Collective messages carry no Meta.
func (st *rankState) isendColl(c *Comm, dst, tag int, data []float64) *Request {
	return st.isendPooled(c, dst, tag, data, nil, 8*int64(len(data)))
}

// isendPooled is the pooled-message send: payload is copied into a pooled
// buffer and the Message itself comes from the world pool. Timing-wise it is
// exactly isendSized; the only difference is allocation discipline, so it is
// reserved for traffic whose receiver consumes the message and hands it back
// (mpi-level collectives, the replication layer's internal trees).
func (st *rankState) isendPooled(c *Comm, dst, tag int, data []float64, meta any, payloadBytes int64) *Request {
	w := st.w
	worldDst := c.WorldRank(dst)
	key := matchKey{src: st.rank, tag: tag, comm: c.id}
	seq := st.sendSeqFor(c, tag)
	bytes := envelopeBytes + payloadBytes
	req := newRequest(st, false, matchKey{})
	st.stats.MsgsSent++
	st.stats.BytesSent += bytes
	dstState := w.ranks[worldDst]
	if dstState.dead {
		// Same modeling as isendSized's dead-destination path (which see),
		// minus the message object nobody would ever observe.
		var tr simnet.Transfer
		w.net.SendInto(&tr, st.node, dstState.node, bytes, nopTimer{})
		w.e.AtTimer(tr.TxDone(), req)
		return req
	}
	msg := w.getMessage(len(data))
	copy(msg.Data, data)
	msg.Src = st.rank
	msg.Dst = worldDst
	msg.Tag = tag
	msg.Meta = meta
	msg.Bytes = bytes
	msg.seq = seq
	dstCh := dstState.chanFor(key)
	dstCh.inflight++
	om := w.getOutMsg()
	om.srcSt = st
	om.dstSt = dstState
	om.dstCh = dstCh
	om.msg = msg
	om.dst = worldDst
	om.key = key
	w.net.SendInto(&om.tr, st.node, dstState.node, bytes, om)
	st.outgoing = append(st.outgoing, om)
	st.pruneOutgoing()
	w.e.AtTimer(om.tr.TxDone(), req)
	return req
}

// IsendPooled is IsendSized with pooled-message allocation discipline: the
// payload is copied into a pooled buffer and the Message comes from the
// world pool. Use only for traffic whose receiver fully consumes the message
// and returns it via RecycleMessage (or drops it — the pool then simply does
// not grow); a receiver that retains msg.Data must not see pooled sends.
func (r *Rank) IsendPooled(c *Comm, dst, tag int, data []float64, meta any, payloadBytes int64) *Request {
	r.flush()
	return r.st.isendPooled(c, dst, tag, data, meta, payloadBytes)
}

// RecycleMessage returns a fully consumed message (payload buffer included)
// to the world pool. Callers must drop every reference to the message and
// its Data.
func (w *World) RecycleMessage(m *Message) { w.putMessage(m) }

// irecvColl posts a collective receive; the state machine recycles the
// request on consumption.
func (st *rankState) irecvColl(c *Comm, src, tag int) *Request {
	req := newRequest(st, true, matchKey{src: c.WorldRank(src), tag: tag, comm: c.id})
	st.postRecv(req)
	return req
}

// nopTimer is a zero-size sim.Timer for events that only exist to keep the
// engine's event sequence aligned (e.g. the vanished delivery of a message
// to a crashed rank).
type nopTimer struct{}

func (nopTimer) Fire() {}

// pruneDelivered is the garbage threshold for pruneOutgoing: once this many
// transfers have been delivered since the last prune, the next send compacts
// the in-flight list. Triggering on actual deliveries (rather than raw list
// length, which let every rank float up to 64 dead nodes — ~32k objects
// across a 512-rank world before the pool saw its first return) bounds the
// per-rank float while keeping the scan amortized: a prune always recycles
// at least pruneDelivered nodes.
const pruneDelivered = 16

// pruneOutgoing recycles completed transfers so the in-flight list stays
// small and delivered outMsg nodes return to the world pool.
func (st *rankState) pruneOutgoing() {
	if st.delivered < pruneDelivered && len(st.outgoing) < 64 {
		return
	}
	w := st.w
	n := len(st.outgoing)
	live := st.outgoing[:0]
	for _, om := range st.outgoing {
		if !om.delivered {
			live = append(live, om)
		} else {
			w.putOutMsg(om)
		}
	}
	for i := len(live); i < n; i++ {
		st.outgoing[i] = nil
	}
	st.outgoing = live
	st.delivered = 0
}

// deliver matches an arriving message against the channel's pending
// receives, or queues it as unexpected. Messages stay in send order.
func (st *rankState) deliver(key matchKey, ch *chanState, msg *Message) {
	if st.dead {
		return // arrived after the receiver crashed
	}
	if reqs := ch.pending; len(reqs) > 0 {
		rq := reqs[0]
		// Shift in place rather than re-slicing from the front: the base
		// pointer stays put, so later appends reuse the capacity instead of
		// drifting toward a reallocation per queue cycle.
		copy(reqs, reqs[1:])
		reqs[len(reqs)-1] = nil
		ch.pending = reqs[:len(reqs)-1]
		rq.complete(msg, nil)
		rq.ch = nil // may be retired and recycled before the Wait
		st.retireSingleShot(key, ch)
		return
	}
	q := ch.unexpected
	// Insertion sort by send sequence restores FIFO (non-overtaking) order
	// even if the network reorders same-key messages.
	i := len(q)
	for i > 0 && q[i-1].seq > msg.seq {
		i--
	}
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = msg
	ch.unexpected = q
}

// Irecv posts a nonblocking receive matching (src, tag) on c.
func (r *Rank) Irecv(c *Comm, src, tag int) *Request {
	r.flush()
	req := newRequest(r.st, true, matchKey{src: c.WorldRank(src), tag: tag, comm: c.id})
	r.st.postRecv(req)
	return req
}

// postRecv matches a freshly posted receive against the unexpected queue,
// fails it if the source is dead with nothing in flight, or parks it on the
// pending list.
func (st *rankState) postRecv(req *Request) {
	key := req.key
	ch := st.chanFor(key)
	req.ch = ch
	if q := ch.unexpected; len(q) > 0 {
		msg := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		ch.unexpected = q[:len(q)-1]
		req.complete(msg, nil)
		req.ch = nil // may be retired and recycled before the Wait
		st.retireSingleShot(key, ch)
		return
	}
	if st.w.ranks[key.src].dead && ch.inflight == 0 {
		req.complete(nil, &PeerDeadError{Rank: key.src})
		req.ch = nil
		st.retireSingleShot(key, ch)
		return
	}
	ch.pending = append(ch.pending, req)
}

func (ch *chanState) removePending(rq *Request) {
	reqs := ch.pending
	for i, q := range reqs {
		if q == rq {
			copy(reqs[i:], reqs[i+1:])
			reqs[len(reqs)-1] = nil
			ch.pending = reqs[:len(reqs)-1]
			return
		}
	}
}

// Wait blocks until the request completes and returns its error.
func (r *Rank) Wait(rq *Request) error {
	r.flush()
	t0 := r.p.Now()
	_, err := rq.fut.Wait(r.p, waitReason(rq))
	r.st.stats.Blocked += r.p.Now() - t0
	return err
}

// waitReason builds the park reason as a value: the "recv from %d tag %d"
// text is rendered only if a deadlock report is actually assembled, not on
// every blocking receive.
func waitReason(rq *Request) sim.ParkReason {
	if rq.isRecv {
		return sim.ParkReason{Kind: sim.WaitRecv, A: int64(rq.key.src), B: int64(rq.key.tag)}
	}
	return sim.ParkReason{Kind: sim.WaitSendDone}
}

// Waitall waits for every request and returns the first error encountered
// (but always waits for all of them, like MPI_Waitall).
func (r *Rank) Waitall(reqs []*Request) error {
	var first error
	for _, rq := range reqs {
		if err := r.Wait(rq); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitallOwned is Waitall for request slices whose handles never escape
// the caller: every request returns to the world pool after its wait, like
// the blocking Send/Recv convenience wrappers. The replication layer's
// blocking sends drain their scratch request slice through this.
//
// On a batched-compute world the drain runs back to front. Sends on one NIC
// complete in posting order, so waiting on the last request first parks the
// process once, at the final completion time, instead of once per request —
// the resume instant, the total Blocked time and every other virtual outcome
// are identical, but the intermediate wake events never enter the engine.
// Like compute batching itself this perturbs only the event count, which is
// why it rides the same flag: worlds that serialize event sequences keep the
// front-to-back drain.
func (r *Rank) WaitallOwned(reqs []*Request) error {
	var first error
	if r.st.w.batch {
		for i := len(reqs) - 1; i >= 0; i-- {
			rq := reqs[i]
			if err := r.Wait(rq); err != nil {
				first = err // ends at the lowest-index error, like Waitall
			}
			r.st.w.putRequest(rq)
			reqs[i] = nil
		}
		return first
	}
	for i, rq := range reqs {
		if err := r.Wait(rq); err != nil && first == nil {
			first = err
		}
		r.st.w.putRequest(rq)
		reqs[i] = nil
	}
	return first
}

// Send is a blocking send: it returns once the local NIC has finished
// transmitting (buffered send semantics with completion timing). The
// request handle never escapes, so it returns to the world pool, and the
// payload is copied into a pooled message (timing-identical to the Isend
// path). The receiver owns the delivered message as usual; one that fully
// consumes it may hand it back via RecycleMessage so the round trip stays
// allocation-free, and one that retains msg.Data simply keeps it — the pool
// then does not grow.
func (r *Rank) Send(c *Comm, dst, tag int, data []float64, meta any) error {
	r.flush()
	rq := r.st.isendPooled(c, dst, tag, data, meta, 8*int64(len(data)))
	err := r.Wait(rq)
	r.st.w.putRequest(rq)
	return err
}

// Recv blocks until a message matching (src, tag) arrives. The request
// handle never escapes, so it returns to the world pool; the message is
// owned by the caller.
func (r *Rank) Recv(c *Comm, src, tag int) (*Message, error) {
	rq := r.Irecv(c, src, tag)
	err := r.Wait(rq)
	msg := rq.msg
	r.st.w.putRequest(rq)
	if err != nil {
		return nil, err
	}
	return msg, nil
}

// TryRecv returns a queued message matching (src, tag) if one has already
// arrived; it never blocks.
func (r *Rank) TryRecv(c *Comm, src, tag int) (*Message, bool) {
	r.flush()
	st := r.st
	key := matchKey{src: c.WorldRank(src), tag: tag, comm: c.id}
	if ch := st.chans[key]; ch != nil && len(ch.unexpected) > 0 {
		q := ch.unexpected
		msg := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		ch.unexpected = q[:len(q)-1]
		st.retireSingleShot(key, ch)
		return msg, true
	}
	return nil, false
}
