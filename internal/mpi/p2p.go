package mpi

import (
	"sort"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Rank is the process-facing handle for one MPI rank. It is only valid
// inside the rank's own program function.
type Rank struct {
	st *rankState
	p  *sim.Proc
}

// Rank returns the world rank number.
func (r *Rank) Rank() int { return r.st.rank }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.st.w.ranks) }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.st.w.world }

// Node returns the node this rank is placed on.
func (r *Rank) Node() int { return r.st.node }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.p.Now() }

// Proc returns the underlying simulated process.
func (r *Rank) Proc() *sim.Proc { return r.p }

// Stats returns a copy of the rank's accounting counters.
func (r *Rank) Stats() Stats { return r.st.stats }

// Machine returns the world's per-core compute model.
func (r *Rank) Machine() perf.Machine { return r.st.w.machine }

// Compute charges d of virtual CPU time to this rank.
func (r *Rank) Compute(d sim.Time) {
	r.st.stats.Compute += d
	r.p.Sleep(d)
}

// ComputeWork charges the virtual time of w under the world's machine model.
func (r *Rank) ComputeWork(w perf.Work) {
	r.Compute(r.st.w.machine.Duration(w))
}

// Crash crash-stops the calling rank (used by fault injection callbacks
// running inside the rank's program).
func (r *Rank) Crash() { r.p.Crash() }

// Dead reports whether another rank has crashed.
func (r *Rank) Dead(rank int) bool { return r.st.w.ranks[rank].dead }

// Request is a handle on a nonblocking operation. The completion future is
// embedded by value and send completion is scheduled with the request
// itself as the typed timer, so posting an operation costs exactly one
// allocation: the Request.
type Request struct {
	id     uint64
	st     *rankState
	key    matchKey // receive matching key (recv only)
	isRecv bool
	fut    sim.Future
	msg    *Message
	err    error
}

func newRequest(st *rankState, isRecv bool, key matchKey) *Request {
	// The id sequence lives on the World (not in a package variable) so
	// that independent worlds — e.g. one per sweep worker — never share
	// mutable state and stay individually deterministic.
	st.w.reqSeq++
	rq := &Request{id: st.w.reqSeq, st: st, isRecv: isRecv, key: key}
	rq.fut.Init(st.w.e)
	return rq
}

// Fire completes the request with no message and no error; it is the typed
// send-completion callback scheduled at the local NIC's TxDone time.
func (rq *Request) Fire() { rq.complete(nil, nil) }

func (rq *Request) complete(msg *Message, err error) {
	rq.msg = msg
	rq.err = err
	rq.fut.Complete(msg, err)
}

// Done reports whether the operation has completed.
func (rq *Request) Done() bool { return rq.fut.Done() }

// Msg returns the received message (receives only, after completion).
func (rq *Request) Msg() *Message { return rq.msg }

// Err returns the completion error, if any.
func (rq *Request) Err() error { return rq.err }

func sortRequests(reqs []*Request) {
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].id < reqs[j].id })
}

// envelopeBytes models per-message protocol overhead on the wire, on top
// of eight bytes per float64 payload element (or the explicit modeled size
// for IsendSized).
const envelopeBytes = 64

// Isend posts a nonblocking send of data (which is copied, so the caller
// may reuse the buffer immediately) to dst on communicator c. meta must be
// immutable. The request completes when the local NIC finishes
// transmitting, which is what overlapping update transfers wait on.
func (r *Rank) Isend(c *Comm, dst, tag int, data []float64, meta any) *Request {
	buf := make([]float64, len(data))
	copy(buf, data)
	return r.IsendOwned(c, dst, tag, buf, meta)
}

// IsendOwned is Isend without the defensive copy: ownership of data
// transfers to the runtime. Use when the caller has already cloned.
func (r *Rank) IsendOwned(c *Comm, dst, tag int, data []float64, meta any) *Request {
	return r.st.isendOwned(c, dst, tag, data, meta)
}

// IsendSized is Isend with an explicit modeled payload size in bytes,
// used by scaled experiment runs where the in-memory arrays are a fraction
// of the modeled problem (data is still copied; the envelope is added on
// top of payloadBytes).
func (r *Rank) IsendSized(c *Comm, dst, tag int, data []float64, meta any, payloadBytes int64) *Request {
	buf := make([]float64, len(data))
	copy(buf, data)
	return r.st.isendSized(c, dst, tag, buf, meta, payloadBytes)
}

// AsyncSend posts a send on behalf of rank src from engine context (no
// process blocks on it). Used by the replication layer to replay a send
// log when a replica crashes. Ownership of data transfers to the runtime.
func (w *World) AsyncSend(src int, c *Comm, dst, tag int, data []float64, meta any, payloadBytes int64) {
	w.ranks[src].isendSized(c, dst, tag, data, meta, payloadBytes)
}

func (st *rankState) isendOwned(c *Comm, dst, tag int, data []float64, meta any) *Request {
	return st.isendSized(c, dst, tag, data, meta, 8*int64(len(data)))
}

func (st *rankState) isendSized(c *Comm, dst, tag int, data []float64, meta any, payloadBytes int64) *Request {
	w := st.w
	worldDst := c.WorldRank(dst)
	key := matchKey{src: st.rank, tag: tag, comm: c.id}
	st.sendSeq[key]++
	msg := &Message{
		Src:   st.rank,
		Dst:   worldDst,
		Tag:   tag,
		Data:  data,
		Meta:  meta,
		Bytes: envelopeBytes + payloadBytes,
		seq:   st.sendSeq[key],
	}
	req := newRequest(st, false, matchKey{})
	st.stats.MsgsSent++
	st.stats.BytesSent += msg.Bytes
	dstState := w.ranks[worldDst]
	if dstState.dead {
		// Crash-stop destination: the message vanishes. Model the local NIC
		// cost anyway (the sender cannot know). The no-op delivery event is
		// still scheduled so the engine's event sequence — and with it every
		// same-timestamp tie-break — is identical to the live-receiver path.
		//
		// Known modeling gap (pre-dating this path's rewrite, kept for
		// output stability): this transfer is not tracked in st.outgoing,
		// so if the sender also crashes before TxDone the receiver-node
		// rxFree reservation is never rolled back.
		var tr simnet.Transfer
		w.net.SendInto(&tr, st.node, dstState.node, msg.Bytes, nopTimer{})
		w.e.AtTimer(tr.TxDone(), req)
		return req
	}
	dstState.inflight[key]++
	om := &outMsg{dstSt: dstState, msg: msg, dst: worldDst, key: key}
	w.net.SendInto(&om.tr, st.node, dstState.node, msg.Bytes, om)
	st.outgoing = append(st.outgoing, om)
	st.pruneOutgoing()
	w.e.AtTimer(om.tr.TxDone(), req)
	return req
}

// nopTimer is a zero-size sim.Timer for events that only exist to keep the
// engine's event sequence aligned (e.g. the vanished delivery of a message
// to a crashed rank).
type nopTimer struct{}

func (nopTimer) Fire() {}

// pruneOutgoing drops completed transfers so the in-flight list stays small.
func (st *rankState) pruneOutgoing() {
	if len(st.outgoing) < 64 {
		return
	}
	live := st.outgoing[:0]
	for _, om := range st.outgoing {
		if !om.delivered {
			live = append(live, om)
		}
	}
	st.outgoing = live
}

// deliver matches an arriving message against pending receives, or queues
// it as unexpected. Messages for one key are kept in send order.
func (st *rankState) deliver(key matchKey, msg *Message) {
	if st.dead {
		return // arrived after the receiver crashed
	}
	if reqs := st.pending[key]; len(reqs) > 0 {
		rq := reqs[0]
		// Shift in place rather than re-slicing from the front: the base
		// pointer stays put, so later appends reuse the capacity instead of
		// drifting toward a reallocation per queue cycle.
		copy(reqs, reqs[1:])
		reqs[len(reqs)-1] = nil
		st.pending[key] = reqs[:len(reqs)-1]
		rq.complete(msg, nil)
		return
	}
	q := st.unexpected[key]
	// Insertion sort by send sequence restores FIFO (non-overtaking) order
	// even if the network reorders same-key messages.
	i := len(q)
	for i > 0 && q[i-1].seq > msg.seq {
		i--
	}
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = msg
	st.unexpected[key] = q
}

// Irecv posts a nonblocking receive matching (src, tag) on c.
func (r *Rank) Irecv(c *Comm, src, tag int) *Request {
	st := r.st
	key := matchKey{src: c.WorldRank(src), tag: tag, comm: c.id}
	req := newRequest(st, true, key)
	if q := st.unexpected[key]; len(q) > 0 {
		msg := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		st.unexpected[key] = q[:len(q)-1]
		req.complete(msg, nil)
		return req
	}
	if st.w.ranks[key.src].dead && st.inflight[key] == 0 {
		req.complete(nil, &PeerDeadError{Rank: key.src})
		return req
	}
	st.pending[key] = append(st.pending[key], req)
	return req
}

func (st *rankState) removePending(rq *Request) {
	reqs := st.pending[rq.key]
	for i, q := range reqs {
		if q == rq {
			copy(reqs[i:], reqs[i+1:])
			reqs[len(reqs)-1] = nil
			st.pending[rq.key] = reqs[:len(reqs)-1]
			return
		}
	}
}

// Wait blocks until the request completes and returns its error.
func (r *Rank) Wait(rq *Request) error {
	t0 := r.p.Now()
	_, err := rq.fut.Wait(r.p, waitReason(rq))
	r.st.stats.Blocked += r.p.Now() - t0
	return err
}

// waitReason builds the park reason as a value: the "recv from %d tag %d"
// text is rendered only if a deadlock report is actually assembled, not on
// every blocking receive.
func waitReason(rq *Request) sim.ParkReason {
	if rq.isRecv {
		return sim.ParkReason{Kind: sim.WaitRecv, A: int64(rq.key.src), B: int64(rq.key.tag)}
	}
	return sim.ParkReason{Kind: sim.WaitSendDone}
}

// Waitall waits for every request and returns the first error encountered
// (but always waits for all of them, like MPI_Waitall).
func (r *Rank) Waitall(reqs []*Request) error {
	var first error
	for _, rq := range reqs {
		if err := r.Wait(rq); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Send is a blocking send: it returns once the local NIC has finished
// transmitting (buffered send semantics with completion timing).
func (r *Rank) Send(c *Comm, dst, tag int, data []float64, meta any) error {
	return r.Wait(r.Isend(c, dst, tag, data, meta))
}

// Recv blocks until a message matching (src, tag) arrives.
func (r *Rank) Recv(c *Comm, src, tag int) (*Message, error) {
	rq := r.Irecv(c, src, tag)
	if err := r.Wait(rq); err != nil {
		return nil, err
	}
	return rq.msg, nil
}

// TryRecv returns a queued message matching (src, tag) if one has already
// arrived; it never blocks.
func (r *Rank) TryRecv(c *Comm, src, tag int) (*Message, bool) {
	st := r.st
	key := matchKey{src: c.WorldRank(src), tag: tag, comm: c.id}
	if q := st.unexpected[key]; len(q) > 0 {
		msg := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		st.unexpected[key] = q[:len(q)-1]
		return msg, true
	}
	return nil, false
}
