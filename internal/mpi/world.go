// Package mpi implements an MPI-flavoured message-passing runtime on top of
// the discrete-event simulator.
//
// It provides ranks, communicators, tagged point-to-point messaging
// (blocking and nonblocking, with Wait/Waitall), and the collectives used
// by the paper's applications (Barrier, Bcast, Reduce, Allreduce,
// Allgather). It stands in for Open MPI 1.7 in the original evaluation.
//
// Failure semantics are crash-stop: when a rank is killed, messages it
// fully transmitted are still delivered, in-flight transmissions are lost,
// and receives that can no longer be satisfied fail with *PeerDeadError —
// the hook the replication layer builds on.
package mpi

import (
	"fmt"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Stats aggregates per-rank accounting, used for the paper's time
// breakdowns ("sections" vs "others", update-transfer time).
type Stats struct {
	Compute   sim.Time // time charged via Compute/ComputeWork
	Blocked   sim.Time // time blocked in Recv/Wait/collectives
	BytesSent int64
	MsgsSent  int64
}

// World is the set of simulated MPI processes ("physical processes" in the
// paper's terminology) plus the interconnect they communicate over.
type World struct {
	e         *sim.Engine
	net       *simnet.Network
	machine   perf.Machine
	ranks     []*rankState
	placement func(rank int) int
	commSeq   int
	reqSeq    uint64
	world     *Comm
	deathSubs []func(rank int)
}

type rankState struct {
	w          *World
	rank       int
	node       int
	proc       *sim.Proc
	dead       bool
	unexpected map[matchKey][]*Message
	pending    map[matchKey][]*Request
	inflight   map[matchKey]int // messages en route to this rank
	outgoing   []*outMsg        // transfers this rank has in flight
	sendSeq    map[matchKey]uint64
	stats      Stats
}

// outMsg is one in-flight transmission. The simnet Transfer is embedded by
// value and the outMsg itself is the typed delivery callback, so a send
// allocates neither a separate Transfer nor a delivery closure.
type outMsg struct {
	tr        simnet.Transfer
	dstSt     *rankState // destination rank
	msg       *Message
	dst       int // destination world rank
	key       matchKey
	delivered bool
}

// Fire delivers the message at the arrival time (sim.Timer).
func (om *outMsg) Fire() {
	om.delivered = true
	msg := om.msg
	om.msg = nil // the receiver owns it now; drop our reference
	om.dstSt.inflight[om.key]--
	om.dstSt.deliver(om.key, msg)
}

type matchKey struct {
	src  int
	tag  int
	comm int
}

// Message is a delivered point-to-point message.
type Message struct {
	Src, Dst int // world ranks
	Tag      int
	Data     []float64 // numeric payload (owned by the receiver)
	Meta     any       // immutable side information (headers etc.)
	Bytes    int64     // modeled wire size
	seq      uint64    // per-(src,tag,comm) send sequence, for FIFO order
}

// NewWorld creates n ranks on the given network using block placement
// (net.NodeOf) unless placement is non-nil. machine converts perf.Work to
// virtual compute time.
func NewWorld(e *sim.Engine, net *simnet.Network, n int, machine perf.Machine, placement func(int) int) *World {
	if placement == nil {
		placement = net.NodeOf
	}
	w := &World{e: e, net: net, machine: machine, placement: placement}
	for i := 0; i < n; i++ {
		node := placement(i)
		if node < 0 || node >= net.Nodes() {
			panic(fmt.Sprintf("mpi: rank %d placed on invalid node %d", i, node))
		}
		w.ranks = append(w.ranks, &rankState{
			w:          w,
			rank:       i,
			node:       node,
			unexpected: make(map[matchKey][]*Message),
			pending:    make(map[matchKey][]*Request),
			inflight:   make(map[matchKey]int),
			sendSeq:    make(map[matchKey]uint64),
		})
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	w.world = w.newComm(members)
	e.OnKill(w.onProcKilled)
	return w
}

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.e }

// Net returns the interconnect.
func (w *World) Net() *simnet.Network { return w.net }

// Machine returns the per-core compute model.
func (w *World) Machine() perf.Machine { return w.machine }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// World returns the communicator containing every rank.
func (w *World) World() *Comm { return w.world }

// NodeOf returns the node a rank is placed on.
func (w *World) NodeOf(rank int) int { return w.ranks[rank].node }

// Dead reports whether a rank has crashed.
func (w *World) Dead(rank int) bool { return w.ranks[rank].dead }

// StatsOf returns a copy of the rank's accounting counters.
func (w *World) StatsOf(rank int) Stats { return w.ranks[rank].stats }

// OnDeath registers fn to be invoked in engine context when a rank dies,
// after undeliverable receives have been failed.
func (w *World) OnDeath(fn func(rank int)) { w.deathSubs = append(w.deathSubs, fn) }

// Launch starts the program for the given rank as a simulated process.
func (w *World) Launch(name string, rank int, fn func(r *Rank)) {
	st := w.ranks[rank]
	if st.proc != nil {
		panic(fmt.Sprintf("mpi: rank %d launched twice", rank))
	}
	st.proc = w.e.Spawn(name, func(p *sim.Proc) {
		fn(&Rank{st: st, p: p})
	})
	st.proc.SetUserData(st)
}

// LaunchAll starts fn on every rank, naming processes "prefix/rank".
func (w *World) LaunchAll(prefix string, fn func(r *Rank)) {
	for i := range w.ranks {
		w.Launch(fmt.Sprintf("%s/%d", prefix, i), i, fn)
	}
}

// Kill crash-stops a rank. Must be called from engine context (e.g. a
// scheduled fault event) or from another process.
func (w *World) Kill(rank int) {
	st := w.ranks[rank]
	if st.dead || st.proc == nil {
		return
	}
	w.e.Kill(st.proc)
}

// onProcKilled is the engine kill hook: it translates a process crash into
// MPI-level failure semantics.
func (w *World) onProcKilled(p *sim.Proc) {
	st, ok := p.UserData().(*rankState)
	if !ok || st.w != w || st.dead {
		return
	}
	st.dead = true
	// Drop in-flight transmissions that had not left the NIC.
	now := w.e.Now()
	for _, om := range st.outgoing {
		if om.delivered {
			continue
		}
		if om.tr.TxDone() > now {
			om.tr.Cancel()
			om.delivered = true
			dst := w.ranks[om.dst]
			dst.inflight[om.key]--
			dst.failDoomedRecvs(om.key)
		}
	}
	st.outgoing = nil
	// Fail receives (on every surviving rank) that name the dead rank as
	// source and cannot be satisfied by queued or in-flight messages.
	for _, r := range w.ranks {
		if r == st || r.dead {
			continue
		}
		r.failRecvsFrom(st.rank)
	}
	for _, fn := range w.deathSubs {
		fn(st.rank)
	}
}

// failRecvsFrom fails every pending receive naming src that has no queued
// or in-flight message to satisfy it. Candidates are gathered per key and
// then sorted by request id, so the wake-up order is deterministic even
// though pending is a map.
func (st *rankState) failRecvsFrom(src int) {
	var doomed []*Request
	for key, reqs := range st.pending {
		if key.src != src {
			continue
		}
		avail := len(st.unexpected[key]) + st.inflight[key]
		if avail >= len(reqs) {
			continue
		}
		doomed = append(doomed, reqs[avail:]...)
	}
	// Deterministic order: sort by request id.
	sortRequests(doomed)
	for _, rq := range doomed {
		st.removePending(rq)
		rq.complete(nil, &PeerDeadError{Rank: src})
	}
}

// failDoomedRecvs re-checks pending receives for key after in-flight
// accounting changed; used when a transfer from a now-dead source is
// dropped or delivered.
func (st *rankState) failDoomedRecvs(key matchKey) {
	if !st.w.ranks[key.src].dead {
		return
	}
	reqs := st.pending[key]
	avail := len(st.unexpected[key]) + st.inflight[key]
	if avail >= len(reqs) {
		return
	}
	doomed := append([]*Request(nil), reqs[avail:]...)
	for _, rq := range doomed {
		st.removePending(rq)
		rq.complete(nil, &PeerDeadError{Rank: key.src})
	}
}
