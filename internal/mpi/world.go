// Package mpi implements an MPI-flavoured message-passing runtime on top of
// the discrete-event simulator.
//
// It provides ranks, communicators, tagged point-to-point messaging
// (blocking and nonblocking, with Wait/Waitall), and the collectives used
// by the paper's applications (Barrier, Bcast, Reduce, Allreduce,
// Allgather). It stands in for Open MPI 1.7 in the original evaluation.
//
// Failure semantics are crash-stop: when a rank is killed, messages it
// fully transmitted are still delivered, in-flight transmissions are lost,
// and receives that can no longer be satisfied fail with *PeerDeadError —
// the hook the replication layer builds on.
package mpi

import (
	"fmt"
	"strconv"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Stats aggregates per-rank accounting, used for the paper's time
// breakdowns ("sections" vs "others", update-transfer time).
type Stats struct {
	Compute   sim.Time // time charged via Compute/ComputeWork
	Blocked   sim.Time // time blocked in Recv/Wait/collectives
	BytesSent int64
	MsgsSent  int64
}

// World is the set of simulated MPI processes ("physical processes" in the
// paper's terminology) plus the interconnect they communicate over.
type World struct {
	e         *sim.Engine
	net       *simnet.Network
	machine   perf.Machine
	ranks     []*rankState
	placement func(rank int) int
	commSeq   int
	reqSeq    uint64
	world     *Comm
	deathSubs []func(rank int)
	batch     bool // defer compute stretches until the next communication

	// Free lists (see Scratch). A world starts with private, empty ones;
	// UseScratch swaps in a caller-owned bundle that survives the world.
	sc *Scratch
}

// Scratch is the bundle of free lists a world draws from: requests,
// collective messages (with their payload buffers), outMsg transfer nodes
// and single-shot channel states. By default every world owns a private
// scratch, so independent worlds stay independent without locking. A harness
// that builds many short-lived worlds in sequence on one goroutine — the
// pooled sweep worker simulating one campaign trial per world — can hand
// the same Scratch to each of them, so every trial after the first runs on
// warm pools instead of re-allocating its steady state from nothing.
type Scratch struct {
	reqFree []*Request
	msgFree []*Message
	omFree  []*outMsg
	chFree  []*chanState
	outFree [][]*outMsg // recycled per-rank in-flight lists (backing arrays)
}

// NewScratch returns an empty free-list bundle for UseScratch.
func NewScratch() *Scratch { return &Scratch{} }

// UseScratch makes the world draw from (and recycle into) sc instead of its
// private free lists. Call it before Launch. The caller must ensure worlds
// sharing a scratch never run concurrently: the pools are unlocked by
// design, one engine drives one world at a time.
func (w *World) UseScratch(sc *Scratch) {
	w.sc = sc
	// Hand recycled in-flight list backing arrays to the ranks; without
	// this every trial re-grows 16 slices through the same append doublings.
	for _, st := range w.ranks {
		n := len(sc.outFree)
		if n == 0 {
			break
		}
		if st.outgoing == nil {
			st.outgoing = sc.outFree[n-1][:0]
			sc.outFree[n-1] = nil
			sc.outFree = sc.outFree[:n-1]
		}
	}
}

type rankState struct {
	w         *World
	rank      int
	node      int
	proc      *sim.Proc
	dead      bool
	chans     map[matchKey]*chanState // per-(src,tag,comm) matching state
	outgoing  []*outMsg               // transfers this rank has in flight
	delivered int                     // outgoing entries delivered since last prune
	stats     Stats
	pending   sim.Time   // deferred compute time (batched-compute worlds)
	coll      *collSM    // pooled collective state machine (lazy)
	scalar    [1]float64 // scratch cell backing AllreduceScalar
}

// chanState is the matching state of one (src, tag, comm) channel. Keeping
// the send sequence, in-flight count and both match queues behind a single
// map entry means each message costs a couple of key hashes instead of one
// per field — and hot paths that already hold the pointer (delivery, a
// pending request) pay none at all.
type chanState struct {
	sendSeq    uint64     // per-channel send sequence (sender side)
	inflight   int        // messages en route to this rank (receiver side)
	pending    []*Request // posted receives in arrival order (receiver side)
	unexpected []*Message // arrived unmatched, in send order (receiver side)
}

// chanFor returns the channel state for key, creating it on first use.
// Fresh states come from the world pool: single-shot collective channels
// cycle through it once per tree hop, match-queue backing arrays and all.
func (st *rankState) chanFor(key matchKey) *chanState {
	if ch := st.chans[key]; ch != nil {
		return ch
	}
	sc := st.w.sc
	n := len(sc.chFree)
	if n == 0 {
		// Refill by the slab: at 512 ranks a single collective floats a few
		// thousand single-shot channels before the first retire, and filling
		// that inventory one object at a time dominates the allocation
		// profile. One backing array per chanSlab states amortizes it away.
		slab := make([]chanState, chanSlab)
		for i := range slab {
			sc.chFree = append(sc.chFree, &slab[i])
		}
		n = chanSlab
	}
	ch := sc.chFree[n-1]
	sc.chFree[n-1] = nil
	sc.chFree = sc.chFree[:n-1]
	st.chans[key] = ch
	return ch
}

// retireSingleShot drops a drained collective channel from the matching map
// and recycles its state. Collective tags (negative) are minted fresh per
// round, so each (src, tag) channel carries at most one message ever: once
// that message is consumed the entry is dead weight — it would bloat the
// channel map that every death scan iterates, and cost an allocation per
// tree hop. Application tags (>= 0) are reusable and never retired.
func (st *rankState) retireSingleShot(key matchKey, ch *chanState) {
	if key.tag >= 0 || len(ch.pending) > 0 || len(ch.unexpected) > 0 || ch.inflight > 0 {
		return
	}
	delete(st.chans, key)
	ch.sendSeq = 0
	st.w.sc.chFree = append(st.w.sc.chFree, ch)
}

// outMsg is one in-flight transmission. The simnet Transfer is embedded by
// value and the outMsg itself is the typed delivery callback, so a send
// allocates neither a separate Transfer nor a delivery closure. The
// destination channel state rides along, so delivery hashes no keys.
type outMsg struct {
	tr        simnet.Transfer
	srcSt     *rankState // sending rank (owner of the in-flight list)
	dstSt     *rankState // destination rank
	dstCh     *chanState // destination channel state
	msg       *Message
	dst       int // destination world rank
	key       matchKey
	delivered bool
}

// Fire delivers the message at the arrival time (sim.Timer).
func (om *outMsg) Fire() {
	om.delivered = true
	om.srcSt.delivered++ // lets the sender prune as garbage accrues
	msg := om.msg
	om.msg = nil // the receiver owns it now; drop our reference
	om.dstCh.inflight--
	om.dstSt.deliver(om.key, om.dstCh, msg)
}

type matchKey struct {
	src  int
	tag  int
	comm int
}

// putRequest returns a request whose handle did not escape to the pool.
func (st *rankState) putRequest(rq *Request) { st.w.putRequest(rq) }

func (w *World) putRequest(rq *Request) {
	rq.st = nil
	rq.ch = nil
	rq.msg = nil
	rq.err = nil
	w.sc.reqFree = append(w.sc.reqFree, rq)
}

// Pool slab sizes: when a free list runs dry it refills with one backing
// array of this many objects instead of allocating them one by one. Large
// worlds float thousands of pooled objects before the first recycle (512
// ranks hold up to pruneDelivered outMsgs each), and slab refills keep that
// warm-up from dominating the allocation profile.
const (
	outMsgSlab  = 64
	chanSlab    = 32
	messageSlab = 16
	requestSlab = 16
)

// getMessage returns a pooled message with a payload buffer of length n.
func (w *World) getMessage(n int) *Message {
	sc := w.sc
	l := len(sc.msgFree)
	if l == 0 {
		slab := make([]Message, messageSlab)
		for i := range slab {
			sc.msgFree = append(sc.msgFree, &slab[i])
		}
		l = messageSlab
	}
	m := sc.msgFree[l-1]
	sc.msgFree[l-1] = nil
	sc.msgFree = sc.msgFree[:l-1]
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
	}
	return m
}

// putMessage recycles a consumed collective message, payload buffer and
// all. Only collective receives call it: point-to-point messages are owned
// by their receiver indefinitely.
func (w *World) putMessage(m *Message) {
	m.Meta = nil
	w.sc.msgFree = append(w.sc.msgFree, m)
}

func (w *World) getOutMsg() *outMsg {
	sc := w.sc
	l := len(sc.omFree)
	if l == 0 {
		slab := make([]outMsg, outMsgSlab)
		for i := range slab {
			sc.omFree = append(sc.omFree, &slab[i])
		}
		l = outMsgSlab
	}
	om := sc.omFree[l-1]
	sc.omFree[l-1] = nil
	sc.omFree = sc.omFree[:l-1]
	om.delivered = false
	return om
}

func (w *World) putOutMsg(om *outMsg) {
	om.srcSt = nil
	om.dstSt = nil
	om.dstCh = nil
	om.msg = nil
	w.sc.omFree = append(w.sc.omFree, om)
}

// Reclaim returns the world's recyclable steady state to its scratch once a
// run has fully drained: delivered transfer nodes, channel states and the
// messages and receive requests still queued unmatched. A harness that runs
// many short-lived worlds on one shared scratch calls it right before
// dropping the world — without it most of the pooled inventory dies with
// the world's own structures and every trial starts cold again. The world
// must not be used afterwards.
func (w *World) Reclaim() {
	for _, st := range w.ranks {
		for i, om := range st.outgoing {
			if !om.delivered {
				// The run has drained; an undelivered transfer can no longer
				// fire, so its payload message is exclusively ours again.
				w.putMessage(om.msg)
			}
			w.putOutMsg(om)
			st.outgoing[i] = nil
		}
		if st.outgoing != nil {
			w.sc.outFree = append(w.sc.outFree, st.outgoing[:0])
			st.outgoing = nil
		}
		st.delivered = 0
		for key, ch := range st.chans {
			for i, m := range ch.unexpected {
				w.putMessage(m)
				ch.unexpected[i] = nil
			}
			ch.unexpected = ch.unexpected[:0]
			for i, rq := range ch.pending {
				w.putRequest(rq)
				ch.pending[i] = nil
			}
			ch.pending = ch.pending[:0]
			ch.inflight = 0
			ch.sendSeq = 0
			delete(st.chans, key)
			w.sc.chFree = append(w.sc.chFree, ch)
		}
	}
}

// Message is a delivered point-to-point message.
type Message struct {
	Src, Dst int // world ranks
	Tag      int
	Data     []float64 // numeric payload (owned by the receiver)
	Meta     any       // immutable side information (headers etc.)
	Bytes    int64     // modeled wire size
	seq      uint64    // per-(src,tag,comm) send sequence, for FIFO order
}

// NewWorld creates n ranks on the given network using block placement
// (net.NodeOf) unless placement is non-nil. machine converts perf.Work to
// virtual compute time.
func NewWorld(e *sim.Engine, net *simnet.Network, n int, machine perf.Machine, placement func(int) int) *World {
	if placement == nil {
		placement = net.NodeOf
	}
	w := &World{e: e, net: net, machine: machine, placement: placement, sc: NewScratch()}
	w.ranks = make([]*rankState, n)
	slab := make([]rankState, n) // one allocation for all per-rank state
	for i := 0; i < n; i++ {
		node := placement(i)
		if node < 0 || node >= net.Nodes() {
			panic(fmt.Sprintf("mpi: rank %d placed on invalid node %d", i, node))
		}
		st := &slab[i]
		st.w, st.rank, st.node = w, i, node
		st.chans = make(map[matchKey]*chanState)
		w.ranks[i] = st
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	w.world = w.newComm(members)
	e.OnKill(w.onProcKilled)
	return w
}

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.e }

// Net returns the interconnect.
func (w *World) Net() *simnet.Network { return w.net }

// Machine returns the per-core compute model.
func (w *World) Machine() perf.Machine { return w.machine }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// World returns the communicator containing every rank.
func (w *World) World() *Comm { return w.world }

// NodeOf returns the node a rank is placed on.
func (w *World) NodeOf(rank int) int { return w.ranks[rank].node }

// Dead reports whether a rank has crashed.
func (w *World) Dead(rank int) bool { return w.ranks[rank].dead }

// StatsOf returns a copy of the rank's accounting counters.
func (w *World) StatsOf(rank int) Stats { return w.ranks[rank].stats }

// SetBatchedCompute toggles deferred compute accounting: Compute calls
// accumulate into a per-rank pending duration instead of sleeping per call,
// and the single real Sleep happens at the next operation whose outcome can
// depend on the current instant (any send, receive, wait, collective, crash
// or death query — and program end, so a rank stays killable through its
// trailing compute). Rank.Now always reports engine time plus the rank's
// pending compute, so virtual-time measurements are identical to the
// unbatched schedule; only the engine's event count differs. Harnesses that
// serialize event counts must leave batching off. Set before Launch.
func (w *World) SetBatchedCompute(on bool) { w.batch = on }

// OnDeath registers fn to be invoked in engine context when a rank dies,
// after undeliverable receives have been failed.
func (w *World) OnDeath(fn func(rank int)) { w.deathSubs = append(w.deathSubs, fn) }

// Launch starts the program for the given rank as a simulated process.
func (w *World) Launch(name string, rank int, fn func(r *Rank)) {
	st := w.ranks[rank]
	if st.proc != nil {
		panic(fmt.Sprintf("mpi: rank %d launched twice", rank))
	}
	st.proc = w.e.Spawn(name, func(p *sim.Proc) {
		r := &Rank{st: st, p: p}
		fn(r)
		// Realize any trailing deferred compute: the rank's process must
		// stay alive (and killable) until its true virtual end time.
		r.flush()
	})
	st.proc.SetUserData(st)
}

// LaunchAll starts fn on every rank, naming processes "prefix/rank".
func (w *World) LaunchAll(prefix string, fn func(r *Rank)) {
	for i := range w.ranks {
		w.Launch(prefix+"/"+strconv.Itoa(i), i, fn)
	}
}

// Kill crash-stops a rank. Must be called from engine context (e.g. a
// scheduled fault event) or from another process.
func (w *World) Kill(rank int) {
	st := w.ranks[rank]
	if st.dead || st.proc == nil {
		return
	}
	w.e.Kill(st.proc)
}

// onProcKilled is the engine kill hook: it translates a process crash into
// MPI-level failure semantics.
func (w *World) onProcKilled(p *sim.Proc) {
	st, ok := p.UserData().(*rankState)
	if !ok || st.w != w || st.dead {
		return
	}
	st.dead = true
	// Drop in-flight transmissions that had not left the NIC.
	now := w.e.Now()
	for i, om := range st.outgoing {
		if om.delivered {
			w.putOutMsg(om)
		} else if om.tr.TxDone() > now {
			om.tr.Cancel()
			om.dstCh.inflight--
			w.ranks[om.dst].failDoomedRecvs(om.key, om.dstCh)
			w.putMessage(om.msg)
			w.putOutMsg(om)
		}
		// else: the transfer already left the NIC; it stays owned by its
		// pending delivery event and is dropped on arrival or consumed.
		st.outgoing[i] = nil
	}
	st.outgoing = st.outgoing[:0]
	st.delivered = 0
	// Fail receives (on every surviving rank) that name the dead rank as
	// source and cannot be satisfied by queued or in-flight messages.
	for _, r := range w.ranks {
		if r == st || r.dead {
			continue
		}
		r.failRecvsFrom(st.rank)
	}
	for _, fn := range w.deathSubs {
		fn(st.rank)
	}
}

// failRecvsFrom fails every pending receive naming src that has no queued
// or in-flight message to satisfy it. Candidates are gathered per channel
// and then sorted by request id, so the wake-up order is deterministic even
// though chans is a map.
func (st *rankState) failRecvsFrom(src int) {
	var doomed []*Request
	for key, ch := range st.chans {
		if key.src != src || len(ch.pending) == 0 {
			continue
		}
		avail := len(ch.unexpected) + ch.inflight
		if avail >= len(ch.pending) {
			continue
		}
		doomed = append(doomed, ch.pending[avail:]...)
	}
	// Deterministic order: sort by request id.
	sortRequests(doomed)
	for _, rq := range doomed {
		rq.ch.removePending(rq)
		rq.complete(nil, &PeerDeadError{Rank: src})
	}
}

// failDoomedRecvs re-checks pending receives on ch after in-flight
// accounting changed; used when a transfer from a now-dead source is
// dropped or delivered.
func (st *rankState) failDoomedRecvs(key matchKey, ch *chanState) {
	if !st.w.ranks[key.src].dead {
		return
	}
	avail := len(ch.unexpected) + ch.inflight
	if avail >= len(ch.pending) {
		return
	}
	doomed := append([]*Request(nil), ch.pending[avail:]...)
	for _, rq := range doomed {
		ch.removePending(rq)
		rq.complete(nil, &PeerDeadError{Rank: key.src})
	}
	st.retireSingleShot(key, ch)
}
