// Package perf models the compute performance of a cluster node.
//
// The paper's efficiency results are driven by the ratio between the
// computation a task performs and the size of the update it must ship to
// peer replicas (§V-C: "We can relate intra-parallelization efficiency to
// the number of floating-point operations required to compute each
// output"). We therefore account each kernel's work as (bytes touched,
// flops executed) and convert it to virtual time with a roofline-style
// model: a kernel is limited either by memory bandwidth or by the floating
// point unit, whichever bound is larger.
package perf

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Work is the resource consumption of a block of computation.
type Work struct {
	Bytes float64 // bytes moved to/from memory
	Flops float64 // floating-point operations
}

// Add returns the sum of two works.
func (w Work) Add(o Work) Work { return Work{w.Bytes + o.Bytes, w.Flops + o.Flops} }

// Scale returns the work multiplied by k. Used to charge paper-scale cost
// while executing on scaled-down arrays.
func (w Work) Scale(k float64) Work { return Work{w.Bytes * k, w.Flops * k} }

// IsZero reports whether the work is empty.
func (w Work) IsZero() bool { return w.Bytes == 0 && w.Flops == 0 }

func (w Work) String() string {
	return fmt.Sprintf("{%.3g B, %.3g flops}", w.Bytes, w.Flops)
}

// Machine describes the per-core compute capabilities of a cluster node.
type Machine struct {
	// MemBWPerCore is the sustainable memory bandwidth per core in bytes/s
	// when all cores of a node are active (i.e. the socket bandwidth divided
	// by the core count).
	MemBWPerCore float64
	// FlopsPerCore is the sustainable floating-point rate per core in
	// flops/s for solver-style code (well below peak).
	FlopsPerCore float64
}

// Duration converts work to virtual time under the roofline model.
func (m Machine) Duration(w Work) sim.Time {
	tb := w.Bytes / m.MemBWPerCore
	tf := w.Flops / m.FlopsPerCore
	t := tb
	if tf > t {
		t = tf
	}
	return sim.Seconds(t)
}

// MemcpyDuration returns the time to copy n bytes within a core's memory
// (read + write traffic). Used to cost the extra copy of inout variables.
func (m Machine) MemcpyDuration(n int64) sim.Time {
	return m.Duration(Work{Bytes: 2 * float64(n)})
}

// Grid5000 approximates one core of the paper's testbed: 2.53 GHz 4-core
// Intel Xeon (Nehalem-era), 16 GB per node. Memory bandwidth per core
// assumes ~12 GB/s sustainable per socket shared by 4 cores; the flop rate
// is a sustained (not peak) figure for sparse solver code.
var Grid5000 = Machine{
	MemBWPerCore: 3.0e9,
	FlopsPerCore: 2.0e9,
}

// Skylake approximates one core of a modern HPC node (Skylake-SP era,
// ~2.4 GHz, 6-channel DDR4 shared by ~24 cores): for what-if sweeps beyond
// the paper's 2009 testbed. Both bounds grow, but bandwidth per core grows
// less than the flop rate, which shifts more kernels memory-bound.
var Skylake = Machine{
	MemBWPerCore: 5.0e9,
	FlopsPerCore: 1.2e10,
}

// Machines names the machine models available as scenario platform axes.
// Entries are added via Register; the built-in models register below.
var Machines = map[string]Machine{}

// DefaultMachineName is the registry name of the paper's node model: the
// model a scenario selects when it omits its machine.
const DefaultMachineName = "grid5000"

// Register adds a named machine model to the Machines registry. Names are
// scenario-file and CLI currency, so a duplicate is a programming error and
// panics.
func Register(name string, m Machine) {
	if name == "" {
		panic("perf: Register with empty name")
	}
	if _, dup := Machines[name]; dup {
		panic(fmt.Sprintf("perf: machine %q registered twice", name))
	}
	Machines[name] = m
}

// MachineNames returns the registered machine names, sorted.
func MachineNames() []string {
	names := make([]string, 0, len(Machines))
	for n := range Machines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(DefaultMachineName, Grid5000)
	Register("skylake", Skylake)
}
