package perf

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestWorkAddScale(t *testing.T) {
	w := Work{Bytes: 10, Flops: 4}.Add(Work{Bytes: 2, Flops: 1})
	if w.Bytes != 12 || w.Flops != 5 {
		t.Fatalf("Add = %v", w)
	}
	s := w.Scale(2)
	if s.Bytes != 24 || s.Flops != 10 {
		t.Fatalf("Scale = %v", s)
	}
	if !(Work{}).IsZero() || w.IsZero() {
		t.Fatal("IsZero wrong")
	}
	if w.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDurationRoofline(t *testing.T) {
	m := Machine{MemBWPerCore: 1e9, FlopsPerCore: 1e9}
	// Memory-bound: 1e9 bytes at 1 GB/s = 1 s, flops negligible.
	if d := m.Duration(Work{Bytes: 1e9, Flops: 1}); d != sim.Second {
		t.Fatalf("mem-bound duration = %v", d)
	}
	// Flop-bound.
	if d := m.Duration(Work{Bytes: 1, Flops: 2e9}); d != 2*sim.Second {
		t.Fatalf("flop-bound duration = %v", d)
	}
}

func TestMemcpyDuration(t *testing.T) {
	m := Machine{MemBWPerCore: 2e9, FlopsPerCore: 1e9}
	// 1e9 bytes copied = 2e9 bytes of traffic at 2 GB/s = 1 s.
	if d := m.MemcpyDuration(1e9); d != sim.Second {
		t.Fatalf("memcpy duration = %v", d)
	}
}

func TestGrid5000Sane(t *testing.T) {
	if Grid5000.MemBWPerCore <= 0 || Grid5000.FlopsPerCore <= 0 {
		t.Fatal("profile must be positive")
	}
	// waxpby on 1M elements: 24 MB of traffic, 3 Mflop: must be mem-bound.
	w := Work{Bytes: 24e6, Flops: 3e6}
	d := Grid5000.Duration(w)
	if d != Grid5000.Duration(Work{Bytes: 24e6}) {
		t.Fatalf("waxpby should be memory bound, got %v", d)
	}
}

// Property: duration is monotone in both components and Scale(2) never
// shortens execution.
func TestDurationMonotoneProperty(t *testing.T) {
	m := Grid5000
	prop := func(b, f uint32) bool {
		w := Work{Bytes: float64(b), Flops: float64(f)}
		d := m.Duration(w)
		if m.Duration(w.Add(Work{Bytes: 1e6})) < d {
			return false
		}
		if m.Duration(w.Add(Work{Flops: 1e6})) < d {
			return false
		}
		return m.Duration(w.Scale(2)) >= d
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
