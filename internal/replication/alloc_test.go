package replication

import (
	"testing"

	"repro/internal/testutil"
)

// logicalPingAllocs runs a degree-2 logical ping-pong (with send logging,
// the paper's operating mode) and returns total allocations; callers
// difference two lengths to cancel the fixed setup cost.
func logicalPingAllocs(t *testing.T, rounds int) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		e, s := testSystem(t, 2, 2, true)
		payload := make([]float64, 8)
		s.Launch("pp", func(p *Proc) {
			var err error
			for i := 0; i < rounds; i++ {
				if p.Logical == 0 {
					err = p.Send(1, 1, payload, nil)
					if err == nil {
						_, err = p.Recv(1, 2)
					}
				} else {
					_, err = p.Recv(0, 1)
					if err == nil {
						err = p.Send(0, 2, payload, nil)
					}
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		})
		run(t, e)
	})
}

// TestLogicalSendAllocBudget pins the replicated send path: one logical
// round is two logical sends (each fanned out to two lanes by both
// replicas, so eight physical messages) plus the matching receives, and
// with send logging every send also copies its payload into the log. The
// budget holds the per-round cost to the irreducible copies and records
// (log entry, header box, per-message Message/Request/in-flight record);
// the scheduling machinery underneath must contribute nothing.
func TestLogicalSendAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	const span = 500
	perRound := (logicalPingAllocs(t, 100+span) - logicalPingAllocs(t, 100)) / span
	t.Logf("allocs per logical ping-pong round: %.2f", perRound)
	if perRound > 35 {
		t.Fatalf("logical round allocates %.2f objects, budget 35", perRound)
	}
}
