package replication

import (
	"fmt"

	"repro/internal/mpi"
)

// Proc is the per-replica handle for one replica of a logical MPI process.
// Application code written against Proc sees a logical rank space of size
// Config.Logical; the replication machinery is transparent.
type Proc struct {
	s       *System
	R       *mpi.Rank // underlying physical rank (exposed for lower layers)
	Logical int
	Lane    int

	expected  map[chanKey]uint64                  // next seq per (logical src, tag)
	stash     map[chanKey]map[uint64]*mpi.Message // early messages (defensive)
	sendSeq   map[chanKey]uint64                  // next seq per (logical dst, tag)
	log       []logEntry                          // send log for crash coverage
	logArena  []float64                           // payload storage backing log entries
	collRound int                                 // collective round counter
	reqbuf    []*mpi.Request                      // scratch for blocking sends
}

// chanKey identifies a logical message channel.
type chanKey struct {
	peer int // logical peer rank
	tag  int
}

type logEntry struct {
	dst    int // logical destination
	tag    int
	seq    uint64
	off, n int // payload location in the proc's log arena
	meta   any
	bytes  int64 // modeled payload size
}

// hdr is the replication header carried in mpi message metadata.
type hdr struct {
	Seq  uint64
	User any
}

func newProc(s *System, r *mpi.Rank, logical, lane int) *Proc {
	// The bookkeeping maps are lazy: they only ever hold application-tag
	// channels (collective tags skip sequence bookkeeping entirely), so a
	// replica that exchanges nothing but collectives never materializes them.
	return &Proc{s: s, R: r, Logical: logical, Lane: lane}
}

// System returns the replication system.
func (p *Proc) System() *System { return p.s }

// LogicalSize returns the number of logical ranks.
func (p *Proc) LogicalSize() int { return p.s.cfg.Logical }

// AliveLanes returns the lanes on which this logical rank has live
// replicas.
func (p *Proc) AliveLanes() []int { return p.s.AliveLanes(p.Logical) }

// ReplicaComm returns the communicator over this logical rank's replicas
// (comm rank == lane).
func (p *Proc) ReplicaComm() *mpi.Comm { return p.s.ReplicaComm(p.Logical) }

// Send performs a logical send: one physical message per lane this replica
// covers, to the corresponding replica of dst. data is copied.
func (p *Proc) Send(dst, tag int, data []float64, meta any) error {
	return p.SendSized(dst, tag, data, meta, 8*int64(len(data)))
}

// SendSized is Send with an explicit modeled payload size (for scaled
// experiment runs). The per-lane request slice is a scratch buffer reused
// across calls, and the requests themselves never escape, so the blocking
// wait drains it and recycles every handle to the world pool.
func (p *Proc) SendSized(dst, tag int, data []float64, meta any, payloadBytes int64) error {
	p.reqbuf = p.isendInto(p.reqbuf[:0], dst, tag, data, meta, payloadBytes)
	return p.R.WaitallOwned(p.reqbuf)
}

// Isend is the nonblocking variant of Send. The returned requests complete
// when the local NIC finishes transmitting each lane's copy.
func (p *Proc) Isend(dst, tag int, data []float64, meta any) []*mpi.Request {
	return p.IsendSized(dst, tag, data, meta, 8*int64(len(data)))
}

// IsendSized is Isend with an explicit modeled payload size.
func (p *Proc) IsendSized(dst, tag int, data []float64, meta any, payloadBytes int64) []*mpi.Request {
	return p.isendInto(nil, dst, tag, data, meta, payloadBytes)
}

func (p *Proc) isendInto(reqs []*mpi.Request, dst, tag int, data []float64, meta any, payloadBytes int64) []*mpi.Request {
	// Collective tags (negative, minted fresh per round by collTag) are
	// single-shot: each (src, dst, tag) pair carries at most one message,
	// so their sequence number is constantly 1 and per-channel counters
	// would only accumulate dead entries. Only application tags, which can
	// be reused, pay for sequence bookkeeping.
	seq := uint64(1)
	if tag >= 0 {
		if p.sendSeq == nil {
			p.sendSeq = make(map[chanKey]uint64)
		}
		key := chanKey{peer: dst, tag: tag}
		p.sendSeq[key]++
		seq = p.sendSeq[key]
	}
	if p.s.cfg.SendLog {
		// Payloads land in one per-proc arena rather than a fresh buffer per
		// send; entries address it by offset because append may move it.
		off := len(p.logArena)
		p.logArena = append(p.logArena, data...)
		p.log = append(p.log, logEntry{dst: dst, tag: tag, seq: seq, off: off, n: len(data), meta: meta, bytes: payloadBytes})
	}
	for l := 0; l < p.s.cfg.Degree; l++ {
		cover, ok := p.s.Cover(p.Logical, l)
		if !ok || cover != p.Lane {
			continue // some other replica covers lane l (or the rank is lost)
		}
		if !p.s.alive[dst][l] {
			p.s.deadDrops++
			continue // the lane-l replica of dst is dead; its cover has its own feed
		}
		reqs = append(reqs, p.R.IsendPooled(p.s.w.World(), p.s.PhysRank(dst, l), tag, data, p.s.getHdr(seq, meta), payloadBytes))
	}
	return reqs
}

// replayTo re-sends this replica's send log toward lane l (after the lane-l
// replica of this logical rank died). Runs in engine context; duplicates
// are discarded by receivers via sequence numbers.
func (p *Proc) replayTo(l int) {
	for _, ent := range p.log {
		if !p.s.alive[ent.dst][l] {
			continue
		}
		p.s.replayMsgs++
		buf := make([]float64, ent.n)
		copy(buf, p.logArena[ent.off:ent.off+ent.n])
		p.s.w.AsyncSend(p.s.PhysRank(p.Logical, p.Lane), p.s.w.World(),
			p.s.PhysRank(ent.dst, l), ent.tag, buf, p.s.getHdr(ent.seq, ent.meta), ent.bytes)
	}
}

// Recv performs a logical receive from logical rank src with the given
// tag. It transparently fails over to the covering replica when the
// expected sender has crashed, and discards duplicates introduced by
// coverage replay.
func (p *Proc) Recv(src, tag int) (*mpi.Message, error) {
	key := chanKey{peer: src, tag: tag}
	want := uint64(1)
	if tag >= 0 {
		want = p.expected[key] + 1
	}
	for {
		// Serve from the stash first (early arrivals from a previous
		// failover). Single-shot collective tags can never stash: their
		// only sequence number is 1, which is never ahead of want.
		if tag >= 0 {
			if st := p.stash[key]; st != nil {
				if msg, ok := st[want]; ok {
					delete(st, want)
					p.expected[key] = want
					return msg, nil
				}
			}
		}
		// Drain any message already queued from any replica of src; a
		// message from a now-dead replica may have been delivered before
		// the crash. Until the first membership change (epoch 0) each lane
		// has exactly one feed — its own — and anything queued there is
		// consumed without parking by the blocking receive below, so the
		// drain only runs once a crash may have re-routed or replayed
		// traffic.
		if p.s.epoch > 0 {
			drained := false
			for l := 0; l < p.s.cfg.Degree; l++ {
				if msg, ok := p.R.TryRecv(p.s.w.World(), p.s.PhysRank(src, l), tag); ok {
					if p.accept(key, want, msg) {
						return msg, nil
					}
					drained = true
					break
				}
			}
			if drained {
				continue
			}
		}
		cover, ok := p.s.Cover(src, p.Lane)
		if !ok {
			return nil, &LogicalRankLostError{Rank: src}
		}
		msg, err := p.R.Recv(p.s.w.World(), p.s.PhysRank(src, cover), tag)
		if err != nil {
			if mpi.IsPeerDead(err) {
				continue // failover: membership changed, retry with new cover
			}
			return nil, err
		}
		if p.accept(key, want, msg) {
			return msg, nil
		}
	}
}

// accept applies sequence bookkeeping to an arrived message. It returns
// true when msg is the next expected message; duplicates are dropped and
// early messages stashed.
func (p *Proc) accept(key chanKey, want uint64, msg *mpi.Message) bool {
	h, ok := msg.Meta.(*hdr)
	if !ok {
		panic("replication: message without replication header")
	}
	msg.Meta = h.User
	seq := h.Seq
	p.s.putHdr(h)
	switch {
	case seq == want:
		if key.tag >= 0 {
			if p.expected == nil {
				p.expected = make(map[chanKey]uint64)
			}
			p.expected[key] = want
		}
		return true
	case seq < want:
		// Duplicate from coverage replay: nobody will ever see it again, so
		// its buffer can rejoin the message pool whatever path it came from.
		p.s.w.RecycleMessage(msg)
		return false
	default:
		if p.stash == nil {
			p.stash = make(map[chanKey]map[uint64]*mpi.Message)
		}
		if p.stash[key] == nil {
			p.stash[key] = make(map[uint64]*mpi.Message)
		}
		p.stash[key][seq] = msg
		return false
	}
}

// LogicalRankLostError reports that every replica of a logical rank has
// crashed; the computation cannot continue without checkpoint restart.
type LogicalRankLostError struct {
	Rank int
}

func (e *LogicalRankLostError) Error() string {
	return fmt.Sprintf("replication: all replicas of logical rank %d are dead", e.Rank)
}

// Logical collectives are implemented as message trees over logical ranks
// using the replication layer's own Send/Recv, so they inherit its fault
// tolerance: every collective message is mirrored per lane, deduplicated by
// sequence number, and covered by the twin's send-log replay if a replica
// crashes mid-collective. Tags live in the negative space so they can never
// collide with application tags.
func (p *Proc) collTag(op int) int {
	p.collRound++
	return -(op<<24 | p.collRound&0xffffff)
}

const (
	opBarrier = iota + 1
	opBcast
	opReduce
	opAllreduce
)

// Barrier blocks until all logical ranks have entered it (dissemination
// algorithm).
func (p *Proc) Barrier() error {
	tag := p.collTag(opBarrier)
	n := p.s.cfg.Logical
	if n == 1 {
		return nil
	}
	me := p.Logical
	for k := 1; k < n; k <<= 1 {
		if err := p.Send((me+k)%n, tag, nil, nil); err != nil {
			return err
		}
		msg, err := p.Recv((me-k+n)%n, tag)
		if err != nil {
			return err
		}
		p.s.w.RecycleMessage(msg)
	}
	return nil
}

// Bcast broadcasts data from logical rank root to all logical ranks
// (binomial tree). Non-root callers pass a buffer of the right length.
func (p *Proc) Bcast(root int, data []float64) error {
	return p.bcastTag(p.collTag(opBcast), root, data)
}

func (p *Proc) bcastTag(tag, root int, data []float64) error {
	n := p.s.cfg.Logical
	if n == 1 {
		return nil
	}
	vrank := (p.Logical - root + n) % n
	if vrank != 0 {
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := vrank - mask
		msg, err := p.Recv((parent+root)%n, tag)
		if err != nil {
			return err
		}
		copy(data, msg.Data)
		p.s.w.RecycleMessage(msg)
	}
	mask := 1
	for vrank&mask == 0 && mask < n {
		mask <<= 1
	}
	for m := mask >> 1; m >= 1; m >>= 1 {
		if child := vrank + m; child < n {
			if err := p.Send((child+root)%n, tag, data, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce combines every logical rank's data into root's buffer using op
// (binomial tree). data is used as the local accumulator on all ranks.
func (p *Proc) Reduce(root int, op mpi.ReduceOp, data []float64) error {
	return p.reduceTag(p.collTag(opReduce), root, op, data)
}

func (p *Proc) reduceTag(tag, root int, op mpi.ReduceOp, data []float64) error {
	n := p.s.cfg.Logical
	if n == 1 {
		return nil
	}
	vrank := (p.Logical - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := vrank - mask
			return p.Send((parent+root)%n, tag, data, nil)
		}
		if child := vrank + mask; child < n {
			msg, err := p.Recv((child+root)%n, tag)
			if err != nil {
				return err
			}
			op(data, msg.Data)
			p.s.w.RecycleMessage(msg)
		}
	}
	return nil
}

// Allreduce combines data across all logical ranks and leaves the result
// in data everywhere (reduce to 0, then broadcast).
func (p *Proc) Allreduce(op mpi.ReduceOp, data []float64) error {
	p.collRound++
	base := -(opAllreduce<<24 | p.collRound&0xffffff)
	if err := p.reduceTag(base, 0, op, data); err != nil {
		return err
	}
	// The paired broadcast reuses the same round with a distinct opcode
	// encoding so the two phases cannot cross-match.
	return p.bcastTag(base-1<<30, 0, data)
}

// AllreduceScalar is a single-value convenience wrapper.
func (p *Proc) AllreduceScalar(op mpi.ReduceOp, v float64) (float64, error) {
	buf := []float64{v}
	if err := p.Allreduce(op, buf); err != nil {
		return 0, err
	}
	return buf[0], nil
}
