// Package replication implements state-machine (active) replication of MPI
// processes, the substrate the paper's prototype builds on (SDR-MPI, §V-A).
//
// Each logical MPI rank is executed by Degree physical replicas. Replicas
// are organized in "lanes": lane l of the application is the set of l-th
// replicas of every logical rank. Because the applications are
// deterministic (the paper relies on send-determinism), both lanes produce
// identical message sequences, so a logical message is realized as one
// physical message per lane, between same-lane replicas.
//
// Failure handling: when replica (r, l) crashes, the lowest-lane surviving
// replica of r becomes the *cover* of lane l. It (a) replays its send log
// to lane-l receivers (duplicates are discarded via per-channel sequence
// numbers) and (b) duplicates all subsequent logical sends to lane l.
// Logical receives transparently fail over to the cover. The replica
// communicator of each logical rank (used by intra-parallelization for
// task updates) is exposed via Proc.ReplicaComm.
//
// Collectives are implemented as message trees over *logical* ranks on top
// of the logical Send/Recv, so they inherit the same fault tolerance as
// point-to-point traffic: a crash in the middle of an allreduce is covered
// by the twin's send-log replay and receive failover.
//
// As in the paper (§III, footnote 1, and §V-A), the exact replica
// consistency protocol is not the contribution; this package provides a
// functionally equivalent one with crash-stop semantics and an oracle
// failure detector.
package replication

import (
	"fmt"
	"strconv"

	"repro/internal/mpi"
)

// Config configures a replicated system.
type Config struct {
	Logical int  // number of logical MPI ranks
	Degree  int  // replicas per logical rank (the paper uses 2)
	SendLog bool // keep send logs so a cover can replay after a crash
}

// System owns the replica topology and membership.
type System struct {
	w          *mpi.World
	cfg        Config
	alive      [][]bool // [logical][lane]
	epoch      int      // incremented on every replica death
	procs      [][]*Proc
	replComms  []*mpi.Comm // per logical rank: comm of its replicas
	deathSubs  []func(logical, lane int)
	deadDrops  int64 // sends skipped because the destination replica died
	replayMsgs int64 // messages re-sent from a send log after a crash
	hdrFree    []*hdr
}

// getHdr draws a replication header from the pool. Receivers return it via
// putHdr the moment accept unwraps the message, so steady-state traffic
// carries headers without boxing one per physical send. Headers on dropped
// or never-received messages simply stay out of the pool.
func (s *System) getHdr(seq uint64, user any) *hdr {
	if n := len(s.hdrFree); n > 0 {
		h := s.hdrFree[n-1]
		s.hdrFree[n-1] = nil
		s.hdrFree = s.hdrFree[:n-1]
		h.Seq, h.User = seq, user
		return h
	}
	return &hdr{Seq: seq, User: user}
}

func (s *System) putHdr(h *hdr) {
	h.User = nil
	s.hdrFree = append(s.hdrFree, h)
}

// New builds a replicated system over w. The world must have exactly
// Logical*Degree ranks. Physical placement: replica (r, l) is world rank
// l*Logical + r, which with block node placement puts the two replicas of
// every logical rank on different nodes, as required by the paper's setup
// (§V-B) whenever Logical is a multiple of the node width.
func New(w *mpi.World, cfg Config) *System {
	if cfg.Degree < 1 {
		panic("replication: degree must be >= 1")
	}
	if w.Size() != cfg.Logical*cfg.Degree {
		panic(fmt.Sprintf("replication: world size %d != logical %d * degree %d",
			w.Size(), cfg.Logical, cfg.Degree))
	}
	s := &System{w: w, cfg: cfg}
	// Backing arrays for the per-logical tables are single slabs; campaigns
	// build one System per trial, so construction cost is on the hot path.
	s.alive = make([][]bool, cfg.Logical)
	s.procs = make([][]*Proc, cfg.Logical)
	aliveSlab := make([]bool, cfg.Logical*cfg.Degree)
	procSlab := make([]*Proc, cfg.Logical*cfg.Degree)
	for r := range s.alive {
		s.alive[r] = aliveSlab[r*cfg.Degree : (r+1)*cfg.Degree : (r+1)*cfg.Degree]
		s.procs[r] = procSlab[r*cfg.Degree : (r+1)*cfg.Degree : (r+1)*cfg.Degree]
		for l := range s.alive[r] {
			s.alive[r][l] = true
		}
	}
	s.replComms = make([]*mpi.Comm, cfg.Logical)
	memberSlab := make([]int, cfg.Logical*cfg.Degree)
	for r := 0; r < cfg.Logical; r++ {
		members := memberSlab[r*cfg.Degree : (r+1)*cfg.Degree : (r+1)*cfg.Degree]
		for l := 0; l < cfg.Degree; l++ {
			members[l] = s.PhysRank(r, l)
		}
		s.replComms[r] = w.NewComm(members)
	}
	w.OnDeath(s.onDeath)
	return s
}

// World returns the underlying MPI world.
func (s *System) World() *mpi.World { return s.w }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Epoch returns the membership epoch (number of deaths observed).
func (s *System) Epoch() int { return s.epoch }

// PhysRank maps (logical, lane) to a world rank.
func (s *System) PhysRank(logical, lane int) int { return lane*s.cfg.Logical + logical }

// LogicalOf maps a world rank back to (logical, lane).
func (s *System) LogicalOf(phys int) (logical, lane int) {
	return phys % s.cfg.Logical, phys / s.cfg.Logical
}

// Alive reports whether replica (logical, lane) is alive.
func (s *System) Alive(logical, lane int) bool { return s.alive[logical][lane] }

// AliveLanes returns the lanes on which logical rank r still has replicas,
// in ascending order.
func (s *System) AliveLanes(r int) []int {
	var lanes []int
	for l, a := range s.alive[r] {
		if a {
			lanes = append(lanes, l)
		}
	}
	return lanes
}

// Cover returns the lane whose replica of r is responsible for lane l's
// traffic: l itself if alive, otherwise the lowest alive lane. ok is false
// when every replica of r is dead (the logical process is lost and, per the
// paper's model, the application would restart from a checkpoint).
func (s *System) Cover(r, l int) (lane int, ok bool) {
	if s.alive[r][l] {
		return l, true
	}
	for c, a := range s.alive[r] {
		if a {
			return c, true
		}
	}
	return 0, false
}

// KillReplica crash-stops replica (logical, lane). Engine context only.
func (s *System) KillReplica(logical, lane int) {
	s.w.Kill(s.PhysRank(logical, lane))
}

// OnReplicaDeath registers a callback invoked in engine context after
// membership and coverage have been updated for a death.
func (s *System) OnReplicaDeath(fn func(logical, lane int)) {
	s.deathSubs = append(s.deathSubs, fn)
}

// onDeath is the mpi death hook: update membership and replay the cover's
// send log toward the orphaned lane.
func (s *System) onDeath(phys int) {
	r, l := s.LogicalOf(phys)
	if !s.alive[r][l] {
		return
	}
	s.alive[r][l] = false
	s.epoch++
	if cover, ok := s.Cover(r, l); ok && s.cfg.SendLog {
		cp := s.procs[r][cover]
		if cp != nil {
			cp.replayTo(l)
		}
	}
	for _, fn := range s.deathSubs {
		fn(r, l)
	}
}

// ReplicaComm returns the communicator over the replicas of logical rank r
// (comm rank == lane). It is fixed for the lifetime of the system; callers
// consult membership for alive lanes.
func (s *System) ReplicaComm(r int) *mpi.Comm { return s.replComms[r] }

// Launch starts program on every replica of every logical rank.
func (s *System) Launch(prefix string, program func(p *Proc)) {
	for l := 0; l < s.cfg.Degree; l++ {
		for r := 0; r < s.cfg.Logical; r++ {
			r, l := r, l
			phys := s.PhysRank(r, l)
			name := prefix + "/r" + strconv.Itoa(r) + "." + strconv.Itoa(l)
			s.w.Launch(name, phys, func(rank *mpi.Rank) {
				p := newProc(s, rank, r, l)
				s.procs[r][l] = p
				program(p)
			})
		}
	}
}
