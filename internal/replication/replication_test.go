package replication

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func testSystem(t *testing.T, logical, degree int, sendLog bool) (*sim.Engine, *System) {
	t.Helper()
	e := sim.New()
	cfg := simnet.Config{
		Latency:        sim.Micros(1),
		Bandwidth:      1e9,
		LocalLatency:   sim.Micros(0.1),
		LocalBandwidth: 1e10,
		CoresPerNode:   2,
	}
	n := logical * degree
	nodes := (n + cfg.CoresPerNode - 1) / cfg.CoresPerNode
	net := simnet.New(e, cfg, nodes)
	w := mpi.NewWorld(e, net, n, perf.Grid5000, nil)
	return e, New(w, Config{Logical: logical, Degree: degree, SendLog: sendLog})
}

func run(t *testing.T, e *sim.Engine) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementMapping(t *testing.T) {
	_, s := testSystem(t, 4, 2, false)
	for r := 0; r < 4; r++ {
		for l := 0; l < 2; l++ {
			phys := s.PhysRank(r, l)
			gr, gl := s.LogicalOf(phys)
			if gr != r || gl != l {
				t.Fatalf("roundtrip (%d,%d) -> %d -> (%d,%d)", r, l, phys, gr, gl)
			}
		}
	}
	// Replicas of the same logical rank must be on different nodes.
	w := s.World()
	for r := 0; r < 4; r++ {
		if w.NodeOf(s.PhysRank(r, 0)) == w.NodeOf(s.PhysRank(r, 1)) {
			t.Fatalf("replicas of %d share a node", r)
		}
	}
}

func TestLogicalSendRecvBothLanes(t *testing.T) {
	e, s := testSystem(t, 2, 2, false)
	got := map[string]float64{}
	s.Launch("app", func(p *Proc) {
		if p.Logical == 0 {
			if err := p.Send(1, 5, []float64{float64(10 + p.Lane)}, nil); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			msg, err := p.Recv(0, 5)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got[fmt.Sprintf("lane%d", p.Lane)] = msg.Data[0]
		}
	})
	run(t, e)
	// Mirrored replication: lane l of rank 1 hears from lane l of rank 0.
	if got["lane0"] != 10 || got["lane1"] != 11 {
		t.Fatalf("got %v", got)
	}
}

func TestLogicalAllreduce(t *testing.T) {
	e, s := testSystem(t, 3, 2, false)
	bad := false
	s.Launch("app", func(p *Proc) {
		v, err := p.AllreduceScalar(mpi.OpSum, float64(p.Logical))
		if err != nil || v != 3 { // 0+1+2
			bad = true
		}
	})
	run(t, e)
	if bad {
		t.Fatal("allreduce wrong")
	}
}

func TestLogicalBarrierAndBcast(t *testing.T) {
	e, s := testSystem(t, 3, 2, false)
	bad := false
	s.Launch("app", func(p *Proc) {
		if err := p.Barrier(); err != nil {
			bad = true
		}
		data := make([]float64, 2)
		if p.Logical == 1 {
			data[0], data[1] = 7, 8
		}
		if err := p.Bcast(1, data); err != nil || data[0] != 7 || data[1] != 8 {
			bad = true
		}
	})
	run(t, e)
	if bad {
		t.Fatal("barrier/bcast wrong")
	}
}

func TestCoverAfterDeath(t *testing.T) {
	e, s := testSystem(t, 2, 2, false)
	s.Launch("app", func(p *Proc) { p.R.Compute(sim.Second) })
	e.At(sim.Millisecond, func() { s.KillReplica(1, 0) })
	run(t, e)
	if s.Alive(1, 0) || !s.Alive(1, 1) {
		t.Fatal("membership wrong")
	}
	if c, ok := s.Cover(1, 0); !ok || c != 1 {
		t.Fatalf("cover = %d, %v", c, ok)
	}
	if c, ok := s.Cover(1, 1); !ok || c != 1 {
		t.Fatalf("cover own lane = %d, %v", c, ok)
	}
	if lanes := s.AliveLanes(1); len(lanes) != 1 || lanes[0] != 1 {
		t.Fatalf("alive lanes = %v", lanes)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d", s.Epoch())
	}
}

func TestRecvFailsOverToCover(t *testing.T) {
	// Lane-0 sender dies before sending; its twin covers lane 0, so the
	// lane-0 receiver still gets the message (via send-log-free duplicate
	// sends, because the twin sends after the death).
	e, s := testSystem(t, 2, 2, true)
	var lane0Got float64
	s.Launch("app", func(p *Proc) {
		switch {
		case p.Logical == 0 && p.Lane == 0:
			p.R.Compute(sim.Second) // never sends; killed at 1ms
		case p.Logical == 0 && p.Lane == 1:
			p.R.Compute(10 * sim.Millisecond) // past the death
			if err := p.Send(1, 3, []float64{42}, nil); err != nil {
				t.Errorf("twin send: %v", err)
			}
		case p.Logical == 1 && p.Lane == 0:
			msg, err := p.Recv(0, 3)
			if err != nil {
				t.Errorf("lane0 recv: %v", err)
				return
			}
			lane0Got = msg.Data[0]
		case p.Logical == 1 && p.Lane == 1:
			msg, err := p.Recv(0, 3)
			if err != nil || msg.Data[0] != 42 {
				t.Errorf("lane1 recv: %v %v", msg, err)
			}
		}
	})
	e.At(sim.Millisecond, func() { s.KillReplica(0, 0) })
	run(t, e)
	if lane0Got != 42 {
		t.Fatalf("lane0 got %v, want 42 via cover", lane0Got)
	}
}

func TestSendLogReplayCoversPastMessages(t *testing.T) {
	// The twin already sent seq 1 and 2 before the lane-0 sender died
	// mid-stream; replay must deliver the messages the lane-0 receiver
	// missed, and dedup must drop the ones it already got.
	e, s := testSystem(t, 2, 2, true)
	var got []float64
	s.Launch("app", func(p *Proc) {
		switch {
		case p.Logical == 0 && p.Lane == 0:
			// Send only message 1, then die (killed at 5ms).
			p.Send(1, 9, []float64{1}, nil)
			p.R.Compute(sim.Second)
		case p.Logical == 0 && p.Lane == 1:
			// Send messages 1..3 promptly.
			for i := 1; i <= 3; i++ {
				p.Send(1, 9, []float64{float64(i)}, nil)
			}
		case p.Logical == 1 && p.Lane == 0:
			for i := 0; i < 3; i++ {
				msg, err := p.Recv(0, 9)
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				got = append(got, msg.Data[0])
			}
		}
	})
	e.At(5*sim.Millisecond, func() { s.KillReplica(0, 0) })
	run(t, e)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("lane0 received %v, want [1 2 3]", got)
	}
	if s.replayMsgs == 0 {
		t.Fatal("expected replayed messages")
	}
}

func TestCollectivesSurviveDeathAtQuiescence(t *testing.T) {
	// A replica dies between collectives; the covering twin joins the
	// orphaned lane's subsequent collectives.
	e, s := testSystem(t, 3, 2, true)
	bad := false
	s.Launch("app", func(p *Proc) {
		v, err := p.AllreduceScalar(mpi.OpSum, 1)
		if err != nil || v != 3 {
			bad = true
			return
		}
		p.R.Compute(20 * sim.Millisecond) // death happens here (at 10ms)
		v, err = p.AllreduceScalar(mpi.OpSum, 2)
		if err != nil || v != 6 {
			t.Errorf("post-death allreduce: lane %d logical %d: %v %v", p.Lane, p.Logical, v, err)
			bad = true
		}
	})
	e.At(10*sim.Millisecond, func() { s.KillReplica(1, 1) })
	run(t, e)
	if bad {
		t.Fatal("collective results wrong")
	}
}

func TestSendSkipsDeadDestination(t *testing.T) {
	e, s := testSystem(t, 2, 2, false)
	s.Launch("app", func(p *Proc) {
		if p.Logical == 0 {
			p.R.Compute(10 * sim.Millisecond)
			if err := p.Send(1, 1, []float64{5}, nil); err != nil {
				t.Errorf("send: %v", err)
			}
		} else if p.Lane == 1 {
			msg, err := p.Recv(0, 1)
			if err != nil || msg.Data[0] != 5 {
				t.Errorf("recv: %v %v", msg, err)
			}
		} else {
			p.R.Compute(sim.Second) // lane 0 receiver killed at 1ms
		}
	})
	e.At(sim.Millisecond, func() { s.KillReplica(1, 0) })
	run(t, e)
	if s.deadDrops == 0 {
		t.Fatal("expected sends to dead replica to be dropped")
	}
}

func TestLogicalRankLost(t *testing.T) {
	e, s := testSystem(t, 2, 2, false)
	var gotErr error
	s.Launch("app", func(p *Proc) {
		if p.Logical == 0 {
			p.R.Compute(sim.Second)
			return
		}
		p.R.Compute(10 * sim.Millisecond)
		_, gotErr = p.Recv(0, 0)
	})
	e.At(sim.Millisecond, func() {
		s.KillReplica(0, 0)
		s.KillReplica(0, 1)
	})
	run(t, e)
	if _, ok := gotErr.(*LogicalRankLostError); !ok {
		t.Fatalf("err = %v, want LogicalRankLostError", gotErr)
	}
	if gotErr.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestReplicaCommIsPerLogicalRank(t *testing.T) {
	_, s := testSystem(t, 3, 2, false)
	for r := 0; r < 3; r++ {
		c := s.ReplicaComm(r)
		if c.Size() != 2 {
			t.Fatalf("replica comm size = %d", c.Size())
		}
		for l := 0; l < 2; l++ {
			if c.WorldRank(l) != s.PhysRank(r, l) {
				t.Fatalf("replica comm member mismatch")
			}
		}
	}
}

func TestDegreeOneDegeneratesToNative(t *testing.T) {
	e, s := testSystem(t, 4, 1, false)
	bad := false
	s.Launch("app", func(p *Proc) {
		v, err := p.AllreduceScalar(mpi.OpSum, 1)
		if err != nil || v != 4 {
			bad = true
		}
		if p.Logical < 3 {
			p.Send(p.Logical+1, 0, []float64{float64(p.Logical)}, nil)
		}
		if p.Logical > 0 {
			msg, err := p.Recv(p.Logical-1, 0)
			if err != nil || msg.Data[0] != float64(p.Logical-1) {
				bad = true
			}
		}
	})
	run(t, e)
	if bad {
		t.Fatal("degree-1 system misbehaved")
	}
}

func TestOnReplicaDeathCallback(t *testing.T) {
	e, s := testSystem(t, 2, 2, false)
	var deaths [][2]int
	s.OnReplicaDeath(func(r, l int) { deaths = append(deaths, [2]int{r, l}) })
	s.Launch("app", func(p *Proc) { p.R.Compute(10 * sim.Millisecond) })
	e.At(sim.Millisecond, func() { s.KillReplica(1, 1) })
	run(t, e)
	if len(deaths) != 1 || deaths[0] != [2]int{1, 1} {
		t.Fatalf("deaths = %v", deaths)
	}
}

// Property: under a random one-replica crash at a random time, a stream of
// sequenced messages from logical 0 to logical 1 is received by every
// surviving replica of rank 1 exactly once, in order, gap-free.
func TestStreamDeliveryUnderCrashProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nMsgs = 8
		e, s := testSystem(t, 2, 2, true)
		recvd := map[int][]float64{}
		s.Launch("app", func(p *Proc) {
			if p.Logical == 0 {
				for i := 1; i <= nMsgs; i++ {
					p.Send(1, 4, []float64{float64(i)}, nil)
					p.R.Compute(sim.Millisecond)
				}
			} else {
				for i := 0; i < nMsgs; i++ {
					msg, err := p.Recv(0, 4)
					if err != nil {
						return
					}
					recvd[p.Lane] = append(recvd[p.Lane], msg.Data[0])
				}
			}
		})
		// Crash one random replica of logical 0 at a random time inside the
		// sending window.
		lane := rng.Intn(2)
		at := sim.Time(rng.Int63n(int64(nMsgs * int(sim.Millisecond))))
		e.At(at, func() { s.KillReplica(0, lane) })
		if err := e.Run(); err != nil {
			return false
		}
		for l := 0; l < 2; l++ {
			if len(recvd[l]) != nMsgs {
				return false
			}
			for i, v := range recvd[l] {
				if v != float64(i+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveAfterLowerLaneDeath(t *testing.T) {
	// Regression: when lane 0 dies, the lane-1 survivor covers lane 0 and
	// runs lane 0's collective *before* its own; the covered lane's result
	// must not pollute the survivor's own contribution.
	e, s := testSystem(t, 3, 2, true)
	bad := false
	s.Launch("app", func(p *Proc) {
		p.R.Compute(20 * sim.Millisecond) // death of (0,0) happens at 10ms
		v, err := p.AllreduceScalar(mpi.OpSum, 2)
		if err != nil || v != 6 {
			t.Errorf("allreduce after lane-0 death: lane %d logical %d: %v %v",
				p.Lane, p.Logical, v, err)
			bad = true
		}
	})
	e.At(10*sim.Millisecond, func() { s.KillReplica(0, 0) })
	run(t, e)
	if bad {
		t.Fatal("collective results wrong")
	}
}

func TestLogicalReduce(t *testing.T) {
	e, s := testSystem(t, 4, 2, false)
	var rootVals []float64
	s.Launch("app", func(p *Proc) {
		data := []float64{float64(p.Logical + 1)}
		if err := p.Reduce(2, mpi.OpSum, data); err != nil {
			t.Errorf("reduce: %v", err)
			return
		}
		if p.Logical == 2 {
			rootVals = append(rootVals, data[0])
		}
	})
	run(t, e)
	if len(rootVals) != 2 || rootVals[0] != 10 || rootVals[1] != 10 {
		t.Fatalf("root values = %v, want [10 10] (both replicas)", rootVals)
	}
}

// TestCrashMidCollective kills a replica while an allreduce is in flight:
// the tree messages it already sent were mirrored per lane, the missing
// ones are replayed by its twin, and every survivor still gets the sum.
func TestCrashMidCollective(t *testing.T) {
	for lane := 0; lane < 2; lane++ {
		for victim := 0; victim < 4; victim++ {
			e, s := testSystem(t, 4, 2, true)
			bad := false
			s.Launch("app", func(p *Proc) {
				// Stagger entries so the kill lands while the tree is active.
				p.R.Compute(sim.Time(p.Logical) * sim.Microsecond)
				v, err := p.AllreduceScalar(mpi.OpSum, float64(p.Logical+1))
				if err != nil {
					t.Errorf("victim=%d lane=%d: logical %d lane %d: %v",
						victim, lane, p.Logical, p.Lane, err)
					return
				}
				if v != 10 {
					bad = true
				}
			})
			// Somewhere inside the staggered allreduce window.
			e.At(2*sim.Microsecond, func() { s.KillReplica(victim, lane) })
			run(t, e)
			if bad {
				t.Fatalf("victim=%d lane=%d: wrong allreduce result", victim, lane)
			}
		}
	}
}

// TestBcastSurvivesRootReplicaCrash kills one replica of the broadcast
// root mid-run.
func TestBcastSurvivesRootReplicaCrash(t *testing.T) {
	e, s := testSystem(t, 4, 2, true)
	bad := false
	s.Launch("app", func(p *Proc) {
		p.R.Compute(sim.Time(p.Logical) * sim.Microsecond)
		data := make([]float64, 3)
		if p.Logical == 0 {
			data[0], data[1], data[2] = 5, 6, 7
		}
		if err := p.Bcast(0, data); err != nil {
			t.Errorf("bcast: logical %d lane %d: %v", p.Logical, p.Lane, err)
			return
		}
		if data[0] != 5 || data[2] != 7 {
			bad = true
		}
	})
	e.At(sim.Microsecond, func() { s.KillReplica(0, 0) })
	run(t, e)
	if bad {
		t.Fatal("bcast data wrong after root replica crash")
	}
}

// Property: a random replica crash at a random time during a run of many
// staggered allreduces never changes any survivor's results.
func TestAllreduceStreamUnderCrashProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logical := rng.Intn(5) + 2
		victim := rng.Intn(logical)
		lane := rng.Intn(2)
		at := sim.Time(rng.Int63n(int64(300 * sim.Microsecond)))
		e, s := testSystem(t, logical, 2, true)
		ok := true
		s.Launch("app", func(p *Proc) {
			for i := 1; i <= 5; i++ {
				p.R.Compute(sim.Time(p.Logical+1) * sim.Microsecond)
				v, err := p.AllreduceScalar(mpi.OpSum, float64(i))
				if err != nil {
					ok = false
					return
				}
				if v != float64(i*logical) {
					ok = false
					return
				}
			}
		})
		e.At(at, func() { s.KillReplica(victim, lane) })
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
