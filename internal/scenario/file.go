package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// File is a checked-in scenario file (scenarios/*.json): an optional grid
// plus explicit scenario points, with an optional figure binding that asks
// the CLI to render the results with that figure's table builder.
type File struct {
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`
	// Figure names a figure whose renderer consumes the results (the file
	// then reproduces that figure's table exactly). Empty for generic
	// sweeps.
	Figure    string     `json:"figure,omitempty"`
	Grid      *Grid      `json:"grid,omitempty"`
	Scenarios []Scenario `json:"scenarios,omitempty"`

	// Workload is the job-stream section (sweep -mode jobstream). A
	// workload file carries no grid or scenarios: the workload is the
	// whole experiment.
	Workload *Workload `json:"workload,omitempty"`
}

// Parse decodes a scenario file strictly: unknown fields are typos, not
// extensions (app configs are checked the same way during validation).
func Parse(b []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if f.Grid == nil && len(f.Scenarios) == 0 && f.Workload == nil {
		return nil, fmt.Errorf("scenario: file %q declares neither a grid, scenarios nor a workload", f.Name)
	}
	if f.Workload != nil && (f.Grid != nil || len(f.Scenarios) > 0 || f.Figure != "") {
		return nil, fmt.Errorf("scenario: file %q mixes a workload with a grid, scenarios or a figure", f.Name)
	}
	return &f, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	f, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return f, nil
}

// Expand returns the file's full scenario list — grid points first, then
// the explicit scenarios — with every point validated.
func (f *File) Expand() ([]Scenario, error) {
	var out []Scenario
	if f.Grid != nil {
		scs, err := f.Grid.Expand()
		if err != nil {
			return nil, err
		}
		out = append(out, scs...)
	}
	for _, sc := range f.Scenarios {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}
