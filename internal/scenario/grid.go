package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/perf"
	"repro/internal/simnet"
)

// Grid declares experiment axes and expands to the cross product of
// scenarios, using each app's registered paper protocol (weak-scaling vs
// fixed-size, per-degree problem growth). It is the declarative form of
// the sweep CLI's grid flags, and the "grid" object of scenario files.
type Grid struct {
	// Apps names the applications of the grid (registered names).
	Apps []string `json:"apps"`
	// Modes defaults to all three (native, classic, intra).
	Modes []Mode `json:"modes,omitempty"`
	// Procs is the process-count axis: the physical budget for
	// weak-scaling apps, the logical rank count for fixed-size apps.
	Procs []int `json:"procs"`
	// Degrees is the replication-degree axis (default [2]). Native points
	// ignore it: one native scenario per process count.
	Degrees []int `json:"degrees,omitempty"`
	// Nets / Machines name registered platform models ("" = paper
	// default). Default: one entry, the paper platform.
	Nets     []string `json:"nets,omitempty"`
	Machines []string `json:"machines,omitempty"`
	// Iters / Tasks override the solver iteration (step) count and tasks
	// per section of every point (0 = the figure's defaults).
	Iters int `json:"iters,omitempty"`
	Tasks int `json:"tasks,omitempty"`
	// Intra applies the same intra-engine options to every point.
	Intra *IntraOptions `json:"intra,omitempty"`
	// Ckpt applies the same checkpoint/restart parameters to every
	// ccr-mode point (an error when the grid has no ccr mode).
	Ckpt *CkptOptions `json:"ckpt,omitempty"`
}

// Expand builds the cross product, validating every point. Scenario names
// follow the CLI convention app[/net][/machine]/mode/pN[/dD], with the
// net and machine segments present only when that axis has several values.
func (g Grid) Expand() ([]Scenario, error) {
	if len(g.Apps) == 0 {
		return nil, fmt.Errorf("scenario: grid has no apps")
	}
	if len(g.Procs) == 0 {
		return nil, fmt.Errorf("scenario: grid has no process counts")
	}
	modes := g.Modes
	if len(modes) == 0 {
		modes = Modes
	}
	degrees := g.Degrees
	if len(degrees) == 0 {
		degrees = []int{DefaultDegree}
	}
	nets := g.Nets
	if len(nets) == 0 {
		nets = []string{""}
	}
	machines := g.Machines
	if len(machines) == 0 {
		machines = []string{""}
	}
	for _, p := range g.Procs {
		if p < 1 {
			return nil, fmt.Errorf("scenario: grid process count %d", p)
		}
	}
	for _, d := range degrees {
		if d < 1 {
			return nil, fmt.Errorf("scenario: grid degree %d", d)
		}
	}
	if g.Ckpt.norm() != nil {
		hasCCR := false
		for _, m := range modes {
			hasCCR = hasCCR || m == CCR
		}
		if !hasCCR {
			return nil, fmt.Errorf("scenario: grid sets ckpt options but has no ccr mode")
		}
	}

	var out []Scenario
	for _, appName := range g.Apps {
		ent, err := AppByName(appName)
		if err != nil {
			return nil, err
		}
		if ent.Paper == nil {
			return nil, fmt.Errorf("scenario: app %q has no paper grid binding", appName)
		}
		for _, net := range nets {
			for _, machine := range machines {
				for _, p := range g.Procs {
					for _, mode := range modes {
						for _, d := range degrees {
							if !mode.Replicated() && d != degrees[0] {
								continue // no replicas (native, ccr); one point per p
							}
							sc, err := g.point(ent, net, machine, p, mode, d,
								len(nets) > 1, len(machines) > 1)
							if err != nil {
								return nil, err
							}
							out = append(out, sc)
						}
					}
				}
			}
		}
	}
	for _, sc := range out {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// point builds one grid scenario under the app's paper protocol.
func (g Grid) point(ent AppEntry, net, machine string, p int, mode Mode, d int,
	nameNet, nameMachine bool) (Scenario, error) {
	logical := p
	name := ent.Name
	if nameNet {
		name += "/" + PlatformLabel(net, simnet.DefaultNetName)
	}
	if nameMachine {
		name += "/" + PlatformLabel(machine, perf.DefaultMachineName)
	}
	name = fmt.Sprintf("%s/%s/p%d", name, mode, p)
	cfg := ent.Paper(g.Iters, g.Tasks)
	if mode.Replicated() {
		if ent.WeakScaling {
			if p%d != 0 {
				return Scenario{}, fmt.Errorf("scenario: %d processes are not divisible by degree %d", p, d)
			}
			logical = p / d
		}
		if ent.GrowPerDegree != nil {
			ent.GrowPerDegree(cfg, d)
		}
		name = fmt.Sprintf("%s/d%d", name, d)
	}
	if logical < 1 {
		return Scenario{}, fmt.Errorf("scenario: %d processes cannot host degree %d replication", p, d)
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: marshal %s config: %w", ent.Name, err)
	}
	sc := Scenario{
		Name: name, App: ent.Name, Config: raw,
		Mode: mode, Logical: logical, Degree: d,
		Net: net, Machine: machine, Intra: g.Intra,
	}
	if mode == CCR {
		sc.Degree = 0
		sc.Intra = nil // the intra engine never runs in ccr mode
		sc.Ckpt = g.Ckpt.norm()
	}
	return sc, nil
}

// PlatformLabel names a platform axis value for display: the registered
// name, or the default model's name when the value is empty.
func PlatformLabel(name, def string) string {
	if name == "" {
		return def
	}
	return name
}

// PlatformLabels derives the net and machine labels of a scenario list:
// the unique names in first-appearance order, comma-joined. Every output
// path (tables, JSON envelopes) shares them, whether the scenarios came
// from flags, a grid or an explicit list.
func PlatformLabels(scs []Scenario) (net, machine string) {
	var nets, machines []string
	seenNet, seenMachine := map[string]bool{}, map[string]bool{}
	for _, sc := range scs {
		n := PlatformLabel(sc.Net, simnet.DefaultNetName)
		if sc.NetConfig != nil {
			n = "custom"
		}
		if !seenNet[n] {
			seenNet[n] = true
			nets = append(nets, n)
		}
		m := PlatformLabel(sc.Machine, perf.DefaultMachineName)
		if sc.MachineConfig != nil {
			m = "custom"
		}
		if !seenMachine[m] {
			seenMachine[m] = true
			machines = append(machines, m)
		}
	}
	return strings.Join(nets, ","), strings.Join(machines, ",")
}
