package scenario

import "fmt"

// Mode selects the fault-tolerance configuration, matching the three bar
// groups of the paper's figures.
type Mode int

// Modes of the evaluation.
const (
	Native  Mode = iota // unreplicated Open MPI baseline
	Classic             // SDR-MPI: classic state-machine replication
	Intra               // replication with intra-parallelization
	// CCR is simulated coordinated checkpoint/restart: the application
	// runs unreplicated (the cluster simulation is identical to Native),
	// and the campaign layer replays the measured fault-free makespan
	// under periodic checkpoints, rollbacks and restarts (internal/ckptsim)
	// — the §II side the paper's replication argument is measured against.
	CCR
)

// Modes lists the paper's figure modes in presentation order. CCR is a
// campaign-side mode and deliberately not part of the default grid axis.
var Modes = []Mode{Native, Classic, Intra}

// Known reports whether m is one of the defined modes.
func (m Mode) Known() bool { return m >= Native && m <= CCR }

// Replicated reports whether the mode uses process replication.
func (m Mode) Replicated() bool { return m == Classic || m == Intra }

// String returns the display name used in tables and reports ("Open MPI",
// "SDR-MPI", "intra"). Unknown values render as "Mode(n)" so a bad mode is
// visible wherever it leaks, instead of a silent "?".
func (m Mode) String() string {
	switch m {
	case Native:
		return "Open MPI"
	case Classic:
		return "SDR-MPI"
	case Intra:
		return "intra"
	case CCR:
		return "cCR"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Name returns the canonical wire name ("native", "classic", "intra") used
// by scenario files and CLI flags, or "Mode(n)" for unknown values.
func (m Mode) Name() string {
	switch m {
	case Native:
		return "native"
	case Classic:
		return "classic"
	case Intra:
		return "intra"
	case CCR:
		return "ccr"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// MarshalText encodes the mode under its canonical name, making Mode
// JSON-round-trippable wherever it appears. Unknown values are an error,
// not a "?" placeholder.
func (m Mode) MarshalText() ([]byte, error) {
	if !m.Known() {
		return nil, fmt.Errorf("scenario: cannot encode unknown mode %d", int(m))
	}
	return []byte(m.Name()), nil
}

// UnmarshalText decodes a canonical mode name.
func (m *Mode) UnmarshalText(b []byte) error {
	v, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// ParseMode maps a canonical name to its Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "native":
		return Native, nil
	case "classic":
		return Classic, nil
	case "intra":
		return Intra, nil
	case "ccr":
		return CCR, nil
	}
	return 0, fmt.Errorf("scenario: unknown mode %q (native | classic | intra | ccr)", s)
}
