package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// AppRun executes the application on one logical process and reports its
// timings (total, per-kernel, runtime-stat snapshot).
type AppRun func(rt core.Runner) (sim.Time, map[string]*apputil.KernelTime, core.Stats, error)

// AppEntry describes one registered application: how to decode its config
// and how to turn a config into a runnable program, plus the paper's grid
// protocol for CLI sweeps.
type AppEntry struct {
	Name        string
	Description string

	// New returns a pointer to the app's default config; scenario files
	// overlay their "config" object onto it.
	New func() any
	// Run binds a decoded config (the pointer type New returns) to a
	// runnable program.
	Run func(cfg any) (AppRun, error)

	// Paper returns a pointer to the paper-scale config of the app's
	// figure, with the iteration/step and tasks-per-section overrides
	// applied when positive. Used by grid expansion.
	Paper func(iters, tasks int) any
	// WeakScaling marks apps whose grid -procs value is a physical budget
	// (replicated modes run procs/degree logical ranks on a grown per-rank
	// problem, Figure 5); fixed-size apps pin the logical rank count
	// (Figure 6).
	WeakScaling bool
	// GrowPerDegree grows the per-rank problem for replicated runs so the
	// total logical work stays constant on an equal physical budget
	// (weak-scaling apps only).
	GrowPerDegree func(cfg any, degree int)
	// ShrinkPerDegree inverts GrowPerDegree: it recovers the per-rank
	// problem of the unreplicated reference from a degree-grown config.
	// Campaigns built from scenario files use it to reconstruct the same
	// native baseline the CLI grid builds. A config that is not an exact
	// degree-multiple is an error, not a truncation.
	ShrinkPerDegree func(cfg any, degree int) error
}

var (
	appMu      sync.RWMutex
	appsByName = map[string]AppEntry{}
)

// RegisterApp adds an application to the registry. App names are scenario
// currency (files, memo keys, CLI flags), so an empty or duplicate name is
// a programming error and panics.
func RegisterApp(e AppEntry) {
	if e.Name == "" {
		panic("scenario: RegisterApp with empty name")
	}
	if e.New == nil || e.Run == nil {
		panic(fmt.Sprintf("scenario: app %q registered without config decoder or runner factory", e.Name))
	}
	appMu.Lock()
	defer appMu.Unlock()
	if _, dup := appsByName[e.Name]; dup {
		panic(fmt.Sprintf("scenario: app %q registered twice", e.Name))
	}
	appsByName[e.Name] = e
}

// AppByName looks an application up, with an error naming the registered
// apps on a miss.
func AppByName(name string) (AppEntry, error) {
	appMu.RLock()
	defer appMu.RUnlock()
	e, ok := appsByName[name]
	if !ok {
		return AppEntry{}, fmt.Errorf("scenario: unknown app %q (have %s)", name, strings.Join(appNamesLocked(), ", "))
	}
	return e, nil
}

// Apps returns every registered application, sorted by name.
func Apps() []AppEntry {
	appMu.RLock()
	defer appMu.RUnlock()
	out := make([]AppEntry, 0, len(appsByName))
	for _, n := range appNamesLocked() {
		out = append(out, appsByName[n])
	}
	return out
}

// AppNames returns the registered application names, sorted.
func AppNames() []string {
	appMu.RLock()
	defer appMu.RUnlock()
	return appNamesLocked()
}

func appNamesLocked() []string {
	names := make([]string, 0, len(appsByName))
	for n := range appsByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AppFingerprint returns the canonical content key of (app, config): the
// app name plus the canonical JSON encoding of the config. It replaces the
// old fmt.Sprintf("%+v") fingerprints, whose output was neither canonical
// nor stable across struct changes.
func AppFingerprint(name string, cfg any) (string, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("scenario: fingerprint %s config: %w", name, err)
	}
	return name + ":" + string(b), nil
}
