// Package scenario defines the one canonical, serializable description of
// an experiment point — application and its configuration, fault-tolerance
// mode, problem/replication sizing, platform (interconnect and machine
// model), intra-engine options, and fault model — plus the registries that
// make scenarios data instead of code.
//
// Every layer of the evaluation consumes the same type: the sweep runner
// (experiments), Monte Carlo failure campaigns (campaign), the figure
// builders, the CLIs, checked-in scenario files under scenarios/, and CI.
// A Scenario round-trips through JSON, validates itself (no silent default
// substitution), and fingerprints itself with a canonical encoding — the
// memo key of the sweep runner.
//
// Applications self-register (RegisterApp) with a config decoder and a
// runner factory; interconnects and machine models plug in by name via
// simnet.Register and perf.Register.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// DefaultDegree is the replication degree selected by Degree == 0 in
// replicated modes: the paper's configuration (§II argues degree 2 is the
// right choice for crash failures).
const DefaultDegree = 2

// Scenario is one experiment point. The zero values of Degree, Net and
// Machine select the paper's defaults (degree 2, InfiniBand 20G,
// Grid'5000 node); everything else must be spelled out. The type is the
// JSON schema of scenario files (see scenarios/ and README.md).
type Scenario struct {
	// Name labels the point in results and tables. It is not part of the
	// fingerprint: two scenarios differing only in Name are the same
	// simulation.
	Name string `json:"name,omitempty"`

	// App names a registered application; Config is its app-specific
	// configuration, decoded by the app's registry entry over the app's
	// default config (omitted fields keep their defaults).
	App    string          `json:"app"`
	Config json.RawMessage `json:"config,omitempty"`

	Mode    Mode `json:"mode"`
	Logical int  `json:"logical"`          // logical MPI ranks
	Degree  int  `json:"degree,omitempty"` // replication degree (0 = default 2)

	// Net / Machine select registered platform models by name
	// ("" = the paper's platform). NetConfig / MachineConfig instead spell
	// a custom model inline; setting both the name and the inline config
	// for one axis is an error.
	Net           string         `json:"net,omitempty"`
	Machine       string         `json:"machine,omitempty"`
	NetConfig     *simnet.Config `json:"net_config,omitempty"`
	MachineConfig *perf.Machine  `json:"machine_config,omitempty"`

	// Intra configures the intra-parallelization engine (replicated modes).
	Intra *IntraOptions `json:"intra,omitempty"`

	// Ckpt parameterizes the simulated coordinated checkpoint/restart of
	// ccr-mode scenarios. Other modes must leave it unset.
	Ckpt *CkptOptions `json:"ckpt,omitempty"`

	// Fault is the fault model: either an explicit crash schedule (sweep
	// points) or an exponential per-replica MTBF (campaign points).
	Fault *FaultSpec `json:"fault,omitempty"`
}

// CkptOptions are the coordinated checkpoint/restart parameters of a
// ccr-mode scenario, in seconds. Zero values pick campaign defaults:
// delta defaults to 5% of the fault-free wall time, restart to delta, and
// tau to Daly's optimal interval at the scenario's system MTBF.
type CkptOptions struct {
	// TauSeconds is the checkpoint interval (0 = optimal interval).
	TauSeconds float64 `json:"tau_seconds,omitempty"`
	// DeltaSeconds is the cost of writing one checkpoint.
	DeltaSeconds float64 `json:"delta_seconds,omitempty"`
	// RestartSeconds is the cost of restarting after a failure.
	RestartSeconds float64 `json:"restart_seconds,omitempty"`
}

// norm folds the all-zero options into nil, so an explicit empty "ckpt"
// object fingerprints identically to an omitted one.
func (c *CkptOptions) norm() *CkptOptions {
	if c == nil || *c == (CkptOptions{}) {
		return nil
	}
	return c
}

// IntraOptions is the serializable subset of core.Options.
type IntraOptions struct {
	// Inout selects the protection against the §III-B2 true-dependence
	// hazard: "copy" (copy-restore, the default) or "atomic".
	Inout string `json:"inout,omitempty"`
	// CostScale multiplies the modeled size of task arguments (0 = 1).
	CostScale float64 `json:"cost_scale,omitempty"`
}

// CoreOptions converts the serializable options to the engine's form.
func (o *IntraOptions) CoreOptions() (core.Options, error) {
	var opts core.Options
	if o == nil {
		return opts, nil
	}
	switch o.Inout {
	case "", "copy":
		opts.Mode = core.CopyRestore
	case "atomic":
		opts.Mode = core.AtomicApply
	default:
		return core.Options{}, fmt.Errorf("scenario: unknown inout mode %q (copy | atomic)", o.Inout)
	}
	if o.CostScale < 0 {
		return core.Options{}, fmt.Errorf("scenario: negative cost scale %g", o.CostScale)
	}
	opts.CostScale = o.CostScale
	return opts, nil
}

// FaultSpec is the serializable fault model of a scenario.
type FaultSpec struct {
	// MTBFSeconds, when positive, subjects the point to an exponential
	// per-replica failure process: the campaign axis. Sweep points cannot
	// run it directly (a single point has no trial dimension).
	MTBFSeconds float64 `json:"mtbf_seconds,omitempty"`
	// HorizonSeconds bounds the campaign crash-drawing window
	// (0 = the scenario's fault-free wall time).
	HorizonSeconds float64 `json:"horizon_seconds,omitempty"`
	// Crashes is an explicit, reproducible crash schedule.
	Crashes []Crash `json:"crashes,omitempty"`
}

// Crash is one scheduled replica failure.
type Crash struct {
	Logical   int     `json:"logical"`
	Lane      int     `json:"lane"`
	AtSeconds float64 `json:"at_seconds"`
}

// Schedule converts the explicit crashes to the fault layer's form, or nil
// when there are none.
func (f *FaultSpec) Schedule() *fault.Schedule {
	if f == nil || len(f.Crashes) == 0 {
		return nil
	}
	s := &fault.Schedule{Crashes: make([]fault.Crash, len(f.Crashes))}
	for i, c := range f.Crashes {
		s.Crashes[i] = fault.Crash{Logical: c.Logical, Lane: c.Lane, Time: sim.Seconds(c.AtSeconds)}
	}
	return s
}

// fingerprint is the fault model's contribution to the scenario
// fingerprint. An absent or empty model contributes nothing, so a
// fault-free point keys identically with and without the field.
func (f *FaultSpec) fingerprint() string {
	if f == nil {
		return ""
	}
	var b strings.Builder
	if f.MTBFSeconds > 0 || f.HorizonSeconds > 0 {
		fmt.Fprintf(&b, "mtbf%g/h%g;", f.MTBFSeconds, f.HorizonSeconds)
	}
	b.WriteString(f.Schedule().Fingerprint())
	return b.String()
}

// CheckNet validates a custom interconnect model. A config that would
// previously have been silently swapped for the default platform (zero
// bandwidth) is an error instead.
func CheckNet(c simnet.Config) error {
	if c.Bandwidth <= 0 {
		return fmt.Errorf("scenario: custom net has non-positive bandwidth %g B/s", c.Bandwidth)
	}
	if c.LocalBandwidth <= 0 {
		return fmt.Errorf("scenario: custom net has non-positive local bandwidth %g B/s", c.LocalBandwidth)
	}
	if c.Latency < 0 || c.LocalLatency < 0 {
		return fmt.Errorf("scenario: custom net has negative latency")
	}
	if c.CoresPerNode < 0 {
		return fmt.Errorf("scenario: custom net has negative cores per node")
	}
	return nil
}

// CheckMachine validates a custom machine model.
func CheckMachine(m perf.Machine) error {
	if m.FlopsPerCore <= 0 {
		return fmt.Errorf("scenario: custom machine has non-positive flop rate %g", m.FlopsPerCore)
	}
	if m.MemBWPerCore <= 0 {
		return fmt.Errorf("scenario: custom machine has non-positive memory bandwidth %g", m.MemBWPerCore)
	}
	return nil
}

// Platform resolves the scenario's interconnect and machine models:
// registered names, inline custom configs, or the paper's defaults.
func (s Scenario) Platform() (simnet.Config, perf.Machine, error) {
	net := simnet.InfiniBand20G
	switch {
	case s.NetConfig != nil:
		if s.Net != "" {
			return simnet.Config{}, perf.Machine{}, fmt.Errorf("scenario %q: both net %q and an inline net_config", s.Name, s.Net)
		}
		if err := CheckNet(*s.NetConfig); err != nil {
			return simnet.Config{}, perf.Machine{}, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		net = *s.NetConfig
	case s.Net != "":
		n, ok := simnet.Nets[s.Net]
		if !ok {
			return simnet.Config{}, perf.Machine{}, fmt.Errorf("scenario %q: unknown net %q (have %s)",
				s.Name, s.Net, strings.Join(simnet.NetNames(), ", "))
		}
		net = n
	}
	machine := perf.Grid5000
	switch {
	case s.MachineConfig != nil:
		if s.Machine != "" {
			return simnet.Config{}, perf.Machine{}, fmt.Errorf("scenario %q: both machine %q and an inline machine_config", s.Name, s.Machine)
		}
		if err := CheckMachine(*s.MachineConfig); err != nil {
			return simnet.Config{}, perf.Machine{}, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		machine = *s.MachineConfig
	case s.Machine != "":
		m, ok := perf.Machines[s.Machine]
		if !ok {
			return simnet.Config{}, perf.Machine{}, fmt.Errorf("scenario %q: unknown machine %q (have %s)",
				s.Name, s.Machine, strings.Join(perf.MachineNames(), ", "))
		}
		machine = m
	}
	return net, machine, nil
}

// AppConfig decodes the scenario's app configuration: the registered app's
// default config overlaid with the scenario's Config object. Unknown
// fields are an error (they are typos in a scenario file, not extensions).
func (s Scenario) AppConfig() (any, error) {
	ent, err := AppByName(s.App)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	cfg := ent.New()
	if len(s.Config) > 0 {
		dec := json.NewDecoder(bytes.NewReader(s.Config))
		dec.DisallowUnknownFields()
		if err := dec.Decode(cfg); err != nil {
			return nil, fmt.Errorf("scenario %q: bad %s config: %w", s.Name, s.App, err)
		}
	}
	return cfg, nil
}

// EffectiveDegree is the replication degree the point actually runs:
// 1 in native mode, the default 2 when Degree is zero.
func (s Scenario) EffectiveDegree() int {
	if !s.Mode.Replicated() {
		return 1
	}
	if s.Degree == 0 {
		return DefaultDegree
	}
	return s.Degree
}

// PhysProcs is the number of physical processes the point occupies.
func (s Scenario) PhysProcs() int { return s.Logical * s.EffectiveDegree() }

// Validate checks the scenario end to end: registered app, decodable
// config, known mode, positive sizing, resolvable platform, serializable
// intra options, and a coherent fault model. It is the single validation
// path for every consumer (sweep, campaign, CLIs, scenario files).
func (s Scenario) Validate() error {
	if s.App == "" {
		return fmt.Errorf("scenario %q: no application", s.Name)
	}
	if _, err := s.AppConfig(); err != nil {
		return err
	}
	if !s.Mode.Known() {
		return fmt.Errorf("scenario %q: unknown mode %d", s.Name, int(s.Mode))
	}
	if s.Logical < 1 {
		return fmt.Errorf("scenario %q: needs at least 1 logical rank, got %d", s.Name, s.Logical)
	}
	if s.Degree < 0 {
		return fmt.Errorf("scenario %q: negative replication degree %d", s.Name, s.Degree)
	}
	if s.Mode.Replicated() && s.Degree == 1 {
		return fmt.Errorf("scenario %q: %s needs degree >= 2 (or 0 for the default), got 1", s.Name, s.Mode.Name())
	}
	if s.Mode == CCR && s.Degree > 1 {
		return fmt.Errorf("scenario %q: ccr runs unreplicated, got degree %d", s.Name, s.Degree)
	}
	if _, _, err := s.Platform(); err != nil {
		return err
	}
	if _, err := s.Intra.CoreOptions(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.validateCkpt(); err != nil {
		return err
	}
	return s.validateFault()
}

func (s Scenario) validateCkpt() error {
	c := s.Ckpt
	if c == nil {
		return nil
	}
	if s.Mode != CCR && c.norm() != nil {
		return fmt.Errorf("scenario %q: ckpt options require mode ccr, not %s", s.Name, s.Mode.Name())
	}
	if c.TauSeconds < 0 || c.DeltaSeconds < 0 || c.RestartSeconds < 0 {
		return fmt.Errorf("scenario %q: negative ckpt parameter", s.Name)
	}
	return nil
}

func (s Scenario) validateFault() error {
	f := s.Fault
	if f == nil {
		return nil
	}
	if f.MTBFSeconds < 0 || f.HorizonSeconds < 0 {
		return fmt.Errorf("scenario %q: negative MTBF or horizon", s.Name)
	}
	if f.MTBFSeconds > 0 && !s.Mode.Replicated() && s.Mode != CCR {
		return fmt.Errorf("scenario %q: an MTBF fault model requires a replicated or ccr mode, not %s", s.Name, s.Mode.Name())
	}
	if len(f.Crashes) > 0 && !s.Mode.Replicated() {
		// ccr included: explicit crash schedules install on the replication
		// system; the ccr failure process lives in the campaign's replays.
		return fmt.Errorf("scenario %q: a crash schedule requires a replicated mode, not %s", s.Name, s.Mode.Name())
	}
	if f.MTBFSeconds > 0 && len(f.Crashes) > 0 {
		return fmt.Errorf("scenario %q: fault model sets both an MTBF and explicit crashes", s.Name)
	}
	if f.HorizonSeconds > 0 && f.MTBFSeconds == 0 {
		return fmt.Errorf("scenario %q: fault horizon without an MTBF has no effect", s.Name)
	}
	d := s.EffectiveDegree()
	for _, c := range f.Crashes {
		if c.Logical < 0 || c.Logical >= s.Logical {
			return fmt.Errorf("scenario %q: crash names logical rank %d of %d", s.Name, c.Logical, s.Logical)
		}
		if c.Lane < 0 || c.Lane >= d {
			return fmt.Errorf("scenario %q: crash names lane %d of degree %d", s.Name, c.Lane, d)
		}
		if c.AtSeconds < 0 {
			return fmt.Errorf("scenario %q: crash at negative time %g", s.Name, c.AtSeconds)
		}
	}
	return nil
}

// Fingerprint returns the canonical content key of the scenario: the JSON
// encoding of the fully-resolved point (config decoded and re-encoded,
// platform resolved, degree defaulted). Two scenarios with equal
// fingerprints describe identical simulations — the property the sweep
// memo relies on — and any semantic field change changes the key. Name is
// deliberately excluded.
func (s Scenario) Fingerprint() (string, error) {
	cfg, err := s.AppConfig()
	if err != nil {
		return "", err
	}
	net, machine, err := s.Platform()
	if err != nil {
		return "", err
	}
	// Fingerprint the resolved engine options, not the raw strings, so an
	// explicit inout "copy" keys identically to the omitted default — the
	// same normalization the sweep memo key applies.
	opts, err := s.Intra.CoreOptions()
	if err != nil {
		return "", fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	key := struct {
		App       string         `json:"app"`
		Config    any            `json:"config"`
		Mode      Mode           `json:"mode"`
		Logical   int            `json:"logical"`
		Degree    int            `json:"degree"`
		Net       simnet.Config  `json:"net"`
		Machine   perf.Machine   `json:"machine"`
		Inout     core.InoutMode `json:"inout"`
		CostScale float64        `json:"cost_scale"`
		Ckpt      *CkptOptions   `json:"ckpt"`
		Fault     string         `json:"fault"`
	}{s.App, cfg, s.Mode, s.Logical, s.EffectiveDegree(), net, machine,
		opts.Mode, opts.CostScale, s.Ckpt.norm(), s.Fault.fingerprint()}
	b, err := json.Marshal(key)
	if err != nil {
		return "", fmt.Errorf("scenario %q: fingerprint: %w", s.Name, err)
	}
	return string(b), nil
}

// MustRaw marshals an app config for Scenario.Config construction in code.
// It panics on unmarshalable values, which for the concrete config structs
// cannot happen.
func MustRaw(cfg any) json.RawMessage {
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("scenario: marshal config: %v", err))
	}
	return b
}
