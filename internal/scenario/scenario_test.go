package scenario_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/apps/hpccg"
	"repro/internal/perf"
	"repro/internal/scenario"
	"repro/internal/simnet"

	// Register the remaining apps so the registry tests see the full set.
	_ "repro/internal/apps/amg"
	_ "repro/internal/apps/gtc"
	_ "repro/internal/apps/minighost"
)

func TestModeTextRoundTrip(t *testing.T) {
	for _, m := range scenario.Modes {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var back scenario.Mode
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if back != m {
			t.Fatalf("round trip %v -> %s -> %v", m, b, back)
		}
	}
	if _, err := scenario.Mode(7).MarshalText(); err == nil {
		t.Fatal("unknown mode must not encode")
	}
	if _, err := scenario.ParseMode("openmpi"); err == nil {
		t.Fatal("unknown name must not parse")
	}
	if got := scenario.Mode(7).String(); got != "Mode(7)" {
		t.Fatalf("unknown mode string %q", got)
	}
	// Mode marshals under its canonical name inside JSON documents.
	b, err := json.Marshal(scenario.Classic)
	if err != nil || string(b) != `"classic"` {
		t.Fatalf("JSON form %s, %v", b, err)
	}
}

func TestAppRegistry(t *testing.T) {
	names := scenario.AppNames()
	for _, want := range []string{"amg", "gtc", "hpccg", "minighost"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("app %q not registered (have %v)", want, names)
		}
	}
	_, err := scenario.AppByName("nbody")
	if err == nil || !strings.Contains(err.Error(), "hpccg") {
		t.Fatalf("unknown app error must name the registered apps, got %v", err)
	}
	for _, e := range scenario.Apps() {
		if e.Description == "" {
			t.Fatalf("app %q has no description", e.Name)
		}
	}
}

func TestRegisterAppDuplicatePanics(t *testing.T) {
	entry := scenario.AppEntry{
		Name: "scenario-test-dup",
		New:  func() any { return &struct{}{} },
		Run:  func(any) (scenario.AppRun, error) { return nil, nil },
	}
	scenario.RegisterApp(entry)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate app registration must panic")
		}
	}()
	scenario.RegisterApp(entry)
}

func TestPlatformRegistryDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: duplicate registration must panic", name)
			}
		}()
		fn()
	}
	mustPanic("simnet", func() { simnet.Register("ib20g", simnet.Ethernet10G) })
	mustPanic("perf", func() { perf.Register("grid5000", perf.Skylake) })
}

func smallConfig() hpccg.Config {
	return hpccg.Config{
		Nx: 8, Ny: 8, Nz: 8, Iters: 4, Tasks: 8,
		Scale: 64, PlaneScale: 16,
		IntraDdot: true, IntraSparsemv: true,
	}
}

func smallScenario() scenario.Scenario {
	return scenario.Scenario{
		Name: "test/point", App: "hpccg", Config: scenario.MustRaw(smallConfig()),
		Mode: scenario.Intra, Logical: 4, Degree: 2,
		Net: "eth10g", Machine: "skylake",
		Intra: &scenario.IntraOptions{Inout: "atomic", CostScale: 2},
		Fault: &scenario.FaultSpec{Crashes: []scenario.Crash{{Logical: 1, Lane: 0, AtSeconds: 0.5}}},
	}
}

func fingerprint(t *testing.T, sc scenario.Scenario) string {
	t.Helper()
	fp, err := sc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := smallScenario()
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back scenario.Scenario
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", b, b2)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, sc) != fingerprint(t, back) {
		t.Fatal("round trip changed the fingerprint")
	}
}

func TestFingerprintStability(t *testing.T) {
	base := fingerprint(t, smallScenario())
	if base != fingerprint(t, smallScenario()) {
		t.Fatal("identical scenarios must share a fingerprint")
	}

	// Name is a label, not a semantic field.
	named := smallScenario()
	named.Name = "other/name"
	if fingerprint(t, named) != base {
		t.Fatal("a renamed scenario is the same simulation")
	}

	// Degree 0 canonicalizes to the default.
	defaulted := smallScenario()
	defaulted.Degree = 0
	if fingerprint(t, defaulted) != base {
		t.Fatal("degree 0 must fingerprint as the default degree 2")
	}

	// Explicitly spelling the default intra options keys like omitting
	// them: the fingerprint normalizes to resolved engine options.
	spelled := smallScenario()
	spelled.Intra = &scenario.IntraOptions{Inout: "atomic", CostScale: 2}
	if fingerprint(t, spelled) != base {
		t.Fatal("equal resolved intra options must key identically")
	}
	plain := scenario.Scenario{App: "hpccg", Mode: scenario.Intra, Logical: 2}
	copyDefault := plain
	copyDefault.Intra = &scenario.IntraOptions{Inout: "copy"}
	if fingerprint(t, plain) != fingerprint(t, copyDefault) {
		t.Fatal(`explicit inout "copy" is the omitted default and must key identically`)
	}

	// An omitted config decodes to the app default: it keys like the
	// spelled-out default.
	implicit := scenario.Scenario{App: "hpccg", Mode: scenario.Native, Logical: 2}
	explicit := scenario.Scenario{App: "hpccg", Config: scenario.MustRaw(hpccg.DefaultConfig()),
		Mode: scenario.Native, Logical: 2}
	if fingerprint(t, implicit) != fingerprint(t, explicit) {
		t.Fatal("implicit and explicit default configs must key identically")
	}

	// Every semantic change must change the key.
	mutations := map[string]func(*scenario.Scenario){
		"mode":    func(s *scenario.Scenario) { s.Mode = scenario.Classic },
		"logical": func(s *scenario.Scenario) { s.Logical = 8 },
		"degree":  func(s *scenario.Scenario) { s.Degree = 3 },
		"config": func(s *scenario.Scenario) {
			cfg := smallConfig()
			cfg.Iters = 5
			s.Config = scenario.MustRaw(cfg)
		},
		"net":     func(s *scenario.Scenario) { s.Net = "ib20g" },
		"machine": func(s *scenario.Scenario) { s.Machine = "grid5000" },
		"intra":   func(s *scenario.Scenario) { s.Intra = &scenario.IntraOptions{Inout: "copy", CostScale: 2} },
		"fault": func(s *scenario.Scenario) {
			s.Fault = &scenario.FaultSpec{Crashes: []scenario.Crash{{Logical: 1, Lane: 0, AtSeconds: 0.7}}}
		},
	}
	for field, mutate := range mutations {
		sc := smallScenario()
		mutate(&sc)
		if fingerprint(t, sc) == base {
			t.Fatalf("changing %s did not change the fingerprint", field)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]struct {
		mutate func(*scenario.Scenario)
		want   string
	}{
		"unknown app":     {func(s *scenario.Scenario) { s.App = "nbody" }, "unknown app"},
		"config typo":     {func(s *scenario.Scenario) { s.Config = []byte(`{"Nq": 3}`) }, "unknown field"},
		"zero logical":    {func(s *scenario.Scenario) { s.Logical = 0 }, "logical rank"},
		"degree one":      {func(s *scenario.Scenario) { s.Degree = 1 }, "degree"},
		"unknown net":     {func(s *scenario.Scenario) { s.Net = "myrinet" }, "unknown net"},
		"unknown machine": {func(s *scenario.Scenario) { s.Machine = "epyc" }, "unknown machine"},
		"zero-bandwidth custom net": {func(s *scenario.Scenario) {
			s.Net, s.NetConfig = "", &simnet.Config{LocalBandwidth: 1e9}
		}, "bandwidth"},
		"net name plus custom net": {func(s *scenario.Scenario) {
			s.NetConfig = &simnet.Config{Bandwidth: 1e9, LocalBandwidth: 1e9}
		}, "both"},
		"zero-flops custom machine": {func(s *scenario.Scenario) {
			s.Machine, s.MachineConfig = "", &perf.Machine{MemBWPerCore: 1e9}
		}, "flop"},
		"bad inout": {func(s *scenario.Scenario) { s.Intra = &scenario.IntraOptions{Inout: "undo"} }, "inout"},
		"fault on native": {func(s *scenario.Scenario) {
			s.Mode, s.Degree = scenario.Native, 0
		}, "replicated"},
		"mtbf plus crashes": {func(s *scenario.Scenario) {
			s.Fault.MTBFSeconds = 1
		}, "both"},
		"horizon without mtbf": {func(s *scenario.Scenario) {
			s.Fault = &scenario.FaultSpec{HorizonSeconds: 5}
		}, "horizon"},
		"crash lane out of range": {func(s *scenario.Scenario) {
			s.Fault.Crashes[0].Lane = 2
		}, "lane"},
		"crash rank out of range": {func(s *scenario.Scenario) {
			s.Fault.Crashes[0].Logical = 9
		}, "rank"},
	}
	for name, tc := range cases {
		sc := smallScenario()
		tc.mutate(&sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", name, tc.want, err)
		}
	}
	if err := smallScenario().Validate(); err != nil {
		t.Fatalf("the base scenario must validate: %v", err)
	}
}

func TestGridExpandWeakScaling(t *testing.T) {
	g := scenario.Grid{Apps: []string{"hpccg"}, Procs: []int{8}}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 3 {
		t.Fatalf("expected 3 scenarios, got %d", len(scs))
	}
	native, classic, intra := scs[0], scs[1], scs[2]
	if native.Mode != scenario.Native || native.Logical != 8 {
		t.Fatalf("native point wrong: %+v", native)
	}
	if classic.Logical != 4 || intra.Logical != 4 {
		t.Fatalf("weak scaling must halve logical ranks at degree 2: %d/%d", classic.Logical, intra.Logical)
	}
	if native.Name != "hpccg/Open MPI/p8" || intra.Name != "hpccg/intra/p8/d2" {
		t.Fatalf("grid names wrong: %q, %q", native.Name, intra.Name)
	}
	// Replicated per-rank problems grow with the degree.
	ncfg, err := native.AppConfig()
	if err != nil {
		t.Fatal(err)
	}
	rcfg, err := intra.AppConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rcfg.(*hpccg.Config).Nz, 2*ncfg.(*hpccg.Config).Nz; got != want {
		t.Fatalf("replicated Nz = %d, want %d", got, want)
	}

	if _, err := (scenario.Grid{Apps: []string{"hpccg"}, Procs: []int{9},
		Modes: []scenario.Mode{scenario.Intra}}).Expand(); err == nil ||
		!strings.Contains(err.Error(), "divisible") {
		t.Fatalf("odd budget at degree 2 must error, got %v", err)
	}
}

func TestGridExpandFixedSizeAndDedup(t *testing.T) {
	g := scenario.Grid{Apps: []string{"gtc"}, Procs: []int{6}, Degrees: []int{2, 3}}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// native once (degree axis collapses), classic and intra per degree.
	natives := 0
	for _, sc := range scs {
		if sc.Mode == scenario.Native {
			natives++
		}
		if sc.Logical != 6 {
			t.Fatalf("fixed-size app must pin logical ranks: %+v", sc)
		}
	}
	if natives != 1 || len(scs) != 5 {
		t.Fatalf("expected 1 native + 4 replicated, got %d natives of %d", natives, len(scs))
	}
}

func TestGridExpandPlatformAxes(t *testing.T) {
	g := scenario.Grid{Apps: []string{"gtc"}, Procs: []int{4},
		Modes: []scenario.Mode{scenario.Intra}, Nets: []string{"ib20g", "eth10g"}}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("expected one point per net, got %d", len(scs))
	}
	if !strings.Contains(scs[0].Name, "ib20g") || !strings.Contains(scs[1].Name, "eth10g") {
		t.Fatalf("multi-net grids must name the net: %q, %q", scs[0].Name, scs[1].Name)
	}
	if _, err := (scenario.Grid{Apps: []string{"gtc"}, Procs: []int{4},
		Nets: []string{"myrinet"}}).Expand(); err == nil {
		t.Fatal("unknown net in a grid must error")
	}
}

func TestFileParse(t *testing.T) {
	if _, err := scenario.Parse([]byte(`{"scenarios": [], "grids": {}}`)); err == nil {
		t.Fatal("unknown top-level field must error")
	}
	if _, err := scenario.Parse([]byte(`{"name": "empty"}`)); err == nil {
		t.Fatal("a file without grid or scenarios must error")
	}
	f, err := scenario.Parse([]byte(`{
		"name": "demo",
		"grid": {"apps": ["gtc"], "procs": [4], "modes": ["native", "intra"]},
		"scenarios": [{"app": "hpccg", "mode": "classic", "logical": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := f.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 3 {
		t.Fatalf("grid (2) + explicit (1) = %d", len(scs))
	}
	if scs[2].App != "hpccg" || scs[2].Mode != scenario.Classic {
		t.Fatalf("explicit scenario mangled: %+v", scs[2])
	}
}

func TestFaultSpecSchedule(t *testing.T) {
	var nilSpec *scenario.FaultSpec
	if nilSpec.Schedule() != nil {
		t.Fatal("nil fault spec must give a nil schedule")
	}
	f := &scenario.FaultSpec{Crashes: []scenario.Crash{{Logical: 1, Lane: 1, AtSeconds: 0.25}}}
	s := f.Schedule()
	if len(s.Crashes) != 1 || s.Crashes[0].Time.Seconds() != 0.25 {
		t.Fatalf("schedule conversion wrong: %+v", s)
	}
}

// TestCCRMode covers the checkpoint/restart scenario axis: the canonical
// name round-trips, ckpt options validate and fingerprint, and the fault
// model accepts an MTBF (the campaign axis) but no explicit crashes.
func TestCCRMode(t *testing.T) {
	if !scenario.CCR.Known() || scenario.CCR.Replicated() {
		t.Fatal("ccr must be known and unreplicated")
	}
	m, err := scenario.ParseMode("ccr")
	if err != nil || m != scenario.CCR {
		t.Fatalf("ParseMode(ccr) = %v, %v", m, err)
	}
	if scenario.CCR.String() != "cCR" || scenario.CCR.Name() != "ccr" {
		t.Fatalf("ccr names: %q / %q", scenario.CCR.String(), scenario.CCR.Name())
	}

	sc := scenario.Scenario{
		App: "gtc", Mode: scenario.CCR, Logical: 4,
		Ckpt:  &scenario.CkptOptions{TauSeconds: 0.1, DeltaSeconds: 0.01},
		Fault: &scenario.FaultSpec{MTBFSeconds: 0.5},
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid ccr scenario rejected: %v", err)
	}
	if sc.EffectiveDegree() != 1 || sc.PhysProcs() != 4 {
		t.Fatalf("ccr sizing: degree %d, phys %d", sc.EffectiveDegree(), sc.PhysProcs())
	}

	// JSON round trip keeps mode and ckpt options.
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"mode":"ccr"`) || !strings.Contains(string(b), `"tau_seconds":0.1`) {
		t.Fatalf("ccr JSON missing fields: %s", b)
	}
	var back scenario.Scenario
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Mode != scenario.CCR || back.Ckpt == nil || back.Ckpt.TauSeconds != 0.1 {
		t.Fatalf("round trip mangled ccr scenario: %+v", back)
	}

	// Ckpt options change the fingerprint; nil and the empty object do not
	// differ from each other.
	fp := func(s scenario.Scenario) string {
		t.Helper()
		k, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := sc
	base.Fault = nil
	other := base
	other.Ckpt = &scenario.CkptOptions{TauSeconds: 0.2, DeltaSeconds: 0.01}
	if fp(base) == fp(other) {
		t.Fatal("different ckpt intervals must fingerprint differently")
	}
	noCkpt, emptyCkpt := base, base
	noCkpt.Ckpt = nil
	emptyCkpt.Ckpt = &scenario.CkptOptions{}
	if fp(noCkpt) != fp(emptyCkpt) {
		t.Fatal("nil and empty ckpt options must key identically")
	}

	// Invalid combinations.
	bad := sc
	bad.Mode = scenario.Intra
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "ckpt") {
		t.Fatalf("ckpt options outside ccr mode: %v", err)
	}
	bad = sc
	bad.Ckpt = &scenario.CkptOptions{DeltaSeconds: -1}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative ckpt parameter: %v", err)
	}
	bad = sc
	bad.Degree = 2
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "unreplicated") {
		t.Fatalf("ccr with replicas: %v", err)
	}
	bad = sc
	bad.Fault = &scenario.FaultSpec{Crashes: []scenario.Crash{{Logical: 0, Lane: 0, AtSeconds: 0.1}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "crash schedule") {
		t.Fatalf("ccr with explicit crashes: %v", err)
	}
	// Native still rejects MTBF models.
	bad = scenario.Scenario{App: "gtc", Mode: scenario.Native, Logical: 4,
		Fault: &scenario.FaultSpec{MTBFSeconds: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("native with an MTBF fault model must stay invalid")
	}
}

// TestGridCCRMode: ccr points expand once per process count (no degree
// axis), carry the grid's ckpt options, and a ckpt block without a ccr
// mode is an error.
func TestGridCCRMode(t *testing.T) {
	g := scenario.Grid{
		Apps:    []string{"gtc"},
		Modes:   []scenario.Mode{scenario.CCR, scenario.Intra},
		Procs:   []int{4},
		Degrees: []int{2, 3},
		Ckpt:    &scenario.CkptOptions{DeltaSeconds: 0.02},
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var ccr, intra int
	for _, sc := range scs {
		switch sc.Mode {
		case scenario.CCR:
			ccr++
			if sc.Ckpt == nil || sc.Ckpt.DeltaSeconds != 0.02 {
				t.Fatalf("ccr point lost the grid ckpt options: %+v", sc)
			}
			if sc.Degree != 0 {
				t.Fatalf("ccr point carries degree %d", sc.Degree)
			}
		case scenario.Intra:
			intra++
			if sc.Ckpt != nil {
				t.Fatalf("replicated point gained ckpt options: %+v", sc)
			}
		}
	}
	if ccr != 1 || intra != 2 {
		t.Fatalf("grid expanded to %d ccr + %d intra points, want 1 + 2", ccr, intra)
	}

	g.Modes = []scenario.Mode{scenario.Intra}
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "ccr") {
		t.Fatalf("ckpt options without a ccr mode: %v", err)
	}
}
