package scenario

import (
	"encoding/json"
	"fmt"
)

// DefaultCkptDeltaFrac is the checkpoint cost assumed by job-stream
// fault-tolerance policies when the workload leaves it unset: 5% of the
// job's fault-free wall time, the same default the campaign layer uses.
const DefaultCkptDeltaFrac = 0.05

// DefaultSlowdownBound is the bounded-slowdown denominator floor (in
// virtual seconds) when the workload leaves it unset. It plays the role
// of the customary 10-second threshold on real traces, scaled to the
// sub-second virtual makespans of the simulated mini-apps.
const DefaultSlowdownBound = 0.01

// JobClass is one kind of job a workload's load generator submits: a
// registered application at a fixed scale, drawn with the given weight.
type JobClass struct {
	// Name labels the class in reports; it defaults to the app name and is
	// not part of any fingerprint.
	Name string `json:"name,omitempty"`

	// App names a registered application; Config is its configuration,
	// decoded exactly like Scenario.Config.
	App    string          `json:"app"`
	Config json.RawMessage `json:"config,omitempty"`

	// Logical is the job's requested rank count: the nodes a native run
	// occupies. A policy choosing replication doubles the footprint.
	Logical int `json:"logical"`

	// Weight is the class's relative draw probability (0 = 1).
	Weight float64 `json:"weight,omitempty"`
}

// Label is the class's display name: Name, or the app name.
func (c JobClass) Label() string {
	if c.Name != "" {
		return c.Name
	}
	return c.App
}

// EffWeight is the class's draw weight with the default applied.
func (c JobClass) EffWeight() float64 {
	if c.Weight == 0 {
		return 1
	}
	return c.Weight
}

// Workload describes an open-load job-stream experiment (sweep -mode
// jobstream): a seeded Poisson arrival process of jobs drawn from a class
// mix, submitted to a shared cluster of Nodes nodes, scheduled by each of
// the named schedulers and protected by each of the named fault-tolerance
// policies — every (rate, scheduler, policy) cell replaying the identical
// arrival stream and node-failure trace. It is the "workload" section of a
// scenario file.
type Workload struct {
	// Nodes is the shared cluster size.
	Nodes int `json:"nodes"`

	// Net / Machine select registered platform models by name
	// ("" = the paper's platform), exactly as in Scenario.
	Net     string `json:"net,omitempty"`
	Machine string `json:"machine,omitempty"`

	// Jobs is the number of arrivals per trial.
	Jobs int `json:"jobs"`

	// Rates is the arrival-rate axis (jobs per virtual second): the
	// workload's grid dimension. Every rate replays the same underlying
	// interarrival draws scaled by 1/rate (common random numbers).
	Rates []float64 `json:"rates_jobs_per_sec"`

	// MTBFSeconds is the per-node exponential MTBF driving the shared
	// node-failure trace (0 = no failures).
	MTBFSeconds float64 `json:"mtbf_seconds,omitempty"`

	// CkptDeltaFrac is the checkpoint cost as a fraction of a job's
	// fault-free wall time, for policies that pick checkpoint/restart
	// (0 = DefaultCkptDeltaFrac).
	CkptDeltaFrac float64 `json:"ckpt_delta_frac,omitempty"`

	// BoundSeconds floors the bounded-slowdown denominator
	// (0 = DefaultSlowdownBound).
	BoundSeconds float64 `json:"bound_seconds,omitempty"`

	// Seed drives arrivals, class draws and the failure trace. The CLI's
	// -seed overrides it; 0 here and there means seed 1.
	Seed int64 `json:"seed,omitempty"`

	// Mix is the job-class distribution.
	Mix []JobClass `json:"mix"`

	// Schedulers and Policies name the registered schedulers and
	// fault-tolerance policies to compare side by side (see sweep -list).
	// Name resolution lives in internal/jobstream; Validate only checks
	// shape here.
	Schedulers []string `json:"schedulers"`
	Policies   []string `json:"policies"`
}

// DeltaFrac is CkptDeltaFrac with the default applied.
func (w Workload) DeltaFrac() float64 {
	if w.CkptDeltaFrac == 0 {
		return DefaultCkptDeltaFrac
	}
	return w.CkptDeltaFrac
}

// SlowdownBound is BoundSeconds with the default applied.
func (w Workload) SlowdownBound() float64 {
	if w.BoundSeconds == 0 {
		return DefaultSlowdownBound
	}
	return w.BoundSeconds
}

// platformScenario adapts the workload's platform fields to the Scenario
// resolution path, so both speak the same registry and errors.
func (w Workload) platformScenario() Scenario {
	return Scenario{Name: "workload", Net: w.Net, Machine: w.Machine}
}

// Validate checks the workload end to end: sizing, rate axis, class mix
// (registered apps, decodable configs, jobs that fit the cluster),
// resolvable platform, and non-empty scheduler/policy axes. Scheduler and
// policy names resolve against the jobstream registries at run time.
func (w Workload) Validate() error {
	if w.Nodes < 1 {
		return fmt.Errorf("workload: needs at least 1 node, got %d", w.Nodes)
	}
	if w.Jobs < 1 {
		return fmt.Errorf("workload: needs at least 1 job per trial, got %d", w.Jobs)
	}
	if len(w.Rates) == 0 {
		return fmt.Errorf("workload: empty rates_jobs_per_sec axis")
	}
	for _, r := range w.Rates {
		if !(r > 0) {
			return fmt.Errorf("workload: arrival rate %g must be positive", r)
		}
	}
	if w.MTBFSeconds < 0 {
		return fmt.Errorf("workload: negative mtbf_seconds %g", w.MTBFSeconds)
	}
	if w.CkptDeltaFrac < 0 || w.CkptDeltaFrac >= 1 {
		return fmt.Errorf("workload: ckpt_delta_frac %g outside [0, 1)", w.CkptDeltaFrac)
	}
	if w.BoundSeconds < 0 {
		return fmt.Errorf("workload: negative bound_seconds %g", w.BoundSeconds)
	}
	if len(w.Mix) == 0 {
		return fmt.Errorf("workload: empty job mix")
	}
	for i, c := range w.Mix {
		if c.Weight < 0 {
			return fmt.Errorf("workload: class %q has negative weight %g", c.Label(), c.Weight)
		}
		if c.Logical < 1 {
			return fmt.Errorf("workload: class %q needs at least 1 logical rank, got %d", c.Label(), c.Logical)
		}
		if c.Logical > w.Nodes {
			return fmt.Errorf("workload: class %q needs %d nodes but the cluster has %d", c.Label(), c.Logical, w.Nodes)
		}
		sc := Scenario{Name: c.Label(), App: c.App, Config: c.Config}
		if c.App == "" {
			return fmt.Errorf("workload: class %d has no application", i)
		}
		if _, err := sc.AppConfig(); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	if _, _, err := w.platformScenario().Platform(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if err := checkAxis("schedulers", w.Schedulers); err != nil {
		return err
	}
	return checkAxis("policies", w.Policies)
}

// checkAxis rejects empty, blank or duplicate side-by-side axis entries
// (a duplicate would emit two indistinguishable result groups).
func checkAxis(what string, names []string) error {
	if len(names) == 0 {
		return fmt.Errorf("workload: empty %s axis", what)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			return fmt.Errorf("workload: blank name in %s axis", what)
		}
		if seen[n] {
			return fmt.Errorf("workload: duplicate %q in %s axis", n, what)
		}
		seen[n] = true
	}
	return nil
}

// classFP is a job class's contribution to workload fingerprints: the
// app-config content key plus the resolved scale and weight. Name is
// deliberately excluded, like Scenario.Name.
type classFP struct {
	App     string  `json:"app"`
	Logical int     `json:"logical"`
	Weight  float64 `json:"weight"`
}

func (w Workload) classFPs() ([]classFP, error) {
	out := make([]classFP, len(w.Mix))
	for i, c := range w.Mix {
		cfg, err := Scenario{Name: c.Label(), App: c.App, Config: c.Config}.AppConfig()
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		afp, err := AppFingerprint(c.App, cfg)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		out[i] = classFP{App: afp, Logical: c.Logical, Weight: c.EffWeight()}
	}
	return out, nil
}

// StreamFingerprint canonically encodes one arrival-stream point: the
// workload resolved (platform models inlined, defaults applied, class
// configs content-keyed) at a single rate, without the scheduler/policy
// axes or the seed. Two equal stream fingerprints under the same seed and
// trial index generate identical arrival streams and failure traces —
// the content key the jobstream result store builds on.
func (w Workload) StreamFingerprint(rate float64) (string, error) {
	net, machine, err := w.platformScenario().Platform()
	if err != nil {
		return "", fmt.Errorf("workload: %w", err)
	}
	classes, err := w.classFPs()
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(struct {
		Nodes     int       `json:"nodes"`
		Net       any       `json:"net"`
		Machine   any       `json:"machine"`
		Jobs      int       `json:"jobs"`
		Rate      float64   `json:"rate"`
		MTBF      float64   `json:"mtbf"`
		DeltaFrac float64   `json:"delta_frac"`
		Bound     float64   `json:"bound"`
		Mix       []classFP `json:"mix"`
	}{w.Nodes, net, machine, w.Jobs, rate, w.MTBFSeconds, w.DeltaFrac(), w.SlowdownBound(), classes})
	if err != nil {
		return "", fmt.Errorf("workload: fingerprint: %w", err)
	}
	return string(b), nil
}

// Fingerprint is the canonical content key of the whole workload: every
// stream point plus the seed and the scheduler/policy axes. Class and
// workload names are excluded.
func (w Workload) Fingerprint() (string, error) {
	streams := make([]string, len(w.Rates))
	for i, r := range w.Rates {
		fp, err := w.StreamFingerprint(r)
		if err != nil {
			return "", err
		}
		streams[i] = fp
	}
	b, err := json.Marshal(struct {
		Streams    []string `json:"streams"`
		Seed       int64    `json:"seed"`
		Schedulers []string `json:"schedulers"`
		Policies   []string `json:"policies"`
	}{streams, w.Seed, w.Schedulers, w.Policies})
	if err != nil {
		return "", fmt.Errorf("workload: fingerprint: %w", err)
	}
	return string(b), nil
}

// Points expands the rate axis: one single-rate workload per rate, in
// axis order — the jobstream analogue of Grid.Expand.
func (w Workload) Points() []Workload {
	out := make([]Workload, len(w.Rates))
	for i, r := range w.Rates {
		p := w
		p.Rates = []float64{r}
		out[i] = p
	}
	return out
}
