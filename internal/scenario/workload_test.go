package scenario_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenario"

	_ "repro/internal/apps/gtc"
	_ "repro/internal/apps/hpccg"
)

func workloadFile(t *testing.T) *scenario.File {
	t.Helper()
	f, err := scenario.Parse([]byte(`{
		"name": "wl",
		"workload": {
			"nodes": 16,
			"jobs": 20,
			"rates_jobs_per_sec": [2, 5],
			"mtbf_seconds": 10,
			"seed": 7,
			"mix": [
				{"name": "a", "app": "hpccg", "config": {"Iters": 3}, "logical": 4, "weight": 2},
				{"app": "gtc", "config": {"Steps": 2}, "logical": 2}
			],
			"schedulers": ["fcfs", "easy"],
			"policies": ["native", "replicate"]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWorkloadFileRoundTrip(t *testing.T) {
	f := workloadFile(t)
	w := f.Workload
	if w == nil {
		t.Fatal("workload section lost in parse")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Nodes != 16 || w.Jobs != 20 || len(w.Rates) != 2 || len(w.Mix) != 2 {
		t.Fatalf("fields lost: %+v", w)
	}
	if got := w.Mix[1].Label(); got != "gtc" {
		t.Fatalf("unnamed class should label by app, got %q", got)
	}
	if got := w.Mix[1].EffWeight(); got != 1 {
		t.Fatalf("zero weight should default to 1, got %g", got)
	}

	// Marshal and reparse: the workload survives a JSON round trip intact.
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := f.Workload.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := back.Workload.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint changed across round trip:\n%s\n%s", fp1, fp2)
	}
}

func TestWorkloadFileShape(t *testing.T) {
	if _, err := scenario.Parse([]byte(`{"name": "x"}`)); err == nil {
		t.Fatal("file with no grid, scenarios or workload should fail")
	}
	mixed := `{"name": "x", "grid": {"apps": ["hpccg"]}, "workload": {"nodes": 1, "jobs": 1,
		"rates_jobs_per_sec": [1], "mix": [{"app": "hpccg", "logical": 1}],
		"schedulers": ["fcfs"], "policies": ["native"]}}`
	if _, err := scenario.Parse([]byte(mixed)); err == nil || !strings.Contains(err.Error(), "mixes") {
		t.Fatalf("workload+grid file should fail with a mix error, got %v", err)
	}
}

func TestWorkloadValidate(t *testing.T) {
	base := func() scenario.Workload { return *workloadFile(t).Workload }
	cases := []struct {
		name string
		mut  func(*scenario.Workload)
		want string
	}{
		{"no nodes", func(w *scenario.Workload) { w.Nodes = 0 }, "node"},
		{"no jobs", func(w *scenario.Workload) { w.Jobs = 0 }, "job"},
		{"empty rates", func(w *scenario.Workload) { w.Rates = nil }, "rates"},
		{"bad rate", func(w *scenario.Workload) { w.Rates = []float64{2, -1} }, "rate"},
		{"negative mtbf", func(w *scenario.Workload) { w.MTBFSeconds = -1 }, "mtbf"},
		{"delta frac", func(w *scenario.Workload) { w.CkptDeltaFrac = 1 }, "ckpt_delta_frac"},
		{"negative bound", func(w *scenario.Workload) { w.BoundSeconds = -1 }, "bound"},
		{"empty mix", func(w *scenario.Workload) { w.Mix = nil }, "mix"},
		{"unknown app", func(w *scenario.Workload) { w.Mix[0].App = "nope" }, "nope"},
		{"bad config", func(w *scenario.Workload) { w.Mix[0].Config = json.RawMessage(`{"Bogus": 1}`) }, "config"},
		{"zero logical", func(w *scenario.Workload) { w.Mix[0].Logical = 0 }, "logical"},
		{"class too wide", func(w *scenario.Workload) { w.Mix[0].Logical = 99 }, "nodes"},
		{"negative weight", func(w *scenario.Workload) { w.Mix[0].Weight = -1 }, "weight"},
		{"bad net", func(w *scenario.Workload) { w.Net = "nope" }, "net"},
		{"no schedulers", func(w *scenario.Workload) { w.Schedulers = nil }, "schedulers"},
		{"dup scheduler", func(w *scenario.Workload) { w.Schedulers = []string{"fcfs", "fcfs"} }, "duplicate"},
		{"blank policy", func(w *scenario.Workload) { w.Policies = []string{"native", ""} }, "blank"},
		{"dup policy", func(w *scenario.Workload) { w.Policies = []string{"native", "native"} }, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := base()
			tc.mut(&w)
			err := w.Validate()
			if err == nil {
				t.Fatal("validation should fail")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q should mention %q", err, tc.want)
			}
		})
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("unmutated workload should validate: %v", err)
	}
}

func TestWorkloadFingerprints(t *testing.T) {
	w := *workloadFile(t).Workload

	// The stream fingerprint carries the rate but not the seed or the
	// scheduler/policy axes: cells at different rates never collide, and
	// renaming axes or reseeding does not invalidate stream identity.
	fpA, err := w.StreamFingerprint(2)
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := w.StreamFingerprint(5)
	if err != nil {
		t.Fatal(err)
	}
	if fpA == fpB {
		t.Fatal("different rates must fingerprint differently")
	}
	mut := w
	mut.Seed = 99
	mut.Schedulers = []string{"other"}
	mutFP, err := mut.StreamFingerprint(2)
	if err != nil {
		t.Fatal(err)
	}
	if mutFP != fpA {
		t.Fatal("seed and axes must not enter the stream fingerprint")
	}

	// Class names are cosmetic; class configs are content.
	named := w
	named.Mix = append([]scenario.JobClass(nil), w.Mix...)
	named.Mix[0].Name = "renamed"
	namedFP, err := named.StreamFingerprint(2)
	if err != nil {
		t.Fatal(err)
	}
	if namedFP != fpA {
		t.Fatal("class names must not enter the stream fingerprint")
	}
	resized := w
	resized.Mix = append([]scenario.JobClass(nil), w.Mix...)
	resized.Mix[0].Config = json.RawMessage(`{"Iters": 4}`)
	resizedFP, err := resized.StreamFingerprint(2)
	if err != nil {
		t.Fatal(err)
	}
	if resizedFP == fpA {
		t.Fatal("class config changes must change the stream fingerprint")
	}

	// The workload fingerprint adds seed and axes on top of the streams.
	wfp, err := w.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	mutWFP, err := mut.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if wfp == mutWFP {
		t.Fatal("seed/axis changes must change the workload fingerprint")
	}

	// Defaults are resolved into the fingerprint: an explicit default
	// equals an elided one.
	explicit := w
	explicit.CkptDeltaFrac = scenario.DefaultCkptDeltaFrac
	explicit.BoundSeconds = scenario.DefaultSlowdownBound
	expFP, err := explicit.StreamFingerprint(2)
	if err != nil {
		t.Fatal(err)
	}
	if expFP != fpA {
		t.Fatal("explicit defaults must fingerprint like elided ones")
	}
}

func TestWorkloadPoints(t *testing.T) {
	w := *workloadFile(t).Workload
	pts := w.Points()
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	for i, p := range pts {
		if len(p.Rates) != 1 || p.Rates[0] != w.Rates[i] {
			t.Fatalf("point %d carries rates %v", i, p.Rates)
		}
		if p.Nodes != w.Nodes || len(p.Mix) != len(w.Mix) {
			t.Fatalf("point %d lost workload fields", i)
		}
	}
}
