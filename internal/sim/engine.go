package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Canceling an already-fired event is
// a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Time returns the virtual time at which the event is scheduled to fire.
func (ev *Event) Time() Time { return ev.t }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. It owns the virtual clock
// and the event queue and orchestrates cooperative execution of processes.
// An Engine must not be shared across OS threads while Run is active; all
// interaction happens from engine events or from process goroutines, which
// are mutually exclusive by construction.
type Engine struct {
	now       Time
	queue     eventHeap
	seq       uint64
	parkedCh  chan struct{}
	cur       *Proc
	procs     []*Proc
	killHooks []func(*Proc)
	nEvents   uint64
}

// New creates an empty simulation engine at virtual time zero.
func New() *Engine {
	return &Engine{parkedCh: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events processed so far (for diagnostics).
func (e *Engine) Events() uint64 { return e.nEvents }

// At schedules fn to run in engine context at virtual time t. Scheduling in
// the past is clamped to the present. The returned Event can be canceled.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{t: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds of virtual time from now.
func (e *Engine) After(d Time, fn func()) *Event { return e.At(e.now+d, fn) }

// OnKill registers a hook invoked (in engine context) whenever a process is
// crashed via Kill or Crash. Hooks run before the victim's goroutine unwinds
// observable state further and may schedule events (e.g. to fail pending
// receives).
func (e *Engine) OnKill(fn func(*Proc)) { e.killHooks = append(e.killHooks, fn) }

// DeadlockError reports that the event queue drained while processes were
// still blocked.
type DeadlockError struct {
	Blocked []string // "name: reason" for every parked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock, %d processes blocked: %s",
		len(d.Blocked), strings.Join(d.Blocked, "; "))
}

// Run executes events until the queue is empty. It returns a *DeadlockError
// if processes remain blocked afterwards, and the first process failure
// (panic) otherwise, if any.
func (e *Engine) Run() error {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.t
		e.nEvents++
		ev.fn()
	}
	var blocked []string
	for _, p := range e.procs {
		if p.state == stateParked {
			blocked = append(blocked, p.name+": "+p.why)
		}
		if p.failure != nil {
			return fmt.Errorf("sim: process %s failed: %v", p.name, p.failure)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Blocked: blocked}
	}
	return nil
}

// resume hands control to p and blocks until p parks, exits, or crashes.
// Must be called from engine context.
func (e *Engine) resume(p *Proc) {
	if p.state != stateParked {
		return // already dead/done; stale wake-up
	}
	p.state = stateRunning
	prev := e.cur
	e.cur = p
	p.resumeCh <- struct{}{}
	<-e.parkedCh
	e.cur = prev
}

// Current returns the process currently executing, or nil when in pure
// engine context.
func (e *Engine) Current() *Proc { return e.cur }

// Stats is a snapshot of engine-level counters, taken after a run for
// harness-level reporting (e.g. the experiment sweep results).
type Stats struct {
	Now    Time   // current virtual time
	Events uint64 // events processed so far
	Procs  int    // processes ever spawned
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return Stats{Now: e.now, Events: e.nEvents, Procs: len(e.procs)} }

func (e *Engine) runKillHooks(p *Proc) {
	for _, h := range e.killHooks {
		h(p)
	}
}
