package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Event kinds. The hot paths (process wake-ups, typed timers) carry their
// operand in the event node itself instead of a closure, so scheduling them
// allocates nothing once the engine's free list is warm.
const (
	evCall  uint8 = iota // fn()
	evWake               // resume(proc)
	evTimer              // tm.Fire()
)

// Event is a pooled event-queue node. Nodes are owned by the engine: they
// are recycled through a free list as soon as they fire or are canceled,
// so external code never holds a *Event — it holds an EventRef, which
// detects staleness via the node's generation counter.
type Event struct {
	e     *Engine
	t     Time
	seq   uint64
	fn    func() // evCall
	proc  *Proc  // evWake
	tm    Timer  // evTimer
	gen   uint32
	index int32 // position in the queue, -1 when not queued
	kind  uint8
}

// Timer is a typed scheduled callback: upper layers implement Fire on an
// object they already allocate per logical operation (a request, an
// in-flight message), so scheduling it costs no closure.
type Timer interface {
	Fire()
}

// EventRef is a cancelable handle on a scheduled event. It is a value: the
// generation captured at scheduling time makes a stale handle (one whose
// event already fired and whose node was recycled) a safe no-op.
type EventRef struct {
	ev  *Event
	gen uint32
}

// Cancel removes the event from the queue immediately; the queue does not
// accumulate tombstones. Canceling an event that already fired (or was
// already canceled) is a no-op.
func (r EventRef) Cancel() {
	ev := r.ev
	if ev == nil || ev.gen != r.gen || ev.index < 0 {
		return
	}
	ev.e.heapRemove(ev)
	ev.e.recycle(ev)
}

// Time returns the virtual time the event is scheduled to fire at, or -1 if
// the handle is stale (the event fired or was canceled).
func (r EventRef) Time() Time {
	if r.ev == nil || r.ev.gen != r.gen || r.ev.index < 0 {
		return -1
	}
	return r.ev.t
}

// heapEntry is one slot of the event queue: the ordering key is stored by
// value so comparisons never chase the node pointer.
type heapEntry struct {
	t   Time
	seq uint64
	ev  *Event
}

func entryLess(a, b heapEntry) bool {
	return a.t < b.t || (a.t == b.t && a.seq < b.seq)
}

// Engine is a discrete-event simulation engine. It owns the virtual clock
// and the event queue and orchestrates cooperative execution of processes.
// An Engine must not be shared across OS threads while Run is active; all
// interaction happens from engine events or from process goroutines, which
// are mutually exclusive by construction.
//
// The event queue is a hand-rolled 4-ary heap of (time, seq) keys; event
// nodes are pooled through a free list, so the steady-state hot path
// (schedule, fire, recycle) performs no allocation.
type Engine struct {
	now       Time
	queue     []heapEntry
	free      []*Event
	seq       uint64
	parkedCh  chan struct{}
	cur       *Proc
	procs     []*Proc
	killHooks []func(*Proc)
	nEvents   uint64
}

// New creates an empty simulation engine at virtual time zero.
func New() *Engine {
	return &Engine{parkedCh: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events processed so far (for diagnostics).
func (e *Engine) Events() uint64 { return e.nEvents }

// Pending returns the number of events currently queued. Canceled events
// are removed immediately, so Pending reflects live events only.
func (e *Engine) Pending() int { return len(e.queue) }

// schedule allocates (or reuses) an event node and pushes it on the queue.
func (e *Engine) schedule(t Time, kind uint8) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{e: e}
	}
	ev.t = t
	ev.seq = e.seq
	ev.kind = kind
	e.heapPush(ev)
	return ev
}

// recycle returns a node (already off the queue) to the free list. The
// generation bump invalidates every outstanding EventRef to the node.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.proc = nil
	ev.tm = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// At schedules fn to run in engine context at virtual time t. Scheduling in
// the past is clamped to the present. The returned EventRef can cancel it.
func (e *Engine) At(t Time, fn func()) EventRef {
	ev := e.schedule(t, evCall)
	ev.fn = fn
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d nanoseconds of virtual time from now.
func (e *Engine) After(d Time, fn func()) EventRef { return e.At(e.now+d, fn) }

// AtTimer schedules tm.Fire to run in engine context at virtual time t.
// Unlike At, it captures no closure: the callback state lives in tm, which
// the caller has typically already allocated for its own bookkeeping.
func (e *Engine) AtTimer(t Time, tm Timer) EventRef {
	ev := e.schedule(t, evTimer)
	ev.tm = tm
	return EventRef{ev: ev, gen: ev.gen}
}

// wakeAt schedules a typed wake-up of p at time t: the common case (Sleep,
// Future completion, Spawn) that previously cost a closure per call.
func (e *Engine) wakeAt(t Time, p *Proc) {
	ev := e.schedule(t, evWake)
	ev.proc = p
}

// --- 4-ary heap over heapEntry, ordered by (t, seq) ---

func (e *Engine) heapPush(ev *Event) {
	i := len(e.queue)
	e.queue = append(e.queue, heapEntry{t: ev.t, seq: ev.seq, ev: ev})
	ev.index = int32(i)
	e.siftUp(i)
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	ent := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(ent, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].ev.index = int32(i)
		i = parent
	}
	q[i] = ent
	ent.ev.index = int32(i)
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ent := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(q[c], q[min]) {
				min = c
			}
		}
		if !entryLess(q[min], ent) {
			break
		}
		q[i] = q[min]
		q[i].ev.index = int32(i)
		i = min
	}
	q[i] = ent
	ent.ev.index = int32(i)
}

// heapPop removes and returns the earliest event.
func (e *Engine) heapPop() *Event {
	q := e.queue
	ev := q[0].ev
	n := len(q) - 1
	q[0] = q[n]
	q[n] = heapEntry{}
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0)
	}
	ev.index = -1
	return ev
}

// heapRemove removes an arbitrary queued event via its stored index.
func (e *Engine) heapRemove(ev *Event) {
	i := int(ev.index)
	q := e.queue
	n := len(q) - 1
	q[i] = q[n]
	q[n] = heapEntry{}
	e.queue = q[:n]
	if i < n {
		e.siftDown(i)
		e.siftUp(i)
	}
	ev.index = -1
}

// OnKill registers a hook invoked (in engine context) whenever a process is
// crashed via Kill or Crash. Hooks run before the victim's goroutine unwinds
// observable state further and may schedule events (e.g. to fail pending
// receives).
func (e *Engine) OnKill(fn func(*Proc)) { e.killHooks = append(e.killHooks, fn) }

// DeadlockError reports that the event queue drained while processes were
// still blocked.
type DeadlockError struct {
	Blocked []string // "name: reason" for every parked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock, %d processes blocked: %s",
		len(d.Blocked), strings.Join(d.Blocked, "; "))
}

// ProcFailureError reports that a process failed (panicked). If other
// processes were left blocked when the queue drained, the deadlock report
// is attached rather than masked: the failure usually explains the
// deadlock, and debugging needs both.
type ProcFailureError struct {
	Proc     string         // name of the failed process
	Failure  error          // the recovered panic, as an error
	Deadlock *DeadlockError // blocked-process report, if any (may be nil)
}

func (p *ProcFailureError) Error() string {
	s := fmt.Sprintf("sim: process %s failed: %v", p.Proc, p.Failure)
	if p.Deadlock != nil {
		s += " (" + p.Deadlock.Error() + ")"
	}
	return s
}

// Unwrap exposes both the underlying failure and, when present, the
// blocked-process report, so errors.Is/errors.As reach either.
func (p *ProcFailureError) Unwrap() []error {
	if p.Deadlock != nil {
		return []error{p.Failure, p.Deadlock}
	}
	return []error{p.Failure}
}

// Run executes events until the queue is empty. It returns a
// *ProcFailureError if a process failed (with any deadlock report
// attached), and a *DeadlockError if processes remain blocked afterwards.
func (e *Engine) Run() error {
	for len(e.queue) > 0 {
		ev := e.heapPop()
		e.now = ev.t
		e.nEvents++
		// Copy the payload out and recycle before dispatch: the callback
		// may schedule new events, which can then reuse this node.
		kind, p, fn, tm := ev.kind, ev.proc, ev.fn, ev.tm
		e.recycle(ev)
		switch kind {
		case evWake:
			e.resume(p)
		case evTimer:
			tm.Fire()
		default:
			fn()
		}
	}
	var blocked []string
	var failed *Proc
	for _, p := range e.procs {
		if p.state == stateParked {
			blocked = append(blocked, p.name+": "+p.why.String())
		}
		if p.failure != nil && failed == nil {
			failed = p
		}
	}
	var dl *DeadlockError
	if len(blocked) > 0 {
		sort.Strings(blocked)
		dl = &DeadlockError{Blocked: blocked}
	}
	if failed != nil {
		return &ProcFailureError{Proc: failed.name, Failure: failed.failure, Deadlock: dl}
	}
	if dl != nil {
		return dl
	}
	return nil
}

// resume hands control to p and blocks until p parks, exits, or crashes.
// Must be called from engine context.
func (e *Engine) resume(p *Proc) {
	if p.state != stateParked {
		return // already dead/done; stale wake-up
	}
	p.state = stateRunning
	prev := e.cur
	e.cur = p
	p.resumeCh <- struct{}{}
	<-e.parkedCh
	e.cur = prev
}

// Current returns the process currently executing, or nil when in pure
// engine context.
func (e *Engine) Current() *Proc { return e.cur }

// Stats is a snapshot of engine-level counters, taken after a run for
// harness-level reporting (e.g. the experiment sweep results).
type Stats struct {
	Now    Time   // current virtual time
	Events uint64 // events processed so far
	Procs  int    // processes ever spawned
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return Stats{Now: e.now, Events: e.nEvents, Procs: len(e.procs)} }

func (e *Engine) runKillHooks(p *Proc) {
	for _, h := range e.killHooks {
		h(p)
	}
}
