package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Event kinds. The hot paths (process wake-ups, typed timers) carry their
// operand in the event node itself instead of a closure, so scheduling them
// allocates nothing once the engine's free list is warm.
const (
	evCall  uint8 = iota // fn()
	evWake               // resume(proc)
	evTimer              // tm.Fire()
)

// Event is a pooled event-queue node. Nodes are owned by the engine: they
// are recycled through a free list as soon as they fire or are canceled,
// so external code never holds a *Event — it holds an EventRef, which
// detects staleness via the node's generation counter.
type Event struct {
	e     *Engine
	t     Time
	seq   uint64
	fn    func() // evCall
	proc  *Proc  // evWake
	tm    Timer  // evTimer
	gen   uint32
	index int32 // heap position; idxFree when not queued, idxFIFO when in the now-FIFO
	kind  uint8
}

const (
	idxFree int32 = -1 // not queued (fired, canceled, or free)
	idxFIFO int32 = -2 // queued in the now-FIFO rather than the heap
)

// Timer is a typed scheduled callback: upper layers implement Fire on an
// object they already allocate per logical operation (a request, an
// in-flight message), so scheduling it costs no closure.
type Timer interface {
	Fire()
}

// EventRef is a cancelable handle on a scheduled event. It is a value: the
// generation captured at scheduling time makes a stale handle (one whose
// event already fired and whose node was recycled) a safe no-op. A handle
// held across Engine.Reset is not merely stale but a protocol bug — the
// epoch check turns any use of one into a panic instead of silent corruption
// of the next simulation.
type EventRef struct {
	ev    *Event
	gen   uint32
	epoch uint32
}

// Cancel removes the event from the queue immediately; the queue does not
// accumulate tombstones. Canceling an event that already fired (or was
// already canceled) is a no-op. Canceling across an Engine.Reset panics.
func (r EventRef) Cancel() {
	ev := r.ev
	if ev == nil {
		return
	}
	if ev.e.epoch != r.epoch {
		panic("sim: EventRef used across Engine.Reset")
	}
	if ev.gen != r.gen || ev.index == idxFree {
		return
	}
	if ev.index == idxFIFO {
		ev.e.fifoRemove(ev)
	} else {
		ev.e.heapRemove(ev)
	}
	ev.e.recycle(ev)
}

// Time returns the virtual time the event is scheduled to fire at, or -1 if
// the handle is stale (the event fired or was canceled). Use across an
// Engine.Reset panics.
func (r EventRef) Time() Time {
	if r.ev == nil {
		return -1
	}
	if r.ev.e.epoch != r.epoch {
		panic("sim: EventRef used across Engine.Reset")
	}
	if r.ev.gen != r.gen || r.ev.index == idxFree {
		return -1
	}
	return r.ev.t
}

// heapEntry is one slot of the event queue: the ordering key is stored by
// value so comparisons never chase the node pointer.
type heapEntry struct {
	t   Time
	seq uint64
	ev  *Event
}

func entryLess(a, b heapEntry) bool {
	return a.t < b.t || (a.t == b.t && a.seq < b.seq)
}

// Engine is a discrete-event simulation engine. It owns the virtual clock
// and the event queue and orchestrates cooperative execution of processes.
// An Engine must not be shared across OS threads while Run is active; all
// interaction happens from engine events or from process goroutines, which
// are mutually exclusive by construction.
//
// The event queue is a hand-rolled 4-ary heap of (time, seq) keys; event
// nodes are pooled through a free list, so the steady-state hot path
// (schedule, fire, recycle) performs no allocation.
type Engine struct {
	now   Time
	queue []heapEntry
	// fifo is the now-FIFO: events scheduled at the current instant, which
	// is most continuation events in a busy simulation. Because virtual time
	// never goes backwards and seq strictly increases, these entries are
	// already in (t, seq) order, so they skip the heap entirely — popping
	// the minimum of the FIFO head and the heap top yields exactly the
	// sequence a single heap would have.
	fifo      []heapEntry
	fifoHead  int
	fifoLive  int // non-canceled entries in fifo[fifoHead:]
	free      []*Event
	seq       uint64
	cur       *Proc
	procs     []*Proc
	idle      []*Proc // finished pooled goroutines awaiting reuse
	killHooks []func(*Proc)
	nEvents   uint64
	epoch     uint32 // bumped by Reset; EventRef/Future use across epochs panics
	pooling   bool   // process goroutines are reused across Reset
}

// New creates an empty simulation engine at virtual time zero.
func New() *Engine {
	return &Engine{}
}

// NewPooled creates an engine whose process goroutines are pooled: when a
// process function returns (or crashes), its goroutine parks for reuse by a
// later Spawn instead of exiting. Combined with Reset this lets a harness
// run thousands of simulations without respawning P goroutines each time.
// Call Shutdown when the engine is retired, or the pooled goroutines leak.
func NewPooled() *Engine {
	e := New()
	e.pooling = true
	return e
}

// Reset returns the engine to its initial state (virtual time zero, empty
// queue, no processes) so it can run another simulation. Queued events are
// recycled and the epoch advances, so any EventRef or Future leaked from
// before the Reset panics on use instead of firing into the next run.
// Processes still parked mid-function are crash-unwound first — with the
// kill hooks already cleared, so no stale upper-layer hook observes them.
// On a pooled engine the unwound and finished goroutines go to the idle
// pool for reuse by subsequent Spawns.
func (e *Engine) Reset() {
	if e.cur != nil {
		panic("sim: Reset called from process context")
	}
	for {
		ev := e.popNext()
		if ev == nil {
			break
		}
		e.recycle(ev)
	}
	e.killHooks = e.killHooks[:0]
	for _, p := range e.procs {
		if p.state == stateParked {
			p.killed = true
			e.resume(p)
		}
	}
	for i, p := range e.procs {
		p.fn = nil
		p.userData = nil
		p.failure = nil
		if e.pooling {
			e.idle = append(e.idle, p)
		}
		e.procs[i] = nil
	}
	e.procs = e.procs[:0]
	e.now = 0
	e.seq = 0
	e.nEvents = 0
	e.epoch++
}

// Shutdown terminates the pooled process goroutines of an engine created
// with NewPooled (after a Reset to unwind and collect any remaining
// processes). The engine must not be used afterwards.
func (e *Engine) Shutdown() {
	e.Reset()
	for i, p := range e.idle {
		p.die = true
		p.next() // the idle loop sees die and the coroutine ends
		e.idle[i] = nil
	}
	e.idle = e.idle[:0]
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events processed so far (for diagnostics).
func (e *Engine) Events() uint64 { return e.nEvents }

// Pending returns the number of events currently queued. Canceled events
// are removed immediately, so Pending reflects live events only.
func (e *Engine) Pending() int { return len(e.queue) + e.fifoLive }

// schedule allocates (or reuses) an event node and pushes it on the queue.
func (e *Engine) schedule(t Time, kind uint8) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{e: e}
	}
	ev.t = t
	ev.seq = e.seq
	ev.kind = kind
	if t == e.now {
		ev.index = idxFIFO
		e.fifo = append(e.fifo, heapEntry{t: t, seq: ev.seq, ev: ev})
		e.fifoLive++
	} else {
		e.heapPush(ev)
	}
	return ev
}

// popNext removes and returns the earliest queued event, or nil when both
// queues are empty.
func (e *Engine) popNext() *Event {
	for e.fifoHead < len(e.fifo) && e.fifo[e.fifoHead].ev == nil {
		e.fifoHead++ // skip canceled entries
	}
	if e.fifoHead == len(e.fifo) {
		e.fifo = e.fifo[:0]
		e.fifoHead = 0
		if len(e.queue) == 0 {
			return nil
		}
		return e.heapPop()
	}
	if len(e.queue) == 0 || entryLess(e.fifo[e.fifoHead], e.queue[0]) {
		ev := e.fifo[e.fifoHead].ev
		e.fifo[e.fifoHead].ev = nil
		e.fifoHead++
		e.fifoLive--
		ev.index = idxFree
		return ev
	}
	return e.heapPop()
}

// fifoRemove cancels a now-FIFO entry in place; popNext skips the hole.
func (e *Engine) fifoRemove(ev *Event) {
	for i := e.fifoHead; i < len(e.fifo); i++ {
		if e.fifo[i].ev == ev {
			e.fifo[i].ev = nil
			e.fifoLive--
			break
		}
	}
	ev.index = idxFree
}

// recycle returns a node (already off the queue) to the free list. The
// generation bump invalidates every outstanding EventRef to the node.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.proc = nil
	ev.tm = nil
	ev.index = idxFree
	e.free = append(e.free, ev)
}

// At schedules fn to run in engine context at virtual time t. Scheduling in
// the past is clamped to the present. The returned EventRef can cancel it.
func (e *Engine) At(t Time, fn func()) EventRef {
	ev := e.schedule(t, evCall)
	ev.fn = fn
	return EventRef{ev: ev, gen: ev.gen, epoch: e.epoch}
}

// After schedules fn to run d nanoseconds of virtual time from now.
func (e *Engine) After(d Time, fn func()) EventRef { return e.At(e.now+d, fn) }

// AtTimer schedules tm.Fire to run in engine context at virtual time t.
// Unlike At, it captures no closure: the callback state lives in tm, which
// the caller has typically already allocated for its own bookkeeping.
func (e *Engine) AtTimer(t Time, tm Timer) EventRef {
	ev := e.schedule(t, evTimer)
	ev.tm = tm
	return EventRef{ev: ev, gen: ev.gen, epoch: e.epoch}
}

// wakeAt schedules a typed wake-up of p at time t: the common case (Sleep,
// Future completion, Spawn) that previously cost a closure per call.
func (e *Engine) wakeAt(t Time, p *Proc) {
	ev := e.schedule(t, evWake)
	ev.proc = p
}

// --- 4-ary heap over heapEntry, ordered by (t, seq) ---

func (e *Engine) heapPush(ev *Event) {
	i := len(e.queue)
	e.queue = append(e.queue, heapEntry{t: ev.t, seq: ev.seq, ev: ev})
	ev.index = int32(i)
	e.siftUp(i)
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	ent := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(ent, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].ev.index = int32(i)
		i = parent
	}
	q[i] = ent
	ent.ev.index = int32(i)
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ent := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(q[c], q[min]) {
				min = c
			}
		}
		if !entryLess(q[min], ent) {
			break
		}
		q[i] = q[min]
		q[i].ev.index = int32(i)
		i = min
	}
	q[i] = ent
	ent.ev.index = int32(i)
}

// heapPop removes and returns the earliest event.
func (e *Engine) heapPop() *Event {
	q := e.queue
	ev := q[0].ev
	n := len(q) - 1
	q[0] = q[n]
	q[n] = heapEntry{}
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0)
	}
	ev.index = idxFree
	return ev
}

// heapRemove removes an arbitrary queued event via its stored index.
func (e *Engine) heapRemove(ev *Event) {
	i := int(ev.index)
	q := e.queue
	n := len(q) - 1
	q[i] = q[n]
	q[n] = heapEntry{}
	e.queue = q[:n]
	if i < n {
		e.siftDown(i)
		e.siftUp(i)
	}
	ev.index = idxFree
}

// OnKill registers a hook invoked (in engine context) whenever a process is
// crashed via Kill or Crash. Hooks run before the victim's goroutine unwinds
// observable state further and may schedule events (e.g. to fail pending
// receives).
func (e *Engine) OnKill(fn func(*Proc)) { e.killHooks = append(e.killHooks, fn) }

// DeadlockError reports that the event queue drained while processes were
// still blocked.
type DeadlockError struct {
	Blocked []string // "name: reason" for every parked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock, %d processes blocked: %s",
		len(d.Blocked), strings.Join(d.Blocked, "; "))
}

// ProcFailureError reports that a process failed (panicked). If other
// processes were left blocked when the queue drained, the deadlock report
// is attached rather than masked: the failure usually explains the
// deadlock, and debugging needs both.
type ProcFailureError struct {
	Proc     string         // name of the failed process
	Failure  error          // the recovered panic, as an error
	Deadlock *DeadlockError // blocked-process report, if any (may be nil)
}

func (p *ProcFailureError) Error() string {
	s := fmt.Sprintf("sim: process %s failed: %v", p.Proc, p.Failure)
	if p.Deadlock != nil {
		s += " (" + p.Deadlock.Error() + ")"
	}
	return s
}

// Unwrap exposes both the underlying failure and, when present, the
// blocked-process report, so errors.Is/errors.As reach either.
func (p *ProcFailureError) Unwrap() []error {
	if p.Deadlock != nil {
		return []error{p.Failure, p.Deadlock}
	}
	return []error{p.Failure}
}

// Run executes events until the queue is empty. It returns a
// *ProcFailureError if a process failed (with any deadlock report
// attached), and a *DeadlockError if processes remain blocked afterwards.
func (e *Engine) Run() error {
	for {
		ev := e.popNext()
		if ev == nil {
			break
		}
		e.now = ev.t
		e.nEvents++
		// Copy the payload out and recycle before dispatch: the callback
		// may schedule new events, which can then reuse this node.
		kind, p, fn, tm := ev.kind, ev.proc, ev.fn, ev.tm
		e.recycle(ev)
		switch kind {
		case evWake:
			e.resume(p)
		case evTimer:
			tm.Fire()
		default:
			fn()
		}
	}
	var blocked []string
	var failed *Proc
	for _, p := range e.procs {
		if p.state == stateParked {
			blocked = append(blocked, p.name+": "+p.why.String())
		}
		if p.failure != nil && failed == nil {
			failed = p
		}
	}
	var dl *DeadlockError
	if len(blocked) > 0 {
		sort.Strings(blocked)
		dl = &DeadlockError{Blocked: blocked}
	}
	if failed != nil {
		return &ProcFailureError{Proc: failed.name, Failure: failed.failure, Deadlock: dl}
	}
	if dl != nil {
		return dl
	}
	return nil
}

// resume hands control to p (a coroutine switch) and regains it when p
// parks, exits, or crashes. Must be called from engine context.
func (e *Engine) resume(p *Proc) {
	if p.state != stateParked {
		return // already dead/done; stale wake-up
	}
	p.state = stateRunning
	prev := e.cur
	e.cur = p
	p.next()
	e.cur = prev
}

// Unblock resumes a process parked via Proc.Block, running it inline until
// it parks again or finishes — exactly what dispatching a scheduled wake
// event would do. It must be called from engine context (an event callback):
// state machines that complete a logical operation on behalf of a parked
// process use it as the final hand-back.
func (e *Engine) Unblock(p *Proc) {
	if e.cur != nil {
		panic("sim: Unblock called from process context")
	}
	e.resume(p)
}

// Current returns the process currently executing, or nil when in pure
// engine context.
func (e *Engine) Current() *Proc { return e.cur }

// Stats is a snapshot of engine-level counters, taken after a run for
// harness-level reporting (e.g. the experiment sweep results).
type Stats struct {
	Now    Time   // current virtual time
	Events uint64 // events processed so far
	Procs  int    // processes ever spawned
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return Stats{Now: e.now, Events: e.nEvents, Procs: len(e.procs)} }

func (e *Engine) runKillHooks(p *Proc) {
	for _, h := range e.killHooks {
		h(p)
	}
}
