package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestCancelRemovesFromQueue pins the tombstone fix: canceling an event
// removes it from the queue immediately instead of leaving a dead node to
// be skipped at pop time (fault-heavy campaigns cancel one event per
// matched transfer, so tombstones used to accumulate for the whole run).
func TestCancelRemovesFromQueue(t *testing.T) {
	e := New()
	refs := make([]EventRef, 0, 100)
	for i := 0; i < 100; i++ {
		refs = append(refs, e.At(Time(10+i), func() {}))
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", e.Pending())
	}
	for i, r := range refs {
		if i%2 == 0 {
			r.Cancel()
		}
	}
	if e.Pending() != 50 {
		t.Fatalf("Pending after 50 cancels = %d, want 50", e.Pending())
	}
	// Double cancel is a no-op, not a second removal.
	refs[0].Cancel()
	if e.Pending() != 50 {
		t.Fatalf("Pending after double cancel = %d, want 50", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after Run = %d, want 0", e.Pending())
	}
	if e.Events() != 50 {
		t.Fatalf("Events = %d, want 50 (canceled events must not be counted)", e.Events())
	}
}

// TestCancelPreservesOrdering removes random events from a random queue and
// checks the survivors still fire in (t, seq) order.
func TestCancelPreservesOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		e := New()
		type rec struct {
			at  Time
			ref EventRef
		}
		var scheduled []rec
		var fired []Time
		for i := 0; i < 200; i++ {
			at := Time(rng.Intn(50))
			r := e.At(at, func() { fired = append(fired, at) })
			scheduled = append(scheduled, rec{at: at, ref: r})
		}
		var want []Time
		for _, s := range scheduled {
			if rng.Intn(3) == 0 {
				s.ref.Cancel()
			} else {
				want = append(want, s.at)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if len(fired) != len(want) {
			t.Fatalf("fired %d events, want %d", len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: fired[%d] = %v, want %v", trial, i, fired[i], want[i])
			}
		}
	}
}

// TestStaleEventRefIsNoOp pins the pool-safety property: once an event has
// fired and its node was recycled into a new event, the old handle must not
// cancel the new occupant.
func TestStaleEventRefIsNoOp(t *testing.T) {
	e := New()
	var stale EventRef
	stale = e.At(1, func() {})
	laterFired := false
	e.At(2, func() {
		// The node behind `stale` was recycled when its event fired at t=1;
		// this new event likely reuses it.
		e.At(5, func() { laterFired = true })
		stale.Cancel()
		if got := stale.Time(); got != -1 {
			t.Errorf("stale ref Time = %v, want -1", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !laterFired {
		t.Fatal("stale EventRef.Cancel canceled a recycled event")
	}
}

// TestRunReportsFailureAndDeadlock pins the diagnostic fix: a process
// failure no longer masks the blocked-process report.
func TestRunReportsFailureAndDeadlock(t *testing.T) {
	e := New()
	f := e.NewFuture()
	e.Spawn("stuck", func(p *Proc) { f.Wait(p, Reason("waiting forever")) })
	e.Spawn("boom", func(p *Proc) {
		p.Sleep(1)
		panic("kaboom")
	})
	err := e.Run()
	var pf *ProcFailureError
	if !errors.As(err, &pf) {
		t.Fatalf("err = %v, want *ProcFailureError", err)
	}
	if pf.Proc != "boom" {
		t.Fatalf("failed proc = %q, want boom", pf.Proc)
	}
	if pf.Deadlock == nil {
		t.Fatal("deadlock report was masked by the process failure")
	}
	if len(pf.Deadlock.Blocked) != 1 || pf.Deadlock.Blocked[0] != "stuck: waiting forever" {
		t.Fatalf("blocked = %v", pf.Deadlock.Blocked)
	}
	// Both causes are reachable through the error chain.
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatal("errors.As did not reach the attached DeadlockError")
	}
}

// TestErrorTypedPanicIsUnwrappable checks that a process panicking with a
// typed error keeps it reachable through the Run error chain.
func TestErrorTypedPanicIsUnwrappable(t *testing.T) {
	sentinel := errors.New("typed failure")
	e := New()
	e.Spawn("bad", func(p *Proc) { panic(fmt.Errorf("wrapped: %w", sentinel)) })
	err := e.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is lost the panicked error: %v", err)
	}
}

// TestParkReasonStrings pins the lazy reasons to the exact report text the
// eager fmt.Sprintf calls used to produce.
func TestParkReasonStrings(t *testing.T) {
	cases := []struct {
		r    ParkReason
		want string
	}{
		{ParkReason{Kind: WaitNotStarted}, "not started"},
		{ParkReason{Kind: WaitSleep, A: int64(5 * Millisecond)}, "sleeping 5.000ms"},
		{ParkReason{Kind: WaitRecv, A: 3, B: 17}, "recv from 3 tag 17"},
		{ParkReason{Kind: WaitSendDone}, "send completion"},
		{ParkReason{Kind: WaitFuture}, "waiting on future"},
		{Reason("custom text"), "custom text"},
		{ParkReason{}, "waiting"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.r, got, c.want)
		}
	}
}

// --- allocation budgets (the tentpole's regression guards) ---

// TestSleepAllocs pins the zero-allocation Sleep hot path: 1000 sleeps must
// stay within a small fixed budget (engine + spawn + the goroutine), i.e.
// well under one allocation per sleep.
func TestSleepAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	const rounds = 1000
	avg := testing.AllocsPerRun(5, func() {
		e := New()
		e.Spawn("s", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Sleep(1)
			}
		})
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
	// Fixed setup (engine, channels, proc, goroutine, heap growth) is under
	// ~20 allocations; 1000 zero-alloc sleeps must not add to it.
	if avg > 30 {
		t.Fatalf("engine run with %d sleeps allocated %.0f objects, budget 30", rounds, avg)
	}
}

// TestEventAllocs pins the pooled event path: a warm engine schedules and
// fires events without allocating.
func TestEventAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	e := New()
	const rounds = 1000
	n := 0
	var tick func()
	tick = func() {
		n++
		if n%rounds != 0 {
			e.After(1, tick)
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		e.After(1, tick)
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
	if avg > 5 {
		t.Fatalf("%d pooled events allocated %.0f objects, budget 5", rounds, avg)
	}
}

// TestFutureSingleWaiterAllocs pins the single-waiter fast path: wait +
// complete on an embedded future allocates only the wake event bookkeeping
// (nothing, once the pool is warm).
func TestFutureSingleWaiterAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	const rounds = 500
	avg := testing.AllocsPerRun(5, func() {
		e := New()
		futs := make([]Future, rounds)
		for i := range futs {
			futs[i].Init(e)
		}
		e.Spawn("w", func(p *Proc) {
			for i := range futs {
				futs[i].Wait(p, ParkReason{Kind: WaitFuture})
			}
		})
		e.Spawn("c", func(p *Proc) {
			for i := range futs {
				p.Sleep(1)
				futs[i].Complete(nil, nil)
			}
		})
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
	// Budget: fixed setup plus the futs slice; no per-wait allocation.
	if avg > 40 {
		t.Fatalf("%d future waits allocated %.0f objects, budget 40", rounds, avg)
	}
}

// mustPanic runs fn and reports whether it panicked with a message
// containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message containing %q", r, want)
		}
	}()
	fn()
}

// TestHandlesAcrossResetPanic pins the epoch guard: an EventRef or Future
// leaked across Engine.Reset is a protocol bug in the pooled-engine
// contract, and any use of one must panic loudly instead of silently
// canceling (or completing into) an event of the next simulation that
// happens to reuse the same pooled node.
func TestHandlesAcrossResetPanic(t *testing.T) {
	e := NewPooled()
	defer func() {
		e.Reset()
		e.Shutdown()
	}()

	ref := e.At(5, func() {})
	fut := e.NewFuture()
	e.Reset()

	mustPanic(t, "EventRef used across Engine.Reset", func() { ref.Cancel() })
	mustPanic(t, "EventRef used across Engine.Reset", func() { _ = ref.Time() })
	mustPanic(t, "Future used across Engine.Reset", func() { fut.Complete(nil, nil) })

	// The engine itself must stay fully usable after the recovered panics.
	fired := false
	e.At(1, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event scheduled after Reset did not fire")
	}
}
