package sim

// Future is a one-shot completion variable. Processes block on Wait until
// some event (or another process) calls Complete. A Future may be completed
// at most once; waiters are woken in deterministic order.
//
// A Future can be embedded by value in a caller's own per-operation record
// (initialize it with Init), so posting an operation costs one allocation
// for the record rather than one more for the future.
type Future struct {
	e       *Engine
	epoch   uint32 // engine epoch at Init; use across Reset panics
	done    bool
	val     any
	err     error
	w0      *Proc   // first waiter: the overwhelmingly common case
	tw      Timer   // timer waiter: completion schedules tw.Fire at now
	waiters []*Proc // further waiters, in arrival order
	onDone  []func(any, error)
}

// NewFuture creates an incomplete future on the engine.
func (e *Engine) NewFuture() *Future {
	f := &Future{}
	f.Init(e)
	return f
}

// Init (re)initializes an embedded future in place. The future is bound to
// the engine's current epoch: completing or waiting on it after a Reset
// panics, so a future leaked from a previous simulation cannot fire into
// the next one.
func (f *Future) Init(e *Engine) { *f = Future{e: e, epoch: e.epoch} }

func (f *Future) checkEpoch() {
	if f.epoch != f.e.epoch {
		panic("sim: Future used across Engine.Reset")
	}
}

// Done reports whether the future has been completed.
func (f *Future) Done() bool { return f.done }

// Value returns the completion value and error. Valid only once Done.
func (f *Future) Value() (any, error) { return f.val, f.err }

// Complete resolves the future with (v, err) and wakes all waiters at the
// current virtual time. Completing twice panics: it always indicates a
// protocol bug in a layer above.
func (f *Future) Complete(v any, err error) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.checkEpoch()
	f.done = true
	f.val = v
	f.err = err
	if f.w0 != nil {
		f.e.wakeAt(f.e.now, f.w0)
		f.w0 = nil
	}
	if f.tw != nil {
		f.e.AtTimer(f.e.now, f.tw)
		f.tw = nil
	}
	for _, w := range f.waiters {
		f.e.wakeAt(f.e.now, w)
	}
	f.waiters = nil
	for _, fn := range f.onDone {
		fn(v, err)
	}
	f.onDone = nil
}

// OnDone registers fn to run (in the completer's context) when the future
// completes. If already complete, fn runs immediately.
func (f *Future) OnDone(fn func(any, error)) {
	if f.done {
		fn(f.val, f.err)
		return
	}
	f.onDone = append(f.onDone, fn)
}

// Wait blocks the calling process until the future completes and returns
// its value and error. The reason value is rendered only in deadlock
// reports; waiting on a single-waiter future allocates nothing.
// NotifyTimer registers tm to be scheduled (an AtTimer at the completion
// time) when the future completes — the state-machine counterpart of Wait:
// completion costs exactly one scheduled event, just like waking a parked
// process would, but no goroutine handoff. A future supports one timer
// waiter; callers must check Done first — registering on a completed
// future panics, as does registering a second timer.
func (f *Future) NotifyTimer(tm Timer) {
	if f.done {
		panic("sim: NotifyTimer on a completed future")
	}
	if f.tw != nil {
		panic("sim: future already has a timer waiter")
	}
	f.tw = tm
}

func (f *Future) Wait(p *Proc, reason ParkReason) (any, error) {
	f.checkEpoch()
	for !f.done {
		if f.w0 == nil {
			f.w0 = p
		} else {
			f.waiters = append(f.waiters, p)
		}
		p.park(reason)
		// A stale wake-up is impossible for plain futures (each waiter is
		// woken exactly once, by Complete), but re-checking keeps the loop
		// robust if a future is shared.
	}
	return f.val, f.err
}
