package sim

import "fmt"

type procState uint8

const (
	stateParked procState = iota
	stateRunning
	stateDone
	stateCrashed
)

// errCrashed is the sentinel panic value used to unwind a crashed process's
// goroutine. It never escapes the package.
type crashSentinel struct{}

// Proc is a simulated process: a goroutine that runs cooperatively under the
// engine. At most one process runs at a time. Processes block only through
// engine primitives (Sleep, Future.Wait), never through real synchronization.
type Proc struct {
	e        *Engine
	id       int
	name     string
	resumeCh chan struct{}
	state    procState
	killed   bool
	why      ParkReason // reason for the current park, for deadlock reports
	failure  error      // recovered panic value, if the process failed
	userData any        // opaque slot for upper layers (e.g. the MPI rank)
}

// Spawn creates a process named name running fn, scheduled to start at the
// current virtual time. fn receives the process handle.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		e:        e,
		id:       len(e.procs),
		name:     name,
		resumeCh: make(chan struct{}),
		state:    stateParked,
		why:      ParkReason{Kind: WaitNotStarted},
	}
	e.procs = append(e.procs, p)
	go p.run(fn)
	e.wakeAt(e.now, p)
	return p
}

func (p *Proc) run(fn func(*Proc)) {
	<-p.resumeCh
	defer func() {
		r := recover()
		switch {
		case r == nil:
			p.state = stateDone
		case isCrash(r):
			p.state = stateCrashed
			p.e.runKillHooks(p)
		default:
			p.state = stateDone
			if err, ok := r.(error); ok {
				p.failure = fmt.Errorf("panic: %w", err)
			} else {
				p.failure = fmt.Errorf("panic: %v", r)
			}
		}
		p.e.parkedCh <- struct{}{}
	}()
	if p.killed {
		panic(crashSentinel{})
	}
	fn(p)
}

func isCrash(r any) bool {
	_, ok := r.(crashSentinel)
	return ok
}

// ID returns the process's engine-assigned identifier.
func (p *Proc) ID() int { return p.id }

// Name returns the process's name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Alive reports whether the process has not crashed or exited.
func (p *Proc) Alive() bool { return p.state == stateParked || p.state == stateRunning }

// Crashed reports whether the process was crash-stopped.
func (p *Proc) Crashed() bool { return p.state == stateCrashed || p.killed }

// SetUserData attaches an opaque value to the process (used by upper layers
// to map a Proc back to its rank state).
func (p *Proc) SetUserData(v any) { p.userData = v }

// UserData returns the value set by SetUserData.
func (p *Proc) UserData() any { return p.userData }

// park blocks the calling process until the engine resumes it. Must be
// called from the process's own goroutine. The reason is a value; it is
// rendered to text only if a deadlock report is built.
func (p *Proc) park(reason ParkReason) {
	if p.e.cur != p {
		panic("sim: park called from outside the running process")
	}
	p.state = stateParked
	p.why = reason
	p.e.parkedCh <- struct{}{}
	<-p.resumeCh
	if p.killed {
		panic(crashSentinel{})
	}
}

// Sleep advances the process by d of virtual time. It models computation or
// idling; other processes run during the sleep. The wake-up is a typed
// event and the park reason is a value, so sleeping allocates nothing.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.e.wakeAt(p.e.now+d, p)
	p.park(ParkReason{Kind: WaitSleep, A: int64(d)})
}

// Compute is an alias for Sleep that documents intent: the process is
// charged d of virtual CPU time.
func (p *Proc) Compute(d Time) { p.Sleep(d) }

// Crash crash-stops the calling process: the goroutine unwinds immediately
// and the process never runs again. Kill hooks fire.
func (p *Proc) Crash() {
	if p.e.cur != p {
		panic("sim: Crash called from outside the running process")
	}
	p.killed = true
	panic(crashSentinel{})
}

// Kill crash-stops process p from engine context (e.g. from a scheduled
// fault-injection event). If p is parked it is woken solely to unwind. If p
// is the currently running process, Kill is equivalent to Crash.
func (e *Engine) Kill(p *Proc) {
	if !p.Alive() || p.killed {
		return
	}
	p.killed = true
	if e.cur == p {
		panic(crashSentinel{})
	}
	e.resume(p) // wakes park(), which panics with the crash sentinel
}

// Procs returns all processes ever spawned on the engine.
func (e *Engine) Procs() []*Proc { return e.procs }
