package sim

import (
	"fmt"
	"iter"
)

type procState uint8

const (
	stateParked procState = iota
	stateRunning
	stateDone
	stateCrashed
)

// errCrashed is the sentinel panic value used to unwind a crashed process's
// goroutine. It never escapes the package.
type crashSentinel struct{}

// Proc is a simulated process: a coroutine that runs cooperatively under the
// engine. At most one process runs at a time. Processes block only through
// engine primitives (Sleep, Future.Wait), never through real synchronization.
//
// Control transfer uses iter.Pull coroutine switches rather than channel
// handshakes: a park/resume cycle is two direct goroutine switches with no
// scheduler round trip, which is the difference between ~100ns and ~400ns
// per cycle — decisive when every simulated process parks once per
// collective.
type Proc struct {
	e        *Engine
	id       int
	name     string
	next     func() (struct{}, bool) // engine side: hand control to the proc
	yield    func(struct{}) bool     // proc side: hand control back
	fn       func(*Proc)             // the process function for the current spawn
	state    procState
	killed   bool
	die      bool       // Shutdown handshake: coroutine exits on next resume
	pooled   bool       // coroutine parks for reuse instead of exiting
	why      ParkReason // reason for the current park, for deadlock reports
	failure  error      // recovered panic value, if the process failed
	userData any        // opaque slot for upper layers (e.g. the MPI rank)
}

// Spawn creates a process named name running fn, scheduled to start at the
// current virtual time. fn receives the process handle. On a pooled engine
// an idle goroutine from a previous run is reused when available.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(e.idle); n > 0 {
		p = e.idle[n-1]
		e.idle[n-1] = nil
		e.idle = e.idle[:n-1]
		p.id = len(e.procs)
		p.name = name
		p.fn = fn
		p.state = stateParked
		p.killed = false
		p.failure = nil
		p.userData = nil
		p.why = ParkReason{Kind: WaitNotStarted}
		e.procs = append(e.procs, p)
	} else {
		p = &Proc{
			e:      e,
			id:     len(e.procs),
			name:   name,
			fn:     fn,
			state:  stateParked,
			pooled: e.pooling,
			why:    ParkReason{Kind: WaitNotStarted},
		}
		p.next, _ = iter.Pull(p.corun)
		e.procs = append(e.procs, p)
	}
	e.wakeAt(e.now, p)
	return p
}

// corun is the coroutine body. It does not run until the engine's first
// resume calls next. A non-pooled process executes its function once and
// returns (ending the coroutine); a pooled one yields after each run,
// waiting either for reuse by a later Spawn (which resets its state and
// schedules a wake) or for the Shutdown handshake. runOnce recovers every
// panic, so no panic ever propagates out of the coroutine into resume.
func (p *Proc) corun(yield func(struct{}) bool) {
	p.yield = yield
	for {
		p.runOnce()
		if !p.pooled {
			return
		}
		if !yield(struct{}{}) || p.die {
			return
		}
	}
}

func (p *Proc) runOnce() {
	defer func() {
		r := recover()
		switch {
		case r == nil:
			p.state = stateDone
		case isCrash(r):
			p.state = stateCrashed
			p.e.runKillHooks(p)
		default:
			p.state = stateDone
			if err, ok := r.(error); ok {
				p.failure = fmt.Errorf("panic: %w", err)
			} else {
				p.failure = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	if p.killed {
		panic(crashSentinel{})
	}
	p.fn(p)
}

func isCrash(r any) bool {
	_, ok := r.(crashSentinel)
	return ok
}

// ID returns the process's engine-assigned identifier.
func (p *Proc) ID() int { return p.id }

// Name returns the process's name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Alive reports whether the process has not crashed or exited.
func (p *Proc) Alive() bool { return p.state == stateParked || p.state == stateRunning }

// Crashed reports whether the process was crash-stopped.
func (p *Proc) Crashed() bool { return p.state == stateCrashed || p.killed }

// SetUserData attaches an opaque value to the process (used by upper layers
// to map a Proc back to its rank state).
func (p *Proc) SetUserData(v any) { p.userData = v }

// UserData returns the value set by SetUserData.
func (p *Proc) UserData() any { return p.userData }

// park blocks the calling process until the engine resumes it. Must be
// called from the process's own goroutine. The reason is a value; it is
// rendered to text only if a deadlock report is built.
func (p *Proc) park(reason ParkReason) {
	if p.e.cur != p {
		panic("sim: park called from outside the running process")
	}
	p.state = stateParked
	p.why = reason
	p.yield(struct{}{})
	if p.killed {
		panic(crashSentinel{})
	}
}

// Block parks the calling process with no scheduled wake-up: some other
// component — typically a state machine advancing in event callbacks on the
// process's behalf — must hand control back via Engine.Unblock. The reason
// is rendered only in deadlock reports.
func (p *Proc) Block(reason ParkReason) { p.park(reason) }

// Sleep advances the process by d of virtual time. It models computation or
// idling; other processes run during the sleep. The wake-up is a typed
// event and the park reason is a value, so sleeping allocates nothing.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.e.wakeAt(p.e.now+d, p)
	p.park(ParkReason{Kind: WaitSleep, A: int64(d)})
}

// Compute is an alias for Sleep that documents intent: the process is
// charged d of virtual CPU time.
func (p *Proc) Compute(d Time) { p.Sleep(d) }

// Crash crash-stops the calling process: the goroutine unwinds immediately
// and the process never runs again. Kill hooks fire.
func (p *Proc) Crash() {
	if p.e.cur != p {
		panic("sim: Crash called from outside the running process")
	}
	p.killed = true
	panic(crashSentinel{})
}

// Kill crash-stops process p from engine context (e.g. from a scheduled
// fault-injection event). If p is parked it is woken solely to unwind. If p
// is the currently running process, Kill is equivalent to Crash.
func (e *Engine) Kill(p *Proc) {
	if !p.Alive() || p.killed {
		return
	}
	p.killed = true
	if e.cur == p {
		panic(crashSentinel{})
	}
	e.resume(p) // wakes park(), which panics with the crash sentinel
}

// Procs returns a snapshot of the processes spawned on the engine since the
// last Reset. The slice is a copy: mutating it cannot corrupt the scheduler.
func (e *Engine) Procs() []*Proc {
	out := make([]*Proc, len(e.procs))
	copy(out, e.procs)
	return out
}
