package sim

import "fmt"

// WaitKind enumerates why a process is parked. Hot paths construct a
// ParkReason value from a kind and integer operands instead of formatting a
// string: the text is rendered lazily, only when a deadlock report is
// actually assembled.
type WaitKind uint8

const (
	// WaitNone is the zero kind; it renders as a generic "waiting".
	WaitNone WaitKind = iota
	// WaitNotStarted marks a spawned process that has not yet run.
	WaitNotStarted
	// WaitSleep is a Proc.Sleep; A is the duration in nanoseconds.
	WaitSleep
	// WaitFuture is a generic Future.Wait with no more specific reason.
	WaitFuture
	// WaitRecv is a blocked message receive; A is the source rank, B the tag.
	WaitRecv
	// WaitSendDone is a blocked wait for local send completion.
	WaitSendDone
	// WaitColl is a process parked inside a collective operation whose
	// progress is driven by a state machine; A is the operation code.
	WaitColl
	// WaitCustom renders Str verbatim.
	WaitCustom
)

// ParkReason describes why a process is blocked, cheaply: a kind plus
// integer operands (and, for WaitCustom only, a string). It is passed and
// stored by value, so parking allocates nothing.
type ParkReason struct {
	A, B int64
	Str  string
	Kind WaitKind
}

// Reason wraps a verbatim string as a ParkReason, for call sites where the
// text is static (or where formatting cost does not matter).
func Reason(s string) ParkReason { return ParkReason{Kind: WaitCustom, Str: s} }

// String renders the reason for a deadlock report.
func (r ParkReason) String() string {
	switch r.Kind {
	case WaitNotStarted:
		return "not started"
	case WaitSleep:
		return "sleeping " + Time(r.A).String()
	case WaitFuture:
		return "waiting on future"
	case WaitRecv:
		return fmt.Sprintf("recv from %d tag %d", r.A, r.B)
	case WaitSendDone:
		return "send completion"
	case WaitColl:
		return fmt.Sprintf("in collective op %d", r.A)
	case WaitCustom:
		return r.Str
	default:
		return "waiting"
	}
}
