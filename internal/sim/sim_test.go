package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.00us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.0000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("(250ms).Seconds() = %v", got)
	}
	if Micros(4) != 4*Microsecond {
		t.Fatalf("Micros(4) = %v", Micros(4))
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.At(10, func() { order = append(order, 11) }) // same time: FIFO by seq
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestEventCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.At(5, func() { ev.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	e := New()
	var at Time = -1
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past: clamp to now
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Fatalf("clamped event ran at %v, want 100", at)
	}
}

func TestProcessSleep(t *testing.T) {
	e := New()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		p.Sleep(2 * Millisecond)
		wake = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 7*Millisecond {
		t.Fatalf("woke at %v, want 7ms", wake)
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := New()
		var trace []string
		for _, n := range []string{"a", "b"} {
			n := n
			e.Spawn(n, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, n)
					p.Sleep(Millisecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic trace: %v vs %v", first, again)
			}
		}
	}
}

func TestFutureWakesWaiter(t *testing.T) {
	e := New()
	f := e.NewFuture()
	var got any
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		v, err := f.Wait(p, Reason("test wait"))
		if err != nil {
			t.Errorf("unexpected err: %v", err)
		}
		got = v
		at = p.Now()
	})
	e.At(42, func() { f.Complete("hello", nil) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" || at != 42 {
		t.Fatalf("got %v at %v, want hello at 42", got, at)
	}
}

func TestFutureCompletedBeforeWait(t *testing.T) {
	e := New()
	f := e.NewFuture()
	f.Complete(7, nil)
	var got any
	e.Spawn("waiter", func(p *Proc) { got, _ = f.Wait(p, Reason("w")) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got %v, want 7", got)
	}
}

func TestFutureOnDone(t *testing.T) {
	e := New()
	f := e.NewFuture()
	calls := 0
	f.OnDone(func(v any, err error) { calls++ })
	f.Complete(nil, nil)
	f.OnDone(func(v any, err error) { calls++ }) // already done: immediate
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := New()
	f := e.NewFuture()
	f.Complete(nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double complete")
		}
	}()
	f.Complete(nil, nil)
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	f := e.NewFuture()
	e.Spawn("stuck", func(p *Proc) { f.Wait(p, Reason("waiting forever")) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck: waiting forever" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestKillParkedProcess(t *testing.T) {
	e := New()
	reached := false
	p := e.Spawn("victim", func(p *Proc) {
		p.Sleep(10 * Second)
		reached = true
	})
	e.At(Second, func() { e.Kill(p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("killed process continued executing")
	}
	if !p.Crashed() || p.Alive() {
		t.Fatalf("state: crashed=%v alive=%v", p.Crashed(), p.Alive())
	}
}

func TestCrashSelf(t *testing.T) {
	e := New()
	after := false
	p := e.Spawn("suicidal", func(p *Proc) {
		p.Sleep(Millisecond)
		p.Crash()
		after = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after || !p.Crashed() {
		t.Fatal("Crash did not stop the process")
	}
}

func TestKillHooksFire(t *testing.T) {
	e := New()
	var hooked []string
	e.OnKill(func(p *Proc) { hooked = append(hooked, p.Name()) })
	p := e.Spawn("victim", func(p *Proc) { p.Sleep(Second) })
	e.Spawn("survivor", func(p *Proc) { p.Sleep(2 * Millisecond) })
	e.At(Millisecond, func() { e.Kill(p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0] != "victim" {
		t.Fatalf("hooked = %v", hooked)
	}
}

func TestKillIsIdempotent(t *testing.T) {
	e := New()
	hooks := 0
	e.OnKill(func(*Proc) { hooks++ })
	p := e.Spawn("victim", func(p *Proc) { p.Sleep(Second) })
	e.At(Millisecond, func() {
		e.Kill(p)
		e.Kill(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hooks != 1 {
		t.Fatalf("hooks = %d, want 1", hooks)
	}
}

func TestKilledWaiterDoesNotWake(t *testing.T) {
	e := New()
	f := e.NewFuture()
	resumed := false
	p := e.Spawn("waiter", func(p *Proc) {
		f.Wait(p, Reason("w"))
		resumed = true
	})
	e.At(10, func() { e.Kill(p) })
	e.At(20, func() { f.Complete(nil, nil) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("killed process resumed from future")
	}
}

func TestProcessPanicIsReported(t *testing.T) {
	e := New()
	e.Spawn("bad", func(p *Proc) { panic("boom") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestUserData(t *testing.T) {
	e := New()
	p := e.Spawn("p", func(p *Proc) {})
	p.SetUserData(99)
	if p.UserData() != 99 {
		t.Fatal("user data not stored")
	}
	if p.ID() != 0 || p.Name() != "p" || p.Engine() != e {
		t.Fatal("accessors wrong")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := New()
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(5)
		e.Spawn("child", func(c *Proc) { childAt = c.Now() })
		p.Sleep(5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 5 {
		t.Fatalf("child started at %v, want 5", childAt)
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the clock never goes backwards.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := New()
		var fired []Time
		for _, d := range delays {
			e.At(Time(d), func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: N sleeping processes all finish, and the final clock equals the
// maximum total sleep.
func TestSleepSumProperty(t *testing.T) {
	prop := func(sleeps [][3]uint8) bool {
		if len(sleeps) > 32 {
			sleeps = sleeps[:32]
		}
		e := New()
		var max Time
		done := 0
		for i, trio := range sleeps {
			var total Time
			for _, s := range trio {
				total += Time(s)
			}
			if total > max {
				max = total
			}
			trio := trio
			e.Spawn("p", func(p *Proc) {
				for _, s := range trio {
					p.Sleep(Time(s))
				}
				done++
			})
			_ = i
		}
		if err := e.Run(); err != nil {
			return false
		}
		return done == len(sleeps) && e.Now() == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
