// Package sim implements a deterministic discrete-event simulator with
// cooperative, goroutine-backed processes.
//
// The simulator is the hardware substrate of this repository: it stands in
// for the 128-node Grid'5000 cluster used in the paper. Virtual time is
// advanced by an event queue; exactly one goroutine (either the engine or a
// single process) runs at any moment, so simulations are deterministic and
// reproducible bit-for-bit.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is also used for durations.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a virtual Time.
func Seconds(s float64) Time { return Time(s * 1e9) }

// Micros converts a floating-point number of microseconds to a virtual Time.
func Micros(us float64) Time { return Time(us * 1e3) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time with a unit suffix for human consumption.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/1e3)
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
