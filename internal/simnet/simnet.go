// Package simnet models the cluster interconnect: per-node NICs with
// latency, bandwidth, and serialization of concurrent transfers.
//
// The model is LogGP-flavoured with cut-through delivery:
//
//	txStart = max(now, sender NIC free)
//	txDone  = txStart + size/bandwidth          (sender NIC occupied)
//	rxStart = max(txStart + latency, receiver NIC free)
//	arrival = rxStart + size/bandwidth          (receiver NIC occupied)
//
// NICs are full duplex (independent tx and rx occupancy). Several simulated
// processes share one node's NIC (CoresPerNode), which is what makes the
// intra-parallelization update traffic contend exactly as in the paper's
// testbed (4 MPI ranks per InfiniBand 20G HCA).
//
// Same-node messages bypass the NIC and are charged a memory-copy cost.
package simnet

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Config describes the interconnect.
type Config struct {
	Latency        sim.Time // NIC-to-NIC wire+stack latency
	Bandwidth      float64  // bytes/s per NIC, each direction
	LocalLatency   sim.Time // same-node handoff latency
	LocalBandwidth float64  // same-node copy bandwidth (bytes/s)
	CoresPerNode   int      // simulated processes sharing a NIC
}

// InfiniBand20G approximates the paper's interconnect: InfiniBand 20G
// (4x DDR). The signaling rate is 16 Gbit/s of payload, but hosts of that
// era (PCIe gen1/gen2 x8) sustain ~1.4 GB/s of application payload per
// HCA; end-to-end latency ~4 us; 4 cores share one HCA per node.
var InfiniBand20G = Config{
	Latency:        sim.Micros(4),
	Bandwidth:      1.4e9,
	LocalLatency:   sim.Micros(0.5),
	LocalBandwidth: 6.0e9,
	CoresPerNode:   4,
}

// Ethernet10G approximates a commodity 10 GbE cluster of the same era:
// higher latency and less application payload than the InfiniBand fabric,
// for what-if sweeps over the interconnect.
var Ethernet10G = Config{
	Latency:        sim.Micros(15),
	Bandwidth:      1.1e9,
	LocalLatency:   sim.Micros(0.5),
	LocalBandwidth: 6.0e9,
	CoresPerNode:   4,
}

// Nets names the interconnect models available as scenario platform axes.
// Entries are added via Register; the built-in models register below.
var Nets = map[string]Config{}

// DefaultNetName is the registry name of the paper's interconnect: the
// model a scenario selects when it omits its net.
const DefaultNetName = "ib20g"

// Register adds a named interconnect model to the Nets registry. Names are
// scenario-file and CLI currency, so a duplicate is a programming error and
// panics.
func Register(name string, cfg Config) {
	if name == "" {
		panic("simnet: Register with empty name")
	}
	if _, dup := Nets[name]; dup {
		panic(fmt.Sprintf("simnet: net %q registered twice", name))
	}
	Nets[name] = cfg
}

// NetNames returns the registered interconnect names, sorted.
func NetNames() []string {
	names := make([]string, 0, len(Nets))
	for n := range Nets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(DefaultNetName, InfiniBand20G)
	Register("eth10g", Ethernet10G)
}

// Node is one cluster node's NIC state.
type Node struct {
	id     int
	txFree sim.Time
	rxFree sim.Time
	txByte int64 // cumulative bytes transmitted (diagnostics)
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// BytesSent returns the cumulative bytes transmitted by the node NIC.
func (n *Node) BytesSent() int64 { return n.txByte }

// Transfer is a handle on an in-flight message, used to model message loss
// when the sender crashes before the NIC finishes transmitting. Callers on
// the hot path embed a Transfer by value in their own per-message record
// and start it with SendInto, so a send allocates no Transfer of its own.
type Transfer struct {
	ev     sim.EventRef
	txDone sim.Time
	bytes  int64

	// Receiver-side reservation, remembered so Cancel can roll it back:
	// the destination NIC (nil for same-node messages, which bypass it),
	// the rxFree value before this transfer reserved it, the arrival it
	// advanced rxFree to, and the occupancy it charged.
	dst      *Node
	prevRx   sim.Time
	arrival  sim.Time
	rxOcc    sim.Time
	canceled bool
}

// TxDone returns the virtual time at which the sender NIC finishes
// transmitting (the local send-completion time).
func (t *Transfer) TxDone() sim.Time { return t.txDone }

// Bytes returns the message size.
func (t *Transfer) Bytes() int64 { return t.bytes }

// Cancel drops the message: it will never be delivered. Used by the fault
// layer when the sender crashes mid-transmission.
//
// The receiver-side NIC reservation is rolled back: the bytes will never
// cross that NIC, so leaving them booked would permanently delay every
// later message into the node (the dead sender would keep throttling
// survivors). The sender-side occupancy stays — the NIC really did
// transmit until the crash, and the sender is dead anyway. If later
// transfers already queued behind this one on the receiver, their arrival
// events are fixed; the reservation shrinks by this transfer's occupancy
// so only future traffic benefits.
func (t *Transfer) Cancel() {
	t.ev.Cancel()
	if t.canceled || t.dst == nil {
		return
	}
	t.canceled = true
	if t.dst.rxFree == t.arrival {
		// No later transfer queued behind this one: restore exactly.
		t.dst.rxFree = t.prevRx
	} else {
		// Later reservations stacked on top; release this transfer's
		// share. arrival >= prevRx + rxOcc and rxFree >= arrival, so
		// this never rewinds past the pre-reservation state.
		t.dst.rxFree -= t.rxOcc
	}
}

// Network is the simulated interconnect.
type Network struct {
	e     *sim.Engine
	cfg   Config
	nodes []*Node
}

// New creates a network of n nodes with the given configuration.
func New(e *sim.Engine, cfg Config, n int) *Network {
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 1
	}
	if cfg.Bandwidth <= 0 || cfg.LocalBandwidth <= 0 {
		panic("simnet: bandwidth must be positive")
	}
	net := &Network{e: e, cfg: cfg, nodes: make([]*Node, n)}
	for i := range net.nodes {
		net.nodes[i] = &Node{id: i}
	}
	return net
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.nodes) }

// Node returns node i.
func (n *Network) Node(i int) *Node { return n.nodes[i] }

// NodeOf maps a process index (core) to its node under block placement.
func (n *Network) NodeOf(proc int) int { return proc / n.cfg.CoresPerNode }

// Send schedules delivery of a message of the given size from node `from`
// to node `to`. deliver runs in engine context at the arrival time. The
// returned Transfer reports the sender-side completion time and allows the
// message to be dropped if the sender crashes before TxDone.
func (n *Network) Send(from, to int, bytes int64, deliver func()) *Transfer {
	tr := &Transfer{}
	arrival := n.reserve(tr, from, to, bytes)
	tr.ev = n.e.At(arrival, deliver)
	return tr
}

// SendInto is the allocation-light Send: it fills the caller-owned tr
// (typically embedded in the caller's per-message record) and schedules tm
// as the delivery callback, so a send costs neither a Transfer allocation
// nor a closure. tr is fully reinitialized; reusing one Transfer for
// consecutive sends is fine once the previous transfer has been delivered
// or canceled.
func (n *Network) SendInto(tr *Transfer, from, to int, bytes int64, tm sim.Timer) {
	arrival := n.reserve(tr, from, to, bytes)
	tr.ev = n.e.AtTimer(arrival, tm)
}

// reserve books the NIC occupancy on both ends and fills every Transfer
// field except the delivery event; it returns the arrival time.
func (n *Network) reserve(tr *Transfer, from, to int, bytes int64) sim.Time {
	if from < 0 || from >= len(n.nodes) || to < 0 || to >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: bad endpoint %d->%d (%d nodes)", from, to, len(n.nodes)))
	}
	if bytes < 0 {
		panic("simnet: negative message size")
	}
	now := n.e.Now()
	if from == to {
		occ := sim.Seconds(float64(bytes) / n.cfg.LocalBandwidth)
		txDone := now + occ
		*tr = Transfer{txDone: txDone, bytes: bytes}
		return txDone + n.cfg.LocalLatency
	}
	src, dst := n.nodes[from], n.nodes[to]
	occ := sim.Seconds(float64(bytes) / n.cfg.Bandwidth)
	txStart := now
	if src.txFree > txStart {
		txStart = src.txFree
	}
	txDone := txStart + occ
	src.txFree = txDone
	src.txByte += bytes
	rxStart := txStart + n.cfg.Latency
	prevRx := dst.rxFree
	if dst.rxFree > rxStart {
		rxStart = dst.rxFree
	}
	arrival := rxStart + occ
	dst.rxFree = arrival
	*tr = Transfer{
		txDone: txDone, bytes: bytes,
		dst: dst, prevRx: prevRx, arrival: arrival, rxOcc: occ,
	}
	return arrival
}
