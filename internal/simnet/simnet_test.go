package simnet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/testutil"
)

func testCfg() Config {
	return Config{
		Latency:        sim.Micros(1),
		Bandwidth:      1e9, // 1 GB/s => 1 ns per byte
		LocalLatency:   sim.Micros(0.1),
		LocalBandwidth: 1e10,
		CoresPerNode:   4,
	}
}

func TestSingleTransferTiming(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	var arrived sim.Time = -1
	tr := n.Send(0, 1, 1000, func() { arrived = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// tx: 1000 ns; rx starts at latency (1000 ns), done at 2000 ns.
	if tr.TxDone() != 1000 {
		t.Fatalf("txDone = %v, want 1000ns", tr.TxDone())
	}
	if arrived != 2000 {
		t.Fatalf("arrival = %v, want 2000ns", arrived)
	}
	if tr.Bytes() != 1000 {
		t.Fatalf("bytes = %d", tr.Bytes())
	}
}

func TestZeroByteMessageIsLatencyOnly(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	var arrived sim.Time
	n.Send(0, 1, 0, func() { arrived = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != sim.Micros(1) {
		t.Fatalf("arrival = %v, want 1us", arrived)
	}
}

func TestSenderNICSerializes(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 3)
	var t1, t2 sim.Time
	n.Send(0, 1, 1000, func() { t1 = e.Now() })
	n.Send(0, 2, 1000, func() { t2 = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Second message cannot start transmitting before the first is done:
	// txStart=1000, arrival = 1000+1000(latency)+1000 = 3000.
	if t1 != 2000 || t2 != 3000 {
		t.Fatalf("arrivals = %v, %v; want 2000ns, 3000ns", t1, t2)
	}
}

func TestReceiverNICSerializes(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 3)
	var t1, t2 sim.Time
	n.Send(0, 2, 1000, func() { t1 = e.Now() })
	n.Send(1, 2, 1000, func() { t2 = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both senders transmit concurrently; receiver serializes: first rx
	// occupies [1000,2000], second starts at 2000, arrives 3000.
	if t1 != 2000 || t2 != 3000 {
		t.Fatalf("arrivals = %v, %v; want 2000ns, 3000ns", t1, t2)
	}
}

func TestLocalMessageBypassesNIC(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 1)
	var arrived sim.Time
	n.Send(0, 0, 10000, func() { arrived = e.Now() })
	// NIC must remain free.
	n.Send(0, 0, 0, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Seconds(10000/1e10) + sim.Micros(0.1)
	if arrived != want {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
	if n.Node(0).BytesSent() != 0 {
		t.Fatal("local message charged the NIC")
	}
}

func TestCancelDropsMessage(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	delivered := false
	tr := n.Send(0, 1, 1000, func() { delivered = true })
	e.At(500, func() { tr.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("canceled transfer delivered")
	}
}

// TestCancelReleasesReceiverNIC is the regression test for the cancel
// leak: a canceled in-flight message (sender crashed mid-transmission)
// used to leave its reservation on the receiver NIC, so a dead sender's
// never-delivered bytes permanently delayed all later traffic into the
// node. The rollback frees the receiver; the sender-side occupancy is
// real (the NIC transmitted until the crash) and stays.
func TestCancelReleasesReceiverNIC(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 3)
	// 1 MB at 1 GB/s = 1 ms of rx occupancy on node 2.
	tr := n.Send(0, 2, 1_000_000, func() { t.Error("canceled transfer delivered") })
	var arrived sim.Time
	e.At(500, func() {
		tr.Cancel()
		// A fresh 1000-byte message from node 1 must see a free receiver:
		// tx [500,1500], rx starts at 500+latency(1000)=1500, arrives 2500.
		n.Send(1, 2, 1000, func() { arrived = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(2500); arrived != want {
		t.Fatalf("arrival after cancel = %v, want %v (canceled bytes still occupy the receiver NIC)", arrived, want)
	}
}

// TestCancelUnderStackedReservations cancels the first of two queued
// transfers into one receiver: the survivor's already-scheduled arrival
// must not move, and future sends reclaim exactly the canceled occupancy.
func TestCancelUnderStackedReservations(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 4)
	tr := n.Send(0, 3, 10_000, func() { t.Error("canceled transfer delivered") })
	var second, third sim.Time
	// Second transfer queues behind the first on node 3's rx side:
	// rx occupancy [11000, 21000], arrival 21000.
	n.Send(1, 3, 10_000, func() { second = e.Now() })
	e.At(500, func() { tr.Cancel() })
	e.At(12_000, func() {
		// With the canceled occupancy released the receiver frees at 11000:
		// tx [12000,13000], rx starts at 13000, arrives 14000. Under the
		// leak it stayed booked until 21000 and this arrived at 22000.
		n.Send(2, 3, 1000, func() { third = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 21_000 {
		t.Fatalf("scheduled survivor moved: arrival %v, want 21000", second)
	}
	if want := sim.Time(14_000); third != want {
		t.Fatalf("post-cancel send arrived at %v, want %v", third, want)
	}
	// Double cancel is a no-op, not a second rollback.
	tr.Cancel()
}

func TestNodeOfBlockPlacement(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 4)
	for proc, want := range []int{0, 0, 0, 0, 1, 1, 1, 1, 2} {
		if got := n.NodeOf(proc); got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", proc, got, want)
		}
	}
}

func TestBytesSentAccounting(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	n.Send(0, 1, 100, func() {})
	n.Send(0, 1, 200, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Node(0).BytesSent(); got != 300 {
		t.Fatalf("bytes sent = %d, want 300", got)
	}
	if n.Node(0).ID() != 0 || n.Node(1).ID() != 1 {
		t.Fatal("bad node IDs")
	}
}

func TestBadEndpointPanics(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Send(0, 5, 1, func() {})
}

// Property: arrival time is at least txDone + latency and at least
// now + latency + size/BW, and never decreases for back-to-back sends on
// one NIC pair.
func TestTransferTimingProperty(t *testing.T) {
	cfg := testCfg()
	prop := func(sizes []uint16) bool {
		e := sim.New()
		n := New(e, cfg, 2)
		var arrivals []sim.Time
		var transfers []*Transfer
		for _, s := range sizes {
			tr := n.Send(0, 1, int64(s), func() { arrivals = append(arrivals, e.Now()) })
			transfers = append(transfers, tr)
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(arrivals) != len(sizes) {
			return false
		}
		for i := range arrivals {
			if arrivals[i] < transfers[i].TxDone()+cfg.Latency {
				return false
			}
			if i > 0 && arrivals[i] < arrivals[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// deliveryRecorder is a sim.Timer recording its fire time.
type deliveryRecorder struct {
	e  *sim.Engine
	at sim.Time
}

func (d *deliveryRecorder) Fire() { d.at = d.e.Now() }

// TestSendIntoMatchesSend pins the allocation-light path to the closure
// path: same reservations, same timing, same cancel semantics.
func TestSendIntoMatchesSend(t *testing.T) {
	e1 := sim.New()
	n1 := New(e1, testCfg(), 3)
	var closureArrivals []sim.Time
	var closureTx []sim.Time
	for i := 0; i < 4; i++ {
		tr := n1.Send(0, 2, 1000*int64(i+1), func() { closureArrivals = append(closureArrivals, e1.Now()) })
		closureTx = append(closureTx, tr.TxDone())
	}
	if err := e1.Run(); err != nil {
		t.Fatal(err)
	}

	e2 := sim.New()
	n2 := New(e2, testCfg(), 3)
	recs := make([]deliveryRecorder, 4)
	trs := make([]Transfer, 4)
	for i := range recs {
		recs[i].e = e2
		n2.SendInto(&trs[i], 0, 2, 1000*int64(i+1), &recs[i])
	}
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if recs[i].at != closureArrivals[i] {
			t.Fatalf("SendInto arrival[%d] = %v, Send = %v", i, recs[i].at, closureArrivals[i])
		}
		if trs[i].TxDone() != closureTx[i] {
			t.Fatalf("SendInto txDone[%d] = %v, Send = %v", i, trs[i].TxDone(), closureTx[i])
		}
	}
}

// TestSendIntoCancelRollsBack checks the embedded-Transfer path shares the
// receiver-NIC rollback with the closure path.
func TestSendIntoCancelRollsBack(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 3)
	var tr Transfer
	rec := deliveryRecorder{e: e, at: -1}
	n.SendInto(&tr, 0, 2, 1_000_000, &rec)
	var arrived sim.Time
	e.At(500, func() {
		tr.Cancel()
		n.Send(1, 2, 1000, func() { arrived = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.at != -1 {
		t.Fatal("canceled SendInto transfer delivered")
	}
	if want := sim.Time(2500); arrived != want {
		t.Fatalf("arrival after cancel = %v, want %v", arrived, want)
	}
}

// TestTransferAllocs pins the allocation-light hot path: a steady-state
// transfer through SendInto (reused Transfer record, typed delivery, pooled
// events) must not allocate.
func TestTransferAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	e := sim.New()
	n := New(e, testCfg(), 2)
	rec := deliveryRecorder{e: e}
	var tr Transfer
	const rounds = 1000
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < rounds; i++ {
			n.SendInto(&tr, 0, 1, 1000, &rec)
			if err := e.Run(); err != nil {
				t.Error(err)
			}
		}
	})
	if avg > 5 {
		t.Fatalf("%d steady-state transfers allocated %.0f objects, budget 5", rounds, avg)
	}
}
