package simnet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testCfg() Config {
	return Config{
		Latency:        sim.Micros(1),
		Bandwidth:      1e9, // 1 GB/s => 1 ns per byte
		LocalLatency:   sim.Micros(0.1),
		LocalBandwidth: 1e10,
		CoresPerNode:   4,
	}
}

func TestSingleTransferTiming(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	var arrived sim.Time = -1
	tr := n.Send(0, 1, 1000, func() { arrived = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// tx: 1000 ns; rx starts at latency (1000 ns), done at 2000 ns.
	if tr.TxDone() != 1000 {
		t.Fatalf("txDone = %v, want 1000ns", tr.TxDone())
	}
	if arrived != 2000 {
		t.Fatalf("arrival = %v, want 2000ns", arrived)
	}
	if tr.Bytes() != 1000 {
		t.Fatalf("bytes = %d", tr.Bytes())
	}
}

func TestZeroByteMessageIsLatencyOnly(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	var arrived sim.Time
	n.Send(0, 1, 0, func() { arrived = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != sim.Micros(1) {
		t.Fatalf("arrival = %v, want 1us", arrived)
	}
}

func TestSenderNICSerializes(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 3)
	var t1, t2 sim.Time
	n.Send(0, 1, 1000, func() { t1 = e.Now() })
	n.Send(0, 2, 1000, func() { t2 = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Second message cannot start transmitting before the first is done:
	// txStart=1000, arrival = 1000+1000(latency)+1000 = 3000.
	if t1 != 2000 || t2 != 3000 {
		t.Fatalf("arrivals = %v, %v; want 2000ns, 3000ns", t1, t2)
	}
}

func TestReceiverNICSerializes(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 3)
	var t1, t2 sim.Time
	n.Send(0, 2, 1000, func() { t1 = e.Now() })
	n.Send(1, 2, 1000, func() { t2 = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both senders transmit concurrently; receiver serializes: first rx
	// occupies [1000,2000], second starts at 2000, arrives 3000.
	if t1 != 2000 || t2 != 3000 {
		t.Fatalf("arrivals = %v, %v; want 2000ns, 3000ns", t1, t2)
	}
}

func TestLocalMessageBypassesNIC(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 1)
	var arrived sim.Time
	n.Send(0, 0, 10000, func() { arrived = e.Now() })
	// NIC must remain free.
	n.Send(0, 0, 0, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Seconds(10000/1e10) + sim.Micros(0.1)
	if arrived != want {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
	if n.Node(0).BytesSent() != 0 {
		t.Fatal("local message charged the NIC")
	}
}

func TestCancelDropsMessage(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	delivered := false
	tr := n.Send(0, 1, 1000, func() { delivered = true })
	e.At(500, func() { tr.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("canceled transfer delivered")
	}
}

func TestNodeOfBlockPlacement(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 4)
	for proc, want := range []int{0, 0, 0, 0, 1, 1, 1, 1, 2} {
		if got := n.NodeOf(proc); got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", proc, got, want)
		}
	}
}

func TestBytesSentAccounting(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	n.Send(0, 1, 100, func() {})
	n.Send(0, 1, 200, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Node(0).BytesSent(); got != 300 {
		t.Fatalf("bytes sent = %d, want 300", got)
	}
	if n.Node(0).ID() != 0 || n.Node(1).ID() != 1 {
		t.Fatal("bad node IDs")
	}
}

func TestBadEndpointPanics(t *testing.T) {
	e := sim.New()
	n := New(e, testCfg(), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Send(0, 5, 1, func() {})
}

// Property: arrival time is at least txDone + latency and at least
// now + latency + size/BW, and never decreases for back-to-back sends on
// one NIC pair.
func TestTransferTimingProperty(t *testing.T) {
	cfg := testCfg()
	prop := func(sizes []uint16) bool {
		e := sim.New()
		n := New(e, cfg, 2)
		var arrivals []sim.Time
		var transfers []*Transfer
		for _, s := range sizes {
			tr := n.Send(0, 1, int64(s), func() { arrivals = append(arrivals, e.Now()) })
			transfers = append(transfers, tr)
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(arrivals) != len(sizes) {
			return false
		}
		for i := range arrivals {
			if arrivals[i] < transfers[i].TxDone()+cfg.Latency {
				return false
			}
			if i > 0 && arrivals[i] < arrivals[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
