package store

import (
	"fmt"
	"testing"

	"repro/internal/testutil"
)

// TestGetAllocBudget pins the cache-hit hot path: serving a result from
// the warm in-memory view must not allocate at all (hit or miss), and the
// full lookup including the content hash must stay within a handful of
// allocations. A regression here turns 10^6-trial warm campaigns from a
// map scan into a GC workload.
func TestGetAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	s, err := Open(t.TempDir(), "alloc")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("fp-%03d", i))
		if err := s.Put("result", keys[i], payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	missKey := Key("absent")

	perHit := testing.AllocsPerRun(200, func() {
		for _, k := range keys {
			if _, ok := s.Get("result", k); !ok {
				t.Error("warm key missed")
			}
		}
	}) / float64(len(keys))
	t.Logf("allocs per warm Get: %.3f", perHit)
	if perHit > 0 {
		t.Fatalf("warm Get allocates %.3f objects, budget 0", perHit)
	}

	perMiss := testing.AllocsPerRun(200, func() {
		if _, ok := s.Get("result", missKey); ok {
			t.Error("phantom hit")
		}
	})
	t.Logf("allocs per miss Get: %.3f", perMiss)
	if perMiss > 0 {
		t.Fatalf("miss Get allocates %.3f objects, budget 0", perMiss)
	}

	// The end-to-end lookup a sweep cache hit performs: hash the canonical
	// fingerprint, then fetch. Hashing allocates the hex key; nothing else
	// may.
	perLookup := testing.AllocsPerRun(200, func() {
		if _, ok := s.Get("result", Key("fp-007")); !ok {
			t.Error("warm key missed")
		}
	})
	t.Logf("allocs per Key+Get lookup: %.3f", perLookup)
	if perLookup > 3 {
		t.Fatalf("warm lookup allocates %.3f objects, budget 3", perLookup)
	}
}
