package store

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard selects a deterministic slice of a work list for one process of a
// multi-process campaign: shard i of N owns every index congruent to i
// modulo N. The zero value (Count 0) and 1-way sharding own everything.
//
// Every shard derives the full work list independently and identically
// (the lists are deterministic in the scenario inputs), then filters by
// ownership — so the shards partition the work with no coordination and
// their union is exactly the single-process list.
type Shard struct {
	Index int // 0-based shard index
	Count int // total shards
}

// ParseShard parses the CLI form "i/N" with 0 <= i < N.
func ParseShard(s string) (Shard, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("store: shard %q is not of the form i/N", s)
	}
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("store: shard %q is not of the form i/N", s)
	}
	if n < 1 || i < 0 || i >= n {
		return Shard{}, fmt.Errorf("store: shard %q needs 0 <= i < N", s)
	}
	return Shard{Index: i, Count: n}, nil
}

// Active reports whether the shard selects a strict subset of the work.
func (sh Shard) Active() bool { return sh.Count > 1 }

// Owns reports whether this shard is responsible for work item i.
func (sh Shard) Owns(i int) bool {
	if sh.Count <= 1 {
		return true
	}
	return i%sh.Count == sh.Index
}

// String renders the canonical "i/N" form ("0/1" for the zero value).
func (sh Shard) String() string {
	n := sh.Count
	if n < 1 {
		n = 1
	}
	return fmt.Sprintf("%d/%d", sh.Index, n)
}
