// Package store is the persistent, content-addressed result cache that
// lets experiment campaigns outlive one process. Records are keyed by the
// canonical content fingerprints that already flow through the sweep memo
// (scenario.Fingerprint / experiments.Spec keys), hashed to fixed-size
// addresses, and appended to per-process shard files under one directory.
//
// The format is append-safe and merge-friendly by construction:
//
//   - One record per line: "crc32c_hex<TAB>record_json\n". The checksum
//     covers the exact record bytes, so a torn tail (crash mid-append), a
//     flipped byte, or any other corruption is detected per record and the
//     damaged record is dropped — the caller re-simulates that point; a
//     corrupt record is never silently merged.
//   - Records are immutable and deduplicated by (kind, key) on read. Two
//     shard files produced by different processes merge by concatenation:
//     Open reads every *.jsonl in the directory (sorted by name) and keeps
//     the first valid record per key, so the merged view is deterministic
//     in the file set, not in who wrote what when.
//   - Compact rewrites the merged view as a single canonical file with
//     records sorted by (kind, key): byte-identical however many shard
//     files it was merged from and in whatever order they were written.
//
// Concurrent goroutines may share one Store. Concurrent processes must
// write distinct shard labels (the CLI's -shard i/N does); readers never
// conflict.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Record is one cached result: a kind (namespace), the content address of
// the point it caches, and the opaque payload the owning layer serialized.
type Record struct {
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Stats describes the store's merged view and its traffic since Open.
type Stats struct {
	Files     int // shard files read
	Records   int // live records after dedup
	Dupes     int // duplicate records dropped (same kind+key seen again)
	Corrupt   int // records dropped mid-file on checksum/parse failure
	Truncated int // files whose final record was torn (partial append)

	Hits   int64 // Get calls served from the store
	Misses int64 // Get calls that found nothing
	Puts   int64 // records appended by this process
}

// String renders the stats as the one-line report the CLI prints to
// stderr; a warm run is recognizable by misses=0.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d puts=%d records=%d dupes=%d corrupt=%d truncated=%d",
		s.Hits, s.Misses, s.Puts, s.Records, s.Dupes, s.Corrupt, s.Truncated)
}

// Store is the merged read view of a store directory plus one append-only
// shard file for this process's writes.
type Store struct {
	dir   string
	label string

	mu   sync.RWMutex
	mem  map[string]map[string]json.RawMessage // kind -> key -> payload
	file *os.File                              // lazily-opened append target

	files, records, dupes, corrupt, truncated int
	hits, misses, puts                        atomic.Int64
}

// crcTable is the Castagnoli polynomial, the same one filesystems use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Key returns the content address of a canonical fingerprint string: its
// SHA-256, hex-encoded. Collisions are cryptographically excluded, so equal
// keys mean equal fingerprints mean identical simulations.
func Key(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(sum[:])
}

// Open creates the directory if needed, reads every shard file (*.jsonl,
// sorted by name) into the merged in-memory view, and prepares an append
// file named after label for this process's writes ("" = "local"). Torn
// tails and corrupt records are counted and skipped, never merged.
func Open(dir, label string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if label == "" {
		label = "local"
	}
	s := &Store{dir: dir, label: label, mem: map[string]map[string]json.RawMessage{}}
	names, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.readShard(name); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// readShard merges one shard file into the view: first valid record per
// (kind, key) wins, in file-name order — deterministic for any writer
// interleaving because record payloads at one content address are
// themselves deterministic.
func (s *Store) readShard(name string) error {
	data, err := os.ReadFile(name)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.files++
	for len(data) > 0 {
		line := data
		nl := bytes.IndexByte(data, '\n')
		tail := false
		if nl < 0 {
			data = nil
			tail = true // no newline: a torn final append
		} else {
			line = data[:nl]
			data = data[nl+1:]
			tail = len(data) == 0
		}
		rec, ok := decodeLine(line)
		if !ok {
			if tail {
				s.truncated++
			} else {
				s.corrupt++
			}
			continue
		}
		if s.insert(rec.Kind, rec.Key, rec.Payload) {
			s.records++
		} else {
			s.dupes++
		}
	}
	return nil
}

// decodeLine parses and verifies one "crc<TAB>json" record line.
func decodeLine(line []byte) (Record, bool) {
	tab := bytes.IndexByte(line, '\t')
	if tab != 8 { // crc32 is always 8 hex digits
		return Record{}, false
	}
	want, err := hex.DecodeString(string(line[:tab]))
	if err != nil {
		return Record{}, false
	}
	body := line[tab+1:]
	var sum [4]byte
	got := crc32.Checksum(body, crcTable)
	sum[0], sum[1], sum[2], sum[3] = byte(got>>24), byte(got>>16), byte(got>>8), byte(got)
	if !bytes.Equal(want, sum[:]) {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil || rec.Kind == "" || rec.Key == "" {
		return Record{}, false
	}
	return rec, true
}

// encodeLine renders one record line, checksum first.
func encodeLine(rec Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(body)+10)
	line = fmt.Appendf(line, "%08x\t", crc32.Checksum(body, crcTable))
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// insert adds a record to the view if absent; the caller holds mu (or is
// the only owner, during Open). Reports whether the record was new.
func (s *Store) insert(kind, key string, payload json.RawMessage) bool {
	byKey := s.mem[kind]
	if byKey == nil {
		byKey = map[string]json.RawMessage{}
		s.mem[kind] = byKey
	}
	if _, dup := byKey[key]; dup {
		return false
	}
	byKey[key] = payload
	return true
}

// Get returns the payload cached at (kind, key), if any. It is the cache
// hot path: zero allocations on a hit or a miss.
func (s *Store) Get(kind, key string) (json.RawMessage, bool) {
	s.mu.RLock()
	p, ok := s.mem[kind][key]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return p, ok
}

// Put serializes payload and appends it at (kind, key), making it visible
// to this Store immediately and to any later Open of the directory. A key
// already present is left as is (content-addressed records are immutable),
// but the append still happens so a re-run's shard file is self-contained;
// duplicates are deduplicated on read.
func (s *Store) Put(kind, key string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: encode %s record: %w", kind, err)
	}
	line, err := encodeLine(Record{Kind: kind, Key: key, Payload: raw})
	if err != nil {
		return fmt.Errorf("store: encode %s record: %w", kind, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		name := filepath.Join(s.dir, "shard-"+sanitize(s.label)+".jsonl")
		f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.file = f
	}
	if _, err := s.file.Write(line); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.puts.Add(1)
	if s.insert(kind, key, raw) {
		s.records++
	}
	return nil
}

// sanitize maps a shard label to a filename-safe form ("1/3" -> "1-of-3").
func sanitize(label string) string {
	label = strings.ReplaceAll(label, "/", "-of-")
	var b strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Records returns every live record of one kind, sorted by key. It does
// not touch the hit/miss counters: those describe cache traffic, and
// Records is for merge-time enumeration (e.g. campaign shard aggregates).
func (s *Store) Records(kind string) []Record {
	s.mu.RLock()
	out := make([]Record, 0, len(s.mem[kind]))
	for key, p := range s.mem[kind] {
		out = append(out, Record{Kind: kind, Key: key, Payload: p})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Compact rewrites the merged view as the single canonical file
// store.jsonl — records sorted by (kind, key) — and removes the shard
// files it subsumes. The output bytes depend only on the record set, so
// two stores holding the same results compact to identical files whatever
// shard files they grew from.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds := make([]string, 0, len(s.mem))
	for kind := range s.mem {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	var buf bytes.Buffer
	for _, kind := range kinds {
		keys := make([]string, 0, len(s.mem[kind]))
		for key := range s.mem[kind] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			line, err := encodeLine(Record{Kind: kind, Key: key, Payload: s.mem[kind][key]})
			if err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
			buf.Write(line)
		}
	}
	tmp := filepath.Join(s.dir, "store.jsonl.tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	final := filepath.Join(s.dir, "store.jsonl")
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if s.file != nil {
		s.file.Close()
		s.file = nil
	}
	names, err := filepath.Glob(filepath.Join(s.dir, "*.jsonl"))
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	for _, name := range names {
		if name != final {
			if err := os.Remove(name); err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
		}
	}
	return nil
}

// Close releases the append file, flushing nothing because every Put is a
// single unbuffered write.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file != nil {
		err := s.file.Close()
		s.file = nil
		return err
	}
	return nil
}

// Stats snapshots the store's merged-view and traffic counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Files: s.files, Records: s.records, Dupes: s.dupes,
		Corrupt: s.corrupt, Truncated: s.truncated,
		Hits: s.hits.Load(), Misses: s.misses.Load(), Puts: s.puts.Load(),
	}
}
